// Benchmarks regenerating the paper's evaluation, one family per figure
// plus the ablations indexed in EXPERIMENTS.md. Each iteration runs a
// complete (reduced-duration) simulation; the figures' metrics are
// attached via b.ReportMetric:
//
//	go test -bench=Fig1a -benchtime=1x        # Figure 1(a) cells
//	go test -bench=. -benchmem                # everything
//
// The full-duration (900 s) reproduction is `go run ./cmd/figures`.
package anongeo_test

import (
	"crypto/rsa"
	"fmt"
	"testing"
	"time"

	"anongeo"
	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/locservice"
	"anongeo/internal/sim"
)

// benchConfig is the calibrated Figure 1 workload at bench duration.
func benchConfig(proto anongeo.Protocol, nodes int, seed int64) anongeo.Config {
	cfg := anongeo.DefaultConfig()
	cfg.Protocol = proto
	cfg.Nodes = nodes
	cfg.Seed = seed
	cfg.Duration = 60 * time.Second
	cfg.PacketInterval = 300 * time.Millisecond
	cfg.PayloadBytes = 64
	return cfg
}

// runCell executes one sweep cell per iteration and reports its metrics.
func runCell(b *testing.B, proto anongeo.Protocol, nodes int) {
	b.Helper()
	var pdf, latMS float64
	for i := 0; i < b.N; i++ {
		res, err := anongeo.Run(benchConfig(proto, nodes, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		pdf += res.Summary.DeliveryFraction
		latMS += float64(res.Summary.AvgLatency) / 1e6
	}
	b.ReportMetric(pdf/float64(b.N), "pdf")
	b.ReportMetric(latMS/float64(b.N), "latency-ms")
	b.ReportMetric(0, "ns/op") // wall time is setup cost, not the result
}

// Figure 1(a): packet delivery fraction vs density, three protocols.

func BenchmarkFig1a_GPSR_N50(b *testing.B)       { runCell(b, anongeo.ProtoGPSR, 50) }
func BenchmarkFig1a_GPSR_N112(b *testing.B)      { runCell(b, anongeo.ProtoGPSR, 112) }
func BenchmarkFig1a_GPSR_N150(b *testing.B)      { runCell(b, anongeo.ProtoGPSR, 150) }
func BenchmarkFig1a_AGFW_N50(b *testing.B)       { runCell(b, anongeo.ProtoAGFW, 50) }
func BenchmarkFig1a_AGFW_N112(b *testing.B)      { runCell(b, anongeo.ProtoAGFW, 112) }
func BenchmarkFig1a_AGFW_N150(b *testing.B)      { runCell(b, anongeo.ProtoAGFW, 150) }
func BenchmarkFig1a_AGFWNoAck_N50(b *testing.B)  { runCell(b, anongeo.ProtoAGFWNoAck, 50) }
func BenchmarkFig1a_AGFWNoAck_N112(b *testing.B) { runCell(b, anongeo.ProtoAGFWNoAck, 112) }
func BenchmarkFig1a_AGFWNoAck_N150(b *testing.B) { runCell(b, anongeo.ProtoAGFWNoAck, 150) }

// Figure 1(b): end-to-end latency vs density. The same cells as 1(a) —
// the paper derives both figures from one experiment — run at the
// heavier 250 ms load where the high-density handshake blow-up is robust
// across seeds.

func fig1bConfig(proto anongeo.Protocol, nodes int, seed int64) anongeo.Config {
	cfg := benchConfig(proto, nodes, seed)
	cfg.PacketInterval = 250 * time.Millisecond
	cfg.Duration = 120 * time.Second
	return cfg
}

func runLatencyCell(b *testing.B, proto anongeo.Protocol, nodes int) {
	b.Helper()
	var latMS, pdf float64
	for i := 0; i < b.N; i++ {
		res, err := anongeo.Run(fig1bConfig(proto, nodes, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		latMS += float64(res.Summary.AvgLatency) / 1e6
		pdf += res.Summary.DeliveryFraction
	}
	b.ReportMetric(latMS/float64(b.N), "latency-ms")
	b.ReportMetric(pdf/float64(b.N), "pdf")
	b.ReportMetric(0, "ns/op")
}

func BenchmarkFig1b_GPSR_N50(b *testing.B)  { runLatencyCell(b, anongeo.ProtoGPSR, 50) }
func BenchmarkFig1b_GPSR_N112(b *testing.B) { runLatencyCell(b, anongeo.ProtoGPSR, 112) }
func BenchmarkFig1b_GPSR_N150(b *testing.B) { runLatencyCell(b, anongeo.ProtoGPSR, 150) }
func BenchmarkFig1b_AGFW_N50(b *testing.B)  { runLatencyCell(b, anongeo.ProtoAGFW, 50) }
func BenchmarkFig1b_AGFW_N112(b *testing.B) { runLatencyCell(b, anongeo.ProtoAGFW, 112) }
func BenchmarkFig1b_AGFW_N150(b *testing.B) { runLatencyCell(b, anongeo.ProtoAGFW, 150) }

// A1 (network effect): authenticated hellos inflate beacon airtime.

func benchAuthHello(b *testing.B, k int) {
	b.Helper()
	var pdf, bits float64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(anongeo.ProtoAGFW, 50, int64(i+1))
		cfg.AuthHelloK = k
		res, err := anongeo.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pdf += res.Summary.DeliveryFraction
		bits += float64(res.Channel.BitsSent)
	}
	b.ReportMetric(pdf/float64(b.N), "pdf")
	b.ReportMetric(bits/float64(b.N)/8e6, "MB-on-air")
	b.ReportMetric(0, "ns/op")
}

func BenchmarkAuthHelloK0(b *testing.B) { benchAuthHello(b, 0) }
func BenchmarkAuthHelloK2(b *testing.B) { benchAuthHello(b, 2) }
func BenchmarkAuthHelloK8(b *testing.B) { benchAuthHello(b, 8) }

// A2: trapdoor locality — decrypt attempts per delivered packet stay
// small because only last-hop-region nodes try.

func BenchmarkTrapdoorLocality(b *testing.B) {
	var tries, delivered float64
	for i := 0; i < b.N; i++ {
		res, err := anongeo.Run(benchConfig(anongeo.ProtoAGFW, 100, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		tries += float64(res.AGFW.TrapdoorTries)
		delivered += float64(res.Summary.Delivered)
	}
	if delivered > 0 {
		b.ReportMetric(tries/delivered, "tries/delivered")
	}
	b.ReportMetric(0, "ns/op")
}

// A3: ALS indexed vs no-index retrieval, genuine RSA.

func benchALS(b *testing.B, entries int, scan bool) {
	b.Helper()
	grid := geo.NewGridMap(geo.NewRect(1500, 300), 300)
	ssa := locservice.NewServerSelection(grid, 1)
	keys := map[anoncrypto.Identity]*anoncrypto.KeyPair{}
	mk := func(id anoncrypto.Identity) *anoncrypto.KeyPair {
		kp, err := anoncrypto.GenerateKeyPair(id, anoncrypto.DefaultKeyBits)
		if err != nil {
			b.Fatal(err)
		}
		keys[id] = kp
		return kp
	}
	requester := mk("B")
	dir := func(id anoncrypto.Identity) (*rsa.PublicKey, bool) {
		kp, ok := keys[id]
		if !ok {
			return nil, false
		}
		return kp.Public(), true
	}
	srv := locservice.NewServer(60 * sim.Second)
	var target anoncrypto.Identity
	for i := 0; i < entries; i++ {
		id := anoncrypto.Identity(fmt.Sprintf("u%d", i))
		up := locservice.Updater{Self: *mk(id), SSA: ssa, Directory: dir}
		updates, err := up.BuildUpdates([]anoncrypto.Identity{"B"}, geo.Pt(float64(i), 0), 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, us := range updates {
			for _, u := range us {
				srv.Apply(u, 0)
			}
		}
		if i == entries/2 {
			target = id
		}
	}
	req := locservice.Requester{Self: requester, SSA: ssa, Directory: dir}
	b.ResetTimer()
	replyBytes := 0
	for i := 0; i < b.N; i++ {
		req.DecryptAttempts = 0
		if scan {
			sq, _ := req.BuildScanQuery(target, geo.Pt(1, 1))
			rep := srv.AnswerScan(sq, sim.Second)
			if _, _, ok := req.OpenReply(rep, target); !ok {
				b.Fatal("scan retrieval failed")
			}
			replyBytes = rep.ReplyBytes()
		} else {
			q, _, err := req.BuildQuery(target, geo.Pt(1, 1))
			if err != nil {
				b.Fatal(err)
			}
			rep, ok := srv.Answer(q, sim.Second)
			if !ok {
				b.Fatal("indexed lookup failed")
			}
			if _, _, ok := req.OpenReply(rep, target); !ok {
				b.Fatal("indexed retrieval failed")
			}
			replyBytes = rep.ReplyBytes()
		}
	}
	b.ReportMetric(float64(replyBytes), "reply-bytes")
	b.ReportMetric(float64(req.DecryptAttempts), "decrypts/op")
}

func BenchmarkALSIndexedM8(b *testing.B)  { benchALS(b, 8, false) }
func BenchmarkALSIndexedM32(b *testing.B) { benchALS(b, 32, false) }
func BenchmarkALSScanM8(b *testing.B)     { benchALS(b, 8, true) }
func BenchmarkALSScanM32(b *testing.B)    { benchALS(b, 32, true) }

// A4: next-hop policy ablation.

func benchPolicy(b *testing.B, pol anongeo.Policy, reach bool) {
	b.Helper()
	var pdf float64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(anongeo.ProtoAGFW, 100, int64(i+1))
		cfg.Policy = pol
		cfg.ReachFilter = reach
		res, err := anongeo.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pdf += res.Summary.DeliveryFraction
	}
	b.ReportMetric(pdf/float64(b.N), "pdf")
	b.ReportMetric(0, "ns/op")
}

func BenchmarkFreshnessClosest(b *testing.B)    { benchPolicy(b, anongeo.PolicyClosest, false) }
func BenchmarkFreshnessFreshest(b *testing.B)   { benchPolicy(b, anongeo.PolicyFreshest, false) }
func BenchmarkFreshnessWeighted(b *testing.B)   { benchPolicy(b, anongeo.PolicyWeighted, false) }
func BenchmarkFreshnessWeightedRF(b *testing.B) { benchPolicy(b, anongeo.PolicyWeighted, true) }

// A5: adversary harvest size under each configuration.

func benchAdversary(b *testing.B, proto anongeo.Protocol, expose bool) {
	b.Helper()
	var ids, macs float64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(proto, 50, int64(i+1))
		cfg.ExposeSenderMAC = expose
		cfg.WithSniffer = true
		res, err := anongeo.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ids += float64(len(res.Harvest.ByIdentity))
		macs += float64(len(res.Harvest.ByMAC))
	}
	b.ReportMetric(ids/float64(b.N), "identities")
	b.ReportMetric(macs/float64(b.N), "mac-addrs")
	b.ReportMetric(0, "ns/op")
}

func BenchmarkAdversaryGPSR(b *testing.B)        { benchAdversary(b, anongeo.ProtoGPSR, false) }
func BenchmarkAdversaryAGFW(b *testing.B)        { benchAdversary(b, anongeo.ProtoAGFW, false) }
func BenchmarkAdversaryAGFWExposed(b *testing.B) { benchAdversary(b, anongeo.ProtoAGFW, true) }

// Package anongeo is a Go implementation and simulation testbed for
// "Anonymizing Geographic Ad Hoc Routing for Preserving Location
// Privacy" (Zhou & Yow): an anonymous geographic routing scheme for
// mobile ad hoc networks built from three components —
//
//   - ANT, the anonymous neighbor table (per-hello pseudonyms, with a
//     ring-signature-authenticated variant),
//   - AGFW, anonymous greedy forwarding (trapdoor-addressed destinations,
//     broadcast-only link layer, optional network-layer ACK), and
//   - ALS, the anonymous location service on a DLM-style grid.
//
// The package bundles everything needed to reproduce the paper's
// evaluation: a discrete-event wireless simulator (802.11 DCF MAC,
// unit-disk radio with NS-2-style carrier sensing, random-waypoint
// mobility), a GPSR-Greedy baseline, CBR traffic, metrics, and a passive
// adversary for quantifying the privacy properties.
//
// Quick start:
//
//	cfg := anongeo.DefaultConfig()          // the paper's §5.1 scenario
//	cfg.Protocol = anongeo.ProtoAGFW
//	res, err := anongeo.Run(cfg)
//	fmt.Println(res.Summary)                // delivery fraction, latency
//
// See the examples/ directory and cmd/figures for the full evaluation.
package anongeo

import (
	"io"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/core"
	"anongeo/internal/exp"
	"anongeo/internal/fault"
	"anongeo/internal/neighbor"
)

// Identity is a node's real, globally unique name — what the scheme
// keeps unlinkable from locations.
type Identity = anoncrypto.Identity

// Core scenario types, re-exported from the engine room.
type (
	// Config describes one simulation scenario.
	Config = core.Config
	// Protocol selects the routing stack under test.
	Protocol = core.Protocol
	// Result aggregates one run's measurements.
	Result = core.Result
	// Network is a fully assembled scenario for fine-grained control.
	Network = core.Network
	// Node is one station with its protocol stack.
	Node = core.Node
	// DensityPoint is one cell of a Figure 1-style sweep.
	DensityPoint = core.DensityPoint
	// Policy selects AGFW's next-hop strategy.
	Policy = neighbor.Policy
	// LocationServiceMode selects how destinations are resolved.
	LocationServiceMode = core.LocationServiceMode
	// LSStats aggregates the in-band location-service counters.
	LSStats = core.LSStats
)

// Location resolution modes: the paper's perfect oracle, the in-band
// anonymous location service (§3.3), or the cleartext DLM baseline.
const (
	LSOracle   = core.LSOracle
	LSALS      = core.LSALS
	LSPlainDLM = core.LSPlainDLM
)

// Protocols under evaluation (the three curves of Figure 1).
const (
	ProtoGPSR      = core.ProtoGPSR
	ProtoAGFW      = core.ProtoAGFW
	ProtoAGFWNoAck = core.ProtoAGFWNoAck
)

// AGFW next-hop selection policies (§3.1.1's freshness discussion).
const (
	PolicyClosest  = neighbor.PolicyClosest
	PolicyFreshest = neighbor.PolicyFreshest
	PolicyWeighted = neighbor.PolicyWeighted
)

// DefaultConfig returns the paper's §5.1 scenario: 50 nodes in
// 1500 m × 300 m, 250 m range, random waypoint (≤20 m/s, 60 s pause),
// 30 CBR flows from 20 senders, 900 s.
func DefaultConfig() Config { return core.DefaultConfig() }

// Run builds and executes one scenario.
func Run(cfg Config) (Result, error) { return core.Run(cfg) }

// Build assembles a network without running it, for callers that want to
// inject their own events or inspect nodes mid-run.
func Build(cfg Config) (*Network, error) { return core.Build(cfg) }

// NodeID formats the canonical identity of node index i ("n<i>").
func NodeID(i int) Identity { return core.NodeID(i) }

// DensitySweep runs cfg across node counts and protocols (one seed per
// cell); DensitySweepN averages each cell over several seeds.
func DensitySweep(base Config, nodeCounts []int, protocols []Protocol) ([]DensityPoint, error) {
	return core.DensitySweep(base, nodeCounts, protocols)
}

// DensitySweepN is DensitySweep averaged over `repeats` seeds per cell.
func DensitySweepN(base Config, nodeCounts []int, protocols []Protocol, repeats int) ([]DensityPoint, error) {
	return core.DensitySweepN(base, nodeCounts, protocols, repeats)
}

// Experiment orchestration (internal/exp): sweeps execute on a bounded
// worker pool with an optional content-addressed result cache and run
// telemetry. Parallel execution is bit-for-bit identical to serial.
type (
	// SweepOptions tunes repeats, parallelism, caching, retries, and
	// telemetry for DensitySweepOpts.
	SweepOptions = core.SweepOptions
	// ExpHook receives orchestrator telemetry events.
	ExpHook = exp.Hook
	// ExpEvent is one telemetry record.
	ExpEvent = exp.Event
)

// DefaultCacheDir is the conventional on-disk result-cache location
// (".expcache", git-ignored).
const DefaultCacheDir = exp.DefaultCacheDir

// DensitySweepOpts is DensitySweep with full execution control:
// parallel workers, on-disk result caching, per-cell retries, and
// progress telemetry.
func DensitySweepOpts(base Config, nodeCounts []int, protocols []Protocol, opt SweepOptions) ([]DensityPoint, error) {
	return core.DensitySweepOpts(base, nodeCounts, protocols, opt)
}

// NewProgressHook returns the standard human-readable progress
// reporter (one line per completed cell) writing to w.
func NewProgressHook(w io.Writer) ExpHook { return exp.NewProgress(w) }

// NewJSONLHook returns the machine-readable JSON-lines telemetry
// emitter writing to w.
func NewJSONLHook(w io.Writer) ExpHook { return exp.NewJSONL(w) }

// CacheableConfig reports whether a config's result may be served from
// the experiment cache (configs with trace logs or sniffers always
// execute).
func CacheableConfig(cfg Config) bool { return core.Cacheable(cfg) }

// Fault injection (internal/fault): declarative, seeded fault plans —
// bursty loss, adversarial relays, jamming, position error, outages —
// attached via Config.Faults. Every core.Run ends with a conservation
// audit and wedge detector regardless of plan.
type (
	// FaultPlan is a declarative fault timeline for Config.Faults.
	FaultPlan = fault.Plan
	// FaultEntry is one fault in a plan.
	FaultEntry = fault.Entry
	// FaultKind discriminates fault entry types.
	FaultKind = fault.Kind
)

// Fault kinds a plan entry can carry.
const (
	FaultBernoulliLoss  = fault.KindBernoulliLoss
	FaultGilbertElliott = fault.KindGilbertElliott
	FaultJam            = fault.KindJam
	FaultBlackhole      = fault.KindBlackhole
	FaultGreyhole       = fault.KindGreyhole
	FaultMute           = fault.KindMute
	FaultPositionError  = fault.KindPositionError
	FaultOutage         = fault.KindOutage
	FaultChurn          = fault.KindChurn
	// Active-adversary kinds: routing-layer attacks rather than channel
	// or liveness faults. Oppose them with Config.TrustRelay.
	FaultBogusBeacon = fault.KindBogusBeacon
	FaultAckSpoof    = fault.KindAckSpoof
	FaultFlood       = fault.KindFlood
)

// TrustConfig parameterizes the trust-aware relaying defense armed by
// Config.TrustRelay (override via Config.TrustOverride).
type TrustConfig = neighbor.TrustConfig

// DefaultTrustConfig returns the defense parameters used in the
// EXPERIMENTS.md E12 degradation-curve evaluation.
func DefaultTrustConfig() TrustConfig { return neighbor.DefaultTrustConfig() }

// RevocationConfig parameterizes the t-of-n pseudonym escrow armed by
// Config.Revocation (requires Config.TrustRelay): quorum openings link
// a misbehaving pseudonym chain so trust standings survive rotation.
type RevocationConfig = neighbor.RevocationConfig

// RevocationStats are one run's escrow-authority audit counters
// (Result.Revocation).
type RevocationStats = neighbor.RevocationStats

// DefaultRevocationConfig returns the escrow parameters used in the
// EXPERIMENTS.md E14 evaluation: a 3-of-5 authority set revoking opened
// chains for the rest of the run.
func DefaultRevocationConfig() RevocationConfig { return neighbor.DefaultRevocationConfig() }

// PaperNodeCounts is Figure 1's density axis.
var PaperNodeCounts = core.PaperNodeCounts

// WriteSweepTable renders sweep rows as an aligned text table.
func WriteSweepTable(w io.Writer, points []DensityPoint) error {
	return core.WriteSweepTable(w, points)
}

// WriteSweepCSV renders sweep rows as CSV for plotting.
func WriteSweepCSV(w io.Writer, points []DensityPoint) error {
	return core.WriteSweepCSV(w, points)
}

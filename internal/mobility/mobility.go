// Package mobility implements the node movement models the paper's
// evaluation uses: the random waypoint model (nodes move to uniformly
// chosen destinations at up to 20 m/s and pause 60 s before choosing the
// next one), plus static placement and scripted traces for tests.
//
// A Model answers "where is this node at simulation time t" analytically,
// so the simulator never schedules per-tick movement events: positions are
// evaluated lazily at transmission time.
package mobility

import (
	"math"
	"math/rand"
	"sort"

	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// Model reports a node's position as a function of simulation time.
// Implementations must be deterministic: calling PositionAt repeatedly
// with the same time yields the same point, and querying times out of
// order is allowed.
type Model interface {
	PositionAt(t sim.Time) geo.Point
}

// Leg is one exported segment of piecewise-linear motion: the node
// leaves From at Start, arrives at To at Arrive, and rests there until
// Depart. Evaluating the position on the leg for Start <= t < Depart —
//
//	if t >= Arrive: To, else From.Lerp(To, (t-Start)/(Arrive-Start))
//
// — must reproduce PositionAt(t) bit for bit; consumers (the radio
// channel's position cache) rely on that to skip the interface dispatch
// on their hot path without perturbing results.
type Leg struct {
	Start  sim.Time
	Arrive sim.Time
	Depart sim.Time
	From   geo.Point
	To     geo.Point
}

// LegProvider is implemented by models whose motion is piecewise linear
// (Waypoint, Static). LegAt returns the leg containing t, valid for the
// half-open window [Start, Depart). A model that never moves again may
// report Depart = math.MaxInt64; callers treat such legs as permanent.
type LegProvider interface {
	LegAt(t sim.Time) Leg
}

// Static is a Model that never moves.
type Static struct {
	At geo.Point
}

var _ Model = Static{}

// PositionAt implements Model.
func (s Static) PositionAt(sim.Time) geo.Point { return s.At }

var _ LegProvider = Static{}

// LegAt implements LegProvider: one permanent leg resting at At.
func (s Static) LegAt(sim.Time) Leg {
	return Leg{Depart: math.MaxInt64, From: s.At, To: s.At}
}

// Waypoint is the classic random waypoint model: pick a uniform random
// destination in Bounds, travel at a uniform random speed in
// [MinSpeed, MaxSpeed], pause for Pause, repeat.
//
// Legs are generated lazily from the model's private random stream and
// memoized, so positions may be queried in any order and are reproducible
// for a given stream seed.
type Waypoint struct {
	bounds   geo.Rect
	minSpeed float64
	maxSpeed float64
	pause    sim.Time
	rng      *rand.Rand
	legs     []leg
	// lastLeg memoizes the index of the leg the previous query hit. The
	// radio hot path queries positions in near-monotonic time order, so
	// re-checking the cached leg (and its successor) turns the common
	// case into O(1) and leaves the binary search as the slow path.
	lastLeg int
	// noMemo restores the seed's pure binary-search lookup; only the
	// brute-force benchmark baseline sets it (see DisableLegMemo).
	noMemo bool
}

var _ Model = (*Waypoint)(nil)

// leg is one travel segment followed by a pause. A node occupies `from` at
// `start`, arrives at `to` at `arrive`, and rests there until `depart`.
type leg struct {
	start    sim.Time
	arrive   sim.Time
	depart   sim.Time
	from, to geo.Point
}

// WaypointConfig parameterizes NewWaypoint. The zero value is invalid;
// use the paper's settings via DefaultWaypointConfig.
type WaypointConfig struct {
	Bounds   geo.Rect
	MinSpeed float64 // meters/second, must be > 0 to avoid stuck nodes
	MaxSpeed float64 // meters/second, >= MinSpeed
	Pause    sim.Time
	Start    geo.Point // initial position; clamped to Bounds
}

// DefaultWaypointConfig reproduces the paper's mobility: speeds up to
// 20 m/s with a 60 s pause, in the given area, starting at start.
func DefaultWaypointConfig(bounds geo.Rect, start geo.Point) WaypointConfig {
	return WaypointConfig{
		Bounds:   bounds,
		MinSpeed: 1,
		MaxSpeed: 20,
		Pause:    60 * sim.Second,
		Start:    start,
	}
}

// NewWaypoint builds a random waypoint model drawing randomness from rng.
// rng must be dedicated to this model (use sim.Engine.NewStream) so other
// components cannot perturb the trajectory.
func NewWaypoint(cfg WaypointConfig, rng *rand.Rand) *Waypoint {
	if cfg.MinSpeed <= 0 {
		panic("mobility: MinSpeed must be positive")
	}
	if cfg.MaxSpeed < cfg.MinSpeed {
		panic("mobility: MaxSpeed must be >= MinSpeed")
	}
	w := &Waypoint{
		bounds:   cfg.Bounds,
		minSpeed: cfg.MinSpeed,
		maxSpeed: cfg.MaxSpeed,
		pause:    cfg.Pause,
		rng:      rng,
	}
	start := cfg.Bounds.Clamp(cfg.Start)
	// Seed with a zero-length first leg so the node rests at Start for one
	// pause interval before moving, matching CMU setdest behavior.
	w.legs = append(w.legs, leg{
		start:  0,
		arrive: 0,
		depart: cfg.Pause,
		from:   start,
		to:     start,
	})
	return w
}

// RandomStart draws a uniform position in bounds, the usual way to place
// waypoint nodes initially.
func RandomStart(bounds geo.Rect, rng *rand.Rand) geo.Point {
	return geo.Point{
		X: bounds.Min.X + rng.Float64()*bounds.Width(),
		Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
	}
}

// extendTo generates legs until the last one departs after t.
func (w *Waypoint) extendTo(t sim.Time) {
	for w.legs[len(w.legs)-1].depart <= t {
		prev := w.legs[len(w.legs)-1]
		dest := geo.Point{
			X: w.bounds.Min.X + w.rng.Float64()*w.bounds.Width(),
			Y: w.bounds.Min.Y + w.rng.Float64()*w.bounds.Height(),
		}
		speed := w.minSpeed + w.rng.Float64()*(w.maxSpeed-w.minSpeed)
		dist := prev.to.Dist(dest)
		travel := sim.Time(dist / speed * float64(sim.Second))
		if travel <= 0 {
			travel = 1 // degenerate same-point destination
		}
		w.legs = append(w.legs, leg{
			start:  prev.depart,
			arrive: prev.depart + travel,
			depart: prev.depart + travel + w.pause,
			from:   prev.to,
			to:     dest,
		})
	}
}

// DisableLegMemo restores the seed's binary-search-only PositionAt
// lookup. The memo never changes returned positions (the pinned-leg
// test asserts as much); this switch exists so the brute-force baseline
// in cmd/bench measures the full pre-index hot path.
func (w *Waypoint) DisableLegMemo() { w.noMemo = true }

// PositionAt implements Model.
func (w *Waypoint) PositionAt(t sim.Time) geo.Point {
	if t < 0 {
		t = 0
	}
	w.extendTo(t)
	if !w.noMemo {
		// Fast path: t usually lands on the memoized leg or the next one.
		if i := w.lastLeg; i < len(w.legs) {
			if l := &w.legs[i]; l.depart > t {
				if i == 0 || w.legs[i-1].depart <= t {
					return legPos(l, t)
				}
			} else if i+1 < len(w.legs) {
				if l2 := &w.legs[i+1]; l2.depart > t {
					w.lastLeg = i + 1
					return legPos(l2, t)
				}
			}
		}
	}
	// Binary search the leg containing t.
	i := sort.Search(len(w.legs), func(i int) bool { return w.legs[i].depart > t })
	w.lastLeg = i
	return legPos(&w.legs[i], t)
}

var _ LegProvider = (*Waypoint)(nil)

// LegAt implements LegProvider. It is the slow companion of the
// channel-side position cache: called once per leg transition per node,
// so the plain binary search suffices.
func (w *Waypoint) LegAt(t sim.Time) Leg {
	if t < 0 {
		t = 0
	}
	w.extendTo(t)
	i := sort.Search(len(w.legs), func(i int) bool { return w.legs[i].depart > t })
	w.lastLeg = i
	l := &w.legs[i]
	return Leg{Start: l.start, Arrive: l.arrive, Depart: l.depart, From: l.from, To: l.to}
}

// legPos evaluates the position on leg l at time t, which must satisfy
// (prev.depart <= t < l.depart).
func legPos(l *leg, t sim.Time) geo.Point {
	if t >= l.arrive {
		return l.to
	}
	f := float64(t-l.start) / float64(l.arrive-l.start)
	return l.from.Lerp(l.to, f)
}

// Trace is a scripted Model interpolating linearly between fixed
// (time, position) samples; before the first sample the node sits at the
// first position, after the last it sits at the last. Tests use it to
// create exactly-reproducible encounters.
type Trace struct {
	Times  []sim.Time  // strictly increasing
	Points []geo.Point // same length as Times
}

var _ Model = Trace{}

// PositionAt implements Model.
func (tr Trace) PositionAt(t sim.Time) geo.Point {
	if len(tr.Times) == 0 {
		return geo.Point{}
	}
	if t <= tr.Times[0] {
		return tr.Points[0]
	}
	last := len(tr.Times) - 1
	if t >= tr.Times[last] {
		return tr.Points[last]
	}
	i := sort.Search(len(tr.Times), func(i int) bool { return tr.Times[i] > t }) - 1
	span := tr.Times[i+1] - tr.Times[i]
	f := float64(t-tr.Times[i]) / float64(span)
	return tr.Points[i].Lerp(tr.Points[i+1], f)
}

// Linear moves at constant velocity from Start, unbounded. Useful in MAC
// and forwarding tests that need a node drifting out of range.
type Linear struct {
	Start    geo.Point
	Velocity geo.Point // meters per second
}

var _ Model = Linear{}

// PositionAt implements Model.
func (l Linear) PositionAt(t sim.Time) geo.Point {
	s := t.Seconds()
	return geo.Point{X: l.Start.X + l.Velocity.X*s, Y: l.Start.Y + l.Velocity.Y*s}
}

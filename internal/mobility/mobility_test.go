package mobility

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

func TestStatic(t *testing.T) {
	m := Static{At: geo.Pt(10, 20)}
	for _, tm := range []sim.Time{0, sim.Second, 900 * sim.Second} {
		if got := m.PositionAt(tm); got != (geo.Pt(10, 20)) {
			t.Fatalf("PositionAt(%v) = %v", tm, got)
		}
	}
}

func newTestWaypoint(seed int64) *Waypoint {
	bounds := geo.NewRect(1500, 300)
	cfg := DefaultWaypointConfig(bounds, geo.Pt(750, 150))
	return NewWaypoint(cfg, rand.New(rand.NewSource(seed)))
}

func TestWaypointStartsAtStart(t *testing.T) {
	w := newTestWaypoint(1)
	if got := w.PositionAt(0); got != (geo.Pt(750, 150)) {
		t.Fatalf("PositionAt(0) = %v", got)
	}
	// Initial pause: still at start just before the first departure.
	if got := w.PositionAt(59 * sim.Second); got != (geo.Pt(750, 150)) {
		t.Fatalf("PositionAt(59s) = %v, want start (initial pause)", got)
	}
}

func TestWaypointStaysInBounds(t *testing.T) {
	w := newTestWaypoint(2)
	bounds := geo.NewRect(1500, 300)
	for s := 0; s <= 3600; s++ {
		p := w.PositionAt(sim.Time(s) * sim.Second)
		if !bounds.Contains(p) {
			t.Fatalf("position at %ds out of bounds: %v", s, p)
		}
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	w := newTestWaypoint(3)
	const dt = 100 * sim.Millisecond
	prev := w.PositionAt(0)
	for tm := dt; tm < 1800*sim.Second; tm += dt {
		cur := w.PositionAt(tm)
		v := prev.Dist(cur) / (sim.Time(dt)).Seconds()
		if v > 20.0001 {
			t.Fatalf("instantaneous speed %v m/s at %v exceeds MaxSpeed", v, tm)
		}
		prev = cur
	}
}

func TestWaypointDeterministic(t *testing.T) {
	a, b := newTestWaypoint(7), newTestWaypoint(7)
	for s := 0; s < 900; s += 13 {
		tm := sim.Time(s) * sim.Second
		if a.PositionAt(tm) != b.PositionAt(tm) {
			t.Fatalf("trajectories diverge at %v", tm)
		}
	}
}

func TestWaypointOutOfOrderQueries(t *testing.T) {
	a, b := newTestWaypoint(9), newTestWaypoint(9)
	// Query b far in the future first, then compare early positions.
	_ = b.PositionAt(3000 * sim.Second)
	for s := 0; s < 600; s += 7 {
		tm := sim.Time(s) * sim.Second
		if a.PositionAt(tm) != b.PositionAt(tm) {
			t.Fatalf("out-of-order query changed trajectory at %v", tm)
		}
	}
}

func TestWaypointNegativeTimeClamps(t *testing.T) {
	w := newTestWaypoint(4)
	if w.PositionAt(-sim.Second) != w.PositionAt(0) {
		t.Fatal("negative time should clamp to start")
	}
}

func TestWaypointActuallyMoves(t *testing.T) {
	w := newTestWaypoint(5)
	start := w.PositionAt(0)
	moved := false
	for s := 60; s < 600; s += 10 {
		if w.PositionAt(sim.Time(s)*sim.Second) != start {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("node never moved in 600s")
	}
}

func TestWaypointPausesAtWaypoints(t *testing.T) {
	w := newTestWaypoint(6)
	w.extendTo(1000 * sim.Second)
	l := w.legs[1]
	// During [arrive, depart) the node must sit at the leg's destination.
	mid := l.arrive + (l.depart-l.arrive)/2
	if got := w.PositionAt(mid); got != l.to {
		t.Fatalf("during pause, position = %v want %v", got, l.to)
	}
	if l.depart-l.arrive != 60*sim.Second {
		t.Fatalf("pause = %v, want 60s", l.depart-l.arrive)
	}
}

func TestWaypointConfigValidation(t *testing.T) {
	bounds := geo.NewRect(100, 100)
	for name, cfg := range map[string]WaypointConfig{
		"zero min speed": {Bounds: bounds, MinSpeed: 0, MaxSpeed: 10},
		"max below min":  {Bounds: bounds, MinSpeed: 10, MaxSpeed: 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewWaypoint(cfg, rand.New(rand.NewSource(1)))
		}()
	}
}

func TestWaypointStartClampedToBounds(t *testing.T) {
	bounds := geo.NewRect(100, 100)
	cfg := DefaultWaypointConfig(bounds, geo.Pt(500, 500))
	w := NewWaypoint(cfg, rand.New(rand.NewSource(1)))
	if got := w.PositionAt(0); got != (geo.Pt(100, 100)) {
		t.Fatalf("start = %v, want clamped (100,100)", got)
	}
}

func TestRandomStartUniformInBounds(t *testing.T) {
	bounds := geo.NewRect(1500, 300)
	rng := rand.New(rand.NewSource(11))
	var sumX, sumY float64
	const n = 10000
	for i := 0; i < n; i++ {
		p := RandomStart(bounds, rng)
		if !bounds.Contains(p) {
			t.Fatalf("RandomStart out of bounds: %v", p)
		}
		sumX += p.X
		sumY += p.Y
	}
	if mx := sumX / n; mx < 700 || mx > 800 {
		t.Errorf("mean X = %v, want ≈750", mx)
	}
	if my := sumY / n; my < 135 || my > 165 {
		t.Errorf("mean Y = %v, want ≈150", my)
	}
}

func TestTraceInterpolation(t *testing.T) {
	tr := Trace{
		Times:  []sim.Time{0, 10 * sim.Second, 20 * sim.Second},
		Points: []geo.Point{geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(100, 100)},
	}
	tests := []struct {
		at   sim.Time
		want geo.Point
	}{
		{-sim.Second, geo.Pt(0, 0)},
		{0, geo.Pt(0, 0)},
		{5 * sim.Second, geo.Pt(50, 0)},
		{10 * sim.Second, geo.Pt(100, 0)},
		{15 * sim.Second, geo.Pt(100, 50)},
		{20 * sim.Second, geo.Pt(100, 100)},
		{99 * sim.Second, geo.Pt(100, 100)},
	}
	for _, tt := range tests {
		if got := tr.PositionAt(tt.at); got != tt.want {
			t.Errorf("PositionAt(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestTraceEmpty(t *testing.T) {
	var tr Trace
	if got := tr.PositionAt(5 * sim.Second); got != (geo.Point{}) {
		t.Fatalf("empty trace position = %v", got)
	}
}

func TestLinear(t *testing.T) {
	l := Linear{Start: geo.Pt(0, 0), Velocity: geo.Pt(10, -5)}
	if got := l.PositionAt(2 * sim.Second); got != (geo.Pt(20, -10)) {
		t.Fatalf("PositionAt(2s) = %v", got)
	}
}

// Property: a waypoint node's displacement over any interval never exceeds
// MaxSpeed * interval.
func TestWaypointDisplacementProperty(t *testing.T) {
	w := newTestWaypoint(12)
	prop := func(aRaw, bRaw uint16) bool {
		a := sim.Time(aRaw) * sim.Second / 10
		b := sim.Time(bRaw) * sim.Second / 10
		if a > b {
			a, b = b, a
		}
		d := w.PositionAt(a).Dist(w.PositionAt(b))
		maxD := 20 * (b - a).Seconds()
		return d <= maxD+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package mobility

import (
	"math/rand"
	"testing"

	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// newTestPair builds two waypoint models with identical trajectories
// (same seed), one memoized and one with the seed's binary-search-only
// lookup.
func newTestPair(seed int64) (memo, plain *Waypoint) {
	cfg := WaypointConfig{
		Bounds:   geo.NewRect(1500, 300),
		MinSpeed: 1,
		MaxSpeed: 20,
		Pause:    5 * sim.Second,
		Start:    geo.Pt(100, 100),
	}
	memo = NewWaypoint(cfg, rand.New(rand.NewSource(seed)))
	plain = NewWaypoint(cfg, rand.New(rand.NewSource(seed)))
	plain.DisableLegMemo()
	return memo, plain
}

// TestLegMemoMatchesSearch drives the memoized model through monotonic,
// random, and adversarial (backwards, repeated, boundary) query orders
// and requires bit-identical positions to the pure binary-search model.
func TestLegMemoMatchesSearch(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		memo, plain := newTestPair(seed)
		rng := rand.New(rand.NewSource(seed + 100))

		var times []sim.Time
		// Near-monotonic sweep, the radio hot-path pattern.
		for ti := sim.Time(0); ti < 900*sim.Second; ti += sim.Time(rng.Intn(int(2 * sim.Second))) {
			times = append(times, ti)
		}
		// Fully random jumps, both directions.
		for i := 0; i < 2000; i++ {
			times = append(times, sim.Time(rng.Int63n(int64(900*sim.Second))))
		}
		// Repeats and exact leg boundaries.
		times = append(times, times[len(times)-1], 0, 0)
		memo.extendTo(200 * sim.Second)
		for _, l := range memo.legs {
			times = append(times, l.start, l.arrive, l.depart-1, l.depart)
		}

		for k, ti := range times {
			got := memo.PositionAt(ti)
			want := plain.PositionAt(ti)
			if got != want {
				t.Fatalf("seed %d query %d: PositionAt(%v) = %v with memo, %v without",
					seed, k, ti, got, want)
			}
		}
	}
}

// TestLegMemoNegativeTime pins the t<0 clamp through the memo path.
func TestLegMemoNegativeTime(t *testing.T) {
	memo, plain := newTestPair(9)
	if got, want := memo.PositionAt(-sim.Second), plain.PositionAt(-sim.Second); got != want {
		t.Fatalf("PositionAt(-1s) = %v with memo, %v without", got, want)
	}
}

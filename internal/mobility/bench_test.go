package mobility

import (
	"math/rand"
	"testing"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// benchPositionAt queries a waypoint model at mostly-advancing times —
// the channel's access pattern — with the last-hit leg memo on or off.
func benchPositionAt(b *testing.B, memo bool) {
	arena := geo.NewRect(1500, 300)
	rng := rand.New(rand.NewSource(1))
	w := NewWaypoint(WaypointConfig{
		Bounds:   arena,
		MinSpeed: 1,
		MaxSpeed: 20,
		Pause:    sim.Second,
		Start:    RandomStart(arena, rng),
	}, rng)
	if !memo {
		w.DisableLegMemo()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink geo.Point
	for i := 0; i < b.N; i++ {
		t := sim.Time(i%60000) * sim.Time(time.Millisecond)
		sink = w.PositionAt(t)
	}
	_ = sink
}

func BenchmarkWaypointPositionAt(b *testing.B) {
	b.Run("memo", func(b *testing.B) { benchPositionAt(b, true) })
	b.Run("nomemo", func(b *testing.B) { benchPositionAt(b, false) })
}

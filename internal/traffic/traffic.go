// Package traffic generates the constant-bit-rate (CBR) workload the
// paper's evaluation uses: 30 flows originated by 20 sending nodes.
package traffic

import (
	"fmt"
	"math/rand"
	"time"

	"anongeo/internal/sim"
)

// Flow is one CBR conversation between two node indices.
type Flow struct {
	Src, Dst int
}

// Config parameterizes a CBR generator.
type Config struct {
	Flows        []Flow
	Interval     time.Duration // packet spacing per flow
	Jitter       float64       // fraction of Interval, uniform ± per packet
	PayloadBytes int
	Start        sim.Time // first packets no earlier than this
	Stop         sim.Time // no packets at or after this
}

// SendFunc originates one application packet on a flow. Implementations
// route it via their protocol stack.
type SendFunc func(flow Flow, pktID uint64, payloadBytes int)

// Generator schedules CBR packets on a simulation engine.
type Generator struct {
	eng    *sim.Engine
	cfg    Config
	send   SendFunc
	rng    *rand.Rand
	nextID uint64
	sent   int
}

// NewGenerator validates the config and prepares a generator; call Start
// to arm it. rng must be a dedicated stream.
func NewGenerator(eng *sim.Engine, cfg Config, send SendFunc, rng *rand.Rand) (*Generator, error) {
	if len(cfg.Flows) == 0 {
		return nil, fmt.Errorf("traffic: no flows configured")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("traffic: interval must be positive, got %v", cfg.Interval)
	}
	if cfg.Stop <= cfg.Start {
		return nil, fmt.Errorf("traffic: stop %v not after start %v", cfg.Stop, cfg.Start)
	}
	if send == nil {
		return nil, fmt.Errorf("traffic: nil send function")
	}
	return &Generator{eng: eng, cfg: cfg, send: send, rng: rng}, nil
}

// Sent reports how many packets have been originated.
func (g *Generator) Sent() int { return g.sent }

// Start arms every flow with a random phase so flows do not synchronize.
func (g *Generator) Start() {
	for i := range g.cfg.Flows {
		flow := g.cfg.Flows[i]
		phase := time.Duration(g.rng.Float64() * float64(g.cfg.Interval))
		g.eng.At(g.cfg.Start.Add(phase), func() { g.tick(flow) })
	}
}

// tick sends one packet and schedules the flow's next one.
func (g *Generator) tick(flow Flow) {
	now := g.eng.Now()
	if now >= g.cfg.Stop {
		return
	}
	g.nextID++
	g.sent++
	g.send(flow, g.nextID, g.cfg.PayloadBytes)
	iv := g.cfg.Interval
	jit := time.Duration((g.rng.Float64()*2 - 1) * g.cfg.Jitter * float64(iv))
	g.eng.Schedule(iv+jit, func() { g.tick(flow) })
}

// PickFlows builds the paper's workload shape: `flows` conversations
// originated by `senders` distinct sending nodes out of `nodes` total,
// each toward a random distinct destination.
func PickFlows(nodes, senders, flows int, rng *rand.Rand) ([]Flow, error) {
	if senders > nodes {
		return nil, fmt.Errorf("traffic: %d senders exceed %d nodes", senders, nodes)
	}
	if nodes < 2 {
		return nil, fmt.Errorf("traffic: need at least 2 nodes")
	}
	perm := rng.Perm(nodes)
	senderSet := perm[:senders]
	out := make([]Flow, 0, flows)
	for i := 0; i < flows; i++ {
		src := senderSet[i%senders]
		dst := rng.Intn(nodes)
		for dst == src {
			dst = rng.Intn(nodes)
		}
		out = append(out, Flow{Src: src, Dst: dst})
	}
	return out, nil
}

package traffic

import (
	"testing"
	"time"

	"anongeo/internal/sim"
)

func TestGeneratorValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	send := func(Flow, uint64, int) {}
	cases := []Config{
		{Interval: time.Second, Stop: 10 * sim.Second},                     // no flows
		{Flows: []Flow{{0, 1}}, Stop: 10 * sim.Second},                     // no interval
		{Flows: []Flow{{0, 1}}, Interval: time.Second, Start: 10, Stop: 5}, // stop before start
	}
	for i, cfg := range cases {
		if _, err := NewGenerator(eng, cfg, send, eng.NewStream()); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewGenerator(eng, Config{Flows: []Flow{{0, 1}}, Interval: time.Second, Stop: 10 * sim.Second}, nil, eng.NewStream()); err == nil {
		t.Error("nil send accepted")
	}
}

func TestCBRRateAndWindow(t *testing.T) {
	eng := sim.NewEngine(2)
	var times []sim.Time
	cfg := Config{
		Flows:        []Flow{{0, 1}},
		Interval:     time.Second,
		PayloadBytes: 64,
		Start:        10 * sim.Second,
		Stop:         20 * sim.Second,
	}
	g, err := NewGenerator(eng, cfg, func(f Flow, id uint64, b int) {
		times = append(times, eng.Now())
		if b != 64 {
			t.Errorf("payload = %d", b)
		}
	}, eng.NewStream())
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(times) < 9 || len(times) > 11 {
		t.Fatalf("sent %d packets over a 10 s window at 1/s", len(times))
	}
	for _, tm := range times {
		if tm < 10*sim.Second || tm >= 20*sim.Second {
			t.Fatalf("packet at %v outside window", tm)
		}
	}
	if g.Sent() != len(times) {
		t.Fatalf("Sent() = %d, callbacks %d", g.Sent(), len(times))
	}
}

func TestPacketIDsUnique(t *testing.T) {
	eng := sim.NewEngine(3)
	seen := map[uint64]bool{}
	cfg := Config{
		Flows:        []Flow{{0, 1}, {1, 2}, {2, 0}},
		Interval:     100 * time.Millisecond,
		PayloadBytes: 10,
		Stop:         5 * sim.Second,
	}
	g, err := NewGenerator(eng, cfg, func(f Flow, id uint64, b int) {
		if seen[id] {
			t.Fatalf("duplicate pktID %d", id)
		}
		seen[id] = true
	}, eng.NewStream())
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(seen) < 100 {
		t.Fatalf("only %d packets for 3 flows at 10/s over 5s", len(seen))
	}
}

func TestFlowsDesynchronized(t *testing.T) {
	eng := sim.NewEngine(4)
	firstByFlow := map[int]sim.Time{}
	flows := []Flow{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	cfg := Config{Flows: flows, Interval: time.Second, PayloadBytes: 1, Stop: 30 * sim.Second}
	g, err := NewGenerator(eng, cfg, func(f Flow, id uint64, b int) {
		if _, ok := firstByFlow[f.Src]; !ok {
			firstByFlow[f.Src] = eng.Now()
		}
	}, eng.NewStream())
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	distinct := map[sim.Time]bool{}
	for _, tm := range firstByFlow {
		distinct[tm] = true
	}
	if len(distinct) < 2 {
		t.Fatal("all flows started at the same instant")
	}
}

func TestPickFlows(t *testing.T) {
	eng := sim.NewEngine(5)
	flows, err := PickFlows(50, 20, 30, eng.Rand())
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 30 {
		t.Fatalf("flows = %d", len(flows))
	}
	senders := map[int]bool{}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		if f.Src < 0 || f.Src >= 50 || f.Dst < 0 || f.Dst >= 50 {
			t.Fatalf("flow out of range: %+v", f)
		}
		senders[f.Src] = true
	}
	if len(senders) != 20 {
		t.Fatalf("distinct senders = %d, want 20", len(senders))
	}
}

func TestPickFlowsValidation(t *testing.T) {
	eng := sim.NewEngine(6)
	if _, err := PickFlows(10, 20, 5, eng.Rand()); err == nil {
		t.Fatal("senders > nodes accepted")
	}
	if _, err := PickFlows(1, 1, 1, eng.Rand()); err == nil {
		t.Fatal("single-node network accepted")
	}
}

package locservice

import (
	"crypto/rsa"
	"sync"
	"testing"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

const ttl = 30 * sim.Second

var (
	lsOnce sync.Once
	lsKeys map[anoncrypto.Identity]*anoncrypto.KeyPair
)

func lsFixtures(t testing.TB) map[anoncrypto.Identity]*anoncrypto.KeyPair {
	t.Helper()
	lsOnce.Do(func() {
		lsKeys = make(map[anoncrypto.Identity]*anoncrypto.KeyPair)
		for _, id := range []anoncrypto.Identity{"A", "B", "C", "D", "E"} {
			kp, err := anoncrypto.GenerateKeyPair(id, anoncrypto.DefaultKeyBits)
			if err != nil {
				t.Fatalf("keygen: %v", err)
			}
			lsKeys[id] = kp
		}
	})
	return lsKeys
}

func testSSA() ServerSelection {
	return NewServerSelection(geo.NewGridMap(geo.NewRect(1500, 300), 300), 2)
}

func dirOf(keys map[anoncrypto.Identity]*anoncrypto.KeyPair) func(anoncrypto.Identity) (*rsa.PublicKey, bool) {
	return func(id anoncrypto.Identity) (*rsa.PublicKey, bool) {
		kp, ok := keys[id]
		if !ok {
			return nil, false
		}
		return kp.Public(), true
	}
}

func TestSSAHomeCellsDeterministic(t *testing.T) {
	s := testSSA()
	a, b := s.HomeCells("node-42"), s.HomeCells("node-42")
	if len(a) != 2 {
		t.Fatalf("replicas = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ssa not deterministic")
		}
	}
	if s.HomeCells("node-42")[0] == s.HomeCells("node-43")[0] &&
		s.HomeCells("node-42")[1] == s.HomeCells("node-43")[1] {
		t.Fatal("different identities share all home cells (suspicious)")
	}
}

func TestSSAHomeCellsInGrid(t *testing.T) {
	s := testSSA()
	for i := 0; i < 50; i++ {
		for _, c := range s.HomeCells(anoncrypto.Identity(rune('a' + i))) {
			if c.Col < 0 || c.Col >= s.Grid.Cols() || c.Row < 0 || c.Row >= s.Grid.Rows() {
				t.Fatalf("home cell %v outside grid", c)
			}
		}
	}
}

func TestPlainServerRoundTrip(t *testing.T) {
	s := NewPlainServer(ttl)
	s.Update("A", geo.Pt(100, 100), sim.Second)
	loc, ok := s.Lookup("A", 2*sim.Second)
	if !ok || loc != geo.Pt(100, 100) {
		t.Fatalf("Lookup = %v %v", loc, ok)
	}
	if _, ok := s.Lookup("A", 60*sim.Second); ok {
		t.Fatal("stale record served")
	}
	if _, ok := s.Lookup("B", sim.Second); ok {
		t.Fatal("phantom record")
	}
}

func TestPlainServerExposesEverything(t *testing.T) {
	s := NewPlainServer(ttl)
	s.Update("A", geo.Pt(1, 1), 0)
	s.Update("B", geo.Pt(2, 2), 0)
	recs := s.Records(sim.Second)
	if len(recs) != 2 {
		t.Fatalf("Records = %d", len(recs))
	}
	// The privacy leak the paper targets: identity and location together.
	for _, r := range recs {
		if r.ID == "" {
			t.Fatal("record without identity")
		}
	}
}

func TestIndexDeterministicAndDistinct(t *testing.T) {
	keys := lsFixtures(t)
	i1 := ComputeIndex(keys["B"].Public(), "A", "B")
	i2 := ComputeIndex(keys["B"].Public(), "A", "B")
	if i1 != i2 {
		t.Fatal("index not deterministic — requester could never match")
	}
	if ComputeIndex(keys["B"].Public(), "C", "B") == i1 {
		t.Fatal("different updaters same index")
	}
	if ComputeIndex(keys["C"].Public(), "A", "C") == i1 {
		t.Fatal("different requesters same index")
	}
}

func TestSealOpenLocation(t *testing.T) {
	keys := lsFixtures(t)
	sealed, err := SealLocation(keys["B"].Public(), "A", geo.Pt(750, 150), 9*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	id, loc, ts, err := OpenLocation(keys["B"].Private, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if id != "A" || ts != 9*sim.Second || loc.Dist(geo.Pt(750, 150)) > 0.01 {
		t.Fatalf("opened = %v %v %v", id, loc, ts)
	}
	// Anyone else fails.
	if _, _, _, err := OpenLocation(keys["C"].Private, sealed); err == nil {
		t.Fatal("non-requester opened the sealed location")
	}
}

func TestALSEndToEndIndexed(t *testing.T) {
	keys := lsFixtures(t)
	ssa := testSSA()
	dir := dirOf(keys)
	up := &Updater{Self: *keys["A"], SSA: ssa, Directory: dir}
	req := &Requester{Self: keys["B"], SSA: ssa, Directory: dir}
	srv := NewServer(ttl)

	// A updates for anticipated requesters B and C.
	updates, err := up.BuildUpdates([]anoncrypto.Identity{"B", "C"}, geo.Pt(700, 100), 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	cells := ssa.HomeCells("A")
	if len(updates) != len(dedupCells(cells)) {
		t.Fatalf("updates span %d cells, want %d", len(updates), len(dedupCells(cells)))
	}
	for _, us := range updates {
		for _, u := range us {
			srv.Apply(u, 5*sim.Second)
		}
	}

	// B queries by index.
	q, cell, err := req.BuildQuery("A", geo.Pt(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if cell != cells[0] {
		t.Fatalf("query routed to %v, want %v", cell, cells[0])
	}
	rep, ok := srv.Answer(q, 6*sim.Second)
	if !ok {
		t.Fatal("server found no record for the index")
	}
	if len(rep.Sealed) != 1 {
		t.Fatalf("indexed reply carries %d records, want 1", len(rep.Sealed))
	}
	loc, ts, ok := req.OpenReply(rep, "A")
	if !ok {
		t.Fatal("requester could not open the reply")
	}
	if loc.Dist(geo.Pt(700, 100)) > 0.01 || ts != 5*sim.Second {
		t.Fatalf("wrong location: %v %v", loc, ts)
	}
}

func dedupCells(cells []geo.Cell) map[geo.Cell]bool {
	m := map[geo.Cell]bool{}
	for _, c := range cells {
		m[c] = true
	}
	return m
}

func TestALSServerLearnsNothing(t *testing.T) {
	keys := lsFixtures(t)
	ssa := testSSA()
	up := &Updater{Self: *keys["A"], SSA: ssa, Directory: dirOf(keys)}
	updates, err := up.BuildUpdates([]anoncrypto.Identity{"B"}, geo.Pt(123, 45), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, us := range updates {
		for _, u := range us {
			// The stored blob must not contain the identity or the
			// location in the clear.
			blob := append([]byte{}, u.Sealed...)
			blob = append(blob, u.Index[:]...)
			if containsSub(blob, []byte("A")) && len("A") > 1 {
				t.Fatal("identity visible in stored record")
			}
			// A 1-byte needle is meaningless; instead check the server
			// cannot decrypt: only B's private key opens the blob.
			if _, _, _, err := OpenLocation(keys["C"].Private, u.Sealed); err == nil {
				t.Fatal("third party decrypted the stored location")
			}
		}
	}
}

func containsSub(h, n []byte) bool {
	if len(n) == 0 || len(n) > len(h) {
		return false
	}
	for i := 0; i+len(n) <= len(h); i++ {
		match := true
		for j := range n {
			if h[i+j] != n[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestALSUnanticipatedRequesterFails(t *testing.T) {
	// The paper's stated limitation: a requester A did not anticipate
	// cannot retrieve the location.
	keys := lsFixtures(t)
	ssa := testSSA()
	dir := dirOf(keys)
	up := &Updater{Self: *keys["A"], SSA: ssa, Directory: dir}
	srv := NewServer(ttl)
	updates, err := up.BuildUpdates([]anoncrypto.Identity{"B"}, geo.Pt(1, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, us := range updates {
		for _, u := range us {
			srv.Apply(u, 0)
		}
	}
	stranger := &Requester{Self: keys["D"], SSA: ssa, Directory: dir}
	q, _, err := stranger.BuildQuery("A", geo.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.Answer(q, sim.Second); ok {
		t.Fatal("server answered an unanticipated requester's index")
	}
}

func TestALSScanVariant(t *testing.T) {
	keys := lsFixtures(t)
	ssa := testSSA()
	dir := dirOf(keys)
	srv := NewServer(ttl)
	// Three updaters co-located on one server, all anticipating B.
	for _, id := range []anoncrypto.Identity{"A", "C", "D"} {
		up := &Updater{Self: *keys[id], SSA: ssa, Directory: dir}
		updates, err := up.BuildUpdates([]anoncrypto.Identity{"B"}, geo.Pt(10, 10), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, us := range updates {
			for _, u := range us {
				srv.Apply(u, 0)
			}
		}
	}
	req := &Requester{Self: keys["B"], SSA: ssa, Directory: dir}
	sq, _ := req.BuildScanQuery("A", geo.Pt(5, 5))
	rep := srv.AnswerScan(sq, sim.Second)
	if len(rep.Sealed) != 3 {
		t.Fatalf("scan reply has %d records, want 3", len(rep.Sealed))
	}
	loc, _, ok := req.OpenReply(rep, "A")
	if !ok || loc.Dist(geo.Pt(10, 10)) > 0.01 {
		t.Fatalf("scan retrieval failed: %v %v", loc, ok)
	}
	// Overhead of the alternative: trial decryptions and bigger replies.
	if req.DecryptAttempts < 1 {
		t.Fatal("no decrypt attempts counted")
	}
	if rep.ReplyBytes() <= UpdateBytes() {
		t.Fatalf("scan reply bytes = %d, should exceed one record", rep.ReplyBytes())
	}
}

func TestServerExpiry(t *testing.T) {
	keys := lsFixtures(t)
	srv := NewServer(10 * sim.Second)
	up := &Updater{Self: *keys["A"], SSA: testSSA(), Directory: dirOf(keys)}
	updates, err := up.BuildUpdates([]anoncrypto.Identity{"B"}, geo.Pt(1, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, us := range updates {
		for _, u := range us {
			srv.Apply(u, 0)
		}
	}
	if srv.Len(5*sim.Second) == 0 {
		t.Fatal("record missing before expiry")
	}
	if srv.Len(20*sim.Second) != 0 {
		t.Fatal("record survived past TTL")
	}
	srv.Expire(20 * sim.Second)
	if len(srv.records) != 0 {
		t.Fatal("Expire left stale records")
	}
}

func TestMessageSizeModels(t *testing.T) {
	if UpdateBytes() != 129 {
		t.Fatalf("UpdateBytes = %d", UpdateBytes())
	}
	if QueryBytes() <= ScanQueryBytes() {
		t.Fatal("indexed query should be larger than scan query")
	}
	rep := &Reply{Sealed: []SealedLocation{make([]byte, 64), make([]byte, 64)}}
	if rep.ReplyBytes() != 1+8+128 {
		t.Fatalf("ReplyBytes = %d", rep.ReplyBytes())
	}
	if PlainUpdateBytes() >= UpdateBytes() {
		t.Fatal("plain update should be smaller than sealed update")
	}
	if PlainQueryBytes() <= 0 || PlainReplyBytes() <= 0 {
		t.Fatal("size models must be positive")
	}
}

func TestUpdaterMissingKeyFails(t *testing.T) {
	keys := lsFixtures(t)
	up := &Updater{Self: *keys["A"], SSA: testSSA(), Directory: dirOf(keys)}
	if _, err := up.BuildUpdates([]anoncrypto.Identity{"nobody"}, geo.Pt(0, 0), 0); err == nil {
		t.Fatal("update for unknown requester succeeded")
	}
	req := &Requester{Self: keys["B"], SSA: testSSA(), Directory: dirOf(keys)}
	if _, _, err := req.BuildQuery("nobody", geo.Pt(0, 0)); err == nil {
		t.Fatal("query for unknown target succeeded")
	}
}

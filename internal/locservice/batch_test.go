package locservice

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// fillServer stores n records with seen times spread across [0, 40s) so
// a query at a later `now` sees a mix of live, boundary, and expired
// records. Indices are synthetic: determinism matters, secrecy does not.
func fillServer(t *testing.T, srv *Server, n int, rng *rand.Rand) []Index {
	t.Helper()
	idxs := make([]Index, n)
	for i := range idxs {
		rng.Read(idxs[i][:])
		seen := sim.Time(rng.Int63n(int64(40 * sim.Second)))
		srv.Apply(&Update{Index: idxs[i], Sealed: SealedLocation{byte(i)}}, seen)
	}
	return idxs
}

// AnswerBatch must give per-query verdicts identical to repeated Answer
// calls at the same `now`, for hits, misses, and expired records alike.
func TestAnswerBatchParityWithAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		srv := NewServer(ttl)
		idxs := fillServer(t, srv, 50, rng)
		now := sim.Time(rng.Int63n(int64(80 * sim.Second)))

		qs := make([]Query, 0, 70)
		for _, idx := range idxs {
			qs = append(qs, Query{Index: idx})
		}
		for i := 0; i < 20; i++ { // queries for records that were never stored
			var idx Index
			rng.Read(idx[:])
			qs = append(qs, Query{Index: idx})
		}

		want := make([]*Reply, len(qs))
		wantFound := 0
		ref := NewServer(ttl)
		for _, idx := range idxs {
			// Rebuild an identical server: AnswerBatch mutates (expires)
			// the original, so the reference answers come from a twin.
			ref.records[idx] = srv.records[idx]
		}
		for i := range qs {
			r, ok := ref.Answer(&qs[i], now)
			want[i] = r
			if ok {
				wantFound++
			}
		}

		got, found := srv.AnswerBatch(qs, now)
		if found != wantFound {
			t.Fatalf("trial %d: AnswerBatch found %d, Answer found %d", trial, found, wantFound)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: batch replies diverge from Answer replies", trial)
		}
	}
}

// The expiry boundary must be identical across every read path: a
// record of age exactly ttl is live, age ttl+1 is gone. This pins the
// shared live() rule so the paths can never drift apart again.
func TestExpiryBoundaryConsistent(t *testing.T) {
	var idx Index
	idx[0] = 1
	for _, tc := range []struct {
		age  sim.Time
		live bool
	}{
		{0, true},
		{ttl, true},
		{ttl + 1, false},
	} {
		srv := NewServer(ttl)
		srv.Apply(&Update{Index: idx, Sealed: SealedLocation{42}}, 0)
		now := tc.age

		_, ok := srv.Answer(&Query{Index: idx}, now)
		if ok != tc.live {
			t.Fatalf("age %v: Answer live=%v, want %v", tc.age, ok, tc.live)
		}
		scan := srv.AnswerScan(&ScanQuery{}, now)
		if (len(scan.Sealed) == 1) != tc.live {
			t.Fatalf("age %v: AnswerScan returned %d records, want live=%v", tc.age, len(scan.Sealed), tc.live)
		}
		if got := srv.Len(now); (got == 1) != tc.live {
			t.Fatalf("age %v: Len=%d, want live=%v", tc.age, got, tc.live)
		}
		reps, found := srv.AnswerBatch([]Query{{Index: idx}}, now)
		if (found == 1) != tc.live || (reps[0] != nil) != tc.live {
			t.Fatalf("age %v: AnswerBatch found=%d, want live=%v", tc.age, found, tc.live)
		}
	}
}

// AnswerScan replies must not depend on map iteration order.
func TestAnswerScanDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	srv := NewServer(ttl)
	fillServer(t, srv, 40, rng)
	first := srv.AnswerScan(&ScanQuery{}, 20*sim.Second)
	for i := 0; i < 10; i++ {
		if got := srv.AnswerScan(&ScanQuery{}, 20*sim.Second); !reflect.DeepEqual(got, first) {
			t.Fatalf("scan %d returned a different ordering", i)
		}
	}
	for i := 1; i < len(first.Sealed); i++ {
		if string(first.Sealed[i-1]) == string(first.Sealed[i]) {
			t.Fatalf("duplicate payloads make the order check vacuous")
		}
	}
}

// The server must tolerate concurrent updates and batch queries — the
// lbs frontend serves queries while updates stream in.
func TestServerConcurrentAccess(t *testing.T) {
	srv := NewServer(ttl)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			qs := make([]Query, 8)
			for i := 0; i < 200; i++ {
				var idx Index
				rng.Read(idx[:])
				srv.Apply(&Update{Index: idx, Sealed: SealedLocation{byte(i)}}, sim.Time(i)*sim.Second)
				for j := range qs {
					rng.Read(qs[j].Index[:])
				}
				qs[0].Index = idx
				srv.AnswerBatch(qs, sim.Time(i)*sim.Second)
				srv.Answer(&qs[0], sim.Time(i)*sim.Second)
				srv.AnswerScan(&ScanQuery{ReplyLoc: geo.Pt(1, 1)}, sim.Time(i)*sim.Second)
				srv.Len(sim.Time(i) * sim.Second)
			}
		}(w)
	}
	wg.Wait()
}

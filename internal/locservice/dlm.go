// Package locservice implements the location-service layer: the DLM-style
// grid location service (Xue et al.) the paper builds on, and the
// Anonymous Location Service (ALS) of §3.3 on top of it.
//
// DLM divides the network area into equal grids; a publicly known server
// selection algorithm ssa(id) maps a node identity to the grid(s) whose
// resident nodes store its location. In plain DLM the updater sends
// ⟨id, loc⟩ in cleartext, so location servers (arbitrary untrusted peers)
// learn the (identity, location) pairs of everyone they serve — the
// exposure ALS removes.
//
// ALS (Algorithm 3.3) keeps the grid machinery but stores, per
// anticipated requester B, an encrypted record:
//
//	⟨RLU, ssa(A), E_KB(A,B), E_KB(A, loc_A, ts)⟩
//
// The index E_KB(A,B) is a fixed, deterministic block both A and B can
// compute but the server cannot decode; the payload is confidential under
// B's key. A requester asks by index (exposing no identity), or — the
// §3.3 alternative — asks for the whole grid bucket and trial-decrypts,
// trading bandwidth and computation for protection against index
// enumeration.
package locservice

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// ServerSelection is the public ssa: it maps an identity to the grid
// cells hosting that identity's location servers. Replicas spread the
// service over several grids like DLM's hierarchy.
type ServerSelection struct {
	Grid     geo.GridMap
	Replicas int
}

// NewServerSelection builds an ssa over the given grid with r >= 1
// replica home cells per identity.
func NewServerSelection(grid geo.GridMap, replicas int) ServerSelection {
	if replicas < 1 {
		replicas = 1
	}
	return ServerSelection{Grid: grid, Replicas: replicas}
}

// HomeCells returns the cells storing id's location, in replica order.
func (s ServerSelection) HomeCells(id anoncrypto.Identity) []geo.Cell {
	out := make([]geo.Cell, 0, s.Replicas)
	for i := 0; i < s.Replicas; i++ {
		h := sha256.New()
		h.Write([]byte(id))
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(i))
		h.Write(b[:])
		sum := h.Sum(nil)
		idx := int(binary.BigEndian.Uint32(sum[:4]))
		if idx < 0 {
			idx = -idx
		}
		out = append(out, s.Grid.CellByIndex(idx))
	}
	return out
}

// PlainRecord is what a plain-DLM server stores: the raw association the
// paper's threat model worries about.
type PlainRecord struct {
	ID   anoncrypto.Identity
	Loc  geo.Point
	Seen sim.Time
}

// PlainServer is the baseline DLM server role: any node resident in a
// home grid stores cleartext updates and answers queries by identity.
type PlainServer struct {
	ttl     sim.Time
	records map[anoncrypto.Identity]PlainRecord
}

// NewPlainServer creates a server whose records expire after ttl.
func NewPlainServer(ttl sim.Time) *PlainServer {
	return &PlainServer{ttl: ttl, records: make(map[anoncrypto.Identity]PlainRecord)}
}

// Update stores a cleartext location update.
func (s *PlainServer) Update(id anoncrypto.Identity, loc geo.Point, now sim.Time) {
	s.records[id] = PlainRecord{ID: id, Loc: loc, Seen: now}
}

// Lookup answers a query by identity.
func (s *PlainServer) Lookup(id anoncrypto.Identity, now sim.Time) (geo.Point, bool) {
	r, ok := s.records[id]
	if !ok || now-r.Seen > s.ttl {
		return geo.Point{}, false
	}
	return r.Loc, true
}

// Records exposes everything the server knows — used by the adversary
// package to quantify what a compromised plain-DLM server learns.
func (s *PlainServer) Records(now sim.Time) []PlainRecord {
	out := make([]PlainRecord, 0, len(s.records))
	for _, r := range s.records {
		if now-r.Seen <= s.ttl {
			out = append(out, r)
		}
	}
	return out
}

// Len reports the number of live records.
func (s *PlainServer) Len(now sim.Time) int { return len(s.Records(now)) }

// wireLocBytes models a cleartext ⟨id, loc, ts⟩ triple on the air.
const wireLocBytes = 8 + 8 + 8

// PlainUpdateBytes models the plain-DLM RLU message size.
func PlainUpdateBytes() int { return 1 + wireLocBytes }

// PlainQueryBytes models the plain-DLM LREQ size: type + requested id +
// requester id + requester loc.
func PlainQueryBytes() int { return 1 + 8 + 8 + 8 }

// PlainReplyBytes models the plain-DLM LREP size.
func PlainReplyBytes() int { return 1 + wireLocBytes }

// String renders a record for traces.
func (r PlainRecord) String() string {
	return fmt.Sprintf("%s@%s(t=%s)", r.ID, r.Loc, r.Seen)
}

package locservice

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"
	"sync"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// Index is the fixed data block E_KB(A,B) of Algorithm 3.3, used by the
// server as an opaque storage key. It must be *deterministic* so the
// requester independently computes the same bytes: we use textbook RSA on
// SHA-256(A‖B) under B's public key. Determinism is exactly what makes
// the paper's §3.3 enumeration attack possible — an adversary holding
// certificates can trial-compute indices — which motivates the no-index
// alternative implemented below.
type Index [64]byte

// ComputeIndex derives E_KB(A,B). Both the updater A and requester B can
// compute it; the server and eavesdroppers cannot invert it.
func ComputeIndex(requesterPub *rsa.PublicKey, updater, requester anoncrypto.Identity) Index {
	h := sha256.New()
	h.Write([]byte(updater))
	h.Write([]byte{0})
	h.Write([]byte(requester))
	m := new(big.Int).SetBytes(h.Sum(nil))
	c := new(big.Int).Exp(m, big.NewInt(int64(requesterPub.E)), requesterPub.N)
	var idx Index
	c.FillBytes(idx[:])
	return idx
}

// SealedLocation is E_KB(A, loc_A, ts): the confidential payload only the
// anticipated requester can open.
type SealedLocation []byte

// locPayload serializes (A, loc, ts) for encryption; identity capped like
// trapdoors so it fits a PKCS#1 block under RSA-512.
func locPayload(updater anoncrypto.Identity, loc geo.Point, ts sim.Time) ([]byte, error) {
	if len(updater) > anoncrypto.MaxTrapdoorIdentity {
		return nil, fmt.Errorf("locservice: identity %q too long", updater)
	}
	buf := make([]byte, 0, 4+4+8+1+len(updater))
	buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(float32(loc.X)))
	buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(float32(loc.Y)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(ts))
	buf = append(buf, byte(len(updater)))
	buf = append(buf, updater...)
	return buf, nil
}

// SealLocation encrypts (updater, loc, ts) under the requester's key.
func SealLocation(requesterPub *rsa.PublicKey, updater anoncrypto.Identity, loc geo.Point, ts sim.Time) (SealedLocation, error) {
	plain, err := locPayload(updater, loc, ts)
	if err != nil {
		return nil, err
	}
	ct, err := rsa.EncryptPKCS1v15(rand.Reader, requesterPub, plain)
	if err != nil {
		return nil, fmt.Errorf("locservice: sealing location: %w", err)
	}
	return SealedLocation(ct), nil
}

// ErrNotForUs is returned when a sealed location cannot be opened with
// the requester's key — the normal outcome when trial-decrypting other
// nodes' records in no-index mode.
var ErrNotForUs = errors.New("locservice: sealed location not openable")

// OpenLocation decrypts a sealed record.
func OpenLocation(requesterPriv *rsa.PrivateKey, s SealedLocation) (anoncrypto.Identity, geo.Point, sim.Time, error) {
	plain, err := rsa.DecryptPKCS1v15(nil, requesterPriv, s)
	if err != nil {
		return "", geo.Point{}, 0, ErrNotForUs
	}
	if len(plain) < 4+4+8+1 {
		return "", geo.Point{}, 0, ErrNotForUs
	}
	x := math.Float32frombits(binary.BigEndian.Uint32(plain[0:4]))
	y := math.Float32frombits(binary.BigEndian.Uint32(plain[4:8]))
	ts := sim.Time(binary.BigEndian.Uint64(plain[8:16]))
	n := int(plain[16])
	if len(plain) != 17+n {
		return "", geo.Point{}, 0, ErrNotForUs
	}
	return anoncrypto.Identity(plain[17 : 17+n]), geo.Pt(float64(x), float64(y)), ts, nil
}

// Update is the ALS RLU message body stored at the server:
// ⟨RLU, ssa(A), E_KB(A,B), E_KB(A, loc_A, ts)⟩. ssa(A) is implicit in
// where the message is routed.
type Update struct {
	Index  Index
	Sealed SealedLocation
}

// UpdateBytes models the ALS RLU size: type + index + ciphertext.
func UpdateBytes() int { return 1 + 64 + 64 }

// Query is the ALS LREQ: the index plus the cleartext reply location
// (loc_B must be readable so the LREP can be geo-routed back; the paper
// sends it in the clear, which is safe because it is not linked to B's
// identity).
type Query struct {
	Index    Index
	ReplyLoc geo.Point
}

// QueryBytes models the indexed LREQ size.
func QueryBytes() int { return 1 + 64 + 8 }

// ScanQuery is the §3.3 alternative LREQ: no index, only the reply
// location; the server answers with every record it holds.
type ScanQuery struct {
	ReplyLoc geo.Point
}

// ScanQueryBytes models the no-index LREQ size.
func ScanQueryBytes() int { return 1 + 8 }

// Reply is the ALS LREP carrying one or more sealed records back to
// loc_B. Indexed queries yield exactly one; scan queries yield the whole
// bucket.
type Reply struct {
	Sealed []SealedLocation
}

// ReplyBytes models the LREP size.
func (r *Reply) ReplyBytes() int {
	n := 1 + 8
	for _, s := range r.Sealed {
		n += len(s)
	}
	return n
}

// storedSeal pairs a sealed record with its freshness for expiry.
type storedSeal struct {
	sealed SealedLocation
	seen   sim.Time
}

// Server is the ALS server role: an opaque index → ciphertext store. The
// server never learns identities or locations. All methods are safe for
// concurrent use, so one server can sit behind a query-serving frontend.
type Server struct {
	ttl     sim.Time
	mu      sync.Mutex
	records map[Index]storedSeal
}

// NewServer creates an ALS server with the given record TTL.
func NewServer(ttl sim.Time) *Server {
	return &Server{ttl: ttl, records: make(map[Index]storedSeal)}
}

// live is the single freshness rule every read path shares: a record is
// servable while its age has not exceeded the TTL (age == ttl is still
// live). Keeping it in one place is what makes Answer, AnswerScan,
// AnswerBatch, and Len agree at the expiry boundary.
func (s *Server) live(r storedSeal, now sim.Time) bool {
	return now-r.seen <= s.ttl
}

// Apply stores an update, replacing any previous record under the index.
func (s *Server) Apply(u *Update, now sim.Time) {
	s.mu.Lock()
	s.records[u.Index] = storedSeal{sealed: u.Sealed, seen: now}
	s.mu.Unlock()
}

// Answer serves an indexed query.
func (s *Server) Answer(q *Query, now sim.Time) (*Reply, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.records[q.Index]
	if !ok || !s.live(r, now) {
		return nil, false
	}
	return &Reply{Sealed: []SealedLocation{r.sealed}}, true
}

// AnswerBatch serves many indexed queries under a single lock
// acquisition with one up-front expiry sweep, the query-serving hot
// path (internal/lbs drives it with tens of thousands of queries per
// epoch). The reply slice is parallel to qs, nil where the record is
// missing or expired; found counts the non-nil replies. Per-query
// verdicts are identical to calling Answer(q, now) for each query.
func (s *Server) AnswerBatch(qs []Query, now sim.Time) (replies []*Reply, found int) {
	replies = make([]*Reply, len(qs))
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, r := range s.records {
		if !s.live(r, now) {
			delete(s.records, k)
		}
	}
	for i := range qs {
		if r, ok := s.records[qs[i].Index]; ok {
			replies[i] = &Reply{Sealed: []SealedLocation{r.sealed}}
			found++
		}
	}
	return replies, found
}

// AnswerScan serves a no-index query with the entire live bucket. The
// bucket is emitted in index order so the reply is deterministic — the
// map's iteration order must never leak into results.
func (s *Server) AnswerScan(_ *ScanQuery, now sim.Time) *Reply {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := make([]Index, 0, len(s.records))
	for k, r := range s.records {
		if s.live(r, now) {
			live = append(live, k)
		}
	}
	sort.Slice(live, func(i, j int) bool { return bytes.Compare(live[i][:], live[j][:]) < 0 })
	rep := &Reply{Sealed: make([]SealedLocation, 0, len(live))}
	for _, k := range live {
		rep.Sealed = append(rep.Sealed, s.records[k].sealed)
	}
	return rep
}

// Len reports the number of live records.
func (s *Server) Len(now sim.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, r := range s.records {
		if s.live(r, now) {
			n++
		}
	}
	return n
}

// Expire drops stale records.
func (s *Server) Expire(now sim.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, r := range s.records {
		if !s.live(r, now) {
			delete(s.records, k)
		}
	}
}

// Updater is node A's side of ALS: it anticipates its possible
// requesters (the paper's stated limitation) and produces one sealed
// update per requester per home grid.
type Updater struct {
	Self anoncrypto.KeyPair
	SSA  ServerSelection
	// Directory resolves anticipated requesters' public keys.
	Directory func(anoncrypto.Identity) (*rsa.PublicKey, bool)
}

// BuildUpdates produces the RLU messages for one update round: one per
// (anticipated requester × home cell), tagged with the destination cell.
func (u *Updater) BuildUpdates(requesters []anoncrypto.Identity, loc geo.Point, now sim.Time) (map[geo.Cell][]*Update, error) {
	cells := u.SSA.HomeCells(u.Self.ID)
	out := make(map[geo.Cell][]*Update, len(cells))
	for _, b := range requesters {
		pub, ok := u.Directory(b)
		if !ok {
			return nil, fmt.Errorf("locservice: no key for anticipated requester %q", b)
		}
		idx := ComputeIndex(pub, u.Self.ID, b)
		sealed, err := SealLocation(pub, u.Self.ID, loc, now)
		if err != nil {
			return nil, err
		}
		for _, c := range cells {
			out[c] = append(out[c], &Update{Index: idx, Sealed: sealed})
		}
	}
	return out, nil
}

// Requester is node B's side of ALS.
type Requester struct {
	Self *anoncrypto.KeyPair
	SSA  ServerSelection
	// Directory resolves target identities' public keys (certificates).
	Directory func(anoncrypto.Identity) (*rsa.PublicKey, bool)
	// DecryptAttempts counts trial decryptions, the no-index mode's
	// computation overhead (experiment A3).
	DecryptAttempts int
}

// BuildQuery produces the indexed LREQ for target A, and the home cell to
// route it to (the first replica; callers may fan out across replicas).
func (r *Requester) BuildQuery(target anoncrypto.Identity, selfLoc geo.Point) (*Query, geo.Cell, error) {
	pub, ok := r.Directory(target)
	if !ok {
		return nil, geo.Cell{}, fmt.Errorf("locservice: no key for target %q", target)
	}
	_ = pub
	selfPub := r.Self.Public()
	q := &Query{Index: ComputeIndex(selfPub, target, r.Self.ID), ReplyLoc: selfLoc}
	return q, r.SSA.HomeCells(target)[0], nil
}

// BuildScanQuery produces the no-index LREQ.
func (r *Requester) BuildScanQuery(target anoncrypto.Identity, selfLoc geo.Point) (*ScanQuery, geo.Cell) {
	return &ScanQuery{ReplyLoc: selfLoc}, r.SSA.HomeCells(target)[0]
}

// OpenReply trial-decrypts a reply looking for target's location.
func (r *Requester) OpenReply(rep *Reply, target anoncrypto.Identity) (geo.Point, sim.Time, bool) {
	for _, s := range rep.Sealed {
		r.DecryptAttempts++
		id, loc, ts, err := OpenLocation(r.Self.Private, s)
		if err != nil {
			continue
		}
		if id == target {
			return loc, ts, true
		}
	}
	return geo.Point{}, 0, false
}

package neighbor

import (
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// Trust-aware relaying: the defense opposite internal/fault's active
// adversaries. Each router keeps a Trust instance scoring its neighbors
// by observed forwarding evidence — implicit-ACK overhearing and
// watchdog snooping feed an EWMA per neighbor key — and quarantining
// neighbors whose advertised positions fail plausibility checks
// (bogus-beacon injection). Next-hop selection then weights geographic
// progress by the neighbor's score and shuns quarantined entries.
//
// Keys are protocol-shaped: GPSR scores identities, which persist, so a
// blackhole is shunned for the rest of the run; AGFW can only score
// pseudonyms, which rotate every beacon, so scores live at most one
// neighbor-TTL — exactly the anonymity/attribution tension ANAP-style
// revocable anonymity would resolve (see DESIGN.md). Within a pseudonym
// lifetime the ARQ interacts with a relay many times, so even that
// short memory isolates a misbehaving relay after a failure or two.

// TrustConfig parameterizes the defense. The zero value is unusable;
// start from DefaultTrustConfig.
type TrustConfig struct {
	// Alpha is the EWMA gain: score ← (1-Alpha)·score + Alpha·outcome.
	Alpha float64
	// InitScore seeds unknown neighbors (optimistic, so fresh honest
	// neighbors are usable immediately).
	InitScore float64
	// MinScore is the shun threshold: entries scoring below it lose
	// next-hop selection to any candidate at or above it, and are used
	// only when no candidate clears the bar (graceful degradation — a
	// suspect relay still beats a guaranteed drop).
	MinScore float64
	// QuarantineFor is how long a plausibility violation banishes the
	// offending key from selection.
	QuarantineFor sim.Time
	// MaxSpeed (m/s) bounds honest movement for the position-jump check.
	MaxSpeed float64
	// RadioRange (m) bounds plausible reception distance for the range
	// check: a beacon heard from a claimed position farther than
	// RangeSlack×RadioRange cannot be genuine.
	RadioRange float64
	// RangeSlack is the tolerance factor on the range check (default
	// 1.25 — GPS error and beacon staleness, not forgery).
	RangeSlack float64
	// JumpSlack (m) is the tolerance added to the position-jump check
	// for beacon jitter and GPS fix error.
	JumpSlack float64
	// EvidenceTimeout is the watchdog deadline: after handing a packet
	// to a relay, how long to wait for forwarding evidence before
	// recording a failure.
	EvidenceTimeout time.Duration
}

// DefaultTrustConfig returns the defense parameters used throughout the
// evaluation (EXPERIMENTS.md E12).
func DefaultTrustConfig() TrustConfig {
	return TrustConfig{
		Alpha:           0.3,
		InitScore:       0.6,
		MinScore:        0.25,
		QuarantineFor:   sim.Time(30 * time.Second),
		RangeSlack:      1.25,
		JumpSlack:       25,
		EvidenceTimeout: 500 * time.Millisecond,
	}
}

// trustState is one neighbor key's accumulated standing.
type trustState struct {
	score     float64
	quarUntil sim.Time // quarantined while now < quarUntil
	lastLoc   geo.Point
	lastSeen  sim.Time
	hasLoc    bool
	touched   sim.Time
}

// Trust is one node's neighbor-standing table. All methods are
// single-threaded on the simulation engine. Scores and quarantines are
// looked up by key only — no map iteration ever influences a routing
// decision, so determinism is preserved.
type Trust struct {
	cfg   TrustConfig
	state map[string]*trustState

	// rev, when set, makes standing durable under pseudonym rotation:
	// state misses consult the revocation registry's linked chains, and
	// misbehavior evidence is filed as accusations under self's name.
	// Nil (the default) keeps every pre-revocation path bit-identical.
	rev  *RevocationRegistry
	self string

	// Quarantines counts plausibility violations (audit term).
	Quarantines int
	// Fallbacks counts selections that had to use a below-threshold
	// relay because nothing better was live.
	Fallbacks int
}

// NewTrust creates an empty trust table.
func NewTrust(cfg TrustConfig) *Trust {
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.3
	}
	if cfg.InitScore <= 0 {
		cfg.InitScore = 0.6
	}
	if cfg.RangeSlack <= 0 {
		cfg.RangeSlack = 1.25
	}
	return &Trust{cfg: cfg, state: make(map[string]*trustState)}
}

// Config exposes the effective parameters.
func (t *Trust) Config() TrustConfig { return t.cfg }

// EnableRevocation arms the durable-trust extension: reg is the run's
// shared authority registry, accuser the identity under which this
// node's evidence is filed.
func (t *Trust) EnableRevocation(reg *RevocationRegistry, accuser string) {
	t.rev = reg
	t.self = accuser
}

func (t *Trust) get(key string, now sim.Time) *trustState {
	s, ok := t.state[key]
	if !ok {
		s = &trustState{score: t.cfg.InitScore}
		if t.rev != nil {
			if score, until, linked := t.rev.Linked(key, now); linked {
				s.score = score
				s.quarUntil = until
				t.rev.noteInherit()
			}
		}
		t.state[key] = s
	}
	s.touched = now
	return s
}

// accuse files misbehavior evidence against key with this node's escrow
// authority. No-op when revocation is off.
func (t *Trust) accuse(key string, score float64, now sim.Time) {
	if t.rev != nil {
		t.rev.Accuse(key, t.self, score, now)
	}
}

// Score reports the key's current standing (InitScore when unknown,
// the inherited standing when the key belongs to a revoked chain).
func (t *Trust) Score(key string) float64 {
	if s, ok := t.state[key]; ok {
		return s.score
	}
	if t.rev != nil {
		if score, _, linked := t.rev.Linked(key, 0); linked {
			return score
		}
	}
	return t.cfg.InitScore
}

// Record folds one observed forwarding outcome into the key's EWMA. A
// failure that drags the score below MinScore is accusation-grade
// evidence when revocation is armed.
func (t *Trust) Record(key string, forwarded bool, now sim.Time) {
	s := t.get(key, now)
	outcome := 0.0
	if forwarded {
		outcome = 1
	}
	s.score = (1-t.cfg.Alpha)*s.score + t.cfg.Alpha*outcome
	if !forwarded && s.score < t.cfg.MinScore {
		t.accuse(key, s.score, now)
	}
}

// Quarantined reports whether the key is currently banished. With
// revocation armed, a key never seen locally but belonging to a revoked
// chain is banished too.
func (t *Trust) Quarantined(key string, now sim.Time) bool {
	if s, ok := t.state[key]; ok {
		return now < s.quarUntil
	}
	if t.rev != nil {
		if _, until, linked := t.rev.Linked(key, now); linked {
			return now < until
		}
	}
	return false
}

// Quarantine banishes the key for the configured window.
func (t *Trust) Quarantine(key string, now sim.Time) {
	s := t.get(key, now)
	s.quarUntil = now + t.cfg.QuarantineFor
	t.Quarantines++
	t.accuse(key, s.score, now)
}

// CheckBeacon runs the position-plausibility checks on a received
// beacon: the advertised location must be within plausible reception
// range of the receiver, and — when the key has advertised before — the
// jump from its previous advertisement must be coverable at MaxSpeed.
// A violation quarantines the key and reports false. The advertised
// position is remembered either way, so consecutive forged beacons are
// judged against each other, not against a stale honest fix.
func (t *Trust) CheckBeacon(key string, loc, receiverAt geo.Point, now sim.Time) bool {
	s := t.get(key, now)
	prevLoc, prevSeen, hadLoc := s.lastLoc, s.lastSeen, s.hasLoc
	s.lastLoc, s.lastSeen, s.hasLoc = loc, now, true
	if t.cfg.RadioRange > 0 {
		if loc.Dist(receiverAt) > t.cfg.RangeSlack*t.cfg.RadioRange {
			t.quarantineAt(key, s)
			return false
		}
	}
	if hadLoc && t.cfg.MaxSpeed > 0 && now > prevSeen {
		dt := now - prevSeen
		// Beyond ~3 beacon gaps the bound is too loose to mean anything.
		if dt <= sim.Time(10*time.Second) {
			if loc.Dist(prevLoc) > t.cfg.MaxSpeed*dt.Seconds()+t.cfg.JumpSlack {
				t.quarantineAt(key, s)
				return false
			}
		}
	}
	return true
}

func (t *Trust) quarantineAt(key string, s *trustState) {
	s.quarUntil = s.lastSeen + t.cfg.QuarantineFor
	t.Quarantines++
	t.accuse(key, s.score, s.lastSeen)
}

// Expire drops state untouched for longer than keep — pseudonym keys
// rotate every beacon, so without garbage collection the table would
// grow with run length. Deletion order cannot influence results: an
// expired key's next lookup re-seeds at InitScore either way, and keys
// older than any neighbor TTL are no longer offered for selection.
func (t *Trust) Expire(now, keep sim.Time) {
	for k, s := range t.state {
		if now-s.touched > keep && now >= s.quarUntil {
			delete(t.state, k)
		}
	}
}

// Weight is the selection multiplier for one candidate: its score, with
// below-threshold candidates handled by the caller's two-pass shun.
func (t *Trust) Weight(key string) float64 { return t.Score(key) }

// Shunned reports whether the key falls below the selection threshold.
func (t *Trust) Shunned(key string) bool { return t.Score(key) < t.cfg.MinScore }

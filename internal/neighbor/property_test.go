package neighbor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// randomANT builds an ANT with n random live entries drawn from rng.
func randomANT(rng *rand.Rand, n int, maxSpeed float64) (*ANT, sim.Time) {
	a := NewANT(10*sim.Second, maxSpeed)
	now := sim.Time(20 * sim.Second)
	for i := 0; i < n; i++ {
		p := anoncrypto.NewPseudonym(rng, "x")
		loc := geo.Pt(rng.Float64()*1500, rng.Float64()*300)
		age := sim.Time(rng.Int63n(int64(10 * sim.Second)))
		a.Update(p, loc, now-age)
	}
	return a, now
}

// Property: whatever the policy, a chosen next hop is strictly closer to
// the destination than the forwarding node.
func TestChooseNextHopAlwaysImproves(t *testing.T) {
	prop := func(seed int64, n uint8, policyRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a, now := randomANT(rng, int(n%32), 20)
		from := geo.Pt(rng.Float64()*1500, rng.Float64()*300)
		dest := geo.Pt(rng.Float64()*1500, rng.Float64()*300)
		policy := Policy(policyRaw%3) + PolicyClosest
		e, ok := a.ChooseNextHop(dest, from, now, policy)
		if !ok {
			return true
		}
		return e.Loc.Dist(dest) < from.Dist(dest)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: excluded pseudonyms are never chosen.
func TestChooseNextHopHonorsExclusion(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a, now := randomANT(rng, int(n%16)+2, 20)
		from := geo.Pt(0, 150)
		dest := geo.Pt(1500, 150)
		// Exclude whatever would win, repeatedly; each winner must be new.
		exclude := map[anoncrypto.Pseudonym]bool{}
		for i := 0; i < 20; i++ {
			e, ok := a.ChooseNextHopExcluding(dest, from, now, PolicyClosest, exclude)
			if !ok {
				return true
			}
			if exclude[e.N] {
				return false
			}
			exclude[e.N] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with the reach filter armed, every chosen hop satisfies the
// conservative reachability bound.
func TestChooseNextHopReachFilterBound(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a, now := randomANT(rng, int(n%32), 20)
		a.SetReachRange(250)
		from := geo.Pt(rng.Float64()*1500, rng.Float64()*300)
		dest := geo.Pt(rng.Float64()*1500, rng.Float64()*300)
		e, ok := a.ChooseNextHop(dest, from, now, PolicyWeighted)
		if !ok {
			return true
		}
		return from.Dist(e.Loc)+20*e.Age(now).Seconds() <= 250+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: selection is deterministic — same table state, same answer.
func TestChooseNextHopDeterministic(t *testing.T) {
	prop := func(seed int64, n uint8, policyRaw uint8) bool {
		build := func() (ANTEntry, bool) {
			rng := rand.New(rand.NewSource(seed))
			a, now := randomANT(rng, int(n%24), 20)
			return a.ChooseNextHop(geo.Pt(1500, 150), geo.Pt(0, 150), now, Policy(policyRaw%3)+PolicyClosest)
		}
		e1, ok1 := build()
		e2, ok2 := build()
		return ok1 == ok2 && e1.N == e2.N
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the plain table's Closest never returns a stale or
// non-improving entry.
func TestTableClosestProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable(5 * sim.Second)
		now := sim.Time(10 * sim.Second)
		for i := 0; i < int(n%24); i++ {
			id := anoncrypto.Identity(string(rune('a' + i)))
			loc := geo.Pt(rng.Float64()*1500, rng.Float64()*300)
			age := sim.Time(rng.Int63n(int64(8 * sim.Second)))
			tb.Update(id, [6]byte{byte(i)}, loc, now-age)
		}
		from := geo.Pt(rng.Float64()*1500, rng.Float64()*300)
		dest := geo.Pt(rng.Float64()*1500, rng.Float64()*300)
		e, ok := tb.Closest(dest, from, now)
		if !ok {
			return true
		}
		return e.Loc.Dist(dest) < from.Dist(dest) && now-e.Seen <= 5*sim.Second
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: pseudonym memory always owns its current pseudonym and never
// owns more than depth values.
func TestPseudonymMemoryProperty(t *testing.T) {
	prop := func(seed int64, rotations uint8, depthRaw uint8) bool {
		depth := int(depthRaw%10) + 2
		m := NewPseudonymMemory("n", rand.New(rand.NewSource(seed)), depth)
		var history []anoncrypto.Pseudonym
		history = append(history, m.Current())
		for i := 0; i < int(rotations%40); i++ {
			history = append(history, m.Rotate())
		}
		if !m.Owns(m.Current()) {
			return false
		}
		owned := 0
		for _, p := range history {
			if m.Owns(p) {
				owned++
			}
		}
		want := len(history)
		if want > depth {
			want = depth
		}
		return owned == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

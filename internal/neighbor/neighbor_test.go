package neighbor

import (
	"math/rand"
	"testing"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/sim"
)

const ttl = 5 * sim.Second

func TestTableUpdateGetExpire(t *testing.T) {
	tb := NewTable(ttl)
	tb.Update("a", mac.AddrFromUint64(1), geo.Pt(10, 10), 0)
	if e, ok := tb.Get("a", sim.Second); !ok || e.Loc != geo.Pt(10, 10) {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if _, ok := tb.Get("a", 6*sim.Second); ok {
		t.Fatal("stale entry returned")
	}
	if _, ok := tb.Get("missing", 0); ok {
		t.Fatal("phantom entry")
	}
	tb.Expire(10 * sim.Second)
	if n := tb.Len(10 * sim.Second); n != 0 {
		t.Fatalf("%d live entries after expiry", n)
	}
}

func TestTableRefreshExtendsLifetime(t *testing.T) {
	tb := NewTable(ttl)
	tb.Update("a", mac.AddrFromUint64(1), geo.Pt(1, 1), 0)
	tb.Update("a", mac.AddrFromUint64(1), geo.Pt(2, 2), 4*sim.Second)
	if e, ok := tb.Get("a", 8*sim.Second); !ok || e.Loc != geo.Pt(2, 2) {
		t.Fatalf("refreshed entry = %+v, %v", e, ok)
	}
}

func TestTableClosestGreedy(t *testing.T) {
	tb := NewTable(ttl)
	me := geo.Pt(0, 0)
	dest := geo.Pt(1000, 0)
	tb.Update("near", mac.AddrFromUint64(1), geo.Pt(100, 0), 0)
	tb.Update("far", mac.AddrFromUint64(2), geo.Pt(200, 0), 0)
	tb.Update("back", mac.AddrFromUint64(3), geo.Pt(-100, 0), 0)
	e, ok := tb.Closest(dest, me, 0)
	if !ok || e.ID != "far" {
		t.Fatalf("Closest = %+v, %v; want far", e, ok)
	}
}

func TestTableClosestLocalMaximum(t *testing.T) {
	tb := NewTable(ttl)
	me := geo.Pt(500, 0)
	dest := geo.Pt(1000, 0)
	tb.Update("behind", mac.AddrFromUint64(1), geo.Pt(100, 0), 0)
	if _, ok := tb.Closest(dest, me, 0); ok {
		t.Fatal("greedy advanced backward")
	}
}

func TestTableClosestIgnoresStale(t *testing.T) {
	tb := NewTable(ttl)
	tb.Update("old", mac.AddrFromUint64(1), geo.Pt(900, 0), 0)
	tb.Update("new", mac.AddrFromUint64(2), geo.Pt(600, 0), 9*sim.Second)
	e, ok := tb.Closest(geo.Pt(1000, 0), geo.Pt(0, 0), 10*sim.Second)
	if !ok || e.ID != "new" {
		t.Fatalf("stale entry won: %+v %v", e, ok)
	}
}

func TestTableLenAndEntries(t *testing.T) {
	tb := NewTable(ttl)
	tb.Update("a", mac.AddrFromUint64(1), geo.Pt(1, 1), 0)
	tb.Update("b", mac.AddrFromUint64(2), geo.Pt(2, 2), 4*sim.Second)
	if tb.Len(6*sim.Second) != 1 {
		t.Fatalf("Len = %d, want 1 (a expired)", tb.Len(6*sim.Second))
	}
	if es := tb.Entries(6 * sim.Second); len(es) != 1 || es[0].ID != "b" {
		t.Fatalf("Entries = %+v", es)
	}
}

func newPseudo(seed int64) anoncrypto.Pseudonym {
	return anoncrypto.NewPseudonym(rand.New(rand.NewSource(seed)), "x")
}

func TestANTMultipleEntriesPerNeighbor(t *testing.T) {
	a := NewANT(ttl, 20)
	// Same physical neighbor, two hellos with different pseudonyms: the
	// table must keep both (unlinkability).
	a.Update(newPseudo(1), geo.Pt(100, 0), 0)
	a.Update(newPseudo(2), geo.Pt(110, 0), sim.Second)
	if a.Len(2*sim.Second) != 2 {
		t.Fatalf("Len = %d, want 2 (multi-entry)", a.Len(2*sim.Second))
	}
}

func TestANTChooseNextHopClosest(t *testing.T) {
	a := NewANT(ttl, 20)
	n1, n2 := newPseudo(1), newPseudo(2)
	a.Update(n1, geo.Pt(100, 0), 0)
	a.Update(n2, geo.Pt(200, 0), 0)
	e, ok := a.ChooseNextHop(geo.Pt(1000, 0), geo.Pt(0, 0), 0, PolicyClosest)
	if !ok || e.N != n2 {
		t.Fatalf("ChooseNextHop = %+v %v, want n2", e, ok)
	}
}

func TestANTChooseNextHopFreshest(t *testing.T) {
	a := NewANT(ttl, 20)
	stale, fresh := newPseudo(1), newPseudo(2)
	// Stale entry is geographically better, fresh one is newer.
	a.Update(stale, geo.Pt(240, 0), 0)
	a.Update(fresh, geo.Pt(150, 0), 4*sim.Second)
	now := sim.Time(4 * sim.Second)
	if e, _ := a.ChooseNextHop(geo.Pt(1000, 0), geo.Pt(0, 0), now, PolicyClosest); e.N != stale {
		t.Fatalf("PolicyClosest picked %v, want the stale-but-closer entry", e.N)
	}
	if e, _ := a.ChooseNextHop(geo.Pt(1000, 0), geo.Pt(0, 0), now, PolicyFreshest); e.N != fresh {
		t.Fatalf("PolicyFreshest picked %v, want the fresher entry", e.N)
	}
}

func TestANTChooseNextHopWeighted(t *testing.T) {
	a := NewANT(ttl, 20)
	stale, fresh := newPseudo(1), newPseudo(2)
	// Stale entry: 240 m progress but 4 s old → 80 m discount → 160.
	// Fresh entry: 150 m progress, 0 s old → 150. Stale still wins.
	a.Update(stale, geo.Pt(240, 0), 0)
	a.Update(fresh, geo.Pt(150, 0), 4*sim.Second)
	now := sim.Time(4 * sim.Second)
	if e, _ := a.ChooseNextHop(geo.Pt(1000, 0), geo.Pt(0, 0), now, PolicyWeighted); e.N != stale {
		t.Fatalf("PolicyWeighted picked %v, want stale (160 > 150)", e.N)
	}
	// Make the stale entry much older: 10 s → 200 m discount → 40 < 150.
	a2 := NewANT(ttl*10, 20)
	a2.Update(stale, geo.Pt(240, 0), 0)
	a2.Update(fresh, geo.Pt(150, 0), 10*sim.Second)
	if e, _ := a2.ChooseNextHop(geo.Pt(1000, 0), geo.Pt(0, 0), 10*sim.Second, PolicyWeighted); e.N != fresh {
		t.Fatalf("PolicyWeighted picked %v, want fresh (150 > 40)", e.N)
	}
}

func TestANTNoImprovingNeighbor(t *testing.T) {
	a := NewANT(ttl, 20)
	a.Update(newPseudo(1), geo.Pt(-50, 0), 0)
	if _, ok := a.ChooseNextHop(geo.Pt(1000, 0), geo.Pt(0, 0), 0, PolicyClosest); ok {
		t.Fatal("chose a non-improving neighbor")
	}
}

func TestANTExpireAndEntries(t *testing.T) {
	a := NewANT(ttl, 20)
	a.Update(newPseudo(1), geo.Pt(1, 0), 0)
	a.Update(newPseudo(2), geo.Pt(2, 0), 4*sim.Second)
	a.Expire(7 * sim.Second)
	if live := len(a.entries) - a.head; live != 1 {
		t.Fatalf("live entries after expire = %d", live)
	}
	if es := a.Entries(7 * sim.Second); len(es) != 1 {
		t.Fatalf("Entries = %d", len(es))
	}
}

func TestPseudonymMemoryTwoLatest(t *testing.T) {
	m := NewPseudonymMemory("node", rand.New(rand.NewSource(3)), 2)
	first := m.Current()
	if !m.Owns(first) {
		t.Fatal("does not own current pseudonym")
	}
	second := m.Rotate()
	if !m.Owns(first) || !m.Owns(second) {
		t.Fatal("must own the two latest pseudonyms")
	}
	third := m.Rotate()
	if m.Owns(first) {
		t.Fatal("owns a pseudonym older than the two latest")
	}
	if !m.Owns(second) || !m.Owns(third) {
		t.Fatal("lost a recent pseudonym")
	}
	if m.Owns(anoncrypto.LastHop) {
		t.Fatal("claims the reserved zero pseudonym")
	}
}

func TestHelloEncodeDeterministic(t *testing.T) {
	h := Hello{N: newPseudo(1), Loc: geo.Pt(10, 20), TS: 5 * sim.Second}
	a, b := h.Encode(), h.Encode()
	if string(a) != string(b) {
		t.Fatal("Encode not deterministic")
	}
	if len(a) != helloBodyBytes {
		t.Fatalf("encoded size = %d, want %d", len(a), helloBodyBytes)
	}
	h2 := h
	h2.TS++
	if string(h2.Encode()) == string(a) {
		t.Fatal("different hellos encode identically")
	}
}

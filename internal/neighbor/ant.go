package neighbor

import (
	"math/rand"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// ANTEntry is one row of the anonymous neighbor table: a pseudonym, the
// position it advertised, and when. Because every hello carries a fresh
// pseudonym, the same physical neighbor occupies multiple rows until the
// old ones time out — by design, so a listener cannot correlate them.
type ANTEntry struct {
	N    anoncrypto.Pseudonym
	Loc  geo.Point
	Seen sim.Time
}

// Age reports how stale the entry is at now.
func (e ANTEntry) Age(now sim.Time) sim.Time { return now - e.Seen }

// Policy selects among candidate next hops in ChooseNextHop.
type Policy int

// Next-hop selection policies (§3.1.1's forwarding refinement).
const (
	// PolicyClosest picks the entry geographically closest to the
	// destination, ignoring freshness — the naive strategy the paper
	// notes can chase stale pseudonyms.
	PolicyClosest Policy = iota + 1
	// PolicyFreshest picks the most recently heard improving entry,
	// breaking ties toward the destination.
	PolicyFreshest
	// PolicyWeighted discounts each entry's progress by how far the
	// neighbor may have strayed since its beacon (age × max speed),
	// blending the other two policies.
	PolicyWeighted
)

// ANT is the anonymous neighbor table of §3.1.1.
//
// Storage is a ring of entries in arrival order, not a map: pseudonyms
// are one-shot (every hello carries a fresh one), so the table is
// insert-only with no per-pseudonym lookups, and simulated time is
// monotone, so entries are appended in nondecreasing Seen order and the
// stale ones always form a prefix. Update is then a plain append,
// Expire advances a head index, and every scan walks contiguous memory
// — on the large-N hot path this removes a hash-map insert per received
// hello and a full map iteration per expiry sweep. Selection results
// are unaffected: every policy's tie-break order is total (ending at
// the pseudonym bytes), so storage order never leaks.
type ANT struct {
	ttl sim.Time
	// maxSpeed (m/s) parameterizes PolicyWeighted's staleness discount
	// and the reachability filter.
	maxSpeed float64
	// reach, when positive, filters next-hop candidates to those still
	// guaranteed within radio range under worst-case drift: an entry
	// advertised at distance d and age a is only considered when
	// d + maxSpeed·a <= reach. Without it, greedy prefers edge-of-range
	// relays whose stale positions silently fall out of range — the
	// freshness problem §3.1.1 warns about, at its most damaging.
	reach float64
	// entries[head:] is the window of possibly-live entries, in
	// nondecreasing Seen order; [:head] is expired garbage awaiting
	// compaction.
	entries []ANTEntry
	head    int
}

// NewANT creates an ANT whose entries expire ttl after their hello.
// maxSpeed is the assumed bound on neighbor movement for PolicyWeighted.
func NewANT(ttl sim.Time, maxSpeed float64) *ANT {
	return &ANT{ttl: ttl, maxSpeed: maxSpeed}
}

// SetReachRange enables the conservative reachability filter against the
// given radio range (0 disables it).
func (a *ANT) SetReachRange(r float64) { a.reach = r }

// Update records a hello ⟨n, loc, ts⟩. Calls must carry nondecreasing
// timestamps (simulated time is monotone, so any in-order caller does).
func (a *ANT) Update(n anoncrypto.Pseudonym, loc geo.Point, now sim.Time) {
	a.entries = append(a.entries, ANTEntry{N: n, Loc: loc, Seen: now})
}

// Len reports the number of live entries (not physical neighbors: the
// same neighbor may hold several).
func (a *ANT) Len(now sim.Time) int {
	n := 0
	for i := a.head; i < len(a.entries); i++ {
		if now-a.entries[i].Seen <= a.ttl {
			n++
		}
	}
	return n
}

// Expire drops stale entries. Entries are in nondecreasing Seen order,
// so the stale ones are a prefix: expiry advances the head index and
// compacts the backing array once the dead prefix dominates it.
func (a *ANT) Expire(now sim.Time) {
	for a.head < len(a.entries) && now-a.entries[a.head].Seen > a.ttl {
		a.head++
	}
	if a.head >= 64 && a.head*2 >= len(a.entries) {
		n := copy(a.entries, a.entries[a.head:])
		a.entries = a.entries[:n]
		a.head = 0
	}
}

// Entries snapshots the live entries.
func (a *ANT) Entries(now sim.Time) []ANTEntry {
	out := make([]ANTEntry, 0, len(a.entries)-a.head)
	for i := a.head; i < len(a.entries); i++ {
		if e := a.entries[i]; now-e.Seen <= a.ttl {
			out = append(out, e)
		}
	}
	return out
}

// ChooseNextHop returns the pseudonym to relay through for a packet bound
// to dest, from a node at from, under the given policy. ok is false when
// no live entry improves on from (greedy local maximum).
//
// Selection is fully deterministic: every policy falls through a total
// tie-break order ending at the pseudonym bytes, so simulation runs do
// not depend on map iteration order.
func (a *ANT) ChooseNextHop(dest, from geo.Point, now sim.Time, policy Policy) (ANTEntry, bool) {
	return a.ChooseNextHopExcluding(dest, from, now, policy, nil)
}

// ChooseNextHopExcluding is ChooseNextHop skipping the given pseudonyms —
// the retransmission path uses it to route around a relay that failed to
// acknowledge, the ANT analog of GPSR's MAC-feedback neighbor eviction.
func (a *ANT) ChooseNextHopExcluding(dest, from geo.Point, now sim.Time, policy Policy, exclude map[anoncrypto.Pseudonym]bool) (ANTEntry, bool) {
	myD := from.Dist(dest)
	var best ANTEntry
	var bestD, bestScore float64
	found := false

	better := func(e ANTEntry, d, score float64) bool {
		if !found {
			return true
		}
		switch policy {
		case PolicyFreshest:
			if e.Seen != best.Seen {
				return e.Seen > best.Seen
			}
			if d != bestD {
				return d < bestD
			}
		case PolicyWeighted:
			if score != bestScore {
				return score > bestScore
			}
			if d != bestD {
				return d < bestD
			}
			if e.Seen != best.Seen {
				return e.Seen > best.Seen
			}
		default: // PolicyClosest
			if d != bestD {
				return d < bestD
			}
			if e.Seen != best.Seen {
				return e.Seen > best.Seen
			}
		}
		return string(e.N[:]) < string(best.N[:])
	}

	for i := a.head; i < len(a.entries); i++ {
		e := a.entries[i]
		if now-e.Seen > a.ttl {
			continue
		}
		if exclude[e.N] {
			continue
		}
		if a.reach > 0 && from.Dist(e.Loc)+a.maxSpeed*e.Age(now).Seconds() > a.reach {
			continue // may have drifted out of range since its hello
		}
		d := e.Loc.Dist(dest)
		if d >= myD {
			continue // not an improvement; greedy never goes backward
		}
		score := (myD - d) - a.maxSpeed*e.Age(now).Seconds()
		if better(e, d, score) {
			best, bestD, bestScore, found = e, d, score, true
		}
	}
	return best, found
}

// ChooseNextHopTrusted is the trust-aware next hop choice: quarantined
// pseudonyms are skipped, and each candidate's staleness-discounted
// progress is weighted by its trust score, so relays that failed to
// produce forwarding evidence lose selection to honest ones. Candidates
// below the shun threshold are used only when nothing clears the bar.
// Because pseudonyms rotate every hello, a score or quarantine lives at
// most one neighbor TTL — the anonymity/attribution tension the paper's
// threat model accepts; within that window the ARQ interacts with a
// relay several times, which is enough to isolate it. The untrusted
// choosers above are retained verbatim as the defense-off parity oracle.
//
// Selection remains fully deterministic: weighted progress, then
// distance, then freshness, then the pseudonym bytes.
func (a *ANT) ChooseNextHopTrusted(dest, from geo.Point, now sim.Time, exclude map[anoncrypto.Pseudonym]bool, tr *Trust) (ANTEntry, bool) {
	myD := from.Dist(dest)
	type cand struct {
		e ANTEntry
		w float64
		d float64
	}
	var best, bestAny cand
	found, foundAny := false, false
	better := func(x, y cand) bool {
		if x.w != y.w {
			return x.w > y.w
		}
		if x.d != y.d {
			return x.d < y.d
		}
		if x.e.Seen != y.e.Seen {
			return x.e.Seen > y.e.Seen
		}
		return string(x.e.N[:]) < string(y.e.N[:])
	}
	for i := a.head; i < len(a.entries); i++ {
		e := a.entries[i]
		if now-e.Seen > a.ttl {
			continue
		}
		if exclude[e.N] {
			continue
		}
		if a.reach > 0 && from.Dist(e.Loc)+a.maxSpeed*e.Age(now).Seconds() > a.reach {
			continue
		}
		d := e.Loc.Dist(dest)
		if d >= myD {
			continue
		}
		key := string(e.N[:])
		if tr.Quarantined(key, now) {
			continue
		}
		base := (myD - d) - a.maxSpeed*e.Age(now).Seconds()
		w := base
		if base > 0 {
			// Trust scales genuine progress; a non-progressing stale
			// entry gains nothing from a good reputation.
			w = base * tr.Weight(key)
		}
		c := cand{e: e, w: w, d: d}
		if !foundAny || better(c, bestAny) {
			bestAny, foundAny = c, true
		}
		if tr.Shunned(key) {
			continue
		}
		if !found || better(c, best) {
			best, found = c, true
		}
	}
	if found {
		return best.e, true
	}
	if foundAny {
		tr.Fallbacks++
		return bestAny.e, true
	}
	return ANTEntry{}, false
}

// PseudonymMemory is the sender-side half of §3.1.1: a node must accept
// packets addressed to its recent hello pseudonyms, because neighbors may
// still route by an older one. The paper suggests remembering "but two
// latest ones", which suffices when the neighbor timeout spans at most
// two beacon periods; with the GPSR-style 3-beacon timeout (and ±50%
// jitter) used in the evaluation, more pseudonyms can be live in
// neighbors' tables, so the depth is configurable.
type PseudonymMemory struct {
	id     anoncrypto.Identity
	rng    *rand.Rand
	recent []anoncrypto.Pseudonym // most recent last
	depth  int
}

// NewPseudonymMemory seeds the memory with a first pseudonym and keeps
// the depth most recent ones (minimum 2, the paper's setting).
func NewPseudonymMemory(id anoncrypto.Identity, rng *rand.Rand, depth int) *PseudonymMemory {
	if depth < 2 {
		depth = 2
	}
	m := &PseudonymMemory{id: id, rng: rng, depth: depth}
	m.recent = append(m.recent, anoncrypto.NewPseudonym(rng, id))
	return m
}

// Rotate generates a fresh pseudonym for the next hello and returns it.
func (m *PseudonymMemory) Rotate() anoncrypto.Pseudonym {
	n := anoncrypto.NewPseudonym(m.rng, m.id)
	m.recent = append(m.recent, n)
	if len(m.recent) > m.depth {
		m.recent = m.recent[len(m.recent)-m.depth:]
	}
	return n
}

// Current returns the pseudonym advertised by the latest hello.
func (m *PseudonymMemory) Current() anoncrypto.Pseudonym {
	return m.recent[len(m.recent)-1]
}

// Owns reports whether n is one of the node's remembered pseudonyms.
func (m *PseudonymMemory) Owns(n anoncrypto.Pseudonym) bool {
	if n.IsLastHop() {
		return false
	}
	for _, p := range m.recent {
		if p == n {
			return true
		}
	}
	return false
}

package neighbor

import (
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// Hello is the body of a §3.1 hello message: ⟨HELLO, n, loc, ts⟩.
type Hello struct {
	N   anoncrypto.Pseudonym
	Loc geo.Point
	TS  sim.Time
	// Junk marks flood-attack hellos for simulator-omniscient accounting
	// (the audit balances junk heard against junk sent). It is not part
	// of the wire body — Encode skips it — and no protocol decision may
	// read it: receivers treat junk hellos exactly like real ones.
	Junk bool
}

// helloBodyBytes is the modeled on-air size of the body: type tag (1),
// pseudonym (6), location (8), timestamp (8).
const helloBodyBytes = 23

// Encode serializes the hello canonically for signing.
func (h Hello) Encode() []byte {
	buf := make([]byte, 0, helloBodyBytes)
	buf = append(buf, 'H')
	buf = append(buf, h.N[:]...)
	buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(float32(h.Loc.X)))
	buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(float32(h.Loc.Y)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.TS))
	return buf
}

// AuthHello is an authenticated hello (§3.1.2): the body, a ring
// signature over it, and the ring's certificates — either attached in
// full or referenced by serial, the paper's §4 bandwidth optimization.
type AuthHello struct {
	Hello Hello
	Sig   *anoncrypto.RingSignature
	Ring  []*anoncrypto.Cert
	// CertsAttached records whether the sender attached full
	// certificates (true) or only serial references (false).
	CertsAttached bool
}

// WireSize models the hello's on-air size in bytes. With references, each
// ring member costs 8 bytes instead of a full certificate.
func (a *AuthHello) WireSize() int {
	size := helloBodyBytes + a.Sig.WireSize()
	for _, c := range a.Ring {
		if a.CertsAttached {
			size += c.WireSize()
		} else {
			size += 8
		}
	}
	return size
}

// EstimateAuthHelloBytes models an authenticated hello's on-air size
// without performing any cryptography, for simulation sweeps: the hello
// body, a ring signature (glue value plus k+1 domain-sized elements,
// domain = keyBits + 160 rounded up to the AES block), and either full
// certificate attachments or 8-byte serial references.
func EstimateAuthHelloBytes(k, keyBits int, attach bool) int {
	b := keyBits + 160
	if rem := b % 128; rem != 0 {
		b += 128 - rem
	}
	bBytes := b / 8
	size := helloBodyBytes + bBytes*(k+2)
	if attach {
		// serial + subject hash + modulus + exponent + 1024-bit CA sig.
		certBytes := 8 + 8 + keyBits/8 + 4 + 128
		size += (k + 1) * certBytes
	} else {
		size += (k + 1) * 8
	}
	return size
}

// Signer produces authenticated hellos for one node. The pool holds the
// other users' certificates the node retrieved before entering the
// network (the paper's assumption in §4).
type Signer struct {
	kp   *anoncrypto.KeyPair
	cert *anoncrypto.Cert
	pool []*anoncrypto.Cert
	rng  *rand.Rand
}

// NewSigner builds a signer. pool must not contain the signer's own
// certificate (it is inserted automatically).
func NewSigner(kp *anoncrypto.KeyPair, cert *anoncrypto.Cert, pool []*anoncrypto.Cert, rng *rand.Rand) *Signer {
	cp := make([]*anoncrypto.Cert, len(pool))
	copy(cp, pool)
	return &Signer{kp: kp, cert: cert, pool: cp, rng: rng}
}

// Sign ring-signs h with k decoy certificates drawn uniformly from the
// pool, yielding (k+1)-anonymity. The signer's own certificate is placed
// at a random ring position, and the decoy set is redrawn per hello so
// two transmissions cannot be correlated by their rings (§3.1.2).
func (s *Signer) Sign(h Hello, k int, attachCerts bool) (*AuthHello, error) {
	if k < 1 {
		return nil, errors.New("neighbor: ring requires at least one decoy (k >= 1)")
	}
	if k > len(s.pool) {
		return nil, fmt.Errorf("neighbor: k=%d exceeds pool of %d certificates", k, len(s.pool))
	}
	// Draw k distinct decoys.
	idx := s.rng.Perm(len(s.pool))[:k]
	ring := make([]*anoncrypto.Cert, 0, k+1)
	for _, i := range idx {
		ring = append(ring, s.pool[i])
	}
	// Insert our certificate at a random position.
	pos := s.rng.Intn(k + 1)
	ring = append(ring, nil)
	copy(ring[pos+1:], ring[pos:])
	ring[pos] = s.cert

	keys := make([]*rsa.PublicKey, len(ring))
	for i, c := range ring {
		keys[i] = c.PublicKey
	}
	sig, err := anoncrypto.RingSign(h.Encode(), keys, pos, s.kp.Private)
	if err != nil {
		return nil, fmt.Errorf("neighbor: ring-signing hello: %w", err)
	}
	return &AuthHello{Hello: h, Sig: sig, Ring: ring, CertsAttached: attachCerts}, nil
}

// ErrBadHello is returned when an authenticated hello fails verification.
var ErrBadHello = errors.New("neighbor: hello authentication failed")

// Verifier checks authenticated hellos against the CA key, caching
// verified certificates by serial. When a hello references certificates
// the verifier has not cached, the miss is counted — modeling the
// explicit certificate requests §4 expects to decline as the network
// warms up.
type Verifier struct {
	caPub *rsa.PublicKey
	cache map[uint64]*anoncrypto.Cert
	// Misses counts ring members that required an explicit certificate
	// fetch because only a serial reference was transmitted.
	Misses int
}

// NewVerifier builds a verifier trusting caPub.
func NewVerifier(caPub *rsa.PublicKey) *Verifier {
	return &Verifier{caPub: caPub, cache: make(map[uint64]*anoncrypto.Cert)}
}

// CachedCerts reports how many certificates have been verified and cached.
func (v *Verifier) CachedCerts() int { return len(v.cache) }

// Verify authenticates ah. On success it returns the anonymity set size
// (the ring length, i.e. k+1). Certificates are CA-verified once and
// cached; a referenced certificate missing from the cache counts as a
// miss and is then fetched (modeled as using the attached copy).
func (v *Verifier) Verify(ah *AuthHello) (int, error) {
	if ah == nil || ah.Sig == nil || len(ah.Ring) < 2 {
		return 0, ErrBadHello
	}
	keys := make([]*rsa.PublicKey, len(ah.Ring))
	for i, c := range ah.Ring {
		if c == nil {
			return 0, ErrBadHello
		}
		cached, ok := v.cache[c.Serial]
		if ok && cached.Subject == c.Subject {
			keys[i] = cached.PublicKey
			continue
		}
		if !ah.CertsAttached {
			v.Misses++
		}
		if err := c.Verify(v.caPub); err != nil {
			return 0, fmt.Errorf("%w: ring member %d: %v", ErrBadHello, i, err)
		}
		v.cache[c.Serial] = c
		keys[i] = c.PublicKey
	}
	if !anoncrypto.RingVerify(ah.Hello.Encode(), keys, ah.Sig) {
		return 0, fmt.Errorf("%w: ring signature invalid", ErrBadHello)
	}
	return len(ah.Ring), nil
}

package neighbor

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/sim"
)

func testRegistry(t *testing.T, cfg RevocationConfig) *RevocationRegistry {
	t.Helper()
	reg, err := NewRevocationRegistry(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestTrustDurableUnderRotation is the trust-durability property test:
// a misbehaving node rotates its pseudonym N times. Without revocation,
// every rotation resets its standing to InitScore — the PR8 attribution
// gap. With revocation, once a quorum opens the chain, every successor
// pseudonym inherits the quarantined standing.
func TestTrustDurableUnderRotation(t *testing.T) {
	const rotations = 5
	attacker := anoncrypto.Identity("mallory")
	rng := rand.New(rand.NewSource(42))
	tcfg := DefaultTrustConfig()

	run := func(reg *RevocationRegistry) (scores []float64, quarantined []bool) {
		// Three observers (distinct accusers reaching distinct
		// authorities) watch the same misbehaving chain.
		observers := make([]*Trust, 3)
		for i := range observers {
			observers[i] = NewTrust(tcfg)
			if reg != nil {
				observers[i].EnableRevocation(reg, fmt.Sprintf("watcher-%d", i))
			}
		}
		now := sim.Time(0)
		for r := 0; r < rotations; r++ {
			nym := NewPseudonymKey(rng, attacker, reg, now)
			// Each observer records repeated forwarding failures — the
			// evidence stream a blackhole generates under the watchdog.
			for i := 0; i < 8; i++ {
				now += sim.Time(100 * time.Millisecond)
				for _, tr := range observers {
					tr.Record(nym, false, now)
				}
			}
			scores = append(scores, observers[0].Score(nym))
			// The successor pseudonym: what standing does it start with?
			next := NewPseudonymKey(rng, attacker, reg, now)
			freshScore := observers[0].Score(next)
			quarantined = append(quarantined, observers[0].Quarantined(next, now))
			scores = append(scores, freshScore)
		}
		return scores, quarantined
	}

	// Without revocation: every successor resets to InitScore and is
	// never quarantined.
	scores, quar := run(nil)
	for i := 1; i < len(scores); i += 2 {
		if scores[i] != tcfg.InitScore {
			t.Fatalf("rotation %d without revocation: successor seeded at %.3f, want InitScore %.3f",
				i/2, scores[i], tcfg.InitScore)
		}
	}
	for i, q := range quar {
		if q {
			t.Fatalf("rotation %d without revocation: successor quarantined", i)
		}
	}

	// With revocation: after the quorum opens (3 observers → 3 distinct
	// authorities with threshold 3), successors inherit the revoked
	// standing — quarantined, score below MinScore.
	reg := testRegistry(t, DefaultRevocationConfig())
	scores, quar = run(reg)
	if !reg.Revoked(attacker) {
		t.Fatal("attacker identity never revoked despite 3 accusing observers")
	}
	if got := reg.Stats().Openings; got != 1 {
		t.Fatalf("Openings = %d, want 1 (chain opened once)", got)
	}
	inherited := 0
	for i := 1; i < len(scores); i += 2 {
		if scores[i] < DefaultTrustConfig().MinScore && quar[i/2] {
			inherited++
		}
	}
	if inherited < rotations-1 {
		t.Fatalf("only %d of %d post-revocation successors inherited the revoked standing (scores %v, quarantines %v)",
			inherited, rotations-1, scores, quar)
	}
	if reg.Stats().Inherits == 0 {
		t.Fatal("Inherits audit counter never advanced")
	}
}

// NewPseudonymKey mints a fresh pseudonym key for id and, when a
// registry is armed, escrows it — the helper mirrors what the router
// does on rotation.
func NewPseudonymKey(rng *rand.Rand, id anoncrypto.Identity, reg *RevocationRegistry, now sim.Time) string {
	nym := anoncrypto.NewPseudonym(rng, id)
	key := nym.String()
	if reg != nil {
		reg.Register(key, id, nym, now)
	}
	return key
}

// TestRevocationNeedsQuorum: fewer distinct authorities than Threshold
// never open the chain, no matter how much evidence one accuser files.
func TestRevocationNeedsQuorum(t *testing.T) {
	reg := testRegistry(t, DefaultRevocationConfig())
	rng := rand.New(rand.NewSource(7))
	id := anoncrypto.Identity("solo-target")
	key := NewPseudonymKey(rng, id, reg, 0)
	for i := 0; i < 100; i++ {
		reg.Accuse(key, "lone-accuser", 0.1, sim.Time(i))
	}
	if reg.Revoked(id) {
		t.Fatal("single accuser assembled a quorum")
	}
	if got := reg.Stats().Accusations; got != 1 {
		t.Fatalf("Accusations = %d, want 1 (same accuser dedups)", got)
	}
}

// TestRevocationHonestChainUnlinked: an identity nobody accuses is never
// linked — successors of honest rotations stay at InitScore.
func TestRevocationHonestChainUnlinked(t *testing.T) {
	reg := testRegistry(t, DefaultRevocationConfig())
	rng := rand.New(rand.NewSource(9))
	tr := NewTrust(DefaultTrustConfig())
	tr.EnableRevocation(reg, "observer")
	honest := anoncrypto.Identity("alice")
	for r := 0; r < 4; r++ {
		key := NewPseudonymKey(rng, honest, reg, sim.Time(r))
		if got := tr.Score(key); got != DefaultTrustConfig().InitScore {
			t.Fatalf("honest rotation %d seeded at %.3f, want InitScore", r, got)
		}
		if tr.Quarantined(key, sim.Time(r)) {
			t.Fatalf("honest rotation %d quarantined", r)
		}
	}
	if got := reg.Stats().Openings; got != 0 {
		t.Fatalf("Openings = %d for honest traffic, want 0", got)
	}
	if got := reg.Stats().Inherits; got != 0 {
		t.Fatalf("Inherits = %d for honest traffic, want 0", got)
	}
}

// TestRevocationExpiredTagUncountable: accusations against pruned tags
// cannot open anything.
func TestRevocationExpiredTagUncountable(t *testing.T) {
	cfg := DefaultRevocationConfig()
	cfg.TagTTL = sim.Time(time.Second)
	reg := testRegistry(t, cfg)
	rng := rand.New(rand.NewSource(11))
	id := anoncrypto.Identity("ghost")
	key := NewPseudonymKey(rng, id, reg, 0)
	// Age the tag past TTL and force a prune cycle with fresh registrations.
	later := sim.Time(10 * time.Second)
	for i := 0; i < 4096; i++ {
		NewPseudonymKey(rng, anoncrypto.Identity("filler"), reg, later)
	}
	if reg.Stats().Expired == 0 {
		t.Fatal("aged tag never pruned")
	}
	for _, who := range []string{"a", "b", "c", "d", "e"} {
		reg.Accuse(key, who, 0.1, later)
	}
	if reg.Revoked(id) {
		t.Fatal("expired tag still opened")
	}
}

// TestRevocationConfigValidate pins the field+value error style.
func TestRevocationConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*RevocationConfig)
	}{
		{"zero threshold", func(c *RevocationConfig) { c.Threshold = 0 }},
		{"authorities below threshold", func(c *RevocationConfig) { c.Authorities = c.Threshold - 1 }},
		{"authorities overflow", func(c *RevocationConfig) { c.Authorities = 256 }},
		{"negative revoke", func(c *RevocationConfig) { c.RevokeFor = -1 }},
		{"negative ttl", func(c *RevocationConfig) { c.TagTTL = -1 }},
	}
	for _, tc := range cases {
		cfg := DefaultRevocationConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
	if err := DefaultRevocationConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

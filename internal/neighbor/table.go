// Package neighbor implements the neighbor state geographic routing
// builds from hello beacons, in the three flavors the paper discusses:
//
//   - Table: the classic GPSR neighbor table keyed by real identity,
//     built from cleartext (identity, location) beacons.
//   - ANT: the anonymous neighbor table of §3.1.1, keyed by one-shot
//     pseudonyms. One physical neighbor legitimately appears as several
//     entries; the selection policies implement the paper's
//     freshness-aware forwarding refinement.
//   - Authenticated ANT (§3.1.2): hello messages carry ring signatures so
//     a receiver can check the sender is *some* authorized node without
//     learning which, achieving (k+1)-anonymity.
package neighbor

import (
	"sort"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/sim"
)

// Entry is one row of a plain GPSR neighbor table: the identity,
// link-layer address, and last reported position of a neighbor.
type Entry struct {
	ID   anoncrypto.Identity
	MAC  mac.Addr
	Loc  geo.Point
	Seen sim.Time
}

// logKeyCap bounds the link-layer addresses the dense structures index
// by; addresses at or beyond it (including Broadcast) take the
// identity-keyed overflow path.
const logKeyCap = 1 << 20

// logKey maps an address to its dense index, false when the address is
// outside the indexable range. AddrFromUint64 of a node number — the
// convention throughout this repo — always lands inside it.
func logKey(a mac.Addr) (uint32, bool) {
	v := a.Uint64()
	return uint32(v), v < logKeyCap && !a.IsBroadcast()
}

// beaconRec is one published beacon: when it was delivered and the
// position it advertised.
type beaconRec struct {
	at  sim.Time
	loc geo.Point
}

// senderLog is the recent beacon history of one sender (one address).
type senderLog struct {
	id  anoncrypto.Identity
	mac mac.Addr
	// recs[head:] are the retained beacons in increasing delivery-time
	// order; [:head] awaits compaction (the ANT ring trick).
	recs []beaconRec
	head int
}

// BeaconLog is the content half of the GPSR neighbor state, shared by
// every Table attached to it.
//
// The observation: a broadcast beacon delivers the same ⟨identity,
// address, location⟩ to every receiver at the same instant, so storing
// a full copy per receiver — the classic per-node neighbor table — is
// N-fold redundant. The log keeps one copy of each sender's recent
// beacons, published once by whichever receiver processes the delivery
// first; a Table then needs only an 8-byte last-heard timestamp per
// neighbor, and reconstructs its (possibly stale) view by looking up
// the beacon it heard by timestamp. At large N this collapses the
// aggregate neighbor state from O(N²) entries to O(N²) timestamps plus
// O(N) shared content — the difference between thrashing DRAM and
// staying cache-resident on every beacon refresh.
//
// A nil-log Table creates a private one, so single-table uses (tests)
// need no ceremony. Sharing is safe because beacon content is a pure
// function of (address, delivery time): one sender cannot have two
// transmissions land at the same instant (its radio is half duplex),
// and address→identity is stable for a run. The pathological cases —
// address reuse by different identities, un-indexable addresses — fall
// back to a per-table overflow map with the old semantics.
type BeaconLog struct {
	slots []senderLog
	byID  map[anoncrypto.Identity]uint32
	// maxTTL is the largest TTL among attached tables; retention must
	// cover it so any live last-heard timestamp still resolves.
	maxTTL sim.Time
	// lastV/lastAddr/lastAt memoize the most recent successful publish.
	// A beacon reaches hundreds of receivers at one instant and each
	// one calls Update; after the first, (sender address, delivery
	// time) alone proves the beacon is already recorded — one sender
	// cannot land two deliveries at the same instant — so the
	// re-publishes skip the address decode and slot walk entirely.
	// lastAt is offset by one so the zero value matches nothing
	// (beacons at t=0 are legal).
	lastV    uint32
	lastAddr mac.Addr
	lastAt   sim.Time
}

// NewBeaconLog creates an empty shared beacon log.
func NewBeaconLog() *BeaconLog {
	return &BeaconLog{byID: make(map[anoncrypto.Identity]uint32)}
}

// attach registers a reader's TTL, growing the retention window.
func (l *BeaconLog) attach(ttl sim.Time) {
	if ttl > l.maxTTL {
		l.maxTTL = ttl
	}
}

// publish records a delivered beacon. It reports false when the address
// is already registered to a different identity — the caller must then
// keep the beacon in private overflow state instead.
func (l *BeaconLog) publish(v uint32, id anoncrypto.Identity, addr mac.Addr, loc geo.Point, now sim.Time) bool {
	if int(v) >= len(l.slots) {
		grown := make([]senderLog, v+1+16)
		copy(grown, l.slots)
		l.slots = grown
	}
	s := &l.slots[v]
	if s.id == "" {
		if _, taken := l.byID[id]; taken {
			return false // identity switched addresses; keep old semantics
		}
		s.id, s.mac = id, addr
		l.byID[id] = v
	} else if s.id != id {
		return false
	}
	if n := len(s.recs); n > s.head && s.recs[n-1].at == now {
		l.lastV, l.lastAddr, l.lastAt = v, addr, now+1
		return true // another receiver of this delivery already published
	}
	s.recs = append(s.recs, beaconRec{at: now, loc: loc})
	// Retention: drop beacons no reader could still hold live. A reader
	// at time t >= now sees an entry heard at h live only while
	// t-h <= ttl, so anything older than now-maxTTL is dead weight.
	for s.head < len(s.recs) && now-s.recs[s.head].at > l.maxTTL {
		s.head++
	}
	if s.head >= 16 && s.head*2 >= len(s.recs) {
		n := copy(s.recs, s.recs[s.head:])
		s.recs = s.recs[:n]
		s.head = 0
	}
	l.lastV, l.lastAddr, l.lastAt = v, addr, now+1
	return true
}

// locAt resolves the position advertised by the sender at slot v in the
// beacon delivered at exactly heard.
func (l *BeaconLog) locAt(v uint32, heard sim.Time) (geo.Point, bool) {
	s := &l.slots[v]
	// Newest-first: a live reader usually heard the latest beacon or
	// missed at most a couple.
	for k := len(s.recs) - 1; k >= s.head; k-- {
		if s.recs[k].at == heard {
			return s.recs[k].loc, true
		}
		if s.recs[k].at < heard {
			break
		}
	}
	return geo.Point{}, false
}

// Table is the identity-keyed neighbor table the GPSR baseline uses.
// It is exactly the structure whose beacons leak (identity, location)
// pairs to every listener — the privacy problem the paper attacks.
//
// Per-receiver state is a flat last-heard timestamp array indexed by
// the sender's link-layer address; beacon content lives in the (usually
// shared) BeaconLog. See BeaconLog for why.
type Table struct {
	ttl sim.Time
	log *BeaconLog
	// lastHeard[v] encodes when this receiver last heard address v,
	// offset by one so the zero value means "never" (beacons at t=0 are
	// legal): 0 never, negative evicted (Remove), otherwise heard at
	// lastHeard[v]-1.
	lastHeard []sim.Time
	// over holds entries whose address could not index the log (address
	// collision or un-indexable address) under the original map
	// semantics. Empty in ordinary runs.
	over map[anoncrypto.Identity]Entry
}

// NewTable creates a table whose entries expire ttl after their beacon,
// with a private beacon log.
func NewTable(ttl sim.Time) *Table {
	return NewSharedTable(ttl, NewBeaconLog())
}

// NewSharedTable creates a table whose beacon content lives in the
// given shared log. All tables of one simulation should share one log.
func NewSharedTable(ttl sim.Time, log *BeaconLog) *Table {
	log.attach(ttl)
	return &Table{ttl: ttl, log: log}
}

// Update inserts or refreshes a neighbor from a received beacon. Calls
// must carry nondecreasing timestamps (simulated time is monotone, so
// any in-order caller does).
func (t *Table) Update(id anoncrypto.Identity, addr mac.Addr, loc geo.Point, now sim.Time) {
	// Delivery fast path: if the log just recorded this very delivery
	// (same sender address at this instant — see the memo fields), the
	// beacon content is already published and consistent, so this
	// receiver only needs to stamp its own last-heard slot. Kept small
	// enough to inline into the per-receiver beacon handlers.
	l := t.log
	if l.lastAt == now+1 && l.lastAddr == addr && int(l.lastV) < len(t.lastHeard) {
		t.lastHeard[l.lastV] = now + 1
		return
	}
	t.updateSlow(id, addr, loc, now)
}

// updateSlow is Update without the delivery memo: the first receiver
// of each beacon, plus growth and overflow cases.
func (t *Table) updateSlow(id anoncrypto.Identity, addr mac.Addr, loc geo.Point, now sim.Time) {
	v, ok := logKey(addr)
	if !ok || !t.log.publish(v, id, addr, loc, now) {
		if t.over == nil {
			t.over = make(map[anoncrypto.Identity]Entry)
		}
		t.over[id] = Entry{ID: id, MAC: addr, Loc: loc, Seen: now}
		return
	}
	if int(v) >= len(t.lastHeard) {
		grown := make([]sim.Time, v+1+16)
		copy(grown, t.lastHeard)
		t.lastHeard = grown
	}
	t.lastHeard[v] = now + 1
}

// live reports whether an encoded last-heard timestamp is a live entry
// at now.
func (t *Table) live(lh, now sim.Time) bool {
	return lh > 0 && now-(lh-1) <= t.ttl
}

// entryAt materializes the Entry for address slot v heard at the
// (decoded) time heard.
func (t *Table) entryAt(v uint32, heard sim.Time) (Entry, bool) {
	loc, ok := t.log.locAt(v, heard)
	if !ok {
		return Entry{}, false
	}
	s := &t.log.slots[v]
	return Entry{ID: s.id, MAC: s.mac, Loc: loc, Seen: heard}, true
}

// Get returns the live entry for id, if any.
func (t *Table) Get(id anoncrypto.Identity, now sim.Time) (Entry, bool) {
	if v, ok := t.log.byID[id]; ok && int(v) < len(t.lastHeard) {
		if lh := t.lastHeard[v]; t.live(lh, now) {
			return t.entryAt(v, lh-1)
		}
	}
	if e, ok := t.over[id]; ok && now-e.Seen <= t.ttl {
		return e, true
	}
	return Entry{}, false
}

// Len reports the number of live entries.
func (t *Table) Len(now sim.Time) int {
	n := 0
	for _, lh := range t.lastHeard {
		if t.live(lh, now) {
			n++
		}
	}
	for _, e := range t.over {
		if now-e.Seen <= t.ttl {
			n++
		}
	}
	return n
}

// Remove evicts a neighbor immediately — GPSR's reaction to MAC-level
// send failure (the neighbor moved away or died).
func (t *Table) Remove(id anoncrypto.Identity) {
	if v, ok := t.log.byID[id]; ok && int(v) < len(t.lastHeard) {
		t.lastHeard[v] = -1
	}
	delete(t.over, id)
}

// Expire drops stale entries; call it opportunistically. Staleness is
// implicit in the last-heard timestamps, so there is nothing to sweep —
// the method survives for API compatibility and overflow hygiene.
func (t *Table) Expire(now sim.Time) {
	for id, e := range t.over {
		if now-e.Seen > t.ttl {
			delete(t.over, id)
		}
	}
}

// Closest returns the live neighbor strictly closer to dest than from,
// the greedy-forwarding criterion. ok is false at a local maximum.
// Distance ties break deterministically by identity so the result does
// not depend on table storage order. Comparisons are between squared
// distances — an exact, hypot-free ordering of the true distances.
func (t *Table) Closest(dest, from geo.Point, now sim.Time) (Entry, bool) {
	myD2 := from.Dist2(dest)
	best := Entry{}
	bestD2 := 0.0
	found := false
	consider := func(e Entry) {
		d2 := e.Loc.Dist2(dest)
		if d2 >= myD2 {
			return
		}
		if !found || d2 < bestD2 || (d2 == bestD2 && e.ID < best.ID) {
			best, bestD2, found = e, d2, true
		}
	}
	for v, lh := range t.lastHeard {
		if !t.live(lh, now) {
			continue
		}
		if e, ok := t.entryAt(uint32(v), lh-1); ok {
			consider(e)
		}
	}
	for _, e := range t.over {
		if now-e.Seen <= t.ttl {
			consider(e)
		}
	}
	return best, found
}

// ClosestTrusted is the trust-aware variant of Closest: quarantined
// neighbors are skipped outright, and among the remaining candidates
// strictly closer to dest the winner maximizes trust-weighted progress
// score×(myD−d). Candidates scoring below the shun threshold lose to
// any candidate at or above it and are used only as a last resort (a
// suspect relay still beats a guaranteed dead-end drop). Tie-breaks are
// total — weighted progress, then distance, then identity — so results
// never depend on storage order. Closest itself is retained verbatim as
// the defense-off parity oracle.
func (t *Table) ClosestTrusted(dest, from geo.Point, now sim.Time, tr *Trust) (Entry, bool) {
	if tr == nil {
		return t.Closest(dest, from, now)
	}
	myD := from.Dist(dest)
	type cand struct {
		e Entry
		w float64 // trust-weighted progress
		d float64
	}
	var best, bestAny cand
	found, foundAny := false, false
	better := func(a, b cand) bool {
		if a.w != b.w {
			return a.w > b.w
		}
		if a.d != b.d {
			return a.d < b.d
		}
		return a.e.ID < b.e.ID
	}
	consider := func(e Entry) {
		d := e.Loc.Dist(dest)
		if d >= myD {
			return
		}
		key := string(e.ID)
		if tr.Quarantined(key, now) {
			return
		}
		c := cand{e: e, w: tr.Weight(key) * (myD - d), d: d}
		if !foundAny || better(c, bestAny) {
			bestAny, foundAny = c, true
		}
		if tr.Shunned(key) {
			return
		}
		if !found || better(c, best) {
			best, found = c, true
		}
	}
	for v, lh := range t.lastHeard {
		if !t.live(lh, now) {
			continue
		}
		if e, ok := t.entryAt(uint32(v), lh-1); ok {
			consider(e)
		}
	}
	for _, e := range t.over {
		if now-e.Seen <= t.ttl {
			consider(e)
		}
	}
	if found {
		return best.e, true
	}
	if foundAny {
		tr.Fallbacks++
		return bestAny.e, true
	}
	return Entry{}, false
}

// Entries snapshots the live entries (copied; callers may mutate
// freely), in deterministic order: address-indexed entries ascending,
// then overflow entries by identity.
func (t *Table) Entries(now sim.Time) []Entry {
	var out []Entry
	for v, lh := range t.lastHeard {
		if !t.live(lh, now) {
			continue
		}
		if e, ok := t.entryAt(uint32(v), lh-1); ok {
			out = append(out, e)
		}
	}
	if len(t.over) > 0 {
		var extra []Entry
		for _, e := range t.over {
			if now-e.Seen <= t.ttl {
				extra = append(extra, e)
			}
		}
		sort.Slice(extra, func(i, j int) bool { return extra[i].ID < extra[j].ID })
		out = append(out, extra...)
	}
	return out
}

// Package neighbor implements the neighbor state geographic routing
// builds from hello beacons, in the three flavors the paper discusses:
//
//   - Table: the classic GPSR neighbor table keyed by real identity,
//     built from cleartext (identity, location) beacons.
//   - ANT: the anonymous neighbor table of §3.1.1, keyed by one-shot
//     pseudonyms. One physical neighbor legitimately appears as several
//     entries; the selection policies implement the paper's
//     freshness-aware forwarding refinement.
//   - Authenticated ANT (§3.1.2): hello messages carry ring signatures so
//     a receiver can check the sender is *some* authorized node without
//     learning which, achieving (k+1)-anonymity.
package neighbor

import (
	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/sim"
)

// Entry is one row of a plain GPSR neighbor table: the identity,
// link-layer address, and last reported position of a neighbor.
type Entry struct {
	ID   anoncrypto.Identity
	MAC  mac.Addr
	Loc  geo.Point
	Seen sim.Time
}

// Table is the identity-keyed neighbor table the GPSR baseline uses.
// It is exactly the structure whose beacons leak (identity, location)
// pairs to every listener — the privacy problem the paper attacks.
//
// Entries live in a dense slice in first-beacon order, with a side map
// from identity to slot: refreshing a known neighbor (the steady-state
// beacon case, hundreds of thousands of times per run) is a map lookup
// plus a slice store, and the scans Closest and Expire do per forwarded
// packet walk contiguous memory in a deterministic order instead of
// ranging over a map.
type Table struct {
	ttl     sim.Time
	entries []Entry
	slot    map[anoncrypto.Identity]int
}

// NewTable creates a table whose entries expire ttl after their beacon.
func NewTable(ttl sim.Time) *Table {
	return &Table{ttl: ttl, slot: make(map[anoncrypto.Identity]int)}
}

// Update inserts or refreshes a neighbor from a received beacon.
func (t *Table) Update(id anoncrypto.Identity, addr mac.Addr, loc geo.Point, now sim.Time) {
	if k, ok := t.slot[id]; ok {
		t.entries[k] = Entry{ID: id, MAC: addr, Loc: loc, Seen: now}
		return
	}
	t.slot[id] = len(t.entries)
	t.entries = append(t.entries, Entry{ID: id, MAC: addr, Loc: loc, Seen: now})
}

// Get returns the live entry for id, if any.
func (t *Table) Get(id anoncrypto.Identity, now sim.Time) (Entry, bool) {
	k, ok := t.slot[id]
	if !ok || now-t.entries[k].Seen > t.ttl {
		return Entry{}, false
	}
	return t.entries[k], true
}

// Len reports the number of live entries.
func (t *Table) Len(now sim.Time) int {
	n := 0
	for i := range t.entries {
		if now-t.entries[i].Seen <= t.ttl {
			n++
		}
	}
	return n
}

// Remove evicts a neighbor immediately — GPSR's reaction to MAC-level
// send failure (the neighbor moved away or died).
func (t *Table) Remove(id anoncrypto.Identity) {
	k, ok := t.slot[id]
	if !ok {
		return
	}
	delete(t.slot, id)
	t.entries = append(t.entries[:k], t.entries[k+1:]...)
	for i := k; i < len(t.entries); i++ {
		t.slot[t.entries[i].ID] = i
	}
}

// Expire drops stale entries; call it opportunistically.
func (t *Table) Expire(now sim.Time) {
	kept := t.entries[:0]
	for _, e := range t.entries {
		if now-e.Seen > t.ttl {
			delete(t.slot, e.ID)
			continue
		}
		if k := len(kept); k != t.slot[e.ID] {
			t.slot[e.ID] = k
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(t.entries); i++ {
		t.entries[i] = Entry{}
	}
	t.entries = kept
}

// Closest returns the live neighbor strictly closer to dest than from,
// the greedy-forwarding criterion. ok is false at a local maximum.
// Distance ties break deterministically by identity so the result does
// not depend on table storage order. Comparisons are between squared
// distances — an exact, hypot-free ordering of the true distances.
func (t *Table) Closest(dest, from geo.Point, now sim.Time) (Entry, bool) {
	myD2 := from.Dist2(dest)
	best := Entry{}
	bestD2 := 0.0
	found := false
	for i := range t.entries {
		e := &t.entries[i]
		if now-e.Seen > t.ttl {
			continue
		}
		d2 := e.Loc.Dist2(dest)
		if d2 >= myD2 {
			continue
		}
		if !found || d2 < bestD2 || (d2 == bestD2 && e.ID < best.ID) {
			best, bestD2, found = *e, d2, true
		}
	}
	return best, found
}

// Entries snapshots the live entries (copied; callers may mutate freely).
func (t *Table) Entries(now sim.Time) []Entry {
	out := make([]Entry, 0, len(t.entries))
	for i := range t.entries {
		if now-t.entries[i].Seen <= t.ttl {
			out = append(out, t.entries[i])
		}
	}
	return out
}

// Package neighbor implements the neighbor state geographic routing
// builds from hello beacons, in the three flavors the paper discusses:
//
//   - Table: the classic GPSR neighbor table keyed by real identity,
//     built from cleartext (identity, location) beacons.
//   - ANT: the anonymous neighbor table of §3.1.1, keyed by one-shot
//     pseudonyms. One physical neighbor legitimately appears as several
//     entries; the selection policies implement the paper's
//     freshness-aware forwarding refinement.
//   - Authenticated ANT (§3.1.2): hello messages carry ring signatures so
//     a receiver can check the sender is *some* authorized node without
//     learning which, achieving (k+1)-anonymity.
package neighbor

import (
	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/sim"
)

// Entry is one row of a plain GPSR neighbor table: the identity,
// link-layer address, and last reported position of a neighbor.
type Entry struct {
	ID   anoncrypto.Identity
	MAC  mac.Addr
	Loc  geo.Point
	Seen sim.Time
}

// Table is the identity-keyed neighbor table the GPSR baseline uses.
// It is exactly the structure whose beacons leak (identity, location)
// pairs to every listener — the privacy problem the paper attacks.
type Table struct {
	ttl     sim.Time
	entries map[anoncrypto.Identity]Entry
}

// NewTable creates a table whose entries expire ttl after their beacon.
func NewTable(ttl sim.Time) *Table {
	return &Table{ttl: ttl, entries: make(map[anoncrypto.Identity]Entry)}
}

// Update inserts or refreshes a neighbor from a received beacon.
func (t *Table) Update(id anoncrypto.Identity, addr mac.Addr, loc geo.Point, now sim.Time) {
	t.entries[id] = Entry{ID: id, MAC: addr, Loc: loc, Seen: now}
}

// Get returns the live entry for id, if any.
func (t *Table) Get(id anoncrypto.Identity, now sim.Time) (Entry, bool) {
	e, ok := t.entries[id]
	if !ok || now-e.Seen > t.ttl {
		return Entry{}, false
	}
	return e, true
}

// Len reports the number of live entries.
func (t *Table) Len(now sim.Time) int {
	n := 0
	for _, e := range t.entries {
		if now-e.Seen <= t.ttl {
			n++
		}
	}
	return n
}

// Remove evicts a neighbor immediately — GPSR's reaction to MAC-level
// send failure (the neighbor moved away or died).
func (t *Table) Remove(id anoncrypto.Identity) {
	delete(t.entries, id)
}

// Expire drops stale entries; call it opportunistically.
func (t *Table) Expire(now sim.Time) {
	for id, e := range t.entries {
		if now-e.Seen > t.ttl {
			delete(t.entries, id)
		}
	}
}

// Closest returns the live neighbor strictly closer to dest than from,
// the greedy-forwarding criterion. ok is false at a local maximum.
// Distance ties break deterministically by identity so runs do not
// depend on map iteration order.
func (t *Table) Closest(dest, from geo.Point, now sim.Time) (Entry, bool) {
	myD := from.Dist(dest)
	best := Entry{}
	bestD := 0.0
	found := false
	for _, e := range t.entries {
		if now-e.Seen > t.ttl {
			continue
		}
		d := e.Loc.Dist(dest)
		if d >= myD {
			continue
		}
		if !found || d < bestD || (d == bestD && e.ID < best.ID) {
			best, bestD, found = e, d, true
		}
	}
	return best, found
}

// Entries snapshots the live entries (copied; callers may mutate freely).
func (t *Table) Entries(now sim.Time) []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		if now-e.Seen <= t.ttl {
			out = append(out, e)
		}
	}
	return out
}

package neighbor

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/sim"
)

// testTrustConfig is DefaultTrustConfig with the scenario-derived knobs
// (normally filled by core.Config) pinned for unit tests.
func testTrustConfig() TrustConfig {
	cfg := DefaultTrustConfig()
	cfg.MaxSpeed = 20
	cfg.RadioRange = 250
	return cfg
}

// TestTrustScoreConvergence pins the EWMA dynamics the defense relies
// on: a consistently honest relay converges to a high score within a few
// observations, and a consistently dropping one falls below the shun
// threshold within K = 3 failures at the default gain — about one
// pseudonym lifetime of ARQ interactions.
func TestTrustScoreConvergence(t *testing.T) {
	tr := NewTrust(testTrustConfig())
	now := sim.Time(0)
	for i := 0; i < 5; i++ {
		tr.Record("honest", true, now)
		now += sim.Second
	}
	if s := tr.Score("honest"); s < 0.9 {
		t.Errorf("honest relay score = %.3f after 5 confirmations, want > 0.9", s)
	}
	for i := 0; i < 3; i++ {
		if i < 2 && tr.Shunned("greyhole") {
			t.Fatalf("relay shunned after only %d failures", i)
		}
		tr.Record("greyhole", false, now)
		now += sim.Second
	}
	if !tr.Shunned("greyhole") {
		t.Errorf("dropping relay score = %.3f after 3 failures, still above shun threshold %.3f",
			tr.Score("greyhole"), tr.Config().MinScore)
	}
	if tr.Shunned("honest") || tr.Shunned("unknown") {
		t.Error("honest or unseen keys must not be shunned")
	}
}

// TestTrustCheckBeaconRange rejects beacons whose claimed position could
// not have been heard: farther than RangeSlack×RadioRange from the
// receiver. The violator is quarantined for QuarantineFor and usable
// again afterward.
func TestTrustCheckBeaconRange(t *testing.T) {
	tr := NewTrust(testTrustConfig())
	rx := geo.Pt(0, 0)
	if !tr.CheckBeacon("near", geo.Pt(200, 0), rx, 0) {
		t.Error("in-range claim rejected")
	}
	if tr.CheckBeacon("liar", geo.Pt(400, 0), rx, 0) {
		t.Error("claim at 400 m accepted against 1.25×250 m bound")
	}
	if tr.Quarantines != 1 {
		t.Errorf("Quarantines = %d, want 1", tr.Quarantines)
	}
	if !tr.Quarantined("liar", sim.Second) {
		t.Error("violator not quarantined")
	}
	if tr.Quarantined("liar", tr.Config().QuarantineFor+sim.Second) {
		t.Error("quarantine never expires")
	}
	if tr.Quarantined("near", sim.Second) {
		t.Error("honest key quarantined")
	}
}

// TestTrustCheckBeaconJump rejects position jumps no honest node could
// drive: farther than MaxSpeed·dt + JumpSlack between consecutive
// advertisements. Very stale history (dt > 10 s) is too loose to judge
// and is skipped.
func TestTrustCheckBeaconJump(t *testing.T) {
	tr := NewTrust(testTrustConfig())
	rx := geo.Pt(0, 0)
	if !tr.CheckBeacon("k", geo.Pt(100, 0), rx, 0) {
		t.Fatal("first beacon rejected")
	}
	// 1 s later the plausible envelope is 20·1 + 25 = 45 m.
	if tr.CheckBeacon("k", geo.Pt(200, 0), rx, sim.Second) {
		t.Error("100 m jump in 1 s accepted")
	}
	tr2 := NewTrust(testTrustConfig())
	tr2.CheckBeacon("k", geo.Pt(100, 0), rx, 0)
	if !tr2.CheckBeacon("k", geo.Pt(130, 0), rx, sim.Second) {
		t.Error("30 m jump in 1 s rejected")
	}
	tr3 := NewTrust(testTrustConfig())
	tr3.CheckBeacon("k", geo.Pt(100, 0), rx, 0)
	if !tr3.CheckBeacon("k", geo.Pt(240, 0), rx, sim.Time(11*time.Second)) {
		t.Error("jump judged against >10 s stale history")
	}
}

// TestTrustExpire garbage-collects untouched keys back to InitScore —
// the bound on state growth under pseudonym-rotating floods.
func TestTrustExpire(t *testing.T) {
	tr := NewTrust(testTrustConfig())
	tr.Record("old", false, 0)
	tr.Record("fresh", false, 9*sim.Second)
	tr.Expire(10*sim.Second, 5*sim.Second)
	if s := tr.Score("old"); s != tr.Config().InitScore {
		t.Errorf("expired key score = %.3f, want re-seeded init %.3f", s, tr.Config().InitScore)
	}
	if s := tr.Score("fresh"); s == tr.Config().InitScore {
		t.Error("recently touched key was expired")
	}
}

// TestTableClosestTrustedIsolatesGreyhole is the defense's selection
// story at the Table level: an attacker offering the best geographic
// progress wins at neutral trust, loses selection to an honest
// alternative within K recorded failures, and comes back only as a
// last-resort fallback when it is the sole candidate.
func TestTableClosestTrustedIsolatesGreyhole(t *testing.T) {
	tb := NewTable(ttl)
	dest, from := geo.Pt(1000, 0), geo.Pt(0, 0)
	tb.Update("attacker", mac.AddrFromUint64(1), geo.Pt(240, 0), 0)
	tb.Update("honest", mac.AddrFromUint64(2), geo.Pt(180, 0), 0)
	tr := NewTrust(testTrustConfig())

	if e, ok := tb.ClosestTrusted(dest, from, sim.Second, tr); !ok || e.ID != "attacker" {
		t.Fatalf("neutral trust pick = %+v, %v; want the best-progress entry", e, ok)
	}
	for i := 0; i < 3; i++ {
		tr.Record("attacker", false, sim.Second)
	}
	if e, ok := tb.ClosestTrusted(dest, from, sim.Second, tr); !ok || e.ID != "honest" {
		t.Fatalf("post-evidence pick = %+v, %v; want the honest entry", e, ok)
	}
	tb.Remove("honest")
	fallbacks := tr.Fallbacks
	if e, ok := tb.ClosestTrusted(dest, from, sim.Second, tr); !ok || e.ID != "attacker" {
		t.Fatalf("sole-candidate pick = %+v, %v; want the shunned fallback", e, ok)
	}
	if tr.Fallbacks != fallbacks+1 {
		t.Error("fallback selection did not count")
	}
}

// TestANTTrustedIsolatesGreyhole mirrors the isolation story on the
// anonymous table: within one pseudonym lifetime, recorded ACK failures
// push a lure entry below an honest one despite better progress.
func TestANTTrustedIsolatesGreyhole(t *testing.T) {
	ant := NewANT(ttl, 20)
	dest, from := geo.Pt(1000, 0), geo.Pt(0, 0)
	var attacker, honest anoncrypto.Pseudonym
	attacker[0], honest[0] = 0xAA, 0xBB
	ant.Update(attacker, geo.Pt(240, 0), 0)
	ant.Update(honest, geo.Pt(180, 0), 0)
	tr := NewTrust(testTrustConfig())

	if e, ok := ant.ChooseNextHopTrusted(dest, from, sim.Second, nil, tr); !ok || e.N != attacker {
		t.Fatalf("neutral trust pick = %+v, %v; want the best-progress entry", e, ok)
	}
	for i := 0; i < 3; i++ {
		tr.Record(string(attacker[:]), false, sim.Second)
	}
	if e, ok := ant.ChooseNextHopTrusted(dest, from, sim.Second, nil, tr); !ok || e.N != honest {
		t.Fatalf("post-evidence pick = %+v, %v; want the honest entry", e, ok)
	}
	if e, ok := ant.ChooseNextHopTrusted(dest, from, sim.Second, map[anoncrypto.Pseudonym]bool{honest: true}, tr); !ok || e.N != attacker {
		t.Fatalf("sole-candidate pick = %+v, %v; want the shunned fallback", e, ok)
	}
}

// TestTrustedSelectionNeutralParity is the property test behind the
// defense-off parity guarantee: with no recorded evidence (every key at
// the uniform InitScore), trusted selection must agree with its
// untrusted oracle on random tables — Closest for the identity table,
// PolicyWeighted for the ANT (whose staleness-discounted ordering the
// trusted chooser scales by the uniform score, preserving the argmax and
// the tie-break chain).
func TestTrustedSelectionNeutralParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		now := sim.Time(10 * time.Second)
		dest := geo.Pt(rng.Float64()*1000, rng.Float64()*300)
		from := geo.Pt(rng.Float64()*1000, rng.Float64()*300)

		tb := NewTable(ttl)
		ant := NewANT(ttl, 20)
		ant.SetReachRange(250)
		n := 1 + rng.Intn(12)
		seens := make([]sim.Time, n)
		for i := range seens {
			seens[i] = now - sim.Time(rng.Int63n(int64(ttl)))
		}
		sort.Slice(seens, func(i, j int) bool { return seens[i] < seens[j] })
		for i := 0; i < n; i++ {
			loc := geo.Pt(rng.Float64()*1000, rng.Float64()*300)
			tb.Update(anoncrypto.Identity(string(rune('a'+i))), mac.AddrFromUint64(uint64(i)), loc, seens[i])
			var p anoncrypto.Pseudonym
			rng.Read(p[:])
			ant.Update(p, loc, seens[i])
		}

		tr := NewTrust(testTrustConfig())
		wantT, okT := tb.Closest(dest, from, now)
		gotT, gokT := tb.ClosestTrusted(dest, from, now, tr)
		if okT != gokT || wantT != gotT {
			t.Fatalf("trial %d: table parity broke: untrusted (%+v, %v) vs neutral-trusted (%+v, %v)",
				trial, wantT, okT, gotT, gokT)
		}
		wantA, okA := ant.ChooseNextHopExcluding(dest, from, now, PolicyWeighted, nil)
		gotA, gokA := ant.ChooseNextHopTrusted(dest, from, now, nil, tr)
		if okA != gokA || wantA != gotA {
			t.Fatalf("trial %d: ANT parity broke: untrusted (%+v, %v) vs neutral-trusted (%+v, %v)",
				trial, wantA, okA, gotA, gokA)
		}
		if tr.Fallbacks != 0 || tr.Quarantines != 0 {
			t.Fatalf("trial %d: neutral selection recorded defense events", trial)
		}
	}
}

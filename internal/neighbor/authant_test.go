package neighbor

import (
	"math/rand"
	"sync"
	"testing"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// Shared crypto fixtures (key generation is expensive).
var (
	authOnce  sync.Once
	authKeys  []*anoncrypto.KeyPair
	authCerts []*anoncrypto.Cert
	authCA    *anoncrypto.CA
)

func authFixtures(t testing.TB) ([]*anoncrypto.KeyPair, []*anoncrypto.Cert, *anoncrypto.CA) {
	t.Helper()
	authOnce.Do(func() {
		ca, err := anoncrypto.NewCA(1024)
		if err != nil {
			t.Fatalf("NewCA: %v", err)
		}
		authCA = ca
		names := []anoncrypto.Identity{"alice", "bob", "carol", "dave", "erin", "frank"}
		for _, n := range names {
			kp, err := anoncrypto.GenerateKeyPair(n, anoncrypto.DefaultKeyBits)
			if err != nil {
				t.Fatalf("GenerateKeyPair: %v", err)
			}
			c, err := ca.Issue(kp)
			if err != nil {
				t.Fatalf("Issue: %v", err)
			}
			authKeys = append(authKeys, kp)
			authCerts = append(authCerts, c)
		}
	})
	return authKeys, authCerts, authCA
}

func newTestSigner(t testing.TB, seed int64) (*Signer, *anoncrypto.CA) {
	keys, certs, ca := authFixtures(t)
	return NewSigner(keys[0], certs[0], certs[1:], rand.New(rand.NewSource(seed))), ca
}

func testHello(seed int64) Hello {
	return Hello{N: newPseudo(seed), Loc: geo.Pt(100, 200), TS: 3 * sim.Second}
}

func TestAuthHelloSignVerify(t *testing.T) {
	s, ca := newTestSigner(t, 1)
	v := NewVerifier(ca.PublicKey())
	ah, err := s.Sign(testHello(1), 3, true)
	if err != nil {
		t.Fatal(err)
	}
	size, err := v.Verify(ah)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if size != 4 {
		t.Fatalf("anonymity set = %d, want k+1 = 4", size)
	}
}

func TestAuthHelloRingContainsSigner(t *testing.T) {
	s, _ := newTestSigner(t, 2)
	ah, err := s.Sign(testHello(2), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range ah.Ring {
		if c.Subject == "alice" {
			found = true
		}
	}
	if !found {
		t.Fatal("signer's certificate missing from ring")
	}
}

func TestAuthHelloDecoysVaryAcrossHellos(t *testing.T) {
	s, _ := newTestSigner(t, 3)
	ringsSeen := map[string]bool{}
	for i := 0; i < 20; i++ {
		ah, err := s.Sign(testHello(int64(i)), 2, true)
		if err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, c := range ah.Ring {
			key += string(c.Subject) + ","
		}
		ringsSeen[key] = true
	}
	if len(ringsSeen) < 2 {
		t.Fatal("ring composition never varied; transmissions are correlatable")
	}
}

func TestAuthHelloTamperedBodyRejected(t *testing.T) {
	s, ca := newTestSigner(t, 4)
	v := NewVerifier(ca.PublicKey())
	ah, err := s.Sign(testHello(4), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	ah.Hello.Loc = geo.Pt(999, 999) // spoof the advertised position
	if _, err := v.Verify(ah); err == nil {
		t.Fatal("forged position accepted")
	}
}

func TestAuthHelloForgedRingRejected(t *testing.T) {
	keys, certs, ca := authFixtures(t)
	v := NewVerifier(ca.PublicKey())
	// An outsider with a self-made (un-certified) key tries to join a ring.
	outsider, err := anoncrypto.GenerateKeyPair("mallory", anoncrypto.DefaultKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	fakeCert := certs[0].Clone()
	fakeCert.Subject = "mallory"
	fakeCert.PublicKey = outsider.Public()
	s := NewSigner(outsider, fakeCert, certs[1:], rand.New(rand.NewSource(5)))
	ah, err := s.Sign(testHello(5), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify(ah); err == nil {
		t.Fatal("hello with forged certificate accepted")
	}
	_ = keys
}

func TestAuthHelloKValidation(t *testing.T) {
	s, _ := newTestSigner(t, 6)
	if _, err := s.Sign(testHello(6), 0, true); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := s.Sign(testHello(6), 100, true); err == nil {
		t.Fatal("k beyond pool accepted")
	}
}

func TestAuthHelloWireSizeGrowsWithK(t *testing.T) {
	s, _ := newTestSigner(t, 7)
	prev := 0
	for _, k := range []int{1, 2, 4} {
		ah, err := s.Sign(testHello(7), k, true)
		if err != nil {
			t.Fatal(err)
		}
		if ah.WireSize() <= prev {
			t.Fatalf("WireSize(k=%d) = %d, not growing (prev %d)", k, ah.WireSize(), prev)
		}
		prev = ah.WireSize()
	}
}

func TestAuthHelloReferencesSmallerThanAttached(t *testing.T) {
	s, _ := newTestSigner(t, 8)
	attached, err := s.Sign(testHello(8), 3, true)
	if err != nil {
		t.Fatal(err)
	}
	referenced, err := s.Sign(testHello(8), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if referenced.WireSize() >= attached.WireSize() {
		t.Fatalf("reference mode (%d B) not smaller than attach mode (%d B)",
			referenced.WireSize(), attached.WireSize())
	}
}

func TestVerifierCachesCertsAndCountsMisses(t *testing.T) {
	s, ca := newTestSigner(t, 9)
	v := NewVerifier(ca.PublicKey())
	ah, err := s.Sign(testHello(9), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify(ah); err != nil {
		t.Fatal(err)
	}
	firstMisses := v.Misses
	if firstMisses != 4 {
		t.Fatalf("cold-cache misses = %d, want 4", firstMisses)
	}
	// Re-verifying the same ring must be all cache hits.
	ah2, err := s.Sign(testHello(10), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	// Force the same ring membership by retrying until subset matches is
	// flaky; instead verify the first hello again.
	if _, err := v.Verify(ah); err != nil {
		t.Fatal(err)
	}
	if v.Misses != firstMisses {
		t.Fatalf("warm-cache verify added misses: %d → %d", firstMisses, v.Misses)
	}
	if _, err := v.Verify(ah2); err != nil {
		t.Fatal(err)
	}
	if v.CachedCerts() < 4 {
		t.Fatalf("CachedCerts = %d", v.CachedCerts())
	}
}

func TestVerifierRejectsMalformed(t *testing.T) {
	_, _, ca := authFixtures(t)
	v := NewVerifier(ca.PublicKey())
	if _, err := v.Verify(nil); err == nil {
		t.Fatal("nil hello accepted")
	}
	if _, err := v.Verify(&AuthHello{}); err == nil {
		t.Fatal("empty hello accepted")
	}
}

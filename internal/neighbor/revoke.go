package neighbor

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/sim"
)

// Revocable anonymity: the escrow-side answer to the pseudonym-rotation
// attribution gap documented in trust.go. Every pseudonym a node rotates
// to is registered with an escrow authority set (anoncrypto.EscrowGroup,
// Shamir t-of-n over a group key the CA deals at setup). Honest nodes
// stay anonymous — no coalition smaller than Threshold can link a
// pseudonym to an identity. But when enough distinct authorities endorse
// an accusation against one pseudonym, the quorum opens its escrow tag,
// links the identity, and from then on every pseudonym of that identity
// inherits the revoked standing instead of resetting to InitScore.
//
// The registry is the simulator's stand-in for the authority
// infrastructure: registration is a map insert (the real SealTag /
// Quorum.Open crypto runs at each opening, where it is rare, not per
// beacon — the same modeled-vs-real split as agfw.ModeledScheme), and
// the post-revocation link service stands in for authorities opening
// tags of already-revoked identities on request. Protocol state never
// branches on registry internals except through Linked, which only
// returns data for revoked identities.

// RevocationConfig parameterizes the escrow authority set. The zero
// value means "disabled"; DefaultRevocationConfig gives the evaluation
// parameters.
type RevocationConfig struct {
	// Threshold is t: distinct authorities that must endorse an
	// accusation before a tag is opened.
	Threshold int `json:",omitempty"`
	// Authorities is n: the size of the authority set.
	Authorities int `json:",omitempty"`
	// RevokeFor is how long an opened identity's pseudonym chain stays
	// quarantined after the opening. Zero means the rest of the run.
	RevokeFor sim.Time `json:",omitempty"`
	// TagTTL bounds registry memory: tags unaccused for longer than this
	// are pruned (safe — trust state for such pseudonyms has expired
	// long before).
	TagTTL sim.Time `json:",omitempty"`
}

// DefaultRevocationConfig returns the authority-set parameters used in
// EXPERIMENTS.md E14: 3-of-5 escrow, chains revoked for the rest of the
// run, tags pruned after a minute unaccused.
func DefaultRevocationConfig() RevocationConfig {
	return RevocationConfig{
		Threshold:   3,
		Authorities: 5,
		TagTTL:      sim.Time(60 * time.Second),
	}
}

// Validate reports the first invalid field, in core.Config's
// "Field = value: reason" style.
func (c RevocationConfig) Validate() error {
	if c.Threshold < 1 {
		return fmt.Errorf("neighbor: Revocation.Threshold = %d: must be at least 1", c.Threshold)
	}
	if c.Authorities < c.Threshold {
		return fmt.Errorf("neighbor: Revocation.Authorities = %d: must be at least Threshold (%d)", c.Authorities, c.Threshold)
	}
	if c.Authorities > 255 {
		return fmt.Errorf("neighbor: Revocation.Authorities = %d: must fit a GF(256) share index (max 255)", c.Authorities)
	}
	if c.RevokeFor < 0 {
		return fmt.Errorf("neighbor: Revocation.RevokeFor = %v: must not be negative", c.RevokeFor)
	}
	if c.TagTTL < 0 {
		return fmt.Errorf("neighbor: Revocation.TagTTL = %v: must not be negative", c.TagTTL)
	}
	return nil
}

// RevocationStats are the registry's audit terms.
type RevocationStats struct {
	// Registered counts pseudonym registrations (one per rotation of
	// every participating node).
	Registered int
	// Accusations counts distinct (pseudonym, authority) endorsements.
	Accusations int
	// Openings counts quorum tag openings — identities revoked.
	Openings int
	// Inherits counts trust-table seeds that took a revoked chain's
	// standing instead of InitScore.
	Inherits int
	// Expired counts tags pruned unaccused past TagTTL.
	Expired int
}

type tagRec struct {
	id  anoncrypto.Identity
	nym anoncrypto.Pseudonym
	at  sim.Time
}

type revRec struct {
	score    float64
	openedAt sim.Time
}

// RevocationRegistry is one run's escrow authority infrastructure,
// shared by every node in the run. All methods are single-threaded on
// the simulation engine; no map iteration influences protocol decisions
// (pruning deletes independent entries, like Trust.Expire).
type RevocationRegistry struct {
	cfg   RevocationConfig
	group *anoncrypto.EscrowGroup

	tags     map[string]tagRec
	accusals map[string]map[int]bool
	worst    map[string]float64
	revoked  map[anoncrypto.Identity]revRec

	stats      RevocationStats
	sincePrune int
}

// NewRevocationRegistry deals a fresh t-of-n authority set from the
// run's seed. The escrow group key and shares come from a seeded
// math/rand stream, so identical seeds yield identical registries.
func NewRevocationRegistry(cfg RevocationConfig, seed int64) (*RevocationRegistry, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	group, err := anoncrypto.NewEscrowGroup(rand.New(rand.NewSource(seed)), cfg.Threshold, cfg.Authorities)
	if err != nil {
		return nil, err
	}
	return &RevocationRegistry{
		cfg:      cfg,
		group:    group,
		tags:     make(map[string]tagRec),
		accusals: make(map[string]map[int]bool),
		worst:    make(map[string]float64),
		revoked:  make(map[anoncrypto.Identity]revRec),
	}, nil
}

// Config exposes the effective parameters.
func (r *RevocationRegistry) Config() RevocationConfig { return r.cfg }

// Registered reports whether the pseudonym has a live escrow tag on
// file — the modeled outcome of verifying the tag's CA blessing. Forged
// pseudonyms (the flood attack's nonces) were never escrowed and fail.
func (r *RevocationRegistry) Registered(key string) bool {
	_, ok := r.tags[key]
	return ok
}

// Stats snapshots the audit terms.
func (r *RevocationRegistry) Stats() RevocationStats { return r.stats }

// Register escrows one freshly rotated pseudonym for identity id. Called
// by the router on every rotation; a map insert, with the tag sealed
// lazily at opening time (openings are rare, rotations are per-beacon).
func (r *RevocationRegistry) Register(key string, id anoncrypto.Identity, nym anoncrypto.Pseudonym, now sim.Time) {
	r.tags[key] = tagRec{id: id, nym: nym, at: now}
	r.stats.Registered++
	r.sincePrune++
	if r.sincePrune >= 4096 && r.cfg.TagTTL > 0 {
		r.sincePrune = 0
		for k, rec := range r.tags {
			if now-rec.at > r.cfg.TagTTL {
				delete(r.tags, k)
				delete(r.accusals, k)
				delete(r.worst, k)
				r.stats.Expired++
			}
		}
	}
}

// authorityFor maps an accuser identity onto the authority it petitions:
// a stable hash, so the same accuser always reaches the same authority
// and a single node can never assemble a quorum alone.
func (r *RevocationRegistry) authorityFor(accuser string) int {
	h := fnv.New32a()
	h.Write([]byte(accuser))
	return int(h.Sum32()) % r.cfg.Authorities
}

// Accuse files one node's misbehavior evidence against a pseudonym with
// that node's authority. When Threshold distinct authorities hold
// endorsements for the pseudonym, the quorum opens its escrow tag — the
// real Shamir reconstruction and AES-GCM opening run here — and the
// linked identity is revoked carrying the worst accused score. Returns
// true when this accusation completed a quorum.
func (r *RevocationRegistry) Accuse(key, accuser string, score float64, now sim.Time) bool {
	rec, ok := r.tags[key]
	if !ok {
		return false // unregistered or expired tag: nothing to open
	}
	if _, done := r.revoked[rec.id]; done {
		return false
	}
	set := r.accusals[key]
	if set == nil {
		set = make(map[int]bool)
		r.accusals[key] = set
	}
	idx := r.authorityFor(accuser)
	if !set[idx] {
		set[idx] = true
		r.stats.Accusations++
	}
	if w, ok := r.worst[key]; !ok || score < w {
		r.worst[key] = score
	}
	if len(set) < r.cfg.Threshold {
		return false
	}

	// Quorum met: seal the tag as the CA did at registration and open it
	// with Threshold authority shares — the genuine crypto path.
	tag, err := r.group.SealTag(rec.id, rec.nym)
	if err != nil {
		return false
	}
	q := anoncrypto.NewQuorum(r.cfg.Threshold)
	granted := 0
	for i := 0; i < r.cfg.Authorities && granted < r.cfg.Threshold; i++ {
		if set[i] {
			s, err := r.group.Authority(i)
			if err != nil {
				return false
			}
			q.Add(s)
			granted++
		}
	}
	opened, err := q.Open(tag, rec.nym)
	if err != nil || opened != rec.id {
		return false
	}
	r.revoked[opened] = revRec{score: r.worst[key], openedAt: now}
	r.stats.Openings++
	return true
}

// Linked reports whether the pseudonym belongs to a revoked identity,
// and if so the standing its trust state must inherit: the worst score
// accused before the opening, quarantined until openedAt+RevokeFor
// (forever when RevokeFor is zero).
func (r *RevocationRegistry) Linked(key string, now sim.Time) (score float64, quarUntil sim.Time, ok bool) {
	rec, tagged := r.tags[key]
	if !tagged {
		return 0, 0, false
	}
	rev, done := r.revoked[rec.id]
	if !done {
		return 0, 0, false
	}
	until := sim.Time(1<<62 - 1)
	if r.cfg.RevokeFor > 0 {
		until = rev.openedAt + r.cfg.RevokeFor
	}
	return rev.score, until, true
}

// Revoked reports whether the identity itself has been opened — the
// property-test hook for trust durability.
func (r *RevocationRegistry) Revoked(id anoncrypto.Identity) bool {
	_, ok := r.revoked[id]
	return ok
}

// noteInherit bumps the audit counter when a Trust table seeds a state
// from a revoked chain.
func (r *RevocationRegistry) noteInherit() { r.stats.Inherits++ }

package dist

import (
	"path/filepath"
	"reflect"
	"testing"

	"anongeo/internal/core"
)

// testResult builds a recognizably non-zero result for journal tests.
func testResult(sent int) core.Result {
	var r core.Result
	r.Nodes = 12
	r.Summary.Sent = sent
	r.Summary.Delivered = sent - 1
	return r
}

func TestGridWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	gridID := "0123456789abcdef-grid-one"
	keys := []string{"k0", "k1", "k2"}

	w, resumed, err := openGridWAL(dir, gridID, keys, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 0 {
		t.Fatalf("fresh journal resumed %d cells", len(resumed))
	}
	res := testResult(7)
	w.assign(0, "k0", "http://w1")
	w.done(0, "k0", res)
	w.done(1, "not-k1", testResult(9)) // key mismatch: must be dropped on reopen
	w.close()

	w2, resumed2, err := openGridWAL(dir, gridID, keys, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed2) != 1 {
		t.Fatalf("resumed %d cells, want 1 (mismatched-key record dropped)", len(resumed2))
	}
	got, ok := resumed2[0]
	if !ok || !reflect.DeepEqual(got, res) {
		t.Fatalf("resumed cell 0 = %+v, want %+v", got, res)
	}

	w2.retire()
	if m, _ := filepath.Glob(filepath.Join(dir, gridWALDirName, "*.wal")); len(m) != 0 {
		t.Fatalf("retire left journal files behind: %v", m)
	}
}

func TestGridWALHeaderMismatchResets(t *testing.T) {
	dir := t.TempDir()
	// Two grids whose IDs collide in the 16-char file name: the header's
	// full ID must disambiguate, discarding the stale journal.
	id1 := "aaaaaaaaaaaaaaaa-grid-one"
	id2 := "aaaaaaaaaaaaaaaa-grid-two"
	keys := []string{"k0"}

	w, _, err := openGridWAL(dir, id1, keys, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	w.done(0, "k0", testResult(3))
	w.close()

	w2, resumed, err := openGridWAL(dir, id2, keys, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(resumed) != 0 {
		t.Fatalf("journal for grid one leaked %d cells into grid two", len(resumed))
	}

	// And the reset journal works: grid two's own fold must survive a
	// reopen.
	w2.done(0, "k0", testResult(5))
	w2.close()
	_, resumed2, err := openGridWAL(dir, id2, keys, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed2) != 1 || resumed2[0].Summary.Sent != 5 {
		t.Fatalf("grid two resume = %+v, want its own folded cell", resumed2)
	}
}

func TestGridWALCellCountMismatchResets(t *testing.T) {
	dir := t.TempDir()
	gridID := "bbbbbbbbbbbbbbbb-grid"
	w, _, err := openGridWAL(dir, gridID, []string{"k0", "k1"}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	w.done(0, "k0", testResult(2))
	w.close()

	// Same ID, different cell count (schema drift): nothing is trusted.
	_, resumed, err := openGridWAL(dir, gridID, []string{"k0", "k1", "k2"}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 0 {
		t.Fatalf("cell-count mismatch still resumed %d cells", len(resumed))
	}
}

package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"anongeo/internal/core"
	"anongeo/internal/durable"
)

// The coordinator's fold WAL. The serve job WAL (jobs.wal) journals
// job-level lifecycle; this one journals *within* a grid: which cells
// were assigned where, and — the part that matters for resume — every
// folded cell's result. A coordinator SIGKILL mid-grid therefore
// resumes with all previously folded cells restored from the journal,
// re-dispatching only the remainder, without assuming the workers kept
// anything.
//
// One journal per grid lives under <dir>/grids/<gridID[:16]>.wal. The
// first record is a header carrying the grid's full content address and
// cell count; a journal whose header does not match the grid being
// executed (hash-prefix collision, schema drift) is discarded and
// rebuilt rather than trusted. Cell results round-trip through JSON
// exactly (Go encodes float64 shortest-exact), so a fold from restored
// records is bit-identical to the original.

// gridWALDirName is the subdirectory of the coordinator journal dir.
const gridWALDirName = "grids"

// gridOp names a grid WAL record type.
type gridOp string

const (
	gridOpHeader gridOp = "grid"
	gridOpAssign gridOp = "assign"
	gridOpDone   gridOp = "done"
)

// gridRecord is one journal entry, JSON inside the durable frame.
type gridRecord struct {
	Op gridOp `json:"op"`
	// Grid (header only) is the content address of the normalized sweep
	// request — the serve job ID.
	Grid  string `json:"grid,omitempty"`
	Cells int    `json:"cells,omitempty"`
	// Index is the cell's position in fold order; Key its content
	// address (the cell config's cache key).
	Index int    `json:"index"`
	Key   string `json:"key,omitempty"`
	// Worker (assign only) is the backend the cell went to.
	Worker string `json:"worker,omitempty"`
	// Result (done only) is the cell's folded result.
	Result *core.Result `json:"result,omitempty"`
	Time   time.Time    `json:"time,omitempty"`
}

// gridWAL is an open per-grid journal. Appends are best-effort: a full
// disk degrades durability (a crash would re-dispatch more cells), it
// never fails the grid.
type gridWAL struct {
	j    *durable.Journal
	path string
	logf func(format string, args ...any)
}

// openGridWAL opens (or resets) the journal for gridID and returns the
// cells a previous attempt already folded, keyed by index. keys are the
// current grid's per-cell content addresses; a done record whose key
// disagrees with keys[index] is dropped — recovery prefers recomputing
// a cell to inventing its result.
func openGridWAL(dir, gridID string, keys []string, logf func(string, ...any)) (*gridWAL, map[int]core.Result, error) {
	gdir := filepath.Join(dir, gridWALDirName)
	if err := os.MkdirAll(gdir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("dist: grid journal dir: %w", err)
	}
	path := filepath.Join(gdir, gridID[:16]+".wal")
	j, payloads, err := durable.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: open grid journal: %w", err)
	}

	done := make(map[int]core.Result)
	valid := false
	for i, p := range payloads {
		var rec gridRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			continue
		}
		if i == 0 {
			// Header gate: everything after it is trusted only if the
			// journal provably belongs to this exact grid.
			valid = rec.Op == gridOpHeader && rec.Grid == gridID && rec.Cells == len(keys)
			if !valid {
				break
			}
			continue
		}
		if rec.Op != gridOpDone || rec.Result == nil {
			continue
		}
		if rec.Index < 0 || rec.Index >= len(keys) || rec.Key != keys[rec.Index] {
			continue
		}
		done[rec.Index] = *rec.Result
	}

	w := &gridWAL{j: j, path: path, logf: logf}
	if len(payloads) == 0 || !valid {
		// Fresh grid (or a stale journal from another grid under a
		// colliding name): restart the file with just our header.
		if len(payloads) > 0 {
			done = map[int]core.Result{}
		}
		hdr, err := json.Marshal(gridRecord{Op: gridOpHeader, Grid: gridID, Cells: len(keys), Time: time.Now()})
		if err != nil {
			j.Close()
			return nil, nil, err
		}
		if err := j.Close(); err != nil {
			return nil, nil, err
		}
		if err := durable.Rewrite(path, [][]byte{hdr}); err != nil {
			return nil, nil, fmt.Errorf("dist: reset grid journal: %w", err)
		}
		w.j, _, err = durable.Open(path)
		if err != nil {
			return nil, nil, err
		}
	}
	return w, done, nil
}

// append commits one record, best-effort.
func (w *gridWAL) append(rec gridRecord) {
	if w == nil {
		return
	}
	rec.Time = time.Now()
	b, err := json.Marshal(rec)
	if err == nil {
		err = w.j.Append(b)
	}
	if err != nil && w.logf != nil {
		w.logf("dist: grid journal append (%s cell %d): %v", rec.Op, rec.Index, err)
	}
}

// assign journals a (re)assignment, for post-mortem dispatch history.
func (w *gridWAL) assign(index int, key, worker string) {
	w.append(gridRecord{Op: gridOpAssign, Index: index, Key: key, Worker: worker})
}

// done journals a folded cell: after this record is durable, no future
// coordinator run re-dispatches the cell.
func (w *gridWAL) done(index int, key string, res core.Result) {
	w.append(gridRecord{Op: gridOpDone, Index: index, Key: key, Result: &res})
}

// retire removes the journal after a clean completion: the serve job
// WAL's done record now carries the folded points, so the per-cell
// history has served its purpose. On failure the journal stays, seeding
// the next attempt.
func (w *gridWAL) retire() {
	if w == nil {
		return
	}
	_ = w.j.Close()
	_ = os.Remove(w.path)
}

// close releases the handle without removing the file.
func (w *gridWAL) close() {
	if w == nil {
		return
	}
	_ = w.j.Close()
}

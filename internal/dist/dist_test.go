package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"anongeo/internal/core"
	"anongeo/internal/exp"
	"anongeo/internal/geo"
	"anongeo/internal/serve"
)

// tinyBase mirrors the serve test scenario: a static 600×300 arena with
// 3 flows and 5 simulated seconds, so one grid cell runs in a few
// milliseconds even under -race.
func tinyBase() core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes = 12
	cfg.Area = geo.NewRect(600, 300)
	cfg.Static = true
	cfg.MinSpeed, cfg.MaxSpeed = 0, 0
	cfg.Pause = 0
	cfg.Flows = 3
	cfg.Senders = 3
	cfg.PacketInterval = 250 * time.Millisecond
	cfg.Duration = 5 * time.Second
	cfg.Warmup = time.Second
	cfg.Protocol = core.ProtoGPSR
	cfg.Policy = 0
	cfg.ReachFilter = false
	return cfg
}

// fastClient is the test retry policy: few attempts, millisecond
// backoff, deterministic jitter.
func fastClient(base string) *Client {
	c := NewClient(base)
	c.Attempts = 3
	c.Backoff = 5 * time.Millisecond
	c.MaxBackoff = 20 * time.Millisecond
	c.jitter = func(d time.Duration) time.Duration { return d }
	return c
}

// newWorker boots a real in-process worker daemon (full serve stack, no
// cache, no journal) behind httptest; wrap, when non-nil, interposes on
// its handler — the fault-injection seam.
func newWorker(t *testing.T, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	srv, err := serve.New(serve.Options{QueueDepth: 64, JobWorkers: 4, MaxCells: 64})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Manager().Drain(ctx)
	})
	return ts
}

// newCoord builds a coordinator over urls with test-speed probe, poll,
// and retry settings; mod tweaks the options further.
func newCoord(t *testing.T, urls []string, mod func(*Options)) *Coordinator {
	t.Helper()
	opts := Options{
		Workers:       urls,
		NewClient:     fastClient,
		ProbeInterval: 50 * time.Millisecond,
		PollInterval:  5 * time.Millisecond,
		StealAfter:    10 * time.Second,
		Logf:          t.Logf,
	}
	if mod != nil {
		mod(&opts)
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// newFront exposes coord under the full serve HTTP surface — the
// coordinator daemon as cmd/agrsimd -workers runs it.
func newFront(t *testing.T, coord *Coordinator) *httptest.Server {
	t.Helper()
	srv, err := serve.New(serve.Options{
		QueueDepth:   8,
		JobWorkers:   2,
		MaxCells:     64,
		Executor:     coord.Executor(),
		ExtraMetrics: coord.WriteMetrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Manager().Drain(ctx)
	})
	return ts
}

// runSweep submits req against a daemon (worker or coordinator — same
// API) through the shared client and polls the job to completion.
func runSweep(t *testing.T, base string, req serve.SweepRequest) []serve.SweepPoint {
	t.Helper()
	c := fastClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sub, err := c.SubmitSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, err := c.Job(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case serve.JobDone:
			return st.Points
		case serve.JobFailed, serve.JobCanceled:
			t.Fatalf("job %s: %s: %s", sub.ID, st.State, st.Error)
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			t.Fatalf("job %s did not finish: %v", sub.ID, ctx.Err())
		}
	}
}

func pointsJSON(t *testing.T, pts []serve.SweepPoint) []byte {
	t.Helper()
	b, err := json.Marshal(pts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDistributedFoldBitIdentical is the tentpole contract: a grid
// sharded across three workers folds to byte-for-byte the points a
// single-process daemon produces for the same request.
func TestDistributedFoldBitIdentical(t *testing.T) {
	w1, w2, w3 := newWorker(t, nil), newWorker(t, nil), newWorker(t, nil)
	coord := newCoord(t, []string{w1.URL, w2.URL, w3.URL}, nil)
	front := newFront(t, coord)
	local := newWorker(t, nil) // single-process reference

	req := serve.SweepRequest{
		Base:       tinyBase(),
		NodeCounts: []int{10, 14},
		Protocols:  []string{"gpsr", "agfw"},
		Repeats:    2,
	}
	distPts := runSweep(t, front.URL, req)
	localPts := runSweep(t, local.URL, req)

	if len(distPts) != 4 {
		t.Fatalf("distributed fold has %d points, want 4", len(distPts))
	}
	if d, l := pointsJSON(t, distPts), pointsJSON(t, localPts); !bytes.Equal(d, l) {
		t.Fatalf("distributed fold differs from single-process fold:\n dist: %s\nlocal: %s", d, l)
	}

	st := coord.Stats()
	if st.Assigned != 8 { // 2 node counts × 2 protocols × 2 repeats
		t.Errorf("cells assigned = %d, want 8", st.Assigned)
	}
	if st.Grids != 1 {
		t.Errorf("grids = %d, want 1", st.Grids)
	}

	// The coordinator's /metrics carries the fleet series alongside the
	// serve job series.
	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"dist_workers_healthy 3",
		"dist_workers_total 3",
		"dist_cells_assigned_total 8",
		"dist_cells_stolen_total",
		"dist_cells_duplicate_total",
		"dist_worker_inflight{worker=",
		"agrsimd_jobs_running", // serve series still present
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestWorkerDeathMidGrid kills one of two workers (connection-level,
// like kill -9) right after it serves its first submission; the sweep
// must still complete — lost cells reassigned to the survivor — and
// still fold identically to the single-process run.
func TestWorkerDeathMidGrid(t *testing.T) {
	var dead atomic.Bool
	var submits atomic.Int32
	wrap := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if dead.Load() {
				panic(http.ErrAbortHandler) // drop the connection mid-air
			}
			h.ServeHTTP(w, r)
			if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/sweeps") {
				if submits.Add(1) == 1 {
					dead.Store(true)
				}
			}
		})
	}
	victim := newWorker(t, wrap)
	survivor := newWorker(t, nil)
	coord := newCoord(t, []string{victim.URL, survivor.URL}, func(o *Options) {
		o.MaxInflight = 2
	})
	front := newFront(t, coord)
	local := newWorker(t, nil)

	req := serve.SweepRequest{
		Base:       tinyBase(),
		NodeCounts: []int{10, 12, 14},
		Protocols:  []string{"gpsr"},
		Repeats:    2,
	}
	distPts := runSweep(t, front.URL, req)
	localPts := runSweep(t, local.URL, req)

	if d, l := pointsJSON(t, distPts), pointsJSON(t, localPts); !bytes.Equal(d, l) {
		t.Fatalf("fold after worker death differs from single-process fold:\n dist: %s\nlocal: %s", d, l)
	}
	st := coord.Stats()
	if st.Stolen == 0 {
		t.Error("no cells were stolen despite a dead worker")
	}
	// Every one of the 6 cells was assigned once, plus one reassignment
	// per stolen cell — nothing finished was recomputed.
	if st.Assigned != 6+st.Stolen {
		t.Errorf("assigned = %d, want %d (6 cells + %d stolen)", st.Assigned, 6+st.Stolen, st.Stolen)
	}
	if coord.HealthyWorkers() != 1 {
		t.Errorf("healthy workers = %d, want 1 after the kill", coord.HealthyWorkers())
	}
}

// TestStragglerStealing points the coordinator at a black-hole worker
// (accepts jobs, never finishes them) next to a real one: the dynamic
// straggler deadline must reassign the stuck cells and complete the
// grid.
func TestStragglerStealing(t *testing.T) {
	blackhole := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/readyz" || r.URL.Path == "/healthz":
			w.WriteHeader(http.StatusOK)
		case r.URL.Path == "/metrics":
			io.WriteString(w, "agrsimd_queue_depth 0\nagrsimd_queue_capacity 16\n")
		case r.Method == http.MethodPost:
			json.NewEncoder(w).Encode(map[string]any{"created": true, "id": "stuck", "state": "queued"})
		default:
			json.NewEncoder(w).Encode(map[string]any{"id": "stuck", "state": "running"})
		}
	}))
	defer blackhole.Close()
	real := newWorker(t, nil)

	coord := newCoord(t, []string{blackhole.URL, real.URL}, func(o *Options) {
		o.StealAfter = 100 * time.Millisecond
		o.StealFactor = 1
		o.MaxInflight = 4
	})
	front := newFront(t, coord)
	local := newWorker(t, nil)

	req := serve.SweepRequest{
		Base:       tinyBase(),
		NodeCounts: []int{10, 14},
		Protocols:  []string{"gpsr"},
		Repeats:    2,
	}
	distPts := runSweep(t, front.URL, req)
	localPts := runSweep(t, local.URL, req)
	if d, l := pointsJSON(t, distPts), pointsJSON(t, localPts); !bytes.Equal(d, l) {
		t.Fatalf("fold with straggler stealing differs:\n dist: %s\nlocal: %s", d, l)
	}
	if st := coord.Stats(); st.Stolen == 0 {
		t.Error("no steals despite a black-hole worker")
	}
}

// hookFunc adapts a function to exp.Hook.
type hookFunc func(exp.Event)

func (f hookFunc) Emit(ev exp.Event) { f(ev) }

// TestCoordinatorWALResume cancels a journaled grid after its first
// folded cell, then finishes it with a fresh coordinator: the folded
// cell must come back from the journal (zero recomputation), the rest
// must be dispatched, and the final outcomes must match an unjournaled
// run exactly.
func TestCoordinatorWALResume(t *testing.T) {
	w := newWorker(t, nil)
	dir := t.TempDir()

	req := serve.SweepRequest{
		Base:       tinyBase(),
		NodeCounts: []int{10, 12, 14},
		Protocols:  []string{"gpsr"},
		Repeats:    1,
	}
	cells := core.SweepCells(req.Base, req.NodeCounts, []core.Protocol{core.ProtoGPSR}, 1)

	ref := newCoord(t, []string{w.URL}, nil)
	refOuts, err := ref.execute(context.Background(), req, cells, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Run 1: serial dispatch, cancel as soon as one cell folds.
	c1 := newCoord(t, []string{w.URL}, func(o *Options) {
		o.JournalDir = dir
		o.MaxInflight = 1
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := hookFunc(func(ev exp.Event) {
		if ev.Type == exp.EventCellFinished && ev.Err == "" {
			cancel()
		}
	})
	if _, err := c1.execute(ctx, req, cells, hook); err == nil {
		t.Fatal("canceled run reported success")
	}
	if c1.Stats().Assigned >= int64(len(cells)) {
		t.Fatalf("run 1 assigned all %d cells; cancellation came too late to exercise resume", len(cells))
	}

	// Run 2: a fresh coordinator (as after a crash) over the same
	// journal dir.
	c2 := newCoord(t, []string{w.URL}, func(o *Options) { o.JournalDir = dir })
	outs, err := c2.execute(context.Background(), req, cells, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Resumed == 0 {
		t.Fatal("nothing resumed from the journal")
	}
	if st.Assigned != int64(len(cells))-st.Resumed {
		t.Errorf("assigned = %d, want %d: resumed cells must not be re-dispatched",
			st.Assigned, int64(len(cells))-st.Resumed)
	}
	for i := range outs {
		if outs[i].Err != nil {
			t.Fatalf("cell %d failed: %v", i, outs[i].Err)
		}
		got, _ := json.Marshal(outs[i].Value)
		want, _ := json.Marshal(refOuts[i].Value)
		if !bytes.Equal(got, want) {
			t.Errorf("cell %d resumed value differs:\n got: %s\nwant: %s", i, got, want)
		}
	}
	// Clean completion retires the grid journal.
	if m, _ := filepath.Glob(filepath.Join(dir, gridWALDirName, "*.wal")); len(m) != 0 {
		t.Errorf("journal not retired after clean completion: %v", m)
	}
}

// TestCellRequestReproducesCell proves the seed-inversion round trip:
// for every cell a sweep expands to, the single-cell request the
// coordinator ships makes a worker re-derive a config with the
// identical content address (hence identical simulation and cache
// identity).
func TestCellRequestReproducesCell(t *testing.T) {
	base := tinyBase()
	base.Seed = 4242
	cells := core.SweepCells(base, []int{10, 14, 150},
		[]core.Protocol{core.ProtoGPSR, core.ProtoAGFW, core.ProtoAGFWNoAck}, 3)
	for _, cell := range cells {
		req := cellRequest(cell.Config)
		p, err := serve.ParseProtocol(req.Protocols[0])
		if err != nil {
			t.Fatalf("%s: %v", cell.Label, err)
		}
		expanded := core.SweepCells(req.Base, req.NodeCounts, []core.Protocol{p}, req.Repeats)
		if len(expanded) != 1 {
			t.Fatalf("%s: single-cell request expanded to %d cells", cell.Label, len(expanded))
		}
		want, err := exp.KeyOf(cell.Config)
		if err != nil {
			t.Fatal(err)
		}
		got, err := exp.KeyOf(expanded[0].Config)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: worker-side cell key %s != original %s (seed %d vs %d)",
				cell.Label, got, want, expanded[0].Config.Seed, cell.Config.Seed)
		}
	}
}

package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"anongeo/internal/serve"
)

// Client is the shared HTTP client for one agrsimd worker: every method
// speaks the serve REST API, and every mutating or idempotent-read call
// goes through one retry loop with jittered exponential backoff on
// transient failures (connection errors, 429, 500/502/503/504) that
// honors the server's Retry-After hint. It is the single place re-POST
// logic lives — the coordinator, health probes, and CLI clients all go
// through it instead of hand-rolling curl-style loops.
//
// All methods are safe for concurrent use.
type Client struct {
	// Base is the worker's base URL, e.g. "http://127.0.0.1:8081".
	Base string
	// HTTP is the underlying transport; nil means a client with a 10s
	// request timeout.
	HTTP *http.Client

	// Attempts bounds tries per call, first attempt included (<1 → 5).
	Attempts int
	// Backoff is the sleep before the second attempt, doubling per
	// retry up to MaxBackoff; each sleep is jittered to half-to-full of
	// its nominal value so a fleet of clients retrying the same worker
	// does not thundering-herd it. Defaults: 200ms base, 5s cap.
	Backoff    time.Duration
	MaxBackoff time.Duration

	// jitter scales a nominal sleep; tests pin it. nil means uniform in
	// [d/2, d).
	jitter func(d time.Duration) time.Duration

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewClient returns a client for the worker at base (trailing slashes
// trimmed) with default retry policy.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

// StatusError is a non-2xx API response after retries are exhausted (or
// immediately, for non-transient statuses). Code is the HTTP status;
// Msg the server's error envelope, when it sent one.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("http %d: %s", e.Code, e.Msg)
	}
	return fmt.Sprintf("http %d", e.Code)
}

// IsNotFound reports whether err is a 404 from a worker — an unknown
// job ID, e.g. after the worker lost unjournaled state in a restart.
func IsNotFound(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusNotFound
}

// SubmitResponse is the worker's answer to a sweep submission.
type SubmitResponse struct {
	// Created is false when the POST deduped to an existing job.
	Created bool `json:"created"`
	serve.JobStatus
}

// SubmitSweep submits a grid to the worker. Thanks to content-address
// job IDs a retried POST that actually landed the first time dedupes to
// the same job, so the retry loop is safe for submissions too.
func (c *Client) SubmitSweep(ctx context.Context, req serve.SweepRequest) (SubmitResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return SubmitResponse{}, fmt.Errorf("dist: encode request: %w", err)
	}
	var out SubmitResponse
	err = c.do(ctx, http.MethodPost, "/v1/sweeps", body, &out)
	return out, err
}

// Job fetches one job's status (and points, once done).
func (c *Client) Job(ctx context.Context, id string) (serve.JobStatus, error) {
	var out serve.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// CancelJob cancels a queued or running job; canceling a job that
// already finished (409) or vanished (404) is reported via StatusError.
func (c *Client) CancelJob(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Ready is a single-attempt readiness probe: nil means the worker
// answered 200 on /readyz. Probes must observe the worker as it is —
// retrying inside a probe would only delay marking it unhealthy.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Code: resp.StatusCode}
	}
	return nil
}

// Load is a worker's backpressure snapshot, scraped from its /metrics.
type Load struct {
	// QueueDepth and QueueCapacity are the worker's admission queue
	// state; depth == capacity means the next submission gets a 429.
	QueueDepth    int
	QueueCapacity int
	// Running is the worker's in-flight job gauge.
	Running int
}

// Free reports admission headroom: how many more jobs the worker's
// queue accepts right now.
func (l Load) Free() int { return l.QueueCapacity - l.QueueDepth }

// ScrapeLoad samples the worker's /metrics (single attempt, like Ready)
// and extracts the queue and inflight gauges the coordinator's
// admission-aware assignment runs on.
func (c *Client) ScrapeLoad(ctx context.Context) (Load, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return Load{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return Load{}, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return Load{}, &StatusError{Code: resp.StatusCode}
	}
	return parseLoad(resp.Body)
}

// parseLoad extracts the handful of gauges Load needs from Prometheus
// text exposition: bare "name value" lines, comments skipped.
func parseLoad(r io.Reader) (Load, error) {
	var l Load
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		switch name {
		case "agrsimd_queue_depth":
			l.QueueDepth = int(n)
		case "agrsimd_queue_capacity":
			l.QueueCapacity = int(n)
		case "agrsimd_jobs_running":
			l.Running = int(n)
		}
	}
	return l, sc.Err()
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTP
}

var defaultHTTP = &http.Client{Timeout: 10 * time.Second}

// transientStatus reports whether an HTTP status is worth retrying:
// explicit backpressure (429) and server-side or proxy-side transients.
func transientStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do issues one API call with the retry policy. body is re-sent from
// the same buffer on every attempt; out, when non-nil, receives the
// decoded 2xx response.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	attempts := c.Attempts
	if attempts < 1 {
		attempts = 5
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}

	var lastErr error
	for a := 1; ; a++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}

		var retryAfter time.Duration
		resp, err := c.http().Do(req)
		switch {
		case err != nil:
			// Transport-level failure (refused, reset, timeout): transient.
			lastErr = err
		default:
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			if resp.StatusCode < 300 {
				if out == nil {
					drainClose(resp.Body)
					return nil
				}
				err := json.NewDecoder(resp.Body).Decode(out)
				drainClose(resp.Body)
				if err != nil {
					return fmt.Errorf("dist: decode %s %s: %w", method, path, err)
				}
				return nil
			}
			var apiErr struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr)
			drainClose(resp.Body)
			lastErr = &StatusError{Code: resp.StatusCode, Msg: apiErr.Error}
			if !transientStatus(resp.StatusCode) {
				return lastErr
			}
		}

		if a >= attempts {
			return fmt.Errorf("dist: %s %s: giving up after %d attempts: %w", method, path, a, lastErr)
		}
		// Sleep the larger of our own backoff and the server's explicit
		// hint, jittered so a fleet's retries spread out.
		sleep := backoff
		if retryAfter > sleep {
			sleep = retryAfter
		}
		sleep = c.applyJitter(sleep)
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return fmt.Errorf("dist: %s %s: %w (last attempt: %v)", method, path, ctx.Err(), lastErr)
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// applyJitter maps a nominal sleep to a uniform draw from [d/2, d).
// Jitter only shapes wall-clock retry timing, never results, so an
// unseeded process-local RNG is fine.
func (c *Client) applyJitter(d time.Duration) time.Duration {
	if c.jitter != nil {
		return c.jitter(d)
	}
	if d <= 1 {
		return d
	}
	c.rngMu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	j := time.Duration(c.rng.Int63n(int64(d / 2)))
	c.rngMu.Unlock()
	return d/2 + j
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only
// form agrsimd emits); anything else means no hint.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// drainClose consumes a response body so the transport can reuse the
// connection, then closes it.
func drainClose(b io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(b, 1<<20))
	_ = b.Close()
}

package dist

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// recordingClient pins jitter to zero sleep while recording what each
// retry wanted to sleep, so backoff policy is observable without slow
// tests.
func recordingClient(base string, sleeps *[]time.Duration) *Client {
	c := NewClient(base)
	c.Backoff = time.Millisecond
	c.jitter = func(d time.Duration) time.Duration {
		*sleeps = append(*sleeps, d)
		return 0
	}
	return c
}

func TestClientRetriesTransientAndHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"id":"j1"}`))
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := recordingClient(ts.URL, &sleeps)
	st, err := c.Job(context.Background(), "j1")
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j1" {
		t.Fatalf("decoded job %q, want j1", st.ID)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 transient failures + success)", got)
	}
	if len(sleeps) != 2 {
		t.Fatalf("client slept %d times, want 2", len(sleeps))
	}
	for i, s := range sleeps {
		// Retry-After: 7 dominates the millisecond backoff — the server's
		// hint must reach the sleep.
		if s < 7*time.Second {
			t.Errorf("retry %d slept %v, want >= 7s from Retry-After", i+1, s)
		}
	}
}

func TestClientNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad grid"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := recordingClient(ts.URL, &sleeps)
	_, err := c.Job(context.Background(), "nope")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if !strings.Contains(se.Msg, "bad grid") {
		t.Errorf("error envelope not surfaced: %q", se.Msg)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried: %d calls", calls.Load())
	}
}

func TestClientGivesUpAfterAttempts(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	var sleeps []time.Duration
	c := recordingClient(ts.URL, &sleeps)
	c.Attempts = 3
	_, err := c.Job(context.Background(), "j")
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want giving-up error", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want exactly Attempts=3", calls.Load())
	}
}

func TestClientNotFound(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer ts.Close()
	_, err := NewClient(ts.URL).Job(context.Background(), "gone")
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want IsNotFound", err)
	}
}

func TestParseLoad(t *testing.T) {
	text := `# HELP agrsimd_queue_depth Jobs waiting.
# TYPE agrsimd_queue_depth gauge
agrsimd_queue_depth 3
agrsimd_queue_capacity 16
agrsimd_jobs_running 2
agrsimd_jobs_total{state="done"} 9
`
	l, err := parseLoad(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := Load{QueueDepth: 3, QueueCapacity: 16, Running: 2}
	if l != want {
		t.Fatalf("parseLoad = %+v, want %+v", l, want)
	}
	if l.Free() != 13 {
		t.Fatalf("Free() = %d, want 13", l.Free())
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"5", 5 * time.Second}, {" 2 ", 2 * time.Second},
		{"-1", 0}, {"Wed, 21 Oct 2015 07:28:00 GMT", 0},
	} {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

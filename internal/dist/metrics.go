package dist

import (
	"fmt"
	"io"
	"sync/atomic"
)

// coordMetrics are the coordinator's monotonic counters. Per-worker
// health and inflight are not counted here — they are read live off the
// pool at scrape time, so the gauges can never drift from the
// scheduler's actual view.
type coordMetrics struct {
	gridsExecuted  atomic.Int64
	cellsAssigned  atomic.Int64
	cellsStolen    atomic.Int64
	cellsDuplicate atomic.Int64
	cellsResumed   atomic.Int64
}

// WriteMetrics renders the coordinator's series in Prometheus text
// exposition, matching the worker daemon's hand-rolled writer; it plugs
// into serve.Options.ExtraMetrics so the coordinator's /metrics carries
// both the serve job metrics and the dist fleet metrics.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP dist_workers_total Configured sweep workers.\n# TYPE dist_workers_total gauge\ndist_workers_total %d\n",
		len(c.pool.workers))
	fmt.Fprintf(w, "# HELP dist_workers_healthy Workers passing health probes.\n# TYPE dist_workers_healthy gauge\ndist_workers_healthy %d\n",
		c.pool.healthyCount())
	counter("dist_grids_total", "Sweep grids executed by the coordinator.", c.met.gridsExecuted.Load())
	counter("dist_cells_assigned_total", "Cell assignments dispatched to workers (reassignments included).", c.met.cellsAssigned.Load())
	counter("dist_cells_stolen_total", "Cells reassigned by work-stealing (stragglers and lost workers).", c.met.cellsStolen.Load())
	counter("dist_cells_duplicate_total", "Duplicate cell completions discarded by content address.", c.met.cellsDuplicate.Load())
	counter("dist_cells_resumed_total", "Cells restored from the grid journal instead of recomputed.", c.met.cellsResumed.Load())

	fmt.Fprintf(w, "# HELP dist_worker_inflight Cells this coordinator has in flight per worker.\n# TYPE dist_worker_inflight gauge\n")
	for _, ws := range c.pool.workers {
		_, inflight, _ := ws.snapshot()
		fmt.Fprintf(w, "dist_worker_inflight{worker=%q} %d\n", ws.url, inflight)
	}
	fmt.Fprintf(w, "# HELP dist_worker_healthy Per-worker health (1 healthy, 0 not).\n# TYPE dist_worker_healthy gauge\n")
	for _, ws := range c.pool.workers {
		healthy, _, _ := ws.snapshot()
		v := 0
		if healthy {
			v = 1
		}
		fmt.Fprintf(w, "dist_worker_healthy{worker=%q} %d\n", ws.url, v)
	}
}

// Package dist is the distributed sweep coordinator: the third tier of
// the serving architecture (client → coordinator → worker fleet). A
// coordinator accepts the same sweep grids the single-process daemon
// does, enumerates their cells, shards the cells across N agrsimd
// workers over the existing REST API as single-cell jobs, and folds the
// returned results into exactly the points a single-process run would
// produce — bit-identical, because every cell's config (seed included)
// reaches the worker unchanged, core.Run is a pure function of its
// config, and results round-trip through JSON exactly.
//
// Scheduling is admission-aware and work-stealing:
//
//   - a background probe loop drives each worker's /readyz and /metrics
//     (queue depth and capacity, inflight jobs), and assignment only
//     targets healthy workers with admission headroom;
//   - a cell not completed within a dynamic deadline (a multiple of the
//     fleet's recent per-cell completion EWMA, floored by StealAfter) is
//     speculatively reassigned to another worker — first completion
//     wins, later duplicates are discarded by the cell's content
//     address;
//   - a cell lost to a dead worker (refused connection, failed job) is
//     reassigned immediately, up to a bounded number of attempts.
//
// Durability: with a journal directory configured, every assignment and
// every folded cell is journaled to a per-grid WAL built on
// internal/durable. A coordinator crash mid-grid resumes from the WAL —
// already-folded cells are restored, only the remainder is
// re-dispatched — and the serve job WAL above it re-admits the job
// itself, so the whole three-tier stack survives kill -9 at any layer.
//
// dist plugs into internal/serve through serve.Options.Executor, so the
// coordinator daemon exposes the identical HTTP API (submission,
// dedupe, events, metrics, job WAL) and existing clients work
// unchanged.
package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"anongeo/internal/core"
	"anongeo/internal/exp"
	"anongeo/internal/serve"
)

// Event types the coordinator adds to the exp vocabulary; they flow
// through the same job event stream as orchestrator events.
const (
	// EventCellStolen marks a straggler cell speculatively reassigned
	// (or a cell re-dispatched after losing its worker).
	EventCellStolen exp.EventType = "cell-stolen"
	// EventCellDuplicate marks a second completion of an already-folded
	// cell — the losing side of a steal race — discarded by content
	// address.
	EventCellDuplicate exp.EventType = "cell-duplicate"
)

// Options configures a Coordinator; zero values get defaults (see New).
type Options struct {
	// Workers are the backend daemons' base URLs. At least one is
	// required.
	Workers []string
	// NewClient, when non-nil, builds the per-worker client — the test
	// seam for retry policy and transports. Default: NewClient with the
	// package default policy.
	NewClient func(url string) *Client

	// MaxInflight caps the cells this coordinator keeps in flight per
	// worker (default 4). The worker-side admission queue is respected
	// on top of this via scraped queue capacity.
	MaxInflight int
	// ProbeInterval is the health/backpressure probe period (default 3s).
	ProbeInterval time.Duration
	// PollInterval is how often an assignment polls its worker job
	// (default 150ms).
	PollInterval time.Duration

	// StealAfter floors the straggler deadline: a cell's newest
	// assignment must be at least this old before it is speculatively
	// reassigned (default 30s).
	StealAfter time.Duration
	// StealFactor scales the fleet's per-cell completion EWMA into the
	// dynamic deadline, deadline = max(StealAfter, StealFactor × EWMA)
	// (default 4).
	StealFactor float64
	// MaxAttempts bounds assignments per cell, steals included; a cell
	// still failing after that many fails the grid like a failed
	// orchestrator cell (default max(3, len(Workers)+1)).
	MaxAttempts int

	// JournalDir, when non-empty, enables the per-grid fold WAL under
	// <JournalDir>/grids/ (see wal.go). Point it at the same directory
	// as the serve job WAL.
	JournalDir string
	// Logf receives coordinator log lines; default silent.
	Logf func(format string, args ...any)
}

// Coordinator shards sweep grids across a worker fleet. One Coordinator
// serves any number of concurrent grids (each execute call owns its
// state); Close stops the probe loop.
type Coordinator struct {
	opts Options
	pool *pool
	met  coordMetrics
}

// New validates opts, builds the fleet state, probes every worker once,
// and starts the background probe loop.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("dist: no workers configured")
	}
	if opts.NewClient == nil {
		opts.NewClient = NewClient
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 4
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 3 * time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 150 * time.Millisecond
	}
	if opts.StealAfter <= 0 {
		opts.StealAfter = 30 * time.Second
	}
	if opts.StealFactor <= 0 {
		opts.StealFactor = 4
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = len(opts.Workers) + 1
		if opts.MaxAttempts < 3 {
			opts.MaxAttempts = 3
		}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		opts: opts,
		pool: newPool(opts.Workers, opts.NewClient, opts.ProbeInterval),
	}
	c.pool.start()
	return c, nil
}

// Close stops the probe loop. In-flight execute calls keep running on
// their last-known fleet state.
func (c *Coordinator) Close() { c.pool.close() }

// Executor adapts the coordinator to serve.Options.Executor, which is
// how cmd/agrsimd -workers wires it under the daemon's HTTP surface.
func (c *Coordinator) Executor() serve.Executor { return c.execute }

// HealthyWorkers reports how many workers currently pass probes.
func (c *Coordinator) HealthyWorkers() int { return c.pool.healthyCount() }

// cellRequest builds the single-cell sweep request that makes a worker
// reproduce exactly cfg. The worker re-derives the cell seed as
// CellSeed(base.Seed, nodes, 0) = base.Seed + 1000·nodes, so shipping
// base.Seed = cfg.Seed − 1000·cfg.Nodes round-trips the original seed —
// and with Nodes and Protocol re-applied to the same values, the
// worker's expanded cell config is bit-for-bit cfg.
func cellRequest(cfg core.Config) serve.SweepRequest {
	base := cfg
	base.Seed = cfg.Seed - 1000*int64(cfg.Nodes)
	return serve.SweepRequest{
		Base:       base,
		NodeCounts: []int{cfg.Nodes},
		Protocols:  []string{serve.ProtocolName(cfg.Protocol)},
		Repeats:    1,
	}
}

// assignment is one live (cell, worker) dispatch.
type assignment struct {
	worker  *workerState
	started time.Time
	cancel  context.CancelFunc
}

// asgResult is what a dispatch goroutine reports back to the grid loop.
type asgResult struct {
	idx  int
	asg  *assignment
	res  core.Result
	err  error
	wall time.Duration
	// workerDown marks transport-level failures (vs a job that ran and
	// failed), so the loop can distinguish a sick worker from a sick
	// cell.
	workerDown bool
}

// execute runs one grid across the fleet: enumerate, resume from the
// WAL, dispatch/steal until every cell folds, return outcomes in input
// order. It mirrors exp.Orchestrator.ExecuteContext semantics: partial
// failures fail only their cells (joined error alongside full
// outcomes), cancellation abandons incomplete cells with ctx's error.
func (c *Coordinator) execute(ctx context.Context, req serve.SweepRequest, cells []exp.Cell[core.Config], hook exp.Hook) ([]exp.Outcome[core.Result], error) {
	n := len(cells)
	outs := make([]exp.Outcome[core.Result], n)

	// Content addresses: the cell's cache key is its global identity —
	// the same key a worker's cache files the result under, and the
	// dedupe handle for duplicate completions.
	keys := make([]string, n)
	indicesByKey := make(map[string][]int, n)
	for i, cell := range cells {
		k, err := exp.KeyOf(cell.Config)
		if err != nil {
			return nil, fmt.Errorf("dist: cell %q not addressable: %w", cell.Label, err)
		}
		keys[i] = k
		indicesByKey[k] = append(indicesByKey[k], i)
		outs[i] = exp.Outcome[core.Result]{Label: cell.Label, Index: i}
	}
	gridID, err := exp.KeyOf(req)
	if err != nil {
		return nil, fmt.Errorf("dist: grid not addressable: %w", err)
	}

	// Grid state, owned by this goroutine: dispatch goroutines only
	// touch it through the results channel.
	completed := make([]bool, n)
	attempts := make([]int, n)
	live := make(map[int][]*assignment)
	pendingSet := make(map[int]bool)
	var pending []int
	done, cached, failed := 0, 0, 0
	var ewma time.Duration

	emit := func(ev exp.Event) {
		if hook == nil {
			return
		}
		ev.Done, ev.CachedCells, ev.FailedCells = done, cached, failed
		hook.Emit(ev)
	}

	// Resume: restore every cell a previous coordinator run already
	// folded. The WAL validated each record's key against this grid, so
	// restored results are exactly what the original fold held.
	var wal *gridWAL
	if c.opts.JournalDir != "" {
		var resumed map[int]core.Result
		wal, resumed, err = openGridWAL(c.opts.JournalDir, gridID, keys, c.opts.Logf)
		if err != nil {
			return nil, err
		}
		for i, r := range resumed {
			outs[i].Value = r
			outs[i].Cached = true
			completed[i] = true
			done++
			cached++
			c.met.cellsResumed.Add(1)
		}
		if len(resumed) > 0 {
			c.opts.Logf("dist: grid %s resumed %d/%d cells from journal", gridID[:12], len(resumed), n)
		}
	}
	c.met.gridsExecuted.Add(1)
	emit(exp.Event{Type: exp.EventRunStarted, Total: n, Workers: c.pool.healthyCount()})
	for i := range cells {
		if completed[i] {
			emit(exp.Event{Type: exp.EventCellCached, Label: cells[i].Label, Index: i, Total: n, Key: keys[i]})
		}
	}

	// Queue each key's primary index; secondary indices (identical
	// configs, if a grid ever repeats one) fill on the primary's
	// completion.
	for i := range cells {
		if completed[i] || indicesByKey[keys[i]][0] != i {
			continue
		}
		pending = append(pending, i)
		pendingSet[i] = true
	}

	gridCtx, cancelGrid := context.WithCancel(ctx)
	defer cancelGrid()
	results := make(chan asgResult)
	start := time.Now()

	dispatch := func() {
		var rest []int
		for _, idx := range pending {
			delete(pendingSet, idx)
			if completed[idx] {
				continue
			}
			// Never double-assign a cell to a worker already running it:
			// the worker would just dedupe the POST onto the same job.
			except := make(map[*workerState]bool, len(live[idx]))
			for _, a := range live[idx] {
				except[a.worker] = true
			}
			w := c.pool.pick(c.opts.MaxInflight, except)
			if w == nil {
				rest = append(rest, idx)
				pendingSet[idx] = true
				continue
			}
			attempts[idx]++
			w.mu.Lock()
			w.inflight++
			w.mu.Unlock()
			c.met.cellsAssigned.Add(1)
			wal.assign(idx, keys[idx], w.url)
			actx, acancel := context.WithCancel(gridCtx)
			a := &assignment{worker: w, started: time.Now(), cancel: acancel}
			live[idx] = append(live[idx], a)
			go c.runAssignment(actx, w, a, idx, cells[idx].Config, results)
		}
		pending = rest
	}

	// finishCell folds one completed result into every index sharing its
	// content address, journals it, and cancels that cell's other
	// in-flight attempts (first completion won).
	finishCell := func(idx int, res core.Result, wall time.Duration) {
		key := keys[idx]
		for _, j := range indicesByKey[key] {
			if completed[j] {
				continue
			}
			outs[j].Value = res
			outs[j].Err = nil
			outs[j].Attempts = attempts[idx]
			outs[j].Wall = wall
			completed[j] = true
			done++
			wal.done(j, key, res)
			emit(exp.Event{Type: exp.EventCellFinished, Label: cells[j].Label, Index: j, Total: n,
				Attempt: attempts[idx], Wall: wall})
		}
		for _, a := range live[idx] {
			a.cancel()
		}
		if ewma == 0 {
			ewma = wall
		} else {
			ewma = (ewma*7 + wall) / 8
		}
	}

	// stealScan requeues stragglers: a cell whose newest attempt is
	// older than the dynamic deadline, when another worker could take
	// it.
	stealScan := func() {
		deadline := c.opts.StealAfter
		if ewma > 0 {
			if d := time.Duration(c.opts.StealFactor * float64(ewma)); d > deadline {
				deadline = d
			}
		}
		now := time.Now()
		for idx, asgs := range live {
			if completed[idx] || pendingSet[idx] || len(asgs) == 0 || attempts[idx] >= c.opts.MaxAttempts {
				continue
			}
			stale := true
			except := make(map[*workerState]bool, len(asgs))
			for _, a := range asgs {
				if now.Sub(a.started) < deadline {
					stale = false
					break
				}
				except[a.worker] = true
			}
			if !stale || c.pool.pick(c.opts.MaxInflight, except) == nil {
				continue
			}
			pending = append(pending, idx)
			pendingSet[idx] = true
			c.met.cellsStolen.Add(1)
			c.opts.Logf("dist: stealing cell %d (%s): no completion in %v", idx, cells[idx].Label, deadline.Round(time.Millisecond))
			emit(exp.Event{Type: EventCellStolen, Label: cells[idx].Label, Index: idx, Total: n,
				Attempt: attempts[idx], Err: fmt.Sprintf("straggler: no completion within %v", deadline.Round(time.Millisecond))})
		}
	}

	ticker := time.NewTicker(c.stealTick())
	defer ticker.Stop()
	for done < n && ctx.Err() == nil {
		dispatch()
		select {
		case r := <-results:
			live[r.idx] = removeAssignment(live[r.idx], r.asg)
			switch {
			case r.err == nil && completed[r.idx]:
				// The losing side of a steal race: a full result for a
				// cell another worker already folded.
				c.met.cellsDuplicate.Add(1)
				emit(exp.Event{Type: EventCellDuplicate, Label: cells[r.idx].Label, Index: r.idx, Total: n, Key: keys[r.idx]})
			case r.err == nil:
				finishCell(r.idx, r.res, r.wall)
			case gridCtx.Err() != nil || errors.Is(r.err, context.Canceled):
				// Canceled straggler or grid teardown: not a failure.
			case completed[r.idx]:
				// A failed attempt for an already-folded cell: ignore.
			case attempts[r.idx] >= c.opts.MaxAttempts:
				outs[r.idx].Err = r.err
				outs[r.idx].Attempts = attempts[r.idx]
				completed[r.idx] = true
				done++
				failed++
				emit(exp.Event{Type: exp.EventCellFinished, Label: cells[r.idx].Label, Index: r.idx, Total: n,
					Attempt: attempts[r.idx], Wall: r.wall, Err: r.err.Error()})
			default:
				// Lost attempt (dead worker, failed worker job): reassign.
				if !pendingSet[r.idx] {
					pending = append(pending, r.idx)
					pendingSet[r.idx] = true
				}
				c.met.cellsStolen.Add(1)
				c.opts.Logf("dist: reassigning cell %d (%s) after %v", r.idx, cells[r.idx].Label, r.err)
				emit(exp.Event{Type: EventCellStolen, Label: cells[r.idx].Label, Index: r.idx, Total: n,
					Attempt: attempts[r.idx], Err: r.err.Error()})
			}
		case <-ticker.C:
			stealScan()
		case <-ctx.Done():
		}
	}
	cancelGrid()

	if err := ctx.Err(); err != nil {
		for i := range cells {
			if completed[i] {
				continue
			}
			outs[i].Err = err
			outs[i].Attempts = attempts[i]
			failed++
			emit(exp.Event{Type: exp.EventCellCanceled, Label: cells[i].Label, Index: i, Total: n, Err: err.Error()})
		}
	}

	var errs []error
	for _, o := range outs {
		if o.Err != nil {
			errs = append(errs, fmt.Errorf("cell %q: %w", o.Label, o.Err))
		}
	}
	emit(exp.Event{Type: exp.EventRunFinished, Total: n, Wall: time.Since(start)})
	joined := errors.Join(errs...)
	if joined == nil {
		// Clean completion: the serve job WAL's done record now carries
		// the folded points, so the per-cell journal retires.
		wal.retire()
	} else {
		wal.close()
	}
	return outs, joined
}

// stealTick is the grid loop's housekeeping period: frequent enough to
// steal promptly at test-scale deadlines, cheap at production ones.
func (c *Coordinator) stealTick() time.Duration {
	tick := c.opts.StealAfter / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	return tick
}

// runAssignment drives one (cell, worker) dispatch: submit the
// single-cell job, poll until terminal, report back. The worker's
// content-address dedupe makes the POST idempotent, so client retries
// inside SubmitSweep are safe.
func (c *Coordinator) runAssignment(ctx context.Context, w *workerState, a *assignment, idx int, cfg core.Config, results chan<- asgResult) {
	defer func() {
		w.mu.Lock()
		w.inflight--
		w.mu.Unlock()
	}()
	report := func(r asgResult) {
		r.idx, r.asg = idx, a
		r.wall = time.Since(a.started)
		select {
		case results <- r:
		case <-ctx.Done():
			// This attempt was superseded (steal race lost) or the grid is
			// tearing down. Mid-grid the loop still drains, so give the
			// report — e.g. a duplicate completion worth counting — a short
			// window before dropping it.
			select {
			case results <- r:
			case <-time.After(50 * time.Millisecond):
			}
		}
	}

	sub, err := w.client.SubmitSweep(ctx, cellRequest(cfg))
	if err != nil {
		w.markFailure()
		report(asgResult{err: fmt.Errorf("submit to %s: %w", w.url, err), workerDown: true})
		return
	}
	t := time.NewTicker(c.opts.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			report(asgResult{err: ctx.Err()})
			return
		case <-t.C:
		}
		st, err := w.client.Job(ctx, sub.ID)
		if err != nil {
			if IsNotFound(err) {
				// The worker restarted without a journal and forgot the
				// job: a lost attempt, not a dead worker.
				report(asgResult{err: fmt.Errorf("worker %s lost job %s", w.url, sub.ID)})
				return
			}
			w.markFailure()
			report(asgResult{err: fmt.Errorf("poll %s: %w", w.url, err), workerDown: true})
			return
		}
		switch st.State {
		case serve.JobDone:
			if len(st.Points) != 1 {
				report(asgResult{err: fmt.Errorf("worker %s returned %d points for a single-cell job", w.url, len(st.Points))})
				return
			}
			report(asgResult{res: st.Points[0].Result})
			return
		case serve.JobFailed, serve.JobCanceled:
			report(asgResult{err: fmt.Errorf("worker %s job %s: %s", w.url, st.State, st.Error)})
			return
		}
	}
}

// removeAssignment drops a from list, preserving order.
func removeAssignment(list []*assignment, a *assignment) []*assignment {
	for i, x := range list {
		if x == a {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Stats is a snapshot of the coordinator's counters, for tests and
// logs; the /metrics rendering is WriteMetrics.
type Stats struct {
	Grids      int64
	Assigned   int64
	Stolen     int64
	Duplicates int64
	Resumed    int64
}

// Stats samples the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Grids:      c.met.gridsExecuted.Load(),
		Assigned:   c.met.cellsAssigned.Load(),
		Stolen:     c.met.cellsStolen.Load(),
		Duplicates: c.met.cellsDuplicate.Load(),
		Resumed:    c.met.cellsResumed.Load(),
	}
}

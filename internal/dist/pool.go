package dist

import (
	"context"
	"sync"
	"time"
)

// workerState is the coordinator's view of one backend daemon: its
// client, the latest health/backpressure probe, and how many cells the
// coordinator itself has in flight there. The scraped queue numbers are
// a staleness-tolerant hint; the coordinator's own inflight counter is
// exact, and assignment uses both.
type workerState struct {
	url    string
	client *Client

	mu       sync.Mutex
	healthy  bool
	load     Load
	inflight int // cells this coordinator currently has assigned here
	failures int // consecutive dispatch/probe failures
	probed   time.Time
}

// snapshot reads the worker's state consistently, for metrics and logs.
func (w *workerState) snapshot() (healthy bool, inflight int, load Load) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy, w.inflight, w.load
}

// markFailure records a dispatch failure and flips the worker unhealthy
// immediately — a refused connection should divert traffic now, not at
// the next probe tick. The probe loop revives it once readyz answers.
func (w *workerState) markFailure() {
	w.mu.Lock()
	w.failures++
	w.healthy = false
	w.mu.Unlock()
}

// pool is the fleet: per-worker state plus a background probe loop
// driving each worker's readyz and /metrics.
type pool struct {
	workers       []*workerState
	probeInterval time.Duration
	probeTimeout  time.Duration

	stop chan struct{}
	wg   sync.WaitGroup
}

func newPool(urls []string, mkClient func(url string) *Client, probeInterval time.Duration) *pool {
	p := &pool{
		probeInterval: probeInterval,
		probeTimeout:  2 * time.Second,
		stop:          make(chan struct{}),
	}
	for _, u := range urls {
		p.workers = append(p.workers, &workerState{url: u, client: mkClient(u)})
	}
	return p
}

// start probes the whole fleet once synchronously — so the first
// assignment pass already sees real health — then keeps probing in the
// background until close.
func (p *pool) start() {
	p.probeAll()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.probeInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.probeAll()
			case <-p.stop:
				return
			}
		}
	}()
}

func (p *pool) close() {
	close(p.stop)
	p.wg.Wait()
}

// probeAll refreshes every worker concurrently: readyz decides healthy,
// /metrics refreshes the backpressure hint. A worker whose readyz fails
// (down, draining, unreachable) takes no new assignments until a later
// probe succeeds.
func (p *pool) probeAll() {
	var wg sync.WaitGroup
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), p.probeTimeout)
			defer cancel()
			err := w.client.Ready(ctx)
			var load Load
			if err == nil {
				load, _ = w.client.ScrapeLoad(ctx) // best-effort; zero Load means no hint
			}
			w.mu.Lock()
			w.probed = time.Now()
			if err != nil {
				w.healthy = false
				w.failures++
			} else {
				w.healthy = true
				w.failures = 0
				w.load = load
			}
			w.mu.Unlock()
		}(w)
	}
	wg.Wait()
}

// healthyCount reports how many workers currently pass probes.
func (p *pool) healthyCount() int {
	n := 0
	for _, w := range p.workers {
		if h, _, _ := w.snapshot(); h {
			n++
		}
	}
	return n
}

// pick chooses the least-loaded available worker: healthy, below the
// coordinator's per-worker inflight cap, with admission headroom at the
// worker's own queue (its scraped capacity minus depth, discounted by
// what this coordinator already has in flight there), excluding any
// worker in except. Returns nil when no worker qualifies.
func (p *pool) pick(maxInflight int, except map[*workerState]bool) *workerState {
	var best *workerState
	bestInflight := 0
	for _, w := range p.workers {
		if except[w] {
			continue
		}
		w.mu.Lock()
		ok := w.healthy && w.inflight < maxInflight
		if ok && w.load.QueueCapacity > 0 {
			// Admission-aware: beyond the scraped queue headroom a POST
			// would bounce with 429 anyway; don't earn the rejection.
			ok = w.inflight < w.load.QueueCapacity
		}
		inflight := w.inflight
		w.mu.Unlock()
		if !ok {
			continue
		}
		if best == nil || inflight < bestInflight {
			best, bestInflight = w, inflight
		}
	}
	return best
}

package anoncrypto

import (
	"crypto/rsa"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"anongeo/internal/geo"
)

// Key generation dominates test time, so all tests share one lazily
// built pool of keypairs and certificates.
var (
	poolOnce  sync.Once
	poolKeys  []*KeyPair
	poolCerts []*Cert
	poolCA    *CA
)

func fixtures(t testing.TB) ([]*KeyPair, []*Cert, *CA) {
	t.Helper()
	poolOnce.Do(func() {
		ca, err := NewCA(1024)
		if err != nil {
			t.Fatalf("NewCA: %v", err)
		}
		poolCA = ca
		for i := 0; i < 8; i++ {
			kp, err := GenerateKeyPair(Identity(rune('A'+i)), DefaultKeyBits)
			if err != nil {
				t.Fatalf("GenerateKeyPair: %v", err)
			}
			cert, err := ca.Issue(kp)
			if err != nil {
				t.Fatalf("Issue: %v", err)
			}
			poolKeys = append(poolKeys, kp)
			poolCerts = append(poolCerts, cert)
		}
	})
	return poolKeys, poolCerts, poolCA
}

func ringOf(keys []*KeyPair, idx ...int) []*rsa.PublicKey {
	ring := make([]*rsa.PublicKey, len(idx))
	for i, j := range idx {
		ring[i] = keys[j].Public()
	}
	return ring
}

func TestGenerateKeyPairValidation(t *testing.T) {
	if _, err := GenerateKeyPair("x", 256); err == nil {
		t.Fatal("expected error for 256-bit key")
	}
}

func TestCertIssueAndVerify(t *testing.T) {
	_, certs, ca := fixtures(t)
	for _, c := range certs {
		if err := c.Verify(ca.PublicKey()); err != nil {
			t.Fatalf("valid cert rejected: %v", err)
		}
	}
}

func TestCertSerialsUnique(t *testing.T) {
	_, certs, _ := fixtures(t)
	seen := map[uint64]bool{}
	for _, c := range certs {
		if seen[c.Serial] {
			t.Fatalf("duplicate serial %d", c.Serial)
		}
		seen[c.Serial] = true
	}
}

func TestCertTamperDetected(t *testing.T) {
	_, certs, ca := fixtures(t)
	tampered := certs[0].Clone()
	tampered.Subject = "mallory"
	if err := tampered.Verify(ca.PublicKey()); err == nil {
		t.Fatal("subject tampering not detected")
	}
	tampered2 := certs[0].Clone()
	tampered2.PublicKey = certs[1].PublicKey
	if err := tampered2.Verify(ca.PublicKey()); err == nil {
		t.Fatal("key substitution not detected")
	}
	tampered3 := certs[0].Clone()
	tampered3.Signature[0] ^= 1
	if err := tampered3.Verify(ca.PublicKey()); err == nil {
		t.Fatal("signature corruption not detected")
	}
}

func TestCertWrongCARejected(t *testing.T) {
	_, certs, _ := fixtures(t)
	otherCA, err := NewCA(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := certs[0].Verify(otherCA.PublicKey()); err == nil {
		t.Fatal("cert accepted under wrong CA key")
	}
}

func TestCertWireSizePositive(t *testing.T) {
	_, certs, _ := fixtures(t)
	if s := certs[0].WireSize(); s < 64 {
		t.Fatalf("WireSize = %d, implausibly small", s)
	}
}

func TestRingSignVerifyAllSignerPositions(t *testing.T) {
	keys, _, _ := fixtures(t)
	msg := []byte("HELLO n loc ts")
	ring := ringOf(keys, 0, 1, 2, 3)
	for s := 0; s < 4; s++ {
		sig, err := RingSign(msg, ring, s, keys[s].Private)
		if err != nil {
			t.Fatalf("RingSign signer %d: %v", s, err)
		}
		if !RingVerify(msg, ring, sig) {
			t.Fatalf("valid signature by member %d rejected", s)
		}
	}
}

func TestRingSignRejectsTamperedMessage(t *testing.T) {
	keys, _, _ := fixtures(t)
	ring := ringOf(keys, 0, 1, 2)
	sig, err := RingSign([]byte("original"), ring, 1, keys[1].Private)
	if err != nil {
		t.Fatal(err)
	}
	if RingVerify([]byte("forged"), ring, sig) {
		t.Fatal("tampered message verified")
	}
}

func TestRingSignRejectsDifferentRing(t *testing.T) {
	keys, _, _ := fixtures(t)
	msg := []byte("msg")
	ring := ringOf(keys, 0, 1, 2)
	sig, err := RingSign(msg, ring, 0, keys[0].Private)
	if err != nil {
		t.Fatal(err)
	}
	other := ringOf(keys, 0, 1, 3)
	if RingVerify(msg, other, sig) {
		t.Fatal("signature verified under a different ring")
	}
	reordered := ringOf(keys, 1, 0, 2)
	if RingVerify(msg, reordered, sig) {
		t.Fatal("signature verified under reordered ring")
	}
}

func TestRingSignRejectsTamperedSignature(t *testing.T) {
	keys, _, _ := fixtures(t)
	msg := []byte("msg")
	ring := ringOf(keys, 0, 1)
	sig, err := RingSign(msg, ring, 0, keys[0].Private)
	if err != nil {
		t.Fatal(err)
	}
	sig.V[0] ^= 1
	if RingVerify(msg, ring, sig) {
		t.Fatal("glue tampering verified")
	}
	sig.V[0] ^= 1
	sig.Xs[1] = new(big.Int).Add(sig.Xs[1], big.NewInt(1))
	if RingVerify(msg, ring, sig) {
		t.Fatal("x tampering verified")
	}
}

func TestRingSignErrors(t *testing.T) {
	keys, _, _ := fixtures(t)
	msg := []byte("m")
	if _, err := RingSign(msg, ringOf(keys, 0), 0, keys[0].Private); err == nil {
		t.Fatal("singleton ring accepted")
	}
	ring := ringOf(keys, 0, 1)
	if _, err := RingSign(msg, ring, 5, keys[0].Private); err == nil {
		t.Fatal("out-of-range signer accepted")
	}
	if _, err := RingSign(msg, ring, 0, keys[1].Private); err == nil {
		t.Fatal("mismatched private key accepted")
	}
}

func TestRingVerifyRejectsMalformed(t *testing.T) {
	keys, _, _ := fixtures(t)
	ring := ringOf(keys, 0, 1, 2)
	if RingVerify([]byte("m"), ring, nil) {
		t.Fatal("nil signature verified")
	}
	sig, err := RingSign([]byte("m"), ring, 0, keys[0].Private)
	if err != nil {
		t.Fatal(err)
	}
	short := &RingSignature{Bits: sig.Bits, V: sig.V, Xs: sig.Xs[:2]}
	if RingVerify([]byte("m"), ring, short) {
		t.Fatal("truncated signature verified")
	}
	sig.Xs[0] = nil
	if RingVerify([]byte("m"), ring, sig) {
		t.Fatal("nil element verified")
	}
}

func TestRingSizeScaling(t *testing.T) {
	keys, _, _ := fixtures(t)
	msg := []byte("scaling")
	prev := 0
	for _, k := range []int{2, 4, 8} {
		idx := make([]int, k)
		for i := range idx {
			idx[i] = i
		}
		ring := ringOf(keys, idx...)
		sig, err := RingSign(msg, ring, 0, keys[0].Private)
		if err != nil {
			t.Fatal(err)
		}
		if !RingVerify(msg, ring, sig) {
			t.Fatalf("k=%d signature rejected", k)
		}
		if sig.WireSize() <= prev {
			t.Fatalf("WireSize did not grow with ring size: %d then %d", prev, sig.WireSize())
		}
		prev = sig.WireSize()
	}
}

func TestTrapdoorRoundTrip(t *testing.T) {
	keys, _, _ := fixtures(t)
	payload := TrapdoorPayload{Src: "A", SrcLoc: geo.Pt(123.5, 45.25), Timestamp: 987654321}
	td, err := MakeTrapdoor(keys[1].Public(), payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenTrapdoor(keys[1].Private, td)
	if err != nil {
		t.Fatalf("destination could not open trapdoor: %v", err)
	}
	if got.Src != "A" || got.Timestamp != 987654321 {
		t.Fatalf("payload = %+v", got)
	}
	if got.SrcLoc.Dist(payload.SrcLoc) > 0.01 {
		t.Fatalf("location drift: %v vs %v", got.SrcLoc, payload.SrcLoc)
	}
}

func TestTrapdoorOnlyDestinationOpens(t *testing.T) {
	keys, _, _ := fixtures(t)
	td, err := MakeTrapdoor(keys[2].Public(), TrapdoorPayload{Src: "B"})
	if err != nil {
		t.Fatal(err)
	}
	for i, kp := range keys {
		_, err := OpenTrapdoor(kp.Private, td)
		if i == 2 && err != nil {
			t.Fatalf("destination failed to open: %v", err)
		}
		if i != 2 && err == nil {
			t.Fatalf("non-destination %d opened the trapdoor", i)
		}
	}
}

func TestTrapdoorSizeMatchesPaper(t *testing.T) {
	keys, _, _ := fixtures(t)
	td, err := MakeTrapdoor(keys[0].Public(), TrapdoorPayload{Src: "node-007", SrcLoc: geo.Pt(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	// §5.1: "the size of trapdoor does not exceed 64-byte since it is
	// obtained from the RSA encryption with a 512-bit public key."
	if len(td) != 64 {
		t.Fatalf("trapdoor = %d bytes, want 64 with RSA-512", len(td))
	}
}

func TestTrapdoorIdentityTooLong(t *testing.T) {
	keys, _, _ := fixtures(t)
	long := Identity(make([]byte, MaxTrapdoorIdentity+1))
	if _, err := MakeTrapdoor(keys[0].Public(), TrapdoorPayload{Src: long}); err == nil {
		t.Fatal("oversized identity accepted")
	}
}

func TestTrapdoorGarbageRejected(t *testing.T) {
	keys, _, _ := fixtures(t)
	if _, err := OpenTrapdoor(keys[0].Private, Trapdoor(make([]byte, 64))); err == nil {
		t.Fatal("garbage trapdoor opened")
	}
}

func TestPseudonymProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[Pseudonym]bool{}
	for i := 0; i < 1000; i++ {
		p := NewPseudonym(rng, "node-1")
		if p.IsLastHop() {
			t.Fatal("generated the reserved zero pseudonym")
		}
		if seen[p] {
			t.Fatalf("pseudonym collision after %d draws", i)
		}
		seen[p] = true
	}
}

func TestPseudonymDeterministicPerStream(t *testing.T) {
	a := NewPseudonym(rand.New(rand.NewSource(7)), "n")
	b := NewPseudonym(rand.New(rand.NewSource(7)), "n")
	if a != b {
		t.Fatal("same stream and identity gave different pseudonyms")
	}
	c := NewPseudonym(rand.New(rand.NewSource(7)), "other")
	if a == c {
		t.Fatal("different identities gave same pseudonym for same pr")
	}
}

func TestPseudonymLastHopMarker(t *testing.T) {
	if !LastHop.IsLastHop() {
		t.Fatal("LastHop.IsLastHop() = false")
	}
	if LastHop.String() != "000000000000" {
		t.Fatalf("LastHop.String() = %q", LastHop.String())
	}
}

// Benchmarks backing experiment A1 (ring size vs crypto cost).

func benchRing(b *testing.B, k int, verify bool) {
	keys, _, _ := fixtures(b)
	if k > len(keys) {
		b.Skipf("only %d fixture keys", len(keys))
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	ring := ringOf(keys, idx...)
	msg := []byte("HELLO pseudonym loc ts")
	sig, err := RingSign(msg, ring, 0, keys[0].Private)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(sig.WireSize()), "sig-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if verify {
			if !RingVerify(msg, ring, sig) {
				b.Fatal("verify failed")
			}
		} else {
			if _, err := RingSign(msg, ring, 0, keys[0].Private); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRingSignK2(b *testing.B)   { benchRing(b, 2, false) }
func BenchmarkRingSignK4(b *testing.B)   { benchRing(b, 4, false) }
func BenchmarkRingSignK8(b *testing.B)   { benchRing(b, 8, false) }
func BenchmarkRingVerifyK2(b *testing.B) { benchRing(b, 2, true) }
func BenchmarkRingVerifyK4(b *testing.B) { benchRing(b, 4, true) }
func BenchmarkRingVerifyK8(b *testing.B) { benchRing(b, 8, true) }

func BenchmarkTrapdoorMake(b *testing.B) {
	keys, _, _ := fixtures(b)
	p := TrapdoorPayload{Src: "A", SrcLoc: geo.Pt(1, 2), Timestamp: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MakeTrapdoor(keys[0].Public(), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrapdoorOpen(b *testing.B) {
	keys, _, _ := fixtures(b)
	td, err := MakeTrapdoor(keys[0].Public(), TrapdoorPayload{Src: "A"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenTrapdoor(keys[0].Private, td); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrapdoorOpenWrongKey(b *testing.B) {
	keys, _, _ := fixtures(b)
	td, err := MakeTrapdoor(keys[0].Public(), TrapdoorPayload{Src: "A"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenTrapdoor(keys[1].Private, td); err == nil {
			b.Fatal("wrong key opened trapdoor")
		}
	}
}

package anoncrypto

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Pseudonym is the per-hello random name n from §3.1: the size of a MAC
// address (6 bytes), generated as n = hash(pr, id) over a fresh
// pseudorandom value and the node's identity so collisions in a
// neighborhood are unlikely while nothing about id is recoverable.
//
// The zero value is reserved: the paper uses n = 0 in a data header to
// mark "the last forwarding attempt", telling every receiver to try the
// trapdoor.
type Pseudonym [6]byte

// LastHop is the reserved n = 0 pseudonym of the last forwarding attempt.
var LastHop Pseudonym

// IsLastHop reports whether p is the reserved broadcast marker.
func (p Pseudonym) IsLastHop() bool { return p == LastHop }

// String formats the pseudonym in hex.
func (p Pseudonym) String() string {
	return fmt.Sprintf("%02x%02x%02x%02x%02x%02x", p[0], p[1], p[2], p[3], p[4], p[5])
}

// NewPseudonym derives a fresh pseudonym from the node's deterministic
// random stream and its identity: n = SHA-256(pr ‖ id) truncated to six
// bytes. The reserved zero value is never returned.
func NewPseudonym(rng *rand.Rand, id Identity) Pseudonym {
	for {
		var pr [8]byte
		binary.BigEndian.PutUint64(pr[:], rng.Uint64())
		h := sha256.New()
		h.Write(pr[:])
		h.Write([]byte(id))
		var p Pseudonym
		copy(p[:], h.Sum(nil))
		if !p.IsLastHop() {
			return p
		}
	}
}

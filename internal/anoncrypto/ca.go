package anoncrypto

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// Cert binds an identity to an RSA public key, signed by a certification
// authority. The paper assumes every legitimate node obtained such a
// certificate out of band before entering the network.
type Cert struct {
	Serial    uint64
	Subject   Identity
	PublicKey *rsa.PublicKey
	Signature []byte
}

// ErrBadCert is returned when certificate verification fails.
var ErrBadCert = errors.New("anoncrypto: certificate verification failed")

// WireSize models the certificate's on-air size in bytes: serial (8),
// subject hash (8), modulus, exponent (4), and signature. The paper's §4
// overhead discussion counts these bytes when hello messages attach
// certificates for ring verification.
func (c *Cert) WireSize() int {
	return 8 + 8 + len(c.PublicKey.N.Bytes()) + 4 + len(c.Signature)
}

// digest computes the canonical hash the CA signs.
func (c *Cert) digest() []byte {
	h := sha256.New()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], c.Serial)
	h.Write(b[:])
	h.Write([]byte(c.Subject))
	h.Write(c.PublicKey.N.Bytes())
	binary.BigEndian.PutUint64(b[:], uint64(c.PublicKey.E))
	h.Write(b[:])
	return h.Sum(nil)
}

// CA is a certification authority: it issues and verifies node
// certificates. The paper delegates key management to an external CA;
// this is that external party, made concrete.
type CA struct {
	key    *rsa.PrivateKey
	serial uint64
}

// NewCA creates an authority with a signing key of the given size.
func NewCA(bits int) (*CA, error) {
	if bits < 1024 {
		bits = 1024 // CA key must outlive node keys; never go below this
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("anoncrypto: generating CA key: %w", err)
	}
	return &CA{key: key}, nil
}

// PublicKey exposes the CA verification key nodes are provisioned with.
func (ca *CA) PublicKey() *rsa.PublicKey { return &ca.key.PublicKey }

// Issue signs a certificate for the keypair's identity and public key.
func (ca *CA) Issue(kp *KeyPair) (*Cert, error) {
	ca.serial++
	c := &Cert{
		Serial:    ca.serial,
		Subject:   kp.ID,
		PublicKey: kp.Public(),
	}
	sig, err := rsa.SignPKCS1v15(rand.Reader, ca.key, crypto.SHA256, c.digest())
	if err != nil {
		return nil, fmt.Errorf("anoncrypto: signing cert for %q: %w", kp.ID, err)
	}
	c.Signature = sig
	return c, nil
}

// Verify checks a certificate against the CA public key caPub.
func (c *Cert) Verify(caPub *rsa.PublicKey) error {
	if c.PublicKey == nil || c.PublicKey.N == nil || c.PublicKey.N.Sign() <= 0 {
		return ErrBadCert
	}
	if err := rsa.VerifyPKCS1v15(caPub, crypto.SHA256, c.digest(), c.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCert, err)
	}
	return nil
}

// Clone returns a deep copy, so tampering tests cannot alias state.
func (c *Cert) Clone() *Cert {
	pk := &rsa.PublicKey{N: new(big.Int).Set(c.PublicKey.N), E: c.PublicKey.E}
	sig := make([]byte, len(c.Signature))
	copy(sig, c.Signature)
	return &Cert{Serial: c.Serial, Subject: c.Subject, PublicKey: pk, Signature: sig}
}

// Package anoncrypto provides the cryptographic building blocks the paper
// assumes: RSA keypairs with CA-issued certificates, Rivest–Shamir–Tauman
// ring signatures (the primitive behind the authenticated anonymous
// neighbor table of §3.1.2), public-key trapdoors for destination
// detection in AGFW (§3.2), and hash-generated pseudonyms n = H(pr‖id).
//
// Everything is built on the Go standard library (crypto/rsa, crypto/aes,
// crypto/sha256). Key sizes default to the paper's RSA-512; that is far
// too small for modern security but reproduces the paper's 64-byte
// trapdoor and its timing model faithfully. Pass a larger bits value for
// real use.
package anoncrypto

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
)

// Identity is a node's real, globally unique name — the thing the paper's
// scheme works to keep unlinkable from locations.
type Identity string

// DefaultKeyBits matches the paper's RSA-512 evaluation setting.
const DefaultKeyBits = 512

// KeyPair couples a node's RSA keys with its identity.
type KeyPair struct {
	ID      Identity
	Private *rsa.PrivateKey
}

// Public returns the public half.
func (k *KeyPair) Public() *rsa.PublicKey { return &k.Private.PublicKey }

// GenerateKeyPair creates a fresh RSA keypair of the given modulus size
// for id. bits must be at least 512.
func GenerateKeyPair(id Identity, bits int) (*KeyPair, error) {
	if bits < 512 {
		return nil, fmt.Errorf("anoncrypto: key size %d below 512 bits", bits)
	}
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("anoncrypto: generating key for %q: %w", id, err)
	}
	return &KeyPair{ID: id, Private: priv}, nil
}

package anoncrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// This file implements the Rivest–Shamir–Tauman ring signature scheme
// ("How to Leak a Secret", ASIACRYPT 2001), the primitive §3.1.2 uses for
// the authenticated anonymous neighbor table: a verifier learns the signer
// is one of the r ring members but not which one.
//
// Construction summary:
//
//   - Each member i has an RSA trapdoor permutation f_i(x) = x^e_i mod N_i,
//     extended to a common domain {0,1}^b by applying f_i only when the
//     quotient block fits under 2^b (the paper's g_i).
//   - A symmetric b-bit permutation E_k (here AES-256-CBC with a zero IV,
//     keyed by SHA-256 of the message and ring) chains the members'
//     outputs: t_{j+1} = E_k(t_j XOR y_j).
//   - A signature (v, x_0..x_{n-1}) is valid iff chaining from t_0 = v
//     through y_j = g_j(x_j) returns t_n = v.
//
// The signer closes the ring by solving for its own y_s with its private
// key; everyone else's x_j are random, which is where signer ambiguity
// comes from.

// RingSignature is a ring signature over a specific ordered set of public
// keys. Bits is the common domain size b.
type RingSignature struct {
	Bits int
	V    []byte
	Xs   []*big.Int
}

// ErrRingSize is returned for rings smaller than two members.
var ErrRingSize = errors.New("anoncrypto: ring must have at least 2 members")

// WireSize models the signature's on-air size in bytes: the glue value
// plus one domain-sized x per member.
func (s *RingSignature) WireSize() int {
	return len(s.V) + len(s.Xs)*(s.Bits/8)
}

// ringDomainBits picks the common domain: the largest modulus plus a
// 160-bit safety margin, rounded up to the AES block size.
func ringDomainBits(ring []*rsa.PublicKey) int {
	maxBits := 0
	for _, pk := range ring {
		if b := pk.N.BitLen(); b > maxBits {
			maxBits = b
		}
	}
	b := maxBits + 160
	if rem := b % 128; rem != 0 {
		b += 128 - rem
	}
	return b
}

// ringKey derives the symmetric key from the message and the ring, so a
// signature cannot be replayed under a different ring.
func ringKey(msg []byte, ring []*rsa.PublicKey) [32]byte {
	h := sha256.New()
	h.Write(msg)
	for _, pk := range ring {
		h.Write(pk.N.Bytes())
	}
	var k [32]byte
	copy(k[:], h.Sum(nil))
	return k
}

// bPerm is the keyed b-bit permutation E_k and its inverse.
type bPerm struct {
	block  cipher.Block
	bBytes int
}

func newBPerm(key [32]byte, bits int) (*bPerm, error) {
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("anoncrypto: ring cipher: %w", err)
	}
	return &bPerm{block: blk, bBytes: bits / 8}, nil
}

// enc applies E_k in place semantics (returns a fresh slice).
func (p *bPerm) enc(in []byte) []byte {
	out := make([]byte, p.bBytes)
	iv := make([]byte, aes.BlockSize)
	cipher.NewCBCEncrypter(p.block, iv).CryptBlocks(out, in)
	return out
}

// dec applies E_k^{-1}.
func (p *bPerm) dec(in []byte) []byte {
	out := make([]byte, p.bBytes)
	iv := make([]byte, aes.BlockSize)
	cipher.NewCBCDecrypter(p.block, iv).CryptBlocks(out, in)
	return out
}

func xorBytes(a, b []byte) []byte {
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// gForward evaluates the extended trapdoor permutation g_i over {0,1}^b
// using only the public key.
func gForward(pk *rsa.PublicKey, x *big.Int, bits int) *big.Int {
	q, r := new(big.Int).DivMod(x, pk.N, new(big.Int))
	// If (q+1)*N would overflow the domain, g is the identity there.
	lim := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	edge := new(big.Int).Add(q, big.NewInt(1))
	edge.Mul(edge, pk.N)
	if edge.Cmp(lim) > 0 {
		return new(big.Int).Set(x)
	}
	fr := new(big.Int).Exp(r, big.NewInt(int64(pk.E)), pk.N)
	return fr.Add(fr, new(big.Int).Mul(q, pk.N))
}

// gInverse inverts g using the private key.
func gInverse(priv *rsa.PrivateKey, y *big.Int, bits int) *big.Int {
	q, r := new(big.Int).DivMod(y, priv.N, new(big.Int))
	lim := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	edge := new(big.Int).Add(q, big.NewInt(1))
	edge.Mul(edge, priv.N)
	if edge.Cmp(lim) > 0 {
		return new(big.Int).Set(y)
	}
	fr := new(big.Int).Exp(r, priv.D, priv.N)
	return fr.Add(fr, new(big.Int).Mul(q, priv.N))
}

// randDomain draws a uniform element of {0,1}^b.
func randDomain(bits int) (*big.Int, error) {
	lim := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	return rand.Int(rand.Reader, lim)
}

// toDomainBytes renders v as a fixed-width big-endian b-bit string.
func toDomainBytes(v *big.Int, bits int) []byte {
	out := make([]byte, bits/8)
	v.FillBytes(out)
	return out
}

// RingSign signs msg so that any member of ring could plausibly be the
// author. ring is the ordered public keys including the signer's at
// signerIdx; priv is the signer's private key and must match.
func RingSign(msg []byte, ring []*rsa.PublicKey, signerIdx int, priv *rsa.PrivateKey) (*RingSignature, error) {
	n := len(ring)
	if n < 2 {
		return nil, ErrRingSize
	}
	if signerIdx < 0 || signerIdx >= n {
		return nil, fmt.Errorf("anoncrypto: signer index %d out of range", signerIdx)
	}
	if ring[signerIdx].N.Cmp(priv.N) != 0 {
		return nil, errors.New("anoncrypto: private key does not match ring slot")
	}
	bits := ringDomainBits(ring)
	perm, err := newBPerm(ringKey(msg, ring), bits)
	if err != nil {
		return nil, err
	}

	vInt, err := randDomain(bits)
	if err != nil {
		return nil, fmt.Errorf("anoncrypto: drawing glue value: %w", err)
	}
	v := toDomainBytes(vInt, bits)

	xs := make([]*big.Int, n)
	ys := make([][]byte, n)
	for i := 0; i < n; i++ {
		if i == signerIdx {
			continue
		}
		x, err := randDomain(bits)
		if err != nil {
			return nil, fmt.Errorf("anoncrypto: drawing ring element: %w", err)
		}
		xs[i] = x
		ys[i] = toDomainBytes(gForward(ring[i], x, bits), bits)
	}

	// Forward chain t_0 = v up to the signer's slot.
	t := v
	for j := 0; j < signerIdx; j++ {
		t = perm.enc(xorBytes(t, ys[j]))
	}
	// Backward chain from t_n = v down to the slot after the signer.
	u := v
	for j := n - 1; j > signerIdx; j-- {
		u = xorBytes(perm.dec(u), ys[j])
	}
	// Close the ring: E(t XOR y_s) must equal u, so y_s = D(u) XOR t.
	ySig := xorBytes(perm.dec(u), t)
	xs[signerIdx] = gInverse(priv, new(big.Int).SetBytes(ySig), bits)

	return &RingSignature{Bits: bits, V: v, Xs: xs}, nil
}

// RingVerify reports whether sig is a valid ring signature on msg under
// the ordered public keys in ring.
func RingVerify(msg []byte, ring []*rsa.PublicKey, sig *RingSignature) bool {
	n := len(ring)
	if sig == nil || n < 2 || len(sig.Xs) != n {
		return false
	}
	bits := ringDomainBits(ring)
	if sig.Bits != bits || len(sig.V) != bits/8 {
		return false
	}
	lim := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	perm, err := newBPerm(ringKey(msg, ring), bits)
	if err != nil {
		return false
	}
	t := sig.V
	for j := 0; j < n; j++ {
		if sig.Xs[j] == nil || sig.Xs[j].Sign() < 0 || sig.Xs[j].Cmp(lim) >= 0 {
			return false
		}
		y := toDomainBytes(gForward(ring[j], sig.Xs[j], bits), bits)
		t = perm.enc(xorBytes(t, y))
	}
	return string(t) == string(sig.V)
}

package anoncrypto

import (
	"crypto/rand"
	"crypto/rsa"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"anongeo/internal/geo"
)

// Trapdoor is the AGFW data-header field only the intended destination
// can open: trapdoor = KU_d(src, loc_s, tag_d) per §3.2. It carries the
// source's identity and location so the destination can reply, plus a tag
// proving "you are the destination".
type Trapdoor []byte

// trapdoorMagic is the paper's tag_d ("Hey! You are the destination!").
var trapdoorMagic = [4]byte{'A', 'G', 'F', 'W'}

// TrapdoorPayload is what the destination recovers by opening a trapdoor.
type TrapdoorPayload struct {
	Src       Identity
	SrcLoc    geo.Point
	Timestamp int64  // nanoseconds of simulation time, a freshness nonce
	AckKey    uint64 // per-packet acknowledgment MAC key (0 when AuthAck is off)
}

// MaxTrapdoorIdentity bounds the source identity length so the payload
// fits a PKCS#1 v1.5 block under a 512-bit key (53 bytes capacity:
// 4+8+4+4+8+1+24 = 53 exactly).
const MaxTrapdoorIdentity = 24

// encode serializes the payload: magic | ts | locX | locY | ackKey | len | src.
func (p TrapdoorPayload) encode() ([]byte, error) {
	if len(p.Src) > MaxTrapdoorIdentity {
		return nil, fmt.Errorf("anoncrypto: identity %q exceeds %d bytes", p.Src, MaxTrapdoorIdentity)
	}
	buf := make([]byte, 0, 4+8+4+4+8+1+len(p.Src))
	buf = append(buf, trapdoorMagic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.Timestamp))
	buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(float32(p.SrcLoc.X)))
	buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(float32(p.SrcLoc.Y)))
	buf = binary.BigEndian.AppendUint64(buf, p.AckKey)
	buf = append(buf, byte(len(p.Src)))
	buf = append(buf, p.Src...)
	return buf, nil
}

// decodeTrapdoorPayload parses an opened trapdoor block.
func decodeTrapdoorPayload(b []byte) (TrapdoorPayload, bool) {
	if len(b) < 4+8+4+4+8+1 {
		return TrapdoorPayload{}, false
	}
	if [4]byte(b[:4]) != trapdoorMagic {
		return TrapdoorPayload{}, false
	}
	ts := int64(binary.BigEndian.Uint64(b[4:12]))
	x := math.Float32frombits(binary.BigEndian.Uint32(b[12:16]))
	y := math.Float32frombits(binary.BigEndian.Uint32(b[16:20]))
	key := binary.BigEndian.Uint64(b[20:28])
	n := int(b[28])
	if len(b) != 29+n {
		return TrapdoorPayload{}, false
	}
	return TrapdoorPayload{
		Src:       Identity(b[29 : 29+n]),
		SrcLoc:    geo.Pt(float64(x), float64(y)),
		Timestamp: ts,
		AckKey:    key,
	}, true
}

// MakeTrapdoor encrypts the payload under the destination's public key.
// With the paper's 512-bit keys the result is 64 bytes.
func MakeTrapdoor(dst *rsa.PublicKey, p TrapdoorPayload) (Trapdoor, error) {
	plain, err := p.encode()
	if err != nil {
		return nil, err
	}
	ct, err := rsa.EncryptPKCS1v15(rand.Reader, dst, plain)
	if err != nil {
		return nil, fmt.Errorf("anoncrypto: sealing trapdoor: %w", err)
	}
	return Trapdoor(ct), nil
}

// ErrNotDestination is returned by OpenTrapdoor when the key cannot open
// the trapdoor — the normal outcome for every node except the intended
// destination.
var ErrNotDestination = errors.New("anoncrypto: trapdoor not openable with this key")

// OpenTrapdoor attempts to open td with priv. Only the destination whose
// public key sealed the trapdoor succeeds.
func OpenTrapdoor(priv *rsa.PrivateKey, td Trapdoor) (TrapdoorPayload, error) {
	plain, err := rsa.DecryptPKCS1v15(nil, priv, td)
	if err != nil {
		return TrapdoorPayload{}, ErrNotDestination
	}
	p, ok := decodeTrapdoorPayload(plain)
	if !ok {
		return TrapdoorPayload{}, ErrNotDestination
	}
	return p, nil
}

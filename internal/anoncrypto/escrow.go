package anoncrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Revocable anonymity in the style of ANAP / Wierzbicki–Zwierko: every
// pseudonym a node advertises carries a CA-blessed escrow tag — an
// encryption of the node's long-term identity under a group escrow key
// that no single party holds. The key is Shamir-split t-of-n among
// offline authorities at setup, so opening a tag (linking a pseudonym
// back to its identity, and hence to every other pseudonym of that
// identity) requires a quorum of t authorities to cooperate. Honest
// nodes' privacy is preserved against any coalition smaller than t;
// a provably misbehaving pseudonym can still be revoked.
//
// The arithmetic is Shamir secret sharing over GF(2^8), byte-wise: the
// secret is the polynomial's value at x=0, each authority i holds the
// value at x=i. Tags are AES-256-GCM under the group key with a
// deterministic SIV-style nonce, so sealing the same (identity,
// pseudonym) twice yields the same bytes — no randomness is consumed on
// the simulator's hot path.

// EscrowTagBytes is the modeled on-air size of one escrow tag attached
// to a hello: GCM nonce (12) + ciphertext of identity ‖ pseudonym
// (≤ MaxTrapdoorIdentity + 6) + GCM tag (16), padded to a fixed size so
// tag length does not leak identity length.
const EscrowTagBytes = 48

// ErrEscrowQuorum is returned when fewer than t distinct shares are
// presented to reconstruct the escrow key.
var ErrEscrowQuorum = errors.New("anoncrypto: escrow quorum not met")

// ErrBadEscrowTag is returned when a tag fails to authenticate under the
// reconstructed escrow key — a forged or corrupted tag.
var ErrBadEscrowTag = errors.New("anoncrypto: escrow tag verification failed")

// gf256Mul multiplies in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
func gf256Mul(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// gf256Inv inverts a nonzero element by exponentiation (a^254).
func gf256Inv(a byte) byte {
	// a^254 = a^(2+4+8+16+32+64+128)
	var out byte = 1
	pow := a
	for exp := 254; exp > 0; exp >>= 1 {
		if exp&1 != 0 {
			out = gf256Mul(out, pow)
		}
		pow = gf256Mul(pow, pow)
	}
	return out
}

// Share is one authority's fragment of a split secret: the evaluation of
// the sharing polynomials at X (one byte of Y per secret byte).
type Share struct {
	X byte
	Y []byte
}

// SplitSecret Shamir-splits secret into n shares with threshold t: any t
// distinct shares reconstruct it, any t-1 reveal nothing. Polynomial
// coefficients are drawn from rng, so a deterministic reader yields a
// reproducible split (the simulator's requirement).
func SplitSecret(rng io.Reader, secret []byte, t, n int) ([]Share, error) {
	if t < 1 || n < t || n > 255 {
		return nil, fmt.Errorf("anoncrypto: bad split parameters t=%d n=%d", t, n)
	}
	shares := make([]Share, n)
	for i := range shares {
		shares[i] = Share{X: byte(i + 1), Y: make([]byte, len(secret))}
	}
	coeffs := make([]byte, t-1)
	for pos, sb := range secret {
		if _, err := io.ReadFull(rng, coeffs); err != nil {
			return nil, fmt.Errorf("anoncrypto: drawing share coefficients: %w", err)
		}
		for i := range shares {
			x := shares[i].X
			// Horner evaluation of sb + c1·x + … + c_{t-1}·x^{t-1}.
			y := byte(0)
			for j := len(coeffs) - 1; j >= 0; j-- {
				y = gf256Mul(y, x) ^ coeffs[j]
			}
			shares[i].Y[pos] = gf256Mul(y, x) ^ sb
		}
	}
	return shares, nil
}

// CombineShares reconstructs the secret from at least t distinct shares
// by Lagrange interpolation at x=0. Fewer than t shares, or duplicate X
// coordinates, return ErrEscrowQuorum.
func CombineShares(shares []Share, t int) ([]byte, error) {
	distinct := make(map[byte]Share, len(shares))
	for _, s := range shares {
		if s.X == 0 {
			return nil, fmt.Errorf("anoncrypto: share at x=0 is the secret itself")
		}
		distinct[s.X] = s
	}
	if len(distinct) < t {
		return nil, fmt.Errorf("%w: have %d distinct shares, need %d", ErrEscrowQuorum, len(distinct), t)
	}
	// Interpolate from exactly t shares, in ascending X for determinism.
	use := make([]Share, 0, t)
	for x := 1; x < 256 && len(use) < t; x++ {
		if s, ok := distinct[byte(x)]; ok {
			use = append(use, s)
		}
	}
	length := len(use[0].Y)
	for _, s := range use {
		if len(s.Y) != length {
			return nil, fmt.Errorf("anoncrypto: share length mismatch")
		}
	}
	secret := make([]byte, length)
	for i, si := range use {
		// Lagrange basis at 0: Π_{j≠i} x_j / (x_j ⊕ x_i).
		basis := byte(1)
		for j, sj := range use {
			if i == j {
				continue
			}
			basis = gf256Mul(basis, gf256Mul(sj.X, gf256Inv(sj.X^si.X)))
		}
		for pos := range secret {
			secret[pos] ^= gf256Mul(si.Y[pos], basis)
		}
	}
	return secret, nil
}

// EscrowTag is a sealed pseudonym-to-identity binding: AES-256-GCM of
// identity ‖ pseudonym under the group escrow key, with the pseudonym as
// associated data so a tag cannot be replayed onto another pseudonym.
type EscrowTag []byte

// EscrowGroup is the setup-time authority set: it holds the group key
// only transiently (a real deployment would run a DKG; the simulator's
// CA plays dealer) and hands each authority its share.
type EscrowGroup struct {
	t, n   int
	key    [32]byte
	shares []Share
}

// NewEscrowGroup deals a fresh t-of-n escrow group, drawing the group
// key and share coefficients from rng.
func NewEscrowGroup(rng io.Reader, t, n int) (*EscrowGroup, error) {
	g := &EscrowGroup{t: t, n: n}
	if _, err := io.ReadFull(rng, g.key[:]); err != nil {
		return nil, fmt.Errorf("anoncrypto: drawing escrow key: %w", err)
	}
	shares, err := SplitSecret(rng, g.key[:], t, n)
	if err != nil {
		return nil, err
	}
	g.shares = shares
	return g, nil
}

// Threshold returns t, the quorum size.
func (g *EscrowGroup) Threshold() int { return g.t }

// Authorities returns n, the authority-set size.
func (g *EscrowGroup) Authorities() int { return g.n }

// Authority returns authority i's share (0 ≤ i < n).
func (g *EscrowGroup) Authority(i int) (Share, error) {
	if i < 0 || i >= g.n {
		return Share{}, fmt.Errorf("anoncrypto: authority index %d outside [0,%d)", i, g.n)
	}
	return g.shares[i], nil
}

// sealAEAD builds the GCM instance for a 32-byte escrow key.
func sealAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// SealTag escrows one pseudonym: the returned tag decrypts to id under
// the group key (or any quorum reconstruction of it). The nonce is
// derived deterministically from (key, id, pseudonym) — SIV style — so
// the simulator's per-beacon sealing consumes no randomness.
func (g *EscrowGroup) SealTag(id Identity, p Pseudonym) (EscrowTag, error) {
	if len(id) > MaxTrapdoorIdentity {
		return nil, fmt.Errorf("anoncrypto: identity %q exceeds %d bytes", id, MaxTrapdoorIdentity)
	}
	aead, err := sealAEAD(g.key[:])
	if err != nil {
		return nil, err
	}
	mac := hmac.New(sha256.New, g.key[:])
	mac.Write([]byte(id))
	mac.Write(p[:])
	nonce := mac.Sum(nil)[:aead.NonceSize()]
	plain := make([]byte, 0, 1+len(id))
	plain = append(plain, byte(len(id)))
	plain = append(plain, id...)
	ct := aead.Seal(nil, nonce, plain, p[:])
	return EscrowTag(append(nonce, ct...)), nil
}

// Quorum accumulates authority shares toward an opening.
type Quorum struct {
	t      int
	shares []Share
}

// NewQuorum starts an empty quorum with threshold t.
func NewQuorum(t int) *Quorum { return &Quorum{t: t} }

// Add contributes one authority's share.
func (q *Quorum) Add(s Share) { q.shares = append(q.shares, s) }

// Open reconstructs the escrow key from the accumulated shares and
// decrypts the tag, returning the escrowed identity. It fails with
// ErrEscrowQuorum below threshold and ErrBadEscrowTag when the tag does
// not authenticate (forged tag, or a wrong/corrupted share slipped in —
// GCM catches both, so a cheating authority cannot silently misdirect a
// revocation).
func (q *Quorum) Open(tag EscrowTag, p Pseudonym) (Identity, error) {
	key, err := CombineShares(q.shares, q.t)
	if err != nil {
		return "", err
	}
	aead, err := sealAEAD(key)
	if err != nil {
		return "", err
	}
	if len(tag) < aead.NonceSize() {
		return "", ErrBadEscrowTag
	}
	plain, err := aead.Open(nil, tag[:aead.NonceSize()], tag[aead.NonceSize():], p[:])
	if err != nil {
		return "", ErrBadEscrowTag
	}
	if len(plain) < 1 || int(plain[0]) != len(plain)-1 {
		return "", ErrBadEscrowTag
	}
	return Identity(plain[1:]), nil
}

// AckMAC64 is the per-hop acknowledgment authenticator the simulator
// uses: a keyed 64-bit tag over the packet id. It stands in for
// HMAC-SHA-256 truncated to 8 bytes exactly as ModeledScheme stands in
// for RSA — same information flow (no key, no valid tag), none of the
// host-CPU cost on the per-ack hot path. The genuine construction is
// AckMAC, pinned against this one's semantics in the escrow tests.
// Never returns 0, so an all-zero forgery can never verify.
func AckMAC64(key, pktID uint64) uint64 {
	mix := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		return x
	}
	x := mix(key+0x9E3779B97F4A7C15) ^ mix(pktID+0xD1B54A32D192ED03)
	x = mix(x)
	if x == 0 {
		x = 1
	}
	return x
}

// AckMAC is the real construction AckMAC64 models: HMAC-SHA-256 over the
// packet id under the sealed per-packet key, truncated to 8 bytes.
func AckMAC(key uint64, pktID uint64) [8]byte {
	var kb, ib [8]byte
	binary.BigEndian.PutUint64(kb[:], key)
	binary.BigEndian.PutUint64(ib[:], pktID)
	mac := hmac.New(sha256.New, kb[:])
	mac.Write(ib[:])
	var out [8]byte
	copy(out[:], mac.Sum(nil))
	return out
}

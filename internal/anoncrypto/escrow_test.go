package anoncrypto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// determRand adapts math/rand to io.Reader for reproducible dealing.
func determRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestShamirRoundTrip(t *testing.T) {
	rng := determRand(1)
	secret := []byte("thirty-two-byte escrow key here!")
	for _, tc := range []struct{ t, n int }{{1, 1}, {2, 3}, {3, 5}, {5, 5}, {4, 9}} {
		shares, err := SplitSecret(rng, secret, tc.t, tc.n)
		if err != nil {
			t.Fatalf("SplitSecret(t=%d,n=%d): %v", tc.t, tc.n, err)
		}
		if len(shares) != tc.n {
			t.Fatalf("got %d shares, want %d", len(shares), tc.n)
		}
		// Exactly t shares reconstruct; every t-subset we try works.
		got, err := CombineShares(shares[:tc.t], tc.t)
		if err != nil {
			t.Fatalf("CombineShares first %d: %v", tc.t, err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("t=%d n=%d: reconstructed %q, want %q", tc.t, tc.n, got, secret)
		}
		// The last t shares work too (different subset).
		got, err = CombineShares(shares[tc.n-tc.t:], tc.t)
		if err != nil {
			t.Fatalf("CombineShares last %d: %v", tc.t, err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("t=%d n=%d tail subset: reconstructed %q, want %q", tc.t, tc.n, got, secret)
		}
	}
}

func TestShamirBelowThreshold(t *testing.T) {
	rng := determRand(2)
	secret := []byte("secret")
	shares, err := SplitSecret(rng, secret, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CombineShares(shares[:2], 3); !errors.Is(err, ErrEscrowQuorum) {
		t.Fatalf("2-of-3 combine: got %v, want ErrEscrowQuorum", err)
	}
	// Duplicate shares don't count twice toward the quorum.
	if _, err := CombineShares([]Share{shares[0], shares[0], shares[0]}, 3); !errors.Is(err, ErrEscrowQuorum) {
		t.Fatalf("duplicate shares: got %v, want ErrEscrowQuorum", err)
	}
	// A wrong combination under threshold-met but corrupted share must
	// not silently yield the secret.
	bad := Share{X: shares[2].X, Y: append([]byte(nil), shares[2].Y...)}
	bad.Y[0] ^= 0xFF
	got, err := CombineShares([]Share{shares[0], shares[1], bad}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, secret) {
		t.Fatal("corrupted share still reconstructed the secret")
	}
}

func TestShamirParamValidation(t *testing.T) {
	rng := determRand(3)
	if _, err := SplitSecret(rng, []byte("s"), 0, 3); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := SplitSecret(rng, []byte("s"), 4, 3); err == nil {
		t.Error("t>n accepted")
	}
	if _, err := SplitSecret(rng, []byte("s"), 2, 300); err == nil {
		t.Error("n>255 accepted")
	}
}

func TestEscrowTagOpenLinksIdentity(t *testing.T) {
	rng := determRand(4)
	group, err := NewEscrowGroup(rng, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	id := Identity("node-17")
	nym := NewPseudonym(rng, id)
	tag, err := group.SealTag(id, nym)
	if err != nil {
		t.Fatal(err)
	}

	q := NewQuorum(group.Threshold())
	for i := 0; i < group.Threshold(); i++ {
		s, err := group.Authority(i)
		if err != nil {
			t.Fatal(err)
		}
		q.Add(s)
	}
	opened, err := q.Open(tag, nym)
	if err != nil {
		t.Fatal(err)
	}
	if opened != id {
		t.Fatalf("opened %q, want %q", opened, id)
	}
}

func TestEscrowTagBelowQuorumFails(t *testing.T) {
	rng := determRand(5)
	group, err := NewEscrowGroup(rng, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	id := Identity("node-3")
	nym := NewPseudonym(rng, id)
	tag, err := group.SealTag(id, nym)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuorum(3)
	for i := 0; i < 2; i++ {
		s, _ := group.Authority(i)
		q.Add(s)
	}
	if _, err := q.Open(tag, nym); !errors.Is(err, ErrEscrowQuorum) {
		t.Fatalf("2-of-3 open: got %v, want ErrEscrowQuorum", err)
	}
}

func TestEscrowTagBoundToPseudonym(t *testing.T) {
	rng := determRand(6)
	group, err := NewEscrowGroup(rng, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	id := Identity("node-9")
	nym := NewPseudonym(rng, id)
	other := NewPseudonym(rng, id)
	tag, err := group.SealTag(id, nym)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuorum(2)
	for i := 0; i < 2; i++ {
		s, _ := group.Authority(i)
		q.Add(s)
	}
	// Replaying the tag against a different pseudonym must fail (the
	// pseudonym is GCM associated data).
	if _, err := q.Open(tag, other); !errors.Is(err, ErrBadEscrowTag) {
		t.Fatalf("replayed tag: got %v, want ErrBadEscrowTag", err)
	}
	// A flipped ciphertext byte must fail authentication.
	forged := append(EscrowTag(nil), tag...)
	forged[len(forged)-1] ^= 0x01
	if _, err := q.Open(forged, nym); !errors.Is(err, ErrBadEscrowTag) {
		t.Fatalf("forged tag: got %v, want ErrBadEscrowTag", err)
	}
}

func TestEscrowSealDeterministic(t *testing.T) {
	rng := determRand(7)
	group, err := NewEscrowGroup(rng, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	id := Identity("node-1")
	nym := NewPseudonym(rng, id)
	a, err := group.SealTag(id, nym)
	if err != nil {
		t.Fatal(err)
	}
	b, err := group.SealTag(id, nym)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("SealTag is not deterministic for identical inputs")
	}
}

func TestAckMACProperties(t *testing.T) {
	// The modeled MAC never returns zero (zero is the "no MAC" wire
	// value a spoofer sends), and differs across keys and packet ids.
	seen := map[uint64]bool{}
	for key := uint64(0); key < 64; key++ {
		for pkt := uint64(0); pkt < 64; pkt++ {
			m := AckMAC64(key, pkt)
			if m == 0 {
				t.Fatalf("AckMAC64(%d,%d) = 0", key, pkt)
			}
			seen[m] = true
		}
	}
	if len(seen) != 64*64 {
		t.Fatalf("modeled MAC collisions: %d distinct of %d", len(seen), 64*64)
	}
	// Same inputs, same tag.
	if AckMAC64(7, 9) != AckMAC64(7, 9) {
		t.Fatal("AckMAC64 not deterministic")
	}
}

func TestAckMACRealConstruction(t *testing.T) {
	// The real HMAC-SHA-256 construction: deterministic, key-sensitive,
	// message-sensitive, and never the all-zero forgery value.
	a := AckMAC(1, 2)
	if a != AckMAC(1, 2) {
		t.Fatal("AckMAC not deterministic")
	}
	if a == AckMAC(3, 2) || a == AckMAC(1, 4) {
		t.Fatal("AckMAC collision across key/message change")
	}
	if binary.BigEndian.Uint64(a[:]) == 0 {
		t.Fatal("AckMAC produced the reserved zero tag")
	}
}

// Package exp is a deterministic parallel experiment orchestrator.
//
// Every figure in the paper's evaluation — and every ablation built on
// top of it — is a grid of independent simulation cells: one
// configuration in, one result out, no shared state between cells. exp
// turns such a grid into a schedulable unit of work. It executes cells
// on a bounded worker pool, returns results in stable input order
// regardless of completion order, memoizes finished cells in a
// content-addressed on-disk cache (see Cache), survives per-cell
// failures with capped-backoff retries and panic recovery, and streams
// run telemetry through pluggable hooks (see Hook, Progress, JSONL).
//
// The orchestrator is generic over the config and result types so it
// does not depend on the simulator: internal/core layers its density
// sweeps on top of exp, and any future experiment grid (parameter
// scans, adversary batteries, calibration searches) can reuse it
// unchanged.
//
// Determinism contract: exp adds no randomness of its own. As long as
// the run function is a pure function of its config — which core.Run
// is, because every run owns a seed-derived engine and every RNG in the
// stack is instance-owned — executing a grid with Parallel=N is
// bit-for-bit identical to executing it serially.
package exp

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// RunFunc executes one cell's config into a result. It must be safe to
// call concurrently from multiple goroutines with distinct configs, and
// should be a pure function of its config for cache correctness.
type RunFunc[C, R any] func(C) (R, error)

// Cell is one unit of work: a config plus a human-readable label used
// in telemetry and error messages.
type Cell[C any] struct {
	Label  string
	Config C
}

// Outcome is the orchestrator's verdict on one cell, in input order.
type Outcome[R any] struct {
	Label string
	Index int
	Value R
	// Err is the last attempt's error; nil on success (cached or run).
	Err error
	// Cached reports the value was served from the cache, not executed.
	Cached bool
	// Attempts counts executions (0 for a cache hit, ≥1 otherwise).
	Attempts int
	// Wall is the total wall-clock time spent executing the cell,
	// including retries and backoff sleeps; ~0 for cache hits.
	Wall time.Duration
}

// Orchestrator executes cells of one experiment grid. The zero value
// plus a Run function is usable: serial-width pool sized by GOMAXPROCS,
// no cache, no retries, no telemetry.
type Orchestrator[C, R any] struct {
	// Run executes one cell. Required.
	Run RunFunc[C, R]

	// Parallel bounds the worker pool; ≤0 means runtime.GOMAXPROCS(0).
	// Parallel=1 is strictly serial in input order.
	Parallel int

	// Cache, when non-nil, memoizes successful results keyed by the
	// canonical encoding of the config (see Cache.Key).
	Cache *Cache
	// Cacheable, when non-nil, exempts configs from the cache — e.g.
	// configs whose results carry non-serializable attachments or whose
	// runs have observable side effects. nil means everything is
	// cacheable when Cache is set.
	Cacheable func(C) bool

	// Retries is the number of extra attempts after a failed execution
	// (transient-failure insurance; deterministic failures simply fail
	// Retries+1 times). Panics inside Run are converted to errors and
	// retried like any other failure.
	Retries int
	// Backoff is the sleep before the first retry, doubling per retry
	// up to MaxBackoff. Defaults: 100ms base, 5s cap.
	Backoff    time.Duration
	MaxBackoff time.Duration

	// SimDuration, when non-nil, reports the simulated time a config
	// covers so telemetry can include simulated-time throughput
	// (simulated seconds per wall second).
	SimDuration func(C) time.Duration

	// Hooks receive telemetry events. Emission is serialized by the
	// orchestrator, so hooks need no locking of their own against it.
	Hooks []Hook

	mu     sync.Mutex // serializes hook emission and the counters below
	done   int
	cached int
	failed int
}

// Execute runs every cell and returns one Outcome per cell in input
// order. A failing cell fails only itself: the rest of the grid still
// runs, and the joined per-cell errors come back alongside the full
// outcome slice so callers can choose between all-or-nothing and
// partial-result handling.
func (o *Orchestrator[C, R]) Execute(cells []Cell[C]) ([]Outcome[R], error) {
	if o.Run == nil {
		return nil, errors.New("exp: Orchestrator.Run is nil")
	}
	par := o.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(cells) {
		par = len(cells)
	}
	if par < 1 {
		par = 1
	}
	o.mu.Lock()
	o.done, o.cached, o.failed = 0, 0, 0
	o.mu.Unlock()
	o.emit(Event{Type: EventRunStarted, Total: len(cells), Workers: par})

	out := make([]Outcome[R], len(cells))
	start := time.Now()
	if par == 1 {
		// Strictly serial: no goroutines, no interleaving, the exact
		// reference order parallel execution is measured against.
		for i, c := range cells {
			out[i] = o.runCell(i, len(cells), c)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i] = o.runCell(i, len(cells), cells[i])
				}
			}()
		}
		for i := range cells {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var errs []error
	for _, oc := range out {
		if oc.Err != nil {
			errs = append(errs, fmt.Errorf("cell %q: %w", oc.Label, oc.Err))
		}
	}
	o.mu.Lock()
	done, cached, failed := o.done, o.cached, o.failed
	o.mu.Unlock()
	o.emit(Event{
		Type: EventRunFinished, Total: len(cells), Done: done,
		CachedCells: cached, FailedCells: failed, Wall: time.Since(start),
	})
	return out, errors.Join(errs...)
}

// runCell resolves one cell: cache lookup, then execution with retries
// and panic recovery, then cache fill.
func (o *Orchestrator[C, R]) runCell(i, total int, c Cell[C]) Outcome[R] {
	out := Outcome[R]{Label: c.Label, Index: i}

	var key string
	useCache := o.Cache != nil && (o.Cacheable == nil || o.Cacheable(c.Config))
	if useCache {
		k, err := o.Cache.Key(c.Config)
		if err != nil {
			// Unencodable config: run uncached rather than fail the cell.
			useCache = false
		} else {
			key = k
			var v R
			hit, err := o.Cache.Get(key, &v)
			if err == nil && hit {
				out.Value = v
				out.Cached = true
				o.count(func() { o.done++; o.cached++ })
				o.emit(Event{Type: EventCellCached, Label: c.Label, Index: i, Total: total, Key: key})
				return out
			}
			// A corrupt or unreadable entry is a miss: re-run and rewrite.
		}
	}

	start := time.Now()
	o.emit(Event{Type: EventCellStarted, Label: c.Label, Index: i, Total: total})
	backoff := o.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := o.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	attempts := o.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	for a := 1; a <= attempts; a++ {
		out.Attempts = a
		v, err := runRecovered(o.Run, c.Config)
		if err == nil {
			out.Value, out.Err = v, nil
			break
		}
		out.Err = err
		if a < attempts {
			o.emit(Event{
				Type: EventCellRetried, Label: c.Label, Index: i, Total: total,
				Attempt: a, Err: err.Error(),
			})
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
	out.Wall = time.Since(start)

	if out.Err == nil && useCache {
		// Serving future runs is best-effort; a full disk or an
		// unencodable result must not fail a finished cell.
		_ = o.Cache.Put(key, out.Value)
	}

	ev := Event{
		Type: EventCellFinished, Label: c.Label, Index: i, Total: total,
		Attempt: out.Attempts, Wall: out.Wall,
	}
	if o.SimDuration != nil {
		ev.Sim = o.SimDuration(c.Config)
		if out.Wall > 0 {
			ev.Throughput = ev.Sim.Seconds() / out.Wall.Seconds()
		}
	}
	if out.Err != nil {
		ev.Err = out.Err.Error()
		o.count(func() { o.done++; o.failed++ })
	} else {
		o.count(func() { o.done++ })
	}
	o.emit(ev)
	return out
}

// count mutates the progress counters under the telemetry lock.
func (o *Orchestrator[C, R]) count(f func()) {
	o.mu.Lock()
	f()
	o.mu.Unlock()
}

// emit fans one event out to every hook, serialized so hooks observe a
// consistent ordering even under parallel workers. The progress
// counters are attached to every event.
func (o *Orchestrator[C, R]) emit(ev Event) {
	if len(o.Hooks) == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	ev.Done, ev.CachedCells, ev.FailedCells = o.done, o.cached, o.failed
	for _, h := range o.Hooks {
		h.Emit(ev)
	}
}

// runRecovered calls run, converting a panic into an error so one bad
// cell cannot take down the whole sweep.
func runRecovered[C, R any](run RunFunc[C, R], cfg C) (v R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: cell panicked: %v\n%s", p, debug.Stack())
		}
	}()
	return run(cfg)
}

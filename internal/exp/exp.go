// Package exp is a deterministic parallel experiment orchestrator.
//
// Every figure in the paper's evaluation — and every ablation built on
// top of it — is a grid of independent simulation cells: one
// configuration in, one result out, no shared state between cells. exp
// turns such a grid into a schedulable unit of work. It executes cells
// on a bounded worker pool, returns results in stable input order
// regardless of completion order, memoizes finished cells in a
// content-addressed on-disk cache (see Cache), survives per-cell
// failures with capped-backoff retries and panic recovery, and streams
// run telemetry through pluggable hooks (see Hook, Progress, JSONL).
//
// The orchestrator is generic over the config and result types so it
// does not depend on the simulator: internal/core layers its density
// sweeps on top of exp, internal/serve runs multi-tenant HTTP jobs on
// it, and any future experiment grid (parameter scans, adversary
// batteries, calibration searches) can reuse it unchanged.
//
// Determinism contract: exp adds no randomness of its own. As long as
// the run function is a pure function of its config — which core.Run
// is, because every run owns a seed-derived engine and every RNG in the
// stack is instance-owned — executing a grid with Parallel=N is
// bit-for-bit identical to executing it serially.
//
// Concurrency contract: an Orchestrator holds no per-run mutable state,
// so one shared instance may execute many grids concurrently (the serve
// daemon's scheduler does exactly that); each ExecuteContext call owns
// its counters and serializes emission to its own hooks. A Hook
// instance shared across concurrent runs must be internally
// synchronized.
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// RunFunc executes one cell's config into a result. It must be safe to
// call concurrently from multiple goroutines with distinct configs, and
// should be a pure function of its config for cache correctness.
type RunFunc[C, R any] func(C) (R, error)

// CtxRunFunc is a cancellation-aware RunFunc: implementations should
// return promptly (with ctx.Err or an error wrapping it) once ctx is
// done, so job cancellation and daemon shutdown do not wait out a long
// simulation.
type CtxRunFunc[C, R any] func(context.Context, C) (R, error)

// Cell is one unit of work: a config plus a human-readable label used
// in telemetry and error messages.
type Cell[C any] struct {
	Label  string
	Config C
}

// Outcome is the orchestrator's verdict on one cell, in input order.
type Outcome[R any] struct {
	Label string
	Index int
	Value R
	// Err is the last attempt's error; nil on success (cached or run).
	// A cell abandoned to cancellation carries the context's error.
	Err error
	// Cached reports the value was served from the cache, not executed.
	Cached bool
	// Attempts counts executions (0 for a cache hit, ≥1 otherwise).
	Attempts int
	// Wall is the total wall-clock time spent executing the cell,
	// including retries and backoff sleeps; ~0 for cache hits.
	Wall time.Duration
}

// Orchestrator executes cells of one experiment grid. The zero value
// plus a Run function is usable: serial-width pool sized by GOMAXPROCS,
// no cache, no retries, no telemetry. All fields are read-only during
// execution, so a single Orchestrator may serve concurrent
// ExecuteContext calls.
type Orchestrator[C, R any] struct {
	// Run executes one cell. Required unless RunCtx is set.
	Run RunFunc[C, R]
	// RunCtx, when non-nil, is preferred over Run and receives the
	// execution context so in-flight cells stop promptly on
	// cancellation.
	RunCtx CtxRunFunc[C, R]

	// Parallel bounds the worker pool; ≤0 means runtime.GOMAXPROCS(0).
	// Parallel=1 is strictly serial in input order.
	Parallel int

	// Cache, when non-nil, memoizes successful results keyed by the
	// canonical encoding of the config (see Cache.Key).
	Cache *Cache
	// Cacheable, when non-nil, exempts configs from the cache — e.g.
	// configs whose results carry non-serializable attachments or whose
	// runs have observable side effects. nil means everything is
	// cacheable when Cache is set.
	Cacheable func(C) bool

	// Retries is the number of extra attempts after a failed execution
	// (transient-failure insurance; deterministic failures simply fail
	// Retries+1 times). Panics inside Run are converted to errors and
	// retried like any other failure.
	Retries int
	// Backoff is the sleep before the first retry, doubling per retry
	// up to MaxBackoff. Defaults: 100ms base, 5s cap.
	Backoff    time.Duration
	MaxBackoff time.Duration

	// SimDuration, when non-nil, reports the simulated time a config
	// covers so telemetry can include simulated-time throughput
	// (simulated seconds per wall second).
	SimDuration func(C) time.Duration

	// Hooks receive telemetry events from every run. Per-run emission
	// is serialized, so a hook used by one run at a time needs no
	// locking; hooks shared across concurrent runs must synchronize.
	Hooks []Hook
}

// runState is the mutable state of one ExecuteContext call, kept off
// the Orchestrator so concurrent runs do not trample each other.
type runState struct {
	mu       sync.Mutex // serializes hook emission and the counters
	hooks    []Hook
	done     int
	cached   int
	failed   int
	canceled int
}

// Execute runs every cell and returns one Outcome per cell in input
// order. A failing cell fails only itself: the rest of the grid still
// runs, and the joined per-cell errors come back alongside the full
// outcome slice so callers can choose between all-or-nothing and
// partial-result handling.
func (o *Orchestrator[C, R]) Execute(cells []Cell[C]) ([]Outcome[R], error) {
	return o.ExecuteContext(context.Background(), cells)
}

// ExecuteContext is Execute under a context: once ctx is done, no new
// cell starts, retry backoffs abort, and — when RunCtx is set —
// in-flight cells are told to stop. Abandoned cells come back with
// ctx's error in their Outcome. extraHooks receive this run's
// telemetry in addition to o.Hooks (per-job streaming, say) without
// mutating the shared orchestrator.
func (o *Orchestrator[C, R]) ExecuteContext(ctx context.Context, cells []Cell[C], extraHooks ...Hook) ([]Outcome[R], error) {
	if o.Run == nil && o.RunCtx == nil {
		return nil, errors.New("exp: Orchestrator.Run and RunCtx are both nil")
	}
	par := o.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(cells) {
		par = len(cells)
	}
	if par < 1 {
		par = 1
	}
	rs := &runState{hooks: append(append([]Hook(nil), o.Hooks...), extraHooks...)}
	rs.emit(Event{Type: EventRunStarted, Total: len(cells), Workers: par})

	out := make([]Outcome[R], len(cells))
	start := time.Now()
	if par == 1 {
		// Strictly serial: no goroutines, no interleaving, the exact
		// reference order parallel execution is measured against.
		for i, c := range cells {
			out[i] = o.runCell(ctx, rs, i, len(cells), c)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i] = o.runCell(ctx, rs, i, len(cells), cells[i])
				}
			}()
		}
		for i := range cells {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var errs []error
	for _, oc := range out {
		if oc.Err != nil {
			errs = append(errs, fmt.Errorf("cell %q: %w", oc.Label, oc.Err))
		}
	}
	rs.mu.Lock()
	done, cached, failed := rs.done, rs.cached, rs.failed
	rs.mu.Unlock()
	rs.emit(Event{
		Type: EventRunFinished, Total: len(cells), Done: done,
		CachedCells: cached, FailedCells: failed, Wall: time.Since(start),
	})
	return out, errors.Join(errs...)
}

// runCell resolves one cell: cancellation check, cache lookup, then
// execution with retries and panic recovery, then cache fill.
func (o *Orchestrator[C, R]) runCell(ctx context.Context, rs *runState, i, total int, c Cell[C]) Outcome[R] {
	out := Outcome[R]{Label: c.Label, Index: i}

	if err := ctx.Err(); err != nil {
		out.Err = err
		rs.count(func() { rs.done++; rs.failed++; rs.canceled++ })
		rs.emit(Event{Type: EventCellCanceled, Label: c.Label, Index: i, Total: total, Err: err.Error()})
		return out
	}

	var key string
	useCache := o.Cache != nil && (o.Cacheable == nil || o.Cacheable(c.Config))
	if useCache {
		k, err := o.Cache.Key(c.Config)
		if err != nil {
			// Unencodable config: run uncached rather than fail the cell.
			useCache = false
		} else {
			key = k
			var v R
			hit, err := o.Cache.Get(key, &v)
			if err == nil && hit {
				out.Value = v
				out.Cached = true
				rs.count(func() { rs.done++; rs.cached++ })
				rs.emit(Event{Type: EventCellCached, Label: c.Label, Index: i, Total: total, Key: key})
				return out
			}
			if errors.Is(err, ErrCorrupt) {
				// The entry was quarantined inside Get; surface the event
				// so operators can count corruption instead of it hiding
				// as an ordinary miss.
				rs.emit(Event{Type: EventCacheCorrupt, Label: c.Label, Index: i, Total: total, Key: key, Err: err.Error()})
			}
			// A corrupt or unreadable entry is a miss: re-run and rewrite.
		}
	}

	start := time.Now()
	rs.emit(Event{Type: EventCellStarted, Label: c.Label, Index: i, Total: total})
	backoff := o.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := o.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	attempts := o.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	canceled := false
	for a := 1; a <= attempts; a++ {
		out.Attempts = a
		v, err := o.runRecovered(ctx, c.Config)
		if err == nil {
			out.Value, out.Err = v, nil
			break
		}
		out.Err = err
		if cerr := ctx.Err(); cerr != nil {
			// A failure during teardown is a cancellation, not a cell
			// bug: don't burn retries racing a dying context, and let
			// callers match on the context error.
			out.Err = fmt.Errorf("%w (attempt %d: %v)", cerr, a, err)
			canceled = true
			break
		}
		if a < attempts {
			rs.emit(Event{
				Type: EventCellRetried, Label: c.Label, Index: i, Total: total,
				Attempt: a, Err: err.Error(),
			})
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				out.Err = ctx.Err()
				canceled = true
			}
			if canceled {
				break
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
	out.Wall = time.Since(start)

	if out.Err == nil && useCache {
		// Serving future runs is best-effort; a full disk or an
		// unencodable result must not fail a finished cell.
		_ = o.Cache.Put(key, out.Value)
	}

	if canceled {
		rs.count(func() { rs.done++; rs.failed++; rs.canceled++ })
		rs.emit(Event{
			Type: EventCellCanceled, Label: c.Label, Index: i, Total: total,
			Attempt: out.Attempts, Wall: out.Wall, Err: out.Err.Error(),
		})
		return out
	}

	ev := Event{
		Type: EventCellFinished, Label: c.Label, Index: i, Total: total,
		Attempt: out.Attempts, Wall: out.Wall,
	}
	if o.SimDuration != nil {
		ev.Sim = o.SimDuration(c.Config)
		if out.Wall > 0 {
			ev.Throughput = ev.Sim.Seconds() / out.Wall.Seconds()
		}
	}
	if out.Err != nil {
		ev.Err = out.Err.Error()
		rs.count(func() { rs.done++; rs.failed++ })
	} else {
		rs.count(func() { rs.done++ })
	}
	rs.emit(ev)
	return out
}

// count mutates the progress counters under the telemetry lock.
func (rs *runState) count(f func()) {
	rs.mu.Lock()
	f()
	rs.mu.Unlock()
}

// emit fans one event out to every hook, serialized so hooks observe a
// consistent ordering even under parallel workers. The progress
// counters are attached to every event.
func (rs *runState) emit(ev Event) {
	if len(rs.hooks) == 0 {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	ev.Done, ev.CachedCells, ev.FailedCells = rs.done, rs.cached, rs.failed
	for _, h := range rs.hooks {
		h.Emit(ev)
	}
}

// runRecovered executes one attempt through RunCtx (preferred) or Run,
// converting a panic into an error so one bad cell cannot take down the
// whole sweep.
func (o *Orchestrator[C, R]) runRecovered(ctx context.Context, cfg C) (v R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: cell panicked: %v\n%s", p, debug.Stack())
		}
	}()
	if o.RunCtx != nil {
		return o.RunCtx(ctx, cfg)
	}
	return o.Run(cfg)
}

package exp

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeCfg/fakeRes stand in for core.Config/core.Result: pure data,
// JSON-encodable, deterministic to compute.
type fakeCfg struct {
	Seed  int64
	Nodes int
}

type fakeRes struct {
	Score float64
	Tag   string
}

func fakeRun(c fakeCfg) (fakeRes, error) {
	return fakeRes{Score: float64(c.Seed) * float64(c.Nodes), Tag: fmt.Sprintf("s%d/n%d", c.Seed, c.Nodes)}, nil
}

func grid(n int) []Cell[fakeCfg] {
	cells := make([]Cell[fakeCfg], n)
	for i := range cells {
		cells[i] = Cell[fakeCfg]{
			Label:  fmt.Sprintf("cell%d", i),
			Config: fakeCfg{Seed: int64(i + 1), Nodes: 10 * (i + 1)},
		}
	}
	return cells
}

func TestExecuteStableOrder(t *testing.T) {
	cells := grid(17)
	// Make completion order scramble: later cells finish first.
	run := func(c fakeCfg) (fakeRes, error) {
		time.Sleep(time.Duration(20-c.Seed) * time.Millisecond)
		return fakeRun(c)
	}
	o := &Orchestrator[fakeCfg, fakeRes]{Run: run, Parallel: 8}
	out, err := o.Execute(cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range out {
		want, _ := fakeRun(cells[i].Config)
		if oc.Index != i || oc.Value != want || oc.Label != cells[i].Label {
			t.Fatalf("slot %d holds %+v, want %+v", i, oc, want)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	cells := grid(12)
	serialO := &Orchestrator[fakeCfg, fakeRes]{Run: fakeRun, Parallel: 1}
	serial, err := serialO.Execute(cells)
	if err != nil {
		t.Fatal(err)
	}
	parO := &Orchestrator[fakeCfg, fakeRes]{Run: fakeRun, Parallel: 4}
	par, err := parO.Execute(cells)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock time is the one legitimately nondeterministic field.
	for i := range serial {
		serial[i].Wall, par[i].Wall = 0, 0
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel execution diverged from serial:\n%+v\nvs\n%+v", par, serial)
	}
}

func TestOneBadCellFailsOnlyItself(t *testing.T) {
	cells := grid(6)
	run := func(c fakeCfg) (fakeRes, error) {
		switch c.Seed {
		case 3:
			return fakeRes{}, errors.New("transceiver on fire")
		case 5:
			panic("event heap corrupted")
		}
		return fakeRun(c)
	}
	o := &Orchestrator[fakeCfg, fakeRes]{Run: run, Parallel: 3}
	out, err := o.Execute(cells)
	if err == nil {
		t.Fatal("want joined error for the failed cells")
	}
	if !strings.Contains(err.Error(), "transceiver on fire") || !strings.Contains(err.Error(), "event heap corrupted") {
		t.Fatalf("joined error missing cell failures: %v", err)
	}
	for i, oc := range out {
		switch i {
		case 2:
			if oc.Err == nil {
				t.Fatalf("cell %d should have failed", i)
			}
		case 4:
			if oc.Err == nil || !strings.Contains(oc.Err.Error(), "panicked") {
				t.Fatalf("cell %d panic not converted to error: %v", i, oc.Err)
			}
		default:
			if oc.Err != nil {
				t.Fatalf("healthy cell %d failed: %v", i, oc.Err)
			}
			want, _ := fakeRun(cells[i].Config)
			if oc.Value != want {
				t.Fatalf("cell %d value %+v, want %+v", i, oc.Value, want)
			}
		}
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	var calls atomic.Int64
	run := func(c fakeCfg) (fakeRes, error) {
		if calls.Add(1) < 3 {
			return fakeRes{}, errors.New("transient")
		}
		return fakeRun(c)
	}
	o := &Orchestrator[fakeCfg, fakeRes]{
		Run: run, Parallel: 1, Retries: 3,
		Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	}
	out, err := o.Execute(grid(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", out[0].Attempts)
	}
	if out[0].Err != nil {
		t.Fatalf("cell should have recovered: %v", out[0].Err)
	}
}

func TestCacheServesSecondRun(t *testing.T) {
	cache, err := Open(t.TempDir() + "/cache")
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	run := func(c fakeCfg) (fakeRes, error) {
		calls.Add(1)
		return fakeRun(c)
	}
	cells := grid(9)
	mk := func() *Orchestrator[fakeCfg, fakeRes] {
		return &Orchestrator[fakeCfg, fakeRes]{Run: run, Parallel: 3, Cache: cache}
	}

	first, err := mk().Execute(cells)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(cells)) {
		t.Fatalf("first run executed %d cells, want %d", got, len(cells))
	}
	if n, err := cache.Len(); err != nil || n != len(cells) {
		t.Fatalf("cache holds %d entries (err=%v), want %d", n, err, len(cells))
	}

	second, err := mk().Execute(cells)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(cells)) {
		t.Fatalf("second run executed %d more cells, want 0", got-int64(len(cells)))
	}
	for i := range second {
		if !second[i].Cached {
			t.Fatalf("cell %d not served from cache", i)
		}
		if second[i].Value != first[i].Value {
			t.Fatalf("cached value diverged at %d: %+v vs %+v", i, second[i].Value, first[i].Value)
		}
	}
}

func TestCacheableExemption(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	run := func(c fakeCfg) (fakeRes, error) {
		calls.Add(1)
		return fakeRun(c)
	}
	o := &Orchestrator[fakeCfg, fakeRes]{
		Run: run, Parallel: 1, Cache: cache,
		Cacheable: func(c fakeCfg) bool { return c.Seed%2 == 0 },
	}
	cells := grid(4) // seeds 1..4: two cacheable, two exempt
	if _, err := o.Execute(cells); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Execute(cells); err != nil {
		t.Fatal(err)
	}
	// 4 + 2: the exempt (odd-seed) cells re-execute on the second run.
	if got := calls.Load(); got != 6 {
		t.Fatalf("calls = %d, want 6", got)
	}
}

func TestCacheKeyStability(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := cache.Key(fakeCfg{Seed: 7, Nodes: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.Key(fakeCfg{Seed: 7, Nodes: 50})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("equal configs produced different keys: %s vs %s", a, b)
	}
	c, err := cache.Key(fakeCfg{Seed: 7, Nodes: 51})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different configs collided")
	}
	if _, err := cache.Key(struct{ F func() }{}); err == nil {
		t.Fatal("unencodable config should not produce a key")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, err := cache.Key(fakeCfg{Seed: 1, Nodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Put(key, fakeRes{Score: 1}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry on disk, then make sure the orchestrator
	// re-executes instead of failing or serving garbage.
	if err := corrupt(cache, key); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	o := &Orchestrator[fakeCfg, fakeRes]{
		Run: func(c fakeCfg) (fakeRes, error) {
			calls.Add(1)
			return fakeRun(c)
		},
		Cache: cache,
	}
	out, err := o.Execute([]Cell[fakeCfg]{{Label: "x", Config: fakeCfg{Seed: 1, Nodes: 10}}})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 || out[0].Cached {
		t.Fatalf("corrupt entry not treated as miss: calls=%d cached=%v", calls.Load(), out[0].Cached)
	}
}

func corrupt(c *Cache, key string) error {
	return os.WriteFile(c.path(key), []byte("not json{"), 0o644)
}

func TestTelemetryEvents(t *testing.T) {
	var (
		mu  sync.Mutex
		got []Event
	)
	hook := hookFunc(func(ev Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := &Orchestrator[fakeCfg, fakeRes]{
		Run: fakeRun, Parallel: 2, Cache: cache,
		SimDuration: func(fakeCfg) time.Duration { return 30 * time.Second },
		Hooks:       []Hook{hook},
	}
	cells := grid(3)
	if _, err := o.Execute(cells); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Execute(cells); err != nil { // all cached
		t.Fatal(err)
	}
	counts := map[EventType]int{}
	for _, ev := range got {
		counts[ev.Type]++
	}
	want := map[EventType]int{
		EventRunStarted:   2,
		EventRunFinished:  2,
		EventCellStarted:  3,
		EventCellFinished: 3,
		EventCellCached:   3,
	}
	for ty, n := range want {
		if counts[ty] != n {
			t.Fatalf("%s events = %d, want %d (all: %v)", ty, counts[ty], n, counts)
		}
	}
	for _, ev := range got {
		if ev.Type == EventCellFinished && ev.Sim != 30*time.Second {
			t.Fatalf("finished event missing sim duration: %+v", ev)
		}
	}
}

type hookFunc func(Event)

func (f hookFunc) Emit(ev Event) { f(ev) }

func TestProgressAndJSONLWriters(t *testing.T) {
	var pb, jb bytes.Buffer
	o := &Orchestrator[fakeCfg, fakeRes]{
		Run: fakeRun, Parallel: 1,
		Hooks: []Hook{NewProgress(&pb), NewJSONL(&jb)},
	}
	if _, err := o.Execute(grid(2)); err != nil {
		t.Fatal(err)
	}
	text := pb.String()
	if !strings.Contains(text, "2 cells") || !strings.Contains(text, "run finished") {
		t.Fatalf("progress output incomplete:\n%s", text)
	}
	lines := strings.Split(strings.TrimSpace(jb.String()), "\n")
	// run-started + 2×(started+finished) + run-finished = 6 lines.
	if len(lines) != 6 {
		t.Fatalf("jsonl lines = %d, want 6:\n%s", len(lines), jb.String())
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, `{"type":`) {
			t.Fatalf("not a JSON event line: %s", ln)
		}
	}
}

package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// SchemaVersion is mixed into every cache key. Bump it whenever the
// meaning of a config or result changes — a new simulator behavior, a
// renamed metric, a different default — so stale entries become silent
// misses instead of wrong answers.
const SchemaVersion = 3

// DefaultCacheDir is the conventional on-disk location tools use for
// the result cache (git-ignored).
const DefaultCacheDir = ".expcache"

// Cache is a content-addressed result store: key = SHA-256 over the
// schema version and the canonical encoding of a config, value = the
// result as JSON. Entries live under dir as
// <dir>/<key[:2]>/<key>.json, sharded by the first byte of the key to
// keep directories small. Writes are atomic (temp file + rename), so a
// cache shared by concurrent workers — or concurrent processes — never
// serves a torn entry.
type Cache struct {
	dir string
}

// Open prepares a cache rooted at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		dir = DefaultCacheDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir reports the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Key derives the content address of a config: SHA-256 over the schema
// version and the config's canonical encoding. Canonical here is Go's
// deterministic JSON — struct fields in declaration order, map keys
// sorted — so two equal configs always collide and any changed field
// produces a fresh key. Configs that cannot be encoded (function
// fields, channels) return an error; callers should treat those as
// uncacheable rather than fatal.
func (c *Cache) Key(cfg any) (string, error) { return KeyOf(cfg) }

// KeyOf is Cache.Key without a cache handle: the same schema-versioned
// content address, usable wherever a deterministic identity for a
// config-shaped value is needed (the serve daemon derives job IDs from
// it so identical submissions dedupe to the same job).
func KeyOf(cfg any) (string, error) {
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("exp: cache key: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "exp-schema-v%d\n", SchemaVersion)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Get loads the entry for key into out. The boolean reports a hit; a
// missing entry is (false, nil). A corrupt entry is (false, err) so the
// caller can fall back to executing the cell.
func (c *Cache) Get(key string, out any) (bool, error) {
	b, err := os.ReadFile(c.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := json.Unmarshal(b, out); err != nil {
		return false, fmt.Errorf("exp: corrupt cache entry %s: %w", key, err)
	}
	return true, nil
}

// Put stores v under key atomically.
func (c *Cache) Put(key string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("exp: cache encode: %w", err)
	}
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+filepath.Base(p)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// Len counts stored entries, for tests and diagnostics.
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}

// Prune evicts stale cache entries: everything whose file modification
// time is older than maxAge, and — when the survivors still exceed
// maxEntries — the oldest survivors beyond that bound. A zero (or
// negative) limit disables that dimension, so Prune(0, 0) is a no-op.
// It returns how many entries were removed. Removal is best-effort and
// safe against concurrent readers/writers: a concurrently re-written
// entry that disappears under us is simply skipped, and a concurrent
// Get of a pruned key is an ordinary miss.
func (c *Cache) Prune(maxEntries int, maxAge time.Duration) (int, error) {
	if maxEntries <= 0 && maxAge <= 0 {
		return 0, nil
	}
	type entry struct {
		path string
		mod  time.Time
	}
	var entries []entry
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() || filepath.Ext(path) != ".json" {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent rewrite; skip
		}
		entries = append(entries, entry{path: path, mod: info.ModTime()})
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("exp: prune cache: %w", err)
	}

	pruned := 0
	remove := func(e entry) {
		if os.Remove(e.path) == nil {
			pruned++
		}
	}
	if maxAge > 0 {
		cutoff := time.Now().Add(-maxAge)
		kept := entries[:0]
		for _, e := range entries {
			if e.mod.Before(cutoff) {
				remove(e)
			} else {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	if maxEntries > 0 && len(entries) > maxEntries {
		sort.Slice(entries, func(i, j int) bool { return entries[i].mod.Before(entries[j].mod) })
		for _, e := range entries[:len(entries)-maxEntries] {
			remove(e)
		}
	}
	// Empty shard directories are harmless; sweep them opportunistically.
	if dirs, err := os.ReadDir(c.dir); err == nil {
		for _, d := range dirs {
			if d.IsDir() {
				_ = os.Remove(filepath.Join(c.dir, d.Name())) // fails unless empty
			}
		}
	}
	return pruned, nil
}

// path maps a key to its sharded on-disk location.
func (c *Cache) path(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(c.dir, shard, key+".json")
}

package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"anongeo/internal/durable"
)

// SchemaVersion is mixed into every cache key. Bump it whenever the
// meaning of a config or result changes — a new simulator behavior, a
// renamed metric, a different default — so stale entries become silent
// misses instead of wrong answers. v4: entries carry a CRC-32 integrity
// footer and are fsynced on write. v5: the cache also stores internal/lbs
// cells (Config → Result), whose configs could otherwise collide with
// older encodings.
const SchemaVersion = 5

// DefaultCacheDir is the conventional on-disk location tools use for
// the result cache (git-ignored).
const DefaultCacheDir = ".expcache"

// ErrCorrupt marks a cache entry that failed its integrity check — a
// torn write, a flipped bit, or a wrong-format file. Callers see it
// wrapped in Get's error; the entry itself has already been quarantined
// and will read as a miss from then on.
var ErrCorrupt = errors.New("exp: corrupt cache entry")

// corruptDirName is the quarantine subdirectory under the cache root.
// Entries that fail validation are moved (not deleted) there so a
// corruption burst stays diagnosable after the fact.
const corruptDirName = "corrupt"

// Entry footer: payload bytes followed by "\nexpsum1 %08x\n" where the
// hex field is CRC-32 (IEEE) of the payload. Fixed length, so the
// payload boundary is recoverable without parsing JSON; any truncation
// or bit-flip of payload or footer fails validation.
const (
	footerMagic = "\nexpsum1 "
	footerLen   = len(footerMagic) + 8 + 1
)

// Cache is a content-addressed result store: key = SHA-256 over the
// schema version and the canonical encoding of a config, value = the
// result as JSON plus a CRC-32 footer. Entries live under dir as
// <dir>/<key[:2]>/<key>.json, sharded by the first byte of the key to
// keep directories small.
//
// Durability: writes are atomic and fsynced (temp file + fsync + rename
// + directory fsync via durable.WriteFileAtomic), so a crash — even
// SIGKILL or power loss mid-write — leaves either no entry or a whole
// one. Reads validate the footer checksum; anything torn or bit-rotted
// is quarantined under <dir>/corrupt/ and reported as a miss, never
// served as data.
type Cache struct {
	dir string

	// Grace protects freshly written entries from Prune, shielding
	// concurrent writers from having a just-committed entry evicted out
	// from under them. Zero means the 30s default; negative disables the
	// shield (tests).
	Grace time.Duration

	quarantined atomic.Int64
}

// defaultPruneGrace is the Prune grace window when Cache.Grace is zero.
const defaultPruneGrace = 30 * time.Second

// Open prepares a cache rooted at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		dir = DefaultCacheDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir reports the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Quarantined reports how many corrupt entries this handle has moved to
// the quarantine directory — the counter behind the daemon's
// quarantined-entries metric.
func (c *Cache) Quarantined() int64 { return c.quarantined.Load() }

// Key derives the content address of a config: SHA-256 over the schema
// version and the config's canonical encoding. Canonical here is Go's
// deterministic JSON — struct fields in declaration order, map keys
// sorted — so two equal configs always collide and any changed field
// produces a fresh key. Configs that cannot be encoded (function
// fields, channels) return an error; callers should treat those as
// uncacheable rather than fatal.
func (c *Cache) Key(cfg any) (string, error) { return KeyOf(cfg) }

// KeyOf is Cache.Key without a cache handle: the same schema-versioned
// content address, usable wherever a deterministic identity for a
// config-shaped value is needed (the serve daemon derives job IDs from
// it so identical submissions dedupe to the same job).
func KeyOf(cfg any) (string, error) {
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("exp: cache key: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "exp-schema-v%d\n", SchemaVersion)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Get loads the entry for key into out. The boolean reports a hit; a
// missing entry is (false, nil). An entry that fails its integrity
// check is quarantined and returned as (false, err) with err wrapping
// ErrCorrupt — a miss the caller may additionally count or log, but
// never data.
func (c *Cache) Get(key string, out any) (bool, error) {
	p := c.path(key)
	b, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	payload, ok := splitFooter(b)
	if !ok {
		c.quarantine(p)
		return false, fmt.Errorf("%w: %s: bad or missing checksum footer", ErrCorrupt, key)
	}
	if err := json.Unmarshal(payload, out); err != nil {
		// Checksum passed but the JSON does not decode into the caller's
		// type: a schema drift the version bump should have caught.
		// Quarantine rather than trust it.
		c.quarantine(p)
		return false, fmt.Errorf("%w: %s: %v", ErrCorrupt, key, err)
	}
	return true, nil
}

// splitFooter validates b's integrity footer and returns the payload.
func splitFooter(b []byte) ([]byte, bool) {
	if len(b) < footerLen {
		return nil, false
	}
	payload, foot := b[:len(b)-footerLen], b[len(b)-footerLen:]
	if string(foot[:len(footerMagic)]) != footerMagic || foot[footerLen-1] != '\n' {
		return nil, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(foot[len(footerMagic):footerLen-1]), "%08x", &sum); err != nil {
		return nil, false
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, false
	}
	return payload, true
}

// quarantine moves a failed entry under <dir>/corrupt/ (falling back to
// deletion if the move fails) so it reads as a miss from now on while
// staying available for a post-mortem. Best-effort by design: the read
// path must not fail because quarantine did.
func (c *Cache) quarantine(path string) {
	qdir := filepath.Join(c.dir, corruptDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil || os.Rename(path, filepath.Join(qdir, filepath.Base(path))) != nil {
		_ = os.Remove(path)
	}
	c.quarantined.Add(1)
}

// Put stores v under key durably: payload + CRC footer, written
// atomically and fsynced (file and directory). A concurrent or crashed
// writer can therefore never leave a partial entry where Get would find
// it.
func (c *Cache) Put(key string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("exp: cache encode: %w", err)
	}
	p := c.path(key)
	shard := filepath.Dir(p)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return err
	}
	buf := make([]byte, 0, len(payload)+footerLen)
	buf = append(buf, payload...)
	buf = append(buf, fmt.Sprintf("%s%08x\n", footerMagic, crc32.ChecksumIEEE(payload))...)
	return durable.WriteFileAtomic(p, buf)
}

// Len counts stored entries, for tests and diagnostics. Quarantined
// entries are not stored entries and are excluded.
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			if d.Name() == corruptDirName {
				return filepath.SkipDir
			}
			return nil
		}
		if filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}

// Prune evicts stale cache entries: everything whose file modification
// time is older than maxAge, and — when the survivors still exceed
// maxEntries — the oldest survivors beyond that bound. A zero (or
// negative) limit disables that dimension, so Prune(0, 0) is a no-op.
// It returns how many entries were removed.
//
// Prune is safe against concurrent readers and writers: an entry that
// disappears or is rewritten mid-walk is skipped (each candidate is
// re-stated immediately before removal), a concurrent Get of a pruned
// key is an ordinary miss, and no entry younger than the grace window
// (Cache.Grace, default 30s) is ever removed — so a writer's
// just-committed result cannot be evicted before the writer's own run
// finishes reading it. Quarantined entries age out under maxAge too.
func (c *Cache) Prune(maxEntries int, maxAge time.Duration) (int, error) {
	if maxEntries <= 0 && maxAge <= 0 {
		return 0, nil
	}
	grace := c.Grace
	if grace == 0 {
		grace = defaultPruneGrace
	}
	type entry struct {
		path string
		mod  time.Time
	}
	var entries, corrupt []entry
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil // raced a concurrent prune/quarantine; skip
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent rewrite; skip
		}
		e := entry{path: path, mod: info.ModTime()}
		if filepath.Base(filepath.Dir(path)) == corruptDirName {
			corrupt = append(corrupt, e)
		} else if filepath.Ext(path) == ".json" {
			entries = append(entries, e)
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("exp: prune cache: %w", err)
	}

	now := time.Now()
	pruned := 0
	// remove deletes e unless a re-stat shows it vanished, was rewritten
	// since the walk, or is inside the grace window.
	remove := func(e entry) {
		st, err := os.Stat(e.path)
		if err != nil || !st.ModTime().Equal(e.mod) {
			return // gone, or rewritten by a concurrent Put — keep the new one
		}
		if grace > 0 && now.Sub(st.ModTime()) < grace {
			return
		}
		if os.Remove(e.path) == nil {
			pruned++
		}
	}
	if maxAge > 0 {
		cutoff := now.Add(-maxAge)
		kept := entries[:0]
		for _, e := range entries {
			if e.mod.Before(cutoff) {
				remove(e)
			} else {
				kept = append(kept, e)
			}
		}
		entries = kept
		for _, e := range corrupt {
			if e.mod.Before(cutoff) {
				remove(e)
			}
		}
	}
	if maxEntries > 0 && len(entries) > maxEntries {
		sort.Slice(entries, func(i, j int) bool { return entries[i].mod.Before(entries[j].mod) })
		for _, e := range entries[:len(entries)-maxEntries] {
			remove(e)
		}
	}
	// Empty shard directories are harmless; sweep them opportunistically.
	if dirs, err := os.ReadDir(c.dir); err == nil {
		for _, d := range dirs {
			if d.IsDir() && d.Name() != corruptDirName {
				_ = os.Remove(filepath.Join(c.dir, d.Name())) // fails unless empty
			}
		}
	}
	return pruned, nil
}

// path maps a key to its sharded on-disk location.
func (c *Cache) path(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(c.dir, shard, key+".json")
}

package exp

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tornRes is a result shape with enough structure that a corrupted
// entry decoding "successfully" by luck would still be caught by the
// deep-equal assertions.
type tornRes struct {
	Score float64
	Label string
	Hist  []int
}

func mustKey(t *testing.T, c *Cache, cfg any) string {
	t.Helper()
	k, err := c.Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCacheEntryHasChecksumFooter(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, c, fakeCfg{Seed: 9, Nodes: 3})
	want := tornRes{Score: 1.5, Label: "x", Hist: []int{1, 2, 3}}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if payload, ok := splitFooter(raw); !ok {
		t.Fatal("stored entry has no valid checksum footer")
	} else if !bytes.Contains(payload, []byte(`"Score"`)) {
		t.Fatalf("payload does not look like the stored JSON: %q", payload)
	}
	var got tornRes
	hit, err := c.Get(key, &got)
	if err != nil || !hit || !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip: hit=%v err=%v got=%+v want=%+v", hit, err, got, want)
	}
}

func TestCacheCorruptEntryQuarantined(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, c, fakeCfg{Seed: 1, Nodes: 10})
	if err := c.Put(key, tornRes{Score: 2}); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit: checksum must catch it.
	p := c.path(key)
	raw, _ := os.ReadFile(p)
	raw[2] ^= 0x04
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var got tornRes
	hit, err := c.Get(key, &got)
	if hit {
		t.Fatal("bit-flipped entry served as a hit")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get err = %v, want ErrCorrupt", err)
	}
	if n := c.Quarantined(); n != 1 {
		t.Fatalf("Quarantined() = %d, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(c.Dir(), corruptDirName, filepath.Base(p))); err != nil {
		t.Fatalf("corrupt entry not moved to quarantine: %v", err)
	}
	// Once quarantined, the key reads as a clean miss and can be
	// rewritten.
	hit, err = c.Get(key, &got)
	if hit || err != nil {
		t.Fatalf("post-quarantine Get = %v, %v; want clean miss", hit, err)
	}
	if err := c.Put(key, tornRes{Score: 2}); err != nil {
		t.Fatal(err)
	}
	hit, err = c.Get(key, &got)
	if !hit || err != nil || got.Score != 2 {
		t.Fatalf("rewrite after quarantine: hit=%v err=%v got=%+v", hit, err, got)
	}
	// Quarantined entries do not count as stored entries.
	if n, _ := c.Len(); n != 1 {
		t.Fatalf("Len() = %d, want 1", n)
	}
}

func TestCacheTruncatedEntryIsMiss(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, c, fakeCfg{Seed: 2, Nodes: 4})
	if err := c.Put(key, tornRes{Score: 3, Hist: []int{9, 8}}); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(c.path(key))
	for _, cut := range []int{0, 1, len(full) / 2, len(full) - footerLen, len(full) - 1} {
		if err := c.Put(key, tornRes{Score: 3, Hist: []int{9, 8}}); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(c.path(key), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got tornRes
		hit, err := c.Get(key, &got)
		if hit {
			t.Fatalf("truncation at %d served as a hit", cut)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestPruneGraceProtectsFreshEntries(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Put(mustKey(t, c, map[string]int{"cell": i}), i); err != nil {
			t.Fatal(err)
		}
	}
	// Entries were written milliseconds ago: maxAge says evict
	// everything, the grace window (default 30s) says hands off.
	n, err := c.Prune(0, time.Nanosecond)
	if err != nil || n != 0 {
		t.Fatalf("Prune inside grace = %d, %v; want 0, nil", n, err)
	}
	if got, _ := c.Len(); got != 4 {
		t.Fatalf("entries after graced prune = %d, want 4", got)
	}
	// Count-based eviction respects the same shield.
	if n, _ := c.Prune(1, 0); n != 0 {
		t.Fatalf("count prune inside grace removed %d entries", n)
	}
	// Disabling the grace (tests only) lets the same prune proceed.
	c.Grace = -1
	time.Sleep(5 * time.Millisecond) // ensure mod times are strictly past the cutoff
	n, err = c.Prune(0, time.Nanosecond)
	if err != nil || n != 4 {
		t.Fatalf("Prune with grace disabled = %d, %v; want 4, nil", n, err)
	}
}

func TestPruneConcurrentWithWriters(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writes atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				key, err := c.Key(map[string]int{"writer": w, "i": i % 16})
				if err != nil {
					t.Error(err)
					return
				}
				if err := c.Put(key, i); err != nil {
					t.Errorf("Put under prune: %v", err)
					return
				}
				var v int
				if _, err := c.Get(key, &v); err != nil {
					t.Errorf("Get under prune: %v", err)
					return
				}
				writes.Add(1)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}
	// Hammer Prune against the writers with an aggressive policy; the
	// grace window must keep live entries safe and the walk must
	// tolerate every rename/remove race without erroring. Each writer is
	// guaranteed at least one committed entry before its first stop
	// check, and the prune loop only starts once writes are flowing.
	for writes.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		if _, err := c.Prune(1, time.Nanosecond); err != nil {
			t.Fatalf("Prune raced a writer into an error: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	// Everything the writers committed within the grace window must
	// still be readable.
	if n, _ := c.Len(); n == 0 {
		t.Fatal("prune evicted entries inside the grace window")
	}
}

// FuzzCacheTornWrite is the torn-write fuzz for cache entries: any
// truncation and/or bit-flip of a stored entry must read back as a miss
// (with the entry quarantined), never as corrupt data and never as a
// panic. The identity mutation must still hit with the exact original
// value.
func FuzzCacheTornWrite(f *testing.F) {
	f.Add(uint16(0), byte(0))
	f.Add(uint16(3), byte(0x01))
	f.Add(uint16(40), byte(0x80))
	f.Add(uint16(9999), byte(0xFF))
	f.Fuzz(func(t *testing.T, pos uint16, mask byte) {
		c, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		key, err := c.Key(fakeCfg{Seed: 7, Nodes: 42})
		if err != nil {
			t.Fatal(err)
		}
		want := tornRes{Score: 0.125, Label: "fuzz", Hist: []int{3, 1, 4, 1, 5}}
		if err := c.Put(key, want); err != nil {
			t.Fatal(err)
		}
		p := c.path(key)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}

		// Mutate: flip bits at pos (when mask != 0 and in range), then
		// truncate at pos when pos lands inside the file.
		identity := true
		if mask != 0 && int(pos) < len(b) {
			b[pos] ^= mask
			identity = false
		}
		if int(pos) < len(b) && mask == 0 {
			b = b[:pos]
			identity = false
		}
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}

		var got tornRes
		hit, err := c.Get(key, &got)
		if identity {
			if !hit || err != nil || !reflect.DeepEqual(got, want) {
				t.Fatalf("identity mutation: hit=%v err=%v got=%+v", hit, err, got)
			}
			return
		}
		if hit {
			// A hit after mutation is only acceptable when the decoded
			// value is exactly the original (e.g. a flip confined to
			// JSON whitespace cannot happen here, but be strict anyway).
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("mutated entry served as a hit with corrupt data: %+v", got)
			}
			return
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mutated entry: err = %v, want nil or ErrCorrupt", err)
		}
		if err != nil {
			// Quarantined: the key must now be a clean, rewritable miss.
			if hit, err := c.Get(key, &got); hit || err != nil {
				t.Fatalf("post-quarantine Get = %v, %v; want clean miss", hit, err)
			}
			if err := c.Put(key, want); err != nil {
				t.Fatalf("rewrite after quarantine: %v", err)
			}
			if hit, err := c.Get(key, &got); !hit || err != nil || !reflect.DeepEqual(got, want) {
				t.Fatalf("re-read after rewrite: hit=%v err=%v got=%+v", hit, err, got)
			}
		}
	})
}

// corruptResult is used by the orchestrator-level corruption test.
func TestOrchestratorEmitsCacheCorruptEvent(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fakeCfg{Seed: 1, Nodes: 10}
	key := mustKey(t, c, cfg)
	if err := c.Put(key, fakeRes{Score: 1}); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(c.path(key))
	raw[1] ^= 0x10
	os.WriteFile(c.path(key), raw, 0o644)

	var mu sync.Mutex
	var corruptEvents []Event
	hook := hookFunc(func(ev Event) {
		if ev.Type == EventCacheCorrupt {
			mu.Lock()
			corruptEvents = append(corruptEvents, ev)
			mu.Unlock()
		}
	})
	o := &Orchestrator[fakeCfg, fakeRes]{
		Run:   fakeRun,
		Cache: c,
		Hooks: []Hook{hook},
	}
	out, err := o.Execute([]Cell[fakeCfg]{{Label: "x", Config: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Cached {
		t.Fatal("corrupt entry served as a cache hit")
	}
	if len(corruptEvents) != 1 || corruptEvents[0].Key != key {
		t.Fatalf("cache-corrupt events = %+v, want exactly one for key %s", corruptEvents, key)
	}
	if c.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want 1", c.Quarantined())
	}
}

package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// EventType names a telemetry event.
type EventType string

// The orchestrator's event vocabulary.
const (
	// EventRunStarted opens a grid: Total cells on Workers workers.
	EventRunStarted EventType = "run-started"
	// EventRunFinished closes a grid with final counters and wall time.
	EventRunFinished EventType = "run-finished"
	// EventCellStarted marks a cell beginning execution (not emitted
	// for cache hits).
	EventCellStarted EventType = "cell-started"
	// EventCellFinished marks a cell's last attempt completing, with
	// wall time, simulated-time throughput, and the error if it failed.
	EventCellFinished EventType = "cell-finished"
	// EventCellCached marks a cell served from the result cache.
	EventCellCached EventType = "cell-cached"
	// EventCellRetried marks a failed attempt that will be retried.
	EventCellRetried EventType = "cell-retried"
	// EventCellCanceled marks a cell abandoned because the run's
	// context was canceled — either before it started (Attempt 0) or
	// mid-execution.
	EventCellCanceled EventType = "cell-canceled"
	// EventCacheCorrupt marks a cache entry that failed its integrity
	// check during a cell's lookup: the entry was quarantined and the
	// cell re-executes as an ordinary miss.
	EventCacheCorrupt EventType = "cache-corrupt"
)

// Event is one telemetry record. Zero-valued fields are meaningless for
// a given type and omitted from JSON.
type Event struct {
	Type  EventType `json:"type"`
	Label string    `json:"label,omitempty"`
	// Index is the cell's position in input order.
	Index int `json:"index"`
	Total int `json:"total,omitempty"`
	// Workers is the pool width (run-started only).
	Workers int `json:"workers,omitempty"`
	// Attempt is the 1-based execution attempt.
	Attempt int `json:"attempt,omitempty"`
	// Key is the cache key (cell-cached only).
	Key string `json:"key,omitempty"`
	// Wall is execution wall-clock time.
	Wall time.Duration `json:"wall_ns,omitempty"`
	// Sim is the simulated time the cell covers, when known.
	Sim time.Duration `json:"sim_ns,omitempty"`
	// Throughput is simulated seconds per wall-clock second.
	Throughput float64 `json:"sim_per_wall,omitempty"`
	Err        string  `json:"error,omitempty"`
	// Running progress counters, attached to every event.
	Done        int `json:"done"`
	CachedCells int `json:"cached,omitempty"`
	FailedCells int `json:"failed,omitempty"`
}

// Hook receives telemetry events. The orchestrator serializes Emit
// calls, so implementations only need internal locking when one hook
// instance is shared across orchestrators.
type Hook interface {
	Emit(Event)
}

// Progress is the default human-facing reporter: one line per
// completed cell (and per retry) to a writer, typically stderr.
type Progress struct {
	W io.Writer
}

// NewProgress returns a progress reporter writing to w.
func NewProgress(w io.Writer) *Progress { return &Progress{W: w} }

// Emit implements Hook.
func (p *Progress) Emit(ev Event) {
	switch ev.Type {
	case EventRunStarted:
		fmt.Fprintf(p.W, "exp: %d cells on %d workers\n", ev.Total, ev.Workers)
	case EventCellCached:
		fmt.Fprintf(p.W, "exp: [%d/%d] %s cached\n", ev.Done, ev.Total, ev.Label)
	case EventCellRetried:
		fmt.Fprintf(p.W, "exp: %s attempt %d failed, retrying: %s\n", ev.Label, ev.Attempt, ev.Err)
	case EventCellCanceled:
		fmt.Fprintf(p.W, "exp: [%d/%d] %s canceled: %s\n", ev.Done, ev.Total, ev.Label, ev.Err)
	case EventCellFinished:
		if ev.Err != "" {
			fmt.Fprintf(p.W, "exp: [%d/%d] %s FAILED after %d attempt(s): %s\n",
				ev.Done, ev.Total, ev.Label, ev.Attempt, ev.Err)
			return
		}
		line := fmt.Sprintf("exp: [%d/%d] %s done in %v", ev.Done, ev.Total, ev.Label, ev.Wall.Round(time.Millisecond))
		if ev.Throughput > 0 {
			line += fmt.Sprintf(" (%.0fx realtime)", ev.Throughput)
		}
		fmt.Fprintln(p.W, line)
	case EventRunFinished:
		fmt.Fprintf(p.W, "exp: run finished: %d/%d cells (%d cached, %d failed) in %v\n",
			ev.Done, ev.Total, ev.CachedCells, ev.FailedCells, ev.Wall.Round(time.Millisecond))
	}
}

// JSONL emits every event as one JSON object per line — the
// machine-readable twin of Progress, suitable for piping into run
// dashboards or jq.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL returns a JSON-lines emitter writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements Hook.
func (j *JSONL) Emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	_ = j.enc.Encode(ev)
}

// HookForMode maps a CLI -progress mode to a telemetry hook: "off" (or
// empty) means none, "stderr" the human-readable Progress reporter, and
// "jsonl" the JSON-lines emitter. Both write to stderr so stdout stays
// clean for CSV/tables.
func HookForMode(mode string) (Hook, error) {
	switch mode {
	case "", "off":
		return nil, nil
	case "stderr":
		return NewProgress(os.Stderr), nil
	case "jsonl":
		return NewJSONL(os.Stderr), nil
	default:
		return nil, fmt.Errorf("exp: unknown progress mode %q (want off | stderr | jsonl)", mode)
	}
}

// Multi bundles several hooks into one.
type Multi []Hook

// Emit implements Hook.
func (m Multi) Emit(ev Event) {
	for _, h := range m {
		h.Emit(ev)
	}
}

package exp

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestExecuteContextCancelStopsPromptly cancels a grid mid-flight and
// checks three things: cells finished before the cancel keep their
// results, cells never started come back with the context error, and
// an in-flight context-aware cell is told to stop.
func TestExecuteContextCancelStopsPromptly(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var interrupted atomic.Bool
	o := &Orchestrator[int, int]{
		Parallel: 1, // serial: cell 0 completes, cell 1 blocks, 2..4 never start
		RunCtx: func(ctx context.Context, v int) (int, error) {
			if v == 1 {
				close(started)
				select {
				case <-ctx.Done():
					interrupted.Store(true)
					return 0, ctx.Err()
				case <-release:
				}
			}
			return v * 10, nil
		},
	}
	cells := make([]Cell[int], 5)
	for i := range cells {
		cells[i] = Cell[int]{Label: fmt.Sprintf("c%d", i), Config: i}
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	defer close(release)

	outs, err := o.ExecuteContext(ctx, cells)
	if err == nil {
		t.Fatal("want joined error from canceled cells")
	}
	if outs[0].Err != nil || outs[0].Value != 0 {
		t.Fatalf("pre-cancel cell should have completed: %+v", outs[0])
	}
	if !interrupted.Load() {
		t.Fatal("in-flight cell never observed cancellation")
	}
	if !errors.Is(outs[1].Err, context.Canceled) {
		t.Fatalf("in-flight cell error = %v, want context.Canceled", outs[1].Err)
	}
	for i := 2; i < 5; i++ {
		if !errors.Is(outs[i].Err, context.Canceled) {
			t.Fatalf("unstarted cell %d error = %v, want context.Canceled", i, outs[i].Err)
		}
		if outs[i].Attempts != 0 {
			t.Fatalf("unstarted cell %d executed %d times", i, outs[i].Attempts)
		}
	}
}

// TestExecuteContextCancelAbortsBackoff checks a canceled context cuts
// a retry backoff short instead of sleeping it out.
func TestExecuteContextCancelAbortsBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	o := &Orchestrator[int, int]{
		Retries: 1,
		Backoff: time.Hour, // the test hangs here unless cancel interrupts the sleep
		Run: func(int) (int, error) {
			cancel()
			return 0, errors.New("transient")
		},
	}
	done := make(chan struct{})
	var outs []Outcome[int]
	go func() {
		outs, _ = o.ExecuteContext(ctx, []Cell[int]{{Label: "only", Config: 1}})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("backoff sleep ignored cancellation")
	}
	if !errors.Is(outs[0].Err, context.Canceled) {
		t.Fatalf("outcome error = %v, want context.Canceled", outs[0].Err)
	}
}

// TestConcurrentExecuteSharedOrchestrator runs many grids through one
// orchestrator at once — the serve scheduler's usage — and checks each
// run's outcomes and its private hook's counters are self-consistent.
// Run with -race for the real assertion.
func TestConcurrentExecuteSharedOrchestrator(t *testing.T) {
	o := &Orchestrator[int, int]{
		Parallel: 2,
		Run:      func(v int) (int, error) { return v + 1, nil },
	}
	const runs, cellsPer = 8, 12
	errc := make(chan error, runs)
	for r := 0; r < runs; r++ {
		go func(r int) {
			cells := make([]Cell[int], cellsPer)
			for i := range cells {
				cells[i] = Cell[int]{Label: fmt.Sprintf("r%dc%d", r, i), Config: r*100 + i}
			}
			var finishes atomic.Int64
			hook := countingHook(func(ev Event) {
				if ev.Type == EventCellFinished {
					finishes.Add(1)
				}
			})
			outs, err := o.ExecuteContext(context.Background(), cells, hook)
			if err != nil {
				errc <- err
				return
			}
			for i, out := range outs {
				if out.Value != r*100+i+1 {
					errc <- fmt.Errorf("run %d cell %d: value %d", r, i, out.Value)
					return
				}
			}
			if n := finishes.Load(); n != cellsPer {
				errc <- fmt.Errorf("run %d: hook saw %d finishes, want %d", r, n, cellsPer)
				return
			}
			errc <- nil
		}(r)
	}
	for r := 0; r < runs; r++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

type countingHook func(Event)

func (f countingHook) Emit(ev Event) { f(ev) }

// TestCachePrune exercises both eviction dimensions and their
// interaction.
func TestCachePrune(t *testing.T) {
	open := func(t *testing.T) *Cache {
		c, err := Open(filepath.Join(t.TempDir(), "cache"))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	fill := func(t *testing.T, c *Cache, n int) []string {
		keys := make([]string, n)
		for i := 0; i < n; i++ {
			k, err := c.Key(map[string]int{"cell": i})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put(k, i); err != nil {
				t.Fatal(err)
			}
			keys[i] = k
		}
		return keys
	}
	age := func(t *testing.T, c *Cache, key string, by time.Duration) {
		p := filepath.Join(c.Dir(), key[:2], key+".json")
		old := time.Now().Add(-by)
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("noop", func(t *testing.T) {
		c := open(t)
		fill(t, c, 3)
		n, err := c.Prune(0, 0)
		if err != nil || n != 0 {
			t.Fatalf("Prune(0,0) = %d, %v; want 0, nil", n, err)
		}
		if got, _ := c.Len(); got != 3 {
			t.Fatalf("entries after noop = %d, want 3", got)
		}
	})

	t.Run("age", func(t *testing.T) {
		c := open(t)
		keys := fill(t, c, 4)
		age(t, c, keys[0], 48*time.Hour)
		age(t, c, keys[1], 48*time.Hour)
		n, err := c.Prune(0, 24*time.Hour)
		if err != nil || n != 2 {
			t.Fatalf("Prune by age = %d, %v; want 2, nil", n, err)
		}
		var v int
		if hit, _ := c.Get(keys[0], &v); hit {
			t.Fatal("aged-out entry still readable")
		}
		if hit, _ := c.Get(keys[2], &v); !hit {
			t.Fatal("fresh entry was evicted")
		}
	})

	t.Run("count-evicts-oldest", func(t *testing.T) {
		c := open(t)
		keys := fill(t, c, 5)
		// Stamp distinct ages so "oldest" is well-defined.
		for i, k := range keys {
			age(t, c, k, time.Duration(len(keys)-i)*time.Hour)
		}
		n, err := c.Prune(2, 0)
		if err != nil || n != 3 {
			t.Fatalf("Prune by count = %d, %v; want 3, nil", n, err)
		}
		var v int
		for i, k := range keys {
			hit, _ := c.Get(k, &v)
			if want := i >= 3; hit != want {
				t.Fatalf("entry %d survival = %v, want %v", i, hit, want)
			}
		}
	})

	t.Run("both", func(t *testing.T) {
		c := open(t)
		keys := fill(t, c, 6)
		age(t, c, keys[0], 48*time.Hour)
		for i := 1; i < 6; i++ {
			age(t, c, keys[i], time.Duration(6-i)*time.Minute)
		}
		n, err := c.Prune(3, 24*time.Hour)
		if err != nil || n != 3 { // one by age, two more by count
			t.Fatalf("Prune both = %d, %v; want 3, nil", n, err)
		}
		if got, _ := c.Len(); got != 3 {
			t.Fatalf("entries after prune = %d, want 3", got)
		}
	})
}

package serve

import (
	"fmt"
	"sync"
	"time"

	"anongeo/internal/core"
	"anongeo/internal/exp"
	"anongeo/internal/lbs"
)

// JobState is one station in a job's lifecycle. The machine is strictly
// forward: queued → running → {done, failed, canceled}, with the
// shortcut queued → canceled for jobs canceled before a scheduler
// worker picked them up. Terminal states never transition again.
type JobState string

// The job lifecycle states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job-level telemetry event types, sharing the wire vocabulary (and the
// exp.Event envelope) with the orchestrator's per-cell events so one
// stream carries both.
const (
	eventJobQueued   exp.EventType = "job-queued"
	eventJobStarted  exp.EventType = "job-started"
	eventJobFinished exp.EventType = "job-finished"
)

// JobEvent is one record in a job's event log: an exp telemetry event
// stamped with a per-job sequence number and, for job-level events, the
// lifecycle state entered. Streamed to clients as NDJSON or SSE.
type JobEvent struct {
	Seq   int      `json:"seq"`
	JobID string   `json:"job_id"`
	State JobState `json:"state,omitempty"`
	exp.Event
}

// CellCounts summarizes a finished grid for status responses.
type CellCounts struct {
	Total  int `json:"total"`
	Cached int `json:"cached"`
	Failed int `json:"failed"`
}

// Job is one admitted sweep: the normalized request, its lifecycle
// state, the event log feeding /events streams, and — once done — the
// folded grid points.
type Job struct {
	// ID is the deterministic content address of the normalized
	// request (exp.KeyOf over request JSON + cache schema version), so
	// identical submissions collide onto one job.
	ID string
	// Req is the normalized request the job runs.
	Req SweepRequest
	// LBSReq, when non-nil, marks this as an LBS job (POST /v1/lbs):
	// Req is ignored and the job executes an lbs privacy-vs-utility
	// grid instead of a routing sweep.
	LBSReq *lbs.SweepRequest

	mu       sync.Mutex
	state    JobState
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	points   []core.DensityPoint
	curves   []lbs.CurvePoint
	cells    CellCounts

	// events is the append-only job log; wake is closed and replaced on
	// every append (and on terminal transition) so any number of
	// streaming subscribers can wait without polling.
	events []JobEvent
	wake   chan struct{}

	// cancel, set while running, tears down the job's execution
	// context. canceled latches a cancel request made while queued.
	cancel   func()
	canceled bool
}

func newJob(id string, req SweepRequest, now time.Time) *Job {
	j := &Job{ID: id, Req: req, state: JobQueued, created: now, wake: make(chan struct{})}
	j.append(JobEvent{State: JobQueued, Event: exp.Event{Type: eventJobQueued, Total: req.Cells()}})
	return j
}

func newLBSJob(id string, req lbs.SweepRequest, now time.Time) *Job {
	j := &Job{ID: id, LBSReq: &req, state: JobQueued, created: now, wake: make(chan struct{})}
	j.append(JobEvent{State: JobQueued, Event: exp.Event{Type: eventJobQueued, Total: req.NumCells()}})
	return j
}

// totalCells is the job's grid size regardless of kind.
func (j *Job) totalCells() int {
	if j.LBSReq != nil {
		return j.LBSReq.NumCells()
	}
	return j.Req.Cells()
}

// restoreJob rebuilds a terminal job from its journal state after a
// restart: status, error, timestamps, cell counts, and — for done jobs
// — the folded points, plus a synthesized event log so /events replays
// a coherent (if condensed) history. Restored jobs never run again;
// only Submit can start a fresh attempt (failed/canceled IDs are
// retryable, done IDs dedupe).
func restoreJob(w *walJob) *Job {
	j := &Job{
		ID: w.id, Req: w.req, LBSReq: w.lbsReq,
		state: w.state, err: w.err,
		created: w.created, started: w.started, finished: w.finished,
		points: w.points, curves: w.curves, cells: w.cells,
		wake: make(chan struct{}),
	}
	evs := []JobEvent{{State: JobQueued, Event: exp.Event{Type: eventJobQueued, Total: j.totalCells()}}}
	if !w.started.IsZero() {
		evs = append(evs, JobEvent{State: JobRunning, Event: exp.Event{Type: eventJobStarted}})
	}
	evs = append(evs, JobEvent{State: w.state, Event: exp.Event{Type: eventJobFinished, Err: w.err}})
	for i := range evs {
		evs[i].Seq = i
		evs[i].JobID = w.id
	}
	j.events = evs
	return j
}

// append adds ev to the log (stamping seq and job ID) and wakes
// subscribers. Callers must not hold j.mu.
func (j *Job) append(ev JobEvent) {
	j.mu.Lock()
	ev.Seq = len(j.events)
	ev.JobID = j.ID
	j.events = append(j.events, ev)
	close(j.wake)
	j.wake = make(chan struct{})
	j.mu.Unlock()
}

// Emit implements exp.Hook: the job's per-run hook forwards every
// orchestrator event into the job log, which is what /events streams.
func (j *Job) Emit(ev exp.Event) {
	j.append(JobEvent{Event: ev})
}

// snapshot returns the fields a status response needs, consistently.
func (j *Job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      j.ID,
		State:   j.state,
		Error:   j.err,
		Created: j.created,
		Cells:   j.cells,
		Request: j.Req,
	}
	if j.LBSReq != nil {
		st.Kind = JobKindLBS
		st.LBSRequest = j.LBSReq
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.state == JobDone {
		st.Points = wirePoints(j.points)
		st.Curves = j.curves
	}
	return st
}

// transition moves the job to state, recording timestamps and the
// error, and logs the matching job-level event. It is a no-op if the
// job is already terminal (a cancel racing a natural finish keeps
// whichever landed first).
func (j *Job) transition(state JobState, errMsg string, now time.Time) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.err = errMsg
	switch state {
	case JobRunning:
		j.started = now
	case JobDone, JobFailed, JobCanceled:
		j.finished = now
	}
	j.mu.Unlock()

	evType := eventJobStarted
	if state.Terminal() {
		evType = eventJobFinished
	}
	j.append(JobEvent{State: state, Event: exp.Event{Type: evType, Err: errMsg}})
	return true
}

// eventsSince returns the log tail from seq on, plus the channel that
// will be closed at the next append and whether the job is terminal —
// everything a streaming subscriber needs for one wait cycle.
func (j *Job) eventsSince(seq int) (tail []JobEvent, wake <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < len(j.events) {
		tail = append(tail, j.events[seq:]...)
	}
	return tail, j.wake, j.state.Terminal()
}

// State reports the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// JobKindLBS marks a job submitted through POST /v1/lbs. Sweep jobs
// carry no kind — the zero value keeps the wire form (and the WAL)
// identical to what pre-LBS builds produced.
const JobKindLBS = "lbs"

// JobStatus is the wire form of a job for GET /v1/jobs/{id}. Request is
// always present for compatibility; for LBS jobs it is the zero
// SweepRequest and clients read Kind/LBSRequest/Curves instead.
type JobStatus struct {
	ID         string            `json:"id"`
	Kind       string            `json:"kind,omitempty"`
	State      JobState          `json:"state"`
	Error      string            `json:"error,omitempty"`
	Created    time.Time         `json:"created"`
	Started    *time.Time        `json:"started,omitempty"`
	Finished   *time.Time        `json:"finished,omitempty"`
	Cells      CellCounts        `json:"cells"`
	Points     []SweepPoint      `json:"points,omitempty"`
	Curves     []lbs.CurvePoint  `json:"curves,omitempty"`
	Request    SweepRequest      `json:"request"`
	LBSRequest *lbs.SweepRequest `json:"lbs_request,omitempty"`
}

// SweepPoint is one folded grid cell in wire form: the Figure 1
// quantities plus the raw counters they derive from, and the full
// Result for clients that want everything.
type SweepPoint struct {
	Protocol     string      `json:"protocol"`
	Nodes        int         `json:"nodes"`
	PDF          float64     `json:"pdf"`
	AvgLatencyMS float64     `json:"avg_latency_ms"`
	P95LatencyMS float64     `json:"p95_latency_ms"`
	AvgHops      float64     `json:"avg_hops"`
	Sent         int         `json:"sent"`
	Delivered    int         `json:"delivered"`
	Result       core.Result `json:"result"`
}

func wirePoints(points []core.DensityPoint) []SweepPoint {
	out := make([]SweepPoint, len(points))
	for i, p := range points {
		s := p.Result.Summary
		out[i] = SweepPoint{
			Protocol:     p.Protocol.String(),
			Nodes:        p.Nodes,
			PDF:          s.DeliveryFraction,
			AvgLatencyMS: float64(s.AvgLatency) / float64(time.Millisecond),
			P95LatencyMS: float64(s.P95Latency) / float64(time.Millisecond),
			AvgHops:      s.AvgHops,
			Sent:         s.Sent,
			Delivered:    s.Delivered,
			Result:       p.Result,
		}
	}
	return out
}

// String implements fmt.Stringer for log lines.
func (j *Job) String() string {
	return fmt.Sprintf("job %s [%s]", shortID(j.ID), j.State())
}

// shortID abbreviates a 64-hex job ID for logs; full IDs stay on the
// wire.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// Package serve turns the simulator into a service: a stdlib-only HTTP
// daemon that queues Figure-1-style sweep grids as jobs, executes them
// on the shared internal/exp orchestrator, streams per-cell progress,
// and exposes Prometheus metrics. It is the network face of the same
// machinery cmd/sweep and cmd/figures drive from the command line.
//
// API surface (all JSON):
//
//	POST   /v1/sweeps           submit a grid (SweepRequest) → 202 + JobStatus,
//	                            200 when deduped to an existing job,
//	                            429 + Retry-After when the queue is full
//	POST   /v1/lbs              submit an LBS privacy-vs-utility grid
//	                            (lbs.SweepRequest); same codes as /v1/sweeps,
//	                            results come back as curves, not points
//	GET    /v1/jobs             list jobs in submission order
//	GET    /v1/jobs/{id}        status; includes points once done
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events stream the job's event log as NDJSON, or
//	                            SSE with Accept: text/event-stream
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness (always 200 while the process serves)
//	GET    /readyz              readiness (503 once draining)
//
// Identity and dedupe: a job's ID is the exp cache content address of
// its normalized request, so identical submissions — any client, any
// time — share one job, and a re-submission after completion returns
// the finished result instantly. Cell-level memoization through the
// shared .expcache/ additionally makes overlapping grids cheap even
// when the jobs differ.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"anongeo/internal/lbs"
)

// contextWithTimeout is context.WithTimeout from Background, with ≤0
// meaning no deadline (cancel-only).
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(context.Background())
	}
	return context.WithTimeout(context.Background(), d)
}

// Server glues the Manager to an http.Handler.
type Server struct {
	man *Manager
	mux *http.ServeMux
}

// New builds a serving stack from opts (see Options for defaults).
func New(opts Options) (*Server, error) {
	man, err := NewManager(opts)
	if err != nil {
		return nil, err
	}
	s := &Server{man: man, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/lbs", s.handleSubmitLBS)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.man.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	return s, nil
}

// Handler is the daemon's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the job manager (drain, metrics, cache GC).
func (s *Server) Manager() *Manager { return s.man }

// apiError is the uniform JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// submitResponse wraps a JobStatus with whether this POST created the
// job or hit an existing one.
type submitResponse struct {
	Created bool `json:"created"`
	JobStatus
}

// maxRequestBody caps a submission body; a legitimate grid request is
// a few KB even with a long fault plan.
const maxRequestBody = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeSubmission(w, r, &req) {
		return
	}
	job, created, err := s.man.Submit(req)
	s.finishSubmit(w, job, created, err)
}

// handleSubmitLBS is POST /v1/lbs: the same admission path as
// /v1/sweeps, for LBS privacy-vs-utility grids.
func (s *Server) handleSubmitLBS(w http.ResponseWriter, r *http.Request) {
	var req lbs.SweepRequest
	if !decodeSubmission(w, r, &req) {
		return
	}
	job, created, err := s.man.SubmitLBS(req)
	s.finishSubmit(w, job, created, err)
}

// decodeSubmission reads a submission body into req, writing the 400
// itself (and returning false) on any decode problem.
func decodeSubmission(w http.ResponseWriter, r *http.Request, req any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	// Strict decode: an unknown or misspelled field is a client bug we
	// surface as a 400 naming the field, not a silently ignored knob.
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "request body has trailing data")
		return false
	}
	return true
}

// finishSubmit maps a Manager admission result onto the wire.
func (s *Server) finishSubmit(w http.ResponseWriter, job *Job, created bool, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.man.opts.RetryAfter.Seconds())))
		writeError(w, http.StatusTooManyRequests, "%v: retry after %v", err, s.man.opts.RetryAfter)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusOK // dedupe hit: existing job, possibly already done
	if created {
		code = http.StatusAccepted
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, code, submitResponse{Created: created, JobStatus: job.snapshot()})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.man.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		st := j.snapshot()
		st.Points = nil // list stays light; fetch a job for its points
		st.Curves = nil
		out[i] = st
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, err := s.man.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, job.snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.man.Cancel(id)
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrTerminal):
		writeError(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		job, _ := s.man.Job(id)
		writeJSON(w, http.StatusOK, job.snapshot())
	}
}

// handleEvents streams a job's event log: every event already recorded
// (replay), then live events as cells finish, until the job reaches a
// terminal state or the client goes away. Framing is NDJSON by
// default, SSE when the client asks for text/event-stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, err := s.man.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	enc := json.NewEncoder(w)
	seq := 0
	for {
		tail, wake, terminal := job.eventsSince(seq)
		for _, ev := range tail {
			if sse {
				fmt.Fprintf(w, "event: %s\ndata: ", ev.Type)
			}
			_ = enc.Encode(ev) // Encode appends the newline both framings need
			if sse {
				io.WriteString(w, "\n")
			}
		}
		seq += len(tail)
		flusher.Flush()
		if terminal && len(tail) == 0 {
			return
		}
		if terminal {
			// Drain whatever the terminal transition appended, then
			// loop once more to confirm nothing trails it.
			continue
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	depth, capacity := s.man.QueueStats()
	var quarantined int64
	if c := s.man.Cache(); c != nil {
		quarantined = c.Quarantined()
	}
	s.man.Metrics().WritePrometheus(w, depth, capacity, quarantined)
	if s.man.opts.ExtraMetrics != nil {
		s.man.opts.ExtraMetrics(w)
	}
}

// ListenAndServe runs the daemon on addr until shutdown is closed, then
// drains: admission stops, in-flight jobs get drainTimeout to finish
// (then hard-cancel), and the HTTP listener closes last so status reads
// work throughout the drain. It is the single entry point cmd/agrsimd
// wraps flags around.
func (s *Server) ListenAndServe(addr string, shutdown <-chan struct{}, drainTimeout time.Duration) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err // bind failure or unexpected listener death
	case <-shutdown:
	}
	drainCtx, cancel := contextWithTimeout(drainTimeout)
	defer cancel()
	_ = s.man.Drain(drainCtx)
	httpCtx, cancel2 := contextWithTimeout(5 * time.Second)
	defer cancel2()
	return srv.Shutdown(httpCtx)
}

package serve

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"anongeo/internal/core"
)

// TestDrainBusyServerKeepsCompletedResults is the shutdown contract
// under load, meant to run with -race: while jobs are queued and
// executing and clients are hammering the read endpoints, a drain with
// a generous deadline must (1) let every admitted job reach a terminal
// state, (2) keep every completed result readable afterwards, and
// (3) refuse new work the moment it starts.
func TestDrainBusyServerKeepsCompletedResults(t *testing.T) {
	stub := func(ctx context.Context, cfg core.Config) (core.Result, error) {
		select {
		case <-time.After(2 * time.Millisecond):
			return core.Result{Protocol: cfg.Protocol, Nodes: cfg.Nodes}, nil
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		}
	}
	srv, ts := newTestServer(t, Options{QueueDepth: 64, JobWorkers: 2, Parallel: 2}, stub)

	const jobs = 12
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		resp, out := postSweep(t, ts, distinctRequest(i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids[i] = out.ID
	}

	// Readers poll status and metrics throughout the drain; the -race
	// run is what gives these teeth.
	stopReads := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				for _, path := range []string{"/v1/jobs/" + ids[r%jobs], "/metrics", "/v1/jobs"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						return
					}
					resp.Body.Close()
				}
			}
		}(r)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Manager().Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Admission is closed, reads still work.
	resp, _ := postSweep(t, ts, distinctRequest(jobs))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain = %d, want 503", resp.StatusCode)
	}
	close(stopReads)
	readers.Wait()

	done := 0
	for i, id := range ids {
		st := getStatus(t, ts, id)
		if !st.State.Terminal() {
			t.Fatalf("job %d not terminal after drain: %q", i, st.State)
		}
		if st.State == JobDone {
			done++
			if len(st.Points) == 0 {
				t.Fatalf("job %d done but lost its points", i)
			}
		}
	}
	// The generous deadline means nothing should have been cut short.
	if done != jobs {
		t.Fatalf("only %d/%d jobs completed across the drain", done, jobs)
	}
}

// TestDrainDeadlineCancelsInFlight is the other half: when the
// deadline is too tight for the work, Drain must come back promptly
// anyway, with everything still in flight canceled rather than leaked.
func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	stub, started, release := blockingStub()
	defer release()
	srv, ts := newTestServer(t, Options{QueueDepth: 8, JobWorkers: 1, Parallel: 1}, stub)

	_, running := postSweep(t, ts, distinctRequest(0))
	<-started
	_, queued := postSweep(t, ts, distinctRequest(1))

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Manager().Drain(ctx)
	if err == nil {
		t.Fatal("drain with blocked worker reported clean completion")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain took %v despite its 100ms deadline", elapsed)
	}

	for _, id := range []string{running.ID, queued.ID} {
		st := getStatus(t, ts, id)
		if st.State != JobCanceled {
			t.Fatalf("job %s state after deadline drain = %q, want canceled", id[:8], st.State)
		}
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"anongeo/internal/lbs"
)

// tinyLBSRequest is a two-cell LBS grid that runs in well under a
// second: two cheap backends, one parameter point each.
func tinyLBSRequest() lbs.SweepRequest {
	base := lbs.DefaultConfig()
	base.Clients = 16
	base.Queries = 300
	base.Duration = 30 * time.Second
	return lbs.SweepRequest{
		Base:          base,
		Backends:      []string{"kanon", "gridcloak"},
		Ks:            []int{2},
		GridLevels:    []int{3},
		Epsilons:      []float64{0.02},
		UpdateSeconds: []float64{10},
		QueryCounts:   []int{300},
	}
}

func postLBS(t *testing.T, ts *httptest.Server, req lbs.SweepRequest) (*http.Response, submitResponse) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/lbs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, out
}

// TestLBSSubmitRunDedupe drives POST /v1/lbs end to end: submit, 202,
// poll to done with curve points, then dedupe an identical re-POST.
func TestLBSSubmitRunDedupe(t *testing.T) {
	_, ts := newTestServer(t, Options{}, nil)
	req := tinyLBSRequest()
	resp, out := postLBS(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if !out.Created || out.ID == "" || out.Kind != JobKindLBS {
		t.Fatalf("bad submit response: %+v", out.JobStatus)
	}
	if out.LBSRequest == nil || len(out.LBSRequest.Backends) != 2 {
		t.Fatalf("status must echo the normalized lbs request, got %+v", out.LBSRequest)
	}

	st := waitState(t, ts, out.ID, JobDone)
	if len(st.Curves) != out.LBSRequest.NumCells() {
		t.Fatalf("want %d curve points, got %d", out.LBSRequest.NumCells(), len(st.Curves))
	}
	if len(st.Points) != 0 {
		t.Fatalf("lbs job must not carry sweep points, got %d", len(st.Points))
	}
	seen := map[string]bool{}
	for _, p := range st.Curves {
		seen[p.Backend] = true
		if p.Result.Answered == 0 && p.Backend != "kanon" {
			t.Fatalf("curve point %s/%s=%g answered nothing", p.Backend, p.Param, p.Value)
		}
	}
	if !seen["kanon"] || !seen["gridcloak"] {
		t.Fatalf("curves missing a requested backend: %v", seen)
	}

	resp2, out2 := postLBS(t, ts, req)
	if resp2.StatusCode != http.StatusOK || out2.Created || out2.ID != out.ID {
		t.Fatalf("re-POST must dedupe onto the done job: %d created=%v id=%s", resp2.StatusCode, out2.Created, out2.ID)
	}
	if out2.State != JobDone || len(out2.Curves) != len(st.Curves) {
		t.Fatalf("deduped response must carry the finished curves, got %+v", out2.JobStatus)
	}
}

// TestLBSRejectsBadRequest maps lbs validation and cell-cap errors to
// 400 at the HTTP layer.
func TestLBSRejectsBadRequest(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxCells: 1}, nil)
	req := tinyLBSRequest() // expands to 2 cells > MaxCells 1
	resp, _ := postLBS(t, ts, req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized grid: status %d, want 400", resp.StatusCode)
	}
	bad := tinyLBSRequest()
	bad.Base.Clients = 0
	resp, _ = postLBS(t, ts, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid base: status %d, want 400", resp.StatusCode)
	}
}

// TestLBSJournalRestore proves lbs jobs survive a daemon restart: the
// done record in the WAL carries the curves, so a restored job serves
// its result without recomputation.
func TestLBSJournalRestore(t *testing.T) {
	dir := t.TempDir()
	opts := Options{JournalDir: dir, CacheDir: filepath.Join(dir, "cache")}
	m, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	j, created, err := m.SubmitLBS(tinyLBSRequest())
	if err != nil || !created {
		t.Fatalf("SubmitLBS: created=%v err=%v", created, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.State() != JobDone {
		if time.Now().After(deadline) || j.State().Terminal() {
			t.Fatalf("job stuck in %s", j.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := j.snapshot()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	m2, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m2.Drain(ctx)
	}()
	j2, err := m2.Job(j.ID)
	if err != nil {
		t.Fatalf("restored manager lost the job: %v", err)
	}
	got := j2.snapshot()
	if got.State != JobDone || got.Kind != JobKindLBS {
		t.Fatalf("restored job state=%s kind=%q, want done/lbs", got.State, got.Kind)
	}
	if !reflect.DeepEqual(got.Curves, want.Curves) {
		t.Fatalf("restored curves diverge from the originals:\n%+v\n%+v", got.Curves, want.Curves)
	}
	if got.LBSRequest == nil || !reflect.DeepEqual(*got.LBSRequest, *want.LBSRequest) {
		t.Fatalf("restored request diverges: %+v", got.LBSRequest)
	}
}

package serve

import (
	"fmt"
	"strings"

	"anongeo/internal/core"
)

// SweepRequest is the body of POST /v1/sweeps: a base scenario plus the
// grid axes to sweep it over — exactly the core.DensitySweep shape, so
// a Figure 1 reproduction is one POST. Empty axes default to the base
// config's own values (a single-cell job).
type SweepRequest struct {
	// Base is the scenario every cell derives from, including an
	// optional declarative fault plan (Base.Faults).
	Base core.Config `json:"base"`
	// NodeCounts is the density axis; empty means [Base.Nodes].
	NodeCounts []int `json:"node_counts,omitempty"`
	// Protocols names the routing stacks to compare: "gpsr", "agfw",
	// "agfw-noack" (case-insensitive). Empty means the base protocol.
	Protocols []string `json:"protocols,omitempty"`
	// Repeats is the number of independent seeds per grid cell,
	// averaged into one point (<1 → 1).
	Repeats int `json:"repeats,omitempty"`
}

// Cells reports the grid size of the normalized request.
func (r SweepRequest) Cells() int {
	return len(r.NodeCounts) * len(r.Protocols) * r.Repeats
}

// ParseProtocol maps wire names to protocol constants; String() output
// is also accepted so a request can echo back a previous response.
func ParseProtocol(s string) (core.Protocol, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "gpsr", "gpsr-greedy":
		return core.ProtoGPSR, nil
	case "agfw":
		return core.ProtoAGFW, nil
	case "agfw-noack":
		return core.ProtoAGFWNoAck, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q (want gpsr | agfw | agfw-noack)", s)
	}
}

// ProtocolName is ParseProtocol's inverse: the canonical wire spelling
// of a protocol, used by clients (the dist coordinator) to build
// requests that normalize to the same content address everywhere.
func ProtocolName(p core.Protocol) string {
	switch p {
	case core.ProtoGPSR:
		return "gpsr"
	case core.ProtoAGFW:
		return "agfw"
	case core.ProtoAGFWNoAck:
		return "agfw-noack"
	default:
		return p.String()
	}
}

// normalize fills request defaults, canonicalizes the axes (so two
// spellings of the same grid share a job ID), and validates every cell
// the grid will expand to. maxCells bounds the grid for admission
// control.
func (r SweepRequest) normalize(maxCells int) (SweepRequest, []core.Protocol, error) {
	out := r
	// Clone the axis slices: canonicalization below rewrites them, and a
	// shallow copy would scribble on the caller's backing arrays — a data
	// race when one request value is submitted from several goroutines.
	out.NodeCounts = append([]int(nil), r.NodeCounts...)
	out.Protocols = append([]string(nil), r.Protocols...)
	if out.Repeats < 1 {
		out.Repeats = 1
	}
	if len(out.NodeCounts) == 0 {
		out.NodeCounts = []int{out.Base.Nodes}
	}
	if len(out.Protocols) == 0 {
		out.Protocols = []string{ProtocolName(out.Base.Protocol)}
	}
	protos := make([]core.Protocol, len(out.Protocols))
	for i, name := range out.Protocols {
		p, err := ParseProtocol(name)
		if err != nil {
			return out, nil, fmt.Errorf("protocols[%d]: %w", i, err)
		}
		protos[i] = p
		out.Protocols[i] = ProtocolName(p) // canonical spelling
	}

	// Server-side jobs must be pure functions of the request: a trace
	// sink or sniffer harvest is an in-process attachment that neither
	// serializes into a response cleanly nor caches, and would defeat
	// the dedupe-by-content contract.
	if out.Base.Trace != nil {
		return out, nil, fmt.Errorf("base.Trace: tracing is not available over the API")
	}
	if out.Base.WithSniffer {
		return out, nil, fmt.Errorf("base.WithSniffer = true: sniffer harvests are not available over the API")
	}

	if n := out.Cells(); maxCells > 0 && n > maxCells {
		return out, nil, fmt.Errorf("grid has %d cells (node_counts %d × protocols %d × repeats %d), server cap is %d",
			n, len(out.NodeCounts), len(out.Protocols), out.Repeats, maxCells)
	}

	// Validate exactly the cells that will run, so the 400 names the
	// offending field instead of failing the job later.
	for _, cell := range core.SweepCells(out.Base, out.NodeCounts, protos, out.Repeats) {
		if err := cell.Config.Validate(); err != nil {
			return out, nil, fmt.Errorf("cell %q: %w", cell.Label, err)
		}
	}
	return out, protos, nil
}

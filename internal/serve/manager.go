package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"anongeo/internal/core"
	"anongeo/internal/exp"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is admission control saying no: the bounded FIFO
	// queue is at capacity. Maps to 429 + Retry-After.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects new work while the daemon shuts down. Maps
	// to 503.
	ErrDraining = errors.New("serve: draining, not accepting new jobs")
	// ErrNotFound is an unknown job ID. Maps to 404.
	ErrNotFound = errors.New("serve: no such job")
	// ErrTerminal rejects canceling a job that already finished. Maps
	// to 409.
	ErrTerminal = errors.New("serve: job already terminal")
)

// Options tunes the serving subsystem; zero values get sensible
// defaults (see New).
type Options struct {
	// QueueDepth bounds the admission FIFO: jobs beyond the bound are
	// rejected with ErrQueueFull. Default 16.
	QueueDepth int
	// JobWorkers is how many jobs execute concurrently; each job's
	// cells then fan out on the orchestrator pool. Default 1 — FIFO
	// jobs, parallel cells — which keeps one big sweep from starving
	// interactive submissions of cache bandwidth but not CPU.
	JobWorkers int
	// Parallel is the orchestrator worker-pool width per job
	// (≤0 = GOMAXPROCS).
	Parallel int
	// CacheDir, when non-empty, memoizes cell results on disk so
	// identical cells — across jobs, restarts, and CLI runs sharing
	// the directory — are served without re-execution.
	CacheDir string
	// JobTimeout caps one job's execution wall time. Default 15m.
	JobTimeout time.Duration
	// MaxCells rejects grids larger than this at admission. Default
	// 1024.
	MaxCells int
	// RetryAfter is the backpressure hint returned with 429. Default
	// 5s.
	RetryAfter time.Duration
	// Retries is per-cell retry insurance, as in core.SweepOptions.
	Retries int
	// Hooks receive orchestrator telemetry from every job, in addition
	// to the manager's own metrics hook. Hooks must be safe for
	// concurrent runs when JobWorkers > 1.
	Hooks []exp.Hook
	// Logf, when non-nil, receives job lifecycle log lines
	// (log.Printf-shaped). Default: silent.
	Logf func(format string, args ...any)
}

// Manager owns the job table, the bounded admission queue, and the
// scheduler workers that drain it onto one shared exp.Orchestrator.
type Manager struct {
	opts Options
	orch *exp.Orchestrator[core.Config, core.Result]
	met  *Metrics

	// baseCtx parents every job's execution context; baseCancel is the
	// drain deadline's hammer.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	queue    chan *Job
	draining bool

	workers sync.WaitGroup
}

// NewManager builds a manager and starts its scheduler workers.
func NewManager(opts Options) (*Manager, error) {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 1
	}
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = 15 * time.Minute
	}
	if opts.MaxCells <= 0 {
		opts.MaxCells = 1024
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 5 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}

	met := &Metrics{}
	orch, err := core.NewOrchestrator(core.SweepOptions{
		Parallel: opts.Parallel,
		CacheDir: opts.CacheDir,
		Retries:  opts.Retries,
		Hooks:    append([]exp.Hook{met}, opts.Hooks...),
	})
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		orch:       orch,
		met:        met,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, opts.QueueDepth),
	}
	for i := 0; i < opts.JobWorkers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	return m, nil
}

// Metrics exposes the manager's counters for the /metrics handler.
func (m *Manager) Metrics() *Metrics { return m.met }

// QueueStats samples admission-queue depth and capacity.
func (m *Manager) QueueStats() (depth, capacity int) {
	return len(m.queue), cap(m.queue)
}

// Draining reports whether the manager has stopped admitting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Cache exposes the shared result cache (nil when caching is off), for
// the daemon's periodic GC.
func (m *Manager) Cache() *exp.Cache { return m.orch.Cache }

// Submit admits one sweep request. The job ID is the content address
// of the normalized request, so resubmitting an identical grid returns
// the existing job — queued, running, or done — instead of a new one
// (created=false). A previously failed or canceled identical request
// is re-admitted as a fresh attempt under the same ID.
func (m *Manager) Submit(req SweepRequest) (job *Job, created bool, err error) {
	norm, _, err := req.normalize(m.opts.MaxCells)
	if err != nil {
		return nil, false, err
	}
	id, err := exp.KeyOf(norm)
	if err != nil {
		return nil, false, fmt.Errorf("serve: request not encodable: %w", err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.jobs[id]; ok && !isRetryable(existing.State()) {
		m.met.jobsDeduped.Add(1)
		return existing, false, nil
	}
	if m.draining {
		return nil, false, ErrDraining
	}
	j := newJob(id, norm, time.Now())
	// Enqueue while holding m.mu: Drain closes the queue under the
	// same lock, so a send can never race the close.
	select {
	case m.queue <- j:
	default:
		m.met.jobsRejected.Add(1)
		return nil, false, ErrQueueFull
	}
	if _, resubmitted := m.jobs[id]; !resubmitted {
		m.order = append(m.order, id)
	}
	m.jobs[id] = j
	m.met.jobsSubmitted.Add(1)
	m.opts.Logf("serve: %v admitted (%d cells, queue %d/%d)", j, norm.Cells(), len(m.queue), cap(m.queue))
	return j, true, nil
}

// isRetryable reports whether a terminal state allows the same content
// address to be submitted again as a fresh job.
func isRetryable(s JobState) bool { return s == JobFailed || s == JobCanceled }

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs lists all jobs in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel stops a job: a queued job is marked canceled (the scheduler
// skips it on dequeue), a running job has its context torn down — the
// orchestrator then abandons pending cells and interrupts in-flight
// simulations. Canceling a terminal job returns ErrTerminal.
func (m *Manager) Cancel(id string) error {
	j, err := m.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	state := j.state
	if state.Terminal() {
		j.mu.Unlock()
		return ErrTerminal
	}
	j.canceled = true
	cancel := j.cancel
	j.mu.Unlock()

	if state == JobQueued {
		j.transition(JobCanceled, "canceled while queued", time.Now())
		m.met.jobsCanceled.Add(1)
		m.opts.Logf("serve: %v canceled while queued", j)
		return nil
	}
	if cancel != nil {
		cancel() // runJob observes the context error and finishes the bookkeeping
	}
	m.opts.Logf("serve: %v cancel requested", j)
	return nil
}

// worker is one scheduler loop: dequeue, skip stale cancels, execute.
func (m *Manager) worker() {
	defer m.workers.Done()
	for j := range m.queue {
		if j.State() != JobQueued {
			continue // canceled while queued
		}
		if m.baseCtx.Err() != nil {
			// Drain deadline passed: everything still queued cancels.
			if j.transition(JobCanceled, "server shutting down", time.Now()) {
				m.met.jobsCanceled.Add(1)
			}
			continue
		}
		m.runJob(j)
	}
}

// runJob executes one job on the shared orchestrator under its own
// cancellable, deadline-bounded context, then folds the outcome grid
// into DensityPoints.
func (m *Manager) runJob(j *Job) {
	ctx, cancel := context.WithTimeout(m.baseCtx, m.opts.JobTimeout)
	defer cancel()

	j.mu.Lock()
	if j.canceled { // cancel raced the dequeue
		j.mu.Unlock()
		if j.transition(JobCanceled, "canceled while queued", time.Now()) {
			m.met.jobsCanceled.Add(1)
		}
		return
	}
	j.cancel = cancel
	j.mu.Unlock()

	j.transition(JobRunning, "", time.Now())
	m.met.jobsRunning.Add(1)
	defer m.met.jobsRunning.Add(-1)
	m.opts.Logf("serve: %v started (%d cells)", j, j.Req.Cells())

	protos := make([]core.Protocol, len(j.Req.Protocols))
	for i, name := range j.Req.Protocols {
		protos[i], _ = parseProtocol(name) // validated at admission
	}
	cells := core.SweepCells(j.Req.Base, j.Req.NodeCounts, protos, j.Req.Repeats)
	start := time.Now()
	outs, err := m.orch.ExecuteContext(ctx, cells, j)

	counts := CellCounts{Total: len(outs)}
	for _, o := range outs {
		if o.Cached {
			counts.Cached++
		}
		if o.Err != nil {
			counts.Failed++
		}
	}
	j.mu.Lock()
	j.cells = counts
	j.cancel = nil
	j.mu.Unlock()

	now := time.Now()
	switch {
	case err != nil && errors.Is(ctx.Err(), context.Canceled):
		if j.transition(JobCanceled, "canceled", now) {
			m.met.jobsCanceled.Add(1)
		}
		m.opts.Logf("serve: %v canceled after %v", j, now.Sub(start).Round(time.Millisecond))
	case err != nil && errors.Is(ctx.Err(), context.DeadlineExceeded):
		if j.transition(JobFailed, fmt.Sprintf("job timeout %v exceeded", m.opts.JobTimeout), now) {
			m.met.jobsFailed.Add(1)
		}
		m.opts.Logf("serve: %v timed out after %v", j, now.Sub(start).Round(time.Millisecond))
	case err != nil:
		if j.transition(JobFailed, err.Error(), now) {
			m.met.jobsFailed.Add(1)
		}
		m.opts.Logf("serve: %v failed: %v", j, err)
	default:
		// A run that finished cleanly is done even if the context died
		// a moment later — completed results are never discarded.
		points := core.FoldSweep(j.Req.NodeCounts, protos, j.Req.Repeats, outs)
		j.mu.Lock()
		j.points = points
		j.mu.Unlock()
		if j.transition(JobDone, "", now) {
			m.met.jobsDone.Add(1)
		}
		m.opts.Logf("serve: %v done in %v (%d/%d cells cached)",
			j, now.Sub(start).Round(time.Millisecond), counts.Cached, counts.Total)
	}
}

// Drain shuts the manager down gracefully: admission closes
// immediately (new submissions get ErrDraining, dedupe reads keep
// working), queued and running jobs are given until ctx's deadline to
// finish, then everything still in flight is canceled. Completed
// results remain readable after Drain returns — the job table is never
// dropped.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	close(m.queue) // safe: Submit enqueues under m.mu and checks draining first
	m.mu.Unlock()
	m.opts.Logf("serve: draining (%d queued)", len(m.queue))

	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Deadline: hammer every in-flight job context, then wait for
		// the workers — cancellation propagates into the engine's
		// interrupt poll, so this is prompt.
		m.baseCancel()
		<-done
		return ctx.Err()
	}
}

// LogStd adapts the standard logger for Options.Logf.
func LogStd(format string, args ...any) { log.Printf(format, args...) }

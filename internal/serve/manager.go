package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"anongeo/internal/core"
	"anongeo/internal/durable"
	"anongeo/internal/exp"
	"anongeo/internal/lbs"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is admission control saying no: the bounded FIFO
	// queue is at capacity. Maps to 429 + Retry-After.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects new work while the daemon shuts down. Maps
	// to 503.
	ErrDraining = errors.New("serve: draining, not accepting new jobs")
	// ErrNotFound is an unknown job ID. Maps to 404.
	ErrNotFound = errors.New("serve: no such job")
	// ErrTerminal rejects canceling a job that already finished. Maps
	// to 409.
	ErrTerminal = errors.New("serve: job already terminal")
)

// Options tunes the serving subsystem; zero values get sensible
// defaults (see New).
type Options struct {
	// QueueDepth bounds the admission FIFO: jobs beyond the bound are
	// rejected with ErrQueueFull. Default 16.
	QueueDepth int
	// JobWorkers is how many jobs execute concurrently; each job's
	// cells then fan out on the orchestrator pool. Default 1 — FIFO
	// jobs, parallel cells — which keeps one big sweep from starving
	// interactive submissions of cache bandwidth but not CPU.
	JobWorkers int
	// Parallel is the orchestrator worker-pool width per job
	// (≤0 = GOMAXPROCS).
	Parallel int
	// CacheDir, when non-empty, memoizes cell results on disk so
	// identical cells — across jobs, restarts, and CLI runs sharing
	// the directory — are served without re-execution.
	CacheDir string
	// JournalDir, when non-empty, enables the crash-safe job WAL: every
	// admission and lifecycle transition is fsynced to
	// <JournalDir>/jobs.wal, and NewManager replays it — terminal jobs
	// stay readable, interrupted jobs are re-admitted under their
	// existing IDs and finish from per-cell cache hits. Pair it with
	// CacheDir; without the cache a recovered job recomputes its cells.
	JournalDir string
	// JobTimeout caps one job's execution wall time. Default 15m.
	JobTimeout time.Duration
	// MaxCells rejects grids larger than this at admission. Default
	// 1024.
	MaxCells int
	// RetryAfter is the backpressure hint returned with 429. Default
	// 5s.
	RetryAfter time.Duration
	// Retries is per-cell retry insurance, as in core.SweepOptions.
	Retries int
	// Hooks receive orchestrator telemetry from every job, in addition
	// to the manager's own metrics hook. Hooks must be safe for
	// concurrent runs when JobWorkers > 1.
	Hooks []exp.Hook
	// Executor, when non-nil, replaces local orchestrator execution: an
	// admitted job's cells are handed to it instead of running on this
	// process's worker pool. This is the coordinator seam — internal/dist
	// plugs in here to shard cells across a worker fleet while the whole
	// HTTP surface (admission, dedupe, events, job WAL) stays unchanged.
	// The seam is sweep-typed: LBS jobs (POST /v1/lbs) always execute on
	// the local lbs orchestrator, Executor or not.
	// The hook carries the job's event stream plus the manager's metrics;
	// implementations must emit per-cell telemetry through it and return
	// one Outcome per cell in input order, mirroring
	// exp.Orchestrator.ExecuteContext semantics (including context-error
	// outcomes for cells abandoned to cancellation).
	Executor Executor
	// ExtraMetrics, when non-nil, is appended to every /metrics response
	// after the manager's own series — the seam for subsystem metrics
	// (the dist coordinator's fleet gauges) without a registry.
	ExtraMetrics func(w io.Writer)
	// Logf, when non-nil, receives job lifecycle log lines
	// (log.Printf-shaped). Default: silent.
	Logf func(format string, args ...any)
}

// Executor runs one job's cells somewhere other than the local
// orchestrator (see Options.Executor). req is the job's normalized
// request, cells its expansion in fold order.
type Executor func(ctx context.Context, req SweepRequest, cells []exp.Cell[core.Config], hook exp.Hook) ([]exp.Outcome[core.Result], error)

// Manager owns the job table, the bounded admission queue, and the
// scheduler workers that drain it onto one shared exp.Orchestrator.
//
// Lock ordering: m.mu before any Job.mu — Submit, Cancel, and the
// replay path all nest that way; nothing may take m.mu while holding a
// job's lock.
type Manager struct {
	opts Options
	orch *exp.Orchestrator[core.Config, core.Result]
	// lbsOrch runs LBS jobs. It shares CacheDir with orch — the cache is
	// content-addressed over (SchemaVersion, config), so the two cell
	// types coexist in one directory without key collisions.
	lbsOrch *exp.Orchestrator[lbs.Config, lbs.Result]
	met     *Metrics

	// journal, when non-nil, is the job WAL (see Options.JournalDir).
	// Appends are serialized by the journal itself.
	journal *durable.Journal

	// baseCtx parents every job's execution context; baseCancel is the
	// drain deadline's hammer.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	queue    chan *Job
	draining bool

	workers sync.WaitGroup
}

// NewManager builds a manager and starts its scheduler workers.
func NewManager(opts Options) (*Manager, error) {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 1
	}
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = 15 * time.Minute
	}
	if opts.MaxCells <= 0 {
		opts.MaxCells = 1024
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 5 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}

	met := &Metrics{}
	orch, err := core.NewOrchestrator(core.SweepOptions{
		Parallel: opts.Parallel,
		CacheDir: opts.CacheDir,
		Retries:  opts.Retries,
		Hooks:    append([]exp.Hook{met}, opts.Hooks...),
	})
	if err != nil {
		return nil, err
	}
	lbsOrch, err := lbs.NewOrchestrator(lbs.Options{
		Parallel: opts.Parallel,
		CacheDir: opts.CacheDir,
		Retries:  opts.Retries,
		Hooks:    append([]exp.Hook{met}, opts.Hooks...),
	})
	if err != nil {
		return nil, err
	}

	// Recover the job WAL before anything is admitted: the queue must be
	// sized to hold every interrupted job being re-admitted.
	var (
		journal     *durable.Journal
		replayed    []*walJob
		replayRecs  int
		replayStart = time.Now()
	)
	if opts.JournalDir != "" {
		journal, replayed, replayRecs, err = openWAL(opts.JournalDir)
		if err != nil {
			return nil, err
		}
	}
	interrupted := 0
	for _, wj := range replayed {
		if !wj.state.Terminal() {
			interrupted++
		}
	}
	queueCap := opts.QueueDepth
	if queueCap < interrupted {
		queueCap = interrupted
	}

	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		orch:       orch,
		lbsOrch:    lbsOrch,
		met:        met,
		journal:    journal,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, queueCap),
	}

	// Rebuild the job table: terminal jobs are restored read-only (their
	// points came back in the done record), interrupted jobs re-enter
	// the queue under their recorded content-address IDs — the workers
	// have not started yet, so the buffered sends cannot block.
	for _, wj := range replayed {
		if wj.state.Terminal() {
			m.jobs[wj.id] = restoreJob(wj)
			m.order = append(m.order, wj.id)
			continue
		}
		var j *Job
		if wj.lbsReq != nil {
			j = newLBSJob(wj.id, *wj.lbsReq, wj.created)
		} else {
			j = newJob(wj.id, wj.req, wj.created)
		}
		m.jobs[wj.id] = j
		m.order = append(m.order, wj.id)
		m.queue <- j
		m.met.jobsReadmitted.Add(1)
		m.opts.Logf("serve: %v re-admitted from journal (%d cells)", j, j.totalCells())
	}
	if journal != nil {
		wall := time.Since(replayStart)
		m.met.journalReplays.Add(1)
		m.met.journalReplayRecords.Store(int64(replayRecs))
		m.met.journalReplayNS.Store(int64(wall))
		m.opts.Logf("serve: journal replayed %d records in %v (%d jobs restored, %d re-admitted)",
			replayRecs, wall.Round(time.Millisecond), len(replayed)-interrupted, interrupted)
	}

	for i := 0; i < opts.JobWorkers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	return m, nil
}

// Metrics exposes the manager's counters for the /metrics handler.
func (m *Manager) Metrics() *Metrics { return m.met }

// QueueStats samples admission-queue depth and capacity.
func (m *Manager) QueueStats() (depth, capacity int) {
	return len(m.queue), cap(m.queue)
}

// Draining reports whether the manager has stopped admitting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Cache exposes the shared result cache (nil when caching is off), for
// the daemon's periodic GC.
func (m *Manager) Cache() *exp.Cache { return m.orch.Cache }

// Submit admits one sweep request. The job ID is the content address
// of the normalized request, so resubmitting an identical grid returns
// the existing job — queued, running, or done — instead of a new one
// (created=false). A previously failed or canceled identical request
// is re-admitted as a fresh attempt under the same ID.
func (m *Manager) Submit(req SweepRequest) (job *Job, created bool, err error) {
	norm, _, err := req.normalize(m.opts.MaxCells)
	if err != nil {
		return nil, false, err
	}
	id, err := exp.KeyOf(norm)
	if err != nil {
		return nil, false, fmt.Errorf("serve: request not encodable: %w", err)
	}
	return m.admit(id, func(now time.Time) *Job { return newJob(id, norm, now) },
		walRecord{Op: walAdmit, ID: id, Req: &norm})
}

// SubmitLBS admits one LBS privacy-vs-utility grid (POST /v1/lbs) with
// the same dedupe, queueing, and WAL semantics as Submit. The ID is the
// content address of the normalized request under a "lbs" kind tag, so
// an LBS grid can never collide with a routing sweep.
func (m *Manager) SubmitLBS(req lbs.SweepRequest) (job *Job, created bool, err error) {
	norm, err := req.Normalize()
	if err != nil {
		return nil, false, err
	}
	if n := norm.NumCells(); n > m.opts.MaxCells {
		return nil, false, fmt.Errorf("serve: request expands to %d cells, limit %d", n, m.opts.MaxCells)
	}
	id, err := exp.KeyOf(struct {
		Kind string           `json:"kind"`
		Req  lbs.SweepRequest `json:"req"`
	}{JobKindLBS, norm})
	if err != nil {
		return nil, false, fmt.Errorf("serve: request not encodable: %w", err)
	}
	return m.admit(id, func(now time.Time) *Job { return newLBSJob(id, norm, now) },
		walRecord{Op: walAdmit, ID: id, LBSReq: &norm})
}

// admit runs the shared admission path: dedupe against the job table,
// enqueue, journal, register. rec is the admit WAL record minus its
// timestamp.
func (m *Manager) admit(id string, build func(now time.Time) *Job, rec walRecord) (job *Job, created bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.jobs[id]; ok && !isRetryable(existing.State()) {
		m.met.jobsDeduped.Add(1)
		return existing, false, nil
	}
	if m.draining {
		return nil, false, ErrDraining
	}
	now := time.Now()
	j := build(now)
	// Enqueue while holding m.mu: Drain closes the queue under the
	// same lock, so a send can never race the close.
	select {
	case m.queue <- j:
	default:
		m.met.jobsRejected.Add(1)
		return nil, false, ErrQueueFull
	}
	// The admit record is fsynced before Submit returns, so any job the
	// client saw acknowledged survives a crash and is re-admitted on the
	// next boot. (A rejected submission writes nothing — nothing to
	// resurrect.)
	rec.Time = now
	m.appendWAL(rec)
	if _, resubmitted := m.jobs[id]; !resubmitted {
		m.order = append(m.order, id)
	}
	m.jobs[id] = j
	m.met.jobsSubmitted.Add(1)
	m.opts.Logf("serve: %v admitted (%d cells, queue %d/%d)", j, j.totalCells(), len(m.queue), cap(m.queue))
	return j, true, nil
}

// isRetryable reports whether a terminal state allows the same content
// address to be submitted again as a fresh job.
func isRetryable(s JobState) bool { return s == JobFailed || s == JobCanceled }

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs lists all jobs in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel stops a job: a queued job is marked canceled (the scheduler
// skips it on dequeue), a running job has its context torn down — the
// orchestrator then abandons pending cells and interrupts in-flight
// simulations. Canceling a terminal job returns ErrTerminal.
//
// The queued→canceled transition happens while holding the manager
// mutex: Submit's dedupe-vs-re-admit decision runs under the same lock,
// so a POST racing a DELETE on the same content-address ID observes
// either the live job (dedupe) or the completed cancellation
// (re-admission as a fresh attempt) — never a half-canceled hybrid.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	j.mu.Lock()
	state := j.state
	if state.Terminal() {
		j.mu.Unlock()
		m.mu.Unlock()
		return ErrTerminal
	}
	j.canceled = true
	cancel := j.cancel
	j.mu.Unlock()

	if state == JobQueued {
		now := time.Now()
		j.transition(JobCanceled, "canceled while queued", now)
		m.met.jobsCanceled.Add(1)
		m.appendWAL(walRecord{Op: walCancel, ID: id, Time: now, Err: "canceled while queued"})
		m.mu.Unlock()
		m.opts.Logf("serve: %v canceled while queued", j)
		return nil
	}
	m.mu.Unlock()
	if cancel != nil {
		cancel() // runJob observes the context error and finishes the bookkeeping
	}
	m.opts.Logf("serve: %v cancel requested", j)
	return nil
}

// worker is one scheduler loop: dequeue, skip stale cancels, execute.
func (m *Manager) worker() {
	defer m.workers.Done()
	for j := range m.queue {
		if j.State() != JobQueued {
			continue // canceled while queued
		}
		if m.baseCtx.Err() != nil {
			// Drain deadline passed: everything still queued cancels.
			now := time.Now()
			if j.transition(JobCanceled, "server shutting down", now) {
				m.met.jobsCanceled.Add(1)
				m.appendWAL(walRecord{Op: walCancel, ID: j.ID, Time: now, Err: "server shutting down"})
			}
			continue
		}
		m.runJob(j)
	}
}

// runJob executes one job on the shared orchestrator under its own
// cancellable, deadline-bounded context, then folds the outcome grid
// into DensityPoints.
func (m *Manager) runJob(j *Job) {
	ctx, cancel := context.WithTimeout(m.baseCtx, m.opts.JobTimeout)
	defer cancel()

	j.mu.Lock()
	if j.canceled { // cancel raced the dequeue
		j.mu.Unlock()
		now := time.Now()
		if j.transition(JobCanceled, "canceled while queued", now) {
			m.met.jobsCanceled.Add(1)
			m.appendWAL(walRecord{Op: walCancel, ID: j.ID, Time: now, Err: "canceled while queued"})
		}
		return
	}
	j.cancel = cancel
	j.mu.Unlock()

	startNow := time.Now()
	j.transition(JobRunning, "", startNow)
	m.appendWAL(walRecord{Op: walStart, ID: j.ID, Time: startNow})
	m.met.jobsRunning.Add(1)
	defer m.met.jobsRunning.Add(-1)
	m.opts.Logf("serve: %v started (%d cells)", j, j.totalCells())

	start := time.Now()
	if j.LBSReq != nil {
		m.runLBSCells(ctx, j, start)
		return
	}

	protos := make([]core.Protocol, len(j.Req.Protocols))
	for i, name := range j.Req.Protocols {
		protos[i], _ = ParseProtocol(name) // validated at admission
	}
	cells := core.SweepCells(j.Req.Base, j.Req.NodeCounts, protos, j.Req.Repeats)
	var (
		outs []exp.Outcome[core.Result]
		err  error
	)
	if m.opts.Executor != nil {
		// Distributed execution: the executor owns telemetry emission, so
		// it gets the metrics hook (the orchestrator would normally carry
		// it) alongside the job's event stream.
		outs, err = m.opts.Executor(ctx, j.Req, cells, exp.Multi{m.met, j})
	} else {
		outs, err = m.orch.ExecuteContext(ctx, cells, j)
	}
	counts := settleCells(j, outs)
	m.finishJob(ctx, j, start, err, counts, func() walRecord {
		// A run that finished cleanly is done even if the context died
		// a moment later — completed results are never discarded.
		points := core.FoldSweep(j.Req.NodeCounts, protos, j.Req.Repeats, outs)
		j.mu.Lock()
		j.points = points
		j.mu.Unlock()
		return walRecord{Points: points}
	})
}

// runLBSCells is runJob's LBS half: the grid always executes on the
// local lbs orchestrator (the Executor seam is sweep-typed) and folds
// into curve points instead of density points.
func (m *Manager) runLBSCells(ctx context.Context, j *Job, start time.Time) {
	outs, err := m.lbsOrch.ExecuteContext(ctx, j.LBSReq.Cells(), j)
	counts := settleCells(j, outs)
	m.finishJob(ctx, j, start, err, counts, func() walRecord {
		curves := lbs.Fold(*j.LBSReq, outs)
		j.mu.Lock()
		j.curves = curves
		j.mu.Unlock()
		return walRecord{Curves: curves}
	})
}

// settleCells tallies an outcome grid into the job's cell counts and
// releases the job's cancel hook now that execution is over.
func settleCells[R any](j *Job, outs []exp.Outcome[R]) CellCounts {
	counts := CellCounts{Total: len(outs)}
	for _, o := range outs {
		if o.Cached {
			counts.Cached++
		}
		if o.Err != nil {
			counts.Failed++
		}
	}
	j.mu.Lock()
	j.cells = counts
	j.cancel = nil
	j.mu.Unlock()
	return counts
}

// finishJob lands a finished run in its terminal state, with the WAL
// record and metrics that state owes. commitDone runs only on clean
// completion: it stores the folded result on the job and returns the
// done record's result payload (Op/ID/Time/Cells are filled in here).
func (m *Manager) finishJob(ctx context.Context, j *Job, start time.Time, err error, counts CellCounts, commitDone func() walRecord) {
	now := time.Now()
	switch {
	case err != nil && errors.Is(ctx.Err(), context.Canceled):
		if j.transition(JobCanceled, "canceled", now) {
			m.met.jobsCanceled.Add(1)
			m.appendWAL(walRecord{Op: walCancel, ID: j.ID, Time: now, Err: "canceled"})
		}
		m.opts.Logf("serve: %v canceled after %v", j, now.Sub(start).Round(time.Millisecond))
	case err != nil && errors.Is(ctx.Err(), context.DeadlineExceeded):
		msg := fmt.Sprintf("job timeout %v exceeded", m.opts.JobTimeout)
		if j.transition(JobFailed, msg, now) {
			m.met.jobsFailed.Add(1)
			m.appendWAL(walRecord{Op: walFail, ID: j.ID, Time: now, Err: msg})
		}
		m.opts.Logf("serve: %v timed out after %v", j, now.Sub(start).Round(time.Millisecond))
	case err != nil:
		if j.transition(JobFailed, err.Error(), now) {
			m.met.jobsFailed.Add(1)
			m.appendWAL(walRecord{Op: walFail, ID: j.ID, Time: now, Err: err.Error()})
		}
		m.opts.Logf("serve: %v failed: %v", j, err)
	default:
		rec := commitDone()
		if j.transition(JobDone, "", now) {
			m.met.jobsDone.Add(1)
			// The done record carries the folded result, so a restarted
			// daemon serves this job without touching the orchestrator.
			cc := counts
			rec.Op, rec.ID, rec.Time, rec.Cells = walDone, j.ID, now, &cc
			m.appendWAL(rec)
		}
		m.opts.Logf("serve: %v done in %v (%d/%d cells cached)",
			j, now.Sub(start).Round(time.Millisecond), counts.Cached, counts.Total)
	}
}

// Drain shuts the manager down gracefully: admission closes
// immediately (new submissions get ErrDraining, dedupe reads keep
// working), queued and running jobs are given until ctx's deadline to
// finish, then everything still in flight is canceled. Completed
// results remain readable after Drain returns — the job table is never
// dropped.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	close(m.queue) // safe: Submit enqueues under m.mu and checks draining first
	m.mu.Unlock()
	m.opts.Logf("serve: draining (%d queued)", len(m.queue))

	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: hammer every in-flight job context, then wait for
		// the workers — cancellation propagates into the engine's
		// interrupt poll, so this is prompt.
		m.baseCancel()
		<-done
		err = ctx.Err()
	}
	// Workers are quiet now; every terminal record is committed. Closing
	// the journal is hygiene — each append was already fsynced.
	if m.journal != nil {
		_ = m.journal.Close()
	}
	return err
}

// LogStd adapts the standard logger for Options.Logf.
func LogStd(format string, args ...any) { log.Printf(format, args...) }

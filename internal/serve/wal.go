package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"anongeo/internal/core"
	"anongeo/internal/durable"
	"anongeo/internal/lbs"
)

// The serve daemon's write-ahead log. Every job lifecycle decision is
// committed to an append-only durable.Journal before (admission) or
// immediately after (transitions) it takes effect in memory, so a
// SIGKILL at any instant loses at most the record being written:
//
//	admit  — the normalized request, before the job enters the queue
//	start  — a scheduler worker picked the job up
//	done   — the folded grid points and cell counts (the full result,
//	         so status reads survive restarts without recomputation)
//	fail   — terminal failure with the error message
//	cancel — terminal cancellation
//
// On boot the journal is replayed: jobs whose last record is terminal
// are restored read-only (GET /v1/jobs/{id} keeps working), jobs whose
// last record is admit/start are re-admitted to the queue under their
// existing content-address IDs — their completed cells are already in
// the result cache, so the restarted run finishes on cache hits instead
// of recomputing. After replay the journal is compacted to one
// admit(+terminal) pair per live job.

// walOp names a WAL record type.
type walOp string

const (
	walAdmit  walOp = "admit"
	walStart  walOp = "start"
	walDone   walOp = "done"
	walFail   walOp = "fail"
	walCancel walOp = "cancel"
)

// walFileName is the journal file under Options.JournalDir.
const walFileName = "jobs.wal"

// walRecord is one journal entry, JSON-encoded inside the durable
// frame. Fields are per-op: Req (or LBSReq, for LBS jobs) on admit,
// Points/Curves/Cells on done, Err on fail/cancel. LBS fields are
// omitempty additions, so sweep-job records are byte-identical to what
// pre-LBS builds wrote and either build replays the other's journal.
type walRecord struct {
	Op   walOp     `json:"op"`
	ID   string    `json:"id"`
	Time time.Time `json:"time"`

	Req    *SweepRequest       `json:"req,omitempty"`
	LBSReq *lbs.SweepRequest   `json:"lbs_req,omitempty"`
	Err    string              `json:"err,omitempty"`
	Points []core.DensityPoint `json:"points,omitempty"`
	Curves []lbs.CurvePoint    `json:"curves,omitempty"`
	Cells  *CellCounts         `json:"cells,omitempty"`
}

// walJob is one job's state as folded from the journal during replay.
type walJob struct {
	id       string
	req      SweepRequest
	lbsReq   *lbs.SweepRequest
	state    JobState
	err      string
	points   []core.DensityPoint
	curves   []lbs.CurvePoint
	cells    CellCounts
	created  time.Time
	started  time.Time
	finished time.Time
}

// foldWAL folds raw journal payloads into per-job state in first-admit
// order. Records that fail to decode (version skew from a future or
// past build — the CRC already proved they are not torn) are skipped,
// as are transitions for jobs with no surviving admit record: recovery
// prefers losing a record to inventing state.
func foldWAL(payloads [][]byte) []*walJob {
	var order []string
	jobs := make(map[string]*walJob)
	for _, p := range payloads {
		var rec walRecord
		if err := json.Unmarshal(p, &rec); err != nil || rec.ID == "" {
			continue
		}
		switch rec.Op {
		case walAdmit:
			if rec.Req == nil && rec.LBSReq == nil {
				continue
			}
			j, ok := jobs[rec.ID]
			if !ok {
				j = &walJob{id: rec.ID}
				jobs[rec.ID] = j
				order = append(order, rec.ID)
			}
			// A re-admit after a failed/canceled attempt restarts the
			// lifecycle under the same ID, exactly like Submit does.
			j.req, j.lbsReq = SweepRequest{}, nil
			if rec.Req != nil {
				j.req = *rec.Req
			} else {
				j.lbsReq = rec.LBSReq
			}
			j.state = JobQueued
			j.err = ""
			j.points, j.curves = nil, nil
			j.cells = CellCounts{}
			j.created = rec.Time
			j.started, j.finished = time.Time{}, time.Time{}
		case walStart:
			if j, ok := jobs[rec.ID]; ok && !j.state.Terminal() {
				j.state = JobRunning
				j.started = rec.Time
			}
		case walDone:
			if j, ok := jobs[rec.ID]; ok && !j.state.Terminal() {
				j.state = JobDone
				j.points = rec.Points
				j.curves = rec.Curves
				if rec.Cells != nil {
					j.cells = *rec.Cells
				}
				j.finished = rec.Time
			}
		case walFail:
			if j, ok := jobs[rec.ID]; ok && !j.state.Terminal() {
				j.state = JobFailed
				j.err = rec.Err
				j.finished = rec.Time
			}
		case walCancel:
			if j, ok := jobs[rec.ID]; ok && !j.state.Terminal() {
				j.state = JobCanceled
				j.err = rec.Err
				j.finished = rec.Time
			}
		}
	}
	out := make([]*walJob, 0, len(order))
	for _, id := range order {
		out = append(out, jobs[id])
	}
	return out
}

// snapshotWAL renders the compacted journal for a set of replayed jobs:
// one admit record per job, plus its start/terminal records. Replaying
// the snapshot folds back to the same state as replaying the full
// history.
func snapshotWAL(jobs []*walJob) ([][]byte, error) {
	var recs [][]byte
	add := func(rec walRecord) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		recs = append(recs, b)
		return nil
	}
	for _, j := range jobs {
		admit := walRecord{Op: walAdmit, ID: j.id, Time: j.created, LBSReq: j.lbsReq}
		if j.lbsReq == nil {
			req := j.req
			admit.Req = &req
		}
		if err := add(admit); err != nil {
			return nil, err
		}
		if !j.started.IsZero() && j.state != JobQueued {
			if err := add(walRecord{Op: walStart, ID: j.id, Time: j.started}); err != nil {
				return nil, err
			}
		}
		var term *walRecord
		switch j.state {
		case JobDone:
			cells := j.cells
			term = &walRecord{Op: walDone, ID: j.id, Time: j.finished, Points: j.points, Curves: j.curves, Cells: &cells}
		case JobFailed:
			term = &walRecord{Op: walFail, ID: j.id, Time: j.finished, Err: j.err}
		case JobCanceled:
			term = &walRecord{Op: walCancel, ID: j.id, Time: j.finished, Err: j.err}
		}
		if term != nil {
			if err := add(*term); err != nil {
				return nil, err
			}
		}
	}
	return recs, nil
}

// openWAL recovers the journal under dir: replay, compact, reopen. It
// returns the journal handle positioned for appending, the folded jobs,
// and how many raw records the recovery scan accepted.
func openWAL(dir string) (*durable.Journal, []*walJob, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal dir: %w", err)
	}
	path := filepath.Join(dir, walFileName)
	j, payloads, err := durable.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	jobs := foldWAL(payloads)
	// Compact: the full history collapses to one snapshot per job, so
	// the journal stays bounded by the job table instead of growing with
	// every restart.
	snap, err := snapshotWAL(jobs)
	if err != nil {
		j.Close()
		return nil, nil, 0, fmt.Errorf("serve: journal compaction: %w", err)
	}
	if err := j.Close(); err != nil {
		return nil, nil, 0, err
	}
	if err := durable.Rewrite(path, snap); err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal compaction: %w", err)
	}
	j, _, err = durable.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	return j, jobs, len(payloads), nil
}

// appendWAL commits one record to the journal, if one is configured.
// Journal append failures must not fail jobs — the daemon keeps serving
// with degraded durability — but they are logged and counted.
func (m *Manager) appendWAL(rec walRecord) {
	if m.journal == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err == nil {
		err = m.journal.Append(b)
	}
	if err != nil {
		m.met.journalAppendErrors.Add(1)
		m.opts.Logf("serve: journal append (%s %s): %v", rec.Op, shortID(rec.ID), err)
	}
}

package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"anongeo/internal/exp"
)

// cellWallBuckets are the upper bounds (seconds) of the per-cell
// wall-time histogram. Cells span ~milliseconds (cached misses rerun
// tiny smoke configs) to minutes (dense 150-node AGFW grids), so the
// buckets are roughly logarithmic across that range.
var cellWallBuckets = [...]float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// Metrics is the daemon's observability surface: lock-free counters
// updated on the serving hot paths and rendered on demand in Prometheus
// text exposition format (version 0.0.4) by WritePrometheus. It doubles
// as an exp.Hook so the shared orchestrator feeds per-cell outcomes and
// latencies straight into it; atomics make it safe under any number of
// concurrent jobs.
type Metrics struct {
	jobsSubmitted atomic.Int64 // admitted as new jobs
	jobsDeduped   atomic.Int64 // submissions answered by an existing job
	jobsRejected  atomic.Int64 // 429s: queue full
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCanceled  atomic.Int64
	jobsRunning   atomic.Int64 // in-flight gauge

	cellsExecuted atomic.Int64
	cellsCached   atomic.Int64
	cellsFailed   atomic.Int64
	cellsCanceled atomic.Int64

	// Durability counters: journal recovery at boot and WAL health
	// while serving.
	jobsReadmitted       atomic.Int64 // interrupted jobs re-admitted from the WAL
	journalReplays       atomic.Int64 // boots that replayed a journal
	journalReplayRecords atomic.Int64 // records recovered at the last replay
	journalReplayNS      atomic.Int64 // wall time of the last replay
	journalAppendErrors  atomic.Int64 // WAL appends that failed (durability degraded)

	// Histogram of per-cell execution wall time: cumulative bucket
	// counts (le=cellWallBuckets[i]), total count, and summed
	// nanoseconds (converted to seconds at scrape time).
	wallBuckets [len(cellWallBuckets)]atomic.Int64
	wallCount   atomic.Int64
	wallSumNS   atomic.Int64
}

// Emit implements exp.Hook, counting cell outcomes from every job
// sharing the orchestrator.
func (m *Metrics) Emit(ev exp.Event) {
	switch ev.Type {
	case exp.EventCellCached:
		m.cellsCached.Add(1)
	case exp.EventCellCanceled:
		m.cellsCanceled.Add(1)
	case exp.EventCellFinished:
		if ev.Err != "" {
			m.cellsFailed.Add(1)
		} else {
			m.cellsExecuted.Add(1)
		}
		m.observeWall(ev.Wall)
	}
}

func (m *Metrics) observeWall(d time.Duration) {
	sec := d.Seconds()
	for i, le := range cellWallBuckets {
		if sec <= le {
			m.wallBuckets[i].Add(1)
		}
	}
	m.wallCount.Add(1)
	m.wallSumNS.Add(int64(d))
}

// WritePrometheus renders every metric. queueDepth, queueCapacity, and
// cacheQuarantined are sampled by the caller (the manager owns the
// queue and the cache handle) at scrape time.
func (m *Metrics) WritePrometheus(w io.Writer, queueDepth, queueCapacity int, cacheQuarantined int64) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("agrsimd_jobs_submitted_total", "Sweep jobs admitted to the queue.", m.jobsSubmitted.Load())
	counter("agrsimd_jobs_deduped_total", "Submissions answered by an existing job with the same content address.", m.jobsDeduped.Load())
	counter("agrsimd_jobs_rejected_total", "Submissions rejected by admission control (queue full).", m.jobsRejected.Load())

	fmt.Fprintf(w, "# HELP agrsimd_jobs_finished_total Jobs that reached a terminal state.\n# TYPE agrsimd_jobs_finished_total counter\n")
	fmt.Fprintf(w, "agrsimd_jobs_finished_total{state=\"done\"} %d\n", m.jobsDone.Load())
	fmt.Fprintf(w, "agrsimd_jobs_finished_total{state=\"failed\"} %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "agrsimd_jobs_finished_total{state=\"canceled\"} %d\n", m.jobsCanceled.Load())

	gauge("agrsimd_jobs_running", "Jobs currently executing on the scheduler.", m.jobsRunning.Load())
	gauge("agrsimd_queue_depth", "Jobs waiting in the admission queue.", int64(queueDepth))
	gauge("agrsimd_queue_capacity", "Admission queue bound; depth == capacity means new submissions get 429.", int64(queueCapacity))

	executed, cached := m.cellsExecuted.Load(), m.cellsCached.Load()
	fmt.Fprintf(w, "# HELP agrsimd_cells_total Grid cells by outcome across all jobs.\n# TYPE agrsimd_cells_total counter\n")
	fmt.Fprintf(w, "agrsimd_cells_total{outcome=\"executed\"} %d\n", executed)
	fmt.Fprintf(w, "agrsimd_cells_total{outcome=\"cached\"} %d\n", cached)
	fmt.Fprintf(w, "agrsimd_cells_total{outcome=\"failed\"} %d\n", m.cellsFailed.Load())
	fmt.Fprintf(w, "agrsimd_cells_total{outcome=\"canceled\"} %d\n", m.cellsCanceled.Load())

	ratio := 0.0
	if total := executed + cached; total > 0 {
		ratio = float64(cached) / float64(total)
	}
	fmt.Fprintf(w, "# HELP agrsimd_cache_hit_ratio Fraction of resolved cells served from the result cache.\n# TYPE agrsimd_cache_hit_ratio gauge\nagrsimd_cache_hit_ratio %g\n", ratio)

	counter("agrsimd_jobs_readmitted_total", "Interrupted jobs re-admitted from the journal at boot.", m.jobsReadmitted.Load())
	counter("agrsimd_journal_replays_total", "Boots that recovered a job journal.", m.journalReplays.Load())
	gauge("agrsimd_journal_replay_records", "WAL records recovered by the most recent journal replay.", m.journalReplayRecords.Load())
	fmt.Fprintf(w, "# HELP agrsimd_journal_replay_seconds Wall time of the most recent journal replay.\n# TYPE agrsimd_journal_replay_seconds gauge\nagrsimd_journal_replay_seconds %g\n",
		float64(m.journalReplayNS.Load())/1e9)
	counter("agrsimd_journal_append_errors_total", "WAL appends that failed; jobs keep running with degraded durability.", m.journalAppendErrors.Load())
	counter("agrsimd_cache_quarantined_total", "Cache entries that failed their integrity check and were quarantined.", cacheQuarantined)

	fmt.Fprintf(w, "# HELP agrsimd_cell_wall_seconds Wall-clock execution time per non-cached cell.\n# TYPE agrsimd_cell_wall_seconds histogram\n")
	for i, le := range cellWallBuckets {
		fmt.Fprintf(w, "agrsimd_cell_wall_seconds_bucket{le=\"%g\"} %d\n", le, m.wallBuckets[i].Load())
	}
	count := m.wallCount.Load()
	fmt.Fprintf(w, "agrsimd_cell_wall_seconds_bucket{le=\"+Inf\"} %d\n", count)
	fmt.Fprintf(w, "agrsimd_cell_wall_seconds_sum %g\n", float64(m.wallSumNS.Load())/1e9)
	fmt.Fprintf(w, "agrsimd_cell_wall_seconds_count %d\n", count)
}

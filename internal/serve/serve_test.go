package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anongeo/internal/core"
	"anongeo/internal/geo"
)

// tinyBase is a scenario small enough that a grid cell runs in a few
// milliseconds: a static 600×300 arena, 3 flows, 5 simulated seconds.
func tinyBase() core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes = 12
	cfg.Area = geo.NewRect(600, 300)
	cfg.Static = true
	cfg.MinSpeed, cfg.MaxSpeed = 0, 0
	cfg.Pause = 0
	cfg.Flows = 3
	cfg.Senders = 3
	cfg.PacketInterval = 250 * time.Millisecond
	cfg.Duration = 5 * time.Second
	cfg.Warmup = time.Second
	cfg.Protocol = core.ProtoGPSR
	cfg.Policy = 0
	cfg.ReachFilter = false
	return cfg
}

func tinyRequest() SweepRequest {
	return SweepRequest{Base: tinyBase(), NodeCounts: []int{10, 14}, Protocols: []string{"gpsr"}}
}

// newTestServer boots a serving stack around opts. When stub is
// non-nil it replaces the simulator, so job duration and failure are
// test-controlled; the stub is installed before any request can reach
// the scheduler.
func newTestServer(t *testing.T, opts Options, stub func(context.Context, core.Config) (core.Result, error)) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stub != nil {
		srv.man.orch.RunCtx = stub
		srv.man.orch.Run = nil
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Manager().Drain(ctx)
	})
	return srv, ts
}

func postSweep(t *testing.T, ts *httptest.Server, req SweepRequest) (*http.Response, submitResponse) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, out
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET job: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job reached terminal state %q (err %q) while waiting for %q", st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job never reached state %q", want)
	return JobStatus{}
}

// TestSubmitRunResult drives the happy path end to end with the real
// simulator: submit, 202, poll to done, check the folded grid points.
func TestSubmitRunResult(t *testing.T) {
	_, ts := newTestServer(t, Options{}, nil)
	resp, out := postSweep(t, ts, tinyRequest())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if !out.Created || out.ID == "" {
		t.Fatalf("submit response: %+v", out)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+out.ID {
		t.Fatalf("Location = %q", loc)
	}

	st := waitState(t, ts, out.ID, JobDone)
	if st.Cells.Total != 2 || st.Cells.Failed != 0 {
		t.Fatalf("cells = %+v", st.Cells)
	}
	if len(st.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(st.Points))
	}
	for _, p := range st.Points {
		if p.Protocol != "GPSR-Greedy" || p.Sent == 0 || p.PDF <= 0 || p.PDF > 1 {
			t.Fatalf("implausible point: %+v", p)
		}
	}

	// The job list carries it, without the heavy points payload.
	resp2, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != out.ID || list.Jobs[0].Points != nil {
		t.Fatalf("job list: %+v", list.Jobs)
	}
}

// TestDedupeIdenticalSubmission pins the content-address contract: the
// same grid submitted twice is one job, and once it finished, the
// duplicate POST answers 200 with the full result instantly.
func TestDedupeIdenticalSubmission(t *testing.T) {
	srv, ts := newTestServer(t, Options{}, nil)
	_, first := postSweep(t, ts, tinyRequest())
	waitState(t, ts, first.ID, JobDone)

	resp, second := postSweep(t, ts, tinyRequest())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit status = %d, want 200", resp.StatusCode)
	}
	if second.Created {
		t.Fatal("duplicate submission claimed to create a new job")
	}
	if second.ID != first.ID {
		t.Fatalf("duplicate got a different job: %s vs %s", second.ID, first.ID)
	}
	if second.State != JobDone || len(second.Points) != 2 {
		t.Fatalf("duplicate response not the finished result: state %s, %d points", second.State, len(second.Points))
	}
	if n := srv.Manager().Metrics().jobsDeduped.Load(); n != 1 {
		t.Fatalf("jobsDeduped = %d, want 1", n)
	}

	// A semantically different grid (extra repeat) is a new job.
	req := tinyRequest()
	req.Repeats = 2
	resp3, third := postSweep(t, ts, req)
	if resp3.StatusCode != http.StatusAccepted || third.ID == first.ID {
		t.Fatalf("different grid deduped: status %d, id %s", resp3.StatusCode, third.ID)
	}
}

// TestCacheHitsAcrossServers is the restart story: a fresh daemon
// sharing the cache directory serves an identical grid without
// re-running any cell.
func TestCacheHitsAcrossServers(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Options{CacheDir: dir}, nil)
	_, first := postSweep(t, ts1, tinyRequest())
	st1 := waitState(t, ts1, first.ID, JobDone)
	if st1.Cells.Cached != 0 {
		t.Fatalf("first run claimed %d cached cells", st1.Cells.Cached)
	}

	srv2, ts2 := newTestServer(t, Options{CacheDir: dir}, nil)
	_, second := postSweep(t, ts2, tinyRequest())
	st2 := waitState(t, ts2, second.ID, JobDone)
	if st2.Cells.Cached != st2.Cells.Total {
		t.Fatalf("restarted server executed cells: %+v", st2.Cells)
	}
	if len(st2.Points) != len(st1.Points) {
		t.Fatalf("cached run returned %d points, first returned %d", len(st2.Points), len(st1.Points))
	}
	for i := range st2.Points {
		if st2.Points[i].PDF != st1.Points[i].PDF || st2.Points[i].Sent != st1.Points[i].Sent {
			t.Fatalf("cached point %d differs: %+v vs %+v", i, st2.Points[i], st1.Points[i])
		}
	}
	if ratio := srv2.Manager().Metrics().cellsCached.Load(); ratio != int64(st2.Cells.Total) {
		t.Fatalf("metrics cached cells = %d, want %d", ratio, st2.Cells.Total)
	}
}

// blockingStub returns a simulator stub that parks until the returned
// release function is called (or the cell's context dies), plus a
// channel that receives one signal per started cell.
func blockingStub() (stub func(context.Context, core.Config) (core.Result, error), started chan struct{}, release func()) {
	gate := make(chan struct{})
	started = make(chan struct{}, 64)
	stub = func(ctx context.Context, cfg core.Config) (core.Result, error) {
		started <- struct{}{}
		select {
		case <-gate:
			return core.Result{Protocol: cfg.Protocol, Nodes: cfg.Nodes}, nil
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		}
	}
	var once bool
	release = func() {
		if !once {
			once = true
			close(gate)
		}
	}
	return stub, started, release
}

// distinctRequest returns a request whose content address differs per n.
func distinctRequest(n int) SweepRequest {
	base := tinyBase()
	base.Seed = int64(1000 + n)
	return SweepRequest{Base: base}
}

// TestQueueFullGives429 fills the bounded queue behind a blocked
// worker and checks admission control answers 429 with a Retry-After
// hint, and that the rejection is counted.
func TestQueueFullGives429(t *testing.T) {
	stub, started, release := blockingStub()
	defer release()
	srv, ts := newTestServer(t, Options{QueueDepth: 1, JobWorkers: 1, Parallel: 1}, stub)

	// Job 0 occupies the worker; wait until its cell is truly running
	// so it cannot also be sitting in the queue.
	_, run := postSweep(t, ts, distinctRequest(0))
	<-started
	// Job 1 fills the depth-1 queue.
	resp1, _ := postSweep(t, ts, distinctRequest(1))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit status = %d, want 202", resp1.StatusCode)
	}
	// Job 2 must bounce.
	resp2, _ := postSweep(t, ts, distinctRequest(2))
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit status = %d, want 429", resp2.StatusCode)
	}
	if ra := resp2.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive hint", ra)
	}
	if n := srv.Manager().Metrics().jobsRejected.Load(); n != 1 {
		t.Fatalf("jobsRejected = %d, want 1", n)
	}

	release()
	waitState(t, ts, run.ID, JobDone)
}

// TestCancelRunningJob cancels an in-flight job and checks the
// scheduler tears its context down promptly.
func TestCancelRunningJob(t *testing.T) {
	stub, started, release := blockingStub()
	defer release()
	_, ts := newTestServer(t, Options{Parallel: 1}, stub)

	_, out := postSweep(t, ts, distinctRequest(0))
	<-started // the cell is inside the stub, parked on its context

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+out.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStatus(t, ts, out.ID)
		if st.State == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after cancel", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Canceling a terminal job is a conflict.
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel status = %d, want 409", resp2.StatusCode)
	}
}

// TestCancelQueuedJob cancels a job that never reached the scheduler.
func TestCancelQueuedJob(t *testing.T) {
	stub, started, release := blockingStub()
	defer release()
	_, ts := newTestServer(t, Options{QueueDepth: 2, JobWorkers: 1, Parallel: 1}, stub)

	_, blocker := postSweep(t, ts, distinctRequest(0))
	<-started
	_, queued := postSweep(t, ts, distinctRequest(1))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := getStatus(t, ts, queued.ID); st.State != JobCanceled {
		t.Fatalf("queued job state after cancel = %q", st.State)
	}

	release()
	waitState(t, ts, blocker.ID, JobDone)
	// The canceled job must never have executed a cell.
	if st := getStatus(t, ts, queued.ID); st.Cells.Total != 0 {
		t.Fatalf("canceled-while-queued job ran cells: %+v", st.Cells)
	}
}

// TestEventStreamOrdering reads the NDJSON stream of a live job and
// checks framing and ordering: seqs strictly increasing, job-queued
// first, job-finished last, cell events in between, run counters
// monotone.
func TestEventStreamOrdering(t *testing.T) {
	_, ts := newTestServer(t, Options{}, nil)
	_, out := postSweep(t, ts, tinyRequest())

	resp, err := http.Get(ts.URL + "/v1/jobs/" + out.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var events []JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(events) < 4 {
		t.Fatalf("only %d events", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.JobID != out.ID {
			t.Fatalf("event %d job id %q", i, ev.JobID)
		}
	}
	if events[0].Type != eventJobQueued {
		t.Fatalf("first event %q, want job-queued", events[0].Type)
	}
	last := events[len(events)-1]
	if last.Type != eventJobFinished || last.State != JobDone {
		t.Fatalf("last event %q state %q, want job-finished/done", last.Type, last.State)
	}
	finishes := 0
	for _, ev := range events {
		if ev.Type == "cell-finished" {
			finishes++
		}
	}
	if finishes != 2 {
		t.Fatalf("saw %d cell-finished events, want 2", finishes)
	}

	// A replay after completion delivers the identical log.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + out.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(replay, []byte("\n")); n != len(events) {
		t.Fatalf("replay has %d lines, want %d", n, len(events))
	}
}

// TestEventStreamSSE checks the Server-Sent-Events framing variant.
func TestEventStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Options{}, nil)
	_, out := postSweep(t, ts, tinyRequest())
	waitState(t, ts, out.ID, JobDone)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+out.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "event: job-queued\n") || !strings.Contains(text, "event: job-finished\n") {
		t.Fatalf("SSE stream missing lifecycle frames:\n%s", text)
	}
	for _, block := range strings.Split(strings.TrimSpace(text), "\n\n") {
		if !strings.HasPrefix(block, "event: ") || !strings.Contains(block, "\ndata: {") {
			t.Fatalf("malformed SSE block:\n%s", block)
		}
	}
}

// TestBadRequests maps malformed submissions to 400s that name the
// problem, and unknown jobs to 404.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxCells: 8}, nil)
	post := func(body string) (*http.Response, string) {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}

	cases := []struct {
		name     string
		body     string
		wantSubs []string
	}{
		{"unknown top-level field", `{"bass": {}}`, []string{"bass"}},
		{"unknown config field", `{"base": {"Noddes": 50}}`, []string{"Noddes"}},
		{"invalid config value", `{"base": {"Nodes": 1, "RadioRange": 250, "Duration": 1000000000, "Flows": 1, "Senders": 1, "PacketInterval": 1000000, "Protocol": 1}}`, []string{"Nodes", "1"}},
		{"unknown protocol", `{"base": {"Nodes": 10, "RadioRange": 250, "Duration": 1000000000, "Flows": 1, "Senders": 1, "PacketInterval": 1000000, "Protocol": 1}, "protocols": ["ospf"]}`, []string{"ospf"}},
		{"grid too large", `{"base": {"Nodes": 10, "RadioRange": 250, "Duration": 1000000000, "Flows": 1, "Senders": 1, "PacketInterval": 1000000, "Protocol": 1}, "node_counts": [10,20,30], "repeats": 5}`, []string{"15", "cap"}},
		{"not json", `hello`, []string{"decode"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, body)
			}
			for _, sub := range tc.wantSubs {
				if !strings.Contains(body, sub) {
					t.Fatalf("error %q does not mention %q", body, sub)
				}
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestMetricsEndpoint scrapes /metrics after a run and spot-checks the
// exposition format and the headline series.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{CacheDir: t.TempDir()}, nil)
	_, out := postSweep(t, ts, tinyRequest())
	waitState(t, ts, out.ID, JobDone)
	postSweep(t, ts, tinyRequest()) // dedupe hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"agrsimd_jobs_submitted_total 1",
		"agrsimd_jobs_deduped_total 1",
		`agrsimd_jobs_finished_total{state="done"} 1`,
		"agrsimd_queue_capacity 16",
		`agrsimd_cells_total{outcome="executed"} 2`,
		"agrsimd_cache_hit_ratio 0",
		"agrsimd_cell_wall_seconds_count 2",
		"# TYPE agrsimd_cell_wall_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestHealthAndReady covers the probe endpoints through a drain.
func TestHealthAndReady(t *testing.T) {
	srv, ts := newTestServer(t, Options{}, nil)
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("healthz = %d", c)
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Fatalf("readyz = %d", c)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Manager().Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", c)
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", c)
	}
	// New submissions bounce with 503; reads keep working.
	resp, _ := postSweep(t, ts, tinyRequest())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
}

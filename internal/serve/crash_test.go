package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The crash-recovery test runs a real daemon in a child process so it
// can be SIGKILLed mid-grid — the one failure mode an in-process test
// cannot fake. The child is this very test binary re-executed with
// AGRSIMD_CRASH_HELPER=1, which routes it into crashHelperMain instead
// of the test runner.

const (
	helperEnv     = "AGRSIMD_CRASH_HELPER"
	helperAddrKey = "HELPER_ADDR="
)

// TestCrashHelperDaemon is the child-process entry point; under a
// normal `go test` run it is an instant no-op.
func TestCrashHelperDaemon(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper entry point; only meaningful when re-executed by TestCrashRecoverySIGKILL")
	}
	crashHelperMain()
}

// crashHelperMain boots a daemon with serial cells (one job worker, one
// orchestrator slot — a wide pool would finish the grid before the
// parent can kill us), prints the bound address, and serves until
// killed.
func crashHelperMain() {
	srv, err := New(Options{
		JournalDir: os.Getenv("AGRSIMD_JOURNAL"),
		CacheDir:   os.Getenv("AGRSIMD_CACHE"),
		JobWorkers: 1,
		Parallel:   1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	fmt.Printf("%s%s\n", helperAddrKey, ln.Addr().String())
	os.Stdout.Sync()
	if err := (&http.Server{Handler: srv.Handler()}).Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
}

// crashRequest is a grid whose cells take long enough (simulated
// minutes → ~hundreds of milliseconds wall each, serially) that a kill
// reliably lands mid-grid.
func crashRequest() SweepRequest {
	base := tinyBase()
	base.Duration = 1800 * time.Second
	base.Warmup = 2 * time.Second
	return SweepRequest{Base: base, NodeCounts: []int{10, 12, 14, 16, 18, 20}, Protocols: []string{"gpsr"}}
}

// spawnHelper re-executes the test binary as a daemon over the given
// journal and cache dirs and returns its base URL once it is listening.
func spawnHelper(t *testing.T, journalDir, cacheDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelperDaemon$", "-test.v")
	cmd.Env = append(os.Environ(),
		helperEnv+"=1",
		"AGRSIMD_JOURNAL="+journalDir,
		"AGRSIMD_CACHE="+cacheDir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, helperAddrKey) {
				addrc <- strings.TrimPrefix(line, helperAddrKey)
				break
			}
		}
		close(addrc)
		_, _ = io.Copy(io.Discard, stdout) // keep the pipe drained
	}()
	select {
	case addr, ok := <-addrc:
		if !ok || addr == "" {
			t.Fatal("helper daemon exited before printing its address")
		}
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("helper daemon never printed its address")
	}
	return nil, ""
}

// metricValue extracts one sample from Prometheus text exposition;
// series is the full name including any labels.
func metricValue(body, series string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			return v, err == nil
		}
	}
	return 0, false
}

func httpGetBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestCrashRecoverySIGKILL is the end-to-end durability proof: a
// daemon is SIGKILLed mid-grid, restarted over the same journal and
// cache directories, and must (a) re-admit the interrupted job under
// its original ID, (b) finish it without recomputing any cell that
// completed before the kill, and (c) produce points bit-identical to
// an uninterrupted in-process run of the same request.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash-recovery test; skipped in -short")
	}
	dir := t.TempDir()
	journalDir := filepath.Join(dir, "journal")
	cacheDir := filepath.Join(dir, "cache")
	req := crashRequest()
	totalCells := req.Cells()
	if totalCells == 0 {
		totalCells = len(req.NodeCounts) // Repeats defaults to 1 at normalize time
	}

	cmd, base := spawnHelper(t, journalDir, cacheDir)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d id %q, want 202", resp.StatusCode, sub.ID)
	}

	// Wait for the grid to be partially — not fully — executed, then
	// kill without warning.
	var executedBefore float64
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("daemon never reached a partially-executed grid")
		}
		_, metrics := httpGetBody(t, base+"/metrics")
		v, ok := metricValue(metrics, `agrsimd_cells_total{outcome="executed"}`)
		if ok && v >= 2 && v < float64(totalCells) {
			executedBefore = v
			break
		}
		if ok && v >= float64(totalCells) {
			t.Fatalf("grid finished (%v cells) before the kill landed; crashRequest cells are too fast", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()
	t.Logf("killed daemon with %v/%d cells executed", executedBefore, totalCells)

	// Restart over the same directories: the job must come back under
	// its original ID and run to completion.
	_, base2 := spawnHelper(t, journalDir, cacheDir)
	var recovered JobStatus
	deadline = time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("recovered job never finished (last state %q)", recovered.State)
		}
		code, body := httpGetBody(t, base2+"/v1/jobs/"+sub.ID)
		if code != http.StatusOK {
			t.Fatalf("GET recovered job: %d %s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &recovered); err != nil {
			t.Fatal(err)
		}
		if recovered.State.Terminal() {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if recovered.State != JobDone {
		t.Fatalf("recovered job ended %q (%s), want done", recovered.State, recovered.Error)
	}

	// Zero recomputation: every cell the first process executed was
	// committed to the cache before its completion was observable, so
	// the restarted run must serve at least that many cells from cache.
	_, metrics := httpGetBody(t, base2+"/metrics")
	if v, ok := metricValue(metrics, "agrsimd_jobs_readmitted_total"); !ok || v != 1 {
		t.Errorf("agrsimd_jobs_readmitted_total = %v, want 1", v)
	}
	cachedAfter, ok := metricValue(metrics, `agrsimd_cells_total{outcome="cached"}`)
	if !ok || cachedAfter < executedBefore {
		t.Errorf("restart served %v cells from cache, want ≥ %v (cells executed before the kill)",
			cachedAfter, executedBefore)
	}

	// Bit-identical: an uninterrupted run of the same request must fold
	// to exactly the same points.
	man, err := NewManager(Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = man.Drain(ctx)
	}()
	job, _, err := man.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	for !job.State().Terminal() {
		time.Sleep(20 * time.Millisecond)
	}
	ref := job.snapshot()
	if ref.State != JobDone {
		t.Fatalf("reference run ended %q (%s)", ref.State, ref.Error)
	}
	refJSON, err := json.Marshal(ref.Points)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(recovered.Points)
	if err != nil {
		t.Fatal(err)
	}
	if string(refJSON) != string(gotJSON) {
		t.Errorf("recovered points are not bit-identical to an uninterrupted run\nrecovered: %.200s\nreference: %.200s",
			gotJSON, refJSON)
	}
}

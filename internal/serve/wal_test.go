package serve

import (
	"context"
	"encoding/json"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"anongeo/internal/core"
	"anongeo/internal/durable"
	"anongeo/internal/exp"
)

// walTime builds a wall-clock-only timestamp (as JSON round-trips
// produce), so DeepEqual across fold/snapshot/fold is exact.
func walTime(sec int) time.Time {
	return time.Date(2026, 8, 6, 12, 0, sec, 0, time.UTC)
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFoldWALLifecycle exercises the replay fold: a full lifecycle, a
// re-admission after failure, transitions without an admit, records
// after a terminal state, and undecodable garbage.
func TestFoldWALLifecycle(t *testing.T) {
	req := tinyRequest()
	norm, _, err := req.normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	pts := []core.DensityPoint{{Nodes: 10}}
	cells := &CellCounts{Total: 2, Cached: 1}

	payloads := [][]byte{
		// Job A: admit → start → done. Later cancel must not undo it.
		mustMarshal(t, walRecord{Op: walAdmit, ID: "a", Time: walTime(0), Req: &norm}),
		mustMarshal(t, walRecord{Op: walStart, ID: "a", Time: walTime(1)}),
		mustMarshal(t, walRecord{Op: walDone, ID: "a", Time: walTime(2), Points: pts, Cells: cells}),
		mustMarshal(t, walRecord{Op: walCancel, ID: "a", Time: walTime(3), Err: "too late"}),
		// Job B: admit → start → fail → re-admit. Folds to a fresh queued job.
		mustMarshal(t, walRecord{Op: walAdmit, ID: "b", Time: walTime(4), Req: &norm}),
		mustMarshal(t, walRecord{Op: walStart, ID: "b", Time: walTime(5)}),
		mustMarshal(t, walRecord{Op: walFail, ID: "b", Time: walTime(6), Err: "boom"}),
		mustMarshal(t, walRecord{Op: walAdmit, ID: "b", Time: walTime(7), Req: &norm}),
		// Job C: transitions with no admit record — dropped, not invented.
		mustMarshal(t, walRecord{Op: walStart, ID: "c", Time: walTime(8)}),
		mustMarshal(t, walRecord{Op: walDone, ID: "c", Time: walTime(9)}),
		// Garbage that passed the CRC (version skew): skipped.
		[]byte("not json"),
		mustMarshal(t, walRecord{Op: "future-op", ID: "a", Time: walTime(10)}),
	}

	jobs := foldWAL(payloads)
	if len(jobs) != 2 {
		t.Fatalf("folded %d jobs, want 2 (a, b)", len(jobs))
	}
	a, b := jobs[0], jobs[1]
	if a.id != "a" || a.state != JobDone || !reflect.DeepEqual(a.points, pts) || a.cells != *cells {
		t.Errorf("job a folded to %+v, want done with points", a)
	}
	if !a.finished.Equal(walTime(2)) {
		t.Errorf("job a finished = %v, want %v (cancel after done must not re-terminate)", a.finished, walTime(2))
	}
	if b.id != "b" || b.state != JobQueued || b.err != "" || b.points != nil {
		t.Errorf("job b folded to %+v, want a fresh queued re-admission", b)
	}
	if !b.created.Equal(walTime(7)) {
		t.Errorf("job b created = %v, want the re-admit time %v", b.created, walTime(7))
	}
}

// TestSnapshotWALRoundTrip: compaction must be lossless — folding the
// snapshot yields exactly the state that produced it.
func TestSnapshotWALRoundTrip(t *testing.T) {
	req := tinyRequest()
	norm, _, err := req.normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	history := [][]byte{
		mustMarshal(t, walRecord{Op: walAdmit, ID: "done", Time: walTime(0), Req: &norm}),
		mustMarshal(t, walRecord{Op: walStart, ID: "done", Time: walTime(1)}),
		mustMarshal(t, walRecord{Op: walDone, ID: "done", Time: walTime(2),
			Points: []core.DensityPoint{{Nodes: 14}}, Cells: &CellCounts{Total: 2}}),
		mustMarshal(t, walRecord{Op: walAdmit, ID: "failed", Time: walTime(3), Req: &norm}),
		mustMarshal(t, walRecord{Op: walStart, ID: "failed", Time: walTime(4)}),
		mustMarshal(t, walRecord{Op: walFail, ID: "failed", Time: walTime(5), Err: "boom"}),
		mustMarshal(t, walRecord{Op: walAdmit, ID: "interrupted", Time: walTime(6), Req: &norm}),
		mustMarshal(t, walRecord{Op: walStart, ID: "interrupted", Time: walTime(7)}),
		// A prior failed attempt and its re-admission, plus garbage: the
		// compacted snapshot keeps only the live lifecycle.
		mustMarshal(t, walRecord{Op: walAdmit, ID: "queued", Time: walTime(8), Req: &norm}),
		mustMarshal(t, walRecord{Op: walStart, ID: "queued", Time: walTime(9)}),
		mustMarshal(t, walRecord{Op: walFail, ID: "queued", Time: walTime(10), Err: "first try"}),
		mustMarshal(t, walRecord{Op: walAdmit, ID: "queued", Time: walTime(11), Req: &norm}),
		[]byte("version-skewed garbage"),
	}
	jobs := foldWAL(history)
	snap, err := snapshotWAL(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) >= len(history) {
		t.Errorf("snapshot has %d records, want fewer than the %d-record history", len(snap), len(history))
	}
	refolded := foldWAL(snap)
	if !reflect.DeepEqual(jobs, refolded) {
		t.Errorf("fold(snapshot(jobs)) != jobs:\n got %+v\nwant %+v", refolded, jobs)
	}
}

// writeWAL hand-crafts a journal file the way a crashed daemon would
// have left it.
func writeWAL(t *testing.T, dir string, recs ...walRecord) {
	t.Helper()
	j, _, err := durable.Open(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, rec := range recs {
		if err := j.Append(mustMarshal(t, rec)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReplayReadmitsInterruptedJob boots a manager over a journal whose
// last record for a job is non-terminal — the crashed-mid-run shape —
// and expects the job to be re-admitted under its recorded ID and run
// to completion.
func TestReplayReadmitsInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	req := tinyRequest()
	norm, _, err := req.normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	id, err := exp.KeyOf(norm)
	if err != nil {
		t.Fatal(err)
	}
	writeWAL(t, dir,
		walRecord{Op: walAdmit, ID: id, Time: walTime(0), Req: &norm},
		walRecord{Op: walStart, ID: id, Time: walTime(1)})

	srv, ts := newTestServer(t, Options{JournalDir: dir, CacheDir: filepath.Join(dir, "cache")}, nil)
	if got := srv.man.met.jobsReadmitted.Load(); got != 1 {
		t.Fatalf("jobsReadmitted = %d, want 1", got)
	}
	st := waitState(t, ts, id, JobDone)
	if len(st.Points) == 0 {
		t.Error("re-admitted job finished with no points")
	}
	if st.Created.IsZero() || !st.Created.Equal(walTime(0)) {
		t.Errorf("re-admitted job created = %v, want the journaled admit time %v", st.Created, walTime(0))
	}
}

// TestTerminalJobSurvivesRestart runs a job to completion under a
// journal, restarts the stack over the same directory, and expects the
// finished job to be fully readable — same ID, same points — with zero
// cell re-execution, and a re-submission to dedupe onto it.
func TestTerminalJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := Options{JournalDir: dir, CacheDir: filepath.Join(dir, "cache")}

	srvA, tsA := newTestServer(t, opts, nil)
	_, out := postSweep(t, tsA, tinyRequest())
	before := waitState(t, tsA, out.ID, JobDone)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Manager().Drain(ctx); err != nil {
		t.Fatal(err)
	}
	tsA.Close()

	srvB, tsB := newTestServer(t, opts, nil)
	after := getStatus(t, tsB, out.ID)
	if after.State != JobDone {
		t.Fatalf("restored job state = %q, want done", after.State)
	}
	if !reflect.DeepEqual(before.Points, after.Points) {
		t.Error("restored points differ from the points served before the restart")
	}
	if before.Cells != after.Cells {
		t.Errorf("restored cell counts = %+v, want %+v", after.Cells, before.Cells)
	}

	// Resubmitting the identical grid dedupes onto the restored job.
	resp, re := postSweep(t, tsB, tinyRequest())
	if resp.StatusCode != 200 || re.Created || re.ID != out.ID {
		t.Errorf("resubmit after restart: status %d created %v id %s, want 200 dedupe onto %s",
			resp.StatusCode, re.Created, re.ID, out.ID)
	}
	if got := srvB.man.met.cellsExecuted.Load(); got != 0 {
		t.Errorf("restart executed %d cells, want 0 — terminal jobs must be served from the journal", got)
	}
	if got := srvB.man.met.journalReplays.Load(); got != 1 {
		t.Errorf("journalReplays = %d, want 1", got)
	}
}

// TestReplayedFailureIsRetryable: a journaled failed job must accept a
// fresh attempt under the same ID after restart, exactly like an
// in-memory failed job does.
func TestReplayedFailureIsRetryable(t *testing.T) {
	dir := t.TempDir()
	req := tinyRequest()
	norm, _, err := req.normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	id, err := exp.KeyOf(norm)
	if err != nil {
		t.Fatal(err)
	}
	writeWAL(t, dir,
		walRecord{Op: walAdmit, ID: id, Time: walTime(0), Req: &norm},
		walRecord{Op: walStart, ID: id, Time: walTime(1)},
		walRecord{Op: walFail, ID: id, Time: walTime(2), Err: "crashed dependency"})

	_, ts := newTestServer(t, Options{JournalDir: dir}, nil)
	st := getStatus(t, ts, id)
	if st.State != JobFailed || st.Error != "crashed dependency" {
		t.Fatalf("restored job = %q (%q), want failed with the journaled error", st.State, st.Error)
	}
	resp, out := postSweep(t, ts, req)
	if resp.StatusCode != 202 || !out.Created || out.ID != id {
		t.Fatalf("retry after restored failure: status %d created %v, want 202 fresh attempt", resp.StatusCode, out.Created)
	}
	waitState(t, ts, id, JobDone)
}

// TestSubmitCancelRace hammers POST and DELETE on one content-address
// ID from many goroutines. Run under -race it proves the admission
// mutex covers the dedupe-vs-re-admit decision; the invariant checks
// prove no call ever observes a half-canceled hybrid.
func TestSubmitCancelRace(t *testing.T) {
	man, err := NewManager(Options{QueueDepth: 4, JobWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	man.orch.RunCtx = func(ctx context.Context, cfg core.Config) (core.Result, error) {
		return core.Result{}, nil
	}
	man.orch.Run = nil
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = man.Drain(ctx)
	})

	req := tinyRequest()
	norm, _, err := req.normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	id, err := exp.KeyOf(norm)
	if err != nil {
		t.Fatal(err)
	}

	const workers, iters = 8, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				if rng.Intn(2) == 0 {
					j, _, err := man.Submit(req)
					switch err {
					case nil:
						if j.ID != id {
							t.Errorf("Submit returned job %s, want %s", j.ID, id)
						}
					case ErrQueueFull:
					default:
						t.Errorf("Submit: unexpected error %v", err)
					}
				} else {
					switch err := man.Cancel(id); err {
					case nil, ErrNotFound, ErrTerminal:
					default:
						t.Errorf("Cancel: unexpected error %v", err)
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// Whatever interleaving happened, the ID must converge: one final
	// submission reaches done (dedupe onto a finished attempt included).
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, _, err := man.Submit(req)
		if err == nil {
			for j.State() == JobQueued || j.State() == JobRunning {
				if time.Now().After(deadline) {
					t.Fatalf("job stuck in %q after hammer", j.State())
				}
				time.Sleep(time.Millisecond)
			}
			if j.State() == JobDone {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never converged to done (last err %v)", err)
		}
		time.Sleep(time.Millisecond)
	}
}

package radio

import (
	"testing"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/mobility"
	"anongeo/internal/sim"
)

// recorder is a Receiver capturing everything the channel tells it.
type recorder struct {
	received  []*Transmission
	busyCalls int
	idleCalls int
}

func (r *recorder) OnMediumBusy()              { r.busyCalls++ }
func (r *recorder) OnMediumIdle()              { r.idleCalls++ }
func (r *recorder) OnReceive(tx *Transmission) { r.received = append(r.received, tx) }

// tapRecorder captures tap callbacks.
type tapRecorder struct {
	transmits  []*Transmission
	deliveries []NodeID
}

func (t *tapRecorder) OnTransmit(tx *Transmission) { t.transmits = append(t.transmits, tx) }
func (t *tapRecorder) OnDeliver(rx NodeID, _ geo.Point, _ *Transmission) {
	t.deliveries = append(t.deliveries, rx)
}

func addStatic(c *Channel, x, y float64) (*Iface, *recorder) {
	r := &recorder{}
	i := c.AddNode(mobility.Static{At: geo.Pt(x, y)}, r)
	return i, r
}

func TestInRangeDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	_, rb := addStatic(c, 100, 0)
	a.Transmit(1000, time.Millisecond, "hello")
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rb.received) != 1 {
		t.Fatalf("b received %d frames, want 1", len(rb.received))
	}
	if rb.received[0].Payload != "hello" {
		t.Fatalf("payload = %v", rb.received[0].Payload)
	}
	if got := c.Stats(); got.Transmissions != 1 || got.Deliveries != 1 || got.Collisions != 0 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestOutOfRangeNoDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	_, rb := addStatic(c, 251, 0)
	a.Transmit(1000, time.Millisecond, "x")
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rb.received) != 0 {
		t.Fatalf("out-of-range node received %d frames", len(rb.received))
	}
	if rb.busyCalls != 0 {
		t.Fatal("out-of-range node sensed carrier")
	}
}

func TestExactRangeBoundaryDelivers(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	_, rb := addStatic(c, 250, 0)
	a.Transmit(8, time.Millisecond, nil)
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rb.received) != 1 {
		t.Fatal("node exactly at range edge should receive")
	}
}

func TestSenderDoesNotReceiveOwnFrame(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, ra := addStatic(c, 0, 0)
	a.Transmit(8, time.Millisecond, nil)
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(ra.received) != 0 {
		t.Fatal("sender received its own frame")
	}
}

func TestBusyIdleCallbacks(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	_, rb := addStatic(c, 100, 0)
	a.Transmit(8, time.Millisecond, nil)
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if rb.busyCalls != 1 || rb.idleCalls != 1 {
		t.Fatalf("busy=%d idle=%d, want 1/1", rb.busyCalls, rb.idleCalls)
	}
}

func TestOverlapCollidesBoth(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	// a and b are hidden from each other (500 m apart), m is in the middle.
	a, _ := addStatic(c, 0, 0)
	b, _ := addStatic(c, 500, 0)
	_, rm := addStatic(c, 250, 0)
	eng.Schedule(0, func() { a.Transmit(8000, time.Millisecond, "A") })
	eng.Schedule(500*time.Microsecond, func() { b.Transmit(8000, time.Millisecond, "B") })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rm.received) != 0 {
		t.Fatalf("middle node received %d frames despite hidden-terminal collision", len(rm.received))
	}
	if got := c.Stats().Collisions; got != 2 {
		t.Fatalf("collisions = %d, want 2", got)
	}
}

func TestNonOverlappingFramesBothDeliver(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	b, _ := addStatic(c, 500, 0)
	_, rm := addStatic(c, 250, 0)
	eng.Schedule(0, func() { a.Transmit(8, time.Millisecond, "A") })
	eng.Schedule(2*time.Millisecond, func() { b.Transmit(8, time.Millisecond, "B") })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rm.received) != 2 {
		t.Fatalf("middle node received %d frames, want 2", len(rm.received))
	}
}

func TestCollisionOnlyAtOverlappedReceiver(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	// a at 0, b at 500: both reach m at 250. A second receiver r at -200
	// hears only a, so a's frame survives there.
	a, _ := addStatic(c, 0, 0)
	b, _ := addStatic(c, 500, 0)
	_, rm := addStatic(c, 250, 0)
	_, rr := addStatic(c, -200, 0)
	eng.Schedule(0, func() { a.Transmit(8000, time.Millisecond, "A") })
	eng.Schedule(100*time.Microsecond, func() { b.Transmit(8000, time.Millisecond, "B") })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rm.received) != 0 {
		t.Fatal("collided receiver got a frame")
	}
	if len(rr.received) != 1 || rr.received[0].Payload != "A" {
		t.Fatalf("clear receiver got %v, want A's frame", rr.received)
	}
}

func TestHalfDuplexTransmitCorruptsReception(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	b, rb := addStatic(c, 100, 0)
	eng.Schedule(0, func() { a.Transmit(8000, time.Millisecond, "A") })
	// b starts its own frame while a's is still arriving.
	eng.Schedule(200*time.Microsecond, func() { b.Transmit(8, 100*time.Microsecond, "B") })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rb.received) != 0 {
		t.Fatal("half-duplex node received while transmitting")
	}
}

func TestReceiverMidTransmissionMissesNewFrame(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	b, rb := addStatic(c, 100, 0)
	// b transmits 0..1ms; a's short frame arrives entirely inside that.
	eng.Schedule(0, func() { b.Transmit(8000, time.Millisecond, "B") })
	eng.Schedule(200*time.Microsecond, func() { a.Transmit(8, 100*time.Microsecond, "A") })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rb.received) != 0 {
		t.Fatal("node received a frame while itself transmitting")
	}
}

func TestDoubleTransmitPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on transmit-while-transmitting")
		}
	}()
	a.Transmit(8, time.Millisecond, nil)
	a.Transmit(8, time.Millisecond, nil)
}

func TestMovingNodeOutOfRangeMissesFrame(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	r := &recorder{}
	// Starts out of range and stays out at frame start; moves in later.
	c.AddNode(mobility.Linear{Start: geo.Pt(300, 0), Velocity: geo.Pt(-10, 0)}, r)
	eng.Schedule(0, func() { a.Transmit(8, time.Millisecond, nil) })
	// At t=10s the mover is at 200,0 (in range): second frame reaches it.
	eng.Schedule(10*time.Second, func() { a.Transmit(8, time.Millisecond, nil) })
	if err := eng.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(r.received) != 1 {
		t.Fatalf("mover received %d frames, want 1", len(r.received))
	}
}

func TestTapSeesAllTransmissionsAndDeliveries(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	tap := &tapRecorder{}
	c.AddTap(tap)
	a, _ := addStatic(c, 0, 0)
	addStatic(c, 100, 0)
	addStatic(c, 200, 0)
	a.Transmit(8, time.Millisecond, "x")
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(tap.transmits) != 1 {
		t.Fatalf("tap saw %d transmits", len(tap.transmits))
	}
	if len(tap.deliveries) != 2 {
		t.Fatalf("tap saw %d deliveries, want 2", len(tap.deliveries))
	}
}

func TestNeighborsOracle(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	addStatic(c, 100, 0)
	addStatic(c, 200, 0)
	addStatic(c, 900, 0)
	if got := len(a.Neighbors()); got != 2 {
		t.Fatalf("neighbors = %d, want 2", got)
	}
}

func TestBusyReflectsForeignTransmissions(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	b, _ := addStatic(c, 100, 0)
	var during, after bool
	eng.Schedule(0, func() { a.Transmit(8, time.Millisecond, nil) })
	eng.Schedule(500*time.Microsecond, func() { during = b.Busy() })
	eng.Schedule(2*time.Millisecond, func() { after = b.Busy() })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !during {
		t.Fatal("Busy() = false during foreign transmission")
	}
	if after {
		t.Fatal("Busy() = true after transmission ended")
	}
}

func TestTransmissionEndTime(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	var tx *Transmission
	eng.Schedule(3*time.Millisecond, func() { tx = a.Transmit(8, 2*time.Millisecond, nil) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if tx.Start != sim.Time(3*sim.Millisecond) || tx.End() != sim.Time(5*sim.Millisecond) {
		t.Fatalf("tx window = [%v,%v]", tx.Start, tx.End())
	}
}

func TestBitsAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	eng.Schedule(0, func() { a.Transmit(1000, time.Millisecond, nil) })
	eng.Schedule(5*time.Millisecond, func() { a.Transmit(500, time.Millisecond, nil) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().BitsSent; got != 1500 {
		t.Fatalf("BitsSent = %d, want 1500", got)
	}
}

func TestThreeWayCollision(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	// three hidden senders around one receiver
	s1, _ := addStatic(c, 0, 0)
	s2, _ := addStatic(c, 400, 0)
	s3, _ := addStatic(c, 200, 240)
	_, rm := addStatic(c, 200, 60)
	eng.Schedule(0, func() { s1.Transmit(8000, time.Millisecond, nil) })
	eng.Schedule(100*time.Microsecond, func() { s2.Transmit(8000, time.Millisecond, nil) })
	eng.Schedule(200*time.Microsecond, func() { s3.Transmit(8000, time.Millisecond, nil) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rm.received) != 0 {
		t.Fatal("receiver decoded a frame out of a 3-way collision")
	}
}

func TestLossRateValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	defer func() {
		if recover() == nil {
			t.Fatal("loss rate 1.0 accepted")
		}
	}()
	c.SetLossRate(1.0)
}

func TestLossRateDropsFraction(t *testing.T) {
	eng := sim.NewEngine(5)
	c := NewChannel(eng, 250)
	c.SetLossRate(0.3)
	a, _ := addStatic(c, 0, 0)
	_, rb := addStatic(c, 100, 0)
	const frames = 500
	for i := 0; i < frames; i++ {
		eng.Schedule(time.Duration(i)*5*time.Millisecond, func() {
			a.Transmit(8, time.Millisecond, nil)
		})
	}
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := len(rb.received)
	if got < frames*60/100 || got > frames*80/100 {
		t.Fatalf("delivered %d of %d at 30%% loss, want ≈70%%", got, frames)
	}
	if c.Stats().FadingLosses != frames-got {
		t.Fatalf("FadingLosses = %d, want %d", c.Stats().FadingLosses, frames-got)
	}
}

func TestZeroLossRateIsLossless(t *testing.T) {
	eng := sim.NewEngine(6)
	c := NewChannel(eng, 250)
	a, _ := addStatic(c, 0, 0)
	_, rb := addStatic(c, 100, 0)
	for i := 0; i < 100; i++ {
		eng.Schedule(time.Duration(i)*5*time.Millisecond, func() {
			a.Transmit(8, time.Millisecond, nil)
		})
	}
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rb.received) != 100 {
		t.Fatalf("lost frames without a loss model: %d", len(rb.received))
	}
}

// Spatial grid index for the channel's O(neighbors) hot path.
//
// The brute-force Transmit freezes the sensing set by scanning all n
// interfaces and evaluating every mobility model, so one frame costs
// O(n) and a dense scenario costs O(n²) per unit of traffic. The index
// replaces the scan with a uniform grid over the arena: interfaces are
// bucketed by the cell containing a recent ("binned") position, and a
// query inspects only the 3×3 cell neighborhood of the sender — the NS-2
// CMU wireless trick, adapted to this channel's lazy mobility.
//
// Correctness invariant (the whole design hangs on it): the cell side is
// the carrier-sense range plus a mobility slack, and an interface is
// lazily re-binned before its true position can drift more than that
// slack from its binned position (drift ≤ maxSpeed · (now − binnedAt) ≤
// slack). Then for any interface j actually within sensing range of a
// sender at p,
//
//	|p − binned(j)| ≤ csRange + slack = cellSide,
//
// so j's bucket is at most one cell away from p's on each axis and the
// 3×3 neighborhood cannot miss it. Out-of-arena positions clamp to the
// border cells; clamping is 1-Lipschitz per axis, so the bound survives.
//
// The binned position doubles as a conservative distance oracle: with
// bd = |p − binned(j)|, the true distance lies in [bd − slack, bd + slack].
// Candidates with bd beyond threshold+slack are discarded and candidates
// with bd inside threshold−slack are accepted without ever evaluating
// the mobility model; only the thin uncertainty annulus pays for an
// exact PositionAt + distance test, which uses the same squared-distance
// comparison as the brute-force path so the resulting sets are
// bit-for-bit identical (the slack is padded by epsMeters, dwarfing
// float rounding in the conservative bounds).
//
// All mutable state lives in dense arrays indexed by interface id —
// binned positions, rebin deadlines, bucket membership, and the
// per-query classification scratch — so the per-frame work walks
// contiguous memory instead of chasing one pointer per interface.
// Everything is deterministic: no randomness, no maps, and the caller
// consumes the classification array in ascending id order, so event and
// RNG schedules downstream are unperturbed.
package radio

import (
	"math"

	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// epsMeters pads every conservative threshold so floating-point rounding
// in the binned-distance bounds can never flip a classification. The
// slack budget is meters; accumulated rounding is below nanometers.
const epsMeters = 1e-6

// wheelSize is the deadline wheel's bucket count; deadlines beyond one
// wheel turn cascade (they are re-enqueued when their alias tick
// drains). 256 ticks of slackT cover ≈70 s at the paper's 20 m/s /
// 550 m-sensing geometry — a full pause interval.
const (
	wheelSize = 256
	wheelMask = wheelSize - 1
)

// neverRebin marks a bin that can never drift (a permanently resting
// node); such entries skip the wheel entirely.
const neverRebin = sim.Time(math.MaxInt64)

// Classifications produced by markCandidates in the class scratch array
// (zero = not a candidate; consumers reset entries to zero as they go).
const (
	// scanExact: inside the uncertainty annulus; the caller must evaluate
	// the true position and compare exactly.
	scanExact uint8 = iota + 1
	// scanSensorOnly: certainly within the sensing threshold, certainly
	// outside the decode threshold.
	scanSensorOnly
	// scanReceiver: certainly within the decode threshold (hence sensing).
	scanReceiver
)

// spatialIndex is the uniform grid. It is owned by a Channel and shares
// its single-threaded discipline.
type spatialIndex struct {
	ch     *Channel
	bounds geo.Rect
	cell   float64 // cell side = csRange + slack
	slack  float64 // max tolerated drift between true and binned position
	cols   int
	rows   int
	// buckets holds the indices of the interfaces binned in each cell,
	// row-major. Within-bucket order is arbitrary (swap-remove) — queries
	// restore id order by consuming the class array, so it never leaks.
	buckets [][]int32

	// Per-interface state, indexed by interface id (ids are dense).
	pos    []geo.Point // binned position
	cellOf []int32     // bucket index, -1 while not yet inserted
	slotOf []int32     // slot within that bucket
	// class is the per-query scratch markCandidates fills. Consumers MUST
	// zero every entry they read (and no callback run while consuming may
	// start a nested query), leaving the array all-zero between queries.
	class []uint8

	// Lazy rebinning runs on a deadline wheel instead of a fixed-period
	// FIFO: each bin carries a deadline — the first instant its drift
	// budget could be exhausted — and refresh only touches bins whose
	// deadline tick has arrived. The deadlines are leg-aware: a node
	// resting at a waypoint (binned exactly at its rest position) cannot
	// drift until its leg departs, so its deadline is depart + slackT
	// rather than now + slackT. Under the paper's 60 s-pause mobility
	// nodes rest most of the time, so this removes the large majority of
	// rebin position evaluations at large N. A node that never moves
	// again (a permanent leg) gets deadline neverRebin and is not
	// enqueued at all.
	//
	// armAt[idx] is the wheel tick at which the entry must be rebinned:
	// one tick before its deadline's own tick, so that draining every
	// tick <= now's rebins each bin strictly before its drift budget is
	// gone (rebinning early is always safe — it just re-evaluates the
	// position). wheel[t&mask] holds the entries armed for tick t; tick
	// is the next tick to drain. spare recycles the bucket backing array
	// across drains.
	armAt []int64
	wheel [wheelSize][]int32
	tick  int64
	spare []int32
	// slackT is how long a max-speed interface takes to drift `slack`
	// meters (the wheel tick width); 0 means nodes are static and bins
	// never expire.
	slackT sim.Time
	// linearScan is set when the 3×3 cell neighborhood covers most of
	// the arena anyway (small arenas relative to the sensing range — the
	// paper's Figure 1 geometry). Bucket iteration then prunes almost
	// nothing, so queries classify against a sequential walk of the
	// binned-position array instead: same thresholds, same results,
	// contiguous access, and no classification scratch pass.
	linearScan bool
}

// newSpatialIndex sizes the grid for the given arena, carrier-sense
// range, and speed bound. The slack is 1% of the sensing range (floored
// at 0.5 m), a point where the uncertainty annulus is thin — almost
// every candidate classifies without touching its mobility model — while
// a full rebin cycle still costs only n position evaluations every
// slack/maxSpeed seconds of simulated time.
func newSpatialIndex(ch *Channel, bounds geo.Rect, csRange, maxSpeed float64) *spatialIndex {
	slack := csRange / 100
	if slack < 0.5 {
		slack = 0.5
	}
	cell := csRange + slack
	s := &spatialIndex{
		ch:     ch,
		bounds: bounds,
		cell:   cell,
		slack:  slack,
		cols:   gridDim(bounds.Width(), cell),
		rows:   gridDim(bounds.Height(), cell),
	}
	s.buckets = make([][]int32, s.cols*s.rows)
	// Fraction of the arena a 3×3 neighborhood covers, ignoring edge
	// truncation. Above ½, bucket pruning cannot pay for its random
	// access pattern and the scratch pass, so queries go linear.
	fw := math.Min(1, 3*cell/math.Max(bounds.Width(), 1))
	fh := math.Min(1, 3*cell/math.Max(bounds.Height(), 1))
	s.linearScan = fw*fh >= 0.5
	if maxSpeed > 0 {
		s.slackT = sim.Time(slack / maxSpeed * float64(sim.Second))
		if s.slackT < 1 {
			s.slackT = 1 // guard: never rebin the same instant twice
		}
	}
	return s
}

func gridDim(extent, cell float64) int {
	n := int(math.Ceil(extent / cell))
	if n < 1 {
		n = 1
	}
	return n
}

// cellIndex maps a position to its bucket, clamping outside positions to
// the border cells.
func (s *spatialIndex) cellIndex(p geo.Point) int32 {
	col := clampDim(int(math.Floor((p.X-s.bounds.Min.X)/s.cell)), s.cols)
	row := clampDim(int(math.Floor((p.Y-s.bounds.Min.Y)/s.cell)), s.rows)
	return int32(row*s.cols + col)
}

func clampDim(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// insert bins a (possibly freshly added) interface at its current
// position and arms its rebin deadline. Interface ids are dense, so the
// per-interface arrays grow in step with the channel's interface list.
func (s *spatialIndex) insert(i *Iface, now sim.Time) {
	for len(s.pos) <= int(i.id) {
		s.pos = append(s.pos, geo.Point{})
		s.cellOf = append(s.cellOf, -1)
		s.slotOf = append(s.slotOf, 0)
		s.class = append(s.class, 0)
		s.armAt = append(s.armAt, 0)
	}
	s.rebin(int32(i.id), now)
}

// rebin re-evaluates interface idx's position, moves it to the right
// bucket, and re-arms its drift deadline.
func (s *spatialIndex) rebin(idx int32, now sim.Time) {
	p := s.ch.posAt(idx, now)
	s.pos[idx] = p
	s.arm(idx, now)
	ci := s.cellIndex(p)
	if ci == s.cellOf[idx] {
		return
	}
	if s.cellOf[idx] >= 0 {
		s.removeFromBucket(idx)
	}
	b := s.buckets[ci]
	s.cellOf[idx] = ci
	s.slotOf[idx] = int32(len(b))
	s.buckets[ci] = append(b, idx)
}

// arm computes idx's drift deadline from its current motion leg and
// enqueues it on the wheel. Must run immediately after posAt(idx, now)
// so the channel's leg cache describes the leg containing now.
func (s *spatialIndex) arm(idx int32, now sim.Time) {
	if s.slackT <= 0 {
		return // all nodes static: bins never expire
	}
	dl := now + s.slackT
	if s.ch.legSrc[idx] != nil {
		if l := &s.ch.legs[idx]; l.start <= now && now < l.depart && now >= l.arrive {
			// Resting: the bin is the exact rest position, so drift stays
			// zero until the leg departs and bounded by maxSpeed after.
			if l.depart >= neverRebin-s.slackT {
				return // permanent rest: this bin never expires
			}
			dl = l.depart + s.slackT
		}
	}
	// Arm one tick before the deadline's own tick: the wheel rebins at
	// tick granularity, so the margin guarantees the rebin lands before
	// the budget is truly gone even when the drain falls late in a tick.
	s.armAt[idx] = int64(dl)/int64(s.slackT) - 1
	s.enqueue(idx)
}

// enqueue places idx on the wheel at its arm tick, clamped forward to
// the next undrained tick (never into a slot the cursor has passed).
func (s *spatialIndex) enqueue(idx int32) {
	t := s.armAt[idx]
	if t < s.tick {
		t = s.tick
	}
	s.wheel[t&wheelMask] = append(s.wheel[t&wheelMask], idx)
}

// removeFromBucket swap-removes interface idx from its bucket in O(1).
func (s *spatialIndex) removeFromBucket(idx int32) {
	b := s.buckets[s.cellOf[idx]]
	last := len(b) - 1
	moved := b[last]
	b[s.slotOf[idx]] = moved
	s.slotOf[moved] = s.slotOf[idx]
	s.buckets[s.cellOf[idx]] = b[:last]
	s.cellOf[idx] = -1
}

// refresh re-bins every interface whose drift budget may be exhausted,
// by draining the deadline-wheel ticks up to now. Every bin surviving a
// refresh has deadline > now, so the invariant drift < slack holds; a
// resting node costs nothing until its leg departs.
func (s *spatialIndex) refresh(now sim.Time) {
	if s.slackT <= 0 {
		return
	}
	nowTick := int64(now) / int64(s.slackT)
	if nowTick < s.tick {
		return
	}
	start := s.tick
	// Advance the cursor before draining: re-arms during the drains then
	// enqueue at slots > nowTick, so no entry is examined twice in one
	// refresh.
	s.tick = nowTick + 1
	if nowTick-start >= wheelSize {
		// Idle gap longer than a full wheel turn: one pass over every
		// slot examines everything that could be due.
		for t := range s.wheel {
			s.drainSlot(int64(t), nowTick, now)
		}
		return
	}
	for t := start; t <= nowTick; t++ {
		s.drainSlot(t&wheelMask, nowTick, now)
	}
}

// drainSlot examines one wheel slot: entries whose arm tick has arrived
// are rebinned (which re-arms them); aliased entries — armed for a
// later turn of the wheel but sharing the slot — are re-enqueued.
func (s *spatialIndex) drainSlot(slot, nowTick int64, now sim.Time) {
	b := s.wheel[slot]
	if len(b) == 0 {
		return
	}
	s.wheel[slot] = s.spare[:0]
	for _, idx := range b {
		if s.armAt[idx] <= nowTick {
			s.rebin(idx, now)
		} else {
			s.enqueue(idx)
		}
	}
	s.spare = b[:0]
}

// markCandidates classifies every interface that may lie within `sense`
// meters of p against the sensing and decode thresholds, using only
// binned positions (see the package comment for the bounds), and writes
// the result into the class scratch array. The caller must have called
// refresh(now) first, consumes class entries in ascending index order
// (zeroing each one it reads), and resolves scanExact entries with a
// true distance test. The sender itself is never marked.
//
// decode must be ≤ sense ≤ csRange (the cell size covers csRange).
func (s *spatialIndex) markCandidates(sender int32, p geo.Point, sense, decode float64) {
	sh := s.slack + epsMeters
	skip2 := sq(sense + sh)
	senseSure2 := surelyWithin2(sense, sh)
	recvSure2 := surelyWithin2(decode, sh)
	recvImpossible2 := sq(decode + sh)

	ci := int(s.cellIndex(p))
	col, row := ci%s.cols, ci/s.cols
	pos, class := s.pos, s.class
	for r := maxInt(row-1, 0); r <= minInt(row+1, s.rows-1); r++ {
		for c := maxInt(col-1, 0); c <= minInt(col+1, s.cols-1); c++ {
			for _, idx := range s.buckets[r*s.cols+c] {
				if idx == sender {
					continue
				}
				bd2 := p.Dist2(pos[idx])
				if bd2 > skip2 {
					continue // certainly out of sensing range
				}
				switch {
				case bd2 <= recvSure2:
					class[idx] = scanReceiver
				case bd2 <= senseSure2 && bd2 > recvImpossible2:
					class[idx] = scanSensorOnly
				default:
					class[idx] = scanExact
				}
			}
		}
	}
}

// surelyWithin2 returns the squared radius below which a binned distance
// certifies the true distance is within r, or -1 when no such zone
// exists (r smaller than the slack).
func surelyWithin2(r, slack float64) float64 {
	if r <= slack {
		return -1
	}
	return sq(r - slack)
}

func sq(v float64) float64 { return v * v }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

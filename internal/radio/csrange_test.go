package radio

import (
	"testing"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/mobility"
	"anongeo/internal/sim"
)

// Tests for the extended carrier-sense/interference range (the NS-2
// WaveLAN behavior: sense at 2.2× the decode range).

func newCSChannel(eng *sim.Engine) *Channel {
	c := NewChannel(eng, 250)
	c.SetCarrierSenseRange(550)
	return c
}

func TestCSRangeValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	defer func() {
		if recover() == nil {
			t.Fatal("cs range below decode range accepted")
		}
	}()
	c.SetCarrierSenseRange(100)
}

func TestCSRangeAccessors(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newCSChannel(eng)
	if c.Range() != 250 || c.CarrierSenseRange() != 550 {
		t.Fatalf("ranges = %v/%v", c.Range(), c.CarrierSenseRange())
	}
	// Default CS equals decode range.
	c2 := NewChannel(eng, 250)
	if c2.CarrierSenseRange() != 250 {
		t.Fatalf("default cs = %v", c2.CarrierSenseRange())
	}
}

func TestSensedButNotDecoded(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newCSChannel(eng)
	a, _ := addStatic(c, 0, 0)
	_, far := addStatic(c, 400, 0) // inside CS range, outside decode range
	a.Transmit(8, time.Millisecond, "x")
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(far.received) != 0 {
		t.Fatal("node beyond decode range received the frame")
	}
	if far.busyCalls != 1 || far.idleCalls != 1 {
		t.Fatalf("busy/idle = %d/%d, want carrier sensed once", far.busyCalls, far.idleCalls)
	}
}

func TestInterferenceBeyondDecodeRangeCorrupts(t *testing.T) {
	// Receiver m decodes a at 200 m; interferer j at 400 m from m cannot
	// be decoded but must still destroy the reception.
	eng := sim.NewEngine(1)
	c := newCSChannel(eng)
	a, _ := addStatic(c, 0, 0)
	j, _ := addStatic(c, 600, 0)
	_, m := addStatic(c, 200, 0) // 200 from a, 400 from j
	eng.Schedule(0, func() { a.Transmit(8000, time.Millisecond, "A") })
	eng.Schedule(300*time.Microsecond, func() { j.Transmit(8000, time.Millisecond, "J") })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(m.received) != 0 {
		t.Fatal("reception survived out-of-decode-range interference")
	}
}

func TestWiderCSRangeReducesHiddenTerminals(t *testing.T) {
	// Two senders 500 m apart around a middle receiver: with CS = 250
	// they are hidden and collide; with CS = 550 they sense each other
	// and serialize.
	run := func(cs float64) int {
		eng := sim.NewEngine(7)
		c := NewChannel(eng, 250)
		c.SetCarrierSenseRange(cs)
		a, _ := addStatic(c, 0, 0)
		b, _ := addStatic(c, 500, 0)
		_, m := addStatic(c, 250, 0)
		// Simultaneous long frames: hidden → collision, sensed → the
		// second defers... but the raw channel has no MAC, so model the
		// deferral by having b check Busy() first.
		eng.Schedule(0, func() { a.Transmit(8000, 2*time.Millisecond, "A") })
		eng.Schedule(500*time.Microsecond, func() {
			if !b.Busy() {
				b.Transmit(8000, 2*time.Millisecond, "B")
			}
		})
		if err := eng.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		return len(m.received)
	}
	if got := run(250); got != 0 {
		t.Fatalf("hidden senders delivered %d frames, want 0", got)
	}
	if got := run(550); got != 1 {
		t.Fatalf("sensing senders delivered %d frames, want 1 (deferral)", got)
	}
}

func TestCSOnlySensorGetsIdleNotification(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newCSChannel(eng)
	a, _ := addStatic(c, 0, 0)
	_, far := addStatic(c, 500, 0)
	var busyDuring bool
	eng.Schedule(0, func() { a.Transmit(8, time.Millisecond, nil) })
	eng.Schedule(500*time.Microsecond, func() {
		busyDuring = c.Iface(1).Busy()
	})
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !busyDuring {
		t.Fatal("CS-only sensor did not report busy")
	}
	if far.idleCalls != 1 {
		t.Fatalf("idleCalls = %d", far.idleCalls)
	}
}

func TestMovingSensorFrozenAtStart(t *testing.T) {
	// A node inside CS range at frame start keeps its busy accounting
	// even if it drifts out mid-frame (the frozen-set invariant).
	eng := sim.NewEngine(1)
	c := newCSChannel(eng)
	a, _ := addStatic(c, 0, 0)
	r := &recorder{}
	c.AddNode(mobility.Linear{Start: geo.Pt(540, 0), Velocity: geo.Pt(1000, 0)}, r)
	eng.Schedule(0, func() { a.Transmit(8, time.Millisecond, nil) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if r.busyCalls != 1 || r.idleCalls != 1 {
		t.Fatalf("busy/idle = %d/%d", r.busyCalls, r.idleCalls)
	}
}

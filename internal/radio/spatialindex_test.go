package radio

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/mobility"
	"anongeo/internal/sim"
)

// nullRx is a Receiver that ignores everything.
type nullRx struct{}

func (nullRx) OnMediumBusy()           {}
func (nullRx) OnMediumIdle()           {}
func (nullRx) OnReceive(*Transmission) {}

// bruteSensingSets is the reference oracle: the O(n) scan's sensing and
// receiving sets in ascending id order, using the same squared-distance
// comparisons as the channel.
func bruteSensingSets(c *Channel, sender *Iface, now sim.Time) (sensors, receivers []*Iface) {
	p := sender.model.PositionAt(now)
	cs2 := c.csRange * c.csRange
	r2 := c.rangeM * c.rangeM
	for _, j := range c.ifaces {
		if j == sender {
			continue
		}
		d2 := p.Dist2(j.model.PositionAt(now))
		if d2 > cs2 {
			continue
		}
		sensors = append(sensors, j)
		if d2 <= r2 {
			receivers = append(receivers, j)
		}
	}
	return sensors, receivers
}

func sameIfaces(a, b []*Iface) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// sameIDs reports whether the indexed path's frozen id list names
// exactly the interfaces in want, in order.
func sameIDs(c *Channel, got []int32, want []*Iface) bool {
	if len(got) != len(want) {
		return false
	}
	for k := range got {
		if c.ifaces[got[k]] != want[k] {
			return false
		}
	}
	return true
}

func ids(s []*Iface) []NodeID {
	out := make([]NodeID, len(s))
	for k, i := range s {
		out[k] = i.id
	}
	return out
}

// TestIndexSetsMatchBruteProperty is the property test the tentpole's
// correctness rests on: over random arenas, node counts, mobility mixes
// (static, waypoint, linear — including nodes drifting outside the
// arena), radio ranges, and widened carrier-sense ranges, the spatial
// index's frozen sensing/receiving sets and the Neighbors oracle must
// equal the brute-force scan's, order included, at every query time.
func TestIndexSetsMatchBruteProperty(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			w := 200 + rng.Float64()*2800
			h := 200 + rng.Float64()*2800
			arena := geo.NewRect(w, h)
			rangeM := 50 + rng.Float64()*350
			cs := rangeM * (1 + rng.Float64()*2) // up to 3× decode range
			n := 2 + rng.Intn(50)
			maxSpeed := 1 + rng.Float64()*29

			eng := sim.NewEngine(int64(trial))
			c := NewChannel(eng, rangeM)
			c.SetCarrierSenseRange(cs)
			c.EnableSpatialIndex(arena, maxSpeed)

			for k := 0; k < n; k++ {
				start := mobility.RandomStart(arena, rng)
				var m mobility.Model
				switch rng.Intn(3) {
				case 0:
					m = mobility.Static{At: start}
				case 1:
					m = mobility.NewWaypoint(mobility.WaypointConfig{
						Bounds:   arena,
						MinSpeed: 0.5 + rng.Float64(),
						MaxSpeed: maxSpeed,
						Pause:    sim.Time(rng.Intn(10)) * sim.Second,
						Start:    start,
					}, rand.New(rand.NewSource(int64(trial*1000+k))))
				default:
					// Constant drift, possibly out of the arena: the index
					// clamps to border cells and must stay exact.
					ang := rng.Float64() * 2 * math.Pi
					sp := rng.Float64() * maxSpeed
					m = mobility.Linear{
						Start:    start,
						Velocity: geo.Pt(sp*math.Cos(ang), sp*math.Sin(ang)),
					}
				}
				c.AddNode(m, nullRx{})
			}

			// Queries at strictly increasing times with gaps larger than
			// the 1 µs airtime, so senders never overlap themselves.
			at := sim.Time(0)
			for q := 0; q < 120; q++ {
				at += sim.Time(2*time.Microsecond) + sim.Time(rng.Int63n(int64(3*sim.Second)))
				sender := c.ifaces[rng.Intn(n)]
				eng.At(at, func() {
					now := eng.Now()
					wantS, wantR := bruteSensingSets(c, sender, now)
					tx := sender.Transmit(128, time.Microsecond, nil)
					if !sameIDs(c, tx.sensorIDs, wantS) {
						t.Fatalf("t=%v sender %d: sensors = %v, want %v",
							now, sender.id, tx.sensorIDs, ids(wantS))
					}
					if !sameIDs(c, tx.receiverIDs, wantR) {
						t.Fatalf("t=%v sender %d: receivers = %v, want %v",
							now, sender.id, tx.receiverIDs, ids(wantR))
					}
					// Neighbors must equal the receivers-threshold scan
					// from this node's own position, order included.
					nb := sender.Neighbors()
					var wantN []*Iface
					p := sender.model.PositionAt(now)
					r2 := c.rangeM * c.rangeM
					for _, j := range c.ifaces {
						if j != sender && p.Dist2(j.model.PositionAt(now)) <= r2 {
							wantN = append(wantN, j)
						}
					}
					if !sameIfaces(nb, wantN) {
						t.Fatalf("t=%v sender %d: neighbors = %v, want %v",
							now, sender.id, ids(nb), ids(wantN))
					}
				})
			}
			if err := eng.Run(time.Duration(at) + time.Second); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIndexRebinDriftInvariant runs a moving scenario and asserts, after
// every refresh, that no binned position has drifted more than the slack
// from the true position — the invariant the conservative classification
// depends on.
func TestIndexRebinDriftInvariant(t *testing.T) {
	arena := geo.NewRect(1500, 300)
	eng := sim.NewEngine(5)
	c := NewChannel(eng, 250)
	c.SetCarrierSenseRange(550)
	const maxSpeed = 20.0
	c.EnableSpatialIndex(arena, maxSpeed)
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 40; k++ {
		c.AddNode(mobility.NewWaypoint(mobility.WaypointConfig{
			Bounds:   arena,
			MinSpeed: 5,
			MaxSpeed: maxSpeed,
			Pause:    0,
			Start:    mobility.RandomStart(arena, rng),
		}, rand.New(rand.NewSource(int64(k)))), nullRx{})
	}
	s := c.ensureIndex()
	if s == nil {
		t.Fatal("index not built")
	}
	for q := 0; q < 400; q++ {
		at := sim.Time(q) * sim.Time(500*time.Millisecond)
		eng.At(at, func() {
			now := eng.Now()
			s.refresh(now)
			for _, i := range c.ifaces {
				idx := int32(i.id)
				drift := s.pos[idx].Dist(i.model.PositionAt(now))
				if drift > s.slack+epsMeters {
					t.Fatalf("t=%v iface %d drifted %.3f m > slack %.3f m",
						now, i.id, drift, s.slack)
				}
				if s.cellOf[idx] < 0 || s.buckets[s.cellOf[idx]][s.slotOf[idx]] != idx {
					t.Fatalf("t=%v iface %d bucket bookkeeping broken", now, i.id)
				}
			}
		})
	}
	if err := eng.Run(200 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestIndexRebinDriftInvariantPaused is the same invariant under the
// paper's pause-heavy mobility (60 s rests), which exercises the
// deadline wheel's leg-aware resting path: a node binned at its rest
// position keeps its bin until the leg departs, and the wheel must
// still rebin it before drift can exceed the slack. A mid-tick expiry
// once slipped past the wheel here, so the refresh cadence is
// deliberately incommensurate with the tick width.
func TestIndexRebinDriftInvariantPaused(t *testing.T) {
	arena := geo.NewRect(1500, 300)
	eng := sim.NewEngine(5)
	c := NewChannel(eng, 250)
	c.SetCarrierSenseRange(550)
	const maxSpeed = 20.0
	c.EnableSpatialIndex(arena, maxSpeed)
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 60; k++ {
		c.AddNode(mobility.NewWaypoint(mobility.WaypointConfig{
			Bounds:   arena,
			MinSpeed: 1,
			MaxSpeed: maxSpeed,
			Pause:    60 * sim.Second,
			Start:    mobility.RandomStart(arena, rng),
		}, rand.New(rand.NewSource(int64(k)))), nullRx{})
	}
	s := c.ensureIndex()
	for q := 0; q < 4000; q++ {
		at := sim.Time(q) * sim.Time(53*time.Millisecond)
		eng.At(at, func() {
			now := eng.Now()
			s.refresh(now)
			for _, i := range c.ifaces {
				idx := int32(i.id)
				drift := s.pos[idx].Dist(i.model.PositionAt(now))
				if drift > s.slack+epsMeters {
					t.Fatalf("t=%v iface %d drifted %.3f m > slack %.3f m",
						now, i.id, drift, s.slack)
				}
			}
		})
	}
	if err := eng.Run(300 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestIndexAddNodeAfterTraffic adds interfaces after the index is live
// and checks they are found immediately.
func TestIndexAddNodeAfterTraffic(t *testing.T) {
	arena := geo.NewRect(1000, 1000)
	eng := sim.NewEngine(3)
	c := NewChannel(eng, 250)
	c.EnableSpatialIndex(arena, 0)
	a := c.AddNode(mobility.Static{At: geo.Pt(500, 500)}, nullRx{})
	tx := a.Transmit(10, time.Microsecond, nil)
	if len(tx.sensorIDs) != 0 {
		t.Fatalf("lone node has %d sensors", len(tx.sensorIDs))
	}
	if err := eng.Run(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	b := c.AddNode(mobility.Static{At: geo.Pt(600, 500)}, nullRx{})
	if got := a.Neighbors(); len(got) != 1 || got[0] != b {
		t.Fatalf("Neighbors after AddNode = %v, want [%d]", ids(got), b.id)
	}
	tx2 := a.Transmit(10, time.Microsecond, nil)
	if !sameIDs(c, tx2.receiverIDs, []*Iface{b}) {
		t.Fatalf("receivers after AddNode = %v, want [%d]", tx2.receiverIDs, b.id)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
}

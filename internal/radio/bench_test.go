package radio

import (
	"math/rand"
	"testing"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/mobility"
	"anongeo/internal/sim"
)

// benchTransmitDense drives the channel hot path at Figure 1's top
// density — 150 waypoint nodes in a 1500×300 m arena — one frame every
// 2 ms, timing the full transmit→finish cycle (sensing-set freeze,
// busy/idle notifications, delivery bookkeeping, index rebinning).
func benchTransmitDense(b *testing.B, brute bool) {
	arena := geo.NewRect(1500, 300)
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	c.SetCarrierSenseRange(550)
	if brute {
		c.SetBruteForce(true)
	} else {
		c.EnableSpatialIndex(arena, 20)
	}
	const n = 150
	rng := rand.New(rand.NewSource(9))
	for k := 0; k < n; k++ {
		c.AddNode(mobility.NewWaypoint(mobility.WaypointConfig{
			Bounds:   arena,
			MinSpeed: 1,
			MaxSpeed: 20,
			Start:    mobility.RandomStart(arena, rng),
		}, rand.New(rand.NewSource(int64(k)))), nullRx{})
	}
	sent := 0
	var step func()
	step = func() {
		c.ifaces[sent%n].Transmit(64*8, 500*time.Microsecond, nil)
		sent++
		if sent < b.N {
			eng.Schedule(2*time.Millisecond, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Schedule(time.Millisecond, step)
	if err := eng.RunAll(); err != nil {
		b.Fatal(err)
	}
	if got := c.Stats().Transmissions; got != b.N {
		b.Fatalf("made %d transmissions, want %d", got, b.N)
	}
}

func BenchmarkTransmitDense(b *testing.B) {
	b.Run("indexed", func(b *testing.B) { benchTransmitDense(b, false) })
	b.Run("brute", func(b *testing.B) { benchTransmitDense(b, true) })
}

package radio

import (
	"math/rand"
	"testing"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/mobility"
	"anongeo/internal/sim"
)

// TestTransmitFinishZeroAlloc pins the radio hot path's allocation
// budget: at steady state, a transmit→deliver→finish round trip on an
// indexed channel must be garbage-free. The Transmission arena, the
// pooled id slices, and the per-interface arrival arrays all recycle,
// so after warm-up the only tolerated allocations are the rare
// capacity doublings — amortized zero across a 64-frame burst.
func TestTransmitFinishZeroAlloc(t *testing.T) {
	arena := geo.NewRect(1000, 1000)
	eng := sim.NewEngine(1)
	c := NewChannel(eng, 250)
	c.SetCarrierSenseRange(550)
	c.EnableSpatialIndex(arena, 0)
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 64; k++ {
		c.AddNode(mobility.Static{At: mobility.RandomStart(arena, rng)}, nullRx{})
	}
	burst := func() {
		for _, i := range c.ifaces {
			i.Transmit(512, time.Microsecond, nil)
			if err := eng.RunAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm up: grow the arrival arrays, id-slice pools, and the
	// transmission arena to their steady-state capacities.
	for i := 0; i < 64; i++ {
		burst()
	}
	avg := testing.AllocsPerRun(100, burst)
	if avg >= 1 {
		t.Errorf("transmit+finish burst allocates %.2f objects/run (64 frames), want amortized 0", avg)
	}
	if c.Stats().Deliveries == 0 {
		t.Fatal("no deliveries; budget check is vacuous")
	}
}

// Package radio models the shared wireless medium: unit-disk propagation
// with a nominal range (250 m in the paper), half-duplex interfaces,
// carrier sensing, and per-receiver collision bookkeeping.
//
// The model deliberately reproduces the effects the paper's evaluation
// hinges on:
//
//   - Hidden terminals: two senders out of each other's carrier-sense
//     range can transmit simultaneously; a receiver in range of both sees
//     overlapping frames and loses both.
//   - Half duplex: a node that starts transmitting corrupts any frame it
//     was receiving, and cannot receive while it transmits.
//
// Propagation delay (≈0.8 µs at 250 m) is ignored; frame airtimes are
// hundreds of microseconds to milliseconds, so this changes nothing the
// MAC can observe. Node movement within one frame (≤ millimeters at
// 20 m/s) is likewise ignored: the receiver set is frozen at frame start.
package radio

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/mobility"
	"anongeo/internal/sim"
)

// NodeID identifies an interface on a channel. It is a radio-level index,
// deliberately not a protocol identity: anonymity properties are decided
// by what the MAC and network layers put in frames, not by this index.
type NodeID int

// Receiver is the MAC-side contract of an interface. The channel invokes
// it from simulation events; implementations must not block.
type Receiver interface {
	// OnMediumBusy fires when the first in-range transmission begins.
	OnMediumBusy()
	// OnMediumIdle fires when the last in-range transmission ends.
	OnMediumIdle()
	// OnReceive delivers a frame that arrived without collision.
	OnReceive(tx *Transmission)
}

// Tap observes every transmission on the channel, for tracing and for the
// adversary package's eavesdroppers. Taps see frames regardless of
// position; position-limited adversaries filter on SenderPos themselves.
type Tap interface {
	// OnTransmit fires at the start of every transmission.
	OnTransmit(tx *Transmission)
	// OnDeliver fires for every clean delivery of tx to a receiver.
	OnDeliver(rx NodeID, rxPos geo.Point, tx *Transmission)
}

// Transmission is one frame on the air.
type Transmission struct {
	Sender    NodeID
	SenderPos geo.Point // sender position at frame start
	Start     sim.Time
	Airtime   time.Duration
	Bits      int
	Payload   any // the MAC frame

	// sensors are the interfaces within carrier-sense range at frame
	// start; receivers is the subset within decode range. The brute-force
	// and plain (un-indexed) paths record them as interface pointers; the
	// indexed path records interface ids instead — pooled pointer-free
	// slices cost no write barriers on append and nothing for the garbage
	// collector to scan.
	sensors     []*Iface
	receivers   []*Iface
	sensorIDs   []int32
	receiverIDs []int32

	// finishFn is the end-of-airtime callback, allocated once per pooled
	// Transmission and reused across recycles (it reads the sender id from
	// the struct at fire time), so the per-frame hot path schedules the
	// finish without allocating a fresh closure.
	finishFn func()
}

// End reports when the transmission leaves the air.
func (t *Transmission) End() sim.Time { return t.Start.Add(t.Airtime) }

// Stats aggregates channel-level counters for metrics and tests.
//
// Conservation invariant (the end-of-run audit checks it): every frozen
// receiver slot resolves exactly once, so
//
//	Deliveries + Collisions + (pending arrivals) == RxFrozen
//
// where Collisions counts every lost frame/receiver pair — interference,
// half-duplex corruption, fading, and jamming alike — and FadingLosses /
// JamLosses break out the loss-model share of that total.
type Stats struct {
	Transmissions int // frames put on the air
	Deliveries    int // clean frame deliveries (per receiver)
	Collisions    int // frame/receiver pairs lost (all causes)
	FadingLosses  int // clean deliveries killed by the fading loss model
	JamLosses     int // clean deliveries killed inside a jam window
	RxFrozen      int // frame/receiver pairs frozen at transmit start
	BitsSent      int64
}

// LossOutcome classifies a loss model's verdict on one otherwise-clean
// delivery.
type LossOutcome int

// Loss verdicts: LossNone delivers the frame; the other two corrupt it
// and select which Stats counter records the cause.
const (
	LossNone LossOutcome = iota
	LossFading
	LossJam
)

// LossModel decides, per otherwise-clean frame delivery, whether the
// frame is lost anyway — fading, bit errors, jamming. Implementations
// run on the simulation goroutine and must draw randomness only from
// deterministic engine streams so runs stay reproducible. rx is the
// receiving interface (position queries for regional models).
type LossModel interface {
	Lost(rx *Iface) LossOutcome
}

// bernoulliLoss is the independent per-delivery loss model behind
// SetLossRate: each delivery fails with probability p.
type bernoulliLoss struct {
	p   float64
	rng *rand.Rand
}

func (b *bernoulliLoss) Lost(*Iface) LossOutcome {
	if b.rng.Float64() < b.p {
		return LossFading
	}
	return LossNone
}

// NewBernoulliLoss builds the independent per-delivery loss model used
// by SetLossRate, for callers (the fault runtime) that compose it with
// other models. rng must be a dedicated deterministic stream.
func NewBernoulliLoss(p float64, rng *rand.Rand) LossModel {
	return &bernoulliLoss{p: p, rng: rng}
}

// Channel is the shared medium. It is single-threaded on the simulation
// engine; none of its methods are safe for concurrent use.
//
// Two implementations of the per-frame hot path coexist:
//
//   - The default fast path keeps all per-interface hot state (busy
//     counters, arrival slots, receiver callbacks, motion-leg memos) in
//     dense channel-level arrays indexed by interface id, pools the
//     per-frame sensor/receiver slices and Transmission structs, and —
//     once EnableSpatialIndex is called — resolves the sensing set from
//     a grid index instead of scanning every interface.
//   - SetBruteForce(true) routes to the seed implementation (full O(n)
//     scan, map-based arrival bookkeeping, unpooled slices), kept as the
//     bit-for-bit parity oracle and the benchmark baseline.
//
// Both paths classify distances with the same squared-distance
// comparisons and touch interfaces in ascending id order, so a run is
// bit-for-bit identical under either; the parity tests in this package
// and in internal/core pin that.
type Channel struct {
	eng     *sim.Engine
	rangeM  float64
	csRange float64
	loss    LossModel
	ifaces  []*Iface
	taps    []Tap
	stats   Stats

	arena      geo.Rect
	arenaSet   bool
	maxSpeed   float64
	bruteForce bool
	index      *spatialIndex

	// slicePool and idPool recycle the per-frame sensor/receiver slices
	// of the fast paths (pointer slices for plain channels, id slices for
	// indexed ones); a frame returns its two slices in finish. txPool
	// recycles Transmission structs the same way, but only on indexed
	// channels (see getTx): plain channels keep allocation semantics so
	// tests may retain *Transmission past finish.
	slicePool [][]*Iface
	idPool    [][]int32
	txPool    []*Transmission

	// Dense per-interface hot state, indexed by interface id — the
	// struct-of-arrays layout of everything the notify and finish loops
	// touch per sensing interface. Keeping it in flat arrays means the
	// common quiet case (an already-busy sensor with nothing arriving)
	// is a couple of contiguous array operations instead of a cache miss
	// on a scattered Iface struct.
	//
	// busyTx packs the foreign-transmission count and the transmitting
	// flag as count<<1 | transmitting, so "is the medium busy here" is a
	// single non-zero test on one load. It is the source of truth for
	// the busy count; the flag bit mirrors Iface.transmitting != nil.
	// arr holds each interface's pending fast-path arrivals (the brute
	// path keeps its map on the Iface); rxs mirrors Iface.rx so medium
	// callbacks skip the Iface dereference.
	busyTx []int32
	arr    [][]arrivalSlot
	rxs    []Receiver

	// legs/legSrc memoize each node's current piecewise-linear motion
	// leg, so the hot-path position queries (annulus checks, rebinning,
	// delivery taps) evaluate one lerp inline instead of dispatching
	// into the mobility model. legSrc[k] is nil when k's model exports
	// no legs; posAt then falls back to PositionAt. Results are bit
	// identical either way (mobility.Leg's contract).
	legs   []legCache
	legSrc []mobility.LegProvider
}

// legCache is the channel-side mirror of one mobility.Leg, valid for
// now in [start, depart).
type legCache struct {
	start  sim.Time
	arrive sim.Time
	depart sim.Time
	from   geo.Point
	to     geo.Point
}

// posAt reports interface k's position at now via the leg cache,
// bit-for-bit equal to c.ifaces[k].model.PositionAt(now). now must be
// nonnegative (engine time always is).
func (c *Channel) posAt(k int32, now sim.Time) geo.Point {
	l := &c.legs[k]
	if now < l.start || now >= l.depart {
		lp := c.legSrc[k]
		if lp == nil {
			return c.ifaces[k].model.PositionAt(now)
		}
		lg := lp.LegAt(now)
		*l = legCache{start: lg.Start, arrive: lg.Arrive, depart: lg.Depart, from: lg.From, to: lg.To}
	}
	// Mirrors mobility's legPos exactly: same operations, same order.
	if now >= l.arrive {
		return l.to
	}
	f := float64(now-l.start) / float64(l.arrive-l.start)
	return l.from.Lerp(l.to, f)
}

// NewChannel creates a medium where every interface decodes
// transmissions within rangeM meters. The carrier-sense/interference
// range initially equals rangeM; real radios sense much farther than
// they decode (NS-2's WaveLAN model senses at ~2.2× the communication
// range), which SetCarrierSenseRange configures.
func NewChannel(eng *sim.Engine, rangeM float64) *Channel {
	if rangeM <= 0 {
		panic("radio: range must be positive")
	}
	return &Channel{eng: eng, rangeM: rangeM, csRange: rangeM}
}

// SetCarrierSenseRange widens the distance at which transmissions are
// sensed (and interfere with receptions) beyond the decode range. Must
// be called before traffic flows; cs must be >= the decode range.
func (c *Channel) SetCarrierSenseRange(cs float64) {
	if cs < c.rangeM {
		panic("radio: carrier-sense range below decode range")
	}
	c.csRange = cs
	c.index = nil // cell size derives from cs; rebuild lazily
}

// EnableSpatialIndex activates the grid index over the given arena.
// maxSpeed must upper-bound the speed of every attached mobility model
// (0 means all nodes are static); the index's lazy rebinning budget —
// and therefore its correctness — derives from it. Positions outside the
// arena stay correct (they clamp to border cells) but forfeit the
// speedup. core.Build feeds this from the scenario config.
func (c *Channel) EnableSpatialIndex(bounds geo.Rect, maxSpeed float64) {
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		panic("radio: spatial index arena must have positive extent")
	}
	if maxSpeed < 0 {
		panic("radio: negative max speed")
	}
	c.arena = bounds
	c.arenaSet = true
	c.maxSpeed = maxSpeed
	c.index = nil // rebuild lazily with the new parameters
}

// SetMaxSpeed adjusts the mobility bound the index's rebinning slack is
// derived from (see EnableSpatialIndex).
func (c *Channel) SetMaxSpeed(v float64) {
	if v < 0 {
		panic("radio: negative max speed")
	}
	c.maxSpeed = v
	c.index = nil
}

// SetBruteForce routes the hot path to the seed's O(n) full-scan
// implementation. It exists for the index-vs-brute parity tests and as
// the wall-clock benchmark baseline; it must be chosen before any
// traffic flows (the two paths keep arrival state in different
// containers).
func (c *Channel) SetBruteForce(on bool) {
	if c.stats.Transmissions > 0 {
		panic("radio: SetBruteForce after traffic started")
	}
	c.bruteForce = on
	c.index = nil
}

// ensureIndex returns the grid index, building it on first use, or nil
// when the channel runs without one (no arena configured, or brute-force
// mode).
func (c *Channel) ensureIndex() *spatialIndex {
	if c.index != nil {
		return c.index
	}
	if !c.arenaSet || c.bruteForce {
		return nil
	}
	c.index = newSpatialIndex(c, c.arena, c.csRange, c.maxSpeed)
	now := c.eng.Now()
	for _, i := range c.ifaces {
		c.index.insert(i, now)
	}
	return c.index
}

// SetLossRate makes each otherwise-clean frame delivery fail
// independently with probability p — a crude fading/bit-error model for
// robustness experiments. Randomness comes from the engine's
// deterministic stream, so runs stay reproducible. It is a convenience
// wrapper over SetLossModel; richer models (bursty Gilbert–Elliott
// fading, regional jamming) come from internal/fault.
func (c *Channel) SetLossRate(p float64) {
	if p < 0 || p >= 1 {
		panic("radio: loss rate must be in [0, 1)")
	}
	if p == 0 {
		c.loss = nil
		return
	}
	c.loss = &bernoulliLoss{p: p, rng: c.eng.NewStream()}
}

// SetLossModel installs a pluggable per-delivery loss model (nil
// disables loss injection). The model is consulted once per
// otherwise-clean delivery, in deterministic delivery order.
func (c *Channel) SetLossModel(m LossModel) { c.loss = m }

// PendingArrivals counts frame/receiver pairs frozen but not yet
// resolved — transmissions still on the air. The end-of-run
// conservation audit uses it to close the Stats invariant.
func (c *Channel) PendingArrivals() int {
	n := 0
	for k, i := range c.ifaces {
		n += len(c.arr[k]) + len(i.arrivalsM)
	}
	return n
}

// applyLoss runs the loss model over an otherwise-clean delivery and
// books the outcome; it reports whether the frame was lost.
func (c *Channel) applyLoss(rx *Iface) bool {
	if c.loss == nil {
		return false
	}
	switch c.loss.Lost(rx) {
	case LossFading:
		c.stats.FadingLosses++
		return true
	case LossJam:
		c.stats.JamLosses++
		return true
	}
	return false
}

// Range reports the nominal decode range in meters.
func (c *Channel) Range() float64 { return c.rangeM }

// CarrierSenseRange reports the sensing/interference range in meters.
func (c *Channel) CarrierSenseRange() float64 { return c.csRange }

// Stats returns a snapshot of the channel counters.
func (c *Channel) Stats() Stats { return c.stats }

// AddTap registers a channel observer.
func (c *Channel) AddTap(t Tap) { c.taps = append(c.taps, t) }

// AddNode attaches an interface moving per model and delivering to rx.
func (c *Channel) AddNode(model mobility.Model, rx Receiver) *Iface {
	i := &Iface{
		id:        NodeID(len(c.ifaces)),
		ch:        c,
		model:     model,
		rx:        rx,
		arrivalsM: make(map[*Transmission]*arrival),
	}
	c.ifaces = append(c.ifaces, i)
	c.busyTx = append(c.busyTx, 0)
	c.arr = append(c.arr, nil)
	c.rxs = append(c.rxs, rx)
	lp, _ := model.(mobility.LegProvider)
	c.legSrc = append(c.legSrc, lp)
	c.legs = append(c.legs, legCache{})
	if c.index != nil {
		c.index.insert(i, c.eng.Now())
	}
	return i
}

// NumNodes reports how many interfaces are attached.
func (c *Channel) NumNodes() int { return len(c.ifaces) }

// Iface returns the interface with the given id.
func (c *Channel) Iface(id NodeID) *Iface { return c.ifaces[id] }

// arrival tracks one transmission currently impinging on one interface
// (brute-force path).
type arrival struct {
	tx      *Transmission
	corrupt bool
}

// arrivalSlot is the fast path's arrival record, held by value in a
// small slice: at most a handful of frames ever overlap at one receiver,
// so a linear scan beats a map and the record never allocates.
type arrivalSlot struct {
	tx      *Transmission
	corrupt bool
}

// Iface is one node's attachment to the channel. Its fast-path arrival
// slots live in ch.arr[id] (struct-of-arrays); only the brute-force
// path keeps per-Iface arrival state.
type Iface struct {
	id    NodeID
	ch    *Channel
	model mobility.Model
	rx    Receiver

	arrivalsM    map[*Transmission]*arrival // brute-force (seed) path
	transmitting *Transmission              // ch.busyTx's low bit mirrors non-nilness
}

// ID reports the interface's channel index.
func (i *Iface) ID() NodeID { return i.id }

// Pos reports the node's current position. Brute-force channels bypass
// the leg cache so the benchmark baseline keeps measuring the seed's
// full position-lookup path.
func (i *Iface) Pos() geo.Point {
	if i.ch.bruteForce {
		return i.model.PositionAt(i.ch.eng.Now())
	}
	return i.ch.posAt(int32(i.id), i.ch.eng.Now())
}

// Busy reports whether the medium is physically busy at this interface:
// a foreign in-range transmission is on air, or we are transmitting.
func (i *Iface) Busy() bool { return i.ch.busyTx[i.id] != 0 }

// Transmitting reports whether this interface is currently sending.
func (i *Iface) Transmitting() bool { return i.transmitting != nil }

// Transmit puts a frame of the given size on the air for airtime. The MAC
// is responsible for all channel-access rules (CSMA, SIFS responses); the
// channel never refuses a transmission, it just lets collisions happen.
// Transmitting while already transmitting is a MAC bug and panics.
func (i *Iface) Transmit(bits int, airtime time.Duration, payload any) *Transmission {
	if i.transmitting != nil {
		panic(fmt.Sprintf("radio: iface %d began a transmission while already transmitting", i.id))
	}
	if airtime <= 0 {
		panic("radio: airtime must be positive")
	}
	c := i.ch
	now := c.eng.Now()
	tx := c.getTx()
	fin := tx.finishFn
	*tx = Transmission{
		Sender:    i.id,
		SenderPos: i.model.PositionAt(now),
		Start:     now,
		Airtime:   airtime,
		Bits:      bits,
		Payload:   payload,
	}
	if fin == nil {
		fin = func() { c.finish(c.ifaces[tx.Sender], tx) }
	}
	tx.finishFn = fin
	i.transmitting = tx
	c.busyTx[i.id] |= 1
	c.stats.Transmissions++
	c.stats.BitsSent += int64(bits)

	// Freeze the sensing and receiving sets at frame start. Interfaces
	// within the carrier-sense range sense the medium busy and have any
	// in-progress reception corrupted; only those within the decode
	// range can receive the frame itself.
	if c.bruteForce {
		i.transmitBrute(tx, now)
	} else {
		i.transmitFast(tx, now)
	}

	for _, tap := range c.taps {
		tap.OnTransmit(tx)
	}

	c.eng.Schedule(airtime, fin)
	return tx
}

// transmitFast freezes tx's sensing/receiving sets via the spatial index
// when one is configured, or an id-order linear scan otherwise. Either
// way interfaces are notified in ascending id order — the exact sequence
// the brute-force path produces — so downstream event scheduling and RNG
// draws are unperturbed.
func (i *Iface) transmitFast(tx *Transmission, now sim.Time) {
	c := i.ch
	// Half duplex: starting to send destroys anything we were receiving.
	self := c.arr[i.id]
	for k := range self {
		self[k].corrupt = true
	}
	cs2 := c.csRange * c.csRange
	r2 := c.rangeM * c.rangeM
	if s := c.ensureIndex(); s != nil {
		s.refresh(now)
		sensors, receivers := c.getIDSlice(), c.getIDSlice()
		bt, arrs, rxs := c.busyTx, c.arr, c.rxs
		if s.linearScan {
			// Small-arena mode (see spatialIndex.linearScan): classify
			// against a sequential walk of the binned positions, fused with
			// the notify step — one pass in natural ascending id order,
			// exactly markCandidates' thresholds, no scratch array. The
			// notify body below mirrors the bucketed branch's.
			sh := s.slack + epsMeters
			skip2 := sq(c.csRange + sh)
			senseSure2 := surelyWithin2(c.csRange, sh)
			recvSure2 := surelyWithin2(c.rangeM, sh)
			recvImpossible2 := sq(c.rangeM + sh)
			// Hoist the self test out of the loop: park our own binned
			// position at infinity so the range cut rejects it like any
			// far node, then restore it. One compare per iteration, but
			// this is the hottest loop in the simulator.
			selfID := int(i.id)
			selfPos := s.pos[selfID]
			s.pos[selfID] = geo.Pt(math.Inf(1), math.Inf(1))
			sx, sy := tx.SenderPos.X, tx.SenderPos.Y
			for k, bp := range s.pos {
				// Dist2 split so the x-term alone rejects most of a wide
				// arena: dy² ≥ 0 can only grow the sum, so bailing on
				// dx² > skip2 skips exactly the nodes the full distance
				// would. Survivors see the same dx*dx + dy*dy Dist2
				// computes.
				dx := sx - bp.X
				bd2 := dx * dx
				if bd2 > skip2 {
					continue // certainly out of sensing range
				}
				dy := sy - bp.Y
				bd2 += dy * dy
				if bd2 > skip2 {
					continue // certainly out of sensing range
				}
				receiver := bd2 <= recvSure2
				if !receiver && (bd2 > senseSure2 || bd2 <= recvImpossible2) {
					// Uncertainty annulus: resolve with the true position.
					d2 := tx.SenderPos.Dist2(c.posAt(int32(k), now))
					if d2 > cs2 {
						continue
					}
					receiver = d2 <= r2
				}
				sensors = append(sensors, int32(k))
				wasBusy := bt[k] != 0
				bt[k] += 2
				if arr := arrs[k]; len(arr) > 0 {
					// Interference: corrupt whatever was arriving at k.
					for a := range arr {
						arr[a].corrupt = true
					}
				}
				if receiver {
					receivers = append(receivers, int32(k))
					c.stats.RxFrozen++
					// The newcomer is corrupt at k iff anything was already
					// on the medium there — another impinging frame, or k's
					// own half-duplex transmission.
					arrs[k] = append(arrs[k], arrivalSlot{tx: tx, corrupt: wasBusy})
				}
				if !wasBusy {
					rxs[k].OnMediumBusy()
				}
			}
			s.pos[selfID] = selfPos
			tx.sensorIDs, tx.receiverIDs = sensors, receivers
			return
		}
		s.markCandidates(int32(i.id), tx.SenderPos, c.csRange, c.rangeM)
		// Consume the classification array in ascending id order — the
		// exact sequence the brute-force scan notifies in — zeroing each
		// mark so the scratch is clean for the next query. The notify
		// steps are notifyOne inlined against the dense state arrays:
		// a candidate that is already busy with nothing arriving is
		// handled without touching its Iface struct at all.
		for k, cl := range s.class {
			if cl == 0 {
				continue
			}
			s.class[k] = 0
			receiver := cl == scanReceiver
			if cl == scanExact {
				d2 := tx.SenderPos.Dist2(c.posAt(int32(k), now))
				if d2 > cs2 {
					continue
				}
				receiver = d2 <= r2
			}
			sensors = append(sensors, int32(k))
			wasBusy := bt[k] != 0
			bt[k] += 2
			if arr := arrs[k]; len(arr) > 0 {
				// Interference: corrupt whatever was arriving at k.
				for a := range arr {
					arr[a].corrupt = true
				}
			}
			if receiver {
				receivers = append(receivers, int32(k))
				c.stats.RxFrozen++
				// The newcomer is corrupt at k iff anything was already
				// on the medium there — another impinging frame, or k's
				// own half-duplex transmission.
				arrs[k] = append(arrs[k], arrivalSlot{tx: tx, corrupt: wasBusy})
			}
			if !wasBusy {
				rxs[k].OnMediumBusy()
			}
		}
		tx.sensorIDs, tx.receiverIDs = sensors, receivers
		return
	}
	tx.sensors = c.getSlice()
	tx.receivers = c.getSlice()
	for _, j := range c.ifaces {
		if j == i {
			continue
		}
		d2 := tx.SenderPos.Dist2(j.model.PositionAt(now))
		if d2 <= cs2 {
			i.notifyOne(tx, j, d2 <= r2)
		}
	}
}

// notifyOne applies one frozen sensing decision: j senses tx and, when
// receiver is set, gets an arrival slot for it. Must be called in
// ascending j.id order within one transmission.
func (i *Iface) notifyOne(tx *Transmission, j *Iface, receiver bool) {
	c := j.ch
	tx.sensors = append(tx.sensors, j)
	wasBusy := j.Busy()
	c.busyTx[j.id] += 2
	// Interference: this transmission corrupts whatever j was
	// receiving, even if j cannot decode it.
	arr := c.arr[j.id]
	for k := range arr {
		arr[k].corrupt = true
	}
	if receiver {
		tx.receivers = append(tx.receivers, j)
		c.stats.RxFrozen++
		// The newcomer is corrupt at j if anything else was already on
		// the medium there — an impinging frame or j's own half-duplex
		// transmission — which is exactly wasBusy.
		c.arr[j.id] = append(c.arr[j.id], arrivalSlot{tx: tx, corrupt: wasBusy})
	}
	if !wasBusy {
		j.rx.OnMediumBusy()
	}
}

// transmitBrute is the seed implementation, kept verbatim as the parity
// oracle and benchmark baseline: scan every interface, evaluate its
// mobility model, compare true (hypot) distances, keep arrivals in a
// map. The fast path compares squared distances instead; the two only
// disagree when a distance lands within one ulp of a threshold, and the
// parity test asserts bit-for-bit equal results on the committed
// configurations. See SetBruteForce.
func (i *Iface) transmitBrute(tx *Transmission, now sim.Time) {
	c := i.ch
	for _, a := range i.arrivalsM {
		a.corrupt = true
	}
	for _, j := range c.ifaces {
		if j == i {
			continue
		}
		d := tx.SenderPos.Dist(j.model.PositionAt(now))
		if d > c.csRange {
			continue
		}
		tx.sensors = append(tx.sensors, j)
		wasBusy := j.Busy()
		c.busyTx[j.id] += 2
		for _, a := range j.arrivalsM {
			a.corrupt = true
		}
		if d <= c.rangeM {
			tx.receivers = append(tx.receivers, j)
			c.stats.RxFrozen++
			na := &arrival{tx: tx}
			// Seed condition "mid-transmission or busy count (including
			// this tx) above one" — equivalent to wasBusy.
			if wasBusy {
				na.corrupt = true
			}
			j.arrivalsM[tx] = na
		}
		if !wasBusy {
			j.rx.OnMediumBusy()
		}
	}
}

// finish completes a transmission: clears the sender's half-duplex state
// and delivers or discards the frame at each frozen receiver, releasing
// the medium at every sensing interface.
func (c *Channel) finish(sender *Iface, tx *Transmission) {
	sender.transmitting = nil
	c.busyTx[sender.id] &^= 1
	if c.bruteForce {
		c.finishBrute(tx)
		return
	}
	if tx.sensorIDs != nil {
		c.finishIndexed(tx)
		return
	}
	// Receivers are the id-ordered subset of sensors that hold an arrival
	// slot for tx, so a merge cursor finds them without probing every
	// sensor's arrival list.
	rc := 0
	for _, j := range tx.sensors {
		c.busyTx[j.id] -= 2
		if rc < len(tx.receivers) && tx.receivers[rc] == j {
			rc++
			if k := c.findArrival(int32(j.id), tx); k >= 0 {
				corrupt := c.arr[j.id][k].corrupt
				c.removeArrival(int32(j.id), k)
				if !corrupt && c.applyLoss(j) {
					corrupt = true
				}
				if !corrupt {
					c.stats.Deliveries++
					for _, tap := range c.taps {
						tap.OnDeliver(j.id, c.posAt(int32(j.id), c.eng.Now()), tx)
					}
					j.rx.OnReceive(tx)
				} else {
					c.stats.Collisions++
				}
			}
		}
		if !j.Busy() {
			j.rx.OnMediumIdle()
		}
	}
	c.putSlice(tx.sensors)
	c.putSlice(tx.receivers)
	tx.sensors, tx.receivers = nil, nil
	c.putTx(tx)
}

// finishIndexed is finish's hot loop for indexed frames, which carry
// their frozen sets as interface ids (see transmitFast).
func (c *Channel) finishIndexed(tx *Transmission) {
	rc := 0
	recv := tx.receiverIDs
	bt, rxs := c.busyTx, c.rxs
	for _, idx := range tx.sensorIDs {
		v := bt[idx] - 2
		bt[idx] = v
		if rc < len(recv) && recv[rc] == idx {
			rc++
			if k := c.findArrival(idx, tx); k >= 0 {
				corrupt := c.arr[idx][k].corrupt
				c.removeArrival(idx, k)
				if !corrupt && c.applyLoss(c.ifaces[idx]) {
					corrupt = true
				}
				if !corrupt {
					c.stats.Deliveries++
					for _, tap := range c.taps {
						tap.OnDeliver(NodeID(idx), c.posAt(idx, c.eng.Now()), tx)
					}
					rxs[idx].OnReceive(tx)
				} else {
					c.stats.Collisions++
				}
			}
		}
		if v == 0 {
			rxs[idx].OnMediumIdle()
		}
	}
	c.putIDSlice(tx.sensorIDs)
	c.putIDSlice(tx.receiverIDs)
	tx.sensorIDs, tx.receiverIDs = nil, nil
	c.putTx(tx)
}

// finishBrute is the seed implementation of finish (see transmitBrute).
func (c *Channel) finishBrute(tx *Transmission) {
	for _, j := range tx.sensors {
		c.busyTx[j.id] -= 2
		if a, decodable := j.arrivalsM[tx]; decodable {
			delete(j.arrivalsM, tx)
			if !a.corrupt && c.applyLoss(j) {
				a.corrupt = true
			}
			if !a.corrupt {
				c.stats.Deliveries++
				for _, tap := range c.taps {
					tap.OnDeliver(j.id, j.model.PositionAt(c.eng.Now()), tx)
				}
				j.rx.OnReceive(tx)
			} else {
				c.stats.Collisions++
			}
		}
		if !j.Busy() {
			j.rx.OnMediumIdle()
		}
	}
}

// findArrival reports the index of tx in interface id's arrival slots,
// or -1.
func (c *Channel) findArrival(id int32, tx *Transmission) int {
	arr := c.arr[id]
	for k := range arr {
		if arr[k].tx == tx {
			return k
		}
	}
	return -1
}

// removeArrival swap-removes slot k; arrival order is never observable.
func (c *Channel) removeArrival(id int32, k int) {
	arr := c.arr[id]
	last := len(arr) - 1
	arr[k] = arr[last]
	arr[last] = arrivalSlot{}
	c.arr[id] = arr[:last]
}

// txChunk is how many Transmissions one pool refill allocates at once.
// Chunking arena-style keeps the recycled structs contiguous and cuts
// steady-state allocation on indexed channels to the rare refill.
const txChunk = 64

// getTx pops a pooled Transmission or allocates. Pooling only happens
// on indexed channels (core scenarios, where the MAC consumes
// transmissions synchronously): a plain channel never recycles, so tests
// that retain *Transmission across deliveries stay valid.
func (c *Channel) getTx() *Transmission {
	if n := len(c.txPool); n > 0 {
		tx := c.txPool[n-1]
		c.txPool = c.txPool[:n-1]
		return tx
	}
	if !c.bruteForce && c.arenaSet {
		chunk := make([]Transmission, txChunk)
		for k := txChunk - 1; k > 0; k-- {
			c.txPool = append(c.txPool, &chunk[k])
		}
		return &chunk[0]
	}
	return &Transmission{}
}

// putTx recycles a finished transmission on indexed channels. Receivers
// and taps on such channels must not hold *Transmission past the
// callback that handed it to them.
func (c *Channel) putTx(tx *Transmission) {
	if c.bruteForce || !c.arenaSet {
		return
	}
	// No need to zero the struct: Transmit overwrites every field on
	// reuse and the callers already nil'ed the frozen-set slices. Only
	// the payload reference is dropped so the pool does not pin frames.
	tx.Payload = nil
	c.txPool = append(c.txPool, tx)
}

// getSlice pops a pooled interface slice (len 0) or makes a fresh one.
func (c *Channel) getSlice() []*Iface {
	if n := len(c.slicePool); n > 0 {
		s := c.slicePool[n-1]
		c.slicePool = c.slicePool[:n-1]
		return s
	}
	return make([]*Iface, 0, 8)
}

// putSlice returns a per-frame slice to the pool.
func (c *Channel) putSlice(s []*Iface) {
	if s == nil {
		return
	}
	c.slicePool = append(c.slicePool, s[:0])
}

// getIDSlice pops a pooled id slice (len 0) or makes a fresh one.
func (c *Channel) getIDSlice() []int32 {
	if n := len(c.idPool); n > 0 {
		s := c.idPool[n-1]
		c.idPool = c.idPool[:n-1]
		return s
	}
	return make([]int32, 0, 8)
}

// putIDSlice returns a per-frame id slice to the pool.
func (c *Channel) putIDSlice(s []int32) {
	c.idPool = append(c.idPool, s[:0])
}

// Neighbors reports the interfaces currently within range of i, in
// ascending id order — a convenience for tests and oracle-style queries
// (protocols must learn neighbors from beacons, not from this). It rides
// the spatial index when one is configured.
func (i *Iface) Neighbors() []*Iface {
	c := i.ch
	now := c.eng.Now()
	r2 := c.rangeM * c.rangeM
	var out []*Iface
	if s := c.ensureIndex(); s != nil {
		p := c.posAt(int32(i.id), now)
		s.refresh(now)
		// With sense == decode there are only certain receivers, certain
		// misses, and the exact-check annulus.
		s.markCandidates(int32(i.id), p, c.rangeM, c.rangeM)
		for k, cl := range s.class {
			if cl == 0 {
				continue
			}
			s.class[k] = 0
			if cl == scanReceiver || p.Dist2(c.posAt(int32(k), now)) <= r2 {
				out = append(out, c.ifaces[k])
			}
		}
		return out
	}
	p := i.model.PositionAt(now)
	for _, j := range c.ifaces {
		if j == i {
			continue
		}
		if p.Dist2(j.model.PositionAt(now)) <= r2 {
			out = append(out, j)
		}
	}
	return out
}

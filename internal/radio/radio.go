// Package radio models the shared wireless medium: unit-disk propagation
// with a nominal range (250 m in the paper), half-duplex interfaces,
// carrier sensing, and per-receiver collision bookkeeping.
//
// The model deliberately reproduces the effects the paper's evaluation
// hinges on:
//
//   - Hidden terminals: two senders out of each other's carrier-sense
//     range can transmit simultaneously; a receiver in range of both sees
//     overlapping frames and loses both.
//   - Half duplex: a node that starts transmitting corrupts any frame it
//     was receiving, and cannot receive while it transmits.
//
// Propagation delay (≈0.8 µs at 250 m) is ignored; frame airtimes are
// hundreds of microseconds to milliseconds, so this changes nothing the
// MAC can observe. Node movement within one frame (≤ millimeters at
// 20 m/s) is likewise ignored: the receiver set is frozen at frame start.
package radio

import (
	"fmt"
	"math/rand"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/mobility"
	"anongeo/internal/sim"
)

// NodeID identifies an interface on a channel. It is a radio-level index,
// deliberately not a protocol identity: anonymity properties are decided
// by what the MAC and network layers put in frames, not by this index.
type NodeID int

// Receiver is the MAC-side contract of an interface. The channel invokes
// it from simulation events; implementations must not block.
type Receiver interface {
	// OnMediumBusy fires when the first in-range transmission begins.
	OnMediumBusy()
	// OnMediumIdle fires when the last in-range transmission ends.
	OnMediumIdle()
	// OnReceive delivers a frame that arrived without collision.
	OnReceive(tx *Transmission)
}

// Tap observes every transmission on the channel, for tracing and for the
// adversary package's eavesdroppers. Taps see frames regardless of
// position; position-limited adversaries filter on SenderPos themselves.
type Tap interface {
	// OnTransmit fires at the start of every transmission.
	OnTransmit(tx *Transmission)
	// OnDeliver fires for every clean delivery of tx to a receiver.
	OnDeliver(rx NodeID, rxPos geo.Point, tx *Transmission)
}

// Transmission is one frame on the air.
type Transmission struct {
	Sender    NodeID
	SenderPos geo.Point // sender position at frame start
	Start     sim.Time
	Airtime   time.Duration
	Bits      int
	Payload   any // the MAC frame

	// sensors are the interfaces within carrier-sense range at frame
	// start; receivers is the subset within decode range.
	sensors   []*Iface
	receivers []*Iface
}

// End reports when the transmission leaves the air.
func (t *Transmission) End() sim.Time { return t.Start.Add(t.Airtime) }

// Stats aggregates channel-level counters for metrics and tests.
type Stats struct {
	Transmissions int // frames put on the air
	Deliveries    int // clean frame deliveries (per receiver)
	Collisions    int // frame/receiver pairs lost to collision
	FadingLosses  int // clean deliveries killed by the loss-rate model
	BitsSent      int64
}

// Channel is the shared medium. It is single-threaded on the simulation
// engine; none of its methods are safe for concurrent use.
type Channel struct {
	eng      *sim.Engine
	rangeM   float64
	csRange  float64
	lossRate float64
	lossRng  *rand.Rand
	ifaces   []*Iface
	taps     []Tap
	stats    Stats
}

// NewChannel creates a medium where every interface decodes
// transmissions within rangeM meters. The carrier-sense/interference
// range initially equals rangeM; real radios sense much farther than
// they decode (NS-2's WaveLAN model senses at ~2.2× the communication
// range), which SetCarrierSenseRange configures.
func NewChannel(eng *sim.Engine, rangeM float64) *Channel {
	if rangeM <= 0 {
		panic("radio: range must be positive")
	}
	return &Channel{eng: eng, rangeM: rangeM, csRange: rangeM}
}

// SetCarrierSenseRange widens the distance at which transmissions are
// sensed (and interfere with receptions) beyond the decode range. Must
// be called before traffic flows; cs must be >= the decode range.
func (c *Channel) SetCarrierSenseRange(cs float64) {
	if cs < c.rangeM {
		panic("radio: carrier-sense range below decode range")
	}
	c.csRange = cs
}

// SetLossRate makes each otherwise-clean frame delivery fail
// independently with probability p — a crude fading/bit-error model for
// robustness experiments. Randomness comes from the engine's
// deterministic stream, so runs stay reproducible.
func (c *Channel) SetLossRate(p float64) {
	if p < 0 || p >= 1 {
		panic("radio: loss rate must be in [0, 1)")
	}
	c.lossRate = p
	if c.lossRng == nil {
		c.lossRng = c.eng.NewStream()
	}
}

// Range reports the nominal decode range in meters.
func (c *Channel) Range() float64 { return c.rangeM }

// CarrierSenseRange reports the sensing/interference range in meters.
func (c *Channel) CarrierSenseRange() float64 { return c.csRange }

// Stats returns a snapshot of the channel counters.
func (c *Channel) Stats() Stats { return c.stats }

// AddTap registers a channel observer.
func (c *Channel) AddTap(t Tap) { c.taps = append(c.taps, t) }

// AddNode attaches an interface moving per model and delivering to rx.
func (c *Channel) AddNode(model mobility.Model, rx Receiver) *Iface {
	i := &Iface{
		id:       NodeID(len(c.ifaces)),
		ch:       c,
		model:    model,
		rx:       rx,
		arrivals: make(map[*Transmission]*arrival),
	}
	c.ifaces = append(c.ifaces, i)
	return i
}

// NumNodes reports how many interfaces are attached.
func (c *Channel) NumNodes() int { return len(c.ifaces) }

// Iface returns the interface with the given id.
func (c *Channel) Iface(id NodeID) *Iface { return c.ifaces[id] }

// arrival tracks one transmission currently impinging on one interface.
type arrival struct {
	tx      *Transmission
	corrupt bool
}

// Iface is one node's attachment to the channel.
type Iface struct {
	id    NodeID
	ch    *Channel
	model mobility.Model
	rx    Receiver

	busyCount    int // in-range foreign transmissions currently on air
	arrivals     map[*Transmission]*arrival
	transmitting *Transmission
}

// ID reports the interface's channel index.
func (i *Iface) ID() NodeID { return i.id }

// Pos reports the node's current position.
func (i *Iface) Pos() geo.Point { return i.model.PositionAt(i.ch.eng.Now()) }

// Busy reports whether the medium is physically busy at this interface:
// a foreign in-range transmission is on air, or we are transmitting.
func (i *Iface) Busy() bool { return i.busyCount > 0 || i.transmitting != nil }

// Transmitting reports whether this interface is currently sending.
func (i *Iface) Transmitting() bool { return i.transmitting != nil }

// Transmit puts a frame of the given size on the air for airtime. The MAC
// is responsible for all channel-access rules (CSMA, SIFS responses); the
// channel never refuses a transmission, it just lets collisions happen.
// Transmitting while already transmitting is a MAC bug and panics.
func (i *Iface) Transmit(bits int, airtime time.Duration, payload any) *Transmission {
	if i.transmitting != nil {
		panic(fmt.Sprintf("radio: iface %d began a transmission while already transmitting", i.id))
	}
	if airtime <= 0 {
		panic("radio: airtime must be positive")
	}
	c := i.ch
	now := c.eng.Now()
	tx := &Transmission{
		Sender:    i.id,
		SenderPos: i.model.PositionAt(now),
		Start:     now,
		Airtime:   airtime,
		Bits:      bits,
		Payload:   payload,
	}
	i.transmitting = tx
	c.stats.Transmissions++
	c.stats.BitsSent += int64(bits)

	// Half duplex: starting to send destroys anything we were receiving.
	for _, a := range i.arrivals {
		a.corrupt = true
	}

	// Freeze the sensing and receiving sets at frame start. Interfaces
	// within the carrier-sense range sense the medium busy and have any
	// in-progress reception corrupted; only those within the decode
	// range can receive the frame itself.
	for _, j := range c.ifaces {
		if j == i {
			continue
		}
		d := tx.SenderPos.Dist(j.model.PositionAt(now))
		if d > c.csRange {
			continue
		}
		tx.sensors = append(tx.sensors, j)
		wasBusy := j.Busy()
		j.busyCount++
		// Interference: this transmission corrupts whatever j was
		// receiving, even if j cannot decode it.
		for _, a := range j.arrivals {
			a.corrupt = true
		}
		if d <= c.rangeM {
			tx.receivers = append(tx.receivers, j)
			na := &arrival{tx: tx}
			// The newcomer is corrupt at j if anything else already
			// impinges there (busyCount counted this tx already), or if
			// j is itself mid-transmission (half duplex).
			if j.transmitting != nil || j.busyCount > 1 {
				na.corrupt = true
			}
			j.arrivals[tx] = na
		}
		if !wasBusy {
			j.rx.OnMediumBusy()
		}
	}

	for _, tap := range c.taps {
		tap.OnTransmit(tx)
	}

	c.eng.Schedule(airtime, func() { c.finish(i, tx) })
	return tx
}

// finish completes a transmission: clears the sender's half-duplex state
// and delivers or discards the frame at each frozen receiver, releasing
// the medium at every sensing interface.
func (c *Channel) finish(sender *Iface, tx *Transmission) {
	sender.transmitting = nil
	for _, j := range tx.sensors {
		j.busyCount--
		if a, decodable := j.arrivals[tx]; decodable {
			delete(j.arrivals, tx)
			if !a.corrupt && c.lossRate > 0 && c.lossRng.Float64() < c.lossRate {
				a.corrupt = true
				c.stats.FadingLosses++
			}
			if !a.corrupt {
				c.stats.Deliveries++
				for _, tap := range c.taps {
					tap.OnDeliver(j.id, j.model.PositionAt(c.eng.Now()), tx)
				}
				j.rx.OnReceive(tx)
			} else {
				c.stats.Collisions++
			}
		}
		if !j.Busy() {
			j.rx.OnMediumIdle()
		}
	}
}

// Neighbors reports the interfaces currently within range of i, a
// convenience for tests and oracle-style queries (protocols must learn
// neighbors from beacons, not from this).
func (i *Iface) Neighbors() []*Iface {
	now := i.ch.eng.Now()
	p := i.model.PositionAt(now)
	var out []*Iface
	for _, j := range i.ch.ifaces {
		if j == i {
			continue
		}
		if p.Dist(j.model.PositionAt(now)) <= i.ch.rangeM {
			out = append(out, j)
		}
	}
	return out
}

package sim

import (
	"testing"
	"time"
)

// Allocation budgets: the event hot paths must be garbage-free at
// steady state, under both schedulers. These are hard assertions (not
// benchmarks), so a future change that reintroduces per-event garbage
// fails CI rather than silently regressing -benchmem numbers.

// engines returns a fresh calendar-queue and heap-scheduler engine.
func engines() map[string]*Engine {
	cal := NewEngine(1)
	heap := NewEngine(1)
	heap.UseHeapScheduler()
	return map[string]*Engine{"calendar": cal, "heap": heap}
}

// TestScheduleCancelZeroAlloc pins the MAC's hottest timer pattern:
// arm a future event, cancel it before it fires.
func TestScheduleCancelZeroAlloc(t *testing.T) {
	for name, eng := range engines() {
		fn := func() {}
		// Warm up free list and bucket/heap capacity.
		for i := 0; i < 4096; i++ {
			eng.Schedule(time.Second, fn).Cancel()
		}
		avg := testing.AllocsPerRun(1000, func() {
			eng.Schedule(time.Second, fn).Cancel()
		})
		if avg != 0 {
			t.Errorf("%s: Schedule+Cancel allocates %.2f objects/op, want 0", name, avg)
		}
	}
}

// TestDispatchZeroAlloc pins the schedule→fire round trip through Run.
func TestDispatchZeroAlloc(t *testing.T) {
	for name, eng := range engines() {
		fired := 0
		fn := func() { fired++ }
		burst := func() {
			for i := 0; i < 64; i++ {
				eng.Schedule(time.Duration(i%5)*time.Microsecond, fn)
			}
			if err := eng.RunAll(); err != nil {
				t.Fatal(err)
			}
		}
		// Warm up: the calendar queue grows each wheel bucket's capacity
		// on first touch, so steady state needs the event pattern to have
		// wrapped the wheel a few times.
		for i := 0; i < 512; i++ {
			burst()
		}
		avg := testing.AllocsPerRun(100, burst)
		// 64 dispatches per run: demand strictly less than one allocation
		// per 64 events, i.e. amortized zero (the calendar queue may
		// resize once in a blue moon; that is the only tolerated source).
		if avg >= 1 {
			t.Errorf("%s: dispatch burst allocates %.2f objects/run (64 events), want 0", name, avg)
		}
		if fired == 0 {
			t.Fatal("no events fired; budget check is vacuous")
		}
	}
}

// Calendar-queue event scheduler — the engine's default queue.
//
// A binary heap costs O(log n) per operation with a pointer-hopping
// memory pattern that worsens as the pending-event population grows; at
// large N the simulator keeps thousands of timers in flight (beacons,
// MAC backoff, ACK timeouts) and the heap becomes a measurable share of
// every event's cost. The calendar queue (Brown, CACM 1988 — the
// structure NS-2 ships as its default scheduler) replaces it with a
// bucketed timing wheel: events hash into buckets by time, enqueue and
// dequeue are O(1) amortized when the bucket width tracks the head-of-
// queue event density, and cancels are O(1) swap-removes.
//
// Determinism contract: (at, seq) is a strict total order over events,
// and dequeue always returns the globally least (at, seq) pair — the
// exact sequence the heap pops. The wheel's internal layout (bucket
// width, resizes, within-bucket order) can never leak into results; the
// scheduler parity tests in this package and internal/core pin that.
//
// Width and size adapt deterministically: the width re-estimates from
// the simulated-time span of the last calResample dequeues (a pure
// function of the event sequence, which is itself deterministic), and
// the bucket count doubles/halves on population thresholds. No
// randomness, no wall-clock, no map iteration.
package sim

// calSlot is one bucket entry: the ordering key, denormalized from the
// event, plus the event itself. Identical to heapSlot, duplicated so
// each queue's hot loops stay self-contained.
type calSlot struct {
	at  Time
	seq uint64
	ev  *Event
}

func (a calSlot) before(b calSlot) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

const (
	// calMinBuckets / calMaxBuckets bound the wheel size (powers of two).
	calMinBuckets = 1 << 8
	calMaxBuckets = 1 << 20
	// calInitWidth is the starting bucket width; the first resample
	// replaces it with a measured value.
	calInitWidth = Time(64 * Microsecond)
	// calResample is how many dequeues pass between width re-estimates.
	calResample = 256
)

// calQueue is the bucketed calendar. Events are addressed for O(1)
// removal through Event.bucket (which bucket) and Event.index (the slot
// within it); the heap scheduler reuses Event.index alone.
type calQueue struct {
	buckets [][]calSlot
	mask    int  // len(buckets) - 1
	width   Time // bucket span in simulated time
	count   int

	// The dequeue cursor: buckets are consumed as "days" of one
	// wheel-revolution "year". day is the bucket under the cursor and
	// dayEnd the exclusive end of its current window; every queued event
	// satisfies at >= dayEnd - width (push moves the cursor back when an
	// earlier event arrives), so scanning forward from the cursor visits
	// windows in nondecreasing order and the first in-window slot found
	// by (at, seq) minimum is the global minimum.
	day    int
	dayEnd Time

	// Width resampling state: spanStart is the timestamp of the dequeue
	// calResample pops ago.
	spanStart Time
	spanPops  int
}

// init sizes an empty wheel.
func (q *calQueue) init() {
	q.buckets = make([][]calSlot, calMinBuckets)
	q.mask = calMinBuckets - 1
	q.width = calInitWidth
}

func (q *calQueue) bucketOf(at Time) int {
	return int(int64(at)/int64(q.width)) & q.mask
}

// push adds ev (whose at and seq are already set) to the wheel.
func (q *calQueue) push(ev *Event) {
	if q.buckets == nil {
		q.init()
	}
	if q.count == 0 || ev.at < q.dayEnd-q.width {
		// Empty wheel, or an event before the cursor's window (possible
		// after a popLE peek-reinsert advanced the cursor): rewind the
		// cursor to the new earliest region so the scan stays exhaustive.
		q.day = q.bucketOf(ev.at)
		q.dayEnd = (ev.at/q.width + 1) * q.width
	}
	b := q.bucketOf(ev.at)
	ev.bucket = int32(b)
	ev.index = len(q.buckets[b])
	q.buckets[b] = append(q.buckets[b], calSlot{at: ev.at, seq: ev.seq, ev: ev})
	q.count++
	if q.count > 2*len(q.buckets) && len(q.buckets) < calMaxBuckets {
		q.resize(len(q.buckets) * 2)
	}
}

// popMin removes and returns the globally earliest event by (at, seq).
func (q *calQueue) popMin() *Event {
	if q.count == 0 {
		return nil
	}
	i, end := q.day, q.dayEnd
	for scanned := 0; scanned <= q.mask; scanned++ {
		b := q.buckets[i]
		best := -1
		for k := range b {
			if b[k].at < end && (best < 0 || b[k].before(b[best])) {
				best = k
			}
		}
		if best >= 0 {
			q.day, q.dayEnd = i, end
			return q.take(i, best)
		}
		i = (i + 1) & q.mask
		end += q.width
	}
	// Sparse year: nothing due within one full revolution. Fall back to
	// a direct search for the global minimum and re-seat the cursor.
	bi, bk := -1, -1
	for i := range q.buckets {
		for k := range q.buckets[i] {
			if bi < 0 || q.buckets[i][k].before(q.buckets[bi][bk]) {
				bi, bk = i, k
			}
		}
	}
	at := q.buckets[bi][bk].at
	q.day = bi
	q.dayEnd = (at/q.width + 1) * q.width
	return q.take(bi, bk)
}

// take removes slot k of bucket b, maintains the removed event's
// replacement's address, books the dequeue into the width resample, and
// considers shrinking.
func (q *calQueue) take(b, k int) *Event {
	out := q.buckets[b][k].ev
	q.removeSlot(b, k)
	// Width resampling: every calResample dequeues, set the width to the
	// mean inter-dequeue gap over the window (so one bucket-day holds
	// about one due event) and rebuild if it drifted by more than 4x.
	q.spanPops++
	if q.spanPops >= calResample {
		gap := (out.at - q.spanStart) / calResample
		if gap < 1 {
			gap = 1
		}
		q.spanStart = out.at
		q.spanPops = 0
		if gap > q.width*4 || gap*4 < q.width {
			q.resizeWidth(len(q.buckets), gap)
		}
	}
	if q.count < len(q.buckets)/4 && len(q.buckets) > calMinBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return out
}

// removeSlot swap-removes slot k from bucket b (Cancel's O(1) path).
func (q *calQueue) removeSlot(b, k int) {
	s := q.buckets[b]
	last := len(s) - 1
	removed := s[k].ev
	if k != last {
		s[k] = s[last]
		s[k].ev.index = k
	}
	s[last] = calSlot{}
	q.buckets[b] = s[:last]
	removed.index = -1
	removed.bucket = -1
	q.count--
}

// resize rebuilds the wheel with nb buckets, re-measuring nothing: the
// width keeps its current value (resizeWidth handles width changes).
func (q *calQueue) resize(nb int) { q.resizeWidth(nb, q.width) }

// resizeWidth rebuilds the wheel with nb buckets of the given width and
// re-seats the cursor at the global minimum.
func (q *calQueue) resizeWidth(nb int, width Time) {
	old := q.buckets
	q.buckets = make([][]calSlot, nb)
	q.mask = nb - 1
	q.width = width
	q.count = 0
	var minAt Time
	var minSeen bool
	for _, b := range old {
		for _, sl := range b {
			d := q.bucketOf(sl.at)
			sl.ev.bucket = int32(d)
			sl.ev.index = len(q.buckets[d])
			q.buckets[d] = append(q.buckets[d], sl)
			q.count++
			if !minSeen || sl.at < minAt {
				minAt, minSeen = sl.at, true
			}
		}
	}
	if minSeen {
		q.day = q.bucketOf(minAt)
		q.dayEnd = (minAt/q.width + 1) * q.width
	}
}

package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if got := e.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEqualTimesFireFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO at equal times)", i, v, i)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(250*time.Millisecond, func() { at = e.Now() })
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if at != Time(250*time.Millisecond) {
		t.Fatalf("event fired at %v, want 250ms", at)
	}
	if e.Now() != Time(time.Second) {
		t.Fatalf("Now() after Run = %v, want horizon 1s", e.Now())
	}
}

func TestRunHorizonInclusive(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(time.Second, func() { fired = true })
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event at exactly the horizon did not fire")
	}
}

func TestRunLeavesFutureEvents(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(2*time.Second, func() { fired = true })
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event beyond horizon fired early")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	if err := e.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event did not fire on resumed run")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Millisecond, func() { fired = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(2*time.Millisecond, func() { fired = true })
	e.Schedule(1*time.Millisecond, func() { ev.Cancel() })
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("processed %d events after Stop, want 3", count)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Schedule(10*time.Millisecond, func() {
		e.Schedule(-5*time.Millisecond, func() { at = e.Now() })
	})
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if at != Time(10*time.Millisecond) {
		t.Fatalf("past-scheduled event fired at %v, want now (10ms)", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var ping func()
	ping = func() {
		depth++
		if depth < 100 {
			e.Schedule(time.Millisecond, ping)
		}
	}
	e.Schedule(0, ping)
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
}

func TestEventBudget(t *testing.T) {
	e := NewEngine(1)
	e.MaxEvents = 5
	var ping func()
	ping = func() { e.Schedule(time.Millisecond, ping) }
	e.Schedule(0, ping)
	err := e.Run(time.Hour)
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("Run error = %v, want ErrEventBudget", err)
	}
}

func TestRunAll(t *testing.T) {
	e := NewEngine(1)
	var count int
	e.Schedule(time.Hour, func() { count++ })
	e.Schedule(time.Minute, func() { count++ })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if e.Now() != Time(time.Hour) {
		t.Fatalf("Now() = %v, want 1h", e.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine(seed)
		var times []Time
		var tick func()
		tick = func() {
			times = append(times, e.Now())
			if len(times) < 50 {
				d := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
				e.Schedule(d, tick)
			}
		}
		e.Schedule(0, tick)
		if err := e.Run(time.Minute); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestNewStreamIndependence(t *testing.T) {
	e := NewEngine(7)
	s1, s2 := e.NewStream(), e.NewStream()
	a := s1.Int63()
	// Drawing from s2 must not perturb s1's sequence relative to a fresh
	// replay with the same seed.
	_ = s2.Int63()
	e2 := NewEngine(7)
	r1 := e2.NewStream()
	_ = e2.NewStream()
	if r1.Int63() != a {
		t.Fatal("derived stream not reproducible across engines with same seed")
	}
}

func TestTimeConversions(t *testing.T) {
	tm := Time(1500 * Millisecond)
	if got := tm.Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", got)
	}
	if got := tm.Duration(); got != 1500*time.Millisecond {
		t.Fatalf("Duration() = %v, want 1.5s", got)
	}
	if got := tm.Add(500 * time.Millisecond); got != Time(2*Second) {
		t.Fatalf("Add = %v, want 2s", got)
	}
	if got := tm.Sub(Time(Second)); got != 500*time.Millisecond {
		t.Fatalf("Sub = %v, want 500ms", got)
	}
	if s := tm.String(); s != "1.500000s" {
		t.Fatalf("String() = %q", s)
	}
}

// TestHeapProperty drives the queue with random schedules and checks events
// always fire in nondecreasing time order.
func TestHeapProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		e := NewEngine(1)
		rng := rand.New(rand.NewSource(seed))
		var last Time = -1
		ok := true
		for i := 0; i < int(n); i++ {
			e.Schedule(time.Duration(rng.Intn(10_000))*time.Microsecond, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 17; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Processed() != 17 {
		t.Fatalf("Processed() = %d, want 17", e.Processed())
	}
}

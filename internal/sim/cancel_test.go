package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestCancelRemovesFromQueue pins the eager-removal contract: a canceled
// event leaves the heap immediately instead of lingering as a tombstone
// until its fire time.
func TestCancelRemovesFromQueue(t *testing.T) {
	e := NewEngine(1)
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, e.Schedule(time.Duration(i+1)*time.Second, func() {}))
	}
	if got := e.Pending(); got != 10 {
		t.Fatalf("Pending() = %d, want 10", got)
	}
	evs[3].Cancel()
	evs[7].Cancel()
	if got := e.Pending(); got != 8 {
		t.Fatalf("Pending() after 2 cancels = %d, want 8", got)
	}
	// Double cancel is a no-op.
	evs[3].Cancel()
	if got := e.Pending(); got != 8 {
		t.Fatalf("Pending() after double cancel = %d, want 8", got)
	}
	if err := e.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() after run = %d, want 0", got)
	}
	if got := e.Processed(); got != 8 {
		t.Fatalf("Processed() = %d, want 8", got)
	}
}

// TestCancelPreservesFiringOrder interleaves schedules and cancels
// (including same-timestamp events, where seq breaks the tie) and checks
// the survivors fire in exactly (time, FIFO) order. (at, seq) is a
// strict total order, so heap removal cannot perturb the pop order of
// the remaining events — this test would catch a regression in that
// argument.
func TestCancelPreservesFiringOrder(t *testing.T) {
	e := NewEngine(7)
	rng := rand.New(rand.NewSource(42))
	type rec struct {
		at Time
		id int
	}
	var fired []rec
	var all []*Event
	var want []rec
	for i := 0; i < 500; i++ {
		// Coarse timestamps force plenty of ties.
		at := time.Duration(rng.Intn(50)) * time.Millisecond
		id := i
		ev := e.Schedule(at, func() { fired = append(fired, rec{e.Now(), id}) })
		all = append(all, ev)
		want = append(want, rec{Time(at), id})
	}
	// Cancel a third of them, in random order.
	canceled := map[int]bool{}
	for _, i := range rng.Perm(len(all))[:len(all)/3] {
		all[i].Cancel()
		canceled[i] = true
	}
	var keep []rec
	for _, w := range want {
		if !canceled[w.id] {
			keep = append(keep, w)
		}
	}
	// Expected firing order: by time, FIFO (schedule order) within ties.
	sort.SliceStable(keep, func(i, j int) bool { return keep[i].at < keep[j].at })
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != len(keep) {
		t.Fatalf("fired %d events, want %d", len(fired), len(keep))
	}
	// Schedule order == seq order, so within one timestamp the FIFO
	// (id) order must be preserved; across timestamps, time order.
	for i := range keep {
		if fired[i] != keep[i] {
			t.Fatalf("firing[%d] = %+v, want %+v", i, fired[i], keep[i])
		}
	}
}

// TestCancelDuringOwnCallback exercises the e.index == -1 branch: by the
// time fn runs the event is already off the heap.
func TestCancelDuringOwnCallback(t *testing.T) {
	e := NewEngine(1)
	var ev *Event
	ran := false
	ev = e.Schedule(time.Millisecond, func() {
		ran = true
		ev.Cancel() // must not panic or corrupt the queue
	})
	e.Schedule(2*time.Millisecond, func() {})
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("callback did not run")
	}
	if got := e.Processed(); got != 2 {
		t.Fatalf("Processed() = %d, want 2", got)
	}
}

// TestRecycledEventIsCancelable pins the free-list reset: a shell
// recycled from a fired (or canceled, or self-canceled) event must come
// back with a clear canceled flag, so Cancel on the new event actually
// removes it instead of hitting the already-canceled early return.
func TestRecycledEventIsCancelable(t *testing.T) {
	e := NewEngine(1)
	// Retire shells through all three paths: plain fire, pre-fire cancel,
	// and self-cancel inside the callback.
	var self *Event
	e.Schedule(time.Millisecond, func() {})
	e.Schedule(2*time.Millisecond, func() {}).Cancel()
	self = e.Schedule(3*time.Millisecond, func() { self.Cancel() })
	if err := e.Run(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// New events now reuse those shells.
	fired := 0
	var evs []*Event
	for i := 0; i < 3; i++ {
		evs = append(evs, e.Schedule(time.Millisecond, func() { fired++ }))
	}
	for _, ev := range evs {
		if ev.Canceled() {
			t.Fatal("recycled event born canceled")
		}
		ev.Cancel()
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() after canceling recycled events = %d, want 0", got)
	}
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("%d canceled recycled events fired", fired)
	}
}

package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineDispatch measures the schedule→fire round trip of the
// event loop — the cost every simulated frame, timer, and beacon pays.
// With the event free-list this must run allocation-free at steady state.
func BenchmarkEngineDispatch(b *testing.B) {
	eng := NewEngine(1)
	fired := 0
	var step func()
	step = func() {
		fired++
		if fired < b.N {
			eng.Schedule(time.Microsecond, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Schedule(time.Microsecond, step)
	if err := eng.RunAll(); err != nil {
		b.Fatal(err)
	}
	if fired != b.N {
		b.Fatalf("fired %d events, want %d", fired, b.N)
	}
}

// BenchmarkEngineScheduleCancel measures the MAC's most common timer
// pattern: arm a future event and cancel it before it fires. Cancel
// heap-removes eagerly and recycles the shell, so this too must be
// allocation-free at steady state.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	eng := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(time.Second, fn).Cancel()
	}
	if eng.Pending() != 0 {
		b.Fatalf("%d events left pending", eng.Pending())
	}
}

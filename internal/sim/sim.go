// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every other package in this repository runs
// on: the wireless channel, the 802.11 MAC, routing protocols, mobility and
// traffic generators all schedule their work as events on a single engine.
// It plays the role NS-2's scheduler played in the paper's evaluation.
//
// Time is a virtual clock that starts at zero and only advances when Run
// processes events; wall-clock time never leaks in, so runs with the same
// seed are bit-for-bit reproducible.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant on the simulation clock, in nanoseconds since the
// start of the run. It intentionally mirrors time.Duration's resolution so
// the two interconvert without loss.
type Time int64

// Common simulation-time constants.
const (
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts the instant to the duration elapsed since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the instant as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Event is a scheduled callback. The zero value is not usable; events are
// created by Engine.Schedule and Engine.At.
type Event struct {
	at  Time
	seq uint64 // tiebreak for equal times: FIFO order
	// index addresses the event inside its queue for O(1)/O(log n)
	// removal: the heap position under the heap scheduler, the slot
	// within bucket `bucket` under the calendar queue. -1 when not
	// queued; bucket is -1 except while queued on the calendar.
	index    int
	bucket   int32
	eng      *Engine
	fn       func()
	canceled bool
}

// Time reports when the event will fire.
func (e *Event) Time() Time { return e.at }

// Cancel prevents the event from firing and removes it from the queue
// immediately (the index field the heap maintains makes this O(log n)),
// so heavily canceled timers — MAC backoff, ACK timeouts — do not bloat
// the queue as tombstones until their fire time. Removal cannot change
// the firing order of live events: (at, seq) is a strict total order, so
// a min-heap pops the survivors in exactly the same sequence whatever
// its internal layout.
//
// Canceling an already-canceled event is a no-op, as is an event
// canceling itself from inside its own callback. Beyond that the handle
// is dead once the event has fired: the engine recycles fired events, so
// model code must drop (or overwrite) stored *Event references when the
// callback runs — the discipline the MAC and routing timers already
// follow — rather than canceling them later.
func (e *Event) Cancel() {
	if e.canceled {
		return
	}
	e.canceled = true
	if e.eng != nil && e.index >= 0 {
		if e.bucket >= 0 {
			e.eng.cal.removeSlot(int(e.bucket), e.index)
		} else {
			e.eng.queue.remove(e.index)
		}
		e.fn = nil
		e.eng.free = append(e.eng.free, e)
	}
}

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use: all model code runs inside event callbacks on the
// goroutine that called Run.
type Engine struct {
	now Time
	// The pending-event queue: the calendar queue (cal) by default, the
	// binary heap (queue) when UseHeapScheduler selects it. Both pop in
	// identical (at, seq) order — the heap is kept as the structurally
	// independent parity oracle the scheduler parity tests run against.
	queue   eventQueue
	cal     calQueue
	useHeap bool
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// chunk and free keep event allocation off the garbage collector's
	// back: the hot paths schedule (and retire) on the order of a million
	// short-lived events per minute of simulated time, so new events are
	// carved out of block allocations and — once fired or canceled —
	// recycled through a free list. Steady-state event memory is bounded
	// by the peak number of pending events, not by throughput.
	chunk []Event
	free  []*Event
	// processed counts events that have fired, for diagnostics and the
	// runaway guard.
	processed uint64
	// MaxEvents aborts Run with ErrEventBudget when positive and exceeded.
	MaxEvents uint64
	// Interrupt, when non-nil, is polled once every interruptStride
	// fired events; a non-nil return aborts Run with that error. It
	// exists so a wall-clock authority (a canceled job context, a
	// draining daemon) can stop a long simulation promptly without
	// perturbing determinism: the poll draws no randomness and fires
	// between events, so a run that is not interrupted is bit-for-bit
	// identical with or without the hook installed.
	Interrupt func() error
}

// interruptStride is how many fired events pass between Interrupt
// polls. At the simulator's typical millions-of-events-per-second pace
// this bounds cancellation latency to well under wall-clock
// milliseconds while keeping the per-event cost to one nil check.
const interruptStride = 4096

// ErrEventBudget is returned by Run when Engine.MaxEvents is exceeded.
var ErrEventBudget = errors.New("sim: event budget exceeded")

// NewEngine returns an engine whose random stream is seeded with seed.
// Events are scheduled on the calendar queue; see UseHeapScheduler.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// UseHeapScheduler switches the engine to the binary-heap event queue —
// the original scheduler, kept as a parity oracle for the calendar
// queue (results are bit-for-bit identical under either; the parity
// tests pin it) and for pathological event patterns where a comparison
// heap's O(log n) guarantee beats an amortized structure. Must be
// called before anything is scheduled.
func (e *Engine) UseHeapScheduler() {
	if e.seq != 0 {
		panic("sim: UseHeapScheduler after events were scheduled")
	}
	e.useHeap = true
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random stream. Model code must
// draw all randomness from here (or from streams derived from it) so runs
// are reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewStream derives an independent deterministic random stream. Use one
// stream per stochastic component (mobility of node i, traffic of flow j)
// so adding events to one component does not perturb another.
func (e *Engine) NewStream() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Processed reports how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn after delay d. A negative delay is treated as zero.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// chunkSize is the bump-allocator block size; see Engine.chunk.
const chunkSize = 256

// At runs fn at absolute simulation time t. Scheduling in the past is an
// error in the model; it is clamped to now so the event still fires, which
// keeps the clock monotonic.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.canceled = false
	} else {
		if len(e.chunk) == 0 {
			e.chunk = make([]Event, chunkSize)
		}
		ev = &e.chunk[0]
		e.chunk = e.chunk[1:]
		ev.eng = e
	}
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	if e.useHeap {
		e.queue.push(ev)
	} else {
		e.cal.push(ev)
	}
	return ev
}

// popLE removes and returns the earliest pending event if its timestamp
// is at most end, else nil (leaving the queue intact). Both schedulers
// yield events in identical (at, seq) order.
func (e *Engine) popLE(end Time) *Event {
	if e.useHeap {
		if len(e.queue.s) == 0 || e.queue.s[0].at > end {
			return nil
		}
		return e.queue.popMin()
	}
	ev := e.cal.popMin()
	if ev == nil {
		return nil
	}
	if ev.at > end {
		// Peek miss: put it back. (at, seq) are still set, so the
		// reinsert lands in exactly the order it left.
		e.cal.push(ev)
		return nil
	}
	return ev
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events in timestamp order until the clock would pass
// `until` (a duration from time zero), the queue drains, or Stop is
// called. Events scheduled exactly at `until` still fire. It returns
// ErrEventBudget if MaxEvents is exceeded.
func (e *Engine) Run(until time.Duration) error {
	end := Time(until)
	e.stopped = false
	for !e.stopped {
		ev := e.popLE(end)
		if ev == nil {
			break
		}
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		if e.MaxEvents > 0 && e.processed > e.MaxEvents {
			return ErrEventBudget
		}
		if e.Interrupt != nil && e.processed%interruptStride == 0 {
			if err := e.Interrupt(); err != nil {
				return err
			}
		}
		fn := ev.fn
		ev.fn = nil // release the closure before it runs
		fn()
		// Recycle after fn returns: a callback canceling its own event
		// sees index == -1 and leaves the free list alone, so the shell
		// is pushed exactly once.
		e.free = append(e.free, ev)
	}
	// Advance the clock to the horizon so repeated Run calls resume from
	// where the previous one left off.
	if e.now < end {
		e.now = end
	}
	return nil
}

// RunAll processes every queued event regardless of timestamp. Intended
// for tests and for models whose event graph is known to terminate.
func (e *Engine) RunAll() error {
	e.stopped = false
	for !e.stopped {
		ev := e.popLE(maxTime)
		if ev == nil {
			break
		}
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		if e.MaxEvents > 0 && e.processed > e.MaxEvents {
			return ErrEventBudget
		}
		fn := ev.fn
		ev.fn = nil
		fn()
		e.free = append(e.free, ev)
	}
	return nil
}

// maxTime is the largest representable instant; RunAll's horizon.
const maxTime = Time(1<<63 - 1)

// Pending reports the number of queued events. Canceled events are
// removed from the queue eagerly, so they do not count.
func (e *Engine) Pending() int {
	if e.useHeap {
		return len(e.queue.s)
	}
	return e.cal.count
}

// eventQueue is a binary min-heap ordered by (time, seq), implemented
// concretely — the sift loops compare and move slots directly rather
// than going through container/heap's interface indirection, which is
// measurable on the simulator's event rates. Each slot carries its
// event's (at, seq) key inline, so the compares that dominate sifting
// walk the contiguous slot array and never dereference an Event; the
// pointer is only touched to maintain Event.index (Cancel's O(log n)
// removal hook) when a slot actually moves. (at, seq) is a strict total
// order, so whatever the internal layout, popMin always yields the same
// sequence of events.
type eventQueue struct {
	s []heapSlot
}

// heapSlot is one heap entry: the ordering key, denormalized from the
// event, plus the event itself.
type heapSlot struct {
	at  Time
	seq uint64
	ev  *Event
}

// before orders slots by (time, seq); seq breaks ties FIFO.
func (a heapSlot) before(b heapSlot) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push adds ev to the heap.
func (q *eventQueue) push(ev *Event) {
	ev.bucket = -1 // heap slots are addressed by index alone
	ev.index = len(q.s)
	q.s = append(q.s, heapSlot{at: ev.at, seq: ev.seq, ev: ev})
	q.up(ev.index)
}

// popMin removes and returns the earliest event.
func (q *eventQueue) popMin() *Event {
	s := q.s
	ev := s[0].ev
	n := len(s) - 1
	if n > 0 {
		s[0] = s[n]
		s[0].ev.index = 0
	}
	s[n] = heapSlot{}
	q.s = s[:n]
	if n > 1 {
		q.down(0)
	}
	ev.index = -1
	return ev
}

// remove deletes the event at heap position k (Event.Cancel's helper).
func (q *eventQueue) remove(k int) {
	s := q.s
	n := len(s) - 1
	removed := s[k].ev
	if k != n {
		s[k] = s[n]
		s[k].ev.index = k
	}
	s[n] = heapSlot{}
	q.s = s[:n]
	if k != n {
		q.down(k)
		q.up(k)
	}
	removed.index = -1
}

// up sifts the slot at position k toward the root.
func (q *eventQueue) up(k int) {
	s := q.s
	sl := s[k]
	for k > 0 {
		parent := (k - 1) / 2
		if !sl.before(s[parent]) {
			break
		}
		s[k] = s[parent]
		s[k].ev.index = k
		k = parent
	}
	s[k] = sl
	sl.ev.index = k
}

// down sifts the slot at position k toward the leaves.
func (q *eventQueue) down(k int) {
	s := q.s
	n := len(s)
	sl := s[k]
	for {
		child := 2*k + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s[r].before(s[child]) {
			child = r
		}
		if !s[child].before(sl) {
			break
		}
		s[k] = s[child]
		s[k].ev.index = k
		k = child
	}
	s[k] = sl
	sl.ev.index = k
}

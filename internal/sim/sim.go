// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every other package in this repository runs
// on: the wireless channel, the 802.11 MAC, routing protocols, mobility and
// traffic generators all schedule their work as events on a single engine.
// It plays the role NS-2's scheduler played in the paper's evaluation.
//
// Time is a virtual clock that starts at zero and only advances when Run
// processes events; wall-clock time never leaks in, so runs with the same
// seed are bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant on the simulation clock, in nanoseconds since the
// start of the run. It intentionally mirrors time.Duration's resolution so
// the two interconvert without loss.
type Time int64

// Common simulation-time constants.
const (
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts the instant to the duration elapsed since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the instant as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Event is a scheduled callback. The zero value is not usable; events are
// created by Engine.Schedule and Engine.At.
type Event struct {
	at       Time
	seq      uint64 // tiebreak for equal times: FIFO order
	index    int    // heap index; -1 when not queued
	fn       func()
	canceled bool
}

// Time reports when the event will fire.
func (e *Event) Time() Time { return e.at }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use: all model code runs inside event callbacks on the
// goroutine that called Run.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// processed counts events that have fired, for diagnostics and the
	// runaway guard.
	processed uint64
	// MaxEvents aborts Run with ErrEventBudget when positive and exceeded.
	MaxEvents uint64
}

// ErrEventBudget is returned by Run when Engine.MaxEvents is exceeded.
var ErrEventBudget = errors.New("sim: event budget exceeded")

// NewEngine returns an engine whose random stream is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random stream. Model code must
// draw all randomness from here (or from streams derived from it) so runs
// are reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewStream derives an independent deterministic random stream. Use one
// stream per stochastic component (mobility of node i, traffic of flow j)
// so adding events to one component does not perturb another.
func (e *Engine) NewStream() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Processed reports how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn after delay d. A negative delay is treated as zero.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute simulation time t. Scheduling in the past is an
// error in the model; it is clamped to now so the event still fires, which
// keeps the clock monotonic.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events in timestamp order until the clock would pass
// `until` (a duration from time zero), the queue drains, or Stop is
// called. Events scheduled exactly at `until` still fire. It returns
// ErrEventBudget if MaxEvents is exceeded.
func (e *Engine) Run(until time.Duration) error {
	end := Time(until)
	e.stopped = false
	for e.queue.Len() > 0 && !e.stopped {
		ev := e.queue.peek()
		if ev.at > end {
			break
		}
		heap.Pop(&e.queue)
		ev.index = -1
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		if e.MaxEvents > 0 && e.processed > e.MaxEvents {
			return ErrEventBudget
		}
		ev.fn()
	}
	// Advance the clock to the horizon so repeated Run calls resume from
	// where the previous one left off.
	if e.now < end {
		e.now = end
	}
	return nil
}

// RunAll processes every queued event regardless of timestamp. Intended
// for tests and for models whose event graph is known to terminate.
func (e *Engine) RunAll() error {
	e.stopped = false
	for e.queue.Len() > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*Event)
		ev.index = -1
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		if e.MaxEvents > 0 && e.processed > e.MaxEvents {
			return ErrEventBudget
		}
		ev.fn()
	}
	return nil
}

// Pending reports the number of queued (possibly canceled) events.
func (e *Engine) Pending() int { return e.queue.Len() }

// eventQueue is a binary min-heap ordered by (time, seq).
type eventQueue []*Event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

func (q eventQueue) peek() *Event { return q[0] }

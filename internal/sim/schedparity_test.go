package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestSchedulerParityRandomized drives the calendar queue and the heap
// through identical randomized schedule/cancel/reschedule workloads —
// including heavy timestamp ties, cancels from inside callbacks, and
// chained rescheduling — and requires the exact same fire sequence.
// (at, seq) is a strict total order, so any divergence is a scheduler
// bug, not a legitimate tie-break difference.
func TestSchedulerParityRandomized(t *testing.T) {
	type firing struct {
		at Time
		id int
	}
	// run executes one randomized workload (derived from seed) on an
	// engine and returns the fire log.
	run := func(seed int64, heap bool) []firing {
		eng := NewEngine(1)
		if heap {
			eng.UseHeapScheduler()
		}
		rng := rand.New(rand.NewSource(seed))
		var log []firing
		var live []*Event
		id := 0
		// Seed events; callbacks reschedule and cancel more.
		var spawn func(depth int) func()
		spawn = func(depth int) func() {
			myID := id
			id++
			return func() {
				log = append(log, firing{eng.Now(), myID})
				if depth > 0 {
					// Chain: schedule follow-ups, sometimes at the same
					// instant (seq tie-break), sometimes canceling a
					// random live event.
					n := rng.Intn(3)
					for i := 0; i < n; i++ {
						d := time.Duration(rng.Intn(5)) * time.Millisecond
						live = append(live, eng.Schedule(d, spawn(depth-1)))
					}
					if len(live) > 0 && rng.Intn(3) == 0 {
						live[rng.Intn(len(live))].Cancel()
					}
				}
			}
		}
		for i := 0; i < 200; i++ {
			at := time.Duration(rng.Intn(40)) * time.Millisecond
			live = append(live, eng.Schedule(at, spawn(2)))
		}
		// Cancel a batch up front, in random order.
		for _, k := range rng.Perm(len(live))[:len(live)/4] {
			live[k].Cancel()
		}
		if err := eng.Run(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		return log
	}

	for seed := int64(0); seed < 20; seed++ {
		cal := run(seed, false)
		heap := run(seed, true)
		if len(cal) != len(heap) {
			t.Fatalf("seed %d: calendar fired %d events, heap fired %d", seed, len(cal), len(heap))
		}
		for i := range cal {
			if cal[i] != heap[i] {
				t.Fatalf("seed %d: firing %d diverges: calendar %+v, heap %+v", seed, i, cal[i], heap[i])
			}
		}
	}
}

// TestSchedulerParitySparseAndClustered covers the calendar queue's two
// hard regimes in one deterministic script: microsecond-clustered bursts
// (many events per bucket-day) followed by minute-scale gaps (whole
// empty revolutions, exercising the direct-search fallback), with
// repeated Run horizons landing between events (the peek-reinsert path).
func TestSchedulerParitySparseAndClustered(t *testing.T) {
	script := func(heap bool) []Time {
		eng := NewEngine(1)
		if heap {
			eng.UseHeapScheduler()
		}
		var log []Time
		note := func() { log = append(log, eng.Now()) }
		// Dense cluster at t≈0, a stray at 2 min, another cluster there.
		for i := 0; i < 300; i++ {
			eng.Schedule(time.Duration(i%7)*time.Microsecond, note)
		}
		eng.Schedule(2*time.Minute, func() {
			note()
			for i := 0; i < 100; i++ {
				eng.Schedule(time.Duration(i%3)*time.Microsecond, note)
			}
		})
		// Horizons that stop between populated regions.
		for _, h := range []time.Duration{time.Millisecond, time.Second, 90 * time.Second, 3 * time.Minute} {
			if err := eng.Run(h); err != nil {
				t.Fatal(err)
			}
		}
		if eng.Pending() != 0 {
			t.Fatalf("%d events still pending", eng.Pending())
		}
		return log
	}
	cal, heap := script(false), script(true)
	if len(cal) != len(heap) {
		t.Fatalf("calendar fired %d, heap fired %d", len(cal), len(heap))
	}
	for i := range cal {
		if cal[i] != heap[i] {
			t.Fatalf("firing %d diverges: calendar %v, heap %v", i, cal[i], heap[i])
		}
	}
}

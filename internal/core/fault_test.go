package core

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"anongeo/internal/exp"
	"anongeo/internal/fault"
	"anongeo/internal/geo"
)

// TestConfigValidateFaultKnobs is the bugfix satellite's table test:
// the legacy fault knobs must be range-checked instead of silently
// misbehaving.
func TestConfigValidateFaultKnobs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"defaults", func(c *Config) {}, true},
		{"loss at boundary 0", func(c *Config) { c.LossRate = 0 }, true},
		{"loss 0.5", func(c *Config) { c.LossRate = 0.5 }, true},
		{"loss negative", func(c *Config) { c.LossRate = -0.1 }, false},
		{"loss 1", func(c *Config) { c.LossRate = 1 }, false},
		{"loss above 1", func(c *Config) { c.LossRate = 1.5 }, false},
		{"churn down negative", func(c *Config) { c.ChurnDownFor = -time.Second }, false},
		{"churn negative", func(c *Config) { c.ChurnFailures = -1 }, false},
		{"churn all nodes", func(c *Config) { c.ChurnFailures = c.Nodes }, true},
		{"churn exceeds nodes", func(c *Config) { c.ChurnFailures = c.Nodes + 1 }, false},
		{"bad plan entry", func(c *Config) {
			c.Faults = &fault.Plan{Entries: []fault.Entry{{Kind: fault.KindBlackhole, Nodes: []int{c.Nodes}}}}
		}, false},
		{"good plan entry", func(c *Config) {
			c.Faults = &fault.Plan{Entries: []fault.Entry{{Kind: fault.KindGreyhole, P: 0.5, Count: 3}}}
		}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			c.mutate(&cfg)
			err := cfg.Validate()
			if c.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestLegacyFaultKnobsParity is the back-compat gate for the refactor:
// on Figure 1 configurations, LossRate/ChurnFailures compiled through
// the fault plan must reproduce the pre-refactor wiring bit-for-bit —
// the whole Result struct, same seeds, same knobs.
func TestLegacyFaultKnobsParity(t *testing.T) {
	type cell struct {
		name   string
		proto  Protocol
		mutate func(*Config)
	}
	cells := []cell{
		{"agfw-loss", ProtoAGFW, func(c *Config) { c.LossRate = 0.15 }},
		{"gpsr-churn", ProtoGPSR, func(c *Config) { c.ChurnFailures = 10; c.ChurnDownFor = 20 * time.Second }},
		{"noack-loss-churn", ProtoAGFWNoAck, func(c *Config) {
			c.LossRate = 0.1
			c.ChurnFailures = 5
		}},
	}
	if testing.Short() {
		cells = cells[:1]
	}
	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			planCfg := fig1Config(c.proto, 50, 1)
			c.mutate(&planCfg)
			legacyCfg := planCfg
			legacyCfg.legacyFaults = true

			got, err := Run(planCfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(legacyCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("fault-plan path diverges from legacy wiring:\nplan:   %+v\nlegacy: %+v", got, want)
			}
			if got.Summary.Sent == 0 {
				t.Fatal("no traffic generated; parity check is vacuous")
			}
		})
	}
}

// faultTestConfig is a small, fast scenario for fault-plan tests.
func faultTestConfig(proto Protocol, seed int64) Config {
	cfg := DefaultConfig()
	cfg.Protocol = proto
	cfg.Nodes = 25
	cfg.Seed = seed
	cfg.Area = geo.NewRect(1000, 300)
	cfg.Duration = 15 * time.Second
	cfg.Warmup = 3 * time.Second
	cfg.PacketInterval = 300 * time.Millisecond
	cfg.Flows = 10
	cfg.Senders = 8
	return cfg
}

// randomPlan draws a valid random fault plan: 1–4 entries of any kind
// with in-range parameters and windows inside the run.
func randomPlan(rng *rand.Rand, nodes int, duration time.Duration) *fault.Plan {
	kinds := []fault.Kind{
		fault.KindBernoulliLoss, fault.KindGilbertElliott, fault.KindJam,
		fault.KindBlackhole, fault.KindGreyhole, fault.KindMute,
		fault.KindPositionError, fault.KindOutage, fault.KindChurn,
		fault.KindBogusBeacon, fault.KindAckSpoof, fault.KindFlood,
	}
	window := func(e *fault.Entry) {
		e.From = time.Duration(rng.Float64() * float64(duration) / 2)
		if rng.Intn(2) == 0 {
			e.Until = e.From + time.Duration((0.1+rng.Float64()*0.4)*float64(duration))
		}
	}
	var p fault.Plan
	for n := 1 + rng.Intn(4); len(p.Entries) < n; {
		e := fault.Entry{Kind: kinds[rng.Intn(len(kinds))]}
		switch e.Kind {
		case fault.KindBernoulliLoss:
			e.P = rng.Float64() * 0.4
		case fault.KindGilbertElliott:
			e.PGood = rng.Float64() * 0.05
			e.PBad = 0.5 + rng.Float64()*0.5
			e.MeanGood = time.Duration(1+rng.Intn(5)) * time.Second
			e.MeanBad = time.Duration(1+rng.Intn(1000)) * time.Millisecond
		case fault.KindJam:
			window(&e)
			if rng.Intn(2) == 0 {
				r := geo.Rect{Min: geo.Point{X: 300, Y: 0}, Max: geo.Point{X: 600, Y: 300}}
				e.Region = &r
			}
		case fault.KindBlackhole, fault.KindMute:
			e.Count = 1 + rng.Intn(nodes/5)
			window(&e)
		case fault.KindGreyhole:
			e.Count = 1 + rng.Intn(nodes/5)
			e.P = rng.Float64()
			window(&e)
		case fault.KindPositionError:
			e.Fraction = rng.Float64()
			e.Sigma = rng.Float64() * 100
			e.FixInterval = time.Duration(1+rng.Intn(2000)) * time.Millisecond
		case fault.KindOutage:
			e.Count = 1 + rng.Intn(nodes/5)
			window(&e)
		case fault.KindChurn:
			e.Count = 1 + rng.Intn(nodes/2)
			e.DownFor = time.Duration(1+rng.Intn(10)) * time.Second
		case fault.KindBogusBeacon:
			e.Count = 1 + rng.Intn(nodes/5)
			e.P = rng.Float64()
			e.Lure = 50 + rng.Float64()*300
			window(&e)
		case fault.KindAckSpoof:
			e.Count = 1 + rng.Intn(nodes/5)
			e.P = rng.Float64()
			window(&e)
		case fault.KindFlood:
			e.Count = 1 + rng.Intn(nodes/5)
			e.Rate = 5 + rng.Float64()*15 // modest: keep test event counts sane
			window(&e)
		}
		p.Entries = append(p.Entries, e)
	}
	return &p
}

// TestRandomFaultPlansDeterministic is the property test: random seeded
// fault plans never panic, never fail the conservation audit or wedge
// detector (both run inside core.Run), and the same seed reproduces the
// identical Result — across all three protocols.
func TestRandomFaultPlansDeterministic(t *testing.T) {
	protos := []Protocol{ProtoGPSR, ProtoAGFW, ProtoAGFWNoAck}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, proto := range protos {
			cfg := faultTestConfig(proto, seed)
			cfg.Faults = randomPlan(rand.New(rand.NewSource(seed*100+int64(proto))), cfg.Nodes, cfg.Duration)
			name := proto.String() + "/seed" + string(rune('0'+seed))
			t.Run(name, func(t *testing.T) {
				a, err := Run(cfg)
				if err != nil {
					t.Fatalf("plan %+v: %v", cfg.Faults.Entries, err)
				}
				b, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Errorf("same seed + same plan produced different results:\n%+v\n%+v", a, b)
				}
				if a.Summary.Sent == 0 {
					t.Fatal("no traffic generated; determinism check is vacuous")
				}
			})
		}
	}
}

// TestFaultMatrixSmoke runs every fault kind against every protocol at
// short duration — the CI -race job's target. Each cell must complete,
// pass the end-of-run audit, and still move some traffic.
func TestFaultMatrixSmoke(t *testing.T) {
	region := geo.Rect{Min: geo.Point{X: 400, Y: 0}, Max: geo.Point{X: 700, Y: 300}}
	entries := map[string]fault.Entry{
		"bernoulli": {Kind: fault.KindBernoulliLoss, P: 0.2},
		"ge":        {Kind: fault.KindGilbertElliott, PGood: 0.01, PBad: 0.8, MeanGood: 3 * time.Second, MeanBad: 500 * time.Millisecond},
		"jam":       {Kind: fault.KindJam, From: 5 * time.Second, Until: 10 * time.Second, Region: &region},
		"blackhole": {Kind: fault.KindBlackhole, Fraction: 0.2},
		"greyhole":  {Kind: fault.KindGreyhole, Fraction: 0.3, P: 0.5},
		"mute":      {Kind: fault.KindMute, Count: 5},
		"poserr":    {Kind: fault.KindPositionError, Fraction: 1, Sigma: 50},
		"outage":    {Kind: fault.KindOutage, Count: 4, From: 5 * time.Second, Until: 10 * time.Second},
		"churn":     {Kind: fault.KindChurn, Count: 8, DownFor: 4 * time.Second},
		"bogus":     {Kind: fault.KindBogusBeacon, Fraction: 0.2, P: 1},
		"ackspoof":  {Kind: fault.KindAckSpoof, Fraction: 0.2, P: 1},
		"flood":     {Kind: fault.KindFlood, Fraction: 0.15, Rate: 20},
	}
	protos := []Protocol{ProtoGPSR, ProtoAGFW, ProtoAGFWNoAck}
	for name, e := range entries {
		for _, proto := range protos {
			t.Run(name+"/"+proto.String(), func(t *testing.T) {
				cfg := faultTestConfig(proto, 11)
				cfg.Faults = &fault.Plan{Entries: []fault.Entry{e}}
				r, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if r.Summary.Sent == 0 {
					t.Fatal("no traffic generated")
				}
			})
		}
	}
}

// TestFaultSweepParallelWidths pins the acceptance criterion that fault
// plans stay deterministic across orchestrator parallelism: the same
// faulty grid run serially and at width 4 must match cell for cell.
func TestFaultSweepParallelWidths(t *testing.T) {
	base := faultTestConfig(ProtoAGFW, 5)
	base.Duration = 10 * time.Second
	base.Faults = &fault.Plan{Entries: []fault.Entry{
		{Kind: fault.KindGreyhole, Fraction: 0.2, P: 0.5},
		{Kind: fault.KindGilbertElliott, PGood: 0.02, PBad: 0.7},
	}}
	counts := []int{20, 25}
	protos := []Protocol{ProtoAGFW, ProtoGPSR}
	serial, err := DensitySweepOpts(base, counts, protos, SweepOptions{Repeats: 2, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := DensitySweepOpts(base, counts, protos, SweepOptions{Repeats: 2, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("parallel width changed sweep results:\nserial: %+v\nwide:   %+v", serial, wide)
	}
}

// TestFaultsCacheKeyStable asserts the exp-cache compatibility
// satellite: a nil Faults field must not appear in the canonical config
// JSON (so pre-existing configs keep their cache keys within a schema
// version), while an actual plan must change the key.
func TestFaultsCacheKeyStable(t *testing.T) {
	cfg := DefaultConfig()
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "Faults") {
		t.Errorf("nil Faults leaks into canonical config JSON: %s", b)
	}
	if strings.Contains(string(b), "legacyFaults") {
		t.Errorf("unexported oracle switch leaks into config JSON: %s", b)
	}
	cache, err := exp.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1, err := cache.Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	withPlan := cfg
	withPlan.Faults = &fault.Plan{Entries: []fault.Entry{{Kind: fault.KindBernoulliLoss, P: 0.1}}}
	k2, err := cache.Key(withPlan)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("attaching a fault plan did not change the cache key")
	}
	// The oracle switch must never influence keys: it selects an
	// implementation path with identical results, like BruteForceRadio
	// would if it were unexported.
	oracle := cfg
	oracle.legacyFaults = true
	k3, err := cache.Key(oracle)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k3 {
		t.Error("legacyFaults oracle switch changed the cache key")
	}
}

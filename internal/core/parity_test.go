package core

import (
	"reflect"
	"strconv"
	"testing"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/neighbor"
)

// fig1Config is the calibrated Figure 1 workload at bench duration (the
// same cell bench_test.go runs), parameterized by protocol and density.
func fig1Config(proto Protocol, nodes int, seed int64) Config {
	cfg := DefaultConfig()
	cfg.Protocol = proto
	cfg.Nodes = nodes
	cfg.Seed = seed
	cfg.Area = geo.NewRect(1500, 300)
	cfg.Duration = 60 * time.Second
	cfg.PacketInterval = 300 * time.Millisecond
	cfg.PayloadBytes = 64
	cfg.Policy = neighbor.PolicyWeighted
	cfg.ReachFilter = true
	return cfg
}

// TestSpatialIndexParity is the tentpole's acceptance gate: on full
// Figure 1 configurations, the spatial-index fast path and the original
// brute-force path must produce bit-for-bit identical results — the
// whole Result struct, which covers metrics.Summary, radio.Stats, and
// the per-protocol counters — for every (protocol, density, seed) cell.
//
// The brute-force run also disables the waypoint leg memo, so what it
// executes is exactly the pre-index hot path; any ordering or RNG drift
// introduced by the index, the pooled arrival bookkeeping, or the memo
// would show up as a diverging counter somewhere in the struct.
func TestSpatialIndexParity(t *testing.T) {
	type cell struct {
		proto Protocol
		nodes int
	}
	cells := []cell{
		{ProtoGPSR, 50},
		{ProtoGPSR, 150},
		{ProtoAGFW, 50},
		{ProtoAGFW, 150},
	}
	seeds := []int64{1, 2}
	if testing.Short() {
		cells = []cell{{ProtoGPSR, 50}, {ProtoAGFW, 50}}
		seeds = []int64{1}
	}
	for _, c := range cells {
		for _, seed := range seeds {
			t.Run(c.proto.String()+"/"+strconv.Itoa(c.nodes)+"/seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
				fastCfg := fig1Config(c.proto, c.nodes, seed)
				bruteCfg := fastCfg
				bruteCfg.BruteForceRadio = true

				fast, err := Run(fastCfg)
				if err != nil {
					t.Fatal(err)
				}
				brute, err := Run(bruteCfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fast, brute) {
					t.Errorf("fast and brute-force results diverge:\nfast:  %+v\nbrute: %+v", fast, brute)
				}
				if fast.Summary.Sent == 0 {
					t.Fatal("no traffic generated; parity check is vacuous")
				}
			})
		}
	}
}

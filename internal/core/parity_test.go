package core

import (
	"reflect"
	"strconv"
	"testing"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/neighbor"
)

// fig1Config is the calibrated Figure 1 workload at bench duration (the
// same cell bench_test.go runs), parameterized by protocol and density.
func fig1Config(proto Protocol, nodes int, seed int64) Config {
	cfg := DefaultConfig()
	cfg.Protocol = proto
	cfg.Nodes = nodes
	cfg.Seed = seed
	cfg.Area = geo.NewRect(1500, 300)
	cfg.Duration = 60 * time.Second
	cfg.PacketInterval = 300 * time.Millisecond
	cfg.PayloadBytes = 64
	cfg.Policy = neighbor.PolicyWeighted
	cfg.ReachFilter = true
	return cfg
}

// TestSpatialIndexParity is the tentpole's acceptance gate: on full
// Figure 1 configurations, the spatial-index fast path and the original
// brute-force path must produce bit-for-bit identical results — the
// whole Result struct, which covers metrics.Summary, radio.Stats, and
// the per-protocol counters — for every (protocol, density, seed) cell.
//
// The brute-force run also disables the waypoint leg memo, so what it
// executes is exactly the pre-index hot path; any ordering or RNG drift
// introduced by the index, the pooled arrival bookkeeping, or the memo
// would show up as a diverging counter somewhere in the struct.
func TestSpatialIndexParity(t *testing.T) {
	type cell struct {
		proto Protocol
		nodes int
	}
	cells := []cell{
		{ProtoGPSR, 50},
		{ProtoGPSR, 150},
		{ProtoAGFW, 50},
		{ProtoAGFW, 150},
	}
	seeds := []int64{1, 2}
	if testing.Short() {
		cells = []cell{{ProtoGPSR, 50}, {ProtoAGFW, 50}}
		seeds = []int64{1}
	}
	for _, c := range cells {
		for _, seed := range seeds {
			t.Run(c.proto.String()+"/"+strconv.Itoa(c.nodes)+"/seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
				fastCfg := fig1Config(c.proto, c.nodes, seed)
				bruteCfg := fastCfg
				bruteCfg.BruteForceRadio = true

				fast, err := Run(fastCfg)
				if err != nil {
					t.Fatal(err)
				}
				brute, err := Run(bruteCfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fast, brute) {
					t.Errorf("fast and brute-force results diverge:\nfast:  %+v\nbrute: %+v", fast, brute)
				}
				if fast.Summary.Sent == 0 {
					t.Fatal("no traffic generated; parity check is vacuous")
				}
			})
		}
	}
}

// TestSchedulerParity holds the calendar queue to the same standard: on
// full Figure 1 configurations the calendar-queue scheduler (the
// default) and the binary-heap scheduler it replaced must produce
// bit-for-bit identical Results. The schedulers only reorder equal-time
// work if one of them is buggy — both contract to FIFO within a
// timestamp — so any divergence here is a scheduler defect, not an
// acceptable tolerance.
func TestSchedulerParity(t *testing.T) {
	type cell struct {
		proto Protocol
		nodes int
	}
	cells := []cell{
		{ProtoGPSR, 50},
		{ProtoGPSR, 150},
		{ProtoAGFW, 50},
		{ProtoAGFW, 150},
	}
	seeds := []int64{1, 2}
	if testing.Short() {
		cells = []cell{{ProtoGPSR, 50}, {ProtoAGFW, 50}}
		seeds = []int64{1}
	}
	for _, c := range cells {
		for _, seed := range seeds {
			t.Run(c.proto.String()+"/"+strconv.Itoa(c.nodes)+"/seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
				calCfg := fig1Config(c.proto, c.nodes, seed)
				heapCfg := calCfg
				heapCfg.HeapScheduler = true

				cal, err := Run(calCfg)
				if err != nil {
					t.Fatal(err)
				}
				heap, err := Run(heapCfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(cal, heap) {
					t.Errorf("calendar and heap scheduler results diverge:\ncalendar: %+v\nheap:     %+v", cal, heap)
				}
				if cal.Summary.Sent == 0 {
					t.Fatal("no traffic generated; parity check is vacuous")
				}
			})
		}
	}
}

// TestSweepWidthParity spot-checks that sweep results are independent of
// the worker-pool width — each cell owns its seed-derived engine, so a
// serial and a 4-wide run of the same grid must be identical, including
// under the calendar scheduler's pooled internal state.
func TestSweepWidthParity(t *testing.T) {
	base := fig1Config(ProtoGPSR, 50, 1)
	base.Duration = 20 * time.Second
	nodes := []int{50, 100}
	protos := []Protocol{ProtoGPSR, ProtoAGFW}
	serial, err := DensitySweepOpts(base, nodes, protos, SweepOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := DensitySweepOpts(base, nodes, protos, SweepOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("sweep results depend on worker width:\nserial: %+v\nwide:   %+v", serial, wide)
	}
}

package core

import (
	"testing"
	"time"
)

// Robustness scenarios: fading losses and node churn. These are the
// failure-injection axis of the test suite — the paper's protocols must
// degrade, not wedge, and the ACK machinery must earn its keep.

func TestFadingLossDegradesNoAckMoreThanAck(t *testing.T) {
	run := func(proto Protocol, loss float64) float64 {
		cfg := DefaultConfig()
		cfg.Duration = 60 * time.Second
		cfg.PacketInterval = 300 * time.Millisecond
		cfg.Protocol = proto
		cfg.LossRate = loss
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.DeliveryFraction
	}
	const loss = 0.15
	ack := run(ProtoAGFW, loss)
	noack := run(ProtoAGFWNoAck, loss)
	if ack < 0.8 {
		t.Fatalf("AGFW-ACK pdf = %.3f under %.0f%% fading; ARQ not recovering", ack, loss*100)
	}
	if noack >= ack-0.1 {
		t.Fatalf("noACK pdf %.3f not clearly below ACK %.3f under fading", noack, ack)
	}
	// GPSR suffers more: its 4-frame RTS/CTS/DATA/ACK exchange needs
	// every frame to survive (0.85^4 ≈ 0.52 per attempt), and fading
	// beacons thin its neighbor table. It must still degrade, not
	// collapse.
	if g := run(ProtoGPSR, loss); g < 0.6 {
		t.Fatalf("GPSR pdf = %.3f under fading; collapsed", g)
	}
}

func TestFadingLossAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 30 * time.Second
	cfg.LossRate = 0.2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Channel.FadingLosses == 0 {
		t.Fatal("loss model configured but no fading losses recorded")
	}
}

func TestChurnSurvivable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 90 * time.Second
	cfg.PacketInterval = 300 * time.Millisecond
	cfg.ChurnFailures = 10
	cfg.ChurnDownFor = 20 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A fifth of the network going dark must hurt but not collapse
	// delivery: AGFW reroutes around dead relays via retransmission.
	if res.Summary.DeliveryFraction < 0.7 {
		t.Fatalf("pdf = %.3f with churn; routing not repairing (drops %v)",
			res.Summary.DeliveryFraction, res.Summary.Drops)
	}
	base := cfg
	base.ChurnFailures = 0
	bres, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.DeliveryFraction > bres.Summary.DeliveryFraction+0.01 {
		t.Fatalf("churn improved delivery?! %.3f vs %.3f",
			res.Summary.DeliveryFraction, bres.Summary.DeliveryFraction)
	}
}

func TestChurnGPSRSurvivable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = ProtoGPSR
	cfg.Duration = 90 * time.Second
	cfg.PacketInterval = 300 * time.Millisecond
	cfg.ChurnFailures = 10
	cfg.ChurnDownFor = 20 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.DeliveryFraction < 0.7 {
		t.Fatalf("GPSR pdf = %.3f with churn (drops %v)",
			res.Summary.DeliveryFraction, res.Summary.Drops)
	}
	if res.GPSR.MACFailures == 0 {
		t.Fatal("churn produced no MAC failures; SetDown apparently inert")
	}
}

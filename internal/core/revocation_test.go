package core

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"anongeo/internal/exp"
	"anongeo/internal/fault"
	"anongeo/internal/neighbor"
)

// TestConfigValidateRevocationKnobs range-checks the revocation and
// authenticated-ack knobs in the trust-knob table style: protocol
// mismatches and out-of-range escrow parameters are rejected with
// field-naming errors instead of silently no-opping.
func TestConfigValidateRevocationKnobs(t *testing.T) {
	revo := func(mutate func(*neighbor.RevocationConfig)) func(*Config) {
		return func(c *Config) {
			rc := neighbor.DefaultRevocationConfig()
			mutate(&rc)
			c.TrustRelay = true
			c.Revocation = &rc
		}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"both off", func(c *Config) {}, true},
		{"authack on agfw", func(c *Config) { c.AuthAck = true }, true},
		{"authack on gpsr", func(c *Config) {
			c.Protocol = ProtoGPSR
			c.AuthAck = true
		}, false},
		{"authack on agfw-noack", func(c *Config) {
			c.Protocol = ProtoAGFWNoAck
			c.AuthAck = true
		}, false},
		{"revocation defaults", revo(func(rc *neighbor.RevocationConfig) {}), true},
		{"revocation zero value fills defaults", func(c *Config) {
			c.TrustRelay = true
			c.Revocation = &neighbor.RevocationConfig{}
		}, true},
		{"revocation without trust", func(c *Config) {
			rc := neighbor.DefaultRevocationConfig()
			c.Revocation = &rc
		}, false},
		{"revocation on gpsr", func(c *Config) {
			c.Protocol = ProtoGPSR
			rc := neighbor.DefaultRevocationConfig()
			c.TrustRelay = true
			c.Revocation = &rc
		}, false},
		{"threshold above authorities", revo(func(rc *neighbor.RevocationConfig) {
			rc.Threshold = 9
			rc.Authorities = 5
		}), false},
		{"authorities overflow", revo(func(rc *neighbor.RevocationConfig) { rc.Authorities = 256 }), false},
		{"negative revoke window", revo(func(rc *neighbor.RevocationConfig) { rc.RevokeFor = -1 }), false},
		{"negative tag ttl", revo(func(rc *neighbor.RevocationConfig) { rc.TagTTL = -1 }), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			c.mutate(&cfg)
			err := cfg.Validate()
			if c.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestRevocationKnobsCacheKeyStable extends the exp-cache compatibility
// guarantee to this PR's knobs: an off-state config must serialize
// without any trace of them (same cache keys as before the feature
// existed, no SchemaVersion bump), arming each must change the key, and
// an armed config must survive a JSON round trip.
func TestRevocationKnobsCacheKeyStable(t *testing.T) {
	cfg := DefaultConfig()
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Revocation", "AuthAck"} {
		if strings.Contains(string(b), field) {
			t.Errorf("off-state %s leaks into canonical config JSON: %s", field, b)
		}
	}
	cache, err := exp.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base, err := cache.Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	authed := cfg
	authed.AuthAck = true
	kAuth, err := cache.Key(authed)
	if err != nil {
		t.Fatal(err)
	}
	if kAuth == base {
		t.Error("arming AuthAck did not change the cache key")
	}
	revoked := cfg
	revoked.TrustRelay = true
	rc := neighbor.DefaultRevocationConfig()
	revoked.Revocation = &rc
	kRev, err := cache.Key(revoked)
	if err != nil {
		t.Fatal(err)
	}
	if kRev == base || kRev == kAuth {
		t.Error("arming Revocation did not produce a distinct cache key")
	}

	// JSON round trip: the armed knobs must come back semantically equal.
	rb, err := json.Marshal(revoked)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(rb, &back); err != nil {
		t.Fatal(err)
	}
	if back.Revocation == nil || !reflect.DeepEqual(*back.Revocation, rc) {
		t.Errorf("Revocation did not survive JSON round trip: %+v", back.Revocation)
	}
	ab, err := json.Marshal(authed)
	if err != nil {
		t.Fatal(err)
	}
	var back2 Config
	if err := json.Unmarshal(ab, &back2); err != nil {
		t.Fatal(err)
	}
	if !back2.AuthAck {
		t.Error("AuthAck did not survive JSON round trip")
	}
}

// revocationPlan is attackPlan with heavier rotation pressure: the
// composed three-axis adversary the determinism test runs both defenses
// against.
func revocationPlan() *fault.Plan {
	return &fault.Plan{Entries: []fault.Entry{
		{Kind: fault.KindBogusBeacon, Fraction: 0.15, P: 1},
		{Kind: fault.KindAckSpoof, Fraction: 0.1, P: 1},
		{Kind: fault.KindFlood, Fraction: 0.1, Rate: 15},
	}}
}

// TestRevocationSweepParallelWidths pins the acceptance criterion that
// runs with both new defenses armed — escrow registration, quorum
// openings, chain inheritance, MAC verification, tag rejection — stay
// bit-identical at any orchestrator parallelism.
func TestRevocationSweepParallelWidths(t *testing.T) {
	base := faultTestConfig(ProtoAGFW, 7)
	base.Duration = 10 * time.Second
	base.TrustRelay = true
	base.AuthAck = true
	rc := neighbor.DefaultRevocationConfig()
	base.Revocation = &rc
	base.Faults = revocationPlan()
	counts := []int{20, 25}
	protos := []Protocol{ProtoAGFW}
	serial, err := DensitySweepOpts(base, counts, protos, SweepOptions{Repeats: 2, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := DensitySweepOpts(base, counts, protos, SweepOptions{Repeats: 2, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("parallel width changed revocation-sweep results:\nserial: %+v\nwide:   %+v", serial, wide)
	}
}

// TestRevocationEndToEnd smokes the whole escrow pipeline inside a real
// run: a bogus-beacon fleet under TrustRelay+Revocation must produce
// registrations, a quorum opening, and inherited standings, and the
// audit's new conservation terms must hold (Run fails otherwise).
func TestRevocationEndToEnd(t *testing.T) {
	cfg := faultTestConfig(ProtoAGFW, 5)
	cfg.Duration = 30 * time.Second
	cfg.TrustRelay = true
	rc := neighbor.DefaultRevocationConfig()
	cfg.Revocation = &rc
	cfg.Faults = &fault.Plan{Entries: []fault.Entry{
		{Kind: fault.KindBogusBeacon, Fraction: 0.25, P: 1},
	}}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Revocation.Registered == 0 {
		t.Error("no pseudonyms registered despite armed revocation")
	}
	if r.Revocation.Accusations == 0 {
		t.Error("no accusations filed despite a 25% bogus-beacon fleet")
	}
	if r.Revocation.Openings == 0 {
		t.Error("no quorum openings despite sustained accusations")
	}
	if r.Revocation.Inherits == 0 {
		t.Error("no successor pseudonym inherited a revoked standing")
	}
}

// TestFloodTagRejection: with revocation armed, flood-attack pseudonyms
// carry no CA-blessed escrow tag and every heard junk hello is rejected
// at the tag gate instead of poisoning the ANT.
func TestFloodTagRejection(t *testing.T) {
	cfg := faultTestConfig(ProtoAGFW, 5)
	cfg.Duration = 20 * time.Second
	cfg.TrustRelay = true
	rc := neighbor.DefaultRevocationConfig()
	cfg.Revocation = &rc
	cfg.Faults = &fault.Plan{Entries: []fault.Entry{
		{Kind: fault.KindFlood, Fraction: 0.2, Rate: 30},
	}}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.AGFW.JunkHellosHeard == 0 {
		t.Fatal("flood generated no heard junk hellos; rejection check is vacuous")
	}
	if r.AGFW.TagRejects == 0 {
		t.Error("no junk hellos rejected at the escrow-tag gate")
	}
}

// TestAckSpoofDefenseMargin pins the E14 headline: AGFW under a 20%
// ack-spoofer fleet on a lossy channel, where per-hop authenticated
// acks must recover at least 10 delivery points over the undefended
// run. The channel loss matters: a spoofed ack only strands a packet
// when the committed relay genuinely missed the broadcast, so lossless
// runs let most forgeries settle packets that were delivered anyway.
// At 30% loss the laundering dominates (undefended pdf ~0.39) and
// rejecting forgeries re-arms the ARQ into real recoveries (~0.52).
// Determinism makes the threshold a regression gate, not a statistical
// bet.
//
// CHAOS_MARGIN_SABOTAGE, when set, swaps AuthAck for PR8's trust
// defense in the "defended" run — the handicap E12 measured as unable
// to recover this curve (trust keys rotate with the pseudonyms the
// spoofer hides behind). CI asserts the gate trips, proving the margin
// check cannot pass vacuously.
func TestAckSpoofDefenseMargin(t *testing.T) {
	if testing.Short() {
		t.Skip("two 120 s runs at 40 nodes")
	}
	sabotage := os.Getenv("CHAOS_MARGIN_SABOTAGE") != ""
	const wantMargin = 0.10
	var pdf [2]float64
	for i, def := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Protocol = ProtoAGFW
		cfg.Nodes = 40
		cfg.Duration = 120 * time.Second
		cfg.PacketInterval = 300 * time.Millisecond
		cfg.LossRate = 0.3
		cfg.Seed = 1
		if def {
			if sabotage {
				cfg.TrustRelay = true
			} else {
				cfg.AuthAck = true
			}
		}
		cfg.Faults = &fault.Plan{Entries: []fault.Entry{
			{Kind: fault.KindAckSpoof, Fraction: 0.2, P: 1},
		}}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pdf[i] = r.Summary.DeliveryFraction
		if def && !sabotage && r.AGFW.AuthAcksBadMAC == 0 {
			t.Error("defended run rejected no forged acks; margin would be coincidental")
		}
	}
	if pdf[1] < pdf[0]+wantMargin {
		t.Errorf("authack defense margin too thin: off pdf=%.4f on pdf=%.4f (want +%.2f)",
			pdf[0], pdf[1], wantMargin)
	}
}

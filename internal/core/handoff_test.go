package core

import (
	"testing"
	"time"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/locservice"
	"anongeo/internal/metrics"
	"anongeo/internal/mobility"
	"anongeo/internal/sim"
)

// fakePort records geocasts instead of sending them.
type fakePort struct {
	sent    []fakeGeocast
	handler func(payload any, payloadBytes int)
}

type fakeGeocast struct {
	target  geo.Point
	payload any
	bytes   int
}

func (f *fakePort) SendGeocast(target geo.Point, payload any, payloadBytes int, _ uint64) {
	f.sent = append(f.sent, fakeGeocast{target: target, payload: payload, bytes: payloadBytes})
}

func (f *fakePort) SetGeoHandler(h func(payload any, payloadBytes int)) { f.handler = h }

// newOverlayHarness builds an lsOverlay around a fake port, bypassing the
// full network assembly.
func newOverlayHarness(t *testing.T, mode LocationServiceMode, mob mobility.Model) (*lsOverlay, *fakePort, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.LocationService = mode
	net := &Network{
		Cfg:       cfg,
		Eng:       eng,
		Collector: metrics.NewCollector(),
		byID:      map[anoncrypto.Identity]*Node{},
		ssa:       locservice.NewServerSelection(geo.NewGridMap(cfg.Area, 300), 2),
	}
	node := &Node{Index: 0, ID: "n0", Mob: mob}
	port := &fakePort{}
	o := newLSOverlay(net, node, port)
	node.overlay = o
	net.Nodes = append(net.Nodes, node)
	net.byID["n0"] = node
	return o, port, eng
}

func TestHandoffMovesStrandedRecords(t *testing.T) {
	// The server starts inside cell (0,0) and sprints to the far end of
	// the area; its stored record must be re-geocast toward the old cell.
	mob := mobility.Trace{
		Times:  []sim.Time{0, 5 * sim.Second, 6 * sim.Second},
		Points: []geo.Point{geo.Pt(100, 100), geo.Pt(100, 100), geo.Pt(1400, 150)},
	}
	o, port, eng := newOverlayHarness(t, LSPlainDLM, mob)
	cell := o.ssa.Grid.CellOf(geo.Pt(100, 100))
	o.plainStore["alice"] = plainRecord{loc: geo.Pt(90, 90), seen: sim.Time(4 * sim.Second), cell: cell}

	eng.Schedule(7*time.Second, func() { o.handoffStrandedRecords() })
	if err := eng.Run(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(o.plainStore) != 0 {
		t.Fatal("stranded record not evicted from the departing server")
	}
	if len(port.sent) != 1 {
		t.Fatalf("handoff geocasts = %d, want 1 batch", len(port.sent))
	}
	batch, ok := port.sent[0].payload.(lsPlainBatch)
	if !ok {
		t.Fatalf("payload = %T, want lsPlainBatch", port.sent[0].payload)
	}
	if batch.Cell != cell || len(batch.Recs) != 1 || batch.Recs[0].ID != "alice" {
		t.Fatalf("batch = %+v", batch)
	}
	if port.sent[0].target != o.ssa.Grid.Center(cell) {
		t.Fatalf("handoff target = %v, want cell center", port.sent[0].target)
	}
}

func TestHandoffKeepsLocalRecords(t *testing.T) {
	// A server still inside its cell keeps everything.
	o, port, eng := newOverlayHarness(t, LSPlainDLM, mobility.Static{At: geo.Pt(100, 100)})
	cell := o.ssa.Grid.CellOf(geo.Pt(100, 100))
	o.plainStore["alice"] = plainRecord{loc: geo.Pt(90, 90), seen: 0, cell: cell}
	eng.Schedule(time.Second, func() { o.handoffStrandedRecords() })
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(o.plainStore) != 1 {
		t.Fatal("resident server evicted its record")
	}
	if len(port.sent) != 0 {
		t.Fatalf("unnecessary handoff geocasts: %d", len(port.sent))
	}
}

func TestHandoffDropsExpiredRecords(t *testing.T) {
	o, port, eng := newOverlayHarness(t, LSPlainDLM, mobility.Static{At: geo.Pt(1400, 150)})
	cell := o.ssa.Grid.CellOf(geo.Pt(100, 100))
	// Record is both stranded and long past TTL: it must be dropped, not
	// handed off.
	o.plainStore["old"] = plainRecord{loc: geo.Pt(90, 90), seen: 0, cell: cell}
	eng.Schedule(10*time.Minute, func() { o.handoffStrandedRecords() })
	if err := eng.Run(11 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(o.plainStore) != 0 {
		t.Fatal("expired record kept")
	}
	if len(port.sent) != 0 {
		t.Fatal("expired record handed off")
	}
}

func TestHandoffBatchesMultipleRecords(t *testing.T) {
	o, port, eng := newOverlayHarness(t, LSPlainDLM, mobility.Static{At: geo.Pt(1400, 150)})
	cell := o.ssa.Grid.CellOf(geo.Pt(100, 100))
	for i := 0; i < 5; i++ {
		id := anoncrypto.Identity(rune('a' + i))
		o.plainStore[id] = plainRecord{loc: geo.Pt(90, 90), seen: sim.Time(i), cell: cell}
	}
	eng.Schedule(time.Second, func() { o.handoffStrandedRecords() })
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(port.sent) != 1 {
		t.Fatalf("geocasts = %d, want a single batch", len(port.sent))
	}
	if got := len(port.sent[0].payload.(lsPlainBatch).Recs); got != 5 {
		t.Fatalf("batched records = %d, want 5", got)
	}
}

func TestBatchReceptionPrefersFresherRecords(t *testing.T) {
	o, _, _ := newOverlayHarness(t, LSPlainDLM, mobility.Static{At: geo.Pt(100, 100)})
	cell := o.ssa.Grid.CellOf(geo.Pt(100, 100))
	o.plainStore["alice"] = plainRecord{loc: geo.Pt(1, 1), seen: 10 * sim.Second, cell: cell}
	// An older handed-off copy must not clobber the fresher local one.
	o.onGeocast(lsPlainBatch{Cell: cell, Recs: []lsPlainHand{{ID: "alice", Loc: geo.Pt(9, 9), Seen: 5 * sim.Second}}}, 0)
	if o.plainStore["alice"].loc != geo.Pt(1, 1) {
		t.Fatal("stale handoff overwrote fresher record")
	}
	// A fresher one does take over.
	o.onGeocast(lsPlainBatch{Cell: cell, Recs: []lsPlainHand{{ID: "alice", Loc: geo.Pt(9, 9), Seen: 20 * sim.Second}}}, 0)
	if o.plainStore["alice"].loc != geo.Pt(9, 9) {
		t.Fatal("fresh handoff ignored")
	}
}

func TestALSHandoffRoundTrip(t *testing.T) {
	// ALS records hand off as sealed blobs and must remain answerable.
	oFrom, portFrom, engFrom := newOverlayHarness(t, LSALS, mobility.Static{At: geo.Pt(1400, 150)})
	cell := oFrom.ssa.Grid.CellOf(geo.Pt(100, 100))
	var idx locservice.Index
	idx[0] = 7
	oFrom.alsStore[idx] = alsRecord{sealed: locservice.SealedLocation{1, 2, 3}, seen: sim.Time(sim.Second), cell: cell}
	engFrom.Schedule(time.Second, func() { oFrom.handoffStrandedRecords() })
	if err := engFrom.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(portFrom.sent) != 1 {
		t.Fatalf("handoff batches = %d", len(portFrom.sent))
	}
	batch := portFrom.sent[0].payload.(lsALSBatch)

	oTo, portTo, _ := newOverlayHarness(t, LSALS, mobility.Static{At: geo.Pt(100, 100)})
	oTo.onGeocast(batch, 0)
	if len(oTo.alsStore) != 1 {
		t.Fatal("handed-off ALS record not stored")
	}
	// The new server can answer an indexed query for it.
	oTo.onGeocast(lsALSQuery{Q: &locservice.Query{Index: idx, ReplyLoc: geo.Pt(50, 50)}}, 0)
	if len(portTo.sent) != 1 {
		t.Fatal("new server did not answer the query after handoff")
	}
}

package core

import (
	"testing"
	"time"
)

// lsConfig is a scenario with an in-band location service.
func lsConfig(mode LocationServiceMode) Config {
	cfg := DefaultConfig()
	cfg.Duration = 90 * time.Second
	cfg.PacketInterval = 300 * time.Millisecond
	cfg.LocationService = mode
	cfg.Warmup = 20 * time.Second // let the first RLU round land
	return cfg
}

func TestLSModeString(t *testing.T) {
	if LSOracle.String() != "oracle" || LSALS.String() != "ALS" || LSPlainDLM.String() != "DLM" {
		t.Fatal("mode names wrong")
	}
	if LocationServiceMode(9).String() == "" {
		t.Fatal("unknown mode empty")
	}
}

func TestPlainDLMOverlayDelivers(t *testing.T) {
	net, err := Build(lsConfig(LSPlainDLM))
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	ls := net.LSStats()
	if ls.Updates == 0 || ls.Queries == 0 {
		t.Fatalf("overlay idle: %+v", ls)
	}
	if ls.Resolved == 0 {
		t.Fatalf("no lookups resolved: %+v", ls)
	}
	if res.Summary.DeliveryFraction < 0.8 {
		t.Fatalf("DLM-overlay pdf = %.3f, want >= 0.8 (drops %v)",
			res.Summary.DeliveryFraction, res.Summary.Drops)
	}
}

func TestALSOverlayDelivers(t *testing.T) {
	net, err := Build(lsConfig(LSALS))
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	ls := net.LSStats()
	if ls.Resolved == 0 {
		t.Fatalf("no ALS lookups resolved: %+v", ls)
	}
	if ls.Decrypts == 0 {
		t.Fatal("ALS replies opened without decryption accounting")
	}
	if res.Summary.DeliveryFraction < 0.8 {
		t.Fatalf("ALS-overlay pdf = %.3f, want >= 0.8 (drops %v)",
			res.Summary.DeliveryFraction, res.Summary.Drops)
	}
}

func TestALSOverlayDegradesGracefully(t *testing.T) {
	// §5's prediction: with ALS in-band, performance is "expected to be
	// similar ... one might also expect it to elegantly degrade a bit"
	// relative to the oracle-assisted runs.
	oracle, err := Run(lsConfig(LSOracle))
	if err != nil {
		t.Fatal(err)
	}
	alsNet, err := Build(lsConfig(LSALS))
	if err != nil {
		t.Fatal(err)
	}
	als, err := alsNet.Run()
	if err != nil {
		t.Fatal(err)
	}
	if als.Summary.DeliveryFraction > oracle.Summary.DeliveryFraction {
		t.Logf("note: ALS pdf %.3f above oracle %.3f (seed luck, fine)",
			als.Summary.DeliveryFraction, oracle.Summary.DeliveryFraction)
	}
	if als.Summary.DeliveryFraction < oracle.Summary.DeliveryFraction-0.15 {
		t.Fatalf("ALS pdf %.3f degrades too much vs oracle %.3f",
			als.Summary.DeliveryFraction, oracle.Summary.DeliveryFraction)
	}
	if als.Summary.AvgLatency > 4*oracle.Summary.AvgLatency {
		t.Fatalf("ALS latency %v blows up vs oracle %v",
			als.Summary.AvgLatency, oracle.Summary.AvgLatency)
	}
}

func TestALSOverlayWorksUnderGPSRToo(t *testing.T) {
	// The DLM overlay also rides the GPSR baseline (geocast over
	// unicast forwarding).
	cfg := lsConfig(LSPlainDLM)
	cfg.Protocol = ProtoGPSR
	net, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if net.LSStats().Resolved == 0 {
		t.Fatalf("GPSR overlay resolved nothing: %+v", net.LSStats())
	}
	if res.Summary.DeliveryFraction < 0.8 {
		t.Fatalf("pdf = %.3f", res.Summary.DeliveryFraction)
	}
}

func TestALSOverlayPrivacy(t *testing.T) {
	// Even with the location service in-band, AGFW+ALS must not expose
	// identities or MAC addresses to a global sniffer.
	cfg := lsConfig(LSALS)
	cfg.WithSniffer = true
	net, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Harvest.ByIdentity) != 0 {
		t.Fatalf("ALS overlay leaked identities: %d", len(res.Harvest.ByIdentity))
	}
	if len(res.Harvest.ByMAC) != 0 {
		t.Fatal("ALS overlay leaked MAC addresses")
	}
}

func TestPlainDLMServerSeesIdentities(t *testing.T) {
	// The contrast: DLM's servers store (identity, location) cleartext.
	cfg := lsConfig(LSPlainDLM)
	net, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	exposed := 0
	for _, node := range net.Nodes {
		if node.overlay != nil {
			exposed += len(node.overlay.plainStore)
		}
	}
	if exposed == 0 {
		t.Fatal("no cleartext records at DLM servers — overlay not exercised")
	}
	// And under ALS, servers hold only opaque ciphertext records.
	cfgA := lsConfig(LSALS)
	netA, err := Build(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netA.Run(); err != nil {
		t.Fatal(err)
	}
	ciphertexts := 0
	for _, node := range netA.Nodes {
		if node.overlay == nil {
			continue
		}
		if len(node.overlay.plainStore) != 0 {
			t.Fatal("ALS node holds plaintext records")
		}
		ciphertexts += len(node.overlay.alsStore)
	}
	if ciphertexts == 0 {
		t.Fatal("no sealed records at ALS servers")
	}
}

func TestLSCacheHitsServeRepeatTraffic(t *testing.T) {
	net, err := Build(lsConfig(LSALS))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	ls := net.LSStats()
	if ls.CacheHits <= ls.Queries {
		t.Fatalf("cache not absorbing repeat lookups: hits=%d queries=%d",
			ls.CacheHits, ls.Queries)
	}
}

package core

import (
	"crypto/rsa"
	"time"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/locservice"
	"anongeo/internal/sim"
)

// This file runs the location service *over* the simulated network —
// the integration the paper's evaluation skipped ("we did not
// incorporate ALS so as to focus on the major routing part") but
// predicted would "elegantly degrade a bit". Experiment A6 measures that
// prediction.
//
// Updates and queries ride the data plane as geocasts toward grid
// centers; whichever node currently serves a grid (the greedy local
// maximum toward its center) stores records and answers queries. Under
// ALS the stored records are the encrypted ⟨E_KB(A,B), E_KB(A,loc,ts)⟩
// pairs of Algorithm 3.3; under plain DLM they are cleartext
// (identity, location) pairs any server can read.

// LocationServiceMode selects how flow sources resolve destinations.
type LocationServiceMode int

// Location resolution modes.
const (
	// LSOracle is the paper's evaluation setting: a perfect out-of-band
	// location service.
	LSOracle LocationServiceMode = iota + 1
	// LSALS runs the anonymous location service of §3.3 in-band.
	LSALS
	// LSPlainDLM runs the cleartext DLM baseline in-band.
	LSPlainDLM
)

// String implements fmt.Stringer.
func (m LocationServiceMode) String() string {
	switch m {
	case LSOracle:
		return "oracle"
	case LSALS:
		return "ALS"
	case LSPlainDLM:
		return "DLM"
	default:
		return "LocationServiceMode(?)"
	}
}

// LSStats aggregates overlay-level counters across nodes.
type LSStats struct {
	Updates      int // RLU messages sent (per home cell)
	Queries      int // LREQ messages sent
	Replies      int // LREP messages sent by servers
	ServerMisses int // queries reaching a server without a fresh record
	Resolved     int // successful resolutions at requesters
	Timeouts     int // resolutions abandoned
	CacheHits    int
	Decrypts     int // trial decryptions at requesters
}

// Overlay message payloads (ride inside geocast packets).

// lsALSUpdate is the ALS RLU body. Cell names the home grid so a server
// that drifts out of it can hand the record off; Seen preserves the
// record's original freshness across handoffs (zero means "now").
type lsALSUpdate struct {
	U    *locservice.Update
	Cell geo.Cell
	Seen sim.Time
}

// lsPlainUpdate is the DLM RLU body — the cleartext exposure.
type lsPlainUpdate struct {
	ID   anoncrypto.Identity
	Loc  geo.Point
	TS   sim.Time
	Cell geo.Cell
	Seen sim.Time
}

// lsALSQuery is the ALS LREQ body.
type lsALSQuery struct {
	Q *locservice.Query
}

// lsPlainQuery is the DLM LREQ body.
type lsPlainQuery struct {
	Target   anoncrypto.Identity
	ReplyLoc geo.Point
}

// lsALSBatch is a server-handoff bundle: every live record a departing
// server holds for one cell, moved in a single geocast.
type lsALSBatch struct {
	Cell geo.Cell
	Recs []lsALSHand
}

// lsALSHand is one handed-off sealed record.
type lsALSHand struct {
	Index  locservice.Index
	Sealed locservice.SealedLocation
	Seen   sim.Time
}

// lsPlainBatch is the DLM handoff bundle.
type lsPlainBatch struct {
	Cell geo.Cell
	Recs []lsPlainHand
}

// lsPlainHand is one handed-off cleartext record.
type lsPlainHand struct {
	ID   anoncrypto.Identity
	Loc  geo.Point
	Seen sim.Time
}

// lsALSReply is the ALS LREP body, matched at the requester by index.
type lsALSReply struct {
	Index locservice.Index
	Rep   *locservice.Reply
}

// lsPlainReply is the DLM LREP body.
type lsPlainReply struct {
	Target anoncrypto.Identity
	Loc    geo.Point
	TS     sim.Time
}

// geoSender abstracts the two routers' geocast primitive.
type geoSender interface {
	SendGeocast(target geo.Point, payload any, payloadBytes int, pktID uint64)
	SetGeoHandler(func(payload any, payloadBytes int))
}

// cachedLoc is a requester-side location cache entry.
type cachedLoc struct {
	loc  geo.Point
	seen sim.Time
}

// lsResolution is one in-flight lookup.
type lsResolution struct {
	target  anoncrypto.Identity
	conts   []func(loc geo.Point, ok bool)
	timer   *sim.Event
	retried bool
}

// alsRecord is one stored ALS entry with its home cell for handoff.
type alsRecord struct {
	sealed locservice.SealedLocation
	seen   sim.Time
	cell   geo.Cell
}

// plainRecord is one stored DLM entry with its home cell for handoff.
type plainRecord struct {
	loc  geo.Point
	seen sim.Time
	cell geo.Cell
}

// lsOverlay is one node's location-service state: every node is
// simultaneously a potential server (its grid role), an updater, and a
// requester.
type lsOverlay struct {
	net  *Network
	node *Node
	mode LocationServiceMode
	ssa  locservice.ServerSelection
	port geoSender

	alsStore   map[locservice.Index]alsRecord
	plainStore map[anoncrypto.Identity]plainRecord

	lastUpLoc geo.Point
	lastUpAt  sim.Time

	cache   map[anoncrypto.Identity]cachedLoc
	pending map[anoncrypto.Identity]*lsResolution
	// pendingALS maps index → target for matching ALS replies.
	pendingALS map[locservice.Index]anoncrypto.Identity

	stats LSStats
}

// lsConfigDefaults returns derived overlay parameters.
func (c Config) lsUpdateInterval() time.Duration {
	if c.LSUpdateInterval > 0 {
		return c.LSUpdateInterval
	}
	return 10 * time.Second
}

func (c Config) lsRecordTTL() sim.Time {
	if c.LSRecordTTL > 0 {
		return sim.Time(c.LSRecordTTL)
	}
	return sim.Time(3 * c.lsUpdateInterval())
}

func (c Config) lsQueryTimeout() time.Duration {
	if c.LSQueryTimeout > 0 {
		return c.LSQueryTimeout
	}
	return time.Second
}

func (c Config) lsUpdateDistance() float64 {
	if c.LSUpdateDistance > 0 {
		return c.LSUpdateDistance
	}
	return 150
}

func (c Config) lsCacheTTL() sim.Time {
	if c.LSCacheTTL > 0 {
		return sim.Time(c.LSCacheTTL)
	}
	return 10 * sim.Second
}

// newLSOverlay wires the overlay onto a node's router.
func newLSOverlay(net *Network, node *Node, port geoSender) *lsOverlay {
	o := &lsOverlay{
		net:        net,
		node:       node,
		mode:       net.Cfg.LocationService,
		ssa:        net.ssa,
		port:       port,
		cache:      make(map[anoncrypto.Identity]cachedLoc),
		pending:    make(map[anoncrypto.Identity]*lsResolution),
		pendingALS: make(map[locservice.Index]anoncrypto.Identity),
	}
	o.alsStore = make(map[locservice.Index]alsRecord)
	o.plainStore = make(map[anoncrypto.Identity]plainRecord)
	port.SetGeoHandler(o.onGeocast)
	return o
}

// start schedules the location-update policy: movement-triggered (DLM
// style — update the home grids after moving LSUpdateDistance meters)
// with the update interval as a refresh backstop for stationary nodes.
// Movement triggering bounds the positional error a requester can see,
// which periodic-only updates cannot for fast nodes.
func (o *lsOverlay) start() {
	iv := o.net.Cfg.lsUpdateInterval()
	check := 2 * time.Second
	first := time.Duration(o.net.Eng.Rand().Float64() * float64(check))
	var tick func()
	tick = func() {
		now := o.net.Eng.Now()
		here := o.node.Pos(now)
		moved := here.Dist(o.lastUpLoc) > o.net.Cfg.lsUpdateDistance()
		stale := now-o.lastUpAt > sim.Time(iv)
		if o.lastUpAt == 0 || moved || stale {
			o.lastUpLoc, o.lastUpAt = here, now
			o.sendUpdates()
		}
		o.net.Eng.Schedule(check, tick)
	}
	o.net.Eng.Schedule(first, tick)
	// Server handoff: a node that drifted away from a grid it serves
	// re-geocasts the grid's records toward the center so the current
	// local-maximum node takes over (DLM's "nodes in the grid store").
	hand := 10 * time.Second
	var handoff func()
	handoff = func() {
		o.handoffStrandedRecords()
		o.net.Eng.Schedule(hand, handoff)
	}
	o.net.Eng.Schedule(hand+time.Duration(o.net.Eng.Rand().Float64()*float64(hand)), handoff)
}

// handoffStrandedRecords pushes records of grids this node has left back
// toward their cells, batched into one geocast per cell so a departing
// server does not flood its neighborhood.
func (o *lsOverlay) handoffStrandedRecords() {
	now := o.net.Eng.Now()
	here := o.node.Pos(now)
	ttl := o.net.Cfg.lsRecordTTL()
	grid := o.ssa.Grid
	stranded := func(c geo.Cell) bool {
		return grid.CellOf(here) != c && here.Dist(grid.Center(c)) > grid.Size
	}
	alsBatches := map[geo.Cell][]lsALSHand{}
	for idx, rec := range o.alsStore {
		if now-rec.seen > ttl {
			delete(o.alsStore, idx)
			continue
		}
		if stranded(rec.cell) {
			delete(o.alsStore, idx)
			alsBatches[rec.cell] = append(alsBatches[rec.cell], lsALSHand{Index: idx, Sealed: rec.sealed, Seen: rec.seen})
		}
	}
	for cell, recs := range alsBatches {
		o.port.SendGeocast(grid.Center(cell),
			lsALSBatch{Cell: cell, Recs: recs},
			1+len(recs)*(64+64+8), o.net.nextCtrlID())
	}
	plainBatches := map[geo.Cell][]lsPlainHand{}
	for id, rec := range o.plainStore {
		if now-rec.seen > ttl {
			delete(o.plainStore, id)
			continue
		}
		if stranded(rec.cell) {
			delete(o.plainStore, id)
			plainBatches[rec.cell] = append(plainBatches[rec.cell], lsPlainHand{ID: id, Loc: rec.loc, Seen: rec.seen})
		}
	}
	for cell, recs := range plainBatches {
		o.port.SendGeocast(grid.Center(cell),
			lsPlainBatch{Cell: cell, Recs: recs},
			1+len(recs)*24, o.net.nextCtrlID())
	}
}

// sendUpdates pushes this node's location to its home grids: one RLU per
// home cell (DLM), or one per (anticipated requester × home cell) under
// ALS — the paper's stated overhead of anticipating one's senders.
func (o *lsOverlay) sendUpdates() {
	now := o.net.Eng.Now()
	here := o.node.AdvertisedPos(now)
	switch o.mode {
	case LSPlainDLM:
		for _, cell := range o.ssa.HomeCells(o.node.ID) {
			o.stats.Updates++
			o.port.SendGeocast(o.ssa.Grid.Center(cell),
				lsPlainUpdate{ID: o.node.ID, Loc: here, TS: now, Cell: cell},
				locservice.PlainUpdateBytes(), o.net.nextCtrlID())
		}
	case LSALS:
		anticipated := o.net.anticipatedRequesters(o.node.Index)
		if len(anticipated) == 0 {
			return
		}
		up := locservice.Updater{Self: *o.node.Keys, SSA: o.ssa, Directory: o.net.lsDirectory}
		// Charge one public-key sealing per anticipated requester
		// before the updates leave (0.5 ms each, §5.1's cost model).
		delay := time.Duration(len(anticipated)) * 500 * time.Microsecond
		o.net.Eng.Schedule(delay, func() {
			updates, err := up.BuildUpdates(anticipated, o.node.AdvertisedPos(o.net.Eng.Now()), o.net.Eng.Now())
			if err != nil {
				return
			}
			for cell, us := range updates {
				for _, u := range us {
					o.stats.Updates++
					o.port.SendGeocast(o.ssa.Grid.Center(cell),
						lsALSUpdate{U: u, Cell: cell}, locservice.UpdateBytes(), o.net.nextCtrlID())
				}
			}
		})
	}
}

// Resolve looks up target's location, calling cont exactly once. Cached
// results answer immediately; otherwise an LREQ goes to the target's
// home grid, with one retry to a second replica before giving up.
func (o *lsOverlay) Resolve(target anoncrypto.Identity, cont func(loc geo.Point, ok bool)) {
	now := o.net.Eng.Now()
	if c, ok := o.cache[target]; ok && now-c.seen <= o.net.Cfg.lsCacheTTL() {
		o.stats.CacheHits++
		cont(c.loc, true)
		return
	}
	if res, ok := o.pending[target]; ok {
		res.conts = append(res.conts, cont)
		return
	}
	res := &lsResolution{target: target, conts: []func(geo.Point, bool){cont}}
	o.pending[target] = res
	o.sendQuery(res, 0)
}

// sendQuery issues the LREQ to the replica-th home cell of the target.
func (o *lsOverlay) sendQuery(res *lsResolution, replica int) {
	now := o.net.Eng.Now()
	here := o.node.Pos(now)
	cells := o.ssa.HomeCells(res.target)
	cell := cells[replica%len(cells)]
	o.stats.Queries++
	switch o.mode {
	case LSPlainDLM:
		o.port.SendGeocast(o.ssa.Grid.Center(cell),
			lsPlainQuery{Target: res.target, ReplyLoc: here},
			locservice.PlainQueryBytes(), o.net.nextCtrlID())
	case LSALS:
		req := locservice.Requester{Self: o.node.Keys, SSA: o.ssa, Directory: o.net.lsDirectory}
		q, _, err := req.BuildQuery(res.target, here)
		if err != nil {
			o.finishResolution(res, geo.Point{}, false)
			return
		}
		o.pendingALS[q.Index] = res.target
		o.port.SendGeocast(o.ssa.Grid.Center(cell),
			lsALSQuery{Q: q}, locservice.QueryBytes(), o.net.nextCtrlID())
	}
	res.timer = o.net.Eng.Schedule(o.net.Cfg.lsQueryTimeout(), func() {
		if !res.retried && len(cells) > 1 {
			res.retried = true
			o.sendQuery(res, 1)
			return
		}
		o.stats.Timeouts++
		o.finishResolution(res, geo.Point{}, false)
	})
}

// finishResolution settles every waiter.
func (o *lsOverlay) finishResolution(res *lsResolution, loc geo.Point, ok bool) {
	if res.timer != nil {
		res.timer.Cancel()
		res.timer = nil
	}
	delete(o.pending, res.target)
	if ok {
		o.stats.Resolved++
		o.cache[res.target] = cachedLoc{loc: loc, seen: o.net.Eng.Now()}
	}
	for _, c := range res.conts {
		c(loc, ok)
	}
	res.conts = nil
}

// onGeocast is the server/requester-side message dispatcher.
func (o *lsOverlay) onGeocast(payload any, _ int) {
	now := o.net.Eng.Now()
	ttl := o.net.Cfg.lsRecordTTL()
	switch m := payload.(type) {
	case lsPlainUpdate:
		seen := m.Seen
		if seen == 0 {
			seen = now
		}
		if old, ok := o.plainStore[m.ID]; !ok || seen >= old.seen {
			o.plainStore[m.ID] = plainRecord{loc: m.Loc, seen: seen, cell: m.Cell}
		}
	case lsALSUpdate:
		seen := m.Seen
		if seen == 0 {
			seen = now
		}
		if old, ok := o.alsStore[m.U.Index]; !ok || seen >= old.seen {
			o.alsStore[m.U.Index] = alsRecord{sealed: m.U.Sealed, seen: seen, cell: m.Cell}
		}
	case lsPlainQuery:
		rec, ok := o.plainStore[m.Target]
		if !ok || now-rec.seen > ttl {
			o.stats.ServerMisses++
			return
		}
		o.stats.Replies++
		o.port.SendGeocast(m.ReplyLoc,
			lsPlainReply{Target: m.Target, Loc: rec.loc, TS: rec.seen},
			locservice.PlainReplyBytes(), o.net.nextCtrlID())
	case lsALSBatch:
		for _, h := range m.Recs {
			if old, ok := o.alsStore[h.Index]; !ok || h.Seen >= old.seen {
				o.alsStore[h.Index] = alsRecord{sealed: h.Sealed, seen: h.Seen, cell: m.Cell}
			}
		}
	case lsPlainBatch:
		for _, h := range m.Recs {
			if old, ok := o.plainStore[h.ID]; !ok || h.Seen >= old.seen {
				o.plainStore[h.ID] = plainRecord{loc: h.Loc, seen: h.Seen, cell: m.Cell}
			}
		}
	case lsALSQuery:
		rec, ok := o.alsStore[m.Q.Index]
		if !ok || now-rec.seen > ttl {
			o.stats.ServerMisses++
			return
		}
		rep := &locservice.Reply{Sealed: []locservice.SealedLocation{rec.sealed}}
		o.stats.Replies++
		o.port.SendGeocast(m.Q.ReplyLoc,
			lsALSReply{Index: m.Q.Index, Rep: rep}, rep.ReplyBytes(), o.net.nextCtrlID())
	case lsPlainReply:
		if res, ok := o.pending[m.Target]; ok {
			o.finishResolution(res, m.Loc, true)
		}
	case lsALSReply:
		target, ok := o.pendingALS[m.Index]
		if !ok {
			return
		}
		delete(o.pendingALS, m.Index)
		res, ok := o.pending[target]
		if !ok {
			return
		}
		// Charge the private-key decryption (8.5 ms) before the location
		// becomes usable.
		o.net.Eng.Schedule(8500*time.Microsecond, func() {
			req := locservice.Requester{Self: o.node.Keys, SSA: o.ssa, Directory: o.net.lsDirectory}
			loc, _, ok := req.OpenReply(m.Rep, target)
			o.stats.Decrypts += req.DecryptAttempts
			if _, stillPending := o.pending[target]; !stillPending {
				return // timed out while decrypting
			}
			o.finishResolution(res, loc, ok)
		})
	}
}

// lsDirectory resolves node identities to their RSA public keys (the
// certificate directory the paper assumes).
func (n *Network) lsDirectory(id anoncrypto.Identity) (*rsa.PublicKey, bool) {
	node, ok := n.byID[id]
	if !ok || node.Keys == nil {
		return nil, false
	}
	return node.Keys.Public(), true
}

// anticipatedRequesters lists the flow sources that target node index i —
// the paper's "anticipate its potential senders" requirement, grounded
// in the scenario's actual traffic matrix.
func (n *Network) anticipatedRequesters(i int) []anoncrypto.Identity {
	var out []anoncrypto.Identity
	seen := map[int]bool{}
	for _, f := range n.flows {
		if f.Dst == i && !seen[f.Src] {
			seen[f.Src] = true
			out = append(out, NodeID(f.Src))
		}
	}
	return out
}

// nextCtrlID allocates packet ids for control-plane geocasts, disjoint
// from the traffic generator's data ids.
func (n *Network) nextCtrlID() uint64 {
	n.ctrlID++
	return 1<<40 + n.ctrlID
}

// LSStats sums the overlay counters across nodes.
func (n *Network) LSStats() LSStats {
	var s LSStats
	for _, node := range n.Nodes {
		if node.overlay == nil {
			continue
		}
		o := node.overlay.stats
		s.Updates += o.Updates
		s.Queries += o.Queries
		s.Replies += o.Replies
		s.ServerMisses += o.ServerMisses
		s.Resolved += o.Resolved
		s.Timeouts += o.Timeouts
		s.CacheHits += o.CacheHits
		s.Decrypts += o.Decrypts
	}
	return s
}

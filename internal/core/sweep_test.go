package core

import (
	"testing"
	"time"

	"anongeo/internal/metrics"
)

func TestMeanResultAverages(t *testing.T) {
	mk := func(pdf float64, lat time.Duration, sent int) Result {
		return Result{
			Summary: metrics.Summary{
				Sent:             sent,
				Delivered:        int(pdf * float64(sent)),
				DeliveryFraction: pdf,
				AvgLatency:       lat,
				P95Latency:       2 * lat,
				AvgHops:          3,
			},
		}
	}
	out := meanResult([]Result{
		mk(0.8, 10*time.Millisecond, 100),
		mk(0.6, 30*time.Millisecond, 100),
	})
	if out.Summary.DeliveryFraction != 0.7 {
		t.Fatalf("pdf = %v, want 0.7", out.Summary.DeliveryFraction)
	}
	if out.Summary.AvgLatency != 20*time.Millisecond {
		t.Fatalf("lat = %v, want 20ms", out.Summary.AvgLatency)
	}
	if out.Summary.P95Latency != 40*time.Millisecond {
		t.Fatalf("p95 = %v", out.Summary.P95Latency)
	}
	if out.Summary.Sent != 200 {
		t.Fatalf("sent = %d, want summed 200", out.Summary.Sent)
	}
	if out.Summary.AvgHops != 3 {
		t.Fatalf("hops = %v", out.Summary.AvgHops)
	}
}

func TestMeanResultSingleIsIdentity(t *testing.T) {
	r := Result{Summary: metrics.Summary{Sent: 7, DeliveryFraction: 0.5}}
	out := meanResult([]Result{r})
	if out.Summary.Sent != 7 || out.Summary.DeliveryFraction != 0.5 {
		t.Fatalf("identity broken: %+v", out.Summary)
	}
}

func TestDensityPointAccessors(t *testing.T) {
	p := DensityPoint{
		Protocol: ProtoAGFW,
		Nodes:    112,
		Result: Result{Summary: metrics.Summary{
			DeliveryFraction: 0.93,
			AvgLatency:       12 * time.Millisecond,
		}},
	}
	if p.PDF() != 0.93 {
		t.Fatalf("PDF = %v", p.PDF())
	}
	if p.Latency() != 12*time.Millisecond {
		t.Fatalf("Latency = %v", p.Latency())
	}
}

func TestPaperNodeCountsOrder(t *testing.T) {
	prev := 0
	for _, n := range PaperNodeCounts {
		if n <= prev {
			t.Fatalf("PaperNodeCounts not increasing: %v", PaperNodeCounts)
		}
		prev = n
	}
	// The paper's stated baseline and called-out crossover density.
	if PaperNodeCounts[0] != 50 {
		t.Fatal("baseline density missing")
	}
	found112 := false
	for _, n := range PaperNodeCounts {
		if n == 112 {
			found112 = true
		}
	}
	if !found112 {
		t.Fatal("112-node density (the paper's crossover) missing")
	}
}

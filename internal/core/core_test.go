package core

import (
	"strings"
	"testing"
	"time"

	"anongeo/internal/neighbor"
)

// shortConfig is a fast scenario for unit tests: 45 s, 50 nodes.
func shortConfig(proto Protocol) Config {
	cfg := DefaultConfig()
	cfg.Duration = 45 * time.Second
	cfg.Protocol = proto
	return cfg
}

func TestConfigValidation(t *testing.T) {
	cases := map[string]func(*Config){
		"too few nodes":    func(c *Config) { c.Nodes = 1 },
		"zero range":       func(c *Config) { c.RadioRange = 0 },
		"zero duration":    func(c *Config) { c.Duration = 0 },
		"warmup>=duration": func(c *Config) { c.Warmup = c.Duration },
		"senders>nodes":    func(c *Config) { c.Senders = c.Nodes + 1 },
		"zero flows":       func(c *Config) { c.Flows = 0 },
		"zero interval":    func(c *Config) { c.PacketInterval = 0 },
		"bad protocol":     func(c *Config) { c.Protocol = 0 },
	}
	for name, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Build(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoGPSR.String() != "GPSR-Greedy" || ProtoAGFW.String() != "AGFW" || ProtoAGFWNoAck.String() != "AGFW-noACK" {
		t.Fatal("protocol names wrong")
	}
	if !strings.Contains(Protocol(9).String(), "9") {
		t.Fatal("unknown protocol string")
	}
}

func TestGPSRScenarioDelivers(t *testing.T) {
	res, err := Run(shortConfig(ProtoGPSR))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Sent == 0 {
		t.Fatal("no traffic generated")
	}
	if res.Summary.DeliveryFraction < 0.9 {
		t.Fatalf("GPSR pdf = %.3f at modest load, want >= 0.9 (drops %v)",
			res.Summary.DeliveryFraction, res.Summary.Drops)
	}
	if res.GPSR.BeaconsSent == 0 {
		t.Fatal("no beacons sent")
	}
	if res.MAC.RTSSent == 0 {
		t.Fatal("GPSR sent no RTS frames despite RTS/CTS being enabled")
	}
}

func TestAGFWScenarioDelivers(t *testing.T) {
	res, err := Run(shortConfig(ProtoAGFW))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.DeliveryFraction < 0.9 {
		t.Fatalf("AGFW pdf = %.3f, want >= 0.9 (drops %v)",
			res.Summary.DeliveryFraction, res.Summary.Drops)
	}
	if res.MAC.RTSSent != 0 {
		t.Fatal("AGFW used RTS/CTS; all transmissions must be broadcasts")
	}
	if res.AGFW.TrapdoorOpens == 0 {
		t.Fatal("no trapdoors opened")
	}
	// §3.2's efficiency claim: trapdoor attempts happen only in the
	// last-hop region, so tries must be far fewer than data forwards.
	if res.AGFW.TrapdoorTries > res.AGFW.Forwards {
		t.Fatalf("trapdoor tries (%d) exceed forwards (%d); locality broken",
			res.AGFW.TrapdoorTries, res.AGFW.Forwards)
	}
}

func TestAGFWNoAckDeliversLess(t *testing.T) {
	withAck, err := Run(shortConfig(ProtoAGFW))
	if err != nil {
		t.Fatal(err)
	}
	noAck, err := Run(shortConfig(ProtoAGFWNoAck))
	if err != nil {
		t.Fatal(err)
	}
	if noAck.Summary.DeliveryFraction >= withAck.Summary.DeliveryFraction {
		t.Fatalf("noACK pdf %.3f >= ACK pdf %.3f",
			noAck.Summary.DeliveryFraction, withAck.Summary.DeliveryFraction)
	}
	if noAck.AGFW.Retransmits != 0 {
		t.Fatal("noACK variant retransmitted")
	}
}

func TestBroadcastOnlyMACInAGFW(t *testing.T) {
	cfg := shortConfig(ProtoAGFW)
	cfg.WithSniffer = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Harvest == nil {
		t.Fatal("sniffer harvest missing")
	}
	if len(res.Harvest.ByMAC) != 0 {
		t.Fatal("AGFW leaked MAC addresses")
	}
	if len(res.Harvest.ByIdentity) != 0 {
		t.Fatal("AGFW leaked identities")
	}
	if len(res.Harvest.ByPseudonym) == 0 {
		t.Fatal("no pseudonymous hellos observed")
	}
}

func TestGPSRLeaksInHarvest(t *testing.T) {
	cfg := shortConfig(ProtoGPSR)
	cfg.WithSniffer = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Harvest.ByIdentity) < cfg.Nodes {
		t.Fatalf("adversary learned %d identities, want all %d", len(res.Harvest.ByIdentity), cfg.Nodes)
	}
}

func TestExposeSenderMACMisconfiguration(t *testing.T) {
	cfg := shortConfig(ProtoAGFW)
	cfg.ExposeSenderMAC = true
	cfg.WithSniffer = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Harvest.ByMAC) == 0 {
		t.Fatal("misconfigured AGFW should leak MAC addresses")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := shortConfig(ProtoAGFW)
	cfg.Duration = 30 * time.Second
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Sent != b.Summary.Sent ||
		a.Summary.Delivered != b.Summary.Delivered ||
		a.Summary.AvgLatency != b.Summary.AvgLatency ||
		a.Channel.Transmissions != b.Channel.Transmissions {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Summary, b.Summary)
	}
	cfg.Seed++
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Channel.Transmissions == c.Channel.Transmissions && a.Summary.AvgLatency == c.Summary.AvgLatency {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestStaticScenario(t *testing.T) {
	cfg := shortConfig(ProtoAGFW)
	cfg.Static = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.DeliveryFraction < 0.9 {
		t.Fatalf("static pdf = %.3f", res.Summary.DeliveryFraction)
	}
}

func TestRealCryptoScenario(t *testing.T) {
	cfg := shortConfig(ProtoAGFW)
	cfg.Nodes = 12
	cfg.Senders = 4
	cfg.Flows = 6
	cfg.Duration = 30 * time.Second
	cfg.RealCrypto = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Delivered == 0 {
		t.Fatalf("real-crypto run delivered nothing: %v", res.Summary.Drops)
	}
	if res.AGFW.TrapdoorOpens == 0 {
		t.Fatal("no real trapdoors opened")
	}
}

func TestPerimeterScenario(t *testing.T) {
	cfg := shortConfig(ProtoGPSR)
	cfg.Perimeter = true
	cfg.Nodes = 30 // sparser: greedy dead-ends appear
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.DeliveryFraction == 0 {
		t.Fatal("perimeter scenario delivered nothing")
	}
}

func TestAuthHelloScenario(t *testing.T) {
	base := shortConfig(ProtoAGFW)
	base.Duration = 30 * time.Second
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	authed := base
	authed.AuthHelloK = 4
	auth, err := Run(authed)
	if err != nil {
		t.Fatal(err)
	}
	// Ring-signed hellos are far bigger: channel bytes must grow.
	if auth.Channel.BitsSent <= plain.Channel.BitsSent {
		t.Fatalf("auth hellos (%d bits) not larger than plain (%d bits)",
			auth.Channel.BitsSent, plain.Channel.BitsSent)
	}
	if auth.Summary.Delivered == 0 {
		t.Fatal("auth-hello run delivered nothing")
	}
}

func TestPolicyAblationRuns(t *testing.T) {
	for _, pol := range []neighbor.Policy{neighbor.PolicyClosest, neighbor.PolicyFreshest, neighbor.PolicyWeighted} {
		cfg := shortConfig(ProtoAGFW)
		cfg.Duration = 30 * time.Second
		cfg.Policy = pol
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.DeliveryFraction < 0.7 {
			t.Fatalf("policy %v pdf = %.3f", pol, res.Summary.DeliveryFraction)
		}
	}
}

func TestNodeLookupOracle(t *testing.T) {
	net, err := Build(shortConfig(ProtoAGFW))
	if err != nil {
		t.Fatal(err)
	}
	loc, ok := net.Lookup(NodeID(3))
	if !ok {
		t.Fatal("oracle missing node")
	}
	if !net.Cfg.Area.Contains(loc) {
		t.Fatalf("node outside area: %v", loc)
	}
	if _, ok := net.Lookup("ghost"); ok {
		t.Fatal("oracle found a ghost")
	}
	if net.Node(NodeID(3)) == nil || net.Node("ghost") != nil {
		t.Fatal("Node() lookup wrong")
	}
}

func TestSweepHelpers(t *testing.T) {
	cfg := shortConfig(ProtoAGFW)
	cfg.Duration = 20 * time.Second
	cfg.Nodes = 30
	cfg.Senders = 10
	cfg.Flows = 10
	pts, err := DensitySweepN(cfg, []int{30, 40}, []Protocol{ProtoGPSR, ProtoAGFW}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	var sb strings.Builder
	if err := WriteSweepTable(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "GPSR-Greedy") {
		t.Fatalf("table missing protocol: %s", sb.String())
	}
	sb.Reset()
	if err := WriteSweepCSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(sb.String()), "\n")) != 5 {
		t.Fatalf("csv rows wrong:\n%s", sb.String())
	}
	for _, p := range pts {
		if p.PDF() < 0 || p.PDF() > 1 {
			t.Fatalf("pdf out of range: %v", p.PDF())
		}
		_ = p.Latency()
	}
}

package core

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"anongeo/internal/exp"
)

// parityBase is a small, fast grid base: enough traffic to exercise
// every protocol path, small enough that the 2×2×2 grids below stay
// cheap under -race.
func parityBase() Config {
	cfg := DefaultConfig()
	cfg.Duration = 30 * time.Second
	cfg.Warmup = 5 * time.Second
	cfg.Flows = 5
	cfg.Senders = 4
	return cfg
}

// TestSweepParallelSerialParity is the determinism contract of the exp
// orchestrator applied to real simulations: a density grid run with
// parallel=1 must equal the same grid with parallel=4 bit for bit,
// because every cell owns its seed-derived engine and no state is
// shared across workers. Run with -race this doubles as the
// concurrent-core.Run safety check.
func TestSweepParallelSerialParity(t *testing.T) {
	base := parityBase()
	counts := []int{12, 16}
	protos := []Protocol{ProtoGPSR, ProtoAGFW}

	serial, err := DensitySweepOpts(base, counts, protos, SweepOptions{Repeats: 2, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := DensitySweepOpts(base, counts, protos, SweepOptions{Repeats: 2, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], par[i]) {
			t.Errorf("row %d diverged between serial and parallel:\nserial: %+v\nparallel: %+v",
				i, serial[i], par[i])
		}
	}
}

// TestSweepCacheServesEveryCell runs a grid twice against one cache:
// the second pass must serve every cell from disk with results equal to
// the computed originals — i.e. core.Result survives the JSON round
// trip losslessly.
func TestSweepCacheServesEveryCell(t *testing.T) {
	base := parityBase()
	dir := t.TempDir()
	counts := []int{12, 16}
	protos := []Protocol{ProtoGPSR, ProtoAGFW}

	var (
		mu     sync.Mutex
		cached int
		ran    int
	)
	hook := countingHook(func(ev exp.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Type {
		case exp.EventCellCached:
			cached++
		case exp.EventCellStarted:
			ran++
		}
	})
	opt := SweepOptions{Repeats: 2, Parallel: 2, CacheDir: dir, Hooks: []exp.Hook{hook}}

	first, err := DensitySweepOpts(base, counts, protos, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cached != 0 || ran != 8 {
		t.Fatalf("first pass: ran=%d cached=%d, want 8/0", ran, cached)
	}

	cached, ran = 0, 0
	second, err := DensitySweepOpts(base, counts, protos, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cached != 8 || ran != 0 {
		t.Fatalf("second pass: ran=%d cached=%d, want 0/8", ran, cached)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached results diverged from computed:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestCacheableExemptsSideEffectConfigs pins the cache policy: traced
// and sniffed runs must always execute.
func TestCacheableExemptsSideEffectConfigs(t *testing.T) {
	cfg := parityBase()
	if !Cacheable(cfg) {
		t.Fatal("plain config should be cacheable")
	}
	sniff := cfg
	sniff.WithSniffer = true
	if Cacheable(sniff) {
		t.Fatal("sniffer harvests are not serializable; config must be exempt")
	}
}

type countingHook func(exp.Event)

func (f countingHook) Emit(ev exp.Event) { f(ev) }

package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"anongeo/internal/exp"
	"anongeo/internal/fault"
)

// TestConfigJSONRoundTripCacheKeyStable is the wire-format gate for the
// serving API: a config that crosses the network as JSON must decode
// back to a value with the same experiment-cache content address, or
// HTTP-submitted jobs would silently miss the cache (and job dedupe
// would split) against CLI-run identical configs. The table covers the
// paper's Figure 1 setup and chaos-style fault-plan configs.
func TestConfigJSONRoundTripCacheKeyStable(t *testing.T) {
	figure1 := DefaultConfig()

	figure1Dense := DefaultConfig()
	figure1Dense.Nodes = 150
	figure1Dense.Protocol = ProtoGPSR
	figure1Dense.Perimeter = true

	chaosGreyhole := DefaultConfig()
	chaosGreyhole.Duration = 300 * time.Second
	chaosGreyhole.Faults = &fault.Plan{Entries: []fault.Entry{
		{Kind: fault.KindGreyhole, Fraction: 0.2, P: 0.5},
	}}

	chaosBurstJam := DefaultConfig()
	chaosBurstJam.Faults = &fault.Plan{Entries: []fault.Entry{
		{Kind: fault.KindGilbertElliott, PGood: 0.01, PBad: 0.8,
			MeanGood: 5 * time.Second, MeanBad: 500 * time.Millisecond},
		{Kind: fault.KindOutage, Nodes: []int{3, 7}, From: 60 * time.Second, Until: 120 * time.Second},
		{Kind: fault.KindPositionError, Fraction: 1, Sigma: 25},
	}}

	legacyKnobs := DefaultConfig()
	legacyKnobs.LossRate = 0.1
	legacyKnobs.ChurnFailures = 5
	legacyKnobs.ChurnDownFor = 20 * time.Second

	cases := []struct {
		name string
		cfg  Config
	}{
		{"figure1-default", figure1},
		{"figure1-dense-gpsr", figure1Dense},
		{"chaos-greyhole", chaosGreyhole},
		{"chaos-burst-outage-sigma", chaosBurstJam},
		{"legacy-loss-churn", legacyKnobs},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			keyBefore, err := exp.KeyOf(tc.cfg)
			if err != nil {
				t.Fatalf("key before: %v", err)
			}
			b, err := json.Marshal(tc.cfg)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			// Strict decode, as the serve path does: the canonical
			// encoding must not contain fields the decoder rejects.
			dec := json.NewDecoder(bytes.NewReader(b))
			dec.DisallowUnknownFields()
			var back Config
			if err := dec.Decode(&back); err != nil {
				t.Fatalf("strict decode of own encoding: %v", err)
			}
			keyAfter, err := exp.KeyOf(back)
			if err != nil {
				t.Fatalf("key after: %v", err)
			}
			if keyBefore != keyAfter {
				t.Fatalf("cache key drifted across JSON round trip:\n before %s\n after  %s", keyBefore, keyAfter)
			}
			if !reflect.DeepEqual(tc.cfg, back) {
				t.Fatalf("config not equal after round trip:\n before %+v\n after  %+v", tc.cfg, back)
			}
			if err := back.Validate(); err != nil {
				t.Fatalf("round-tripped config no longer validates: %v", err)
			}
		})
	}
}

// TestValidateNamesOffendingField pins the error contract the HTTP API
// leans on: a rejected config's message carries the field name and the
// rejected value, so clients can fix requests without reading source.
func TestValidateNamesOffendingField(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Config)
		wantSubs []string
	}{
		{"nodes", func(c *Config) { c.Nodes = 1 }, []string{"Nodes", "1"}},
		{"radio-range", func(c *Config) { c.RadioRange = -5 }, []string{"RadioRange", "-5"}},
		{"warmup", func(c *Config) { c.Warmup = c.Duration }, []string{"Warmup"}},
		{"senders", func(c *Config) { c.Senders = c.Nodes + 7 }, []string{"Senders", "57"}},
		{"interval", func(c *Config) { c.PacketInterval = 0 }, []string{"PacketInterval", "0"}},
		{"protocol", func(c *Config) { c.Protocol = 42 }, []string{"Protocol", "42"}},
		{"loss", func(c *Config) { c.LossRate = 1.5 }, []string{"LossRate", "1.5"}},
		{"churn", func(c *Config) { c.ChurnFailures = -2 }, []string{"ChurnFailures", "-2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			for _, sub := range tc.wantSubs {
				if !strings.Contains(err.Error(), sub) {
					t.Fatalf("error %q does not name %q", err, sub)
				}
			}
		})
	}
}

// TestRunContextCancel checks an in-flight simulation aborts promptly
// once its context is canceled, and that an already-canceled context
// never builds the network at all.
func TestRunContextCancel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 30
	cfg.Duration = 600 * time.Second

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := RunContext(pre, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled RunContext error = %v, want context.Canceled", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, cfg)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the run get going
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext error = %v, want wrapped context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext ignored cancellation")
	}
}

// TestRunContextMatchesRun pins the no-perturbation promise: a run that
// completes under a live context is bit-for-bit the plain Run result.
func TestRunContextMatchesRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 20
	cfg.Duration = 30 * time.Second
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("RunContext result differs from Run on the same config")
	}
}

// Package core assembles complete simulated networks — engine, channel,
// mobility, MAC, routing protocol, traffic, metrics, adversary — and runs
// the scenarios the paper evaluates. It is the programmatic equivalent of
// the NS-2 Tcl scripts behind Figure 1, and the main entry point the
// public anongeo package re-exports.
package core

import (
	"fmt"
	"time"

	"anongeo/internal/fault"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/neighbor"
	"anongeo/internal/routing/agfw"
	"anongeo/internal/routing/gpsr"
	"anongeo/internal/trace"
)

// Protocol selects the routing stack for a scenario.
type Protocol int

// Available stacks: the paper's Figure 1 compares the first three.
const (
	// ProtoGPSR is the baseline: greedy forwarding, cleartext beacons,
	// 802.11 unicast with RTS/CTS and MAC-level ARQ.
	ProtoGPSR Protocol = iota + 1
	// ProtoAGFW is the paper's scheme with the network-layer ACK.
	ProtoAGFW
	// ProtoAGFWNoAck is AGFW's "simple form ... with no packet
	// acknowledgment", the third curve in Figure 1(a).
	ProtoAGFWNoAck
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtoGPSR:
		return "GPSR-Greedy"
	case ProtoAGFW:
		return "AGFW"
	case ProtoAGFWNoAck:
		return "AGFW-noACK"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config describes one scenario. DefaultConfig reproduces §5.1's setup.
type Config struct {
	Seed  int64
	Nodes int
	Area  geo.Rect

	RadioRange float64
	// CSRange is the carrier-sense/interference range; 0 derives the
	// NS-2 WaveLAN default of 2.2 × RadioRange.
	CSRange float64

	// Mobility: random waypoint, or static placement when Static is set.
	Static   bool
	MinSpeed float64
	MaxSpeed float64
	Pause    time.Duration

	// Traffic: CBR flows from a subset of sending nodes.
	Flows          int
	Senders        int
	PacketInterval time.Duration
	PayloadBytes   int

	Duration time.Duration
	// Warmup delays traffic so beacons can populate neighbor tables.
	Warmup time.Duration

	Protocol Protocol
	// Policy selects AGFW's next-hop strategy (ablation A4).
	Policy neighbor.Policy
	// ReachFilter makes AGFW skip next-hop entries that may have drifted
	// out of radio range (advertised distance + maxSpeed·age > range).
	ReachFilter bool
	// Perimeter enables GPSR's recovery mode (the paper's future work).
	Perimeter bool

	// ExposeSenderMAC reproduces the §3.2 misconfiguration: AGFW frames
	// carry real source MAC addresses, enabling the linking attack.
	ExposeSenderMAC bool

	// RealCrypto makes AGFW seal and open genuine RSA-512 trapdoors
	// instead of the modeled stand-in (same simulated delays either way).
	RealCrypto bool

	// AuthHelloK > 0 switches AGFW to authenticated hellos with rings of
	// k decoys: hello bytes and per-hello crypto delays grow accordingly
	// (ablation A1's network-level effect).
	AuthHelloK int

	// LocationService selects how flow sources resolve destination
	// positions: a perfect oracle (the paper's evaluation setting), the
	// in-band anonymous location service (ALS, §3.3), or the in-band
	// cleartext DLM baseline. Zero value means LSOracle.
	LocationService LocationServiceMode
	// LSUpdateInterval is the RLU period (default 10 s).
	LSUpdateInterval time.Duration
	// LSRecordTTL is server record freshness (default 3 update periods).
	LSRecordTTL time.Duration
	// LSQueryTimeout bounds one LREQ round trip (default 1 s); one
	// retry goes to a second replica before the lookup fails.
	LSQueryTimeout time.Duration
	// LSUpdateDistance triggers an update after moving this far
	// (default 150 m); LSUpdateInterval is the stationary backstop.
	LSUpdateDistance float64
	// LSCacheTTL bounds requester-side location reuse (default 10 s) —
	// for fast nodes a cached position goes stale quickly.
	LSCacheTTL time.Duration
	// LSGridSize is the DLM grid cell side (default 300 m).
	LSGridSize float64
	// LSReplicas is the number of home grids per identity (default 2).
	LSReplicas int

	// LossRate adds independent per-delivery frame loss (fading model);
	// 0 disables it. Internally it compiles to a fault.Plan entry.
	LossRate float64
	// ChurnFailures fails that many random nodes during the run (radio
	// down for ChurnDownFor, then back up), exercising route repair.
	// 0 disables churn. Internally it compiles to a fault.Plan entry.
	ChurnFailures int
	// ChurnDownFor is each failed node's outage length (default 30 s).
	ChurnDownFor time.Duration

	// Faults, when non-nil, installs this declarative fault plan —
	// bursty loss, adversarial relays, jamming, position error, outages
	// (see internal/fault). Its entries install after the canned entries
	// the legacy LossRate/ChurnFailures knobs compile to. Omitted from
	// the canonical config JSON when nil so existing experiment cache
	// keys are unchanged.
	Faults *fault.Plan `json:",omitempty"`

	// legacyFaults routes LossRate/ChurnFailures through the pre-plan
	// wiring instead of compiling them to a fault.Plan. Unexported and
	// test-only: it is the oracle the back-compat parity test compares
	// the plan path against (same trick as BruteForceRadio).
	legacyFaults bool

	// TrustRelay arms trust-aware relaying in whichever router the
	// scenario runs: per-neighbor forwarding-evidence scores (watchdog
	// overhearing for GPSR, ARQ outcomes for AGFW), position-plausibility
	// quarantine against forged beacons, and trust-weighted next-hop
	// selection. Off (the default) keeps the untrusted code paths
	// bit-for-bit — the defense-off parity oracle the chaos degradation
	// curves compare against. omitempty keeps experiment cache keys
	// unchanged for the default.
	TrustRelay bool `json:",omitempty"`
	// TrustOverride, when non-nil, replaces the defense parameters
	// (neighbor.DefaultTrustConfig with MaxSpeed/RadioRange filled from
	// this config). Only meaningful with TrustRelay set.
	TrustOverride *neighbor.TrustConfig `json:",omitempty"`

	// Revocation, when non-nil, arms revocable anonymity for the AGFW
	// protocols: rotated pseudonyms carry escrow tags a t-of-n authority
	// quorum can open, so TrustRelay scores survive rotation (a revoked
	// identity's successor pseudonyms inherit the quarantined standing
	// instead of resetting). Zero-valued fields resolve to
	// neighbor.DefaultRevocationConfig. Requires TrustRelay — revocation
	// without a trust table has no evidence stream to act on. omitempty
	// keeps experiment cache keys unchanged when off.
	Revocation *neighbor.RevocationConfig `json:",omitempty"`

	// AuthAck arms AGFW's per-hop authenticated acknowledgments: each
	// packet carries a MAC key sealed in its trapdoor, acks must carry
	// the matching MAC, and KindAckSpoof forgeries are rejected as
	// attributable bad-mac drops instead of quenching the victim's ARQ.
	// Only valid with ProtoAGFW (the other protocols have no
	// network-layer ack to authenticate). omitempty keeps experiment
	// cache keys unchanged when off.
	AuthAck bool `json:",omitempty"`

	// WithSniffer attaches a global eavesdropper and returns its harvest.
	WithSniffer bool

	// BruteForceRadio disables the channel's spatial index and the
	// waypoint leg memo, restoring the original O(n)-per-transmission hot
	// path. Results are bit-for-bit identical either way (the parity test
	// asserts it); this switch exists so benchmarks can measure both paths
	// in one process.
	BruteForceRadio bool

	// HeapScheduler selects the engine's original binary-heap event
	// queue instead of the default calendar queue. Results are
	// bit-for-bit identical either way (the scheduler parity test
	// asserts it); this switch exists as the parity oracle and so
	// benchmarks can time both queues. omitempty keeps experiment
	// cache keys unchanged for the default.
	HeapScheduler bool `json:",omitempty"`

	// MaxEvents guards against runaway scenarios (0 = default guard).
	MaxEvents uint64

	// Trace, when non-nil, records router-level protocol events.
	Trace *trace.Log

	// MAC overrides; zero value means mac.DefaultParams().
	MAC *mac.Params
	// AGFWOverride, if non-nil, replaces the derived AGFW config.
	AGFWOverride *agfw.Config
	// GPSROverride, if non-nil, replaces the derived GPSR config.
	GPSROverride *gpsr.Config
}

// DefaultConfig is the paper's §5.1 scenario: 50 nodes uniformly placed
// in 1500 m × 300 m, 250 m radio range, random waypoint up to 20 m/s
// with 60 s pause, 30 CBR flows from 20 senders, 900 s of simulated
// time.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Nodes:          50,
		Area:           geo.NewRect(1500, 300),
		RadioRange:     250,
		MinSpeed:       1,
		MaxSpeed:       20,
		Pause:          60 * time.Second,
		Flows:          30,
		Senders:        20,
		PacketInterval: 500 * time.Millisecond,
		PayloadBytes:   64,
		Duration:       900 * time.Second,
		Warmup:         10 * time.Second,
		Protocol:       ProtoAGFW,
		Policy:         neighbor.PolicyWeighted,
		ReachFilter:    true,
	}
}

// Validate rejects configurations that cannot run. Every error names
// the offending field (as it appears in the JSON encoding) and the
// rejected value, so API clients submitting configs over the wire can
// self-diagnose without reading simulator source.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("core: Nodes = %d: need at least 2 nodes", c.Nodes)
	}
	if c.RadioRange <= 0 {
		return fmt.Errorf("core: RadioRange = %g: must be positive", c.RadioRange)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("core: Duration = %v: must be positive", c.Duration)
	}
	if c.Warmup >= c.Duration {
		return fmt.Errorf("core: Warmup = %v: must be shorter than Duration %v", c.Warmup, c.Duration)
	}
	if c.Senders > c.Nodes {
		return fmt.Errorf("core: Senders = %d: exceeds Nodes %d", c.Senders, c.Nodes)
	}
	if c.Flows <= 0 {
		return fmt.Errorf("core: Flows = %d: must be positive", c.Flows)
	}
	if c.Senders <= 0 {
		return fmt.Errorf("core: Senders = %d: must be positive", c.Senders)
	}
	if c.PacketInterval <= 0 {
		return fmt.Errorf("core: PacketInterval = %v: must be positive", c.PacketInterval)
	}
	switch c.Protocol {
	case ProtoGPSR, ProtoAGFW, ProtoAGFWNoAck:
	default:
		return fmt.Errorf("core: Protocol = %d: unknown (want %d=GPSR, %d=AGFW, %d=AGFW-noACK)",
			int(c.Protocol), int(ProtoGPSR), int(ProtoAGFW), int(ProtoAGFWNoAck))
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("core: LossRate = %g: outside [0,1)", c.LossRate)
	}
	if c.ChurnDownFor < 0 {
		return fmt.Errorf("core: ChurnDownFor = %v: must not be negative", c.ChurnDownFor)
	}
	if c.ChurnFailures < 0 || c.ChurnFailures > c.Nodes {
		return fmt.Errorf("core: ChurnFailures = %d: outside [0,%d]", c.ChurnFailures, c.Nodes)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(c.Nodes); err != nil {
			return fmt.Errorf("core: Faults: %w", err)
		}
	}
	if c.TrustOverride != nil {
		if !c.TrustRelay {
			return fmt.Errorf("core: TrustOverride: set without TrustRelay")
		}
		t := c.TrustOverride
		if t.Alpha <= 0 || t.Alpha > 1 {
			return fmt.Errorf("core: TrustOverride.Alpha = %g: outside (0,1]", t.Alpha)
		}
		if t.InitScore < 0 || t.InitScore > 1 {
			return fmt.Errorf("core: TrustOverride.InitScore = %g: outside [0,1]", t.InitScore)
		}
		if t.MinScore < 0 || t.MinScore > 1 {
			return fmt.Errorf("core: TrustOverride.MinScore = %g: outside [0,1]", t.MinScore)
		}
		if t.QuarantineFor < 0 {
			return fmt.Errorf("core: TrustOverride.QuarantineFor = %v: must not be negative", t.QuarantineFor)
		}
		if t.EvidenceTimeout < 0 {
			return fmt.Errorf("core: TrustOverride.EvidenceTimeout = %v: must not be negative", t.EvidenceTimeout)
		}
	}
	if c.AuthAck {
		switch c.Protocol {
		case ProtoGPSR:
			return fmt.Errorf("core: AuthAck = true: GPSR has no network-layer acknowledgment to authenticate (use ProtoAGFW)")
		case ProtoAGFWNoAck:
			return fmt.Errorf("core: AuthAck = true: AGFW-noACK disables the acknowledgment AuthAck protects (use ProtoAGFW)")
		}
	}
	if c.Revocation != nil {
		if c.Protocol == ProtoGPSR {
			return fmt.Errorf("core: Revocation: GPSR identities never rotate, so there is no pseudonym chain to revoke (use an AGFW protocol)")
		}
		if !c.TrustRelay {
			return fmt.Errorf("core: Revocation: set without TrustRelay (revocation needs the trust table's evidence stream)")
		}
		if err := c.revocationConfig().Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// revocationConfig resolves the effective escrow parameters: the user's
// values with zero fields filled from neighbor.DefaultRevocationConfig
// (RevokeFor stays zero — "rest of the run" is the default). Nil when
// revocation is off.
func (c Config) revocationConfig() *neighbor.RevocationConfig {
	if c.Revocation == nil {
		return nil
	}
	rc := *c.Revocation
	def := neighbor.DefaultRevocationConfig()
	if rc.Threshold == 0 {
		rc.Threshold = def.Threshold
	}
	if rc.Authorities == 0 {
		rc.Authorities = def.Authorities
	}
	if rc.TagTTL == 0 {
		rc.TagTTL = def.TagTTL
	}
	return &rc
}

// trustConfig resolves the effective defense parameters: the override
// when set, else the defaults, with MaxSpeed/RadioRange filled from the
// scenario so the plausibility checks match the physics. Nil when the
// defense is off.
func (c Config) trustConfig() *neighbor.TrustConfig {
	if !c.TrustRelay {
		return nil
	}
	tc := neighbor.DefaultTrustConfig()
	if c.TrustOverride != nil {
		tc = *c.TrustOverride
	}
	if tc.MaxSpeed == 0 {
		tc.MaxSpeed = c.MaxSpeed
	}
	if tc.RadioRange == 0 {
		tc.RadioRange = c.RadioRange
	}
	return &tc
}

package core

import (
	"context"
	"crypto/rsa"
	"fmt"
	"strconv"
	"time"

	"anongeo/internal/adversary"
	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/locservice"
	"anongeo/internal/mac"
	"anongeo/internal/metrics"
	"anongeo/internal/mobility"
	"anongeo/internal/neighbor"
	"anongeo/internal/radio"
	"anongeo/internal/routing/agfw"
	"anongeo/internal/routing/gpsr"
	"anongeo/internal/sim"
	"anongeo/internal/traffic"
)

// Node is one simulated station with its full protocol stack.
type Node struct {
	Index int
	ID    anoncrypto.Identity
	Mob   mobility.Model
	MAC   *mac.DCF
	GPSR  *gpsr.Router // nil unless the scenario runs GPSR
	AGFW  *agfw.Router // nil unless the scenario runs AGFW
	Keys  *anoncrypto.KeyPair

	overlay *lsOverlay
	// posNoise, when set by a fault-plan position-error entry, distorts
	// the positions this node advertises (location-service updates; the
	// routers hold the same closure for beacons).
	posNoise func(geo.Point) geo.Point
}

// Pos reports the node's true current position.
func (n *Node) Pos(now sim.Time) geo.Point { return n.Mob.PositionAt(now) }

// AdvertisedPos is the position the node claims to the outside world —
// the true position unless a fault plan injects GPS error.
func (n *Node) AdvertisedPos(now sim.Time) geo.Point {
	p := n.Mob.PositionAt(now)
	if n.posNoise != nil {
		p = n.posNoise(p)
	}
	return p
}

// Network is a fully assembled scenario, exposed so examples and tools
// can poke at individual nodes between runs.
type Network struct {
	Cfg       Config
	Eng       *sim.Engine
	Channel   *radio.Channel
	Nodes     []*Node
	Collector *metrics.Collector
	Gen       *traffic.Generator
	Sniffer   *adversary.Sniffer
	// Revocation is the run's shared escrow authority registry, nil
	// unless Config.Revocation armed it.
	Revocation *neighbor.RevocationRegistry

	byID   map[anoncrypto.Identity]*Node
	flows  []traffic.Flow
	ssa    locservice.ServerSelection
	ctrlID uint64
}

// Result aggregates one run's measurements.
type Result struct {
	Protocol Protocol
	Nodes    int
	Summary  metrics.Summary
	Channel  radio.Stats
	MAC      mac.Stats
	AGFW     agfw.Stats
	GPSR     gpsr.Stats
	// Revocation carries the escrow registry's audit terms (zero value
	// when Config.Revocation is off).
	Revocation neighbor.RevocationStats
	// Harvest is the global eavesdropper's take, when WithSniffer.
	Harvest *adversary.Harvest
}

// NodeID formats the canonical identity of node index i.
func NodeID(i int) anoncrypto.Identity {
	return anoncrypto.Identity("n" + strconv.Itoa(i))
}

// Build assembles a network per cfg: engine, channel, nodes with mobility
// and protocol stacks, the CBR generator, and optionally a sniffer.
func Build(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine(cfg.Seed)
	if cfg.HeapScheduler {
		eng.UseHeapScheduler()
	}
	eng.MaxEvents = cfg.MaxEvents
	if eng.MaxEvents == 0 {
		eng.MaxEvents = 2_000_000_000
	}
	ch := radio.NewChannel(eng, cfg.RadioRange)
	cs := cfg.CSRange
	if cs == 0 {
		cs = 2.2 * cfg.RadioRange
	}
	ch.SetCarrierSenseRange(cs)
	if cfg.BruteForceRadio {
		ch.SetBruteForce(true)
	} else {
		maxSpeed := cfg.MaxSpeed
		if cfg.Static {
			maxSpeed = 0
		}
		ch.EnableSpatialIndex(cfg.Area, maxSpeed)
	}
	col := metrics.NewCollector()
	n := &Network{
		Cfg:       cfg,
		Eng:       eng,
		Channel:   ch,
		Collector: col,
		byID:      make(map[anoncrypto.Identity]*Node, cfg.Nodes),
	}

	macParams := mac.DefaultParams()
	if cfg.MAC != nil {
		macParams = *cfg.MAC
	}

	if cfg.LocationService == 0 {
		cfg.LocationService = LSOracle
		n.Cfg.LocationService = LSOracle
	}
	gridSize := cfg.LSGridSize
	if gridSize <= 0 {
		gridSize = 300
	}
	replicas := cfg.LSReplicas
	if replicas <= 0 {
		replicas = 2
	}
	n.ssa = locservice.NewServerSelection(geo.NewGridMap(cfg.Area, gridSize), replicas)

	// Key material when genuine trapdoors are requested, and always for
	// the in-band ALS (its updates and queries are real ciphertext).
	var keys map[anoncrypto.Identity]*anoncrypto.KeyPair
	if cfg.RealCrypto || cfg.LocationService == LSALS {
		keys = make(map[anoncrypto.Identity]*anoncrypto.KeyPair, cfg.Nodes)
		for i := 0; i < cfg.Nodes; i++ {
			kp, err := anoncrypto.GenerateKeyPair(NodeID(i), anoncrypto.DefaultKeyBits)
			if err != nil {
				return nil, fmt.Errorf("core: node %d keygen: %w", i, err)
			}
			keys[NodeID(i)] = kp
		}
	}
	dir := agfw.CertDirectory(func(id anoncrypto.Identity) (*rsa.PublicKey, bool) {
		kp, ok := keys[id]
		if !ok {
			return nil, false
		}
		return kp.Public(), true
	})

	// One shared beacon log across all GPSR routers: broadcast beacon
	// content is identical at every receiver, so it is stored once.
	beaconLog := neighbor.NewBeaconLog()

	// The escrow authority set is per-run infrastructure shared by every
	// router: dealt from the scenario seed, so identical configs yield
	// identical registries at any sweep parallelism.
	if rcfg := cfg.revocationConfig(); rcfg != nil {
		reg, err := neighbor.NewRevocationRegistry(*rcfg, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: Revocation: %w", err)
		}
		n.Revocation = reg
	}

	for i := 0; i < cfg.Nodes; i++ {
		id := NodeID(i)
		mobRng := eng.NewStream()
		start := mobility.RandomStart(cfg.Area, mobRng)
		var mob mobility.Model
		if cfg.Static {
			mob = mobility.Static{At: start}
		} else {
			wcfg := mobility.WaypointConfig{
				Bounds:   cfg.Area,
				MinSpeed: cfg.MinSpeed,
				MaxSpeed: cfg.MaxSpeed,
				Pause:    sim.Time(cfg.Pause),
				Start:    start,
			}
			wp := mobility.NewWaypoint(wcfg, mobRng)
			if cfg.BruteForceRadio {
				wp.DisableLegMemo()
			}
			mob = wp
		}

		node := &Node{Index: i, ID: id, Mob: mob}
		if keys != nil {
			node.Keys = keys[id]
		}

		switch cfg.Protocol {
		case ProtoGPSR:
			d := mac.New(eng, ch, mob, macParams, mac.AddrFromUint64(uint64(i+1)), nil, eng.NewStream())
			gcfg := gpsr.DefaultConfig()
			gcfg.EnablePerimeter = cfg.Perimeter
			gcfg.Trace = cfg.Trace
			if cfg.GPSROverride != nil {
				gcfg = *cfg.GPSROverride
			}
			gcfg.BeaconLog = beaconLog
			gcfg.TrustConfig = cfg.trustConfig()
			node.MAC = d
			node.GPSR = gpsr.New(eng, d, id, d.Iface().Pos, gcfg, col, nil, eng.NewStream())
			node.GPSR.Start()

		case ProtoAGFW, ProtoAGFWNoAck:
			addr := mac.Broadcast
			if cfg.ExposeSenderMAC {
				addr = mac.AddrFromUint64(uint64(i + 1))
			}
			d := mac.New(eng, ch, mob, macParams, addr, nil, eng.NewStream())
			acfg := agfw.DefaultConfig()
			acfg.Trace = cfg.Trace
			acfg.RadioRange = cfg.RadioRange
			acfg.MaxSpeed = cfg.MaxSpeed
			acfg.ReachFilter = cfg.ReachFilter
			if cfg.Policy != 0 {
				acfg.Policy = cfg.Policy
			}
			if cfg.Protocol == ProtoAGFWNoAck {
				acfg.UseAck = false
			}
			if cfg.AuthHelloK > 0 {
				acfg.HelloBytes = neighbor.EstimateAuthHelloBytes(cfg.AuthHelloK, anoncrypto.DefaultKeyBits, false)
				// §5.1's measured costs: ~0.5 ms per public-key op and
				// ~8.5 ms per private-key op on the paper's hardware.
				acfg.HelloSignDelay = 8500*time.Microsecond + time.Duration(cfg.AuthHelloK)*500*time.Microsecond
				acfg.HelloVerifyDelay = time.Duration(cfg.AuthHelloK+1) * 500 * time.Microsecond
			}
			if cfg.AGFWOverride != nil {
				acfg = *cfg.AGFWOverride
			}
			acfg.TrustConfig = cfg.trustConfig()
			acfg.AuthAck = cfg.AuthAck
			acfg.Revocation = n.Revocation
			if n.Revocation != nil {
				// Every hello carries its pseudonym's CA-blessed escrow tag.
				acfg.HelloBytes += anoncrypto.EscrowTagBytes
			}
			var scheme agfw.TrapdoorScheme
			if cfg.RealCrypto {
				scheme = &agfw.RealScheme{Self: keys[id], Dir: dir}
			} else {
				scheme = agfw.NewModeledScheme(id)
			}
			node.MAC = d
			node.AGFW = agfw.New(eng, d, id, d.Iface().Pos, scheme, acfg, col, nil, eng.NewStream())
			node.AGFW.Start()
		}

		if cfg.LocationService != LSOracle {
			var port geoSender
			if node.AGFW != nil {
				port = node.AGFW
			} else {
				port = node.GPSR
			}
			node.overlay = newLSOverlay(n, node, port)
			node.overlay.start()
		}

		n.Nodes = append(n.Nodes, node)
		n.byID[id] = node
	}

	if cfg.legacyFaults {
		// Pre-fault-plan wiring, kept verbatim as the oracle the
		// back-compat parity test compares the plan path against.
		if cfg.LossRate > 0 {
			ch.SetLossRate(cfg.LossRate)
		}
		if cfg.ChurnFailures > 0 {
			n.scheduleChurn()
		}
	} else if err := n.installFaults(); err != nil {
		return nil, err
	}

	if cfg.WithSniffer {
		n.Sniffer = adversary.NewSniffer(eng, ch, cfg.Area.Center(), 1e12)
	}

	flows, err := traffic.PickFlows(cfg.Nodes, cfg.Senders, cfg.Flows, eng.NewStream())
	if err != nil {
		return nil, err
	}
	n.flows = flows
	tcfg := traffic.Config{
		Flows:        flows,
		Interval:     cfg.PacketInterval,
		Jitter:       0.1,
		PayloadBytes: cfg.PayloadBytes,
		Start:        sim.Time(cfg.Warmup),
		Stop:         sim.Time(cfg.Duration),
	}
	gen, err := traffic.NewGenerator(eng, tcfg, n.sendOnFlow, eng.NewStream())
	if err != nil {
		return nil, err
	}
	n.Gen = gen
	gen.Start()
	return n, nil
}

// scheduleChurn arms the configured node failures: distinct random nodes
// go radio-dark for ChurnDownFor at random instants inside the traffic
// window, then come back.
func (n *Network) scheduleChurn() {
	cfg := n.Cfg
	downFor := cfg.ChurnDownFor
	if downFor <= 0 {
		downFor = 30 * time.Second
	}
	rng := n.Eng.NewStream()
	count := cfg.ChurnFailures
	if count > cfg.Nodes {
		count = cfg.Nodes
	}
	perm := rng.Perm(cfg.Nodes)[:count]
	window := cfg.Duration - cfg.Warmup - downFor
	if window <= 0 {
		window = cfg.Duration / 2
	}
	for _, idx := range perm {
		node := n.Nodes[idx]
		at := cfg.Warmup + time.Duration(rng.Float64()*float64(window))
		n.Eng.Schedule(at, func() {
			node.MAC.SetDown(true)
			n.Eng.Schedule(downFor, func() { node.MAC.SetDown(false) })
		})
	}
}

// Lookup is the perfect location oracle standing in for the location
// service, as in the paper's evaluation ("we did not incorporate ALS").
func (n *Network) Lookup(id anoncrypto.Identity) (geo.Point, bool) {
	node, ok := n.byID[id]
	if !ok {
		return geo.Point{}, false
	}
	return node.Pos(n.Eng.Now()), true
}

// Node returns the node with the given identity, or nil.
func (n *Network) Node(id anoncrypto.Identity) *Node { return n.byID[id] }

// sendOnFlow originates one CBR packet through the flow source's stack.
// Under an in-band location service the lookup happens first and the
// measured latency includes it; an unresolvable destination costs the
// packet (counted as sent, never delivered).
func (n *Network) sendOnFlow(f traffic.Flow, pktID uint64, payloadBytes int) {
	src := n.Nodes[f.Src]
	dstID := NodeID(f.Dst)
	originate := func(dstLoc geo.Point, record bool) {
		switch {
		case src.GPSR != nil:
			src.GPSR.Originate(dstID, dstLoc, payloadBytes, pktID, record)
		case src.AGFW != nil:
			src.AGFW.Originate(dstID, dstLoc, payloadBytes, pktID, record)
		}
	}
	if src.overlay == nil {
		dstLoc, _ := n.Lookup(dstID)
		originate(dstLoc, true)
		return
	}
	n.Collector.PacketSent(pktID, n.Eng.Now())
	src.overlay.Resolve(dstID, func(loc geo.Point, ok bool) {
		if !ok {
			n.Collector.DropPacket(pktID, "ls-unresolved")
			return
		}
		originate(loc, false)
	})
}

// Run advances the simulation to the configured duration (plus a short
// drain so in-flight packets settle), audits the run's conservation
// invariants, and returns the result.
func (n *Network) Run() (Result, error) {
	drain := 2 * time.Second
	if err := n.Eng.Run(n.Cfg.Duration + drain); err != nil {
		return Result{}, fmt.Errorf("core: simulation aborted: %w", err)
	}
	if err := n.Audit(); err != nil {
		return Result{}, err
	}
	return n.Result(), nil
}

// Result aggregates the current counters without advancing time.
func (n *Network) Result() Result {
	r := Result{
		Protocol: n.Cfg.Protocol,
		Nodes:    n.Cfg.Nodes,
		Summary:  n.Collector.Summarize(),
		Channel:  n.Channel.Stats(),
	}
	for _, node := range n.Nodes {
		r.MAC = addMACStats(r.MAC, node.MAC.Stats())
		if node.AGFW != nil {
			r.AGFW = addAGFWStats(r.AGFW, node.AGFW.Stats())
		}
		if node.GPSR != nil {
			r.GPSR = addGPSRStats(r.GPSR, node.GPSR.Stats())
		}
	}
	if n.Revocation != nil {
		r.Revocation = n.Revocation.Stats()
	}
	if n.Sniffer != nil {
		r.Harvest = adversary.HarvestObservations(n.Sniffer.Observations())
	}
	return r
}

// Run builds and executes one scenario.
func Run(cfg Config) (Result, error) {
	n, err := Build(cfg)
	if err != nil {
		return Result{}, err
	}
	return n.Run()
}

// RunContext is Run under a context: the engine polls ctx between
// events (every few thousand fired events, so well under a wall-clock
// millisecond at simulator pace) and aborts with ctx's error once it is
// canceled — job cancellation and daemon shutdown do not wait out a
// 900-simulated-second run. A run that completes was never perturbed:
// the poll draws no randomness and schedules nothing, so results are
// bit-for-bit identical to Run's.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	n, err := Build(cfg)
	if err != nil {
		return Result{}, err
	}
	n.Eng.Interrupt = ctx.Err
	return n.Run()
}

func addMACStats(a, b mac.Stats) mac.Stats {
	a.DataSent += b.DataSent
	a.RTSSent += b.RTSSent
	a.CTSSent += b.CTSSent
	a.AckSent += b.AckSent
	a.Delivered += b.Delivered
	a.Retries += b.Retries
	a.RetryDrops += b.RetryDrops
	a.QueueDrops += b.QueueDrops
	a.DupsDropped += b.DupsDropped
	a.BytesOnAir += b.BytesOnAir
	a.NAVDeferrals += b.NAVDeferrals
	return a
}

func addAGFWStats(a, b agfw.Stats) agfw.Stats {
	a.BeaconsSent += b.BeaconsSent
	a.Forwards += b.Forwards
	a.LastHopAttempts += b.LastHopAttempts
	a.TrapdoorTries += b.TrapdoorTries
	a.TrapdoorOpens += b.TrapdoorOpens
	a.ExplicitAcks += b.ExplicitAcks
	a.ImplicitAcks += b.ImplicitAcks
	a.Retransmits += b.Retransmits
	a.RetryDrops += b.RetryDrops
	a.DeadEnds += b.DeadEnds
	a.DuplicatesQuench += b.DuplicatesQuench
	a.GeocastAccepts += b.GeocastAccepts
	a.AdversaryDrops += b.AdversaryDrops
	a.BogusBeaconsSent += b.BogusBeaconsSent
	a.JunkHellosSent += b.JunkHellosSent
	a.JunkHellosHeard += b.JunkHellosHeard
	a.SpoofAcksSent += b.SpoofAcksSent
	a.SpoofAcksHeard += b.SpoofAcksHeard
	a.SpoofSettles += b.SpoofSettles
	a.BeaconsQuarantined += b.BeaconsQuarantined
	a.TrustQuarantines += b.TrustQuarantines
	a.TrustFallbacks += b.TrustFallbacks
	a.AuthAcksVerified += b.AuthAcksVerified
	a.AuthAcksBadMAC += b.AuthAcksBadMAC
	a.AuthAcksForeign += b.AuthAcksForeign
	a.TagRejects += b.TagRejects
	return a
}

func addGPSRStats(a, b gpsr.Stats) gpsr.Stats {
	a.BeaconsSent += b.BeaconsSent
	a.DataForwarded += b.DataForwarded
	a.DeadEnds += b.DeadEnds
	a.PerimHops += b.PerimHops
	a.MACFailures += b.MACFailures
	a.GeocastAccepts += b.GeocastAccepts
	a.AdversaryDrops += b.AdversaryDrops
	a.BogusBeaconsSent += b.BogusBeaconsSent
	a.JunkHellosSent += b.JunkHellosSent
	a.JunkHellosHeard += b.JunkHellosHeard
	a.BeaconsQuarantined += b.BeaconsQuarantined
	a.WatchdogConfirms += b.WatchdogConfirms
	a.WatchdogTimeouts += b.WatchdogTimeouts
	a.TrustQuarantines += b.TrustQuarantines
	a.TrustFallbacks += b.TrustFallbacks
	return a
}

package core

import (
	"fmt"
	"strings"

	"anongeo/internal/fault"
	"anongeo/internal/geo"
	"anongeo/internal/routing/agfw"
	"anongeo/internal/routing/gpsr"
)

// compiledFaultPlan is the effective plan for this config: the canned
// entries the legacy LossRate/ChurnFailures knobs compile to, followed
// by the explicit cfg.Faults entries. Legacy entries come first so a
// legacy-only config draws its streams in the exact order the pre-plan
// wiring did (the parity guarantee).
func (c Config) compiledFaultPlan() *fault.Plan {
	return fault.Merge(fault.FromLegacy(c.LossRate, c.ChurnFailures, c.ChurnDownFor), c.Faults)
}

// nodeActuator adapts one core.Node to the fault.Actuator surface,
// routing each control to whichever stack the node runs.
type nodeActuator struct{ n *Node }

func (a nodeActuator) SetDown(down bool) { a.n.MAC.SetDown(down) }

func (a nodeActuator) SetRelayDrop(p float64) {
	switch {
	case a.n.AGFW != nil:
		a.n.AGFW.SetRelayDrop(p)
	case a.n.GPSR != nil:
		a.n.GPSR.SetRelayDrop(p)
	}
}

func (a nodeActuator) SetMute(muted bool) {
	switch {
	case a.n.AGFW != nil:
		a.n.AGFW.SetMute(muted)
	case a.n.GPSR != nil:
		a.n.GPSR.SetMute(muted)
	}
}

func (a nodeActuator) SetBeaconNoise(f func(geo.Point) geo.Point) {
	a.n.posNoise = f
	switch {
	case a.n.AGFW != nil:
		a.n.AGFW.SetBeaconNoise(f)
	case a.n.GPSR != nil:
		a.n.GPSR.SetBeaconNoise(f)
	}
}

func (a nodeActuator) SetForgedBeacon(f func(geo.Point) geo.Point) {
	switch {
	case a.n.AGFW != nil:
		a.n.AGFW.SetForgedBeacon(f)
	case a.n.GPSR != nil:
		a.n.GPSR.SetForgedBeacon(f)
	}
}

func (a nodeActuator) SetAckSpoof(pred func() bool) {
	// GPSR has no network-layer acknowledgment to forge; the attack is
	// a no-op there by design.
	if a.n.AGFW != nil {
		a.n.AGFW.SetAckSpoof(pred)
	}
}

func (a nodeActuator) SendJunkHello(nonce uint64, loc geo.Point, bytes int) {
	switch {
	case a.n.AGFW != nil:
		a.n.AGFW.SendJunkHello(nonce, loc, bytes)
	case a.n.GPSR != nil:
		a.n.GPSR.SendJunkHello(nonce, loc, bytes)
	}
}

// installFaults wires the config's effective fault plan into a freshly
// built network (no-op for fault-free configs).
func (n *Network) installFaults() error {
	plan := n.Cfg.compiledFaultPlan()
	if plan == nil {
		return nil
	}
	acts := make([]fault.Actuator, len(n.Nodes))
	for i, node := range n.Nodes {
		acts[i] = nodeActuator{node}
	}
	return fault.Install(plan, fault.Env{
		Eng:      n.Eng,
		Channel:  n.Channel,
		Nodes:    acts,
		Area:     n.Cfg.Area,
		Warmup:   n.Cfg.Warmup,
		Duration: n.Cfg.Duration,
	})
}

// Audit checks the network's end-of-run conservation invariants and
// wedge conditions, returning an error listing every violation. It runs
// after every core.Run, so any scenario — including every fault plan —
// that loses track of a packet or strands an unarmed ACK timer fails
// loudly instead of silently skewing results.
//
// Invariants:
//   - metrics: Sent == Delivered + DroppedPackets + InFlight, with every
//     delivered/dropped id actually originated (Collector.AuditViolations).
//   - radio: every frozen receiver slot resolved exactly once —
//     Deliveries + Collisions + PendingArrivals == RxFrozen — and the
//     categorized fading/jam losses never exceed total losses.
//   - wedge: no AGFW router holds a pending ACK entry without an armed
//     retransmit timer (a packet nobody will ever retry or drop).
//   - attacks: spoofed acks, junk hellos, and forged beacons heard
//     anywhere must have been sent somewhere; no node settles more
//     pending entries on forged acks than forged acks it heard; and
//     with the trust defense off, no quarantine or watchdog activity
//     exists to skew the defense-off parity baselines.
//
// Before checking, the spoofed-ACK wedge detector reconciles the
// attack's silent damage: every packet a forged acknowledgment stranded
// (the victim's ARQ settled, nobody forwarded, no terminal record)
// becomes an attributable "spoofed-ack" drop, so conservation stays
// green under the ack-spoof attack instead of leaking in-flight counts.
func (n *Network) Audit() error {
	n.reconcileSpoofedAcks()
	v := n.Collector.AuditViolations()
	cs := n.Channel.Stats()
	pending := n.Channel.PendingArrivals()
	if cs.Deliveries+cs.Collisions+pending != cs.RxFrozen {
		v = append(v, fmt.Sprintf("radio: deliveries=%d + collisions=%d + pending=%d != frozen-receivers=%d",
			cs.Deliveries, cs.Collisions, pending, cs.RxFrozen))
	}
	if cs.FadingLosses+cs.JamLosses > cs.Collisions {
		v = append(v, fmt.Sprintf("radio: fading=%d + jam=%d losses exceed total losses %d",
			cs.FadingLosses, cs.JamLosses, cs.Collisions))
	}
	var ag agfw.Stats
	var gp gpsr.Stats
	for _, node := range n.Nodes {
		if node.GPSR != nil {
			gp = addGPSRStats(gp, node.GPSR.Stats())
		}
		if node.AGFW == nil {
			continue
		}
		if u := node.AGFW.UnarmedPending(); u > 0 {
			v = append(v, fmt.Sprintf("wedge: node %d holds %d pending AGFW packets with no armed ACK timer", node.Index, u))
		}
		s := node.AGFW.Stats()
		if s.SpoofSettles > s.SpoofAcksHeard {
			v = append(v, fmt.Sprintf("attack: node %d settled %d pending packets on spoofed acks but heard only %d", node.Index, s.SpoofSettles, s.SpoofAcksHeard))
		}
		if s.AuthAcksBadMAC > s.SpoofAcksHeard {
			v = append(v, fmt.Sprintf("authack: node %d rejected %d bad-mac acks but heard only %d spoofed", node.Index, s.AuthAcksBadMAC, s.SpoofAcksHeard))
		}
		ag = addAGFWStats(ag, s)
	}
	if ag.SpoofAcksHeard > 0 && ag.SpoofAcksSent == 0 {
		v = append(v, fmt.Sprintf("attack: %d spoofed acks heard but none sent", ag.SpoofAcksHeard))
	}
	if ag.AuthAcksBadMAC > 0 && ag.SpoofAcksSent == 0 {
		// Every attributable bad-mac drop must trace to a spoof entry:
		// honest acks carry valid MACs, so only forgeries can fail this way.
		v = append(v, fmt.Sprintf("authack: %d bad-mac rejections with no spoofed acks sent", ag.AuthAcksBadMAC))
	}
	if !n.Cfg.AuthAck {
		if e := ag.AuthAcksVerified + ag.AuthAcksBadMAC + ag.AuthAcksForeign; e > 0 {
			v = append(v, fmt.Sprintf("authack: %d MAC events with AuthAck off", e))
		}
	}
	if n.Revocation == nil {
		if ag.TagRejects > 0 {
			v = append(v, fmt.Sprintf("revocation: %d escrow-tag rejects with Revocation off", ag.TagRejects))
		}
	} else {
		rs := n.Revocation.Stats()
		if rs.Openings*n.Revocation.Config().Threshold > rs.Accusations {
			v = append(v, fmt.Sprintf("revocation: %d openings need %d accusations each but only %d filed",
				rs.Openings, n.Revocation.Config().Threshold, rs.Accusations))
		}
		if rs.Inherits > 0 && rs.Openings == 0 {
			v = append(v, fmt.Sprintf("revocation: %d trust inherits with no quorum openings", rs.Inherits))
		}
		if ag.TagRejects > ag.JunkHellosHeard {
			// Legitimate pseudonyms are escrowed before their hello is
			// broadcast, so only forged (flood) pseudonyms can fail the gate.
			v = append(v, fmt.Sprintf("revocation: %d tag rejects exceed %d junk hellos heard", ag.TagRejects, ag.JunkHellosHeard))
		}
	}
	if ag.JunkHellosHeard > 0 && ag.JunkHellosSent == 0 {
		v = append(v, fmt.Sprintf("attack: %d junk hellos heard but none sent (AGFW)", ag.JunkHellosHeard))
	}
	if gp.JunkHellosHeard > 0 && gp.JunkHellosSent == 0 {
		v = append(v, fmt.Sprintf("attack: %d junk hellos heard but none sent (GPSR)", gp.JunkHellosHeard))
	}
	if !n.Cfg.TrustRelay {
		if q := ag.TrustQuarantines + gp.TrustQuarantines + ag.BeaconsQuarantined + gp.BeaconsQuarantined; q > 0 {
			v = append(v, fmt.Sprintf("defense: %d quarantine events with TrustRelay off", q))
		}
		if w := gp.WatchdogConfirms + gp.WatchdogTimeouts; w > 0 {
			v = append(v, fmt.Sprintf("defense: %d watchdog events with TrustRelay off", w))
		}
	}
	if len(v) > 0 {
		return fmt.Errorf("core: audit: %s", strings.Join(v, "; "))
	}
	return nil
}

// reconcileSpoofedAcks converts every still-unresolved packet whose
// pending-ARQ entry a forged acknowledgment retired into an attributable
// "spoofed-ack" terminal drop. Deterministic (nodes in index order, ids
// in ascending order) and idempotent (a reconciled id is no longer
// unresolved); packets that were delivered anyway — the spoof raced a
// genuine forward — are left alone.
func (n *Network) reconcileSpoofedAcks() {
	for _, node := range n.Nodes {
		if node.AGFW == nil {
			continue
		}
		for _, id := range node.AGFW.SpoofSettledIDs() {
			if n.Collector.Unresolved(id) {
				n.Collector.DropPacket(id, "spoofed-ack")
			}
		}
	}
}

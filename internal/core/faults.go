package core

import (
	"fmt"
	"strings"

	"anongeo/internal/fault"
	"anongeo/internal/geo"
)

// compiledFaultPlan is the effective plan for this config: the canned
// entries the legacy LossRate/ChurnFailures knobs compile to, followed
// by the explicit cfg.Faults entries. Legacy entries come first so a
// legacy-only config draws its streams in the exact order the pre-plan
// wiring did (the parity guarantee).
func (c Config) compiledFaultPlan() *fault.Plan {
	return fault.Merge(fault.FromLegacy(c.LossRate, c.ChurnFailures, c.ChurnDownFor), c.Faults)
}

// nodeActuator adapts one core.Node to the fault.Actuator surface,
// routing each control to whichever stack the node runs.
type nodeActuator struct{ n *Node }

func (a nodeActuator) SetDown(down bool) { a.n.MAC.SetDown(down) }

func (a nodeActuator) SetRelayDrop(p float64) {
	switch {
	case a.n.AGFW != nil:
		a.n.AGFW.SetRelayDrop(p)
	case a.n.GPSR != nil:
		a.n.GPSR.SetRelayDrop(p)
	}
}

func (a nodeActuator) SetMute(muted bool) {
	switch {
	case a.n.AGFW != nil:
		a.n.AGFW.SetMute(muted)
	case a.n.GPSR != nil:
		a.n.GPSR.SetMute(muted)
	}
}

func (a nodeActuator) SetBeaconNoise(f func(geo.Point) geo.Point) {
	a.n.posNoise = f
	switch {
	case a.n.AGFW != nil:
		a.n.AGFW.SetBeaconNoise(f)
	case a.n.GPSR != nil:
		a.n.GPSR.SetBeaconNoise(f)
	}
}

// installFaults wires the config's effective fault plan into a freshly
// built network (no-op for fault-free configs).
func (n *Network) installFaults() error {
	plan := n.Cfg.compiledFaultPlan()
	if plan == nil {
		return nil
	}
	acts := make([]fault.Actuator, len(n.Nodes))
	for i, node := range n.Nodes {
		acts[i] = nodeActuator{node}
	}
	return fault.Install(plan, fault.Env{
		Eng:      n.Eng,
		Channel:  n.Channel,
		Nodes:    acts,
		Warmup:   n.Cfg.Warmup,
		Duration: n.Cfg.Duration,
	})
}

// Audit checks the network's end-of-run conservation invariants and
// wedge conditions, returning an error listing every violation. It runs
// after every core.Run, so any scenario — including every fault plan —
// that loses track of a packet or strands an unarmed ACK timer fails
// loudly instead of silently skewing results.
//
// Invariants:
//   - metrics: Sent == Delivered + DroppedPackets + InFlight, with every
//     delivered/dropped id actually originated (Collector.AuditViolations).
//   - radio: every frozen receiver slot resolved exactly once —
//     Deliveries + Collisions + PendingArrivals == RxFrozen — and the
//     categorized fading/jam losses never exceed total losses.
//   - wedge: no AGFW router holds a pending ACK entry without an armed
//     retransmit timer (a packet nobody will ever retry or drop).
func (n *Network) Audit() error {
	v := n.Collector.AuditViolations()
	cs := n.Channel.Stats()
	pending := n.Channel.PendingArrivals()
	if cs.Deliveries+cs.Collisions+pending != cs.RxFrozen {
		v = append(v, fmt.Sprintf("radio: deliveries=%d + collisions=%d + pending=%d != frozen-receivers=%d",
			cs.Deliveries, cs.Collisions, pending, cs.RxFrozen))
	}
	if cs.FadingLosses+cs.JamLosses > cs.Collisions {
		v = append(v, fmt.Sprintf("radio: fading=%d + jam=%d losses exceed total losses %d",
			cs.FadingLosses, cs.JamLosses, cs.Collisions))
	}
	for _, node := range n.Nodes {
		if node.AGFW == nil {
			continue
		}
		if u := node.AGFW.UnarmedPending(); u > 0 {
			v = append(v, fmt.Sprintf("wedge: node %d holds %d pending AGFW packets with no armed ACK timer", node.Index, u))
		}
	}
	if len(v) > 0 {
		return fmt.Errorf("core: audit: %s", strings.Join(v, "; "))
	}
	return nil
}

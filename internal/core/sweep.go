package core

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// DensityPoint is one row of a Figure 1 series: the metrics for one
// (protocol, node count) cell.
type DensityPoint struct {
	Protocol Protocol
	Nodes    int
	Result   Result
}

// PDF is shorthand for the row's packet delivery fraction (Figure 1a).
func (p DensityPoint) PDF() float64 { return p.Result.Summary.DeliveryFraction }

// Latency is shorthand for the row's average end-to-end latency
// (Figure 1b).
func (p DensityPoint) Latency() time.Duration { return p.Result.Summary.AvgLatency }

// PaperNodeCounts is the density axis of Figure 1: the paper sweeps from
// the 50-node baseline up past the 112-node crossover it calls out.
var PaperNodeCounts = []int{50, 75, 100, 112, 125, 150}

// DensitySweep runs base at each node count for each protocol and
// returns the grid of results row by row. Each cell gets a distinct
// derived seed so protocols face the same placements per density.
func DensitySweep(base Config, nodeCounts []int, protocols []Protocol) ([]DensityPoint, error) {
	return DensitySweepN(base, nodeCounts, protocols, 1)
}

// DensitySweepN is DensitySweep averaged over `repeats` independent
// seeds per cell, smoothing topology luck. Protocols share seeds within
// a cell so they face identical placements and flows.
func DensitySweepN(base Config, nodeCounts []int, protocols []Protocol, repeats int) ([]DensityPoint, error) {
	if repeats < 1 {
		repeats = 1
	}
	var out []DensityPoint
	for _, nn := range nodeCounts {
		for _, proto := range protocols {
			var acc []Result
			for rep := 0; rep < repeats; rep++ {
				cfg := base
				cfg.Nodes = nn
				cfg.Protocol = proto
				cfg.Seed = base.Seed + int64(nn)*1000 + int64(rep)
				res, err := Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("core: sweep cell (%v, %d nodes, rep %d): %w", proto, nn, rep, err)
				}
				acc = append(acc, res)
			}
			out = append(out, DensityPoint{Protocol: proto, Nodes: nn, Result: meanResult(acc)})
		}
	}
	return out, nil
}

// meanResult averages the summary metrics across repeats; counter-style
// fields are summed.
func meanResult(rs []Result) Result {
	if len(rs) == 1 {
		return rs[0]
	}
	out := rs[0]
	var pdf, hops float64
	var lat, p95 time.Duration
	for _, r := range rs[1:] {
		out.Summary.Sent += r.Summary.Sent
		out.Summary.Delivered += r.Summary.Delivered
		out.Summary.Duplicates += r.Summary.Duplicates
		out.Channel.Transmissions += r.Channel.Transmissions
		out.Channel.Collisions += r.Channel.Collisions
		out.Channel.Deliveries += r.Channel.Deliveries
		out.Channel.BitsSent += r.Channel.BitsSent
	}
	for _, r := range rs {
		pdf += r.Summary.DeliveryFraction
		hops += r.Summary.AvgHops
		lat += r.Summary.AvgLatency
		p95 += r.Summary.P95Latency
	}
	n := time.Duration(len(rs))
	out.Summary.DeliveryFraction = pdf / float64(len(rs))
	out.Summary.AvgHops = hops / float64(len(rs))
	out.Summary.AvgLatency = lat / n
	out.Summary.P95Latency = p95 / n
	return out
}

// WriteSweepTable renders sweep rows as an aligned table, one line per
// cell, mirroring how the paper's figures would be tabulated.
func WriteSweepTable(w io.Writer, points []DensityPoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "protocol\tnodes\tsent\tdelivered\tpdf\tavg_latency\tp95_latency\tavg_hops")
	for _, p := range points {
		s := p.Result.Summary
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.3f\t%v\t%v\t%.2f\n",
			p.Protocol, p.Nodes, s.Sent, s.Delivered, s.DeliveryFraction,
			s.AvgLatency.Round(10*time.Microsecond), s.P95Latency.Round(10*time.Microsecond), s.AvgHops)
	}
	return tw.Flush()
}

// WriteSweepCSV renders sweep rows as CSV for plotting.
func WriteSweepCSV(w io.Writer, points []DensityPoint) error {
	if _, err := fmt.Fprintln(w, "protocol,nodes,sent,delivered,pdf,avg_latency_ms,p95_latency_ms,avg_hops"); err != nil {
		return err
	}
	for _, p := range points {
		s := p.Result.Summary
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%.4f,%.3f,%.3f,%.2f\n",
			p.Protocol, p.Nodes, s.Sent, s.Delivered, s.DeliveryFraction,
			float64(s.AvgLatency)/1e6, float64(s.P95Latency)/1e6, s.AvgHops); err != nil {
			return err
		}
	}
	return nil
}

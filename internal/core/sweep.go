package core

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"anongeo/internal/exp"
)

// DensityPoint is one row of a Figure 1 series: the metrics for one
// (protocol, node count) cell.
type DensityPoint struct {
	Protocol Protocol
	Nodes    int
	Result   Result
}

// PDF is shorthand for the row's packet delivery fraction (Figure 1a).
func (p DensityPoint) PDF() float64 { return p.Result.Summary.DeliveryFraction }

// Latency is shorthand for the row's average end-to-end latency
// (Figure 1b).
func (p DensityPoint) Latency() time.Duration { return p.Result.Summary.AvgLatency }

// PaperNodeCounts is the density axis of Figure 1: the paper sweeps from
// the 50-node baseline up past the 112-node crossover it calls out.
var PaperNodeCounts = []int{50, 75, 100, 112, 125, 150}

// DensitySweep runs base at each node count for each protocol and
// returns the grid of results row by row. Each cell gets a distinct
// derived seed so protocols face the same placements per density.
func DensitySweep(base Config, nodeCounts []int, protocols []Protocol) ([]DensityPoint, error) {
	return DensitySweepN(base, nodeCounts, protocols, 1)
}

// DensitySweepN is DensitySweep averaged over `repeats` independent
// seeds per cell, smoothing topology luck. Protocols share seeds within
// a cell so they face identical placements and flows.
func DensitySweepN(base Config, nodeCounts []int, protocols []Protocol, repeats int) ([]DensityPoint, error) {
	return DensitySweepOpts(base, nodeCounts, protocols, SweepOptions{Repeats: repeats})
}

// SweepOptions tunes how a sweep grid executes; the zero value matches
// the historical serial-equivalent behavior (one repeat, GOMAXPROCS
// workers, no cache, no telemetry). Parallel execution is bit-for-bit
// identical to serial: every cell owns its seed-derived engine.
type SweepOptions struct {
	// Repeats is the number of independent seeds per cell (<1 → 1).
	Repeats int
	// Parallel bounds the worker pool; ≤0 means GOMAXPROCS, 1 is serial.
	Parallel int
	// CacheDir, when non-empty, memoizes cell results on disk there
	// (conventionally exp.DefaultCacheDir, ".expcache").
	CacheDir string
	// Retries re-runs a failed cell that many extra times with capped
	// backoff before giving up on it.
	Retries int
	// Hooks receive run telemetry (exp.NewProgress, exp.NewJSONL, …).
	Hooks []exp.Hook
}

// CellSeed derives the seed a sweep cell runs under, shared across
// protocols at the same (density, repeat) so they face identical
// placements and flows.
func CellSeed(base int64, nodes, rep int) int64 {
	return base + int64(nodes)*1000 + int64(rep)
}

// Cacheable reports whether a config's result may be served from the
// experiment cache. Configs with observable side effects (an attached
// trace log) or results carrying non-serializable state (a sniffer
// harvest) always execute.
func Cacheable(cfg Config) bool {
	return cfg.Trace == nil && !cfg.WithSniffer
}

// NewOrchestrator builds the experiment orchestrator the sweeps run on,
// wired for core configs: core.Run as the cell runner, the Cacheable
// exemption, and simulated-duration telemetry. Callers with bespoke
// grids (cmd/sweep's axis scans, cmd/figures' ablations) use it
// directly with their own cells.
func NewOrchestrator(opt SweepOptions) (*exp.Orchestrator[Config, Result], error) {
	o := &exp.Orchestrator[Config, Result]{
		Run:         Run,
		RunCtx:      RunContext,
		Parallel:    opt.Parallel,
		Retries:     opt.Retries,
		Cacheable:   Cacheable,
		SimDuration: func(c Config) time.Duration { return c.Duration },
		Hooks:       opt.Hooks,
	}
	if opt.CacheDir != "" {
		cache, err := exp.Open(opt.CacheDir)
		if err != nil {
			return nil, err
		}
		o.Cache = cache
	}
	return o, nil
}

// SweepCells expands a Figure 1 grid — (node count × protocol ×
// repeat) over a base config — into orchestrator cells in the fixed
// input order FoldSweep expects. Repeats below 1 are treated as 1.
func SweepCells(base Config, nodeCounts []int, protocols []Protocol, repeats int) []exp.Cell[Config] {
	if repeats < 1 {
		repeats = 1
	}
	var cells []exp.Cell[Config]
	for _, nn := range nodeCounts {
		for _, proto := range protocols {
			for rep := 0; rep < repeats; rep++ {
				cfg := base
				cfg.Nodes = nn
				cfg.Protocol = proto
				cfg.Seed = CellSeed(base.Seed, nn, rep)
				cells = append(cells, exp.Cell[Config]{
					Label:  fmt.Sprintf("%v/%d nodes/rep %d", proto, nn, rep),
					Config: cfg,
				})
			}
		}
	}
	return cells
}

// FoldSweep folds SweepCells outcomes (in input order) back into one
// DensityPoint per (node count, protocol) grid cell, averaging each
// cell's repeats with meanResult.
func FoldSweep(nodeCounts []int, protocols []Protocol, repeats int, outs []exp.Outcome[Result]) []DensityPoint {
	if repeats < 1 {
		repeats = 1
	}
	var points []DensityPoint
	i := 0
	for _, nn := range nodeCounts {
		for _, proto := range protocols {
			acc := make([]Result, repeats)
			for rep := 0; rep < repeats; rep++ {
				acc[rep] = outs[i].Value
				i++
			}
			points = append(points, DensityPoint{Protocol: proto, Nodes: nn, Result: meanResult(acc)})
		}
	}
	return points
}

// DensitySweepOpts is the fully tunable sweep: the Figure 1 grid
// executed on the exp orchestrator with optional parallelism, result
// caching, and telemetry.
func DensitySweepOpts(base Config, nodeCounts []int, protocols []Protocol, opt SweepOptions) ([]DensityPoint, error) {
	cells := SweepCells(base, nodeCounts, protocols, opt.Repeats)
	orch, err := NewOrchestrator(opt)
	if err != nil {
		return nil, err
	}
	outs, err := orch.Execute(cells)
	if err != nil {
		return nil, fmt.Errorf("core: sweep: %w", err)
	}
	// Outcomes arrive in input order: each consecutive run of `repeats`
	// outcomes folds into one grid point.
	return FoldSweep(nodeCounts, protocols, opt.Repeats, outs), nil
}

// meanResult folds per-repeat results into one cell: counter-style
// fields are summed and DeliveryFraction is re-derived from the summed
// Sent/Delivered counters, so the fraction and the counters it is
// quoted next to can never disagree. Latency and hop metrics are means
// of per-run values; in particular P95Latency across repeats is the
// mean of per-run p95s, not the p95 of the pooled latency population.
func meanResult(rs []Result) Result {
	if len(rs) == 1 {
		return rs[0]
	}
	out := rs[0]
	var hops float64
	var lat, p95 time.Duration
	for _, r := range rs[1:] {
		out.Summary.Sent += r.Summary.Sent
		out.Summary.Delivered += r.Summary.Delivered
		out.Summary.DroppedPackets += r.Summary.DroppedPackets
		out.Summary.InFlight += r.Summary.InFlight
		out.Summary.Duplicates += r.Summary.Duplicates
		out.Channel.Transmissions += r.Channel.Transmissions
		out.Channel.Collisions += r.Channel.Collisions
		out.Channel.Deliveries += r.Channel.Deliveries
		out.Channel.FadingLosses += r.Channel.FadingLosses
		out.Channel.JamLosses += r.Channel.JamLosses
		out.Channel.RxFrozen += r.Channel.RxFrozen
		out.Channel.BitsSent += r.Channel.BitsSent
	}
	for _, r := range rs {
		hops += r.Summary.AvgHops
		lat += r.Summary.AvgLatency
		p95 += r.Summary.P95Latency
	}
	n := time.Duration(len(rs))
	out.Summary.DeliveryFraction = 0
	if out.Summary.Sent > 0 {
		out.Summary.DeliveryFraction = float64(out.Summary.Delivered) / float64(out.Summary.Sent)
	}
	out.Summary.AvgHops = hops / float64(len(rs))
	out.Summary.AvgLatency = lat / n
	out.Summary.P95Latency = p95 / n
	return out
}

// WriteSweepTable renders sweep rows as an aligned table, one line per
// cell, mirroring how the paper's figures would be tabulated.
func WriteSweepTable(w io.Writer, points []DensityPoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "protocol\tnodes\tsent\tdelivered\tpdf\tavg_latency\tp95_latency\tavg_hops")
	for _, p := range points {
		s := p.Result.Summary
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.3f\t%v\t%v\t%.2f\n",
			p.Protocol, p.Nodes, s.Sent, s.Delivered, s.DeliveryFraction,
			s.AvgLatency.Round(10*time.Microsecond), s.P95Latency.Round(10*time.Microsecond), s.AvgHops)
	}
	return tw.Flush()
}

// WriteSweepCSV renders sweep rows as CSV for plotting.
func WriteSweepCSV(w io.Writer, points []DensityPoint) error {
	if _, err := fmt.Fprintln(w, "protocol,nodes,sent,delivered,pdf,avg_latency_ms,p95_latency_ms,avg_hops"); err != nil {
		return err
	}
	for _, p := range points {
		s := p.Result.Summary
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%.4f,%.3f,%.3f,%.2f\n",
			p.Protocol, p.Nodes, s.Sent, s.Delivered, s.DeliveryFraction,
			float64(s.AvgLatency)/1e6, float64(s.P95Latency)/1e6, s.AvgHops); err != nil {
			return err
		}
	}
	return nil
}

package core

import (
	"testing"
	"time"
)

// TestFigure1Shape asserts the qualitative relationships of the paper's
// Figure 1 on a reduced (fast) version of the calibrated workload:
//
//	(a) AGFW-noACK delivers clearly less than AGFW and GPSR, which are
//	    comparable; (b) at high density GPSR's latency rises well above
//	    AGFW's, while at the 50-node baseline they are the same order.
//
// The full-scale reproduction lives in cmd/figures and bench_test.go.
func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell simulation sweep")
	}
	cfg := DefaultConfig()
	cfg.Duration = 120 * time.Second
	cfg.PacketInterval = 300 * time.Millisecond
	cfg.PayloadBytes = 64

	run := func(proto Protocol, nodes int) Result {
		c := cfg
		c.Protocol = proto
		c.Nodes = nodes
		c.Seed = int64(nodes)
		res, err := Run(c)
		if err != nil {
			t.Fatalf("%v/%d: %v", proto, nodes, err)
		}
		return res
	}

	gpsr50 := run(ProtoGPSR, 50)
	agfw50 := run(ProtoAGFW, 50)
	noack50 := run(ProtoAGFWNoAck, 50)
	gpsr150 := run(ProtoGPSR, 150)
	agfw150 := run(ProtoAGFW, 150)
	noack150 := run(ProtoAGFWNoAck, 150)

	// Figure 1(a): AGFW ≈ GPSR at both densities.
	for _, c := range []struct {
		name       string
		gpsr, agfw float64
	}{
		{"50 nodes", gpsr50.Summary.DeliveryFraction, agfw50.Summary.DeliveryFraction},
		{"150 nodes", gpsr150.Summary.DeliveryFraction, agfw150.Summary.DeliveryFraction},
	} {
		if c.agfw < c.gpsr-0.1 {
			t.Errorf("F1a %s: AGFW pdf %.3f far below GPSR %.3f", c.name, c.agfw, c.gpsr)
		}
	}
	// Figure 1(a): noACK clearly below AGFW.
	if noack50.Summary.DeliveryFraction > agfw50.Summary.DeliveryFraction-0.04 {
		t.Errorf("F1a: noACK %.3f not clearly below AGFW %.3f at 50 nodes",
			noack50.Summary.DeliveryFraction, agfw50.Summary.DeliveryFraction)
	}
	if noack150.Summary.DeliveryFraction > agfw150.Summary.DeliveryFraction-0.04 {
		t.Errorf("F1a: noACK %.3f not clearly below AGFW %.3f at 150 nodes",
			noack150.Summary.DeliveryFraction, agfw150.Summary.DeliveryFraction)
	}

	// Figure 1(b): same order of magnitude at 50 nodes...
	if agfw50.Summary.AvgLatency > 5*gpsr50.Summary.AvgLatency {
		t.Errorf("F1b: at 50 nodes AGFW latency %v vs GPSR %v — not comparable",
			agfw50.Summary.AvgLatency, gpsr50.Summary.AvgLatency)
	}
	// ...and a clear GPSR blow-up at high density. The blow-up is a
	// saturation effect sensitive to topology luck, so measure it at the
	// slightly heavier 250 ms load averaged over three seeds.
	runDense := func(proto Protocol) time.Duration {
		var total time.Duration
		for seed := int64(1); seed <= 3; seed++ {
			c := cfg
			c.Protocol = proto
			c.Nodes = 150
			c.Seed = seed
			c.Duration = 180 * time.Second
			c.PacketInterval = 250 * time.Millisecond
			res, err := Run(c)
			if err != nil {
				t.Fatalf("dense %v seed %d: %v", proto, seed, err)
			}
			total += res.Summary.AvgLatency
		}
		return total / 3
	}
	gpsrDense := runDense(ProtoGPSR)
	agfwDense := runDense(ProtoAGFW)
	if gpsrDense < 2*agfwDense {
		t.Errorf("F1b: dense GPSR latency %v did not rise above AGFW %v", gpsrDense, agfwDense)
	}
}

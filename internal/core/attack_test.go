package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"anongeo/internal/exp"
	"anongeo/internal/fault"
	"anongeo/internal/neighbor"
)

// TestConfigValidateTrustKnobs range-checks the trust-defense knobs in
// the same table style as the fault knobs: overrides without the switch,
// and out-of-range EWMA / threshold / window parameters are rejected
// with field-naming errors instead of silently misbehaving.
func TestConfigValidateTrustKnobs(t *testing.T) {
	override := func(mutate func(*neighbor.TrustConfig)) func(*Config) {
		return func(c *Config) {
			tc := neighbor.DefaultTrustConfig()
			mutate(&tc)
			c.TrustRelay = true
			c.TrustOverride = &tc
		}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"trust off", func(c *Config) {}, true},
		{"trust on defaults", func(c *Config) { c.TrustRelay = true }, true},
		{"default override", override(func(tc *neighbor.TrustConfig) {}), true},
		{"override without switch", func(c *Config) {
			tc := neighbor.DefaultTrustConfig()
			c.TrustOverride = &tc
		}, false},
		{"alpha zero", override(func(tc *neighbor.TrustConfig) { tc.Alpha = 0 }), false},
		{"alpha above 1", override(func(tc *neighbor.TrustConfig) { tc.Alpha = 1.5 }), false},
		{"init score negative", override(func(tc *neighbor.TrustConfig) { tc.InitScore = -0.1 }), false},
		{"min score above 1", override(func(tc *neighbor.TrustConfig) { tc.MinScore = 1.5 }), false},
		{"quarantine negative", override(func(tc *neighbor.TrustConfig) { tc.QuarantineFor = -1 }), false},
		{"evidence timeout negative", override(func(tc *neighbor.TrustConfig) { tc.EvidenceTimeout = -time.Second }), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			c.mutate(&cfg)
			err := cfg.Validate()
			if c.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestTrustKnobsCacheKeyStable extends the exp-cache compatibility
// guarantee to the defense knobs: a defense-off config must serialize
// exactly as before this feature existed (same cache keys), while
// arming the defense must change the key.
func TestTrustKnobsCacheKeyStable(t *testing.T) {
	cfg := DefaultConfig()
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "Trust") {
		t.Errorf("defense-off trust knobs leak into canonical config JSON: %s", b)
	}
	cache, err := exp.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1, err := cache.Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	armed := cfg
	armed.TrustRelay = true
	k2, err := cache.Key(armed)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("arming the trust defense did not change the cache key")
	}
}

// attackPlan is the composed active-adversary plan the determinism and
// smoke tests share: all three attack kinds live at once.
func attackPlan() *fault.Plan {
	return &fault.Plan{Entries: []fault.Entry{
		{Kind: fault.KindBogusBeacon, Fraction: 0.15, P: 1},
		{Kind: fault.KindAckSpoof, Fraction: 0.1, P: 1},
		{Kind: fault.KindFlood, Fraction: 0.1, Rate: 15},
	}}
}

// TestAttackSweepParallelWidths pins the acceptance criterion that the
// active-adversary kinds — with the trust defense armed, exercising the
// watchdog, quarantine, and spoof-reconciliation paths — stay
// deterministic across orchestrator parallelism.
func TestAttackSweepParallelWidths(t *testing.T) {
	base := faultTestConfig(ProtoAGFW, 7)
	base.Duration = 10 * time.Second
	base.TrustRelay = true
	base.Faults = attackPlan()
	counts := []int{20, 25}
	protos := []Protocol{ProtoAGFW, ProtoGPSR}
	serial, err := DensitySweepOpts(base, counts, protos, SweepOptions{Repeats: 2, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := DensitySweepOpts(base, counts, protos, SweepOptions{Repeats: 2, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("parallel width changed attack-sweep results:\nserial: %+v\nwide:   %+v", serial, wide)
	}
}

// TestAttackDegradesDelivery is the tentpole's sanity floor: with the
// defense off, each attack kind must measurably hurt delivery versus the
// attack-free run of the same scenario and seed. (Deterministic runs
// make a strict per-seed inequality a stable assertion, not a flake.)
func TestAttackDegradesDelivery(t *testing.T) {
	cases := []struct {
		name  string
		proto Protocol
		entry fault.Entry
	}{
		{"bogus/gpsr", ProtoGPSR, fault.Entry{Kind: fault.KindBogusBeacon, Fraction: 0.25, P: 1}},
		{"bogus/agfw", ProtoAGFW, fault.Entry{Kind: fault.KindBogusBeacon, Fraction: 0.25, P: 1}},
		{"ackspoof/agfw", ProtoAGFW, fault.Entry{Kind: fault.KindAckSpoof, Fraction: 0.25, P: 1}},
		{"flood/agfw", ProtoAGFW, fault.Entry{Kind: fault.KindFlood, Fraction: 0.25, Rate: 60}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := faultTestConfig(c.proto, 3)
			cfg.Duration = 30 * time.Second
			clean, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Faults = &fault.Plan{Entries: []fault.Entry{c.entry}}
			attacked, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if clean.Summary.Sent == 0 || attacked.Summary.Sent == 0 {
				t.Fatal("no traffic generated; degradation check is vacuous")
			}
			if attacked.Summary.DeliveryFraction >= clean.Summary.DeliveryFraction {
				t.Errorf("attack did not degrade delivery: clean pdf=%.4f attacked pdf=%.4f",
					clean.Summary.DeliveryFraction, attacked.Summary.DeliveryFraction)
			}
		})
	}
}

// TestTrustDefenseMargin pins the defense's value on the scenario the CI
// chaos-smoke contract names: AGFW under a 20% bogus-beacon fleet, where
// trust-aware relaying must recover at least 5 delivery points over the
// undefended run. Determinism makes the once-measured margin (off=0.818,
// on=0.916 at this seed) hold exactly, so the threshold is a regression
// gate, not a statistical bet.
func TestTrustDefenseMargin(t *testing.T) {
	if testing.Short() {
		t.Skip("two 120 s runs at 40 nodes")
	}
	const wantMargin = 0.05
	var pdf [2]float64
	for i, def := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Protocol = ProtoAGFW
		cfg.Nodes = 40
		cfg.Duration = 120 * time.Second
		cfg.PacketInterval = 300 * time.Millisecond
		cfg.Seed = 1
		cfg.TrustRelay = def
		cfg.Faults = &fault.Plan{Entries: []fault.Entry{
			{Kind: fault.KindBogusBeacon, Fraction: 0.2, P: 1},
		}}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pdf[i] = r.Summary.DeliveryFraction
	}
	if pdf[1] < pdf[0]+wantMargin {
		t.Errorf("trust defense margin too thin: off pdf=%.4f on pdf=%.4f (want +%.2f)",
			pdf[0], pdf[1], wantMargin)
	}
}

// Package metrics collects the end-to-end measurements the paper's
// evaluation reports: packet delivery fraction and average end-to-end
// latency, plus hop counts and drop reasons for diagnosis.
package metrics

import (
	"fmt"
	"sort"
	"time"

	"anongeo/internal/sim"
)

// delivery records the first successful arrival of a packet.
type delivery struct {
	at   sim.Time
	hops int
}

// Collector accumulates per-packet events. It is single-threaded on the
// simulation engine, like everything else in the simulator.
type Collector struct {
	sent      map[uint64]sim.Time
	delivered map[uint64]delivery
	drops     map[string]int
	// dropped records per-packet terminal drops (first reason wins), the
	// categorized-drop leg of the end-of-run conservation audit:
	// Sent == Delivered + DroppedPackets + InFlight.
	dropped  map[uint64]string
	dupCount int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		sent:      make(map[uint64]sim.Time),
		delivered: make(map[uint64]delivery),
		drops:     make(map[string]int),
		dropped:   make(map[uint64]string),
	}
}

// PacketSent records that the application originated packet id at t.
func (c *Collector) PacketSent(id uint64, t sim.Time) {
	if _, dup := c.sent[id]; dup {
		panic(fmt.Sprintf("metrics: packet id %d sent twice", id))
	}
	c.sent[id] = t
}

// PacketDelivered records arrival at the destination. Duplicate
// deliveries (retransmission artifacts) are counted separately and do not
// affect latency, which always measures the first copy.
func (c *Collector) PacketDelivered(id uint64, t sim.Time, hops int) {
	if _, ok := c.sent[id]; !ok {
		panic(fmt.Sprintf("metrics: packet id %d delivered but never sent", id))
	}
	if _, ok := c.delivered[id]; ok {
		c.dupCount++
		return
	}
	c.delivered[id] = delivery{at: t, hops: hops}
}

// Drop counts a packet dropped for the given reason (for diagnosis; drops
// also show up as undelivered packets in the summary). Use DropPacket
// when the packet id is known so the drop is attributable in the
// conservation audit.
func (c *Collector) Drop(reason string) { c.drops[reason]++ }

// DropPacket records a terminal drop of a specific recorded packet: the
// reason counter increments like Drop, and the id joins the categorized
// set the conservation audit balances against Sent and Delivered. A
// packet dropped at several nodes (duplicate forwarding trees) keeps its
// first reason; a copy delivered elsewhere wins over any drop.
func (c *Collector) DropPacket(id uint64, reason string) {
	c.drops[reason]++
	if _, ok := c.dropped[id]; !ok {
		c.dropped[id] = reason
	}
}

// Unresolved reports whether id was originated but has neither a
// delivered copy nor a terminal drop — the in-flight remainder. The
// end-of-run spoofed-ack reconciliation uses it to attribute packets an
// attacker's forged acknowledgment silently stranded; ids the collector
// never saw (control-plane geocasts) report false.
func (c *Collector) Unresolved(id uint64) bool {
	if _, ok := c.sent[id]; !ok {
		return false
	}
	if _, ok := c.delivered[id]; ok {
		return false
	}
	_, dropped := c.dropped[id]
	return !dropped
}

// AuditViolations checks the collector's internal conservation
// invariants and returns one message per violation (empty when sound):
// every delivered or terminally-dropped id must have been originated,
// and the Sent == Delivered + DroppedPackets + InFlight identity must
// balance with a non-negative in-flight remainder.
func (c *Collector) AuditViolations() []string {
	var v []string
	phantom := 0
	for id := range c.dropped {
		if _, ok := c.sent[id]; !ok {
			phantom++
		}
	}
	if phantom > 0 {
		v = append(v, fmt.Sprintf("metrics: %d terminally dropped packet ids were never originated", phantom))
	}
	s := c.Summarize()
	if s.Delivered+s.DroppedPackets+s.InFlight != s.Sent {
		v = append(v, fmt.Sprintf("metrics: sent=%d != delivered=%d + dropped=%d + in-flight=%d",
			s.Sent, s.Delivered, s.DroppedPackets, s.InFlight))
	}
	if s.InFlight < 0 {
		v = append(v, fmt.Sprintf("metrics: negative in-flight count %d", s.InFlight))
	}
	return v
}

// Drops returns a copy of the per-reason drop counters.
func (c *Collector) Drops() map[string]int {
	out := make(map[string]int, len(c.drops))
	for k, v := range c.drops {
		out[k] = v
	}
	return out
}

// Summary is the aggregate view of one simulation run.
type Summary struct {
	Sent      int
	Delivered int
	// DroppedPackets counts originated packets with a recorded terminal
	// drop and no delivered copy; InFlight is the remainder — packets
	// that vanished without a terminal record (collision-lost broadcast
	// copies, adversarial silent drops) or were still moving at the end
	// of the run. Sent == Delivered + DroppedPackets + InFlight.
	DroppedPackets   int
	InFlight         int
	Duplicates       int
	DeliveryFraction float64
	AvgLatency       time.Duration
	P95Latency       time.Duration
	AvgHops          float64
	Drops            map[string]int
}

// Summarize computes the run's aggregates.
func (c *Collector) Summarize() Summary {
	s := Summary{
		Sent:       len(c.sent),
		Delivered:  len(c.delivered),
		Duplicates: c.dupCount,
		Drops:      c.Drops(),
	}
	for id := range c.dropped {
		if _, ok := c.delivered[id]; !ok {
			s.DroppedPackets++
		}
	}
	s.InFlight = s.Sent - s.Delivered - s.DroppedPackets
	if s.Sent > 0 {
		s.DeliveryFraction = float64(s.Delivered) / float64(s.Sent)
	}
	if s.Delivered == 0 {
		return s
	}
	latencies := make([]time.Duration, 0, s.Delivered)
	var totalLat time.Duration
	var totalHops int
	for id, d := range c.delivered {
		lat := d.at.Sub(c.sent[id])
		latencies = append(latencies, lat)
		totalLat += lat
		totalHops += d.hops
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	s.AvgLatency = totalLat / time.Duration(s.Delivered)
	s.P95Latency = latencies[len(latencies)*95/100]
	s.AvgHops = float64(totalHops) / float64(s.Delivered)
	return s
}

// String renders the summary as a one-line report.
func (s Summary) String() string {
	return fmt.Sprintf("sent=%d delivered=%d pdf=%.3f avg_latency=%v p95=%v avg_hops=%.2f",
		s.Sent, s.Delivered, s.DeliveryFraction, s.AvgLatency, s.P95Latency, s.AvgHops)
}

package metrics

import (
	"testing"
	"time"

	"anongeo/internal/sim"
)

func TestEmptySummary(t *testing.T) {
	s := NewCollector().Summarize()
	if s.Sent != 0 || s.Delivered != 0 || s.DeliveryFraction != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestDeliveryFraction(t *testing.T) {
	c := NewCollector()
	for i := uint64(1); i <= 10; i++ {
		c.PacketSent(i, 0)
	}
	for i := uint64(1); i <= 7; i++ {
		c.PacketDelivered(i, sim.Time(10*sim.Millisecond), 3)
	}
	s := c.Summarize()
	if s.DeliveryFraction != 0.7 {
		t.Fatalf("pdf = %v, want 0.7", s.DeliveryFraction)
	}
	if s.AvgHops != 3 {
		t.Fatalf("hops = %v", s.AvgHops)
	}
}

func TestLatencyStats(t *testing.T) {
	c := NewCollector()
	c.PacketSent(1, sim.Time(sim.Second))
	c.PacketDelivered(1, sim.Time(sim.Second+5*sim.Millisecond), 1)
	c.PacketSent(2, sim.Time(2*sim.Second))
	c.PacketDelivered(2, sim.Time(2*sim.Second+15*sim.Millisecond), 2)
	s := c.Summarize()
	if s.AvgLatency != 10*time.Millisecond {
		t.Fatalf("avg latency = %v, want 10ms", s.AvgLatency)
	}
	if s.P95Latency != 15*time.Millisecond {
		t.Fatalf("p95 = %v", s.P95Latency)
	}
}

func TestDuplicateDeliveryKeepsFirst(t *testing.T) {
	c := NewCollector()
	c.PacketSent(1, 0)
	c.PacketDelivered(1, sim.Time(5*sim.Millisecond), 2)
	c.PacketDelivered(1, sim.Time(50*sim.Millisecond), 9)
	s := c.Summarize()
	if s.Delivered != 1 || s.Duplicates != 1 {
		t.Fatalf("delivered=%d dups=%d", s.Delivered, s.Duplicates)
	}
	if s.AvgLatency != 5*time.Millisecond {
		t.Fatalf("latency uses duplicate: %v", s.AvgLatency)
	}
}

func TestDoubleSendPanics(t *testing.T) {
	c := NewCollector()
	c.PacketSent(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double PacketSent did not panic")
		}
	}()
	c.PacketSent(1, 0)
}

func TestDeliverUnknownPanics(t *testing.T) {
	c := NewCollector()
	defer func() {
		if recover() == nil {
			t.Fatal("delivery of unsent packet did not panic")
		}
	}()
	c.PacketDelivered(7, 0, 1)
}

func TestDropAccounting(t *testing.T) {
	c := NewCollector()
	c.Drop("dead-end")
	c.Drop("dead-end")
	c.Drop("retry-exhausted")
	d := c.Drops()
	if d["dead-end"] != 2 || d["retry-exhausted"] != 1 {
		t.Fatalf("drops = %v", d)
	}
	// Returned map is a copy.
	d["dead-end"] = 99
	if c.Drops()["dead-end"] != 2 {
		t.Fatal("Drops returned aliased map")
	}
}

func TestSummaryString(t *testing.T) {
	c := NewCollector()
	c.PacketSent(1, 0)
	c.PacketDelivered(1, sim.Time(sim.Millisecond), 1)
	if s := c.Summarize().String(); s == "" {
		t.Fatal("empty String()")
	}
}

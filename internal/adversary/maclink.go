package adversary

import (
	"sort"

	"anongeo/internal/mac"
	"anongeo/internal/routing/agfw"
)

// MACLinkAttack implements the §3.2 linking attack against a
// misconfigured AGFW deployment whose frames carry real source MAC
// addresses. The eavesdropper correlates consecutive transmissions of the
// same packet (same packet identifier — in the paper, the same trapdoor
// bytes): if hop k names next-hop pseudonym n and hop k+1 is transmitted
// from MAC address A, then A owns n, and every hello position advertised
// under n (and the sender positions of all of A's frames) de-anonymize A.
//
// It returns the pseudonym → MAC bindings the adversary established. In a
// correctly configured AGFW network (broadcast source addresses) the
// result is empty.
func MACLinkAttack(obs []Observation) map[string]mac.Addr {
	sorted := append([]Observation(nil), obs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	bindings := make(map[string]mac.Addr)
	// For each packet id, the pseudonym its latest observed header named.
	lastNamed := make(map[uint64]string)
	for _, o := range sorted {
		p, ok := o.Frame.Payload.(*agfw.Packet)
		if !ok {
			continue
		}
		if prev, seen := lastNamed[p.PktID]; seen && !o.Frame.Src.IsBroadcast() {
			// This transmission is the committed forwarder previously
			// named `prev` moving the packet onward.
			if prev != "" {
				bindings[prev] = o.Frame.Src
			}
		}
		if p.N.IsLastHop() {
			lastNamed[p.PktID] = ""
		} else {
			lastNamed[p.PktID] = p.N.String()
		}
	}
	return bindings
}

package adversary

import (
	"math"
	"testing"

	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// mkTrack builds a track of one sighting per pseudonym, one second and
// one meter apart.
func mkTrack(pseudonyms ...string) *Track {
	tr := &Track{}
	for i, ps := range pseudonyms {
		tr.Sightings = append(tr.Sightings, Sighting{At: sim.Time(i) * sim.Second, Loc: geo.Pt(float64(i), 0)})
		tr.Pseudonyms = append(tr.Pseudonyms, ps)
	}
	return tr
}

func TestScoreTracksPerfectLinking(t *testing.T) {
	tracks := []*Track{mkTrack("p1", "p2", "p3"), mkTrack("q1", "q2")}
	truth := map[string]string{"p1": "a", "p2": "a", "p3": "a", "q1": "b", "q2": "b"}
	sc := ScoreTracks(tracks, truth)
	if sc.Tracks != 2 || sc.Linked != 2 {
		t.Fatalf("want 2 linked tracks, got %+v", sc)
	}
	if sc.LinkedFraction != 1 || sc.ReidentifiedFraction != 1 {
		t.Fatalf("perfect linking should score 1/1, got %+v", sc)
	}
	if math.Abs(sc.MeanDurationS-1.5) > 1e-9 || sc.LongestDurationS != 2 {
		t.Fatalf("want mean 1.5s and longest 2s, got %+v", sc)
	}
}

func TestScoreTracksFragmentation(t *testing.T) {
	// Every pseudonym its own track: nothing was linked, durations zero.
	tracks := []*Track{mkTrack("p1"), mkTrack("p2"), mkTrack("p3")}
	truth := map[string]string{"p1": "a", "p2": "a", "p3": "a"}
	sc := ScoreTracks(tracks, truth)
	if sc.Linked != 0 || sc.LinkedFraction != 0 || sc.ReidentifiedFraction != 0 {
		t.Fatalf("fragmented tracks should score zero linking, got %+v", sc)
	}
	if sc.MeanDurationS != 0 || sc.LongestDurationS != 0 {
		t.Fatalf("single-sighting tracks have zero duration, got %+v", sc)
	}
}

func TestScoreTracksImpureTrack(t *testing.T) {
	// One track that merged three pseudonyms of a with one of b: the
	// linker covered everything but is only 3/4 correct.
	tracks := []*Track{mkTrack("p1", "p2", "q1", "p3")}
	truth := map[string]string{"p1": "a", "p2": "a", "p3": "a", "q1": "b"}
	sc := ScoreTracks(tracks, truth)
	if sc.LinkedFraction != 1 {
		t.Fatalf("all sightings are in a linked track, got %+v", sc)
	}
	if sc.ReidentifiedFraction != 0.75 {
		t.Fatalf("want purity 0.75, got %+v", sc)
	}
}

func TestScoreTracksIgnoresUnknownPseudonyms(t *testing.T) {
	tracks := []*Track{mkTrack("p1", "mystery", "p2")}
	truth := map[string]string{"p1": "a", "p2": "a"}
	sc := ScoreTracks(tracks, truth)
	if sc.ReidentifiedFraction != 1 || sc.LinkedFraction != 1 {
		t.Fatalf("unlabeled pseudonyms must not dilute scoring, got %+v", sc)
	}
	if sc := ScoreTracks(nil, nil); sc != (TrackScore{}) {
		t.Fatalf("empty input should score zero, got %+v", sc)
	}
}

// ScoreTracks composed with the real linker: a lone node rotating
// pseudonyms is fully re-identified, matching what the linker tests
// assert structurally.
func TestScoreTracksWithLinker(t *testing.T) {
	byPs := map[string][]Sighting{}
	truth := map[string]string{}
	for i := 0; i < 10; i++ {
		ps := string(rune('a' + i))
		byPs[ps] = []Sighting{{At: sim.Time(i) * sim.Second, Loc: geo.Pt(float64(i*10), 0)}}
		truth[ps] = "node0"
	}
	sc := ScoreTracks(LinkPseudonyms(byPs, DefaultLinkerConfig()), truth)
	if sc.Tracks != 1 || sc.Linked != 1 {
		t.Fatalf("lone walker should link into one track, got %+v", sc)
	}
	if sc.ReidentifiedFraction != 1 || sc.LongestDurationS != 9 {
		t.Fatalf("lone walker fully re-identified over 9s, got %+v", sc)
	}
}

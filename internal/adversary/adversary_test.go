package adversary

import (
	"fmt"
	"testing"
	"time"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/metrics"
	"anongeo/internal/mobility"
	"anongeo/internal/radio"
	"anongeo/internal/routing/agfw"
	"anongeo/internal/routing/gpsr"
	"anongeo/internal/sim"
)

// buildGPSRNet runs a 4-node GPSR line with a global sniffer and returns
// the harvest after `dur`.
func buildGPSRNet(t *testing.T, dur time.Duration) *Harvest {
	t.Helper()
	eng := sim.NewEngine(1)
	ch := radio.NewChannel(eng, 250)
	sn := NewSniffer(eng, ch, geo.Pt(300, 0), 1e9)
	col := metrics.NewCollector()
	var routers []*gpsr.Router
	for i := 0; i < 4; i++ {
		id := anoncrypto.Identity(fmt.Sprintf("n%d", i))
		d := mac.New(eng, ch, mobility.Static{At: geo.Pt(float64(i)*200, 0)}, mac.DefaultParams(), mac.AddrFromUint64(uint64(i+1)), nil, eng.NewStream())
		r := gpsr.New(eng, d, id, d.Iface().Pos, gpsr.DefaultConfig(), col, nil, eng.NewStream())
		r.Start()
		routers = append(routers, r)
	}
	eng.Schedule(5*time.Second, func() { routers[0].SendData("n3", geo.Pt(600, 0), 64, 1) })
	if err := eng.Run(dur); err != nil {
		t.Fatal(err)
	}
	return HarvestObservations(sn.Observations())
}

// buildAGFWNet runs the same line under AGFW. exposeMAC simulates the
// §3.2 misconfiguration.
func buildAGFWNet(t *testing.T, dur time.Duration, exposeMAC bool) (*Harvest, []Observation) {
	t.Helper()
	eng := sim.NewEngine(1)
	ch := radio.NewChannel(eng, 250)
	sn := NewSniffer(eng, ch, geo.Pt(300, 0), 1e9)
	col := metrics.NewCollector()
	var routers []*agfw.Router
	for i := 0; i < 4; i++ {
		id := anoncrypto.Identity(fmt.Sprintf("n%d", i))
		addr := mac.Broadcast
		if exposeMAC {
			addr = mac.AddrFromUint64(uint64(i + 1))
		}
		d := mac.New(eng, ch, mobility.Static{At: geo.Pt(float64(i)*200, 0)}, mac.DefaultParams(), addr, nil, eng.NewStream())
		r := agfw.New(eng, d, id, d.Iface().Pos, agfw.NewModeledScheme(id), agfw.DefaultConfig(), col, nil, eng.NewStream())
		r.Start()
		routers = append(routers, r)
	}
	eng.Schedule(5*time.Second, func() { routers[0].SendData("n3", geo.Pt(600, 0), 64, 1) })
	if err := eng.Run(dur); err != nil {
		t.Fatal(err)
	}
	if col.Summarize().Delivered != 1 {
		t.Fatalf("AGFW run failed to deliver: %v", col.Drops())
	}
	return HarvestObservations(sn.Observations()), sn.Observations()
}

func TestGPSRLeaksIdentityLocationPairs(t *testing.T) {
	h := buildGPSRNet(t, 20*time.Second)
	if len(h.ByIdentity) < 4 {
		t.Fatalf("adversary learned %d identities from GPSR, want all 4", len(h.ByIdentity))
	}
	// Beacons pin every node repeatedly: strong tracking coverage.
	cov := Coverage(h.ByIdentity["n1"], 20*sim.Second, 3*sim.Second)
	if cov < 0.8 {
		t.Fatalf("GPSR tracking coverage = %.2f, want near-continuous", cov)
	}
	if len(h.ByMAC) == 0 {
		t.Fatal("GPSR frames should expose MAC addresses")
	}
}

func TestAGFWExposesNoIdentityOrMAC(t *testing.T) {
	h, _ := buildAGFWNet(t, 20*time.Second, false)
	if len(h.ByIdentity) != 0 {
		t.Fatalf("adversary learned identities from AGFW: %v", h.ByIdentity)
	}
	if len(h.ByMAC) != 0 {
		t.Fatal("AGFW frames exposed MAC addresses")
	}
	if len(h.ByPseudonym) == 0 {
		t.Fatal("sniffer should still see pseudonymous hellos")
	}
	if h.TrapdoorSightings == 0 {
		t.Fatal("sniffer should see data headers going toward locations")
	}
	// Every pseudonym appears in very few sightings (fresh per hello).
	for ps, ss := range h.ByPseudonym {
		if len(ss) > 2 {
			t.Fatalf("pseudonym %s reused %d times", ps, len(ss))
		}
	}
}

func TestMACLinkAttackOnMisconfiguredAGFW(t *testing.T) {
	_, obsBad := buildAGFWNet(t, 20*time.Second, true)
	bindings := MACLinkAttack(obsBad)
	if len(bindings) == 0 {
		t.Fatal("misconfigured AGFW resisted the MAC-linking attack; expected bindings")
	}
	_, obsGood := buildAGFWNet(t, 20*time.Second, false)
	if got := MACLinkAttack(obsGood); len(got) != 0 {
		t.Fatalf("properly configured AGFW yielded %d bindings, want 0", len(got))
	}
}

func TestPseudonymLinkerOnIsolatedNode(t *testing.T) {
	// A single node beaconing from a slowly moving position is linkable:
	// the linker should chain most of its pseudonyms into one track.
	sightings := map[string][]Sighting{}
	for i := 0; i < 10; i++ {
		ps := fmt.Sprintf("p%02d", i)
		sightings[ps] = []Sighting{{
			At:  sim.Time(i) * sim.Second,
			Loc: geo.Pt(float64(i)*10, 0), // 10 m/s drift
		}}
	}
	tracks := LinkPseudonyms(sightings, DefaultLinkerConfig())
	if len(tracks) != 1 {
		t.Fatalf("linker built %d tracks for one lone node, want 1", len(tracks))
	}
	if got := len(tracks[0].Pseudonyms); got != 10 {
		t.Fatalf("linked %d pseudonyms, want 10", got)
	}
	if LongestTrack(tracks).Duration() != 9*sim.Second {
		t.Fatalf("track duration = %v", LongestTrack(tracks).Duration())
	}
}

func TestPseudonymLinkerRespectsSpeedBound(t *testing.T) {
	// Two nodes far apart beaconing alternately: linking them would need
	// teleportation, so the linker must keep two tracks.
	sightings := map[string][]Sighting{
		"a1": {{At: 0, Loc: geo.Pt(0, 0)}},
		"b1": {{At: sim.Second / 2, Loc: geo.Pt(1000, 0)}},
		"a2": {{At: sim.Second, Loc: geo.Pt(5, 0)}},
		"b2": {{At: 3 * sim.Second / 2, Loc: geo.Pt(1005, 0)}},
	}
	tracks := LinkPseudonyms(sightings, DefaultLinkerConfig())
	if len(tracks) != 2 {
		t.Fatalf("linker built %d tracks, want 2 (speed bound violated)", len(tracks))
	}
}

func TestPseudonymLinkerConfusedByDensity(t *testing.T) {
	// Many co-located nodes beaconing: the linker cannot tell them apart
	// but also cannot build confident long per-node tracks — merged
	// tracks mix pseudonyms of different nodes. We check that linking
	// no longer yields one track per node.
	sightings := map[string][]Sighting{}
	n := 0
	for round := 0; round < 5; round++ {
		for node := 0; node < 8; node++ {
			n++
			ps := fmt.Sprintf("p%03d", n)
			sightings[ps] = []Sighting{{
				At:  sim.Time(round)*sim.Second + sim.Time(node)*sim.Millisecond,
				Loc: geo.Pt(float64(node)*3, 0), // all within a few meters
			}}
		}
	}
	tracks := LinkPseudonyms(sightings, DefaultLinkerConfig())
	if len(tracks) == 8 {
		t.Fatal("linker cleanly separated co-located nodes; should be confused")
	}
}

func TestCoverage(t *testing.T) {
	ss := []Sighting{
		{At: 0},
		{At: 2 * sim.Second},
		{At: 10 * sim.Second},
	}
	// window 1s → covered [0,1)∪[2,3)∪[10,11) = 3 of 20 s.
	got := Coverage(ss, 20*sim.Second, sim.Second)
	if got < 0.149 || got > 0.151 {
		t.Fatalf("Coverage = %v, want 0.15", got)
	}
	// Overlapping windows merge.
	got = Coverage(ss, 20*sim.Second, 5*sim.Second)
	if got < 0.59 || got > 0.61 {
		t.Fatalf("Coverage = %v, want 0.6 ([0,7)+[10,15))", got)
	}
	if Coverage(nil, 20*sim.Second, sim.Second) != 0 {
		t.Fatal("empty coverage not 0")
	}
	if Coverage(ss, 0, sim.Second) != 0 {
		t.Fatal("zero horizon not 0")
	}
}

func TestSnifferRangeLimited(t *testing.T) {
	eng := sim.NewEngine(2)
	ch := radio.NewChannel(eng, 250)
	near := NewSniffer(eng, ch, geo.Pt(0, 0), 100)
	d := mac.New(eng, ch, mobility.Static{At: geo.Pt(500, 0)}, mac.DefaultParams(), mac.AddrFromUint64(1), nil, eng.NewStream())
	eng.Schedule(0, func() { d.Send(mac.Broadcast, "x", 10, nil) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(near.Observations()) != 0 {
		t.Fatal("sniffer heard a sender outside its range")
	}
}

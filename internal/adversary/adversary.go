// Package adversary implements the paper's threat model (§2) as
// measurement instruments: passive sniffers that overhear frames, and
// trackers that try to rebuild (identity, location, time) associations
// from what the protocols leak.
//
// Against GPSR the tracker reads identities straight out of beacons and
// data headers. Against AGFW it only sees one-shot pseudonyms and
// destination coordinates, so the best it can do is heuristic pseudonym
// linking — and, if a node is misconfigured to put its real MAC address
// on broadcasts (the §3.2 warning), the MAC-address linking attack that
// re-identifies pseudonyms.
package adversary

import (
	"sort"

	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/neighbor"
	"anongeo/internal/radio"
	"anongeo/internal/routing/agfw"
	"anongeo/internal/routing/gpsr"
	"anongeo/internal/sim"
)

// Observation is one overheard frame: when, from where, and its contents.
type Observation struct {
	At        sim.Time
	SenderPos geo.Point
	Frame     *mac.Frame
}

// Sniffer is a passive eavesdropper parked at a position: it records
// every frame whose sender is within its listening range. Use range
// >= the deployment diagonal for a global observer.
type Sniffer struct {
	Pos   geo.Point
	Range float64

	observations []Observation
	clock        func() sim.Time
}

var _ radio.Tap = (*Sniffer)(nil)

// NewSniffer creates a sniffer and registers it on the channel.
func NewSniffer(eng *sim.Engine, ch *radio.Channel, pos geo.Point, rng float64) *Sniffer {
	s := &Sniffer{Pos: pos, Range: rng, clock: eng.Now}
	ch.AddTap(s)
	return s
}

// OnTransmit implements radio.Tap.
func (s *Sniffer) OnTransmit(tx *radio.Transmission) {
	if tx.SenderPos.Dist(s.Pos) > s.Range {
		return
	}
	f, ok := tx.Payload.(*mac.Frame)
	if !ok {
		return
	}
	s.observations = append(s.observations, Observation{
		At:        s.clock(),
		SenderPos: tx.SenderPos,
		Frame:     f,
	})
}

// OnDeliver implements radio.Tap (passive sniffers only watch the air).
func (s *Sniffer) OnDeliver(radio.NodeID, geo.Point, *radio.Transmission) {}

// Observations returns everything overheard so far.
func (s *Sniffer) Observations() []Observation { return s.observations }

// Sighting is a reconstructed (identifier, location, time) triple. The
// identifier's nature depends on the attack: a real identity, a MAC
// address, or a pseudonym.
type Sighting struct {
	At  sim.Time
	Loc geo.Point
}

// Harvest distills observations into per-identifier sighting sets under
// three views, mirroring §2's collection channels.
type Harvest struct {
	// ByIdentity: identities exposed with a position (GPSR beacons are
	// sender-positioned; GPSR data headers expose src/dst identities and
	// the destination's position).
	ByIdentity map[string][]Sighting
	// ByMAC: link-layer source addresses with sender positions. Empty
	// when every frame uses the broadcast source address (AGFW's rule).
	ByMAC map[mac.Addr][]Sighting
	// ByPseudonym: AGFW hello pseudonyms with advertised positions.
	ByPseudonym map[string][]Sighting
	// TrapdoorSightings counts AGFW data headers seen — the adversary
	// observes "packets going toward certain locations" but no identity.
	TrapdoorSightings int
}

// HarvestObservations runs the extraction over a sniffer's log.
func HarvestObservations(obs []Observation) *Harvest {
	h := &Harvest{
		ByIdentity:  make(map[string][]Sighting),
		ByMAC:       make(map[mac.Addr][]Sighting),
		ByPseudonym: make(map[string][]Sighting),
	}
	for _, o := range obs {
		if !o.Frame.Src.IsBroadcast() {
			h.ByMAC[o.Frame.Src] = append(h.ByMAC[o.Frame.Src], Sighting{At: o.At, Loc: o.SenderPos})
		}
		switch p := o.Frame.Payload.(type) {
		case *gpsr.Beacon:
			h.ByIdentity[string(p.ID)] = append(h.ByIdentity[string(p.ID)], Sighting{At: o.At, Loc: p.Loc})
		case *gpsr.Packet:
			// The data header pins the destination's identity to its
			// coordinates for every relay and eavesdropper on the path.
			h.ByIdentity[string(p.Dst)] = append(h.ByIdentity[string(p.Dst)], Sighting{At: o.At, Loc: p.DstLoc})
		case neighbor.Hello:
			h.ByPseudonym[p.N.String()] = append(h.ByPseudonym[p.N.String()], Sighting{At: o.At, Loc: p.Loc})
		case *agfw.Packet:
			h.TrapdoorSightings++
		}
	}
	return h
}

// Coverage reports the fraction of [0, horizon] during which the
// identifier's position is "known": each sighting is considered valid
// for `window` afterward. This is the tracking metric of §1's scenario —
// "all of your movements recorded every few seconds".
func Coverage(sightings []Sighting, horizon sim.Time, window sim.Time) float64 {
	if horizon <= 0 || len(sightings) == 0 {
		return 0
	}
	ss := append([]Sighting(nil), sightings...)
	sort.Slice(ss, func(i, j int) bool { return ss[i].At < ss[j].At })
	var covered sim.Time
	var curStart, curEnd sim.Time = -1, -1
	for _, s := range ss {
		start, end := s.At, s.At+window
		if end > horizon {
			end = horizon
		}
		if start >= horizon {
			break
		}
		if curEnd < 0 {
			curStart, curEnd = start, end
			continue
		}
		if start <= curEnd {
			if end > curEnd {
				curEnd = end
			}
			continue
		}
		covered += curEnd - curStart
		curStart, curEnd = start, end
	}
	if curEnd >= 0 {
		covered += curEnd - curStart
	}
	return float64(covered) / float64(horizon)
}

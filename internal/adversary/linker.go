package adversary

import (
	"sort"

	"anongeo/internal/sim"
)

// This file implements the heuristic attacks on AGFW's pseudonym layer.

// Track is a chain of sightings the linker believes belong to one
// physical node.
type Track struct {
	Sightings []Sighting
	// Pseudonyms lists the pseudonym strings the linker merged.
	Pseudonyms []string
}

// Duration reports the track's time span.
func (t *Track) Duration() sim.Time {
	if len(t.Sightings) == 0 {
		return 0
	}
	return t.Sightings[len(t.Sightings)-1].At - t.Sightings[0].At
}

// LinkerConfig parameterizes the pseudonym-linking heuristic.
type LinkerConfig struct {
	// MaxSpeed bounds node movement: two sightings can only belong to
	// the same node if their displacement is reachable at this speed.
	MaxSpeed float64
	// MaxGap is the longest silence after which a track goes cold.
	MaxGap sim.Time
	// Slack is the positional tolerance (GPS error, beacon staleness).
	Slack float64
}

// DefaultLinkerConfig matches the paper's mobility (20 m/s).
func DefaultLinkerConfig() LinkerConfig {
	return LinkerConfig{MaxSpeed: 20, MaxGap: 5 * sim.Second, Slack: 5}
}

// pseudoSighting is one hello observation with its pseudonym.
type pseudoSighting struct {
	ps string
	s  Sighting
}

// LinkPseudonyms runs a greedy movement-consistency linker over hello
// sightings: it assigns each new pseudonym sighting to the most recently
// updated track that could have moved there in time, creating a new
// track otherwise. In sparse neighborhoods this re-identifies
// trajectories despite pseudonym rotation (an honest limitation of the
// scheme: AGFW is not route- or trajectory-untraceable, §4); in dense
// neighborhoods tracks confuse and fragment.
func LinkPseudonyms(byPseudonym map[string][]Sighting, cfg LinkerConfig) []*Track {
	var all []pseudoSighting
	for ps, ss := range byPseudonym {
		for _, s := range ss {
			all = append(all, pseudoSighting{ps: ps, s: s})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s.At != all[j].s.At {
			return all[i].s.At < all[j].s.At
		}
		return all[i].ps < all[j].ps
	})

	var tracks []*Track
	for _, o := range all {
		var best *Track
		var bestAt sim.Time = -1
		for _, tr := range tracks {
			last := tr.Sightings[len(tr.Sightings)-1]
			dt := o.s.At - last.At
			if dt < 0 || dt > cfg.MaxGap {
				continue
			}
			reach := cfg.MaxSpeed*dt.Seconds() + cfg.Slack
			if last.Loc.Dist(o.s.Loc) > reach {
				continue
			}
			if last.At > bestAt {
				best, bestAt = tr, last.At
			}
		}
		if best == nil {
			tracks = append(tracks, &Track{
				Sightings:  []Sighting{o.s},
				Pseudonyms: []string{o.ps},
			})
			continue
		}
		best.Sightings = append(best.Sightings, o.s)
		if best.Pseudonyms[len(best.Pseudonyms)-1] != o.ps {
			best.Pseudonyms = append(best.Pseudonyms, o.ps)
		}
	}
	return tracks
}

// LongestTrack returns the track with the greatest duration, or nil.
func LongestTrack(tracks []*Track) *Track {
	var best *Track
	for _, tr := range tracks {
		if best == nil || tr.Duration() > best.Duration() {
			best = tr
		}
	}
	return best
}

package adversary

// TrackScore grades a linker's output against ground truth: how much of
// the sighting population it managed to chain together, for how long,
// and how often the chains are actually right. lbs sweeps and the
// linker tests share this one scoring path.
type TrackScore struct {
	// Tracks is the number of tracks the linker produced; fragmentation
	// (privacy holding up) pushes it toward the sighting count.
	Tracks int `json:"tracks"`
	// Linked counts tracks that merged at least two pseudonyms — the
	// ones that defeated pseudonym rotation at all.
	Linked int `json:"linked"`
	// MeanDurationS / LongestDurationS are track time spans in seconds,
	// the "how long can you be followed" metric.
	MeanDurationS    float64 `json:"mean_duration_s"`
	LongestDurationS float64 `json:"longest_duration_s"`
	// LinkedFraction is the fraction of ground-truth-known pseudonyms
	// that ended up in a multi-pseudonym track.
	LinkedFraction float64 `json:"linked_fraction"`
	// ReidentifiedFraction is the owner purity of the multi-pseudonym
	// tracks: of their known pseudonyms, the fraction belonging to each
	// track's majority owner. High LinkedFraction with high
	// ReidentifiedFraction means the linker is both covering and
	// correct — privacy has failed.
	ReidentifiedFraction float64 `json:"reidentified_fraction"`
}

// ScoreTracks grades tracks against truth, a map from pseudonym to the
// true owner identity. Pseudonyms missing from truth are ignored (the
// linker may have chewed on sightings the caller has no labels for).
// Each pseudonym is assumed to belong to a single owner, which holds
// for one-shot pseudonyms and for AGFW's per-rotation pseudonyms alike.
func ScoreTracks(tracks []*Track, truth map[string]string) TrackScore {
	var sc TrackScore
	var durSum float64
	var knownTotal, linkedKnown, linkedMajority int
	for _, tr := range tracks {
		sc.Tracks++
		d := tr.Duration().Seconds()
		durSum += d
		if d > sc.LongestDurationS {
			sc.LongestDurationS = d
		}
		linked := len(tr.Pseudonyms) >= 2
		if linked {
			sc.Linked++
		}
		counts := make(map[string]int)
		known := 0
		for _, ps := range tr.Pseudonyms {
			owner, ok := truth[ps]
			if !ok {
				continue
			}
			known++
			counts[owner]++
		}
		knownTotal += known
		if !linked {
			continue
		}
		majority := 0
		for _, c := range counts {
			if c > majority {
				majority = c
			}
		}
		linkedKnown += known
		linkedMajority += majority
	}
	if sc.Tracks > 0 {
		sc.MeanDurationS = durSum / float64(sc.Tracks)
	}
	if knownTotal > 0 {
		sc.LinkedFraction = float64(linkedKnown) / float64(knownTotal)
	}
	if linkedKnown > 0 {
		sc.ReidentifiedFraction = float64(linkedMajority) / float64(linkedKnown)
	}
	return sc
}

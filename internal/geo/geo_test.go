package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{0, 0}, Point{250, 0}, 250},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want) {
			t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
		if got := tt.p.Dist2(tt.q); !almostEqual(got, tt.want*tt.want) {
			t.Errorf("Dist2(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
		}
	}
}

func TestDistSymmetricProperty(t *testing.T) {
	prop := func(ax, ay, bx, by int32) bool {
		p := Point{float64(ax), float64(ay)}
		q := Point{float64(bx), float64(by)}
		return p.Dist(q) == q.Dist(p) && p.Dist(q) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	prop := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	if got := p.Add(Point{3, 4}); got != (Point{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Point{3, 4}); got != (Point{-2, -2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Point{3, 4}).Norm(); !almostEqual(got, 5) {
		t.Errorf("Norm = %v", got)
	}
	if got := (Point{3, 4}).Unit().Norm(); !almostEqual(got, 1) {
		t.Errorf("Unit norm = %v", got)
	}
	if got := (Point{}).Unit(); got != (Point{}) {
		t.Errorf("Unit of zero = %v, want zero", got)
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 20}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestAngle(t *testing.T) {
	o := Point{0, 0}
	tests := []struct {
		q    Point
		want float64
	}{
		{Point{1, 0}, 0},
		{Point{0, 1}, math.Pi / 2},
		{Point{-1, 0}, math.Pi},
		{Point{0, -1}, -math.Pi / 2},
	}
	for _, tt := range tests {
		if got := o.Angle(tt.q); !almostEqual(got, tt.want) {
			t.Errorf("Angle to %v = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestRect(t *testing.T) {
	r := NewRect(1500, 300)
	if r.Width() != 1500 || r.Height() != 300 {
		t.Fatalf("dims = %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{1500, 300}) {
		t.Error("boundary points should be contained")
	}
	if r.Contains(Point{1500.1, 0}) {
		t.Error("outside point contained")
	}
	if got := r.Clamp(Point{-5, 400}); got != (Point{0, 300}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Center(); got != (Point{750, 150}) {
		t.Errorf("Center = %v", got)
	}
}

func TestClampIdempotentProperty(t *testing.T) {
	r := NewRect(1500, 300)
	prop := func(x, y float64) bool {
		c := r.Clamp(Point{x, y})
		return r.Contains(c) && r.Clamp(c) == c
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridMapDims(t *testing.T) {
	g := NewGridMap(NewRect(1500, 300), 300)
	if g.Cols() != 5 || g.Rows() != 1 {
		t.Fatalf("cols,rows = %d,%d want 5,1", g.Cols(), g.Rows())
	}
	if g.NumCells() != 5 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	// Non-divisible size rounds up.
	g2 := NewGridMap(NewRect(1500, 300), 400)
	if g2.Cols() != 4 || g2.Rows() != 1 {
		t.Fatalf("cols,rows = %d,%d want 4,1", g2.Cols(), g2.Rows())
	}
}

func TestGridCellOf(t *testing.T) {
	g := NewGridMap(NewRect(1500, 300), 300)
	tests := []struct {
		p    Point
		want Cell
	}{
		{Point{0, 0}, Cell{0, 0}},
		{Point{299.9, 299.9}, Cell{0, 0}},
		{Point{300, 0}, Cell{1, 0}},
		{Point{1499, 100}, Cell{4, 0}},
		{Point{1500, 300}, Cell{4, 0}}, // boundary clamps inward
		{Point{-10, -10}, Cell{0, 0}},  // outside clamps
		{Point{99999, 99999}, Cell{4, 0}} /* far outside clamps */}
	for _, tt := range tests {
		if got := g.CellOf(tt.p); got != tt.want {
			t.Errorf("CellOf(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := NewGridMap(NewRect(1500, 600), 250)
	for i := 0; i < g.NumCells(); i++ {
		c := g.CellByIndex(i)
		if g.Index(c) != i {
			t.Fatalf("Index(CellByIndex(%d)) = %d", i, g.Index(c))
		}
	}
	// Negative and overflowing indices wrap.
	if g.CellByIndex(-1) != g.CellByIndex(g.NumCells()-1) {
		t.Error("negative index does not wrap")
	}
	if g.CellByIndex(g.NumCells()) != g.CellByIndex(0) {
		t.Error("overflow index does not wrap")
	}
}

func TestGridCenterInsideCell(t *testing.T) {
	g := NewGridMap(NewRect(1500, 300), 400)
	for i := 0; i < g.NumCells(); i++ {
		c := g.CellByIndex(i)
		ctr := g.Center(c)
		if got := g.CellOf(ctr); got != c {
			t.Errorf("Center of %v maps to %v", c, got)
		}
		if !g.Bounds.Contains(ctr) {
			t.Errorf("Center of %v outside bounds: %v", c, ctr)
		}
	}
}

func TestGridCellOfCenterProperty(t *testing.T) {
	g := NewGridMap(NewRect(1500, 300), 300)
	prop := func(x, y float64) bool {
		p := g.Bounds.Clamp(Point{math.Abs(x), math.Abs(y)})
		c := g.CellOf(p)
		return g.CellRect(c).Contains(p) || p.Dist(g.CellRect(c).Clamp(p)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNewGridMapPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive cell size")
		}
	}()
	NewGridMap(NewRect(10, 10), 0)
}

func TestStrings(t *testing.T) {
	if s := (Point{1, 2}).String(); s != "(1.00,2.00)" {
		t.Errorf("Point.String = %q", s)
	}
	if s := (Cell{3, 4}).String(); s != "c(3,4)" {
		t.Errorf("Cell.String = %q", s)
	}
}

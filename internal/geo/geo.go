// Package geo provides the planar geometry used throughout the simulator:
// points, rectangles, and the square grid maps that the DLM/ALS location
// service partitions the network into.
//
// All coordinates are in meters on a flat 2-D plane, matching the paper's
// 1500 m × 300 m simulation area.
package geo

import (
	"fmt"
	"math"
)

// Point is a position on the plane, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist reports the Euclidean distance between p and q in meters.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 reports the squared distance, cheaper when only comparing.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Lerp linearly interpolates from p to q; f=0 yields p, f=1 yields q.
func (p Point) Lerp(q Point, f float64) Point {
	return Point{p.X + (q.X-p.X)*f, p.Y + (q.Y-p.Y)*f}
}

// Norm reports the length of p viewed as a vector from the origin.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Unit returns the unit vector in p's direction, or the zero vector when p
// is the origin.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return Point{}
	}
	return Point{p.X / n, p.Y / n}
}

// Angle reports the angle of the vector from p to q in radians, in
// (-π, π], measured counterclockwise from the positive X axis.
func (p Point) Angle(q Point) float64 {
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}

// String formats the point with centimeter precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f,%.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is inclusive, Max exclusive for
// grid-cell assignment purposes; Contains treats the boundary as inside so
// mobility clamped to the area never "escapes".
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning (0,0)..(w,h).
func NewRect(w, h float64) Rect {
	return Rect{Max: Point{w, h}}
}

// Width reports the extent along X.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height reports the extent along Y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies in the rectangle (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns the point in the rectangle nearest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Center reports the rectangle's midpoint.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Cell identifies one square of a GridMap by column and row index.
type Cell struct {
	Col, Row int
}

// String formats the cell as "c(col,row)".
func (c Cell) String() string { return fmt.Sprintf("c(%d,%d)", c.Col, c.Row) }

// GridMap partitions a rectangle into square cells of side Size, the
// structure DLM uses to place location servers. Points outside Bounds are
// clamped to the nearest cell so a node that drifts marginally out of the
// area still maps somewhere sane.
type GridMap struct {
	Bounds Rect
	Size   float64
}

// NewGridMap divides bounds into cells of side size. Size must be positive.
func NewGridMap(bounds Rect, size float64) GridMap {
	if size <= 0 {
		panic("geo: grid cell size must be positive")
	}
	return GridMap{Bounds: bounds, Size: size}
}

// Cols reports the number of cell columns (at least 1).
func (g GridMap) Cols() int {
	return maxInt(1, int(math.Ceil(g.Bounds.Width()/g.Size)))
}

// Rows reports the number of cell rows (at least 1).
func (g GridMap) Rows() int {
	return maxInt(1, int(math.Ceil(g.Bounds.Height()/g.Size)))
}

// NumCells reports the total cell count.
func (g GridMap) NumCells() int { return g.Cols() * g.Rows() }

// CellOf maps a point to its containing cell, clamping out-of-bounds
// points to the border cells.
func (g GridMap) CellOf(p Point) Cell {
	col := int(math.Floor((p.X - g.Bounds.Min.X) / g.Size))
	row := int(math.Floor((p.Y - g.Bounds.Min.Y) / g.Size))
	return Cell{
		Col: clampInt(col, 0, g.Cols()-1),
		Row: clampInt(row, 0, g.Rows()-1),
	}
}

// CellByIndex returns the cell with flattened index i (row-major), for
// hashing identities onto server grids.
func (g GridMap) CellByIndex(i int) Cell {
	cols := g.Cols()
	i = ((i % g.NumCells()) + g.NumCells()) % g.NumCells()
	return Cell{Col: i % cols, Row: i / cols}
}

// Index reports the flattened row-major index of c.
func (g GridMap) Index(c Cell) int { return c.Row*g.Cols() + c.Col }

// Center reports the midpoint of cell c, clipped to Bounds for partial
// border cells.
func (g GridMap) Center(c Cell) Point {
	p := Point{
		X: g.Bounds.Min.X + (float64(c.Col)+0.5)*g.Size,
		Y: g.Bounds.Min.Y + (float64(c.Row)+0.5)*g.Size,
	}
	return g.Bounds.Clamp(p)
}

// CellRect reports the rectangle covered by cell c, clipped to Bounds.
func (g GridMap) CellRect(c Cell) Rect {
	min := Point{
		X: g.Bounds.Min.X + float64(c.Col)*g.Size,
		Y: g.Bounds.Min.Y + float64(c.Row)*g.Size,
	}
	max := g.Bounds.Clamp(Point{min.X + g.Size, min.Y + g.Size})
	return Rect{Min: min, Max: max}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Package fault is the simulator's deterministic fault-injection layer.
// A declarative Plan — a list of scripted or randomly drawn fault
// entries — compiles into concrete simulator hooks: channel loss models
// (independent Bernoulli fading, Gilbert–Elliott bursty loss, regional
// jamming windows), adversarial node behaviors (blackhole, greyhole,
// mute), GPS position error on advertised positions, node outages
// (scripted or churn-style random draws), and active attacks on greedy
// geographic forwarding (bogus-position beacon injection, ACK spoofing,
// beacon flooding).
//
// Everything is seeded from the simulation engine: Install draws one
// random stream per plan entry, in entry order, so the same seed and the
// same plan reproduce bit-for-bit identical runs. The legacy
// core.Config knobs (LossRate, ChurnFailures) compile to canned plans
// through FromLegacy and stay reproducible against the pre-plan wiring.
package fault

import (
	"fmt"
	"time"

	"anongeo/internal/geo"
)

// Kind discriminates fault entry types.
type Kind int

// The fault kinds a Plan entry can carry.
const (
	// KindBernoulliLoss adds independent per-delivery frame loss with
	// probability P — the legacy LossRate fading model.
	KindBernoulliLoss Kind = iota + 1
	// KindGilbertElliott adds bursty correlated loss: a two-state Markov
	// channel alternating good/bad states with exponential dwell times
	// (MeanGood/MeanBad) and per-state loss probabilities (PGood/PBad).
	KindGilbertElliott
	// KindJam kills every delivery to receivers inside Region during the
	// [From, Until] window — a regional jammer that can partition the
	// arena. A nil Region jams the whole arena.
	KindJam
	// KindBlackhole turns the selected nodes adversarial: they beacon
	// normally (attracting traffic) but silently drop every data packet
	// they are asked to relay.
	KindBlackhole
	// KindGreyhole is a probabilistic blackhole: selected relays drop
	// forwarded data with probability P.
	KindGreyhole
	// KindMute stops the selected nodes' beaconing while they keep
	// moving and relaying — their neighbors' state goes stale.
	KindMute
	// KindPositionError adds zero-mean Gaussian error (std dev Sigma
	// meters) to the positions the selected nodes advertise in beacons
	// and location-service updates; the error re-draws every
	// FixInterval, modeling a GPS fix cycle. True positions — radio
	// propagation, mobility — are untouched.
	KindPositionError
	// KindOutage takes the selected nodes radio-dark for the [From,
	// Until] window (or From+DownFor when Until is zero), then back up.
	KindOutage
	// KindChurn is the legacy churn model as a plan entry: Count
	// distinct random nodes each go dark for DownFor at an independent
	// random instant inside the traffic window.
	KindChurn
	// KindBogusBeacon turns the selected nodes into position forgers:
	// every beacon they send advertises a position displaced Lure meters
	// from their true position toward the lure target (the center of
	// Region when set, else the arena center), capturing greedy next-hop
	// selection at neighbors that believe the forged progress. P > 0
	// additionally makes the captured traffic drop with that probability
	// (the classic sinkhole composition).
	KindBogusBeacon
	// KindAckSpoof makes the selected nodes spoof network-layer
	// acknowledgments: whenever they overhear an AGFW data broadcast
	// committed to someone else, they broadcast a forged ACK for it with
	// probability P (default 1), quenching the previous hop's
	// retransmission timer for a packet the committed relay may never
	// have received. GPSR has no network-layer ACK, so the entry is a
	// no-op there (the curves show GPSR flat on this axis by design).
	KindAckSpoof
	// KindFlood makes the selected nodes flood junk hello beacons at
	// Rate frames per second (default 50): channel-pressure DoS plus
	// neighbor-state pollution, since every junk hello carries a fresh
	// forged identity/pseudonym and a random position drawn inside
	// Region (default: the whole arena).
	KindFlood
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBernoulliLoss:
		return "bernoulli-loss"
	case KindGilbertElliott:
		return "gilbert-elliott"
	case KindJam:
		return "jam"
	case KindBlackhole:
		return "blackhole"
	case KindGreyhole:
		return "greyhole"
	case KindMute:
		return "mute"
	case KindPositionError:
		return "position-error"
	case KindOutage:
		return "outage"
	case KindChurn:
		return "churn"
	case KindBogusBeacon:
		return "bogus-beacon"
	case KindAckSpoof:
		return "ack-spoof"
	case KindFlood:
		return "flood"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Entry is one fault in a plan's timeline. Only the fields relevant to
// its Kind are consulted; the rest stay zero. All fields carry omitempty
// JSON tags so canned plans hash compactly in the experiment cache.
type Entry struct {
	Kind Kind `json:",omitempty"`

	// From/Until bound the entry's active window in simulation time.
	// Zero From means active from the start; zero Until means active to
	// the end of the run.
	From  time.Duration `json:",omitempty"`
	Until time.Duration `json:",omitempty"`

	// Node selection for node-scoped kinds, one of: explicit indices,
	// a count of random distinct nodes, or a fraction of the population.
	// Explicit Nodes wins; otherwise Count wins over Fraction.
	Nodes    []int   `json:",omitempty"`
	Count    int     `json:",omitempty"`
	Fraction float64 `json:",omitempty"`

	// P is the loss/drop probability (KindBernoulliLoss, KindGreyhole).
	P float64 `json:",omitempty"`

	// Gilbert–Elliott parameters: per-state loss probabilities and mean
	// exponential dwell times (defaults: MeanGood 10 s, MeanBad 1 s).
	PGood    float64       `json:",omitempty"`
	PBad     float64       `json:",omitempty"`
	MeanGood time.Duration `json:",omitempty"`
	MeanBad  time.Duration `json:",omitempty"`

	// Sigma is the position error std dev in meters; FixInterval is how
	// often the error vector re-draws (default 1 s).
	Sigma       float64       `json:",omitempty"`
	FixInterval time.Duration `json:",omitempty"`

	// Region scopes KindJam, aims KindBogusBeacon's lure target, and
	// bounds KindFlood's junk positions; nil means the whole arena.
	Region *geo.Rect `json:",omitempty"`

	// DownFor is the outage length for KindChurn and for KindOutage
	// entries without an Until (default 30 s, matching legacy churn).
	DownFor time.Duration `json:",omitempty"`

	// Lure is how far (meters) a KindBogusBeacon forger displaces its
	// advertised position toward the lure target (default 200).
	Lure float64 `json:",omitempty"`

	// Rate is KindFlood's intensity in junk frames per second per
	// attacker (default 50).
	Rate float64 `json:",omitempty"`

	// Bytes overrides the modeled size of KindFlood's junk frames
	// (default: the protocol's own hello size).
	Bytes int `json:",omitempty"`
}

// nodeScoped reports whether the kind selects individual nodes.
func (k Kind) nodeScoped() bool {
	switch k {
	case KindBlackhole, KindGreyhole, KindMute, KindPositionError, KindOutage, KindChurn,
		KindBogusBeacon, KindAckSpoof, KindFlood:
		return true
	}
	return false
}

// Plan is a declarative fault timeline: entries install independently,
// in order, each drawing its own random stream from the engine.
type Plan struct {
	Entries []Entry `json:",omitempty"`
}

// Validate rejects plans that cannot install against a population of
// `nodes` stations.
func (p *Plan) Validate(nodes int) error {
	for i, e := range p.Entries {
		if err := e.validate(nodes); err != nil {
			return fmt.Errorf("fault: entry %d (%v): %w", i, e.Kind, err)
		}
	}
	return nil
}

// validate rejects out-of-range entries. Every error names the offending
// field (as it appears in the JSON encoding) and the rejected value,
// matching core.Config.Validate's style, so plans submitted over the
// wire self-diagnose — nothing is silently clamped.
func (e Entry) validate(nodes int) error {
	if e.From < 0 {
		return fmt.Errorf("From = %v: must not be negative", e.From)
	}
	if e.Until < 0 {
		return fmt.Errorf("Until = %v: must not be negative", e.Until)
	}
	if e.Until > 0 && e.Until <= e.From {
		return fmt.Errorf("Until = %v: window ends before it starts (From = %v)", e.Until, e.From)
	}
	if e.DownFor < 0 {
		return fmt.Errorf("DownFor = %v: must not be negative", e.DownFor)
	}
	if e.Kind.nodeScoped() {
		for _, idx := range e.Nodes {
			if idx < 0 || idx >= nodes {
				return fmt.Errorf("Nodes = %d: outside [0,%d)", idx, nodes)
			}
		}
		if e.Count < 0 || e.Count > nodes {
			return fmt.Errorf("Count = %d: outside [0,%d]", e.Count, nodes)
		}
		if e.Fraction < 0 || e.Fraction > 1 {
			return fmt.Errorf("Fraction = %g: outside [0,1]", e.Fraction)
		}
	}
	switch e.Kind {
	case KindBernoulliLoss:
		if e.P < 0 || e.P >= 1 {
			return fmt.Errorf("P = %g: outside [0,1)", e.P)
		}
	case KindGreyhole:
		if e.P < 0 || e.P > 1 {
			return fmt.Errorf("P = %g: outside [0,1]", e.P)
		}
	case KindGilbertElliott:
		if e.PGood < 0 || e.PGood >= 1 {
			return fmt.Errorf("PGood = %g: outside [0,1)", e.PGood)
		}
		if e.PBad < 0 || e.PBad > 1 {
			return fmt.Errorf("PBad = %g: outside [0,1]", e.PBad)
		}
		if e.MeanGood < 0 {
			return fmt.Errorf("MeanGood = %v: must not be negative", e.MeanGood)
		}
		if e.MeanBad < 0 {
			return fmt.Errorf("MeanBad = %v: must not be negative", e.MeanBad)
		}
	case KindPositionError:
		if e.Sigma < 0 {
			return fmt.Errorf("Sigma = %g: must not be negative", e.Sigma)
		}
		if e.FixInterval < 0 {
			return fmt.Errorf("FixInterval = %v: must not be negative", e.FixInterval)
		}
	case KindBogusBeacon:
		if e.P < 0 || e.P > 1 {
			return fmt.Errorf("P = %g: outside [0,1]", e.P)
		}
		if e.Lure < 0 {
			return fmt.Errorf("Lure = %g: must not be negative", e.Lure)
		}
	case KindAckSpoof:
		if e.P < 0 || e.P > 1 {
			return fmt.Errorf("P = %g: outside [0,1]", e.P)
		}
	case KindFlood:
		if e.Rate < 0 {
			return fmt.Errorf("Rate = %g: must not be negative", e.Rate)
		}
		if e.Bytes < 0 {
			return fmt.Errorf("Bytes = %d: must not be negative", e.Bytes)
		}
	case KindJam, KindBlackhole, KindMute, KindOutage, KindChurn:
	default:
		return fmt.Errorf("unknown kind %d", int(e.Kind))
	}
	return nil
}

// FromLegacy compiles the legacy core.Config fault knobs into the
// canned plan the pre-plan wiring implemented: an optional Bernoulli
// loss entry followed by an optional churn entry. Entry order matters —
// it fixes the stream-draw order that makes legacy configs reproduce
// bit-for-bit.
func FromLegacy(lossRate float64, churnFailures int, churnDownFor time.Duration) *Plan {
	var p Plan
	if lossRate > 0 {
		p.Entries = append(p.Entries, Entry{Kind: KindBernoulliLoss, P: lossRate})
	}
	if churnFailures > 0 {
		p.Entries = append(p.Entries, Entry{Kind: KindChurn, Count: churnFailures, DownFor: churnDownFor})
	}
	if len(p.Entries) == 0 {
		return nil
	}
	return &p
}

// Merge appends b's entries after a's, treating nil plans as empty.
// Returns nil when both are empty.
func Merge(a, b *Plan) *Plan {
	var out Plan
	if a != nil {
		out.Entries = append(out.Entries, a.Entries...)
	}
	if b != nil {
		out.Entries = append(out.Entries, b.Entries...)
	}
	if len(out.Entries) == 0 {
		return nil
	}
	return &out
}

package fault

import (
	"math/rand"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/radio"
	"anongeo/internal/sim"
)

// Actuator is the per-node control surface a plan drives. core.Node
// adapts its MAC and router to this interface.
type Actuator interface {
	// SetDown fails (true) or restores (false) the node's radio.
	SetDown(down bool)
	// SetRelayDrop makes the node's router silently drop relayed data
	// with probability p (1 = blackhole, 0 = honest).
	SetRelayDrop(p float64)
	// SetMute stops (true) or resumes (false) the node's beaconing.
	SetMute(muted bool)
	// SetBeaconNoise distorts the positions the node advertises in
	// beacons and location updates; nil restores truth.
	SetBeaconNoise(f func(geo.Point) geo.Point)
	// SetForgedBeacon replaces the node's advertised position outright
	// (bogus-position injection); nil restores truth. Kept separate from
	// SetBeaconNoise so forgery composes with GPS error, and so routers
	// can count injected beacons for the conservation audit.
	SetForgedBeacon(f func(geo.Point) geo.Point)
	// SetAckSpoof arms network-layer ACK spoofing: pred is consulted per
	// overheard data packet and decides whether to forge an ACK for it.
	// nil disarms. Protocols without a network-layer ACK ignore it.
	SetAckSpoof(pred func() bool)
	// SendJunkHello broadcasts one junk hello under a forged identity
	// derived from nonce, advertising loc. bytes <= 0 uses the
	// protocol's own hello size.
	SendJunkHello(nonce uint64, loc geo.Point, bytes int)
}

// Env is the simulator surface a plan installs against.
type Env struct {
	Eng      *sim.Engine
	Channel  *radio.Channel
	Nodes    []Actuator
	Area     geo.Rect
	Warmup   time.Duration
	Duration time.Duration
}

// Install compiles the plan into live hooks: channel loss models are
// composed onto env.Channel, node behaviors are applied or scheduled
// through the actuators, and outages are armed on the engine.
//
// Determinism contract: every entry draws exactly one fresh engine
// stream at install time, in entry order, whether or not it ends up
// using randomness. A plan therefore perturbs the engine's stream
// sequence only by its entry count, and two runs with the same seed and
// the same plan are bit-for-bit identical.
func Install(p *Plan, env Env) error {
	if p == nil || len(p.Entries) == 0 {
		return nil
	}
	if err := p.Validate(len(env.Nodes)); err != nil {
		return err
	}
	var chain []radio.LossModel // stochastic loss, in entry order
	var jams []radio.LossModel  // jam windows, evaluated after chain
	for _, e := range p.Entries {
		rng := env.Eng.NewStream()
		switch e.Kind {
		case KindBernoulliLoss:
			if e.P > 0 {
				chain = append(chain, radio.NewBernoulliLoss(e.P, rng))
			}
		case KindGilbertElliott:
			chain = append(chain, newGilbertElliott(env.Eng, rng, e))
		case KindJam:
			jams = append(jams, &jamWindow{
				eng:    env.Eng,
				from:   sim.Time(e.From),
				until:  sim.Time(e.Until),
				region: e.Region,
			})
		case KindBlackhole:
			installBehavior(env, e, rng,
				func(a Actuator) { a.SetRelayDrop(1) },
				func(a Actuator) { a.SetRelayDrop(0) })
		case KindGreyhole:
			pr := e.P
			installBehavior(env, e, rng,
				func(a Actuator) { a.SetRelayDrop(pr) },
				func(a Actuator) { a.SetRelayDrop(0) })
		case KindMute:
			installBehavior(env, e, rng,
				func(a Actuator) { a.SetMute(true) },
				func(a Actuator) { a.SetMute(false) })
		case KindPositionError:
			installPositionError(env, e, rng)
		case KindOutage:
			installOutage(env, e, rng)
		case KindChurn:
			installChurn(env, e, rng)
		case KindBogusBeacon:
			installBogusBeacon(env, e, rng)
		case KindAckSpoof:
			installAckSpoof(env, e, rng)
		case KindFlood:
			installFlood(env, e, rng)
		}
	}
	models := append(chain, jams...)
	switch len(models) {
	case 0:
	case 1:
		env.Channel.SetLossModel(models[0])
	default:
		env.Channel.SetLossModel(&compositeLoss{models: models})
	}
	return nil
}

// selectNodes resolves an entry's node set: explicit indices win, then a
// random draw of Count (or round(Fraction·n)) distinct nodes.
func selectNodes(e Entry, n int, rng *rand.Rand) []int {
	if len(e.Nodes) > 0 {
		return e.Nodes
	}
	count := e.Count
	if count == 0 && e.Fraction > 0 {
		count = int(e.Fraction*float64(n) + 0.5)
	}
	if count > n {
		count = n
	}
	if count <= 0 {
		return nil
	}
	return rng.Perm(n)[:count]
}

// installBehavior applies a reversible per-node behavior over the
// entry's window: immediately when From is zero, else at From, and
// reverted at Until when one is set.
func installBehavior(env Env, e Entry, rng *rand.Rand, apply, revert func(Actuator)) {
	for _, idx := range selectNodes(e, len(env.Nodes), rng) {
		a := env.Nodes[idx]
		if e.From <= 0 {
			apply(a)
		} else {
			env.Eng.Schedule(e.From, func() { apply(a) })
		}
		if e.Until > 0 {
			env.Eng.Schedule(e.Until, func() { revert(a) })
		}
	}
}

// installPositionError gives each selected node a noise closure that
// offsets advertised positions by a Gaussian error vector, re-drawn
// every FixInterval of simulation time. The window check lives inside
// the closure, so outside [From, Until] positions pass through exactly
// and no randomness is consumed.
func installPositionError(env Env, e Entry, rng *rand.Rand) {
	fix := e.FixInterval
	if fix <= 0 {
		fix = time.Second
	}
	sigma := e.Sigma
	from, until := sim.Time(e.From), sim.Time(e.Until)
	for _, idx := range selectNodes(e, len(env.Nodes), rng) {
		var epoch int64 = -1
		var dx, dy float64
		env.Nodes[idx].SetBeaconNoise(func(p geo.Point) geo.Point {
			now := env.Eng.Now()
			if now < from || (until > 0 && now > until) {
				return p
			}
			if ep := int64(now / sim.Time(fix)); ep != epoch {
				epoch = ep
				dx = rng.NormFloat64() * sigma
				dy = rng.NormFloat64() * sigma
			}
			return geo.Point{X: p.X + dx, Y: p.Y + dy}
		})
	}
}

// installOutage arms scripted radio-dark windows: down at From, up at
// Until (or From+DownFor when Until is zero; DownFor defaults to the
// legacy 30 s).
func installOutage(env Env, e Entry, rng *rand.Rand) {
	until := e.Until
	if until <= 0 {
		downFor := e.DownFor
		if downFor <= 0 {
			downFor = 30 * time.Second
		}
		until = e.From + downFor
	}
	from := e.From
	for _, idx := range selectNodes(e, len(env.Nodes), rng) {
		a := env.Nodes[idx]
		env.Eng.Schedule(from, func() { a.SetDown(true) })
		env.Eng.Schedule(until, func() { a.SetDown(false) })
	}
}

// installChurn reproduces the legacy core churn model draw-for-draw:
// one Perm over the population picks Count victims, then each victim
// gets an independent uniform failure instant inside the traffic
// window. Changing any draw here breaks the legacy parity guarantee.
func installChurn(env Env, e Entry, rng *rand.Rand) {
	downFor := e.DownFor
	if downFor <= 0 {
		downFor = 30 * time.Second
	}
	count := e.Count
	if count > len(env.Nodes) {
		count = len(env.Nodes)
	}
	perm := rng.Perm(len(env.Nodes))[:count]
	window := env.Duration - env.Warmup - downFor
	if window <= 0 {
		window = env.Duration / 2
	}
	for _, idx := range perm {
		a := env.Nodes[idx]
		at := env.Warmup + time.Duration(rng.Float64()*float64(window))
		env.Eng.Schedule(at, func() {
			a.SetDown(true)
			env.Eng.Schedule(downFor, func() { a.SetDown(false) })
		})
	}
}

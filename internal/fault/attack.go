package fault

import (
	"math/rand"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// This file compiles the active-adversary plan kinds — attacks on greedy
// geographic forwarding itself rather than on the channel or on node
// liveness. Each installer follows the package's determinism contract:
// it consumes exactly the one stream Install drew for its entry, all
// in-window randomness comes from that stream, and outside the entry's
// window the hooks pass through without consuming randomness.

// installBogusBeacon turns each selected node into a position forger:
// inside the window, every advertised position is displaced Lure meters
// (default 200) from the true position toward the lure target — the
// center of Region when set, else the arena center. A forged claim of
// progress toward the lure captures greedy next-hop selection at any
// neighbor routing traffic that way; P > 0 makes the captured packets
// additionally drop with that probability (sinkhole composition).
func installBogusBeacon(env Env, e Entry, rng *rand.Rand) {
	lure := e.Lure
	if lure <= 0 {
		lure = 200
	}
	target := env.Area.Center()
	if e.Region != nil {
		target = e.Region.Center()
	}
	from, until := sim.Time(e.From), sim.Time(e.Until)
	active := func() bool {
		now := env.Eng.Now()
		return now >= from && (until <= 0 || now <= until)
	}
	for _, idx := range selectNodes(e, len(env.Nodes), rng) {
		a := env.Nodes[idx]
		a.SetForgedBeacon(func(p geo.Point) geo.Point {
			if !active() {
				return p
			}
			d := p.Dist(target)
			if d <= lure {
				return target // already closer than the displacement
			}
			f := lure / d
			return geo.Point{X: p.X + (target.X-p.X)*f, Y: p.Y + (target.Y-p.Y)*f}
		})
		if e.P > 0 {
			pr := e.P
			if e.From <= 0 {
				a.SetRelayDrop(pr)
			} else {
				env.Eng.Schedule(e.From, func() { a.SetRelayDrop(pr) })
			}
			if e.Until > 0 {
				env.Eng.Schedule(e.Until, func() { a.SetRelayDrop(0) })
			}
		}
	}
}

// installAckSpoof arms the selected nodes' ACK forgers: per overheard
// data packet committed to someone else, spoof an acknowledgment with
// probability P (default 1) inside the window. The predicate draws from
// the entry's stream only while active, so a window that never opens
// consumes no randomness beyond the node draw.
func installAckSpoof(env Env, e Entry, rng *rand.Rand) {
	p := e.P
	if p <= 0 {
		p = 1
	}
	from, until := sim.Time(e.From), sim.Time(e.Until)
	for _, idx := range selectNodes(e, len(env.Nodes), rng) {
		env.Nodes[idx].SetAckSpoof(func() bool {
			now := env.Eng.Now()
			if now < from || (until > 0 && now > until) {
				return false
			}
			return p >= 1 || rng.Float64() < p
		})
	}
}

// installFlood schedules each selected node's junk-hello barrage: Rate
// frames per second (default 50) with ±20% jitter, each carrying a
// fresh forged identity nonce and a position drawn uniformly inside
// Region (default: the whole arena). Ticks stop at Until or at the end
// of the traffic window, whichever comes first.
func installFlood(env Env, e Entry, rng *rand.Rand) {
	rate := e.Rate
	if rate <= 0 {
		rate = 50
	}
	mean := time.Duration(float64(time.Second) / rate)
	area := env.Area
	if e.Region != nil {
		area = *e.Region
	}
	stop := sim.Time(env.Duration)
	if e.Until > 0 && sim.Time(e.Until) < stop {
		stop = sim.Time(e.Until)
	}
	for _, idx := range selectNodes(e, len(env.Nodes), rng) {
		a := env.Nodes[idx]
		var tick func()
		tick = func() {
			if env.Eng.Now() > stop {
				return
			}
			loc := geo.Point{
				X: area.Min.X + rng.Float64()*area.Width(),
				Y: area.Min.Y + rng.Float64()*area.Height(),
			}
			a.SendJunkHello(rng.Uint64(), loc, e.Bytes)
			env.Eng.Schedule(jittered(mean, rng), tick)
		}
		// Desynchronize attackers: first tick lands uniformly inside the
		// first mean interval after the window opens.
		first := e.From + time.Duration(rng.Float64()*float64(mean))
		env.Eng.Schedule(first, tick)
	}
}

// jittered draws mean ± 20% uniformly.
func jittered(mean time.Duration, rng *rand.Rand) time.Duration {
	return time.Duration(float64(mean) * (0.8 + 0.4*rng.Float64()))
}

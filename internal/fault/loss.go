package fault

import (
	"math/rand"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/radio"
	"anongeo/internal/sim"
)

// Default Gilbert–Elliott dwell means: long mostly-clean stretches
// punctuated by short deep fades.
const (
	defaultMeanGood = 10 * time.Second
	defaultMeanBad  = time.Second
)

// gilbertElliott is a two-state Markov loss channel. The state chain
// advances lazily against simulation time: dwell intervals are drawn
// exponentially one at a time, so the draw sequence depends only on how
// far time has progressed, never on wall-clock or call count.
type gilbertElliott struct {
	eng      *sim.Engine
	rng      *rand.Rand
	pGood    float64
	pBad     float64
	meanGood time.Duration
	meanBad  time.Duration
	from     sim.Time
	until    sim.Time // 0 = open-ended
	bad      bool
	started  bool
	nextFlip sim.Time
}

func newGilbertElliott(eng *sim.Engine, rng *rand.Rand, e Entry) *gilbertElliott {
	g := &gilbertElliott{
		eng:      eng,
		rng:      rng,
		pGood:    e.PGood,
		pBad:     e.PBad,
		meanGood: e.MeanGood,
		meanBad:  e.MeanBad,
		from:     sim.Time(e.From),
		until:    sim.Time(e.Until),
	}
	if g.meanGood <= 0 {
		g.meanGood = defaultMeanGood
	}
	if g.meanBad <= 0 {
		g.meanBad = defaultMeanBad
	}
	return g
}

func (g *gilbertElliott) dwell() sim.Time {
	mean := g.meanGood
	if g.bad {
		mean = g.meanBad
	}
	return sim.Time(g.rng.ExpFloat64() * float64(mean))
}

// Lost implements radio.LossModel.
func (g *gilbertElliott) Lost(rx *radio.Iface) radio.LossOutcome {
	now := g.eng.Now()
	if now < g.from || (g.until > 0 && now > g.until) {
		return radio.LossNone
	}
	if !g.started {
		g.started = true
		g.nextFlip = now + g.dwell()
	}
	for now >= g.nextFlip {
		g.bad = !g.bad
		g.nextFlip += g.dwell()
	}
	p := g.pGood
	if g.bad {
		p = g.pBad
	}
	if p > 0 && g.rng.Float64() < p {
		return radio.LossFading
	}
	return radio.LossNone
}

// jamWindow kills deliveries to receivers inside its region during its
// window. It draws no randomness.
type jamWindow struct {
	eng    *sim.Engine
	from   sim.Time
	until  sim.Time // 0 = open-ended
	region *geo.Rect
}

// Lost implements radio.LossModel.
func (j *jamWindow) Lost(rx *radio.Iface) radio.LossOutcome {
	now := j.eng.Now()
	if now < j.from || (j.until > 0 && now > j.until) {
		return radio.LossNone
	}
	if j.region != nil && !j.region.Contains(rx.Pos()) {
		return radio.LossNone
	}
	return radio.LossJam
}

// compositeLoss chains loss models: the first non-None outcome wins.
// Stochastic chain models (Bernoulli, Gilbert–Elliott) come before jam
// windows so their draw sequences match a jam-free plan — a jammed
// receiver still consumes the fading draw it would have consumed.
type compositeLoss struct {
	models []radio.LossModel
}

// Lost implements radio.LossModel.
func (c *compositeLoss) Lost(rx *radio.Iface) radio.LossOutcome {
	for _, m := range c.models {
		if o := m.Lost(rx); o != radio.LossNone {
			return o
		}
	}
	return radio.LossNone
}

package fault

import (
	"reflect"
	"testing"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

func TestPlanValidate(t *testing.T) {
	const nodes = 10
	cases := []struct {
		name  string
		entry Entry
		ok    bool
	}{
		{"bernoulli ok", Entry{Kind: KindBernoulliLoss, P: 0.3}, true},
		{"bernoulli p=1", Entry{Kind: KindBernoulliLoss, P: 1}, false},
		{"bernoulli negative", Entry{Kind: KindBernoulliLoss, P: -0.1}, false},
		{"greyhole p=1 ok", Entry{Kind: KindGreyhole, P: 1, Count: 2}, true},
		{"greyhole p>1", Entry{Kind: KindGreyhole, P: 1.5, Count: 2}, false},
		{"ge ok", Entry{Kind: KindGilbertElliott, PGood: 0.01, PBad: 0.8}, true},
		{"ge bad dwell", Entry{Kind: KindGilbertElliott, MeanBad: -time.Second}, false},
		{"node index out of range", Entry{Kind: KindBlackhole, Nodes: []int{nodes}}, false},
		{"node index negative", Entry{Kind: KindBlackhole, Nodes: []int{-1}}, false},
		{"count over population", Entry{Kind: KindMute, Count: nodes + 1}, false},
		{"fraction over 1", Entry{Kind: KindGreyhole, Fraction: 1.5}, false},
		{"sigma negative", Entry{Kind: KindPositionError, Sigma: -1, Count: 1}, false},
		{"window inverted", Entry{Kind: KindJam, From: 10 * time.Second, Until: 5 * time.Second}, false},
		{"window negative", Entry{Kind: KindOutage, From: -time.Second, Count: 1}, false},
		{"downfor negative", Entry{Kind: KindChurn, Count: 1, DownFor: -time.Second}, false},
		{"unknown kind", Entry{Kind: Kind(99)}, false},
		{"jam whole arena ok", Entry{Kind: KindJam, From: time.Second, Until: 2 * time.Second}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := &Plan{Entries: []Entry{c.entry}}
			err := p.Validate(nodes)
			if c.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Error("invalid entry accepted")
			}
		})
	}
}

func TestFromLegacy(t *testing.T) {
	if p := FromLegacy(0, 0, 0); p != nil {
		t.Errorf("no knobs should compile to a nil plan, got %+v", p)
	}
	p := FromLegacy(0.2, 5, 20*time.Second)
	want := []Entry{
		{Kind: KindBernoulliLoss, P: 0.2},
		{Kind: KindChurn, Count: 5, DownFor: 20 * time.Second},
	}
	if !reflect.DeepEqual(p.Entries, want) {
		t.Errorf("legacy compile mismatch:\ngot  %+v\nwant %+v", p.Entries, want)
	}
}

func TestMerge(t *testing.T) {
	if Merge(nil, nil) != nil {
		t.Error("merging two nil plans should stay nil")
	}
	a := &Plan{Entries: []Entry{{Kind: KindBernoulliLoss, P: 0.1}}}
	b := &Plan{Entries: []Entry{{Kind: KindMute, Count: 1}}}
	m := Merge(a, b)
	if len(m.Entries) != 2 || m.Entries[0].Kind != KindBernoulliLoss || m.Entries[1].Kind != KindMute {
		t.Errorf("merge order wrong: %+v", m.Entries)
	}
}

// TestGilbertElliottBursty drives the two-state chain across simulated
// time and checks it actually alternates: with pGood=0 and pBad=1 every
// loss happens inside a bad dwell, there is at least one of each state,
// and losses cluster into runs rather than an independent scatter.
func TestGilbertElliottBursty(t *testing.T) {
	eng := sim.NewEngine(42)
	g := newGilbertElliott(eng, eng.NewStream(), Entry{
		Kind:     KindGilbertElliott,
		PGood:    0,
		PBad:     1,
		MeanGood: 500 * time.Millisecond,
		MeanBad:  500 * time.Millisecond,
	})
	const samples = 2000
	outcomes := make([]bool, 0, samples)
	for i := 0; i < samples; i++ {
		eng.Schedule(time.Duration(i)*10*time.Millisecond, func() {
			outcomes = append(outcomes, g.Lost(nil) != 0)
		})
	}
	if err := eng.Run(samples * 10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	lost, runs := 0, 0
	for i, o := range outcomes {
		if o {
			lost++
			if i == 0 || !outcomes[i-1] {
				runs++
			}
		}
	}
	if lost == 0 || lost == len(outcomes) {
		t.Fatalf("chain never alternated: %d/%d lost", lost, len(outcomes))
	}
	// With 500 ms dwells sampled every 10 ms, a loss run averages ~50
	// consecutive samples; independent loss at the same rate would give
	// runs ≈ lost·(1-p) — hundreds. A generous factor still separates.
	if avg := float64(lost) / float64(runs); avg < 5 {
		t.Errorf("losses not bursty: %d losses in %d runs (avg run %.1f)", lost, runs, avg)
	}
}

// TestGilbertElliottDeterministic replays the chain under the same seed
// and expects the identical outcome sequence.
func TestGilbertElliottDeterministic(t *testing.T) {
	sample := func() []bool {
		eng := sim.NewEngine(7)
		g := newGilbertElliott(eng, eng.NewStream(), Entry{Kind: KindGilbertElliott, PGood: 0.05, PBad: 0.9})
		var out []bool
		for i := 0; i < 500; i++ {
			eng.Schedule(time.Duration(i)*37*time.Millisecond, func() {
				out = append(out, g.Lost(nil) != 0)
			})
		}
		if err := eng.Run(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if a, b := sample(), sample(); !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different Gilbert–Elliott sequences")
	}
}

func TestJamWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	region := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 100, Y: 100}}
	j := &jamWindow{eng: eng, from: sim.Time(time.Second), until: sim.Time(2 * time.Second), region: &region}
	// Before the window nothing is jammed (region check never reached,
	// so a nil iface is safe).
	if j.Lost(nil) != 0 {
		t.Error("jam active before its window")
	}
	done := false
	eng.Schedule(1500*time.Millisecond, func() { done = true })
	if err := eng.Run(1500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("probe event never ran")
	}
	// Inside the window the region gates the outcome; exercising the
	// real position path needs a radio interface, which the core-level
	// fault tests cover. Here we only pin the whole-arena variant.
	all := &jamWindow{eng: eng, from: sim.Time(time.Second)}
	if all.Lost(nil) == 0 {
		t.Error("whole-arena jam inactive inside its window")
	}
}

// TestSelectNodes pins the selection rules: explicit indices win,
// fraction rounds to a count, draws are deterministic per stream seed.
func TestSelectNodes(t *testing.T) {
	eng := sim.NewEngine(3)
	if got := selectNodes(Entry{Nodes: []int{4, 7}}, 10, eng.NewStream()); !reflect.DeepEqual(got, []int{4, 7}) {
		t.Errorf("explicit nodes not honored: %v", got)
	}
	if got := selectNodes(Entry{Fraction: 0.3}, 10, eng.NewStream()); len(got) != 3 {
		t.Errorf("fraction 0.3 of 10 should select 3 nodes, got %v", got)
	}
	a := selectNodes(Entry{Count: 5}, 20, sim.NewEngine(9).NewStream())
	b := selectNodes(Entry{Count: 5}, 20, sim.NewEngine(9).NewStream())
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed drew different node sets: %v vs %v", a, b)
	}
	seen := map[int]bool{}
	for _, idx := range a {
		if idx < 0 || idx >= 20 || seen[idx] {
			t.Fatalf("invalid or duplicate node index in draw %v", a)
		}
		seen[idx] = true
	}
}

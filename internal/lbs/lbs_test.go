package lbs

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"anongeo/internal/geo"
)

// testConfig is a small, fast workload for one backend.
func testConfig(b Backend) Config {
	cfg := DefaultConfig()
	cfg.Clients = 24
	cfg.Queries = 1500
	cfg.Duration = 60 * time.Second
	cfg.Backend = b
	cfg.K, cfg.GridLevel, cfg.Epsilon, cfg.KeyBits = 0, 0, 0, 0
	switch b {
	case BackendKAnon:
		cfg.K = 5
	case BackendGridCloak:
		cfg.GridLevel = 4
	case BackendGeoInd:
		cfg.Epsilon = 0.02
	case BackendPaperALS:
		cfg.KeyBits = 512
	}
	return cfg
}

// Every backend must be a pure function of its config: two runs with
// the same seed agree field for field (RSA randomness must never reach
// a metric).
func TestRunDeterministic(t *testing.T) {
	for _, b := range Backends() {
		b := b
		t.Run(string(b), func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(b)
			r1, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("same seed, different results:\n%+v\n%+v", r1, r2)
			}
			if r1.Answered == 0 {
				t.Fatalf("no queries answered: %+v", r1)
			}
			if r1.Epochs == 0 || r1.Reports != r1.Epochs*cfg.Clients {
				t.Fatalf("want %d reports over %d epochs, got %+v", r1.Epochs*cfg.Clients, r1.Epochs, r1)
			}
		})
	}
}

// A sweep grid must be bit-identical at any worker-pool width.
func TestSweepParallelWidths(t *testing.T) {
	req := SweepRequest{Base: testConfig(BackendKAnon)}
	req.Base.Queries = 500
	req.Ks = []int{2, 6}
	req.GridLevels = []int{3}
	req.Epsilons = []float64{0.05}
	req.UpdateSeconds = []float64{10}
	req, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	var ref []CurvePoint
	for _, par := range []int{1, 4} {
		orch, err := NewOrchestrator(Options{Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		outs, err := orch.Execute(req.Cells())
		if err != nil {
			t.Fatal(err)
		}
		points := Fold(req, outs)
		if ref == nil {
			ref = points
			continue
		}
		if !reflect.DeepEqual(ref, points) {
			t.Fatalf("parallel=%d diverged from serial:\n%+v\n%+v", par, ref, points)
		}
	}
	seen := map[string]int{}
	for _, p := range ref {
		seen[p.Backend]++
	}
	for _, b := range Backends() {
		if seen[string(b)] == 0 {
			t.Fatalf("backend %s missing from folded curve: %v", b, seen)
		}
	}
}

// kanon must never emit a cloak covering fewer than k clients, at any
// snapshot geometry the mobility model can produce.
func TestKAnonCloakInvariant(t *testing.T) {
	cfg := testConfig(BackendKAnon)
	for _, k := range []int{2, 5, 12, 24} {
		cfg.K = k
		an, err := newAnonymizer(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		ka := an.(*kAnon)
		rng := rand.New(rand.NewSource(int64(k)))
		for epoch := 0; epoch < 25; epoch++ {
			pos := make([]geo.Point, cfg.Clients)
			for i := range pos {
				pos[i] = geo.Point{X: rng.Float64() * 1500, Y: rng.Float64() * 300}
			}
			exps, _, err := ka.BeginEpoch(0, pos)
			if err != nil {
				t.Fatal(err)
			}
			for i, box := range ka.boxes {
				occ := 0
				for _, q := range pos {
					if box.Contains(q) {
						occ++
					}
				}
				if occ < k {
					t.Fatalf("k=%d: client %d cloak %v covers %d < k clients", k, i, box, occ)
				}
				if !box.Contains(pos[i]) {
					t.Fatalf("k=%d: client %d cloak %v excludes its owner at %v", k, i, box, pos[i])
				}
			}
			for _, e := range exps {
				if e.Hidden || e.Suppressed {
					t.Fatalf("k=%d <= clients: report unexpectedly hidden: %+v", k, e)
				}
				if e.ReidProb > 1/float64(k)+1e-12 {
					t.Fatalf("k=%d: reid prob %v exceeds 1/k", k, e.ReidProb)
				}
			}
		}
	}
}

// The n<k degenerate case: the cloaking agent must suppress reports
// entirely rather than emit an undersized cloak, and queries must go
// unanswered.
func TestKAnonDegenerateSuppression(t *testing.T) {
	cfg := testConfig(BackendKAnon)
	cfg.Clients = 4
	cfg.Buddies = 2
	cfg.Queries = 200
	cfg.K = 9 // more than the whole population
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answered != 0 {
		t.Fatalf("suppressed backend answered %d queries", res.Answered)
	}
	if res.SuppressedEpochs != res.Epochs {
		t.Fatalf("want every epoch suppressed, got %d/%d", res.SuppressedEpochs, res.Epochs)
	}
	if res.TotalSightings != 0 {
		t.Fatalf("suppressed backend leaked %d sightings", res.TotalSightings)
	}
	if res.HiddenReports != res.Reports || res.Reports == 0 {
		t.Fatalf("want all %d reports hidden, got %d", res.Reports, res.HiddenReports)
	}
	if res.ReportBytes != 0 {
		t.Fatalf("suppressed backend sent %d report bytes", res.ReportBytes)
	}
}

// paperals answers must be exact up to float32 sealing plus staleness,
// and its reports must stay at the prior re-identification probability.
func TestPaperALSExactness(t *testing.T) {
	cfg := testConfig(BackendPaperALS)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answered != cfg.Queries {
		t.Fatalf("paperals answered %d of %d", res.Answered, cfg.Queries)
	}
	// Staleness bound: a target moves at most MaxSpeed * UpdateInterval
	// between its sealed report and the query.
	bound := cfg.MaxSpeed*cfg.UpdateInterval.Seconds() + 1
	if res.P95ErrM > bound {
		t.Fatalf("paperals p95 error %v exceeds staleness bound %v", res.P95ErrM, bound)
	}
	prior := 1 / float64(cfg.Clients)
	if math.Abs(res.MeanReidProb-prior) > 1e-9 {
		t.Fatalf("paperals mean reid prob %v, want prior %v", res.MeanReidProb, prior)
	}
	if res.MeanCloakM2 != 0 {
		t.Fatalf("paperals answers are points, got cloak area %v", res.MeanCloakM2)
	}
}

// The MaxTrackSightings cap must bound the linker input and be recorded
// rather than silent.
func TestTrackSightingCap(t *testing.T) {
	cfg := testConfig(BackendGridCloak)
	cfg.MaxTrackSightings = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrackedSightings != 50 {
		t.Fatalf("tracked %d sightings, want the 50 cap", res.TrackedSightings)
	}
	if res.TotalSightings <= 50 {
		t.Fatalf("test needs more than 50 total sightings, got %d", res.TotalSightings)
	}
}

func TestValidateFieldErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Clients = 1 }, "field clients"},
		{func(c *Config) { c.Backend = "teleport" }, "field backend"},
		{func(c *Config) { c.K = 1 }, "field k"},
		{func(c *Config) { c.Backend = BackendGeoInd; c.K = 5 }, "field k"},
		{func(c *Config) { c.Backend = BackendGridCloak; c.K = 0 }, "field grid_level"},
		{func(c *Config) { c.Backend = BackendPaperALS; c.K = 0; c.KeyBits = 128 }, "field key_bits"},
		{func(c *Config) { c.Buddies = 0 }, "field buddies"},
		{func(c *Config) { c.UpdateInterval = 0 }, "field update_interval"},
		{func(c *Config) { c.MaxTrackSightings = 0 }, "field max_track_sightings"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("want error mentioning %q, got %v", tc.want, err)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// The tighter the grid (higher level), the smaller the cloak and the
// higher the re-identification probability — the monotone tradeoff the
// curves are built from.
func TestGridLevelTradeoffMonotone(t *testing.T) {
	var lastCloak, lastReid float64
	for i, level := range []int{2, 4, 6} {
		cfg := testConfig(BackendGridCloak)
		cfg.GridLevel = level
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if res.MeanCloakM2 >= lastCloak {
				t.Fatalf("level %d cloak %v not below previous %v", level, res.MeanCloakM2, lastCloak)
			}
			if res.MeanReidProb < lastReid {
				t.Fatalf("level %d reid %v fell below previous %v", level, res.MeanReidProb, lastReid)
			}
		}
		lastCloak, lastReid = res.MeanCloakM2, res.MeanReidProb
	}
}

package lbs

import (
	"fmt"
	"io"
	"time"

	"anongeo/internal/exp"
)

// SweepRequest expands into a grid of LBS cells: backend × that
// backend's parameter axis × query volume, all over one Base workload.
// The zero-value slices default to every backend and a three-point axis
// each, which is what `lbsbench -backend all` runs.
type SweepRequest struct {
	// Base is the shared workload shape. Its Backend and
	// backend-specific parameters are overwritten per cell.
	Base Config `json:"base"`
	// Backends to sweep; empty means all four in canonical order.
	Backends []string `json:"backends,omitempty"`
	// Ks is the kanon axis (cloak size).
	Ks []int `json:"ks,omitempty"`
	// GridLevels is the gridcloak axis (precision level).
	GridLevels []int `json:"grid_levels,omitempty"`
	// Epsilons is the geoind axis (1/meters).
	Epsilons []float64 `json:"epsilons,omitempty"`
	// UpdateSeconds is the paperals axis: the report interval trades
	// staleness error against sealed-update overhead.
	UpdateSeconds []float64 `json:"update_seconds,omitempty"`
	// QueryCounts is the load axis; empty means [Base.Queries].
	QueryCounts []int `json:"query_counts,omitempty"`
}

// Default parameter axes, three points per backend.
var (
	DefaultKs            = []int{2, 5, 10}
	DefaultGridLevels    = []int{3, 5, 7}
	DefaultEpsilons      = []float64{0.005, 0.02, 0.1}
	DefaultUpdateSeconds = []float64{5, 15, 45}
)

// Normalize fills defaults into a copy of the request and validates
// every cell config it would expand to. The returned request expands to
// the same cells on every call — serve uses its canonical encoding as
// the job's content address.
func (r SweepRequest) Normalize() (SweepRequest, error) {
	out := r
	if out.Backends == nil {
		for _, b := range Backends() {
			out.Backends = append(out.Backends, string(b))
		}
	} else {
		out.Backends = append([]string(nil), r.Backends...)
	}
	for _, b := range out.Backends {
		if _, err := ParseBackend(b); err != nil {
			return SweepRequest{}, err
		}
	}
	out.Ks = fillSlice(r.Ks, DefaultKs)
	out.GridLevels = fillSlice(r.GridLevels, DefaultGridLevels)
	out.Epsilons = fillSlice(r.Epsilons, DefaultEpsilons)
	out.UpdateSeconds = fillSlice(r.UpdateSeconds, DefaultUpdateSeconds)
	out.QueryCounts = fillSlice(r.QueryCounts, []int{out.Base.Queries})
	for _, c := range out.Cells() {
		if err := c.Config.Validate(); err != nil {
			return SweepRequest{}, fmt.Errorf("cell %q: %w", c.Label, err)
		}
	}
	return out, nil
}

func fillSlice[T any](v, def []T) []T {
	if len(v) == 0 {
		return append([]T(nil), def...)
	}
	return append([]T(nil), v...)
}

// axis returns a backend's parameter axis as (name, values).
func (r SweepRequest) axis(b Backend) (string, []float64) {
	switch b {
	case BackendKAnon:
		return "k", toFloats(r.Ks)
	case BackendGridCloak:
		return "level", toFloats(r.GridLevels)
	case BackendGeoInd:
		return "eps", r.Epsilons
	default:
		return "update_s", r.UpdateSeconds
	}
}

func toFloats(v []int) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

// cellConfig derives the config for one grid point, zeroing the
// parameters other backends own so the encoding stays canonical.
func (r SweepRequest) cellConfig(b Backend, value float64, queries int) Config {
	cfg := r.Base
	cfg.Backend = b
	cfg.Queries = queries
	cfg.K, cfg.GridLevel, cfg.Epsilon, cfg.KeyBits = 0, 0, 0, 0
	switch b {
	case BackendKAnon:
		cfg.K = int(value)
	case BackendGridCloak:
		cfg.GridLevel = int(value)
	case BackendGeoInd:
		cfg.Epsilon = value
	case BackendPaperALS:
		cfg.KeyBits = r.Base.KeyBits
		if cfg.KeyBits == 0 {
			cfg.KeyBits = 512
		}
		cfg.UpdateInterval = time.Duration(value * float64(time.Second))
	}
	return cfg
}

// Cells expands the normalized request into orchestrator cells in the
// fixed order Fold expects: backend, then parameter value, then query
// count. Call Normalize first; an un-normalized request expands only
// the axes it has.
func (r SweepRequest) Cells() []exp.Cell[Config] {
	var cells []exp.Cell[Config]
	for _, name := range r.Backends {
		b := Backend(name)
		param, values := r.axis(b)
		for _, v := range values {
			for _, q := range r.QueryCounts {
				cells = append(cells, exp.Cell[Config]{
					Label:  fmt.Sprintf("%s/%s=%g/q=%d", b, param, v, q),
					Config: r.cellConfig(b, v, q),
				})
			}
		}
	}
	return cells
}

// NumCells reports how many cells the request expands to.
func (r SweepRequest) NumCells() int { return len(r.Cells()) }

// CurvePoint is one point of a privacy-vs-utility curve: a backend at
// one parameter value and load, with its full scored result.
type CurvePoint struct {
	Backend string  `json:"backend"`
	Param   string  `json:"param"`
	Value   float64 `json:"value"`
	Queries int     `json:"queries"`
	Result  Result  `json:"result"`
}

// Fold pairs Cells-order outcomes back with their grid coordinates.
func Fold(r SweepRequest, outs []exp.Outcome[Result]) []CurvePoint {
	var points []CurvePoint
	i := 0
	for _, name := range r.Backends {
		b := Backend(name)
		param, values := r.axis(b)
		for _, v := range values {
			for _, q := range r.QueryCounts {
				points = append(points, CurvePoint{
					Backend: string(b), Param: param, Value: v, Queries: q,
					Result: outs[i].Value,
				})
				i++
			}
		}
	}
	return points
}

// Options tunes sweep execution, mirroring core.SweepOptions.
type Options struct {
	// Parallel bounds the worker pool; ≤0 means GOMAXPROCS, 1 is serial.
	Parallel int
	// CacheDir, when non-empty, memoizes cell results on disk there.
	CacheDir string
	// Retries re-runs a failed cell that many extra times.
	Retries int
	// Hooks receive run telemetry.
	Hooks []exp.Hook
}

// NewOrchestrator builds the exp orchestrator LBS grids run on. Every
// cell is cacheable: Run is a pure function of its config.
func NewOrchestrator(opt Options) (*exp.Orchestrator[Config, Result], error) {
	o := &exp.Orchestrator[Config, Result]{
		Run:         Run,
		RunCtx:      RunContext,
		Parallel:    opt.Parallel,
		Retries:     opt.Retries,
		SimDuration: func(c Config) time.Duration { return c.Duration },
		Hooks:       opt.Hooks,
	}
	if opt.CacheDir != "" {
		cache, err := exp.Open(opt.CacheDir)
		if err != nil {
			return nil, err
		}
		o.Cache = cache
	}
	return o, nil
}

// WriteCurvesCSV renders curve points as CSV, one row per grid point.
func WriteCurvesCSV(w io.Writer, points []CurvePoint) error {
	if _, err := fmt.Fprintln(w, "backend,param,value,queries,answered,mean_err_m,p95_err_m,mean_cloak_m2,bytes_per_query,mean_service_us,report_bytes,mean_reid_prob,tracks,linked_fraction,reid_fraction,mean_track_s,tracked_sightings,total_sightings"); err != nil {
		return err
	}
	for _, p := range points {
		r := p.Result
		if _, err := fmt.Fprintf(w, "%s,%s,%g,%d,%d,%.3f,%.3f,%.1f,%.2f,%.2f,%d,%.6f,%d,%.4f,%.4f,%.3f,%d,%d\n",
			p.Backend, p.Param, p.Value, p.Queries, r.Answered, r.MeanErrM, r.P95ErrM,
			r.MeanCloakM2, r.BytesPerQuery, r.MeanServiceUS, r.ReportBytes, r.MeanReidProb,
			r.Tracking.Tracks, r.Tracking.LinkedFraction, r.Tracking.ReidentifiedFraction,
			r.Tracking.MeanDurationS, r.TrackedSightings, r.TotalSightings); err != nil {
			return err
		}
	}
	return nil
}

// Package lbs is a synthetic location-based-service (LBS) query-serving
// workload: a deterministic, seeded population of mobile clients reports
// positions to an untrusted provider through a pluggable anonymization
// backend, other clients look those positions up, and the run scores
// both sides of the privacy-vs-utility tradeoff.
//
// The scenario is the classic buddy-tracking LBS: every UpdateInterval
// each client reports its (anonymized) position; queries ask the
// provider for a buddy's latest report. Four backends implement the
// report channel:
//
//   - paperals: the paper's encrypted-index ALS — reports are sealed
//     under each anticipated requester's RSA key and stored by opaque
//     index (locservice.SealLocation/ComputeIndex), so the provider
//     learns nothing; queries leak only the cleartext reply location.
//   - kanon: k-anonymity spatial cloaking — each report is the bounding
//     box of the client's k nearest clients, so the provider can pin a
//     report only to a box holding at least k candidates.
//   - gridcloak: multi-resolution precision-grid snapping — reports are
//     quantized to a geo.GridMap cell at a configurable level.
//   - geoind: geo-indistinguishability — reports are perturbed with
//     planar Laplace noise at privacy parameter ε.
//
// Each run emits a utility record per query (distance error against the
// mobility ground truth, cloak area, wire bytes from the locservice
// cost models, modeled service latency) and an adversary exposure
// record per report, fed through internal/adversary's pseudonym linker
// and scored with adversary.ScoreTracks. internal/exp folds grids of
// runs into privacy-vs-utility curves (see SweepRequest).
//
// Determinism contract: Run is a pure function of Config. All
// randomness comes from seed-derived math/rand streams drawn in a fixed
// order; crypto/rand is used only inside RSA operations whose outputs
// never reach a metric (ciphertext sizes are fixed by the key size).
// Executing a sweep at any parallel width is bit-identical to serial.
package lbs

import (
	"fmt"
	"time"

	"anongeo/internal/geo"
)

// Backend names one anonymization scheme for the report channel.
type Backend string

// The four report-channel backends, in canonical sweep order.
const (
	BackendPaperALS  Backend = "paperals"
	BackendKAnon     Backend = "kanon"
	BackendGridCloak Backend = "gridcloak"
	BackendGeoInd    Backend = "geoind"
)

// Backends returns every backend in canonical order.
func Backends() []Backend {
	return []Backend{BackendPaperALS, BackendKAnon, BackendGridCloak, BackendGeoInd}
}

// ParseBackend validates a backend name.
func ParseBackend(s string) (Backend, error) {
	b := Backend(s)
	switch b {
	case BackendPaperALS, BackendKAnon, BackendGridCloak, BackendGeoInd:
		return b, nil
	}
	return "", fmt.Errorf("lbs: field backend: value %q: want paperals | kanon | gridcloak | geoind", s)
}

// Config fully determines one LBS workload cell. Backend-specific
// parameters (K, GridLevel, Epsilon, KeyBits) must be zero unless the
// selected backend uses them, so a config has exactly one canonical
// encoding and the experiment cache never stores the same workload
// under two keys.
type Config struct {
	// Seed derives every random stream in the run.
	Seed int64 `json:"seed"`
	// Clients is the mobile population size (>= 2).
	Clients int `json:"clients"`
	// Queries is the number of lookup queries spread uniformly over
	// Duration.
	Queries int `json:"queries"`
	// Area is the deployment rectangle clients roam in.
	Area geo.Rect `json:"area"`
	// Duration is the simulated time horizon.
	Duration time.Duration `json:"duration"`
	// UpdateInterval is the report epoch: every client reports once per
	// interval.
	UpdateInterval time.Duration `json:"update_interval"`
	// MinSpeed/MaxSpeed/Pause parameterize the random waypoint mobility
	// (meters/second; see internal/mobility).
	MinSpeed float64       `json:"min_speed"`
	MaxSpeed float64       `json:"max_speed"`
	Pause    time.Duration `json:"pause"`
	// Buddies is each client's lookup fan-in: queries from client q go
	// to one of its Buddies successors, and (for paperals) those are
	// exactly the anticipated requesters reports are sealed for.
	Buddies int `json:"buddies"`

	// Backend selects the anonymization scheme.
	Backend Backend `json:"backend"`
	// K is the kanon cloak size (>= 2; kanon only).
	K int `json:"k,omitempty"`
	// GridLevel is the gridcloak resolution: cell side =
	// max(area width, height) / 2^GridLevel (1..20; gridcloak only).
	GridLevel int `json:"grid_level,omitempty"`
	// Epsilon is the geoind privacy parameter in 1/meters (geoind only).
	Epsilon float64 `json:"epsilon,omitempty"`
	// KeyBits is the paperals RSA modulus size (>= 512; paperals only).
	KeyBits int `json:"key_bits,omitempty"`

	// MaxTrackSightings caps the number of exposure sightings fed to the
	// pseudonym linker (its cost is superlinear); the run records how
	// many were tracked vs produced, so the cap is never silent.
	MaxTrackSightings int `json:"max_track_sightings"`
}

// DefaultConfig is a small, fast kanon workload; sweeps override the
// backend and its parameter axis.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Clients:        200,
		Queries:        10000,
		Area:           geo.NewRect(1500, 300),
		Duration:       120 * time.Second,
		UpdateInterval: 10 * time.Second,
		// Short pause (vs the routing paper's 60 s): waypoint models rest
		// one full pause before their first move, and an LBS staleness
		// curve needs clients that actually move during the run.
		MinSpeed:          1,
		MaxSpeed:          20,
		Pause:             5 * time.Second,
		Buddies:           4,
		Backend:           BackendKAnon,
		K:                 5,
		MaxTrackSightings: 20000,
	}
}

// fieldErr builds the package's field+value validation error.
func fieldErr(field string, value any, want string) error {
	return fmt.Errorf("lbs: field %s: value %v: %s", field, value, want)
}

// Validate checks the config, rejecting backend parameters that the
// selected backend does not use (canonical-encoding rule above).
func (c Config) Validate() error {
	if c.Clients < 2 {
		return fieldErr("clients", c.Clients, "need at least 2 clients")
	}
	if c.Queries < 1 {
		return fieldErr("queries", c.Queries, "need at least 1 query")
	}
	if c.Area.Width() <= 0 || c.Area.Height() <= 0 {
		return fieldErr("area", c.Area, "need a rectangle with positive extent")
	}
	if c.UpdateInterval <= 0 {
		return fieldErr("update_interval", c.UpdateInterval, "must be positive")
	}
	if c.Duration < c.UpdateInterval {
		return fieldErr("duration", c.Duration, "must cover at least one update interval")
	}
	if c.MinSpeed <= 0 {
		return fieldErr("min_speed", c.MinSpeed, "must be positive")
	}
	if c.MaxSpeed < c.MinSpeed {
		return fieldErr("max_speed", c.MaxSpeed, "must be >= min_speed")
	}
	if c.Pause < 0 {
		return fieldErr("pause", c.Pause, "must be non-negative")
	}
	if c.Buddies < 1 || c.Buddies >= c.Clients {
		return fieldErr("buddies", c.Buddies, "must be in [1, clients-1]")
	}
	if c.MaxTrackSightings < 1 {
		return fieldErr("max_track_sightings", c.MaxTrackSightings, "must be positive")
	}
	if _, err := ParseBackend(string(c.Backend)); err != nil {
		return err
	}
	if c.Backend != BackendKAnon && c.K != 0 {
		return fieldErr("k", c.K, "only meaningful for backend kanon")
	}
	if c.Backend != BackendGridCloak && c.GridLevel != 0 {
		return fieldErr("grid_level", c.GridLevel, "only meaningful for backend gridcloak")
	}
	if c.Backend != BackendGeoInd && c.Epsilon != 0 {
		return fieldErr("epsilon", c.Epsilon, "only meaningful for backend geoind")
	}
	if c.Backend != BackendPaperALS && c.KeyBits != 0 {
		return fieldErr("key_bits", c.KeyBits, "only meaningful for backend paperals")
	}
	switch c.Backend {
	case BackendKAnon:
		if c.K < 2 {
			return fieldErr("k", c.K, "kanon needs k >= 2")
		}
	case BackendGridCloak:
		if c.GridLevel < 1 || c.GridLevel > 20 {
			return fieldErr("grid_level", c.GridLevel, "gridcloak needs a level in [1, 20]")
		}
	case BackendGeoInd:
		if c.Epsilon <= 0 {
			return fieldErr("epsilon", c.Epsilon, "geoind needs epsilon > 0")
		}
	case BackendPaperALS:
		if c.KeyBits < 512 {
			return fieldErr("key_bits", c.KeyBits, "paperals needs key_bits >= 512")
		}
	}
	return nil
}

package lbs

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"anongeo/internal/adversary"
	"anongeo/internal/geo"
	"anongeo/internal/mobility"
	"anongeo/internal/sim"
)

// Result is the scored outcome of one LBS workload cell: the utility
// side (answer quality, wire cost, modeled latency) and the privacy
// side (re-identification posterior over reports, pseudonym-linking
// tracking scores). Every field is a pure function of the Config.
type Result struct {
	Backend string `json:"backend"`
	Clients int    `json:"clients"`
	Epochs  int    `json:"epochs"`

	// Utility.
	Queries       int     `json:"queries"`
	Answered      int     `json:"answered"`
	MeanErrM      float64 `json:"mean_err_m"`        // answered queries: |answer − truth|
	P95ErrM       float64 `json:"p95_err_m"`         //
	MeanCloakM2   float64 `json:"mean_cloak_m2"`     // answered queries' cloak area
	BytesPerQuery float64 `json:"bytes_per_query"`   // query+reply wire bytes
	MeanServiceUS float64 `json:"mean_service_us"`   // modeled service latency
	ReportBytes   int64   `json:"report_bytes"`      // total uplink report bytes
	MeanReportErr float64 `json:"mean_report_err_m"` // visible reports' spatial distortion

	// Privacy.
	Reports          int                  `json:"reports"`
	HiddenReports    int                  `json:"hidden_reports"`
	SuppressedEpochs int                  `json:"suppressed_epochs"`
	MeanReidProb     float64              `json:"mean_reid_prob"` // snapshot-aware posterior on report owners
	TotalSightings   int                  `json:"total_sightings"`
	TrackedSightings int                  `json:"tracked_sightings"` // fed to the linker (MaxTrackSightings cap)
	Tracking         adversary.TrackScore `json:"tracking"`
}

// Run executes one workload cell; it is the exp.RunFunc for LBS sweeps.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// ownedSighting is one linkable exposure with its ground-truth owner,
// the linker's input plus the label ScoreTracks grades against.
type ownedSighting struct {
	owner int
	s     adversary.Sighting
	err   float64
}

// RunContext is Run under a context, checked once per report epoch.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}

	// Seed-derived streams, drawn in fixed order so adding a consumer
	// later cannot silently shift the others.
	master := rand.New(rand.NewSource(cfg.Seed))
	mobSeed := master.Int63()
	querySeed := master.Int63()
	backendSeed := master.Int63()

	an, err := newAnonymizer(cfg, backendSeed)
	if err != nil {
		return Result{}, err
	}

	mobRng := rand.New(rand.NewSource(mobSeed))
	models := make([]*mobility.Waypoint, cfg.Clients)
	for i := range models {
		start := mobility.RandomStart(cfg.Area, mobRng)
		models[i] = mobility.NewWaypoint(mobility.WaypointConfig{
			Bounds:   cfg.Area,
			MinSpeed: cfg.MinSpeed,
			MaxSpeed: cfg.MaxSpeed,
			Pause:    sim.Time(cfg.Pause),
			Start:    start,
		}, rand.New(rand.NewSource(mobRng.Int63())))
	}

	// Queries spread uniformly over the horizon, each from a random
	// client to one of its Buddies successors (the relation paperals
	// seals for, used by every backend so workloads stay comparable).
	horizon := sim.Time(cfg.Duration)
	qRng := rand.New(rand.NewSource(querySeed))
	queries := make([]Query, cfg.Queries)
	var prevAt sim.Time
	for i := range queries {
		at := sim.Time(float64(horizon) * (float64(i) / float64(cfg.Queries)))
		if at < prevAt {
			at = prevAt
		}
		prevAt = at
		querier := qRng.Intn(cfg.Clients)
		target := (querier + 1 + qRng.Intn(cfg.Buddies)) % cfg.Clients
		queries[i] = Query{At: at, Querier: querier, Target: target}
	}

	res := Result{Backend: string(cfg.Backend), Clients: cfg.Clients, Queries: cfg.Queries}
	var (
		sumReid, sumReportErr       float64
		visibleReports              int
		sumErr, sumArea, sumService float64
		sumBytes                    int64
		errs                        []float64
		pool                        []ownedSighting
		poolErrSum                  float64
	)
	addSighting := func(owner int, at sim.Time, loc geo.Point, dErr float64) {
		res.TotalSightings++
		if len(pool) < cfg.MaxTrackSightings {
			pool = append(pool, ownedSighting{owner: owner, s: adversary.Sighting{At: at, Loc: loc}, err: dErr})
			poolErrSum += dErr
		}
	}

	pos := make([]geo.Point, cfg.Clients)
	step := sim.Time(cfg.UpdateInterval)
	qi := 0
	for t := sim.Time(0); t < horizon; t += step {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		for i := range models {
			pos[i] = models[i].PositionAt(t)
		}
		exps, bytes, err := an.BeginEpoch(t, pos)
		if err != nil {
			return Result{}, err
		}
		res.Epochs++
		res.ReportBytes += int64(bytes)
		suppressed := false
		for _, e := range exps {
			res.Reports++
			sumReid += e.ReidProb
			if e.Suppressed {
				suppressed = true
			}
			if e.Hidden {
				res.HiddenReports++
				continue
			}
			visibleReports++
			sumReportErr += e.Err
			addSighting(e.Owner, e.At, e.Loc, e.Err)
		}
		if suppressed {
			res.SuppressedEpochs++
		}

		lo := qi
		for qi < len(queries) && queries[qi].At < t+step {
			qi++
		}
		answers, err := an.Serve(queries[lo:qi])
		if err != nil {
			return Result{}, err
		}
		for k, a := range answers {
			q := queries[lo+k]
			sumBytes += int64(a.Bytes)
			sumService += a.ServiceUS
			if a.Exposure != nil {
				e := a.Exposure
				addSighting(e.Owner, e.At, e.Loc, e.Err)
			}
			if !a.OK {
				continue
			}
			res.Answered++
			truth := models[q.Target].PositionAt(q.At)
			d := a.Est.Dist(truth)
			errs = append(errs, d)
			sumErr += d
			sumArea += a.AreaM2
		}
	}

	if res.Answered > 0 {
		res.MeanErrM = sumErr / float64(res.Answered)
		res.MeanCloakM2 = sumArea / float64(res.Answered)
		sort.Float64s(errs)
		res.P95ErrM = errs[(len(errs)-1)*95/100]
	}
	res.BytesPerQuery = float64(sumBytes) / float64(cfg.Queries)
	res.MeanServiceUS = sumService / float64(cfg.Queries)
	if res.Reports > 0 {
		res.MeanReidProb = sumReid / float64(res.Reports)
	}
	if visibleReports > 0 {
		res.MeanReportErr = sumReportErr / float64(visibleReports)
	}

	// Tracking attack: every linkable exposure becomes a one-shot
	// pseudonym sighting; the linker tries to chain them back into
	// trajectories and ScoreTracks grades the chains against the owner
	// ground truth. The linker's positional slack is calibrated to the
	// scheme's mean distortion — the strongest honest setting.
	res.TrackedSightings = len(pool)
	byPseudonym := make(map[string][]adversary.Sighting, len(pool))
	truth := make(map[string]string, len(pool))
	for i, o := range pool {
		ps := fmt.Sprintf("x%07d", i)
		byPseudonym[ps] = []adversary.Sighting{o.s}
		truth[ps] = fmt.Sprintf("c%04d", o.owner)
	}
	lcfg := adversary.LinkerConfig{
		MaxSpeed: cfg.MaxSpeed,
		MaxGap:   2*step + sim.Second,
		Slack:    5,
	}
	if len(pool) > 0 {
		lcfg.Slack += 2 * poolErrSum / float64(len(pool))
	}
	tracks := adversary.LinkPseudonyms(byPseudonym, lcfg)
	res.Tracking = adversary.ScoreTracks(tracks, truth)
	return res, nil
}

package lbs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/locservice"
	"anongeo/internal/sim"
)

// Exposure is one adversary-observable record the provider (or an
// eavesdropper on the provider link) gets to keep. Hidden exposures are
// either encrypted beyond use (paperals reports) or never sent
// (suppressed kanon reports); they still score at the prior 1/Clients
// so backends that reveal nothing are rewarded, but they carry no
// linkable sighting.
type Exposure struct {
	// Owner is the client index the record is truly about.
	Owner int
	At    sim.Time
	// Loc is the revealed position (cloak center, grid-cell center,
	// noised point, or a paperals cleartext reply location). Meaningless
	// when Hidden.
	Loc geo.Point
	// AreaM2 is the revealed region's area; 0 for point reveals.
	AreaM2 float64
	// Err is the distance from Loc to the owner's true position — the
	// spatial distortion the scheme bought its privacy with.
	Err float64
	// ReidProb is the posterior probability a snapshot-aware adversary
	// (one that knows every client's true position this epoch) assigns
	// to the record's true owner.
	ReidProb float64
	// Hidden marks records that yield no linkable sighting.
	Hidden bool
	// Suppressed marks reports withheld entirely (kanon with fewer than
	// k clients); implies Hidden.
	Suppressed bool
}

// Query is one buddy lookup: querier asks the provider for target's
// latest report. Queries arrive in non-decreasing At order.
type Query struct {
	At      sim.Time
	Querier int
	Target  int
}

// Answer is the provider's response plus its modeled cost.
type Answer struct {
	// OK reports whether the provider had a servable record.
	OK bool
	// Est is the answered position estimate (cloak/cell center or
	// point).
	Est geo.Point
	// AreaM2 is the answer's cloak area; 0 for point answers.
	AreaM2 float64
	// Bytes is the query + reply wire size from the cost models below.
	Bytes int
	// ServiceUS is the modeled end-to-end service latency in
	// microseconds (wire time + provider lookup + any crypto).
	ServiceUS float64
	// Exposure is the query-channel leak, if the scheme has one
	// (paperals LREQs carry a cleartext reply location).
	Exposure *Exposure
}

// anonymizer is the pluggable report+query channel. Implementations are
// driven strictly in order: BeginEpoch at each report epoch, then Serve
// for the queries of the window that epoch opens.
type anonymizer interface {
	// BeginEpoch installs the epoch's true-position snapshot, refreshes
	// the provider's records, and returns one exposure per client plus
	// the total uplink report bytes.
	BeginEpoch(t sim.Time, pos []geo.Point) ([]Exposure, int, error)
	// Serve answers the window's queries against the current records.
	Serve(window []Query) ([]Answer, error)
}

// Modeled service-cost constants, microseconds. The wire term matches a
// ~16 Mbit/s access link; the RSA terms model paper-era RSA-512 (the
// decrypt is the requester's trial-decryption of the sealed reply, the
// index term the modular exponentiation behind ComputeIndex). They are
// constants, not measurements, so results stay deterministic.
const (
	usPerByte   = 0.5
	usLookup    = 2
	usRSAIndex  = 30
	usRSAOpen   = 1500
	usCloakScan = 8 // provider-side occupancy scan amortized per query
)

// Plain-protocol wire sizes (bytes): type tag + fields. The paperals
// sizes come from locservice's cost model instead.
const (
	bytesKAnonReport = 1 + 8 + 32 + 8 // tag, pseudonym, box, timestamp
	bytesGridReport  = 1 + 8 + 8 + 8  // tag, pseudonym, cell, timestamp
	bytesPointReport = 1 + 8 + 16 + 8 // tag, pseudonym, point, timestamp
	bytesPlainQuery  = 1 + 8 + 8      // tag, target ref, reply nonce
	bytesKAnonReply  = 1 + 32 + 8     // tag, box, timestamp
	bytesGridReply   = 1 + 8 + 8      // tag, cell, timestamp
	bytesPointReply  = 1 + 16 + 8     // tag, point, timestamp
	bytesMissReply   = 2              // tag, miss marker
)

// newAnonymizer builds the configured backend. rngSeed feeds backends
// that draw randomness (geoind); the others ignore it.
func newAnonymizer(cfg Config, rngSeed int64) (anonymizer, error) {
	switch cfg.Backend {
	case BackendPaperALS:
		return newPaperALS(cfg)
	case BackendKAnon:
		return &kAnon{cfg: cfg}, nil
	case BackendGridCloak:
		size := math.Max(cfg.Area.Width(), cfg.Area.Height()) / math.Pow(2, float64(cfg.GridLevel))
		return &gridCloak{cfg: cfg, grid: geo.NewGridMap(cfg.Area, size)}, nil
	case BackendGeoInd:
		return &geoInd{cfg: cfg, rng: rand.New(rand.NewSource(rngSeed))}, nil
	}
	return nil, fmt.Errorf("lbs: field backend: value %q: no such backend", cfg.Backend)
}

// ---------------------------------------------------------------- paperals

// paperALS wraps the paper's encrypted-index ALS: reports are sealed
// once per anticipated requester (the Buddies predecessors relation)
// and stored under opaque indices; the provider can serve lookups
// without ever learning an identity or a position. The query-side LREQ
// leaks the requester's cleartext reply location (the paper sends it in
// the clear; it is unlinked, carried under a one-shot pseudonym).
type paperALS struct {
	cfg  Config
	keys []*anoncrypto.KeyPair
	// idx[i][j] is the precomputed storage index for client i's report
	// sealed for requester (i-1-j mod clients), j in [0, Buddies).
	idx [][]locservice.Index
	srv *locservice.Server
	pos []geo.Point
}

func newPaperALS(cfg Config) (*paperALS, error) {
	p := &paperALS{
		cfg: cfg,
		// TTL of two epochs: a record survives until its next refresh
		// plus slack, so every in-window query finds a live record and
		// the expiry path still runs.
		srv: locservice.NewServer(2 * sim.Time(cfg.UpdateInterval)),
		pos: make([]geo.Point, cfg.Clients),
	}
	p.keys = make([]*anoncrypto.KeyPair, cfg.Clients)
	for i := range p.keys {
		kp, err := anoncrypto.GenerateKeyPair(clientID(i), cfg.KeyBits)
		if err != nil {
			return nil, err
		}
		p.keys[i] = kp
	}
	p.idx = make([][]locservice.Index, cfg.Clients)
	for i := range p.idx {
		p.idx[i] = make([]locservice.Index, cfg.Buddies)
		for j := 0; j < cfg.Buddies; j++ {
			r := requesterOf(i, j, cfg.Clients)
			p.idx[i][j] = locservice.ComputeIndex(p.keys[r].Public(), clientID(i), clientID(r))
		}
	}
	return p, nil
}

// clientID names client i; short so it fits locservice's payload cap.
func clientID(i int) anoncrypto.Identity {
	return anoncrypto.Identity(fmt.Sprintf("c%04d", i))
}

// requesterOf is the j-th anticipated requester of client i: the
// Buddies relation makes client q query targets q+1..q+Buddies, so i's
// requesters are its predecessors i-1..i-Buddies.
func requesterOf(i, j, clients int) int {
	return ((i-1-j)%clients + clients) % clients
}

func (p *paperALS) BeginEpoch(t sim.Time, pos []geo.Point) ([]Exposure, int, error) {
	copy(p.pos, pos)
	exps := make([]Exposure, 0, len(pos))
	bytes := 0
	prior := 1 / float64(p.cfg.Clients)
	for i, loc := range pos {
		for j := 0; j < p.cfg.Buddies; j++ {
			r := requesterOf(i, j, p.cfg.Clients)
			sealed, err := locservice.SealLocation(p.keys[r].Public(), clientID(i), loc, t)
			if err != nil {
				return nil, 0, err
			}
			p.srv.Apply(&locservice.Update{Index: p.idx[i][j], Sealed: sealed}, t)
		}
		bytes += p.cfg.Buddies * locservice.UpdateBytes()
		exps = append(exps, Exposure{Owner: i, At: t, ReidProb: prior, Hidden: true})
	}
	return exps, bytes, nil
}

func (p *paperALS) Serve(window []Query) ([]Answer, error) {
	if len(window) == 0 {
		return nil, nil
	}
	qs := make([]locservice.Query, len(window))
	for i, q := range window {
		j := ((q.Target-1-q.Querier)%p.cfg.Clients + p.cfg.Clients) % p.cfg.Clients
		if j >= p.cfg.Buddies {
			return nil, fmt.Errorf("lbs: paperals: query %d->%d outside the buddy relation", q.Querier, q.Target)
		}
		qs[i] = locservice.Query{Index: p.idx[q.Target][j], ReplyLoc: p.pos[q.Querier]}
	}
	now := window[len(window)-1].At
	reps, _ := p.srv.AnswerBatch(qs, now)
	out := make([]Answer, len(window))
	for i, q := range window {
		a := Answer{Bytes: locservice.QueryBytes()}
		// The LREQ's cleartext reply location is the query channel's
		// honest leak: a precise, unlinked, one-shot-pseudonym sighting
		// of the requester.
		a.Exposure = &Exposure{Owner: q.Querier, At: q.At, Loc: p.pos[q.Querier]}
		if rep := reps[i]; rep != nil {
			_, loc, _, err := locservice.OpenLocation(p.keys[q.Querier].Private, rep.Sealed[0])
			if err != nil {
				return nil, fmt.Errorf("lbs: paperals: opening reply for %d->%d: %w", q.Querier, q.Target, err)
			}
			a.OK = true
			a.Est = loc
			a.Bytes += rep.ReplyBytes()
			a.ServiceUS = float64(a.Bytes)*usPerByte + usLookup + usRSAIndex + usRSAOpen
		} else {
			a.Bytes += bytesMissReply
			a.ServiceUS = float64(a.Bytes)*usPerByte + usLookup + usRSAIndex
		}
		out[i] = a
	}
	return out, nil
}

// ---------------------------------------------------------------- kanon

// kAnon is k-anonymity spatial cloaking: each report is the bounding
// box of the client and its k-1 nearest clients, so the provider's view
// of any report always covers at least k candidates. When fewer than k
// clients exist the trusted cloaking agent must suppress reports
// entirely — the degenerate case the invariant test pins.
type kAnon struct {
	cfg   Config
	boxes []geo.Rect
	occ   []int
	ok    bool
}

func (k *kAnon) BeginEpoch(t sim.Time, pos []geo.Point) ([]Exposure, int, error) {
	n := len(pos)
	prior := 1 / float64(n)
	exps := make([]Exposure, 0, n)
	if n < k.cfg.K {
		// Degenerate case: suppress every report rather than emit a
		// cloak covering fewer than k clients.
		k.ok = false
		for i := range pos {
			exps = append(exps, Exposure{Owner: i, At: t, ReidProb: prior, Hidden: true, Suppressed: true})
		}
		return exps, 0, nil
	}
	if k.boxes == nil {
		k.boxes = make([]geo.Rect, n)
		k.occ = make([]int, n)
	}
	k.ok = true
	type cand struct {
		d2 float64
		j  int
	}
	cands := make([]cand, n)
	for i, p := range pos {
		for j, q := range pos {
			cands[j] = cand{d2: p.Dist2(q), j: j}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d2 != cands[b].d2 {
				return cands[a].d2 < cands[b].d2
			}
			return cands[a].j < cands[b].j
		})
		box := geo.Rect{Min: pos[i], Max: pos[i]}
		for _, c := range cands[:k.cfg.K] {
			q := pos[c.j]
			box.Min.X = math.Min(box.Min.X, q.X)
			box.Min.Y = math.Min(box.Min.Y, q.Y)
			box.Max.X = math.Max(box.Max.X, q.X)
			box.Max.Y = math.Max(box.Max.Y, q.Y)
		}
		occ := 0
		for _, q := range pos {
			if box.Contains(q) {
				occ++
			}
		}
		k.boxes[i], k.occ[i] = box, occ
		exps = append(exps, Exposure{
			Owner:    i,
			At:       t,
			Loc:      box.Center(),
			AreaM2:   box.Width() * box.Height(),
			Err:      box.Center().Dist(p),
			ReidProb: 1 / float64(occ),
		})
	}
	return exps, n * bytesKAnonReport, nil
}

func (k *kAnon) Serve(window []Query) ([]Answer, error) {
	out := make([]Answer, len(window))
	for i, q := range window {
		a := Answer{Bytes: bytesPlainQuery}
		if k.ok {
			box := k.boxes[q.Target]
			a.OK = true
			a.Est = box.Center()
			a.AreaM2 = box.Width() * box.Height()
			a.Bytes += bytesKAnonReply
		} else {
			a.Bytes += bytesMissReply
		}
		a.ServiceUS = float64(a.Bytes)*usPerByte + usLookup + usCloakScan
		out[i] = a
	}
	return out, nil
}

// ---------------------------------------------------------------- gridcloak

// gridCloak snaps reports to a precision grid: cell side is
// max(width, height) / 2^GridLevel, so the level axis sweeps cloak
// resolution the way hierarchical-partition schemes do.
type gridCloak struct {
	cfg   Config
	grid  geo.GridMap
	cells []geo.Cell
	occ   map[geo.Cell]int
}

func (g *gridCloak) BeginEpoch(t sim.Time, pos []geo.Point) ([]Exposure, int, error) {
	if g.cells == nil {
		g.cells = make([]geo.Cell, len(pos))
	}
	g.occ = make(map[geo.Cell]int, len(pos))
	for i, p := range pos {
		c := g.grid.CellOf(p)
		g.cells[i] = c
		g.occ[c]++
	}
	exps := make([]Exposure, 0, len(pos))
	for i, p := range pos {
		c := g.cells[i]
		r := g.grid.CellRect(c)
		exps = append(exps, Exposure{
			Owner:    i,
			At:       t,
			Loc:      g.grid.Center(c),
			AreaM2:   r.Width() * r.Height(),
			Err:      g.grid.Center(c).Dist(p),
			ReidProb: 1 / float64(g.occ[c]),
		})
	}
	return exps, len(pos) * bytesGridReport, nil
}

func (g *gridCloak) Serve(window []Query) ([]Answer, error) {
	out := make([]Answer, len(window))
	for i, q := range window {
		c := g.cells[q.Target]
		r := g.grid.CellRect(c)
		out[i] = Answer{
			OK:        true,
			Est:       g.grid.Center(c),
			AreaM2:    r.Width() * r.Height(),
			Bytes:     bytesPlainQuery + bytesGridReply,
			ServiceUS: float64(bytesPlainQuery+bytesGridReply)*usPerByte + usLookup,
		}
	}
	return out, nil
}

// ---------------------------------------------------------------- geoind

// geoInd perturbs each report with planar Laplace noise, the standard
// geo-indistinguishability mechanism: direction uniform, radius from
// the Gamma(2, 1/ε) radial law (the sum of two Exp(ε) draws).
type geoInd struct {
	cfg    Config
	rng    *rand.Rand
	noised []geo.Point
}

func (g *geoInd) BeginEpoch(t sim.Time, pos []geo.Point) ([]Exposure, int, error) {
	if g.noised == nil {
		g.noised = make([]geo.Point, len(pos))
	}
	eps := g.cfg.Epsilon
	for i, p := range pos {
		theta := 2 * math.Pi * g.rng.Float64()
		// 1-Float64() is in (0, 1], keeping the logs finite.
		r := -(math.Log(1-g.rng.Float64()) + math.Log(1-g.rng.Float64())) / eps
		g.noised[i] = geo.Point{X: p.X + r*math.Cos(theta), Y: p.Y + r*math.Sin(theta)}
	}
	exps := make([]Exposure, 0, len(pos))
	for i, p := range pos {
		exps = append(exps, Exposure{
			Owner:    i,
			At:       t,
			Loc:      g.noised[i],
			Err:      g.noised[i].Dist(p),
			ReidProb: g.posterior(i, pos),
		})
	}
	return exps, len(pos) * bytesPointReport, nil
}

// posterior is the snapshot-aware adversary's Bayesian update: with a
// uniform prior over clients and the planar-Laplace likelihood
// exp(-ε·d), the posterior on the true owner is its normalized
// likelihood. Distances are taken relative to the nearest candidate so
// the exponentials stay in range at large ε.
func (g *geoInd) posterior(i int, pos []geo.Point) float64 {
	obs := g.noised[i]
	min := math.Inf(1)
	for _, q := range pos {
		if d := obs.Dist(q); d < min {
			min = d
		}
	}
	var denom, own float64
	for j, q := range pos {
		w := math.Exp(-g.cfg.Epsilon * (obs.Dist(q) - min))
		denom += w
		if j == i {
			own = w
		}
	}
	return own / denom
}

func (g *geoInd) Serve(window []Query) ([]Answer, error) {
	out := make([]Answer, len(window))
	for i, q := range window {
		out[i] = Answer{
			OK:        true,
			Est:       g.noised[q.Target],
			Bytes:     bytesPlainQuery + bytesPointReply,
			ServiceUS: float64(bytesPlainQuery+bytesPointReply)*usPerByte + usLookup,
		}
	}
	return out, nil
}

// Package mac implements a simplified but behaviorally faithful IEEE
// 802.11 DCF: CSMA/CA with DIFS deferral and slotted binary-exponential
// backoff, an optional RTS/CTS handshake plus MAC-level ACK and
// retransmission for unicast, plain CSMA for broadcast, and NAV virtual
// carrier sensing.
//
// The asymmetry between the unicast and broadcast paths is exactly what
// the paper's evaluation measures: GPSR unicast pays the handshake and
// enjoys MAC retransmissions; AGFW broadcast skips the handshake (saving
// latency) but loses frames to hidden terminals unless the network layer
// adds its own acknowledgments.
package mac

import (
	"math/rand"
	"time"

	"anongeo/internal/mobility"
	"anongeo/internal/radio"
	"anongeo/internal/sim"
)

// phase tracks where the DCF is in the life of the current transmit job.
type phase int

const (
	phaseIdle    phase = iota + 1 // no pending job
	phaseAccess                   // contending (DIFS/backoff) for cur
	phaseTxRTS                    // our RTS is on the air
	phaseWaitCTS                  // RTS sent, awaiting CTS
	phaseTxData                   // our unicast DATA is on the air
	phaseWaitAck                  // DATA sent, awaiting ACK
	phaseTxBcast                  // our broadcast DATA is on the air
)

// Stats counts MAC-level activity for metrics and tests.
type Stats struct {
	DataSent     int // data frames put on air (including retransmissions)
	RTSSent      int
	CTSSent      int
	AckSent      int
	Delivered    int // data frames handed to the upper layer
	Retries      int // unicast retransmission attempts
	RetryDrops   int // jobs dropped after exhausting the retry limit
	QueueDrops   int // jobs rejected because the transmit queue was full
	DupsDropped  int // duplicate unicast data frames suppressed
	BytesOnAir   int64
	NAVDeferrals int // times an overheard NAV reserved the medium for us
}

// DeliverFunc receives a data frame's payload at the upper layer.
type DeliverFunc func(src Addr, payload any, payloadBytes int)

// txJob is one queued network-layer send request.
type txJob struct {
	dst     Addr
	payload any
	bytes   int
	done    func(ok bool)
	retries int
	seq     uint16
}

// DCF is one node's 802.11 MAC entity. All methods must be called from
// simulation events (single-threaded).
type DCF struct {
	eng   *sim.Engine
	iface *radio.Iface
	p     Params
	rng   *rand.Rand

	addr    Addr
	deliver DeliverFunc
	// snoop, when set, receives every clean data frame addressed to some
	// other node (promiscuous overhearing). Watchdog-style defenses use
	// it to observe whether a chosen relay actually forwarded; it is
	// read-only and never affects MAC behavior.
	snoop func(src, dst Addr, payload any)

	queue []*txJob
	cur   *txJob
	ph    phase

	cw        int
	slotsLeft int
	counting  bool
	countFrom sim.Time
	difsEv    *sim.Event
	backoffEv *sim.Event
	waitEv    *sim.Event
	navEv     *sim.Event
	navUntil  sim.Time

	responding bool
	seq        uint16
	lastSeq    map[Addr]uint16

	down bool

	stats Stats
}

var _ radio.Receiver = (*DCF)(nil)

// New attaches a DCF interface to the channel. addr is this node's
// link-layer address (use Broadcast for AGFW's anonymous mode), deliver
// receives inbound data payloads, and rng must be a dedicated stream.
func New(eng *sim.Engine, ch *radio.Channel, model mobility.Model, p Params, addr Addr, deliver DeliverFunc, rng *rand.Rand) *DCF {
	d := &DCF{
		eng:     eng,
		p:       p,
		rng:     rng,
		addr:    addr,
		deliver: deliver,
		ph:      phaseIdle,
		cw:      p.CWMin,
		lastSeq: make(map[Addr]uint16),
	}
	d.iface = ch.AddNode(model, d)
	return d
}

// Addr reports the node's link-layer address.
func (d *DCF) Addr() Addr { return d.addr }

// SetDeliver installs the upper-layer delivery callback; routers that are
// constructed after their MAC use this to close the loop.
func (d *DCF) SetDeliver(fn DeliverFunc) { d.deliver = fn }

// SetSnoop installs a promiscuous observer for unicast data frames
// addressed to other nodes. The 802.11 receive path normally only
// honors such frames' NAV; a snoop additionally sees their payload —
// the overhearing a watchdog defense needs to confirm that a relay
// forwarded what it was handed. nil disables (the default).
func (d *DCF) SetSnoop(fn func(src, dst Addr, payload any)) { d.snoop = fn }

// SetDown fails or restores the node's radio, for churn and failure-
// injection experiments. While down, Send rejects immediately, queued
// jobs are flushed as failures, and inbound frames are ignored (the
// channel still sees the antenna as a passive obstacle-free point).
func (d *DCF) SetDown(down bool) {
	d.down = down
	if !down {
		return
	}
	// Abort the current job and everything queued behind it.
	d.pauseContention()
	d.cancelWait()
	if d.cur != nil {
		job := d.cur
		d.cur = nil
		d.ph = phaseIdle
		if job.done != nil {
			job.done(false)
		}
	}
	for _, job := range d.queue {
		if job.done != nil {
			job.done(false)
		}
	}
	d.queue = nil
	d.slotsLeft = 0
}

// Down reports whether the radio is failed.
func (d *DCF) Down() bool { return d.down }

// Iface exposes the underlying radio interface (position queries, tests).
func (d *DCF) Iface() *radio.Iface { return d.iface }

// Stats returns a snapshot of the MAC counters.
func (d *DCF) Stats() Stats { return d.stats }

// QueueLen reports the number of jobs waiting behind the current one.
func (d *DCF) QueueLen() int { return len(d.queue) }

// Send queues a network-layer packet of the given modeled size for
// transmission to dst (Broadcast for local broadcast). done, if non-nil,
// fires with the MAC-level outcome: true when the frame finished
// transmission (broadcast) or was acknowledged (unicast); false when it
// was dropped (queue overflow or retry exhaustion).
func (d *DCF) Send(dst Addr, payload any, payloadBytes int, done func(ok bool)) {
	if d.down {
		if done != nil {
			done(false)
		}
		return
	}
	job := &txJob{dst: dst, payload: payload, bytes: payloadBytes, done: done}
	if d.cur != nil {
		if len(d.queue) >= d.p.QueueLimit {
			d.stats.QueueDrops++
			if done != nil {
				done(false)
			}
			return
		}
		d.queue = append(d.queue, job)
		return
	}
	d.startJob(job)
}

// startJob makes job current and begins channel access.
func (d *DCF) startJob(job *txJob) {
	d.seq++
	job.seq = d.seq
	d.cur = job
	d.ph = phaseAccess
	d.cw = d.p.CWMin
	d.slotsLeft = d.rng.Intn(d.cw + 1)
	d.tryAccess()
}

// finishJob completes the current job and starts the next queued one.
// Per the standard, the contention window resets after any final
// transmission attempt — success or drop.
func (d *DCF) finishJob(ok bool) {
	job := d.cur
	d.cur = nil
	d.ph = phaseIdle
	d.cw = d.p.CWMin
	d.cancelWait()
	if job != nil && job.done != nil {
		job.done(ok)
	}
	if len(d.queue) > 0 && d.cur == nil {
		next := d.queue[0]
		d.queue = d.queue[1:]
		d.startJob(next)
	}
}

// mediumFree reports whether both physical and virtual carrier sense are
// clear.
func (d *DCF) mediumFree() bool {
	return !d.iface.Busy() && d.eng.Now() >= d.navUntil
}

// tryAccess begins or resumes the DIFS-then-backoff procedure for the
// current job, if conditions allow.
func (d *DCF) tryAccess() {
	if d.ph != phaseAccess || d.responding {
		return
	}
	if d.difsEv != nil || d.counting {
		return // already in progress
	}
	if !d.mediumFree() {
		d.armNAVTimer()
		return
	}
	d.difsEv = d.eng.Schedule(d.p.DIFS, d.onDIFSDone)
}

// armNAVTimer schedules a wakeup at NAV expiry when NAV is what blocks us.
func (d *DCF) armNAVTimer() {
	now := d.eng.Now()
	if d.navUntil <= now {
		return
	}
	if d.navEv != nil {
		return // already armed; NAV extensions re-arm on expiry
	}
	d.stats.NAVDeferrals++
	d.navEv = d.eng.At(d.navUntil, func() {
		d.navEv = nil
		d.tryAccess()
	})
}

// onDIFSDone fires when the medium stayed free for a full DIFS.
func (d *DCF) onDIFSDone() {
	d.difsEv = nil
	if d.slotsLeft == 0 {
		d.transmitCur()
		return
	}
	d.counting = true
	d.countFrom = d.eng.Now()
	d.backoffEv = d.eng.Schedule(time.Duration(d.slotsLeft)*d.p.SlotTime, d.onBackoffDone)
}

// onBackoffDone fires when the backoff counter reached zero.
func (d *DCF) onBackoffDone() {
	d.backoffEv = nil
	d.counting = false
	d.slotsLeft = 0
	d.transmitCur()
}

// pauseContention freezes DIFS/backoff when the medium turns busy,
// banking fully elapsed slots per the standard.
func (d *DCF) pauseContention() {
	if d.difsEv != nil {
		d.difsEv.Cancel()
		d.difsEv = nil
	}
	if d.counting {
		elapsed := d.eng.Now().Sub(d.countFrom)
		consumed := int(elapsed / d.p.SlotTime)
		if consumed > d.slotsLeft {
			consumed = d.slotsLeft
		}
		d.slotsLeft -= consumed
		d.backoffEv.Cancel()
		d.backoffEv = nil
		d.counting = false
	}
}

// cancelWait clears a pending CTS/ACK timeout.
func (d *DCF) cancelWait() {
	if d.waitEv != nil {
		d.waitEv.Cancel()
		d.waitEv = nil
	}
}

// transmitCur puts the current job's first (or only) frame on the air.
func (d *DCF) transmitCur() {
	job := d.cur
	if job == nil {
		return
	}
	if job.dst.IsBroadcast() {
		f := &Frame{
			Type:         FrameData,
			Src:          d.addr,
			Dst:          Broadcast,
			Seq:          job.seq,
			Payload:      job.payload,
			PayloadBytes: job.bytes,
		}
		d.ph = phaseTxBcast
		d.transmitFrame(f, d.p.DataAirtime(job.bytes), d.p.MACHeaderBytes+job.bytes)
		d.stats.DataSent++
		return
	}
	if d.p.UseRTSCTS {
		nav := 3*d.p.SIFS + d.p.CTSAirtime() + d.p.DataAirtime(job.bytes) + d.p.AckAirtime()
		f := &Frame{Type: FrameRTS, Src: d.addr, Dst: job.dst, NAV: nav}
		d.ph = phaseTxRTS
		d.transmitFrame(f, d.p.RTSAirtime(), d.p.RTSBytes)
		d.stats.RTSSent++
		return
	}
	d.transmitData()
}

// transmitData sends the current job's unicast DATA frame (directly, or
// after winning the RTS/CTS handshake).
func (d *DCF) transmitData() {
	job := d.cur
	if job == nil {
		return
	}
	f := &Frame{
		Type:         FrameData,
		Src:          d.addr,
		Dst:          job.dst,
		NAV:          d.p.SIFS + d.p.AckAirtime(),
		Seq:          job.seq,
		Payload:      job.payload,
		PayloadBytes: job.bytes,
	}
	d.ph = phaseTxData
	d.transmitFrame(f, d.p.DataAirtime(job.bytes), d.p.MACHeaderBytes+job.bytes)
	d.stats.DataSent++
}

// transmitFrame pauses contention and puts f on the air, scheduling the
// end-of-transmission handler.
func (d *DCF) transmitFrame(f *Frame, airtime time.Duration, bytes int) {
	d.pauseContention()
	d.stats.BytesOnAir += int64(bytes)
	d.iface.Transmit(bytes*8, airtime, f)
	d.eng.Schedule(airtime, func() { d.onTxEnd(f) })
}

// onTxEnd runs when our own frame leaves the air.
func (d *DCF) onTxEnd(f *Frame) {
	switch f.Type {
	case FrameRTS:
		if d.ph == phaseTxRTS {
			d.ph = phaseWaitCTS
			d.waitEv = d.eng.Schedule(d.p.ctsTimeout(), d.onWaitTimeout)
		}
	case FrameData:
		switch d.ph {
		case phaseTxBcast:
			d.finishJob(true)
		case phaseTxData:
			d.ph = phaseWaitAck
			d.waitEv = d.eng.Schedule(d.p.ackTimeout(), d.onWaitTimeout)
		}
	case FrameCTS, FrameAck:
		d.responding = false
		d.tryAccess()
	}
}

// onWaitTimeout fires when an expected CTS or ACK never arrived.
func (d *DCF) onWaitTimeout() {
	d.waitEv = nil
	job := d.cur
	if job == nil || (d.ph != phaseWaitCTS && d.ph != phaseWaitAck) {
		return
	}
	job.retries++
	if job.retries >= d.p.RetryLimit {
		d.stats.RetryDrops++
		d.finishJob(false)
		return
	}
	d.stats.Retries++
	d.ph = phaseAccess
	d.cw = min(2*d.cw+1, d.p.CWMax)
	d.slotsLeft = d.rng.Intn(d.cw + 1)
	d.tryAccess()
}

// inExchange reports whether we are mid-way through our own unicast
// exchange and therefore unable to serve as a CTS responder.
func (d *DCF) inExchange() bool {
	switch d.ph {
	case phaseTxRTS, phaseWaitCTS, phaseTxData, phaseWaitAck:
		return true
	default:
		return false
	}
}

// respond schedules a SIFS-separated control response (CTS or ACK).
// SIFS responses bypass carrier sensing per the standard.
func (d *DCF) respond(f *Frame, airtime time.Duration, bytes int) {
	d.responding = true
	d.pauseContention()
	d.eng.Schedule(d.p.SIFS, func() {
		if d.down || d.iface.Transmitting() {
			d.responding = false
			return
		}
		switch f.Type {
		case FrameCTS:
			d.stats.CTSSent++
		case FrameAck:
			d.stats.AckSent++
		}
		d.transmitFrame(f, airtime, bytes)
	})
}

// setNAV extends the virtual-carrier-sense reservation.
func (d *DCF) setNAV(dur time.Duration) {
	if dur <= 0 {
		return
	}
	until := d.eng.Now().Add(dur)
	if until > d.navUntil {
		d.navUntil = until
	}
}

// OnMediumBusy implements radio.Receiver.
func (d *DCF) OnMediumBusy() { d.pauseContention() }

// OnMediumIdle implements radio.Receiver.
func (d *DCF) OnMediumIdle() { d.tryAccess() }

// OnReceive implements radio.Receiver: a clean frame arrived.
func (d *DCF) OnReceive(tx *radio.Transmission) {
	if d.down {
		return
	}
	f, ok := tx.Payload.(*Frame)
	if !ok {
		return // foreign traffic on a shared test channel
	}
	switch f.Type {
	case FrameRTS:
		d.onRTS(f)
	case FrameCTS:
		d.onCTS(f)
	case FrameData:
		d.onData(f)
	case FrameAck:
		d.onAck(f)
	}
}

// onRTS handles an inbound RTS.
func (d *DCF) onRTS(f *Frame) {
	if f.IsToAddr(d.addr) {
		if d.inExchange() || d.responding {
			return // busy; requester will time out and retry
		}
		if d.eng.Now() < d.navUntil {
			return // standard: only respond when NAV is clear
		}
		nav := f.NAV - d.p.SIFS - d.p.CTSAirtime()
		if nav < 0 {
			nav = 0
		}
		cts := &Frame{Type: FrameCTS, Src: d.addr, Dst: f.Src, NAV: nav}
		d.respond(cts, d.p.CTSAirtime(), d.p.CTSBytes)
		return
	}
	d.setNAV(f.NAV)
}

// onCTS handles an inbound CTS.
func (d *DCF) onCTS(f *Frame) {
	if f.IsToAddr(d.addr) {
		if d.ph != phaseWaitCTS {
			return // stale CTS
		}
		d.cancelWait()
		d.eng.Schedule(d.p.SIFS, func() {
			if d.cur != nil && !d.iface.Transmitting() {
				d.transmitData()
			}
		})
		return
	}
	d.setNAV(f.NAV)
}

// onData handles an inbound data frame.
func (d *DCF) onData(f *Frame) {
	if f.Dst.IsBroadcast() {
		d.stats.Delivered++
		if d.deliver != nil {
			d.deliver(f.Src, f.Payload, f.PayloadBytes)
		}
		return
	}
	if f.Dst != d.addr {
		d.setNAV(f.NAV)
		if d.snoop != nil {
			d.snoop(f.Src, f.Dst, f.Payload)
		}
		return
	}
	if d.responding {
		return // a response is already pending; sender will retry
	}
	ack := &Frame{Type: FrameAck, Src: d.addr, Dst: f.Src}
	d.respond(ack, d.p.AckAirtime(), d.p.AckBytes)
	if last, seen := d.lastSeq[f.Src]; seen && last == f.Seq {
		d.stats.DupsDropped++
		return
	}
	d.lastSeq[f.Src] = f.Seq
	d.stats.Delivered++
	if d.deliver != nil {
		d.deliver(f.Src, f.Payload, f.PayloadBytes)
	}
}

// onAck handles an inbound ACK.
func (d *DCF) onAck(f *Frame) {
	if !f.IsToAddr(d.addr) || d.ph != phaseWaitAck {
		return
	}
	d.cancelWait()
	d.finishJob(true)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package mac

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Addr is a 6-byte link-layer address, the size of an IEEE 802 MAC
// address. GPSR nodes use stable per-node addresses; AGFW deliberately
// addresses every frame to Broadcast so the link layer leaks no identity
// (the paper's §3.2 requirement), and pseudonyms of the same width live in
// the network header instead.
type Addr [6]byte

// Broadcast is the all-ones link-layer broadcast address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IsBroadcast reports whether a is the broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

// String formats the address in colon-separated hex.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// AddrFromUint64 derives a stable address from an integer, convenient for
// assigning GPSR node addresses from node indices.
func AddrFromUint64(v uint64) Addr {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	var a Addr
	copy(a[:], b[2:])
	// Keep clear of the broadcast pattern.
	if a == Broadcast {
		a[0] = 0xfe
	}
	return a
}

// Uint64 returns the address bits as an integer — the inverse of
// AddrFromUint64 for the small values it produces. Consumers use it to
// index dense per-address tables.
func (a Addr) Uint64() uint64 {
	return uint64(a[0])<<40 | uint64(a[1])<<32 | uint64(a[2])<<24 |
		uint64(a[3])<<16 | uint64(a[4])<<8 | uint64(a[5])
}

// RandomAddr draws a uniformly random non-broadcast address from rng.
func RandomAddr(rng *rand.Rand) Addr {
	for {
		var a Addr
		binary.BigEndian.PutUint32(a[0:4], rng.Uint32())
		binary.BigEndian.PutUint16(a[4:6], uint16(rng.Uint32()))
		if !a.IsBroadcast() {
			return a
		}
	}
}

package mac

import "time"

// Params holds the DCF timing and framing constants. Defaults mirror the
// 802.11 DSSS PHY that NS-2's Mac802_11 modeled in the paper's era:
// 2 Mb/s data rate, 1 Mb/s basic (control) rate, long PLCP preamble.
type Params struct {
	SlotTime time.Duration
	SIFS     time.Duration
	DIFS     time.Duration
	// Preamble is the PLCP preamble+header time prefixed to every frame.
	Preamble time.Duration

	DataRate  int // bits per second for data frames
	BasicRate int // bits per second for control frames

	MACHeaderBytes int // data frame MAC header + FCS
	RTSBytes       int
	CTSBytes       int
	AckBytes       int

	CWMin int // initial contention window (slots), 2^n - 1
	CWMax int

	// RetryLimit is the maximum number of transmission attempts for one
	// unicast frame before the MAC drops it (802.11 short retry limit).
	RetryLimit int

	// UseRTSCTS guards unicast data with an RTS/CTS handshake, the
	// configuration the paper's GPSR baseline runs. Disabling it is the
	// ablation knob for measuring handshake cost.
	UseRTSCTS bool

	// QueueLimit bounds the interface transmit queue (drop tail), like
	// NS-2's 50-packet IFQ.
	QueueLimit int
}

// DefaultParams returns the 802.11 DSSS parameter set described above.
func DefaultParams() Params {
	return Params{
		SlotTime:       20 * time.Microsecond,
		SIFS:           10 * time.Microsecond,
		DIFS:           50 * time.Microsecond, // SIFS + 2 slots
		Preamble:       192 * time.Microsecond,
		DataRate:       2_000_000,
		BasicRate:      1_000_000,
		MACHeaderBytes: 28, // 24-byte header + 4-byte FCS
		RTSBytes:       20,
		CTSBytes:       14,
		AckBytes:       14,
		CWMin:          31,
		CWMax:          1023,
		RetryLimit:     7,
		UseRTSCTS:      true,
		QueueLimit:     50,
	}
}

// airtime reports how long a frame of the given total byte size occupies
// the medium at the given rate, including the PLCP preamble.
func (p Params) airtime(bytes, rate int) time.Duration {
	return p.Preamble + time.Duration(bytes)*8*time.Second/time.Duration(rate)
}

// DataAirtime reports the airtime of a data frame carrying payloadBytes.
func (p Params) DataAirtime(payloadBytes int) time.Duration {
	return p.airtime(p.MACHeaderBytes+payloadBytes, p.DataRate)
}

// RTSAirtime reports the RTS control frame airtime.
func (p Params) RTSAirtime() time.Duration { return p.airtime(p.RTSBytes, p.BasicRate) }

// CTSAirtime reports the CTS control frame airtime.
func (p Params) CTSAirtime() time.Duration { return p.airtime(p.CTSBytes, p.BasicRate) }

// AckAirtime reports the ACK control frame airtime.
func (p Params) AckAirtime() time.Duration { return p.airtime(p.AckBytes, p.BasicRate) }

// ctsTimeout is how long a sender waits for the CTS after its RTS ends.
func (p Params) ctsTimeout() time.Duration {
	return p.SIFS + p.CTSAirtime() + 2*p.SlotTime
}

// ackTimeout is how long a sender waits for the ACK after its DATA ends.
func (p Params) ackTimeout() time.Duration {
	return p.SIFS + p.AckAirtime() + 2*p.SlotTime
}

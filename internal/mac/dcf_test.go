package mac

import (
	"testing"
	"time"

	"anongeo/internal/geo"
	"anongeo/internal/mobility"
	"anongeo/internal/radio"
	"anongeo/internal/sim"
)

// testNet bundles an engine, channel, and a set of DCF nodes for tests.
type testNet struct {
	eng *sim.Engine
	ch  *radio.Channel
}

func newTestNet(seed int64) *testNet {
	eng := sim.NewEngine(seed)
	return &testNet{eng: eng, ch: radio.NewChannel(eng, 250)}
}

type inbox struct {
	from  []Addr
	pkts  []any
	bytes []int
}

func (in *inbox) deliver(src Addr, payload any, payloadBytes int) {
	in.from = append(in.from, src)
	in.pkts = append(in.pkts, payload)
	in.bytes = append(in.bytes, payloadBytes)
}

// addNode attaches a static DCF node at (x, y).
func (n *testNet) addNode(x, y float64, addr Addr) (*DCF, *inbox) {
	in := &inbox{}
	d := New(n.eng, n.ch, mobility.Static{At: geo.Pt(x, y)}, DefaultParams(), addr, in.deliver, n.eng.NewStream())
	return d, in
}

func a(i uint64) Addr { return AddrFromUint64(i) }

func TestBroadcastDelivery(t *testing.T) {
	n := newTestNet(1)
	tx, _ := n.addNode(0, 0, a(1))
	_, in1 := n.addNode(100, 0, a(2))
	_, in2 := n.addNode(200, 0, a(3))
	_, far := n.addNode(600, 0, a(4))
	var ok *bool
	n.eng.Schedule(0, func() {
		tx.Send(Broadcast, "beacon", 50, func(b bool) { ok = &b })
	})
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if ok == nil || !*ok {
		t.Fatal("broadcast did not complete")
	}
	if len(in1.pkts) != 1 || len(in2.pkts) != 1 {
		t.Fatalf("in-range receivers got %d/%d frames, want 1/1", len(in1.pkts), len(in2.pkts))
	}
	if len(far.pkts) != 0 {
		t.Fatal("out-of-range node received broadcast")
	}
	if in1.pkts[0] != "beacon" || in1.bytes[0] != 50 || in1.from[0] != a(1) {
		t.Fatalf("bad delivery: %v %v %v", in1.pkts[0], in1.bytes[0], in1.from[0])
	}
}

func TestUnicastHandshake(t *testing.T) {
	n := newTestNet(2)
	s, _ := n.addNode(0, 0, a(1))
	r, rin := n.addNode(100, 0, a(2))
	var ok *bool
	n.eng.Schedule(0, func() {
		s.Send(a(2), "pkt", 64, func(b bool) { ok = &b })
	})
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if ok == nil || !*ok {
		t.Fatal("unicast not acknowledged")
	}
	if len(rin.pkts) != 1 || rin.pkts[0] != "pkt" {
		t.Fatalf("receiver got %v", rin.pkts)
	}
	ss, rs := s.Stats(), r.Stats()
	if ss.RTSSent != 1 {
		t.Fatalf("RTSSent = %d, want 1", ss.RTSSent)
	}
	if rs.CTSSent != 1 {
		t.Fatalf("CTSSent = %d, want 1", rs.CTSSent)
	}
	if ss.DataSent != 1 {
		t.Fatalf("DataSent = %d, want 1", ss.DataSent)
	}
	if rs.AckSent != 1 {
		t.Fatalf("AckSent = %d, want 1", rs.AckSent)
	}
}

func TestUnicastWithoutRTSCTS(t *testing.T) {
	eng := sim.NewEngine(3)
	ch := radio.NewChannel(eng, 250)
	p := DefaultParams()
	p.UseRTSCTS = false
	in := &inbox{}
	s := New(eng, ch, mobility.Static{At: geo.Pt(0, 0)}, p, a(1), nil, eng.NewStream())
	r := New(eng, ch, mobility.Static{At: geo.Pt(100, 0)}, p, a(2), in.deliver, eng.NewStream())
	var ok *bool
	eng.Schedule(0, func() { s.Send(a(2), "x", 64, func(b bool) { ok = &b }) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if ok == nil || !*ok {
		t.Fatal("unicast failed")
	}
	if s.Stats().RTSSent != 0 {
		t.Fatal("RTS sent despite UseRTSCTS=false")
	}
	if r.Stats().AckSent != 1 {
		t.Fatal("no MAC ACK")
	}
	if len(in.pkts) != 1 {
		t.Fatalf("delivered %d", len(in.pkts))
	}
}

func TestUnicastToAbsentNodeDrops(t *testing.T) {
	n := newTestNet(4)
	s, _ := n.addNode(0, 0, a(1))
	var ok *bool
	n.eng.Schedule(0, func() {
		s.Send(a(99), "x", 64, func(b bool) { ok = &b })
	})
	if err := n.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ok == nil {
		t.Fatal("send callback never fired")
	}
	if *ok {
		t.Fatal("send to absent node reported success")
	}
	if s.Stats().RetryDrops != 1 {
		t.Fatalf("RetryDrops = %d, want 1", s.Stats().RetryDrops)
	}
	if s.Stats().RTSSent != DefaultParams().RetryLimit {
		t.Fatalf("RTSSent = %d, want retry limit %d", s.Stats().RTSSent, DefaultParams().RetryLimit)
	}
}

func TestQueueingMultiplePackets(t *testing.T) {
	n := newTestNet(5)
	s, _ := n.addNode(0, 0, a(1))
	_, rin := n.addNode(100, 0, a(2))
	oks := 0
	n.eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			s.Send(a(2), i, 64, func(b bool) {
				if b {
					oks++
				}
			})
		}
	})
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if oks != 10 {
		t.Fatalf("acked %d of 10", oks)
	}
	if len(rin.pkts) != 10 {
		t.Fatalf("delivered %d of 10", len(rin.pkts))
	}
	for i, p := range rin.pkts {
		if p != i {
			t.Fatalf("out-of-order delivery: pkt[%d] = %v", i, p)
		}
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	eng := sim.NewEngine(6)
	ch := radio.NewChannel(eng, 250)
	p := DefaultParams()
	p.QueueLimit = 2
	s := New(eng, ch, mobility.Static{At: geo.Pt(0, 0)}, p, a(1), nil, eng.NewStream())
	New(eng, ch, mobility.Static{At: geo.Pt(100, 0)}, p, a(2), nil, eng.NewStream())
	drops := 0
	eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			s.Send(a(2), i, 64, func(b bool) {
				if !b {
					drops++
				}
			})
		}
	})
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// 1 in flight + 2 queued = 3 accepted, 7 dropped.
	if drops != 7 {
		t.Fatalf("drops = %d, want 7", drops)
	}
	if s.Stats().QueueDrops != 7 {
		t.Fatalf("QueueDrops = %d, want 7", s.Stats().QueueDrops)
	}
}

func TestHiddenTerminalBroadcastLoss(t *testing.T) {
	// a(0) and b(500) are hidden from each other; m(250) hears both.
	// Saturating both with simultaneous broadcasts must lose frames at m.
	n := newTestNet(7)
	s1, _ := n.addNode(0, 0, a(1))
	s2, _ := n.addNode(500, 0, a(2))
	_, m := n.addNode(250, 0, a(3))
	sent := 0
	for i := 0; i < 50; i++ {
		d := time.Duration(i) * 700 * time.Microsecond
		n.eng.Schedule(d, func() { s1.Send(Broadcast, "a", 512, nil); sent++ })
		n.eng.Schedule(d, func() { s2.Send(Broadcast, "b", 512, nil); sent++ })
	}
	if err := n.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(m.pkts) >= sent {
		t.Fatalf("no loss: middle received %d of %d", len(m.pkts), sent)
	}
	if n.ch.Stats().Collisions == 0 {
		t.Fatal("no collisions recorded in hidden-terminal scenario")
	}
}

func TestHiddenTerminalUnicastRecoversViaRetry(t *testing.T) {
	// Same topology, but unicast to m: MAC retransmissions should recover
	// most frames even though RTS frames can still collide.
	n := newTestNet(8)
	s1, _ := n.addNode(0, 0, a(1))
	s2, _ := n.addNode(500, 0, a(2))
	m, mi := n.addNode(250, 0, a(3))
	acked := 0
	for i := 0; i < 25; i++ {
		d := time.Duration(i) * 5 * time.Millisecond
		n.eng.Schedule(d, func() {
			s1.Send(a(3), "a", 512, func(b bool) {
				if b {
					acked++
				}
			})
		})
		n.eng.Schedule(d, func() {
			s2.Send(a(3), "b", 512, func(b bool) {
				if b {
					acked++
				}
			})
		})
	}
	if err := n.eng.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if acked < 45 {
		t.Fatalf("only %d of 50 unicasts acked; MAC ARQ not recovering", acked)
	}
	if got := len(mi.pkts); got != acked {
		t.Fatalf("delivered %d but acked %d", got, acked)
	}
	_ = m
}

func TestNAVDefersThirdParty(t *testing.T) {
	// o overhears s→r RTS/CTS and must defer its own broadcast until the
	// exchange completes.
	n := newTestNet(9)
	s, _ := n.addNode(0, 0, a(1))
	_, _ = n.addNode(100, 0, a(2))
	o, _ := n.addNode(50, 0, a(3))
	var bcastDone sim.Time
	var exchangeDone sim.Time
	n.eng.Schedule(0, func() {
		s.Send(a(2), "big", 1000, func(bool) { exchangeDone = n.eng.Now() })
	})
	// Queue o's broadcast shortly after s's RTS is on the air.
	n.eng.Schedule(300*time.Microsecond, func() {
		o.Send(Broadcast, "b", 64, func(bool) { bcastDone = n.eng.Now() })
	})
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if exchangeDone == 0 || bcastDone == 0 {
		t.Fatal("transmissions did not complete")
	}
	if bcastDone < exchangeDone {
		t.Fatalf("overhearer transmitted at %v before exchange finished at %v (NAV violated)", bcastDone, exchangeDone)
	}
	if o.Stats().NAVDeferrals == 0 {
		t.Fatal("no NAV deferral recorded")
	}
}

func TestRetransmitDedup(t *testing.T) {
	// Force an ACK loss so s retransmits; r must deliver only once.
	// Topology: j jams the ACK by transmitting at r's ACK time from a
	// position that reaches s but not r... simpler: rely on statistics —
	// saturate two senders toward one receiver and verify the receiver
	// never delivers the same (src,seq) twice.
	n := newTestNet(10)
	s1, _ := n.addNode(0, 0, a(1))
	s2, _ := n.addNode(500, 0, a(2))
	r, rin := n.addNode(250, 0, a(3))
	for i := 0; i < 40; i++ {
		i := i
		d := time.Duration(i) * 2 * time.Millisecond
		n.eng.Schedule(d, func() { s1.Send(a(3), [2]int{1, i}, 512, nil) })
		n.eng.Schedule(d, func() { s2.Send(a(3), [2]int{2, i}, 512, nil) })
	}
	if err := n.eng.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int]int)
	for _, p := range rin.pkts {
		seen[p.([2]int)]++
	}
	for k, c := range seen {
		if c > 1 {
			t.Fatalf("packet %v delivered %d times", k, c)
		}
	}
	if r.Stats().DupsDropped == 0 && s1.Stats().Retries+s2.Stats().Retries > 0 {
		t.Log("note: retries occurred but no dup reached the receiver (ok)")
	}
}

func TestCarrierSenseSerializesNeighbors(t *testing.T) {
	// Two in-range senders broadcasting simultaneously: CSMA should let
	// them take turns, so a common receiver gets nearly all frames.
	n := newTestNet(11)
	s1, _ := n.addNode(0, 0, a(1))
	s2, _ := n.addNode(50, 0, a(2))
	_, m := n.addNode(100, 0, a(3))
	const each = 30
	n.eng.Schedule(0, func() {
		for i := 0; i < each; i++ {
			s1.Send(Broadcast, i, 256, nil)
			s2.Send(Broadcast, i, 256, nil)
		}
	})
	if err := n.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Initial same-slot collisions possible, but queue draining is
	// serialized by carrier sense; expect ≥90% delivery.
	if got := len(m.pkts); got < 2*each*9/10 {
		t.Fatalf("receiver got %d of %d; carrier sense not serializing", got, 2*each)
	}
}

func TestBroadcastLatencyBelowUnicast(t *testing.T) {
	// The core of the paper's Figure 1(b): an AGFW-style broadcast skips
	// the RTS/CTS handshake, so an uncontended hop is faster than a
	// unicast hop of the same size.
	measure := func(unicast bool) time.Duration {
		n := newTestNet(12)
		s, _ := n.addNode(0, 0, a(1))
		n.addNode(100, 0, a(2))
		var done sim.Time
		n.eng.Schedule(0, func() {
			dst := Broadcast
			if unicast {
				dst = a(2)
			}
			s.Send(dst, "x", 64, func(bool) { done = n.eng.Now() })
		})
		if err := n.eng.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		return done.Duration()
	}
	b, u := measure(false), measure(true)
	if b >= u {
		t.Fatalf("broadcast hop (%v) not faster than unicast hop (%v)", b, u)
	}
}

func TestCWResetAfterSuccess(t *testing.T) {
	n := newTestNet(13)
	s, _ := n.addNode(0, 0, a(1))
	n.addNode(100, 0, a(2))
	// First job fails (absent destination) and inflates cw; the next job
	// must start with a fresh CWMin window.
	n.eng.Schedule(0, func() { s.Send(a(99), "fail", 64, nil) })
	n.eng.Schedule(2*time.Second, func() { s.Send(a(2), "ok", 64, nil) })
	if err := n.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if s.cw != DefaultParams().CWMin {
		t.Fatalf("cw = %d after success, want CWMin", s.cw)
	}
}

func TestBackoffPausesWhileBusy(t *testing.T) {
	// While a long foreign frame occupies the medium, a contender must
	// not transmit. We saturate and check no transmissions overlap from
	// in-range nodes (which would show as collisions at the receiver).
	n := newTestNet(14)
	s1, _ := n.addNode(0, 0, a(1))
	s2, _ := n.addNode(10, 0, a(2))
	_, m := n.addNode(100, 0, a(3))
	n.eng.Schedule(0, func() {
		s1.Send(Broadcast, "long", 1400, nil)
		s2.Send(Broadcast, "other", 1400, nil)
	})
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(m.pkts) != 2 {
		t.Fatalf("receiver got %d of 2 frames from mutually-sensing senders", len(m.pkts))
	}
}

func TestDeliverNilCallbackSafe(t *testing.T) {
	n := newTestNet(15)
	s, _ := n.addNode(0, 0, a(1))
	New(n.eng, n.ch, mobility.Static{At: geo.Pt(100, 0)}, DefaultParams(), a(2), nil, n.eng.NewStream())
	n.eng.Schedule(0, func() { s.Send(Broadcast, "x", 10, nil) })
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestAddrHelpers(t *testing.T) {
	if !Broadcast.IsBroadcast() {
		t.Fatal("Broadcast not broadcast")
	}
	if a(5).IsBroadcast() {
		t.Fatal("unicast addr reported broadcast")
	}
	if a(5) == a(6) {
		t.Fatal("distinct ids same addr")
	}
	if s := a(0x0102030405).String(); s != "00:01:02:03:04:05" {
		t.Fatalf("String = %q", s)
	}
	if AddrFromUint64(0xffffffffffff).IsBroadcast() {
		t.Fatal("AddrFromUint64 produced broadcast")
	}
	eng := sim.NewEngine(1)
	for i := 0; i < 100; i++ {
		if RandomAddr(eng.Rand()).IsBroadcast() {
			t.Fatal("RandomAddr produced broadcast")
		}
	}
}

func TestFrameTypeString(t *testing.T) {
	want := map[FrameType]string{FrameData: "DATA", FrameRTS: "RTS", FrameCTS: "CTS", FrameAck: "ACK", FrameType(0): "FrameType(0)"}
	for ft, s := range want {
		if ft.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(ft), ft.String(), s)
		}
	}
}

func TestAirtimes(t *testing.T) {
	p := DefaultParams()
	// 64-byte payload + 28-byte header at 2 Mb/s = 368 µs + 192 µs preamble.
	if got, want := p.DataAirtime(64), 560*time.Microsecond; got != want {
		t.Errorf("DataAirtime(64) = %v, want %v", got, want)
	}
	if got, want := p.RTSAirtime(), 352*time.Microsecond; got != want {
		t.Errorf("RTSAirtime = %v, want %v", got, want)
	}
	if got, want := p.CTSAirtime(), 304*time.Microsecond; got != want {
		t.Errorf("CTSAirtime = %v, want %v", got, want)
	}
	if got, want := p.AckAirtime(), 304*time.Microsecond; got != want {
		t.Errorf("AckAirtime = %v, want %v", got, want)
	}
}

func TestStatsBytesOnAir(t *testing.T) {
	n := newTestNet(16)
	s, _ := n.addNode(0, 0, a(1))
	n.addNode(100, 0, a(2))
	n.eng.Schedule(0, func() { s.Send(Broadcast, "x", 100, nil) })
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().BytesOnAir; got != int64(100+DefaultParams().MACHeaderBytes) {
		t.Fatalf("BytesOnAir = %d", got)
	}
}

func TestManyNodesSaturationTerminates(t *testing.T) {
	// Smoke test: 20 mutually-in-range nodes all broadcasting; engine
	// must terminate and deliver a sane fraction.
	n := newTestNet(17)
	var nodes []*DCF
	total := 0
	for i := 0; i < 20; i++ {
		d, _ := n.addNode(float64(i)*10, 0, a(uint64(i+1)))
		nodes = append(nodes, d)
	}
	n.eng.Schedule(0, func() {
		for _, d := range nodes {
			for k := 0; k < 5; k++ {
				d.Send(Broadcast, k, 128, nil)
				total++
			}
		}
	})
	if err := n.eng.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := n.ch.Stats()
	if st.Transmissions < total {
		t.Fatalf("only %d transmissions for %d queued frames", st.Transmissions, total)
	}
}

func TestSetDownRejectsAndFlushes(t *testing.T) {
	n := newTestNet(30)
	s, _ := n.addNode(0, 0, a(1))
	n.addNode(100, 0, a(2))
	fails := 0
	n.eng.Schedule(0, func() {
		for i := 0; i < 5; i++ {
			s.Send(a(2), i, 64, func(ok bool) {
				if !ok {
					fails++
				}
			})
		}
		s.SetDown(true)
	})
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fails != 5 {
		t.Fatalf("flushed failures = %d, want 5", fails)
	}
	if !s.Down() {
		t.Fatal("Down() = false")
	}
	// Sends while down fail immediately.
	rejected := false
	n.eng.Schedule(0, func() { s.Send(a(2), "x", 8, func(ok bool) { rejected = !ok }) })
	if err := n.eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !rejected {
		t.Fatal("send while down succeeded")
	}
}

func TestSetDownDeafToFrames(t *testing.T) {
	n := newTestNet(31)
	s, _ := n.addNode(0, 0, a(1))
	r, rin := n.addNode(100, 0, a(2))
	r.SetDown(true)
	n.eng.Schedule(0, func() { s.Send(Broadcast, "x", 8, nil) })
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rin.pkts) != 0 {
		t.Fatal("down node received a frame")
	}
	// Back up: receives again.
	r.SetDown(false)
	n.eng.Schedule(0, func() { s.Send(Broadcast, "y", 8, nil) })
	if err := n.eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rin.pkts) != 1 {
		t.Fatalf("recovered node received %d frames, want 1", len(rin.pkts))
	}
}

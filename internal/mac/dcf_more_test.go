package mac

import (
	"testing"
	"time"

	"anongeo/internal/sim"
)

func TestCWDoublesOnRetries(t *testing.T) {
	// Sending to an absent destination walks the CW ladder; by the time
	// the job drops, cw should have been doubled toward CWMax and then
	// reset to CWMin when the next job starts.
	n := newTestNet(40)
	s, _ := n.addNode(0, 0, a(1))
	maxSeen := 0
	var probe func()
	probe = func() {
		if s.cw > maxSeen {
			maxSeen = s.cw
		}
		if n.eng.Now() < sim.Time(3*sim.Second) {
			n.eng.Schedule(time.Millisecond, probe)
		}
	}
	n.eng.Schedule(0, func() {
		s.Send(a(99), "x", 64, nil)
		probe()
	})
	if err := n.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if maxSeen <= DefaultParams().CWMin {
		t.Fatalf("cw never grew beyond CWMin (max seen %d)", maxSeen)
	}
	if maxSeen > DefaultParams().CWMax {
		t.Fatalf("cw exceeded CWMax: %d", maxSeen)
	}
	if s.cw != DefaultParams().CWMin {
		t.Fatalf("cw not reset after drop: %d", s.cw)
	}
}

func TestRetriesCountedInStats(t *testing.T) {
	n := newTestNet(41)
	s, _ := n.addNode(0, 0, a(1))
	n.eng.Schedule(0, func() { s.Send(a(99), "x", 64, nil) })
	if err := n.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Retries != DefaultParams().RetryLimit-1 {
		t.Fatalf("Retries = %d, want %d", st.Retries, DefaultParams().RetryLimit-1)
	}
}

func TestNAVExpiryResumesContention(t *testing.T) {
	// After an overheard exchange's NAV expires, a deferred broadcast
	// must eventually go out even with no further busy/idle edges.
	n := newTestNet(42)
	s, _ := n.addNode(0, 0, a(1))
	n.addNode(100, 0, a(2))
	o, _ := n.addNode(50, 0, a(3))
	var sent bool
	n.eng.Schedule(0, func() { s.Send(a(2), "big", 1200, nil) })
	n.eng.Schedule(400*time.Microsecond, func() {
		o.Send(Broadcast, "deferred", 32, func(ok bool) { sent = ok })
	})
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !sent {
		t.Fatal("NAV-deferred broadcast never completed")
	}
}

func TestQueueLen(t *testing.T) {
	n := newTestNet(43)
	s, _ := n.addNode(0, 0, a(1))
	n.addNode(100, 0, a(2))
	n.eng.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			s.Send(a(2), i, 64, nil)
		}
		if got := s.QueueLen(); got != 3 {
			t.Errorf("QueueLen = %d, want 3 (one in flight)", got)
		}
	})
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if s.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", s.QueueLen())
	}
}

func TestBroadcastIgnoredWhileDCFHasNoDeliver(t *testing.T) {
	// A node whose deliver callback was replaced via SetDeliver receives
	// through the new one.
	n := newTestNet(44)
	s, _ := n.addNode(0, 0, a(1))
	r, _ := n.addNode(100, 0, a(2))
	var got any
	r.SetDeliver(func(_ Addr, payload any, _ int) { got = payload })
	n.eng.Schedule(0, func() { s.Send(Broadcast, "rewired", 8, nil) })
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got != "rewired" {
		t.Fatalf("SetDeliver callback missed: %v", got)
	}
}

func TestUnicastToSelfAddressedFrameNotLooped(t *testing.T) {
	// A frame addressed to our own address from elsewhere delivers once;
	// we never "receive" frames we sent (half duplex + channel rules).
	n := newTestNet(45)
	s, sin := n.addNode(0, 0, a(1))
	r, _ := n.addNode(100, 0, a(2))
	n.eng.Schedule(0, func() { r.Send(a(1), "toS", 16, nil) })
	if err := n.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sin.pkts) != 1 || sin.pkts[0] != "toS" {
		t.Fatalf("inbox = %v", sin.pkts)
	}
	_ = s
}

package mac

import (
	"fmt"
	"time"
)

// FrameType enumerates the 802.11 frame kinds the DCF exchanges.
type FrameType int

// Frame kinds.
const (
	FrameData FrameType = iota + 1
	FrameRTS
	FrameCTS
	FrameAck
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "DATA"
	case FrameRTS:
		return "RTS"
	case FrameCTS:
		return "CTS"
	case FrameAck:
		return "ACK"
	default:
		return fmt.Sprintf("FrameType(%d)", int(t))
	}
}

// Frame is one 802.11 MAC frame. Control frames carry no payload; data
// frames carry an opaque network-layer packet plus its byte size so
// airtime is modeled correctly without serializing anything.
type Frame struct {
	Type FrameType
	Src  Addr
	Dst  Addr
	// NAV is the duration-field value: how long the medium stays reserved
	// for the remainder of this frame's exchange, measured from the end
	// of the frame. Overhearers defer for this long (virtual carrier
	// sense). Zero for broadcasts and ACKs.
	NAV time.Duration
	// Seq disambiguates retransmissions for receiver-side dedup.
	Seq uint16
	// Payload is the network-layer packet of a data frame.
	Payload any
	// PayloadBytes is the modeled network-layer size in bytes.
	PayloadBytes int
}

// IsToAddr reports whether the frame is unicast-addressed to a.
func (f *Frame) IsToAddr(a Addr) bool { return !f.Dst.IsBroadcast() && f.Dst == a }

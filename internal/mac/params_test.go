package mac

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.SIFS >= p.DIFS {
		t.Fatal("SIFS must be shorter than DIFS")
	}
	if p.DIFS != p.SIFS+2*p.SlotTime {
		t.Fatalf("DIFS = %v, want SIFS+2 slots", p.DIFS)
	}
	if p.CWMin >= p.CWMax {
		t.Fatal("CWMin must be below CWMax")
	}
	if (p.CWMin+1)&p.CWMin != 0 || (p.CWMax+1)&p.CWMax != 0 {
		t.Fatal("contention windows must be 2^n - 1")
	}
	if p.BasicRate > p.DataRate {
		t.Fatal("control frames cannot be faster than data")
	}
	if p.RetryLimit < 1 || p.QueueLimit < 1 {
		t.Fatal("limits must be positive")
	}
}

// Property: airtime is positive and strictly monotone in payload size.
func TestAirtimeMonotoneProperty(t *testing.T) {
	p := DefaultParams()
	prop := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw%4096), int(bRaw%4096)
		da, db := p.DataAirtime(a), p.DataAirtime(b)
		if da <= 0 || db <= 0 {
			return false
		}
		if a < b {
			return da < db
		}
		if a > b {
			return da > db
		}
		return da == db
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: control-frame airtimes are shorter than any data frame's.
func TestControlShorterThanDataProperty(t *testing.T) {
	p := DefaultParams()
	prop := func(nRaw uint16) bool {
		n := int(nRaw % 4096)
		d := p.DataAirtime(n)
		return p.RTSAirtime() < d+p.Preamble && p.CTSAirtime() <= p.RTSAirtime() && p.AckAirtime() <= p.RTSAirtime()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeoutsCoverResponses(t *testing.T) {
	p := DefaultParams()
	// A CTS arriving exactly SIFS after our RTS must beat the timeout.
	if p.ctsTimeout() <= p.SIFS+p.CTSAirtime() {
		t.Fatal("CTS timeout too tight")
	}
	if p.ackTimeout() <= p.SIFS+p.AckAirtime() {
		t.Fatal("ACK timeout too tight")
	}
}

func TestWholeExchangeDuration(t *testing.T) {
	// Sanity-pin the unicast exchange time the latency results build on:
	// RTS + CTS + DATA(64B) + ACK + 3 SIFS ≈ 1.55 ms at 2 Mb/s.
	p := DefaultParams()
	total := p.RTSAirtime() + p.CTSAirtime() + p.DataAirtime(64) + p.AckAirtime() + 3*p.SIFS
	if total < 1400*time.Microsecond || total > 1700*time.Microsecond {
		t.Fatalf("unicast exchange = %v, outside expected envelope", total)
	}
}

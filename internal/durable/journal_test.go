package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) (*Journal, [][]byte) {
	t.Helper()
	j, recs, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return j, recs
}

func appendAll(t *testing.T, j *Journal, recs ...[]byte) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal recovered %d records", len(recs))
	}
	want := [][]byte{[]byte("one"), []byte(""), []byte(`{"op":"admit","id":"x"}`), bytes.Repeat([]byte{0xAB}, 4096)}
	appendAll(t, j, want...)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got := openT(t, path)
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	// Recovery must keep the journal appendable.
	appendAll(t, j2, []byte("five"))
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	appendAll(t, j, []byte("alpha"), []byte("beta"))
	goodSize := j.Size()
	j.Close()

	// Simulate a crash mid-append: a partial frame at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x10, 0x00, 0x00}) // 3 of 8 header bytes
	f.Close()

	j2, recs := openT(t, path)
	defer j2.Close()
	if len(recs) != 2 || string(recs[0]) != "alpha" || string(recs[1]) != "beta" {
		t.Fatalf("recovered %q, want [alpha beta]", recs)
	}
	if j2.Size() != goodSize {
		t.Fatalf("size after recovery = %d, want truncation back to %d", j2.Size(), goodSize)
	}
	info, _ := os.Stat(path)
	if info.Size() != goodSize {
		t.Fatalf("file size = %d, want %d (torn tail must be physically truncated)", info.Size(), goodSize)
	}
}

func TestJournalBitFlipStopsAtCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	appendAll(t, j, []byte("alpha"), []byte("beta"), []byte("gamma"))
	j.Close()

	// Flip one payload bit inside the second record: recovery keeps the
	// prefix [alpha] and sacrifices everything after the corruption.
	b, _ := os.ReadFile(path)
	off := len(magic) + frameHeaderLen + len("alpha") + frameHeaderLen // first byte of "beta"
	b[off] ^= 0x01
	os.WriteFile(path, b, 0o644)

	j2, recs := openT(t, path)
	defer j2.Close()
	if len(recs) != 1 || string(recs[0]) != "alpha" {
		t.Fatalf("recovered %q, want [alpha]", recs)
	}
}

func TestJournalCorruptHeaderRecoversEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	appendAll(t, j, []byte("alpha"))
	j.Close()

	b, _ := os.ReadFile(path)
	b[2] ^= 0xFF
	os.WriteFile(path, b, 0o644)

	j2, recs := openT(t, path)
	defer j2.Close()
	if len(recs) != 0 {
		t.Fatalf("recovered %d records from a corrupt header, want 0", len(recs))
	}
	appendAll(t, j2, []byte("fresh"))
	j2.Close()
	_, recs2 := openT(t, path)
	if len(recs2) != 1 || string(recs2[0]) != "fresh" {
		t.Fatalf("after header rebuild recovered %q, want [fresh]", recs2)
	}
}

func TestJournalOversizedLengthIsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	appendAll(t, j, []byte("alpha"))
	j.Close()

	// Append a frame whose length field claims more than MaxRecord.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Close()

	j2, recs := openT(t, path)
	defer j2.Close()
	if len(recs) != 1 || string(recs[0]) != "alpha" {
		t.Fatalf("recovered %q, want [alpha]", recs)
	}
}

func TestJournalAppendTooLarge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	defer j.Close()
	if err := j.Append(make([]byte, MaxRecord+1)); err != ErrRecordTooLarge {
		t.Fatalf("Append(MaxRecord+1) = %v, want ErrRecordTooLarge", err)
	}
}

func TestRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	for i := 0; i < 100; i++ {
		appendAll(t, j, []byte(fmt.Sprintf("record-%03d", i)))
	}
	big := j.Size()
	j.Close()

	if err := Rewrite(path, [][]byte{[]byte("snapshot")}); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	j2, recs := openT(t, path)
	defer j2.Close()
	if len(recs) != 1 || string(recs[0]) != "snapshot" {
		t.Fatalf("after Rewrite recovered %q, want [snapshot]", recs)
	}
	if j2.Size() >= big {
		t.Fatalf("Rewrite did not compact: %d >= %d", j2.Size(), big)
	}
	appendAll(t, j2, []byte("after"))
}

func TestRewriteCreatesMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	if err := Rewrite(path, [][]byte{[]byte("a"), []byte("b")}); err != nil {
		t.Fatalf("Rewrite fresh: %v", err)
	}
	j, recs := openT(t, path)
	defer j.Close()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v2" {
		t.Fatalf("read %q, %v; want v2", b, err)
	}
	// No temp litter.
	ents, _ := os.ReadDir(filepath.Dir(path))
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(ents))
	}
}

// FuzzJournalRecovery is the torn-write fuzz for the journal tail: any
// truncation or bit-flip of a valid journal must recover without
// panicking, and the recovered records must be an exact prefix of what
// was appended — corruption may cost records, never invent or mutate
// them.
func FuzzJournalRecovery(f *testing.F) {
	f.Add(uint16(0), byte(0x01), uint8(3))
	f.Add(uint16(8), byte(0xFF), uint8(1))
	f.Add(uint16(12), byte(0x80), uint8(5))
	f.Add(uint16(200), byte(0x00), uint8(4)) // truncation-only probe
	f.Fuzz(func(t *testing.T, pos uint16, mask byte, nrec uint8) {
		dir := t.TempDir()
		path := filepath.Join(dir, "j.wal")
		j, _, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		n := int(nrec%8) + 1
		var want [][]byte
		for i := 0; i < n; i++ {
			rec := []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{byte('a' + i)}, i*7)))
			want = append(want, rec)
			if err := j.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()

		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Mutate: truncate at pos, then (when mask != 0 and bytes remain)
		// flip bits at pos-1.
		cut := int(pos) % (len(b) + 1)
		b = b[:cut]
		if mask != 0 && cut > 0 {
			b[cut-1] ^= mask
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}

		j2, got, err := Open(path)
		if err != nil {
			t.Fatalf("recovery errored: %v", err)
		}
		defer j2.Close()
		if len(got) > len(want) {
			t.Fatalf("recovered %d records from %d written", len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("record %d corrupted: got %q want %q", i, got[i], want[i])
			}
		}
		// The recovered journal must accept new appends and survive
		// another cycle.
		if err := j2.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}

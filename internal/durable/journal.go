// Package durable is the crash-safety toolkit under the long-running
// parts of the stack: a small append-only journal with CRC-framed
// records and torn-tail recovery, plus fsync-correct file helpers.
//
// The serve daemon writes its job WAL through Journal so a SIGKILL (or
// power loss) at any instant loses at most the record being appended;
// cmd/sweep checkpoints grid progress the same way; and the experiment
// cache writes entries through WriteFileAtomic so a half-written entry
// can never be read back as a hit.
//
// # Framing
//
// A journal file is an 8-byte magic header followed by records, each
// framed as
//
//	[uint32 LE payload length][uint32 LE CRC-32 (IEEE) of payload][payload]
//
// Append writes the frame and fsyncs before returning, so a record
// either survives whole or is a detectable torn tail. Recovery (Open)
// scans from the header and accepts records until the first frame that
// is short, oversized, or fails its checksum; everything from that
// offset on is discarded by truncation. The recovered sequence is
// therefore always a prefix of what was appended — never a reordering,
// never a partially-applied record.
//
// # What is and is not guaranteed
//
// Guaranteed: a record whose Append returned nil survives a crash; a
// torn or bit-flipped tail is detected and dropped, not surfaced.
// Not guaranteed: records after a corrupted one are recovered (recovery
// stops at the first bad frame — mid-file corruption sacrifices the
// valid suffix to preserve the prefix invariant), and a corrupted magic
// header drops the whole journal (an empty prefix is still a prefix).
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// magic identifies a journal file (and its framing version). A file
// that does not start with it is recovered as empty rather than
// misparsed.
const magic = "AGRJNL01"

// frameHeaderLen is the per-record framing overhead: 4 bytes length +
// 4 bytes CRC.
const frameHeaderLen = 8

// MaxRecord bounds one record's payload. A corrupt length field must
// not make recovery allocate gigabytes, so anything larger is treated
// as a torn tail.
const MaxRecord = 64 << 20

// ErrRecordTooLarge rejects an Append beyond MaxRecord.
var ErrRecordTooLarge = errors.New("durable: record exceeds MaxRecord")

// Journal is an append-only record log. All methods are safe for
// concurrent use; appends are serialized internally.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	off  int64 // end of the last committed record
}

// Open opens (creating if needed) the journal at path, recovers every
// intact record, truncates the file at the first torn or corrupt frame,
// and returns the journal positioned for appending plus the recovered
// payloads in append order.
func Open(path string) (*Journal, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: open journal: %w", err)
	}
	b, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("durable: read journal: %w", err)
	}

	j := &Journal{f: f, path: path}
	recs, off := scan(b)
	if off == 0 {
		// Fresh file — or a header too short/corrupt to trust, which we
		// recover as empty. Rewrite the magic so appends land on a
		// well-formed file.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.WriteAt([]byte(magic), 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		off = int64(len(magic))
	} else if off < int64(len(b)) {
		// Torn tail: drop it so the next append starts on a clean frame
		// boundary and a later recovery does not re-trip on it.
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("durable: truncate torn tail: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, err
	}
	j.off = off
	return j, recs, nil
}

// scan walks the buffer and returns every intact record plus the offset
// of the first byte past the last good frame. A missing or mismatched
// header returns (nil, 0): the caller rebuilds the file from scratch.
func scan(b []byte) ([][]byte, int64) {
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return nil, 0
	}
	var recs [][]byte
	off := int64(len(magic))
	for {
		rest := b[off:]
		if len(rest) < frameHeaderLen {
			break
		}
		n := int64(binary.LittleEndian.Uint32(rest))
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > MaxRecord || off+frameHeaderLen+n > int64(len(b)) {
			break
		}
		payload := rest[frameHeaderLen : frameHeaderLen+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		recs = append(recs, append([]byte(nil), payload...))
		off += frameHeaderLen + n
	}
	return recs, off
}

// frame encodes one record's wire form.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderLen:], payload)
	return buf
}

// Append commits one record: frame, write, fsync. When Append returns
// nil the record will survive a crash; on error the journal is restored
// to its previous committed length so a partial frame never lingers.
func (j *Journal) Append(payload []byte) error {
	if int64(len(payload)) > MaxRecord {
		return ErrRecordTooLarge
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	buf := frame(payload)
	if _, err := j.f.WriteAt(buf, j.off); err != nil {
		_ = j.f.Truncate(j.off) // drop the partial frame; recovery would too
		return fmt.Errorf("durable: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("durable: append sync: %w", err)
	}
	j.off += int64(len(buf))
	return nil
}

// Path reports the journal's file path.
func (j *Journal) Path() string { return j.path }

// Size reports the committed length in bytes, for diagnostics.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.off
}

// Close releases the file handle. Appended records are already durable;
// Close adds nothing beyond hygiene.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Rewrite atomically replaces the journal at path with exactly the
// given records — the compaction primitive. The replacement is built in
// a temp file, fsynced, renamed over path, and the parent directory
// fsynced, so a crash leaves either the old journal or the new one,
// never a mix.
func Rewrite(path string, records [][]byte) error {
	size := len(magic)
	for _, r := range records {
		size += frameHeaderLen + len(r)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, magic...)
	for _, r := range records {
		if int64(len(r)) > MaxRecord {
			return ErrRecordTooLarge
		}
		buf = append(buf, frame(r)...)
	}
	return WriteFileAtomic(path, buf)
}

// WriteFileAtomic durably replaces path with data: temp file in the
// same directory, write, fsync, rename, fsync the directory. After it
// returns nil the new content survives a crash; a crash mid-call leaves
// the previous content (or absence) intact. Concurrent writers to the
// same path are safe — last rename wins with either's complete content.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func() { tmp.Close(); os.Remove(tmp.Name()) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a rename or create inside it is
// durable. Errors from filesystems that reject directory fsync are
// ignored — on those the rename is as durable as it gets.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		// EINVAL from exotic filesystems is not actionable; real write
		// errors (EIO) matter. Surface only the latter.
		if pe, ok := err.(*os.PathError); !ok || pe.Err.Error() != "invalid argument" {
			return err
		}
	}
	return nil
}

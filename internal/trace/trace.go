// Package trace provides a lightweight structured event log for
// debugging simulation runs — the moral equivalent of NS-2 trace files,
// but bounded and filterable.
package trace

import (
	"fmt"
	"io"

	"anongeo/internal/sim"
)

// Event is one logged occurrence.
type Event struct {
	At     sim.Time
	Node   string
	Kind   string
	Detail string
}

// String renders the event as one trace line.
func (e Event) String() string {
	return fmt.Sprintf("%s %s %s %s", e.At, e.Node, e.Kind, e.Detail)
}

// Log is a bounded ring buffer of events. The zero value is a disabled
// log: Add is a no-op until Enable. All methods are single-threaded on
// the simulation engine, like the rest of the simulator.
type Log struct {
	enabled bool
	max     int
	events  []Event
	start   int // ring start index when full
	dropped int
}

// NewLog returns an enabled log retaining at most max events (the oldest
// are dropped first).
func NewLog(max int) *Log {
	if max <= 0 {
		max = 1 << 16
	}
	return &Log{enabled: true, max: max}
}

// Enable turns a zero-value log on.
func (l *Log) Enable(max int) {
	l.enabled = true
	if max > 0 {
		l.max = max
	}
	if l.max == 0 {
		l.max = 1 << 16
	}
}

// Enabled reports whether Add records anything.
func (l *Log) Enabled() bool { return l != nil && l.enabled }

// Add records an event. Safe to call on a nil or disabled log.
func (l *Log) Add(at sim.Time, node, kind, detail string) {
	if !l.Enabled() {
		return
	}
	e := Event{At: at, Node: node, Kind: kind, Detail: detail}
	if len(l.events) < l.max {
		l.events = append(l.events, e)
		return
	}
	l.events[l.start] = e
	l.start = (l.start + 1) % l.max
	l.dropped++
}

// Addf records a formatted event.
func (l *Log) Addf(at sim.Time, node, kind, format string, args ...any) {
	if !l.Enabled() {
		return
	}
	l.Add(at, node, kind, fmt.Sprintf(format, args...))
}

// Dropped reports how many events were evicted by the ring.
func (l *Log) Dropped() int { return l.dropped }

// Events returns the retained events in chronological order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.start:]...)
	out = append(out, l.events[:l.start]...)
	return out
}

// Filter returns the retained events matching kind ("" matches all).
func (l *Log) Filter(kind string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if kind == "" || e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo dumps the log, one event per line.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range l.Events() {
		m, err := fmt.Fprintln(w, e.String())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

package trace

import (
	"strings"
	"testing"

	"anongeo/internal/sim"
)

func TestZeroValueDisabled(t *testing.T) {
	var l Log
	l.Add(0, "n0", "tx", "x")
	if len(l.Events()) != 0 {
		t.Fatal("disabled log recorded an event")
	}
	var nilLog *Log
	nilLog.Add(0, "n0", "tx", "x") // must not panic
	if nilLog.Enabled() {
		t.Fatal("nil log enabled")
	}
}

func TestAddAndEvents(t *testing.T) {
	l := NewLog(10)
	l.Add(sim.Second, "n0", "tx", "hello")
	l.Addf(2*sim.Second, "n1", "rx", "pkt %d", 7)
	es := l.Events()
	if len(es) != 2 {
		t.Fatalf("events = %d", len(es))
	}
	if es[1].Detail != "pkt 7" {
		t.Fatalf("detail = %q", es[1].Detail)
	}
	if !strings.Contains(es[0].String(), "n0 tx hello") {
		t.Fatalf("String = %q", es[0].String())
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 5; i++ {
		l.Add(sim.Time(i)*sim.Second, "n", "k", string(rune('a'+i)))
	}
	es := l.Events()
	if len(es) != 3 {
		t.Fatalf("retained %d", len(es))
	}
	if es[0].Detail != "c" || es[2].Detail != "e" {
		t.Fatalf("ring order wrong: %v", es)
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped = %d", l.Dropped())
	}
}

func TestFilter(t *testing.T) {
	l := NewLog(10)
	l.Add(0, "n0", "tx", "a")
	l.Add(0, "n0", "rx", "b")
	l.Add(0, "n0", "tx", "c")
	if got := len(l.Filter("tx")); got != 2 {
		t.Fatalf("Filter(tx) = %d", got)
	}
	if got := len(l.Filter("")); got != 3 {
		t.Fatalf("Filter() = %d", got)
	}
}

func TestEnableZeroValue(t *testing.T) {
	var l Log
	l.Enable(5)
	l.Add(0, "n", "k", "x")
	if len(l.Events()) != 1 {
		t.Fatal("enabled log did not record")
	}
}

func TestWriteTo(t *testing.T) {
	l := NewLog(10)
	l.Add(sim.Second, "n0", "tx", "hello")
	var sb strings.Builder
	if _, err := l.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hello") {
		t.Fatalf("output = %q", sb.String())
	}
}

// Package routing holds the small contracts shared by the concrete
// routing protocols (the GPSR baseline and the paper's AGFW).
package routing

import (
	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
)

// Locator resolves a destination identity to a position — the role the
// location service plays. The simulation harness provides either a
// perfect oracle (like the paper's evaluation, which ran without ALS) or
// a DLM/ALS-backed implementation.
type Locator interface {
	Lookup(id anoncrypto.Identity) (geo.Point, bool)
}

// DeliverFunc notifies the application layer that a data packet arrived.
type DeliverFunc func(pktID uint64, hops int)

// MaxHops bounds any packet's life to defeat routing loops; generously
// above the network diameter of the paper's 1500 m × 300 m area.
const MaxHops = 128

package agfw

import (
	"crypto/rsa"
	"fmt"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/sim"
)

// Sealed is an opaque trapdoor value carried in the AGFW data header.
type Sealed any

// TrapdoorScheme seals and opens destination trapdoors for one node.
// Two implementations exist:
//
//   - RealScheme performs actual RSA operations (the library behavior).
//   - ModeledScheme skips the host-CPU cryptography and carries the
//     destination in a sim-only struct, so large benchmark sweeps do not
//     measure the host's RSA speed. Both are charged the same *simulated*
//     processing delays (§5.1's 0.5 ms / 8.5 ms) by the router.
type TrapdoorScheme interface {
	// Seal builds the trapdoor for dst on behalf of this node. ackKey is
	// the per-packet acknowledgment MAC key sealed alongside the source
	// identity (zero when Config.AuthAck is off — the payload encoding
	// always reserves its bytes, so the trapdoor size never changes).
	Seal(dst anoncrypto.Identity, srcLoc geo.Point, now sim.Time, ackKey uint64) (Sealed, error)
	// Open reports whether this node is the intended destination.
	Open(td Sealed) bool
	// Size models the trapdoor's on-air size in bytes.
	Size() int
}

// ModeledTrapdoor is the simulation stand-in for an RSA trapdoor.
type ModeledTrapdoor struct {
	Dst    anoncrypto.Identity
	Nonce  uint64
	AckKey uint64
}

// ModeledScheme implements TrapdoorScheme without host cryptography.
type ModeledScheme struct {
	Self  anoncrypto.Identity
	Bytes int // modeled size; 64 matches the paper's RSA-512
	nonce uint64
}

var _ TrapdoorScheme = (*ModeledScheme)(nil)

// NewModeledScheme returns a scheme for self with the paper's 64-byte
// trapdoor size.
func NewModeledScheme(self anoncrypto.Identity) *ModeledScheme {
	return &ModeledScheme{Self: self, Bytes: 64}
}

// Seal implements TrapdoorScheme.
func (m *ModeledScheme) Seal(dst anoncrypto.Identity, _ geo.Point, _ sim.Time, ackKey uint64) (Sealed, error) {
	m.nonce++
	return ModeledTrapdoor{Dst: dst, Nonce: m.nonce, AckKey: ackKey}, nil
}

// Open implements TrapdoorScheme.
func (m *ModeledScheme) Open(td Sealed) bool {
	t, ok := td.(ModeledTrapdoor)
	return ok && t.Dst == m.Self
}

// Size implements TrapdoorScheme.
func (m *ModeledScheme) Size() int { return m.Bytes }

// CertDirectory resolves an identity to its public key — the paper's
// assumption that "the source is able to know the destination's
// certificate somehow".
type CertDirectory func(anoncrypto.Identity) (*rsa.PublicKey, bool)

// RealScheme implements TrapdoorScheme with genuine RSA trapdoors.
type RealScheme struct {
	Self *anoncrypto.KeyPair
	Dir  CertDirectory
}

var _ TrapdoorScheme = (*RealScheme)(nil)

// Seal implements TrapdoorScheme.
func (r *RealScheme) Seal(dst anoncrypto.Identity, srcLoc geo.Point, now sim.Time, ackKey uint64) (Sealed, error) {
	pub, ok := r.Dir(dst)
	if !ok {
		return nil, fmt.Errorf("agfw: no certificate for destination %q", dst)
	}
	td, err := anoncrypto.MakeTrapdoor(pub, anoncrypto.TrapdoorPayload{
		Src:       r.Self.ID,
		SrcLoc:    srcLoc,
		Timestamp: int64(now),
		AckKey:    ackKey,
	})
	if err != nil {
		return nil, fmt.Errorf("agfw: sealing trapdoor for %q: %w", dst, err)
	}
	return td, nil
}

// Open implements TrapdoorScheme.
func (r *RealScheme) Open(td Sealed) bool {
	t, ok := td.(anoncrypto.Trapdoor)
	if !ok {
		return false
	}
	_, err := anoncrypto.OpenTrapdoor(r.Self.Private, t)
	return err == nil
}

// Size implements TrapdoorScheme: the RSA ciphertext length.
func (r *RealScheme) Size() int { return (r.Self.Public().N.BitLen() + 7) / 8 }

package agfw

import (
	"crypto/rsa"
	"fmt"
	"testing"
	"time"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/metrics"
	"anongeo/internal/mobility"
	"anongeo/internal/neighbor"
	"anongeo/internal/radio"
	"anongeo/internal/sim"
)

// testBed wires engine, channel, collector, and AGFW nodes.
type testBed struct {
	eng     *sim.Engine
	ch      *radio.Channel
	col     *metrics.Collector
	routers []*Router
	macs    []*mac.DCF
}

func newTestBed(seed int64) *testBed {
	eng := sim.NewEngine(seed)
	return &testBed{
		eng: eng,
		ch:  radio.NewChannel(eng, 250),
		col: metrics.NewCollector(),
	}
}

// addNode creates an AGFW node. All MAC frames use the broadcast source
// address: the anonymous configuration.
func (tb *testBed) addNode(model mobility.Model, cfg Config) *Router {
	i := len(tb.routers)
	id := anoncrypto.Identity(fmt.Sprintf("n%d", i))
	d := mac.New(tb.eng, tb.ch, model, mac.DefaultParams(), mac.Broadcast, nil, tb.eng.NewStream())
	r := New(tb.eng, d, id, d.Iface().Pos, NewModeledScheme(id), cfg, tb.col, nil, tb.eng.NewStream())
	r.Start()
	tb.routers = append(tb.routers, r)
	tb.macs = append(tb.macs, d)
	return r
}

func (tb *testBed) addStatic(x, y float64, cfg Config) *Router {
	return tb.addNode(mobility.Static{At: geo.Pt(x, y)}, cfg)
}

func (tb *testBed) line(n int, cfg Config) {
	for i := 0; i < n; i++ {
		tb.addStatic(float64(i)*200, 0, cfg)
	}
}

func TestHellosBuildANT(t *testing.T) {
	tb := newTestBed(1)
	tb.line(3, DefaultConfig())
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	now := tb.eng.Now()
	// The middle node heard several hellos from two neighbors; with
	// per-hello pseudonyms the ANT holds more entries than neighbors.
	if got := tb.routers[1].ANT().Len(now); got < 2 {
		t.Fatalf("middle ANT has %d entries, want >= 2", got)
	}
}

func TestANTEntriesArePseudonymous(t *testing.T) {
	tb := newTestBed(2)
	tb.line(2, DefaultConfig())
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Multiple hellos from the same neighbor must appear under multiple
	// pseudonyms (unlinkability).
	entries := tb.routers[0].ANT().Entries(tb.eng.Now())
	seen := map[anoncrypto.Pseudonym]bool{}
	for _, e := range entries {
		if seen[e.N] {
			t.Fatal("duplicate pseudonym entries")
		}
		seen[e.N] = true
	}
	if len(entries) < 2 {
		t.Fatalf("expected multiple pseudonym entries, got %d", len(entries))
	}
}

func TestMultiHopDeliveryWithAck(t *testing.T) {
	tb := newTestBed(3)
	tb.line(5, DefaultConfig())
	tb.eng.Schedule(5*time.Second, func() {
		tb.routers[0].SendData("n4", geo.Pt(800, 0), 64, 1)
	})
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	s := tb.col.Summarize()
	if s.Delivered != 1 {
		t.Fatalf("not delivered: %v drops=%v", s, tb.col.Drops())
	}
	if s.AvgHops < 3 || s.AvgHops > 6 {
		t.Fatalf("hops = %v, implausible for a 4-hop chain", s.AvgHops)
	}
}

func TestMultiHopDeliveryWithoutAck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseAck = false
	tb := newTestBed(4)
	tb.line(5, cfg)
	tb.eng.Schedule(5*time.Second, func() {
		tb.routers[0].SendData("n4", geo.Pt(800, 0), 64, 1)
	})
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// A quiet chain has no collisions; even without ACKs it delivers.
	if tb.col.Summarize().Delivered != 1 {
		t.Fatalf("quiet-network no-ack delivery failed: drops=%v", tb.col.Drops())
	}
}

func TestOnlyLastHopRegionTriesTrapdoor(t *testing.T) {
	tb := newTestBed(5)
	tb.line(5, DefaultConfig())
	tb.eng.Schedule(5*time.Second, func() {
		tb.routers[0].SendData("n4", geo.Pt(800, 0), 64, 1)
	})
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Nodes 0..2 are farther than 250 m from (800,0): no trapdoor tries.
	for i := 0; i < 3; i++ {
		if got := tb.routers[i].Stats().TrapdoorTries; got != 0 {
			t.Fatalf("node %d outside last-hop region tried %d trapdoors", i, got)
		}
	}
	// The destination must have opened exactly one.
	if got := tb.routers[4].Stats().TrapdoorOpens; got != 1 {
		t.Fatalf("destination opens = %d, want 1", got)
	}
}

func TestLastForwardingAttempt(t *testing.T) {
	// Topology: relay chain 0-1, destination n2 close to loc_d but NOT
	// the greedy target: n1 has no neighbor closer to loc_d than itself
	// (n2's hellos do make it a neighbor though...). Force the last-hop
	// broadcast instead by making the destination's reported location
	// between n1 and n2 so that n1 is within range of loc_d but n2's
	// entries are farther from loc_d than n1.
	cfg := DefaultConfig()
	tb := newTestBed(6)
	tb.addStatic(0, 0, cfg)   // n0 source
	tb.addStatic(200, 0, cfg) // n1 relay in last-hop region of loc_d
	tb.addStatic(360, 0, cfg) // n2 destination, 60 m past loc_d
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// loc_d = (300,0): dist(n1)=100 (in region), dist(n2)=60 — n2 IS
	// closer, so greedy reaches n2 directly; to force the n=0 path give
	// loc_d = (240,0): dist(n1)=40, dist(n2)=120 → no neighbor of n1 is
	// closer to loc_d than n1 itself, so n1 must broadcast n=0 and n2
	// (within 250 m of n1) opens the trapdoor.
	tb.eng.Schedule(0, func() {
		tb.routers[0].SendData("n2", geo.Pt(240, 0), 64, 1)
	})
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.col.Summarize().Delivered != 1 {
		t.Fatalf("last forwarding attempt failed: drops=%v", tb.col.Drops())
	}
	if tb.routers[1].Stats().LastHopAttempts == 0 {
		t.Fatal("relay never used the n=0 last forwarding attempt")
	}
}

func TestDeadEndStops(t *testing.T) {
	tb := newTestBed(7)
	cfg := DefaultConfig()
	tb.addStatic(0, 0, cfg)
	tb.addStatic(200, 0, cfg)
	// Destination at 900: n1 has no closer neighbor and is not in the
	// last-hop region → STOP, packet dropped.
	tb.col.PacketSent(99, 0)
	tb.eng.Schedule(5*time.Second, func() {
		p := Packet{PktID: 99, DstLoc: geo.Pt(900, 0), Trapdoor: ModeledTrapdoor{Dst: "nowhere"}, Bytes: 64}
		tb.routers[0].handled[99] = true
		tb.routers[0].forwardDecision(p)
	})
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.col.Summarize().Delivered != 0 {
		t.Fatal("undeliverable packet delivered")
	}
	total := 0
	for _, r := range tb.routers {
		total += r.Stats().DeadEnds
	}
	if total == 0 {
		t.Fatalf("no dead end recorded: drops=%v", tb.col.Drops())
	}
}

func TestAckRetransmissionRecoversLoss(t *testing.T) {
	// Hidden-terminal jammer j sits in range of relay n1 but not of
	// source n0. j floods broadcasts, colliding many first transmissions
	// at n1; the network-layer ACK must recover via retransmission.
	cfg := DefaultConfig()
	tb := newTestBed(8)
	tb.addStatic(0, 0, cfg)          // n0 source
	tb.addStatic(240, 0, cfg)        // n1 relay/destination region
	tb.addStatic(420, 0, cfg)        // n2 destination
	jam := tb.addStatic(480, 0, cfg) // j: hidden from n0/n1's CS at 480? in range of n2 only
	_ = jam
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	sent := 0
	for i := 0; i < 20; i++ {
		id := uint64(i + 1)
		tb.eng.Schedule(time.Duration(i)*100*time.Millisecond, func() {
			tb.routers[0].SendData("n2", geo.Pt(420, 0), 64, id)
		})
		sent++
	}
	if err := tb.eng.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	s := tb.col.Summarize()
	if s.Delivered < sent*8/10 {
		t.Fatalf("delivered %d of %d with ACKs; drops=%v", s.Delivered, sent, tb.col.Drops())
	}
}

func TestNoAckLosesUnderHiddenTerminals(t *testing.T) {
	// Two hidden sources saturate a middle relay; without ACKs a chunk
	// of packets must vanish, and with ACKs most must survive. This is
	// Figure 1(a)'s mechanism in miniature.
	run := func(useAck bool, seed int64) float64 {
		cfg := DefaultConfig()
		cfg.UseAck = useAck
		tb := newTestBed(seed)
		tb.addStatic(0, 0, cfg)     // n0 source A
		tb.addStatic(500, 0, cfg)   // n1 source B (hidden from A)
		tb.addStatic(250, 0, cfg)   // n2 middle relay
		tb.addStatic(250, 200, cfg) // n3 destination near middle
		if err := tb.eng.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		id := uint64(0)
		for i := 0; i < 20; i++ {
			d := time.Duration(i) * 25 * time.Millisecond
			id++
			a := id
			tb.eng.Schedule(d, func() { tb.routers[0].SendData("n3", geo.Pt(250, 200), 64, a) })
			id++
			b := id
			tb.eng.Schedule(d, func() { tb.routers[1].SendData("n3", geo.Pt(250, 200), 64, b) })
		}
		if err := tb.eng.Run(25 * time.Second); err != nil {
			t.Fatal(err)
		}
		return tb.col.Summarize().DeliveryFraction
	}
	noAck := run(false, 9)
	withAck := run(true, 9)
	if noAck >= withAck {
		t.Fatalf("pdf noAck=%.3f >= withAck=%.3f; ACK not helping", noAck, withAck)
	}
	if withAck < 0.85 {
		t.Fatalf("pdf with ACK = %.3f, too low", withAck)
	}
	if noAck > withAck-0.3 {
		t.Fatalf("pdf without ACK = %.3f vs %.3f, hidden terminals had no effect", noAck, withAck)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	tb := newTestBed(10)
	tb.line(3, DefaultConfig())
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	tb.eng.Schedule(0, func() { tb.routers[0].SendData("n2", geo.Pt(400, 0), 64, 1) })
	if err := tb.eng.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	s := tb.col.Summarize()
	if s.Delivered != 1 {
		t.Fatalf("delivered = %d", s.Delivered)
	}
	// However many retransmissions occurred, the destination reported
	// the packet up exactly once (metrics dedupe saw no extra arrivals
	// from this router's own dedupe).
	if tb.routers[2].Stats().TrapdoorOpens > 1 {
		t.Fatalf("destination processed the packet %d times", tb.routers[2].Stats().TrapdoorOpens)
	}
}

func TestFrameSizesIncludeTrapdoor(t *testing.T) {
	tb := newTestBed(11)
	tb.line(2, DefaultConfig())
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	before := tb.ch.Stats().BitsSent
	tb.eng.Schedule(0, func() { tb.routers[0].SendData("n1", geo.Pt(200, 0), 64, 1) })
	if err := tb.eng.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	bits := tb.ch.Stats().BitsSent - before
	// At least one data frame: header 23 + trapdoor 64 + payload 64 +
	// MAC header 28 = 179 bytes = 1432 bits.
	if bits < 1432 {
		t.Fatalf("data transmission only %d bits; trapdoor bytes missing", bits)
	}
}

func TestEncryptDecryptDelaysCharged(t *testing.T) {
	cfg := DefaultConfig()
	tb := newTestBed(12)
	tb.line(2, cfg)
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var deliveredAt sim.Time
	tb.routers[1].deliver = func(uint64, int) { deliveredAt = tb.eng.Now() }
	start := tb.eng.Now()
	tb.eng.Schedule(0, func() { tb.routers[0].SendData("n1", geo.Pt(200, 0), 64, 1) })
	if err := tb.eng.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if deliveredAt == 0 {
		t.Fatal("not delivered")
	}
	lat := deliveredAt.Sub(start)
	// Must include at least 0.5 ms encrypt + 8.5 ms decrypt.
	if lat < 9*time.Millisecond {
		t.Fatalf("one-hop latency %v omits crypto processing delays", lat)
	}
}

func TestSelfDelivery(t *testing.T) {
	tb := newTestBed(13)
	tb.line(1, DefaultConfig())
	tb.eng.Schedule(0, func() { tb.routers[0].SendData("n0", geo.Pt(0, 0), 64, 1) })
	if err := tb.eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.col.Summarize().Delivered != 1 {
		t.Fatal("self delivery failed")
	}
}

func TestFreshnessPolicySelectsConfigured(t *testing.T) {
	for _, pol := range []neighbor.Policy{neighbor.PolicyClosest, neighbor.PolicyFreshest, neighbor.PolicyWeighted} {
		cfg := DefaultConfig()
		cfg.Policy = pol
		tb := newTestBed(14)
		tb.line(4, cfg)
		tb.eng.Schedule(5*time.Second, func() {
			tb.routers[0].SendData("n3", geo.Pt(600, 0), 64, 1)
		})
		if err := tb.eng.Run(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		if tb.col.Summarize().Delivered != 1 {
			t.Fatalf("policy %v failed delivery: %v", pol, tb.col.Drops())
		}
	}
}

func TestRealTrapdoorSchemeEndToEnd(t *testing.T) {
	// Same 3-node chain, but with genuine RSA trapdoors.
	eng := sim.NewEngine(15)
	ch := radio.NewChannel(eng, 250)
	col := metrics.NewCollector()

	keys := make(map[anoncrypto.Identity]*anoncrypto.KeyPair)
	ids := []anoncrypto.Identity{"n0", "n1", "n2"}
	for _, id := range ids {
		kp, err := anoncrypto.GenerateKeyPair(id, anoncrypto.DefaultKeyBits)
		if err != nil {
			t.Fatal(err)
		}
		keys[id] = kp
	}
	dir := CertDirectory(func(dst anoncrypto.Identity) (*rsa.PublicKey, bool) {
		kp, ok := keys[dst]
		if !ok {
			return nil, false
		}
		return kp.Public(), true
	})

	var routers []*Router
	for i, id := range ids {
		d := mac.New(eng, ch, mobility.Static{At: geo.Pt(float64(i)*200, 0)}, mac.DefaultParams(), mac.Broadcast, nil, eng.NewStream())
		r := New(eng, d, id, d.Iface().Pos, &RealScheme{Self: keys[id], Dir: dir}, DefaultConfig(), col, nil, eng.NewStream())
		r.Start()
		routers = append(routers, r)
	}
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(0, func() { routers[0].SendData("n2", geo.Pt(400, 0), 64, 1) })
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if col.Summarize().Delivered != 1 {
		t.Fatalf("real-crypto delivery failed: %v", col.Drops())
	}
	if routers[2].Stats().TrapdoorOpens != 1 {
		t.Fatal("destination did not open the real trapdoor")
	}
	if routers[1].Stats().TrapdoorOpens != 0 {
		t.Fatal("relay opened a trapdoor not meant for it")
	}
}

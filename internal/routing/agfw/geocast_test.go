package agfw

import (
	"testing"
	"time"

	"anongeo/internal/geo"
)

func TestGeocastReachesServingNode(t *testing.T) {
	tb := newTestBed(21)
	tb.line(5, DefaultConfig()) // nodes at 0,200,...,800
	var got []any
	var servedBy int
	for i, r := range tb.routers {
		i, r := i, r
		r.SetGeoHandler(func(p any, bytes int) {
			got = append(got, p)
			servedBy = i
			if bytes != 40 {
				t.Errorf("payload bytes = %d", bytes)
			}
		})
	}
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Target just past node 4: node 4 is the local maximum.
	tb.eng.Schedule(0, func() {
		tb.routers[0].SendGeocast(geo.Pt(850, 0), "update", 40, 1<<40)
	})
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "update" {
		t.Fatalf("geocast payloads delivered: %v", got)
	}
	if servedBy != 4 {
		t.Fatalf("served by node %d, want the local maximum (4)", servedBy)
	}
}

func TestGeocastSelfServe(t *testing.T) {
	// When the origin is already the local maximum it serves itself.
	tb := newTestBed(22)
	tb.line(2, DefaultConfig())
	var got int
	tb.routers[1].SetGeoHandler(func(any, int) { got++ })
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	tb.eng.Schedule(0, func() {
		tb.routers[1].SendGeocast(geo.Pt(300, 0), "x", 8, 1<<40)
	})
	if err := tb.eng.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("self-serve geocasts = %d, want 1", got)
	}
}

func TestGeocastUsesNoTrapdoorBytes(t *testing.T) {
	// Same topology and horizon, same seed: a geocast must put fewer
	// bits on the air than a trapdoor-bearing data packet of the same
	// payload size (64 fewer bytes per hop frame).
	measure := func(geocast bool) int64 {
		tb := newTestBed(23)
		tb.line(2, DefaultConfig())
		if err := tb.eng.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		before := tb.ch.Stats().BitsSent
		tb.eng.Schedule(0, func() {
			if geocast {
				tb.routers[0].SendGeocast(geo.Pt(250, 0), "q", 10, 1<<40)
			} else {
				tb.routers[0].SendData("n1", geo.Pt(200, 0), 10, 1<<40)
			}
		})
		if err := tb.eng.Run(5*time.Second + 200*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return tb.ch.Stats().BitsSent - before
	}
	g, d := measure(true), measure(false)
	if g >= d {
		t.Fatalf("geocast bits (%d) not below trapdoor data bits (%d)", g, d)
	}
}

func TestGeocastAnonymous(t *testing.T) {
	// Geocast frames are still broadcast frames with no MAC addresses.
	tb := newTestBed(24)
	tb.line(3, DefaultConfig())
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	tb.eng.Schedule(0, func() {
		tb.routers[0].SendGeocast(geo.Pt(450, 0), "u", 12, 1<<40)
	})
	if err := tb.eng.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.routers[1].Stats().GeocastAccepts+tb.routers[2].Stats().GeocastAccepts == 0 {
		t.Fatal("no geocast accepted")
	}
	if tb.macs[0].Stats().RTSSent != 0 {
		t.Fatal("geocast used unicast machinery")
	}
}

package agfw

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/metrics"
	"anongeo/internal/mobility"
	"anongeo/internal/neighbor"
	"anongeo/internal/radio"
	"anongeo/internal/sim"
)

// Shared crypto fixtures for the authenticated-hello integration tests.
var (
	authOnce  sync.Once
	authCA    *anoncrypto.CA
	authKeys  []*anoncrypto.KeyPair
	authCerts []*anoncrypto.Cert
)

func authFixtures(t testing.TB) (*anoncrypto.CA, []*anoncrypto.KeyPair, []*anoncrypto.Cert) {
	t.Helper()
	authOnce.Do(func() {
		ca, err := anoncrypto.NewCA(1024)
		if err != nil {
			t.Fatalf("NewCA: %v", err)
		}
		authCA = ca
		for i := 0; i < 6; i++ {
			kp, err := anoncrypto.GenerateKeyPair(anoncrypto.Identity(fmt.Sprintf("n%d", i)), anoncrypto.DefaultKeyBits)
			if err != nil {
				t.Fatalf("keygen: %v", err)
			}
			c, err := ca.Issue(kp)
			if err != nil {
				t.Fatalf("issue: %v", err)
			}
			authKeys = append(authKeys, kp)
			authCerts = append(authCerts, c)
		}
	})
	return authCA, authKeys, authCerts
}

// buildAuthNet assembles a 3-node chain running genuinely ring-signed
// hellos.
func buildAuthNet(t *testing.T, seed int64) (*sim.Engine, []*Router, *metrics.Collector, *radio.Channel) {
	t.Helper()
	ca, keys, certs := authFixtures(t)
	eng := sim.NewEngine(seed)
	ch := radio.NewChannel(eng, 250)
	col := metrics.NewCollector()
	var routers []*Router
	for i := 0; i < 3; i++ {
		pool := make([]*anoncrypto.Cert, 0, len(certs)-1)
		for j, c := range certs {
			if j != i {
				pool = append(pool, c)
			}
		}
		cfg := DefaultConfig()
		cfg.AuthSigner = neighbor.NewSigner(keys[i], certs[i], pool, eng.NewStream())
		cfg.AuthVerifier = neighbor.NewVerifier(ca.PublicKey())
		cfg.AuthRingK = 2
		cfg.AuthAttachCerts = true
		d := mac.New(eng, ch, mobility.Static{At: geo.Pt(float64(i)*200, 0)}, mac.DefaultParams(), mac.Broadcast, nil, eng.NewStream())
		r := New(eng, d, keys[i].ID, d.Iface().Pos, NewModeledScheme(keys[i].ID), cfg, col, nil, eng.NewStream())
		r.Start()
		routers = append(routers, r)
	}
	return eng, routers, col, ch
}

func TestAuthHellosBuildANTAndRoute(t *testing.T) {
	eng, routers, col, _ := buildAuthNet(t, 1)
	if err := eng.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if routers[1].ANT().Len(eng.Now()) < 2 {
		t.Fatalf("middle ANT has %d entries after auth hellos", routers[1].ANT().Len(eng.Now()))
	}
	eng.Schedule(0, func() { routers[0].SendData("n2", geo.Pt(400, 0), 64, 1) })
	if err := eng.Run(12 * time.Second); err != nil {
		t.Fatal(err)
	}
	if col.Summarize().Delivered != 1 {
		t.Fatalf("delivery over authenticated ANT failed: %v", col.Drops())
	}
}

func TestAuthModeRejectsSpoofedHellos(t *testing.T) {
	// An attacker without a CA-issued certificate floods plain hellos
	// advertising a great position; authenticated nodes must reject them
	// and keep routing through real neighbors only.
	eng, routers, _, ch := buildAuthNet(t, 2)

	// The spoofer broadcasts raw (unauthenticated) hellos.
	spoofRng := eng.NewStream()
	d := mac.New(eng, ch, mobility.Static{At: geo.Pt(200, 50)}, mac.DefaultParams(), mac.Broadcast, nil, eng.NewStream())
	var flood func()
	flood = func() {
		h := neighbor.Hello{N: anoncrypto.NewPseudonym(spoofRng, "mallory"), Loc: geo.Pt(390, 0), TS: eng.Now()}
		d.Send(mac.Broadcast, h, 23, nil)
		eng.Schedule(200*time.Millisecond, flood)
	}
	eng.Schedule(0, flood)

	if err := eng.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if routers[1].Stats().HellosRejected == 0 {
		t.Fatal("no spoofed hellos rejected")
	}
	// None of the spoofer's advertised entries may appear in the ANT.
	for _, e := range routers[1].ANT().Entries(eng.Now()) {
		if e.Loc == geo.Pt(390, 0) {
			t.Fatal("spoofed entry admitted to authenticated ANT")
		}
	}
}

func TestAuthHellosCostMoreAirtime(t *testing.T) {
	// Ring-signed hellos are ~an order of magnitude larger than plain
	// ones; the channel byte counters must show it.
	plainEng := sim.NewEngine(3)
	plainCh := radio.NewChannel(plainEng, 250)
	plainCol := metrics.NewCollector()
	for i := 0; i < 3; i++ {
		d := mac.New(plainEng, plainCh, mobility.Static{At: geo.Pt(float64(i)*200, 0)}, mac.DefaultParams(), mac.Broadcast, nil, plainEng.NewStream())
		r := New(plainEng, d, anoncrypto.Identity(fmt.Sprintf("n%d", i)), d.Iface().Pos,
			NewModeledScheme(anoncrypto.Identity(fmt.Sprintf("n%d", i))), DefaultConfig(), plainCol, nil, plainEng.NewStream())
		r.Start()
	}
	if err := plainEng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	authEng, _, _, authCh := buildAuthNet(t, 3)
	if err := authEng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if authCh.Stats().BitsSent <= 2*plainCh.Stats().BitsSent {
		t.Fatalf("auth hellos bits (%d) not substantially above plain (%d)",
			authCh.Stats().BitsSent, plainCh.Stats().BitsSent)
	}
}

// Package agfw implements the paper's contribution: Anonymous Greedy
// ForWarding (§3.2) on top of the anonymous neighbor table (§3.1).
//
// Every transmission is a link-layer broadcast: frames carry no MAC
// addresses, relays are named only by one-shot pseudonyms in the network
// header, and the destination is named only by a public-key trapdoor that
// is attempted exclusively inside the last-hop region. An optional
// network-layer acknowledgment (explicit, or piggybacked on the next
// hop's own forwarding broadcast) restores the reliability that skipping
// the 802.11 unicast machinery gives up — the AGFW/AGFW-noACK/GPSR
// triangle Figure 1 measures.
package agfw

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"time"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/metrics"
	"anongeo/internal/neighbor"
	"anongeo/internal/routing"
	"anongeo/internal/sim"
	"anongeo/internal/trace"
)

// Packet is the AGFW data header ⟨DATA, loc_d, n, trapdoor⟩ plus the
// packet identifier the network-layer ACK references.
//
// Geocast packets (Geocast true) are the location-service extension: no
// trapdoor; the packet terminates at the greedy local maximum toward
// DstLoc — i.e., at the node currently serving that position — and its
// Payload is handed to the router's GeoHandler. Like everything else in
// AGFW they travel as anonymous broadcasts.
type Packet struct {
	PktID    uint64
	DstLoc   geo.Point
	N        anoncrypto.Pseudonym
	Trapdoor Sealed
	Bytes    int // application payload size
	Hops     int

	// AckKey is the per-packet acknowledgment MAC key (Config.AuthAck).
	// The source seals it inside the trapdoor for the destination and —
	// modeled as a sealed hop-key block charged in the data size — to
	// each committed relay, so every legitimate holder of the packet can
	// authenticate its acks while an overhearing bystander cannot. Zero
	// when AuthAck is off.
	AckKey uint64

	Geocast bool
	Payload any
}

// Ack is the network-layer acknowledgment: it "includes the information
// uniquely determining the packet received" (§3.2).
type Ack struct {
	PktID uint64
	// Auth is the acknowledgment MAC over PktID under the packet's
	// AckKey (Config.AuthAck). Zero means unauthenticated — what a
	// forger who never held the sealed key can send.
	Auth uint64
	// Spoofed marks forged acknowledgments (the ack-spoof attack) for
	// simulator-omniscient accounting. Receivers MUST NOT branch on it —
	// accept/reject is decided by the MAC (or, without AuthAck, not at
	// all) — it only feeds the audit's spoofed-ack reconciliation and
	// the bad-mac/foreign-mac counter split.
	Spoofed bool
}

// Modeled sizes: data header = type (1) + loc_d (8) + n (6) + id (8);
// ack = type (1) + id (8). AuthAck adds a sealed per-hop key block to
// data and the 8-byte MAC to acks.
const (
	dataHeaderBytes  = 23
	ackBytes         = 9
	ackKeyBlockBytes = 16 // sealed hop-key block on data when AuthAck is on
	ackMACBytes      = 8  // acknowledgment MAC when AuthAck is on
)

// Config parameterizes the router.
type Config struct {
	BeaconInterval time.Duration
	BeaconJitter   float64
	NeighborTTL    sim.Time
	// Policy selects the next-hop strategy; the paper recommends
	// preferring fresher entries over strictly closest ones.
	Policy neighbor.Policy
	// RadioRange defines the last-hop region: loc_d within this distance.
	RadioRange float64
	// MaxSpeed parameterizes PolicyWeighted's staleness discount.
	MaxSpeed float64

	// UseAck enables the network-layer acknowledgment and retransmission.
	UseAck bool
	// PiggybackAck treats an overheard onward forwarding of the same
	// packet as an implicit acknowledgment (§3.2's piggybacking).
	PiggybackAck bool
	// AckTimeout is the base retransmission timer; each retry scales it
	// by AckBackoff and adds uniform jitter so synchronized hidden
	// senders decorrelate instead of re-colliding forever.
	AckTimeout time.Duration
	AckBackoff float64
	// MaxRetransmits bounds network-layer retransmissions per hop.
	MaxRetransmits int
	// ReachFilter, when set, makes next-hop selection skip entries whose
	// advertised distance plus worst-case drift exceeds the radio range.
	// An ablation knob: it trades per-hop progress for link reliability.
	ReachFilter bool
	// PseudonymDepth is how many recent hello pseudonyms a node keeps
	// answering to. The paper's "two latest" assumes the neighbor timeout
	// spans two beacon periods; the GPSR-style 3-beacon timeout with
	// ±50% jitter needs more to avoid routing to forgotten pseudonyms.
	PseudonymDepth int

	// EncryptDelay and DecryptDelay are the simulated costs of sealing
	// and attempting a trapdoor (§5.1: 0.5 ms and 8.5 ms).
	EncryptDelay time.Duration
	DecryptDelay time.Duration

	// HelloBytes overrides the plain 23-byte hello size; the
	// authenticated ANT's ring signatures and certificates inflate it.
	HelloBytes int
	// HelloVerifyDelay charges receivers per hello (ring verification).
	HelloVerifyDelay time.Duration
	// HelloSignDelay charges the sender per hello (ring signing).
	HelloSignDelay time.Duration

	// AuthSigner/AuthVerifier switch the router to genuinely ring-signed
	// hellos (§3.1.2): every beacon is signed with AuthRingK decoys and
	// receivers verify before admitting the entry, so unauthorized
	// hellos cannot poison the ANT. The modeled HelloSignDelay /
	// HelloVerifyDelay still apply on top (the simulated node is slower
	// than the host CPU).
	AuthSigner   *neighbor.Signer
	AuthVerifier *neighbor.Verifier
	AuthRingK    int
	// AuthAttachCerts attaches full certificates instead of serial
	// references (§4's bandwidth discussion).
	AuthAttachCerts bool

	// TrustConfig, when non-nil, arms trust-aware relaying: per-pseudonym
	// forwarding-evidence scores fed by the ARQ (acks settle positive,
	// timeouts negative), position-plausibility checks on every hello,
	// and trust-weighted next-hop selection. Nil keeps the untrusted path
	// bit-for-bit (the defense-off parity oracle).
	TrustConfig *neighbor.TrustConfig

	// AuthAck arms per-hop authenticated acknowledgments: every
	// originated packet carries a MAC key sealed in its trapdoor (and,
	// modeled, in a per-hop key block), acks must carry the matching MAC,
	// and failures are rejected without settling the ARQ — forged acks
	// stop laundering the evidence stream. False keeps the
	// unauthenticated ack path bit-for-bit.
	AuthAck bool

	// Revocation, when non-nil, is the run's shared escrow authority
	// registry: rotated pseudonyms are registered with CA-blessed escrow
	// tags, hellos whose pseudonym carries no valid tag are rejected,
	// and the armed Trust table files accusations / inherits revoked
	// standing through it. Nil keeps rotation-resettable trust.
	Revocation *neighbor.RevocationRegistry

	// Trace, when non-nil, records protocol events for debugging.
	Trace *trace.Log
}

// DefaultConfig mirrors the paper's evaluation settings.
func DefaultConfig() Config {
	return Config{
		BeaconInterval: 1500 * time.Millisecond,
		BeaconJitter:   0.5,
		NeighborTTL:    sim.Time(4500 * time.Millisecond),
		Policy:         neighbor.PolicyWeighted,
		RadioRange:     250,
		MaxSpeed:       20,
		UseAck:         true,
		PiggybackAck:   true,
		AckTimeout:     35 * time.Millisecond,
		AckBackoff:     1.5,
		MaxRetransmits: 6,
		PseudonymDepth: 8,
		EncryptDelay:   500 * time.Microsecond,
		DecryptDelay:   8500 * time.Microsecond,
		HelloBytes:     23,
	}
}

// Stats counts protocol-level events for the ablation experiments.
type Stats struct {
	BeaconsSent      int
	Forwards         int // committed-forwarder rebroadcasts
	LastHopAttempts  int // n=0 local broadcasts
	TrapdoorTries    int
	TrapdoorOpens    int
	ExplicitAcks     int
	ImplicitAcks     int
	Retransmits      int
	RetryDrops       int
	DeadEnds         int
	DuplicatesQuench int
	GeocastAccepts   int
	HellosRejected   int
	// AdversaryDrops counts committed packets this node silently ate
	// while acting as a blackhole/greyhole relay (fault injection).
	AdversaryDrops int

	// Active-adversary accounting (internal/fault attack kinds). The
	// sent/heard pairs are simulator-omniscient: the audit balances them
	// globally (heard > 0 requires sent > 0), and per node SpoofSettles
	// can never exceed SpoofAcksHeard.
	BogusBeaconsSent int // hellos whose position a forger displaced
	JunkHellosSent   int // flood-attack hellos originated here
	JunkHellosHeard  int // flood-attack hellos received here
	SpoofAcksSent    int // forged acknowledgments originated here
	SpoofAcksHeard   int // forged acknowledgments received here
	// SpoofSettles counts pending-ARQ entries a forged ack retired — the
	// attack's direct damage: the victim stops retransmitting a packet
	// that was never forwarded. The audit attributes still-unresolved
	// spoof-settled packets to the "spoofed-ack" drop reason.
	SpoofSettles int
	// Trust-defense accounting (zero whenever the defense is off).
	BeaconsQuarantined int // hellos rejected by plausibility checks
	TrustQuarantines   int // quarantine windows opened
	TrustFallbacks     int // selections forced below the trust bar

	// Authenticated-ack accounting (zero whenever AuthAck is off).
	AuthAcksVerified int // pending settles whose MAC checked out
	AuthAcksBadMAC   int // forged acks rejected by the MAC (attributable)
	AuthAcksForeign  int // non-forged MAC mismatches (cross-tree overhears)
	// Revocation accounting (zero whenever Revocation is nil).
	TagRejects int // hellos rejected for missing/invalid escrow tags
}

// pendingTx is one packet awaiting a network-layer acknowledgment.
type pendingTx struct {
	pkt     Packet
	retries int
	timer   *sim.Event
	// tried records the relays that failed to acknowledge, so
	// retransmissions route around them (the ANT analog of GPSR's
	// MAC-feedback neighbor eviction).
	tried map[anoncrypto.Pseudonym]bool
}

// Router is one node's AGFW instance.
type Router struct {
	eng    *sim.Engine
	dcf    *mac.DCF
	cfg    Config
	self   anoncrypto.Identity
	pos    func() geo.Point
	rng    *rand.Rand
	scheme TrapdoorScheme

	ant *neighbor.ANT
	mem *neighbor.PseudonymMemory

	col     *metrics.Collector
	deliver routing.DeliverFunc
	// geoHandler receives geocast payloads that terminated here.
	geoHandler func(payload any, payloadBytes int)

	pending   map[uint64]*pendingTx
	handled   map[uint64]bool
	delivered map[uint64]bool

	// Fault-injection state (see internal/fault): relayDrop > 0 makes
	// this node an adversarial relay (1 = blackhole, else greyhole
	// probability), muted suppresses hello beacons, beaconNoise perturbs
	// advertised positions (GPS error), forgedBeacon replaces them
	// outright, ackSpoof decides per overheard foreign packet whether to
	// forge an acknowledgment for it.
	relayDrop    float64
	muted        bool
	beaconNoise  func(geo.Point) geo.Point
	forgedBeacon func(geo.Point) geo.Point
	ackSpoof     func() bool

	// trust, when armed, scores neighbor pseudonyms by ARQ evidence;
	// spoofSettled records packet ids whose pending entry a forged ack
	// retired, for the audit's spoofed-ack reconciliation.
	trust        *neighbor.Trust
	spoofSettled map[uint64]bool

	started bool
	stats   Stats
}

// New creates a router bound to an existing MAC entity (which must use
// the broadcast link-layer address for full anonymity) and installs
// itself as the MAC upper layer.
func New(eng *sim.Engine, dcf *mac.DCF, self anoncrypto.Identity, pos func() geo.Point, scheme TrapdoorScheme, cfg Config, col *metrics.Collector, deliver routing.DeliverFunc, rng *rand.Rand) *Router {
	r := &Router{
		eng:       eng,
		dcf:       dcf,
		cfg:       cfg,
		self:      self,
		pos:       pos,
		rng:       rng,
		scheme:    scheme,
		ant:       newReachANT(cfg),
		mem:       neighbor.NewPseudonymMemory(self, rng, cfg.PseudonymDepth),
		col:       col,
		deliver:   deliver,
		pending:   make(map[uint64]*pendingTx),
		handled:   make(map[uint64]bool),
		delivered: make(map[uint64]bool),
	}
	if cfg.TrustConfig != nil {
		r.trust = neighbor.NewTrust(*cfg.TrustConfig)
		if cfg.Revocation != nil {
			r.trust.EnableRevocation(cfg.Revocation, string(self))
		}
	}
	dcf.SetDeliver(r.onDeliver)
	return r
}

// ackKeyFor derives the per-packet acknowledgment MAC key: a keyed hash
// of the originator and the packet id, so keys are unique per packet,
// nonzero, and cost no engine randomness (drawing from the router rng
// here would shift every downstream stream and break the defense-off
// parity oracle).
func (r *Router) ackKeyFor(pktID uint64) uint64 {
	var seed uint64 = 0xcbf29ce484222325
	for _, b := range []byte(r.self) {
		seed = (seed ^ uint64(b)) * 0x100000001b3
	}
	return anoncrypto.AckMAC64(seed, pktID)
}

// ackSize is the modeled on-air acknowledgment size.
func (r *Router) ackSize() int {
	if r.cfg.AuthAck {
		return ackBytes + ackMACBytes
	}
	return ackBytes
}

// Trust exposes the trust table (nil when the defense is off).
func (r *Router) Trust() *neighbor.Trust { return r.trust }

// newReachANT builds the router's ANT, arming the reachability filter
// when configured.
func newReachANT(cfg Config) *neighbor.ANT {
	ant := neighbor.NewANT(cfg.NeighborTTL, cfg.MaxSpeed)
	if cfg.ReachFilter {
		ant.SetReachRange(cfg.RadioRange)
	}
	return ant
}

// ANT exposes the anonymous neighbor table for tests and diagnostics.
func (r *Router) ANT() *neighbor.ANT { return r.ant }

// SetGeoHandler installs the consumer of terminated geocast packets
// (the location-service server role).
func (r *Router) SetGeoHandler(h func(payload any, payloadBytes int)) { r.geoHandler = h }

// SendGeocast routes payload toward target and delivers it to the
// GeoHandler of the node serving that position (the greedy local
// maximum). pktID must be unique network-wide; geocasts use the same
// network-layer acknowledgment machinery as data but are not recorded in
// the metrics collector — they are control-plane traffic.
func (r *Router) SendGeocast(target geo.Point, payload any, payloadBytes int, pktID uint64) {
	p := Packet{
		PktID:   pktID,
		DstLoc:  target,
		Bytes:   payloadBytes,
		Geocast: true,
		Payload: payload,
	}
	if r.cfg.AuthAck {
		p.AckKey = r.ackKeyFor(pktID)
	}
	r.handled[pktID] = true
	// The origin might itself be the serving node.
	if _, ok := r.chooseNextHop(target, r.eng.Now(), nil); !ok {
		r.acceptGeocast(p)
		return
	}
	r.forwardDecision(p)
}

// acceptGeocast terminates a geocast at this node.
func (r *Router) acceptGeocast(q Packet) {
	r.stats.GeocastAccepts++
	if r.cfg.UseAck && q.Hops > 0 {
		r.sendAck(q.PktID, q.AckKey)
	}
	if r.geoHandler != nil {
		r.geoHandler(q.Payload, q.Bytes)
	}
}

// Stats returns a snapshot of the router counters.
func (r *Router) Stats() Stats {
	s := r.stats
	if r.trust != nil {
		s.TrustQuarantines = r.trust.Quarantines
		s.TrustFallbacks = r.trust.Fallbacks
	}
	return s
}

// SpoofSettledIDs returns, in ascending order, the packet ids whose
// pending-ARQ entry a forged acknowledgment retired at this node. The
// end-of-run audit reconciles the still-unresolved ones to the
// "spoofed-ack" drop reason so conservation stays attributable.
func (r *Router) SpoofSettledIDs() []uint64 {
	if len(r.spoofSettled) == 0 {
		return nil
	}
	ids := make([]uint64, 0, len(r.spoofSettled))
	for id := range r.spoofSettled {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SetRelayDrop turns the node into an adversarial relay: packets it
// committed to forward are silently eaten with probability p (p >= 1 is
// a blackhole, 0 disables). The node keeps beaconing normally — that is
// the attack: it attracts traffic it then drops, and never acknowledges,
// so the previous hop's network-layer ARQ must route around it.
func (r *Router) SetRelayDrop(p float64) { r.relayDrop = p }

// SetMute stops hello beaconing while the node keeps moving, receiving,
// and forwarding already-routed traffic — stale-neighbor injection.
func (r *Router) SetMute(m bool) { r.muted = m }

// SetBeaconNoise perturbs the position this node advertises in hellos
// (GPS error injection). The radio still uses the true position; only
// what neighbors believe is wrong. nil disables.
func (r *Router) SetBeaconNoise(f func(geo.Point) geo.Point) { r.beaconNoise = f }

// SetForgedBeacon turns the node into a position forger: advertised
// positions are replaced by f's output (bogus-position injection,
// composable with GPS error). nil restores truth.
func (r *Router) SetForgedBeacon(f func(geo.Point) geo.Point) { r.forgedBeacon = f }

// SetAckSpoof arms the ack-spoof attack: pred is consulted for every
// overheard data packet committed to someone else, and a true return
// forges a network-layer acknowledgment for it — retiring the previous
// hop's ARQ for a packet that was never forwarded. nil disarms.
func (r *Router) SetAckSpoof(pred func() bool) { r.ackSpoof = pred }

// SendJunkHello broadcasts one hello under a pseudonym forged from
// nonce, advertising loc — the flood attack's per-tick payload.
// bytes <= 0 uses the configured hello size.
func (r *Router) SendJunkHello(nonce uint64, loc geo.Point, bytes int) {
	if bytes <= 0 {
		bytes = r.cfg.HelloBytes
	}
	var n anoncrypto.Pseudonym
	binary.BigEndian.PutUint32(n[0:4], uint32(nonce>>32))
	binary.BigEndian.PutUint16(n[4:6], uint16(nonce))
	if n.IsLastHop() {
		n[0] = 1 // never collide with the reserved broadcast marker
	}
	r.stats.JunkHellosSent++
	r.dcf.Send(mac.Broadcast, neighbor.Hello{N: n, Loc: loc, TS: r.eng.Now(), Junk: true}, bytes, nil)
}

// UnarmedPending counts pending-ACK entries whose retransmission timer
// is not armed. The invariant is zero at all times between events: every
// live pending entry either awaits an ACK under a scheduled timeout or
// is removed. A non-zero count means a packet is wedged — it will never
// be retransmitted, acknowledged, or dropped — and the end-of-run wedge
// detector fails the run.
func (r *Router) UnarmedPending() int {
	n := 0
	for _, pd := range r.pending {
		if pd.timer == nil {
			n++
		}
	}
	return n
}

// advertisedPos is the position beacons carry: the true position unless
// GPS-error injection or position forgery is active. Forgery applies
// after noise, so a forged lure is advertised exactly.
func (r *Router) advertisedPos() geo.Point {
	p := r.pos()
	if r.beaconNoise != nil {
		p = r.beaconNoise(p)
	}
	if r.forgedBeacon != nil {
		if fp := r.forgedBeacon(p); fp != p {
			r.stats.BogusBeaconsSent++
			p = fp
		}
	}
	return p
}

// tracef records a protocol event when tracing is enabled.
func (r *Router) tracef(kind, format string, args ...any) {
	if r.cfg.Trace.Enabled() {
		r.cfg.Trace.Addf(r.eng.Now(), string(r.self), kind, format, args...)
	}
}

// Start begins hello beaconing.
func (r *Router) Start() {
	if r.started {
		return
	}
	r.started = true
	r.scheduleBeacon(true)
}

func (r *Router) scheduleBeacon(first bool) {
	iv := r.cfg.BeaconInterval
	jit := time.Duration((r.rng.Float64()*2 - 1) * r.cfg.BeaconJitter * float64(iv))
	d := iv + jit
	if first {
		d = time.Duration(r.rng.Float64() * float64(iv))
	}
	r.eng.Schedule(d, func() {
		r.sendBeacon()
		r.scheduleBeacon(false)
	})
}

// sendBeacon rotates the pseudonym and broadcasts ⟨HELLO, n, loc, ts⟩.
// In authenticated-ANT mode the (modeled) signing delay is charged
// first, and with an AuthSigner the hello is genuinely ring-signed.
func (r *Router) sendBeacon() {
	if r.muted {
		return
	}
	r.stats.BeaconsSent++
	r.ant.Expire(r.eng.Now())
	if r.trust != nil {
		// Pseudonym keys are one-shot; without garbage collection the
		// trust table grows with run length.
		r.trust.Expire(r.eng.Now(), 4*r.cfg.NeighborTTL)
	}
	n := r.mem.Rotate()
	if r.cfg.Revocation != nil {
		// Escrow the fresh pseudonym before anyone can hear it: the tag
		// is what a quorum opens to link this pseudonym to r.self.
		r.cfg.Revocation.Register(string(n[:]), r.self, n, r.eng.Now())
	}
	send := func() {
		h := neighbor.Hello{N: n, Loc: r.advertisedPos(), TS: r.eng.Now()}
		if r.cfg.AuthSigner != nil {
			ah, err := r.cfg.AuthSigner.Sign(h, r.cfg.AuthRingK, r.cfg.AuthAttachCerts)
			if err != nil {
				return // cannot authenticate: stay silent this round
			}
			r.dcf.Send(mac.Broadcast, ah, ah.WireSize(), nil)
			return
		}
		r.dcf.Send(mac.Broadcast, h, r.cfg.HelloBytes, nil)
	}
	if r.cfg.HelloSignDelay > 0 {
		r.eng.Schedule(r.cfg.HelloSignDelay, send)
		return
	}
	send()
}

// SendData originates a packet toward dst at dstLoc (from the location
// service or oracle). The trapdoor-sealing delay is charged before the
// packet enters the network.
func (r *Router) SendData(dst anoncrypto.Identity, dstLoc geo.Point, payloadBytes int, pktID uint64) {
	r.Originate(dst, dstLoc, payloadBytes, pktID, true)
}

// Originate is SendData with control over metrics recording: callers
// that resolved the destination through a simulated location service
// stamp PacketSent themselves at request time, so the measured latency
// includes the lookup.
func (r *Router) Originate(dst anoncrypto.Identity, dstLoc geo.Point, payloadBytes int, pktID uint64, record bool) {
	if record {
		r.col.PacketSent(pktID, r.eng.Now())
	}
	if dst == r.self {
		r.col.PacketDelivered(pktID, r.eng.Now(), 0)
		if r.deliver != nil {
			r.deliver(pktID, 0)
		}
		return
	}
	var ackKey uint64
	if r.cfg.AuthAck {
		ackKey = r.ackKeyFor(pktID)
	}
	r.eng.Schedule(r.cfg.EncryptDelay, func() {
		td, err := r.scheme.Seal(dst, r.pos(), r.eng.Now(), ackKey)
		if err != nil {
			r.col.DropPacket(pktID, "seal-failure")
			return
		}
		p := Packet{PktID: pktID, DstLoc: dstLoc, Trapdoor: td, Bytes: payloadBytes, AckKey: ackKey}
		r.handled[pktID] = true // we are this packet's origin
		r.forwardDecision(p)
	})
}

// inLastHopRegion reports whether loc_d is within our radio range.
func (r *Router) inLastHopRegion(dstLoc geo.Point) bool {
	return r.pos().Dist(dstLoc) <= r.cfg.RadioRange
}

// chooseNextHop dispatches next-hop selection to the trust-aware chooser
// when the defense is armed, else to the configured untrusted policy
// (the defense-off parity path, taken verbatim).
func (r *Router) chooseNextHop(dstLoc geo.Point, now sim.Time, exclude map[anoncrypto.Pseudonym]bool) (neighbor.ANTEntry, bool) {
	if r.trust != nil {
		return r.ant.ChooseNextHopTrusted(dstLoc, r.pos(), now, exclude, r.trust)
	}
	return r.ant.ChooseNextHopExcluding(dstLoc, r.pos(), now, r.cfg.Policy, exclude)
}

// forwardDecision implements TryForward + the last forwarding attempt of
// Algorithm 3.2 for a packet we are committed to moving onward.
func (r *Router) forwardDecision(p Packet) {
	if p.Hops >= routing.MaxHops {
		if p.Geocast {
			r.col.Drop("hop-limit")
		} else {
			r.col.DropPacket(p.PktID, "hop-limit")
		}
		return
	}
	now := r.eng.Now()
	if e, ok := r.chooseNextHop(p.DstLoc, now, nil); ok {
		p.N = e.N
		r.stats.Forwards++
		r.tracef("fwd", "pkt %d -> %s toward %s", p.PktID, e.N, p.DstLoc)
		r.transmit(p)
		return
	}
	if p.Geocast {
		// Geocasts terminate at the greedy local maximum: this node
		// serves the target position.
		r.acceptGeocast(p)
		return
	}
	if r.inLastHopRegion(p.DstLoc) {
		p.N = anoncrypto.LastHop
		r.stats.LastHopAttempts++
		r.transmit(p)
		return
	}
	// STOP: greedy dead end, no recovery mode (§3.2). The previous hop's
	// retransmissions are quenched by the explicit ACK sent on receipt.
	r.stats.DeadEnds++
	r.tracef("stop", "pkt %d dead end toward %s", p.PktID, p.DstLoc)
	r.col.DropPacket(p.PktID, "dead-end")
}

// transmit broadcasts p and arms the network-layer retransmission timer.
func (r *Router) transmit(p Packet) {
	cp := p
	size := dataHeaderBytes + p.Bytes
	if !p.Geocast {
		size += r.scheme.Size()
	}
	if r.cfg.AuthAck {
		size += ackKeyBlockBytes
	}
	r.dcf.Send(mac.Broadcast, &cp, size, nil)
	if !r.cfg.UseAck {
		return
	}
	pd, ok := r.pending[p.PktID]
	if !ok {
		pd = &pendingTx{}
		r.pending[p.PktID] = pd
	}
	pd.pkt = p
	if pd.timer != nil {
		pd.timer.Cancel()
	}
	base := float64(r.cfg.AckTimeout)
	backoff := r.cfg.AckBackoff
	if backoff < 1 {
		backoff = 1
	}
	for i := 0; i < pd.retries; i++ {
		base *= backoff
	}
	to := time.Duration(base * (1 + 0.5*r.rng.Float64()))
	pd.timer = r.eng.Schedule(to, func() { r.onAckTimeout(p.PktID) })
}

// onAckTimeout retransmits a still-unacknowledged packet, re-choosing the
// next hop against the current ANT (the old neighbor may be gone).
func (r *Router) onAckTimeout(id uint64) {
	pd, ok := r.pending[id]
	if !ok {
		return
	}
	pd.timer = nil
	if pd.retries >= r.cfg.MaxRetransmits {
		delete(r.pending, id)
		r.stats.RetryDrops++
		if pd.pkt.Geocast {
			r.col.Drop("net-retry-exhausted")
		} else {
			r.col.DropPacket(id, "net-retry-exhausted")
		}
		return
	}
	pd.retries++
	r.stats.Retransmits++
	r.tracef("rtx", "pkt %d retry %d", id, pd.retries)
	if r.trust != nil && !pd.pkt.N.IsLastHop() {
		// An unanswered timeout is negative forwarding evidence against
		// the committed relay.
		r.trust.Record(string(pd.pkt.N[:]), false, r.eng.Now())
	}
	p := pd.pkt
	now := r.eng.Now()
	// Early retries keep the same committed relay: a lost ACK and a lost
	// DATA frame are indistinguishable, and switching relays while the
	// first one may already hold the packet forks duplicate packet trees.
	// The relay-side duplicate quench makes same-relay retries free.
	// After repeated silence the relay has likely moved on; re-choose,
	// excluding it (the ANT analog of GPSR's MAC-feedback eviction).
	if pd.retries > 3 && !p.N.IsLastHop() {
		if pd.tried == nil {
			pd.tried = make(map[anoncrypto.Pseudonym]bool)
		}
		pd.tried[p.N] = true
		e, ok := r.chooseNextHop(p.DstLoc, now, pd.tried)
		switch {
		case ok:
			p.N = e.N
		case p.Geocast:
			// Nobody left to relay through: serve the geocast here.
			delete(r.pending, id)
			r.acceptGeocast(p)
			return
		case r.inLastHopRegion(p.DstLoc):
			p.N = anoncrypto.LastHop
		default:
			delete(r.pending, id)
			r.stats.DeadEnds++
			r.col.DropPacket(id, "dead-end")
			return
		}
	}
	r.transmit(p)
}

// ackReceived settles a pending packet.
func (r *Router) ackReceived(id uint64, implicit bool) {
	pd, ok := r.pending[id]
	if !ok {
		return
	}
	if pd.timer != nil {
		pd.timer.Cancel()
	}
	delete(r.pending, id)
	if implicit {
		r.stats.ImplicitAcks++
	} else {
		r.stats.ExplicitAcks++
	}
	if r.trust != nil && !pd.pkt.N.IsLastHop() {
		// The relay produced forwarding evidence (genuine or — for a
		// spoofed ack the victim cannot distinguish — laundered).
		r.trust.Record(string(pd.pkt.N[:]), true, r.eng.Now())
	}
}

// sendAck broadcasts an explicit network-layer acknowledgment,
// authenticated under the packet's sealed MAC key when AuthAck is armed.
func (r *Router) sendAck(id, key uint64) {
	r.stats.ExplicitAcks++
	a := &Ack{PktID: id}
	if r.cfg.AuthAck && key != 0 {
		a.Auth = anoncrypto.AckMAC64(key, id)
	}
	r.dcf.Send(mac.Broadcast, a, r.ackSize(), nil)
}

// onDeliver is the MAC upper-layer callback.
func (r *Router) onDeliver(_ mac.Addr, payload any, _ int) {
	switch m := payload.(type) {
	case neighbor.Hello:
		if r.cfg.AuthVerifier != nil {
			// Unauthenticated hellos are spoofing attempts in
			// authenticated mode: reject (§3.1.2's whole point).
			r.stats.HellosRejected++
			return
		}
		r.onHello(m)
	case *neighbor.AuthHello:
		if r.cfg.AuthVerifier == nil {
			return // not configured to verify; ignore rather than trust
		}
		if _, err := r.cfg.AuthVerifier.Verify(m); err != nil {
			r.stats.HellosRejected++
			return
		}
		r.onHello(m.Hello)
	case *Ack:
		if m.Spoofed {
			r.stats.SpoofAcksHeard++
		}
		if pd, waiting := r.pending[m.PktID]; waiting && r.cfg.AuthAck && pd.pkt.AckKey != 0 {
			if m.Auth != anoncrypto.AckMAC64(pd.pkt.AckKey, m.PktID) {
				// MAC failure: reject without settling the ARQ — the
				// retransmission timer keeps running. Both arms behave
				// identically; only the accounting distinguishes forgeries
				// (attributable bad-mac) from genuine cross-tree overhears.
				if m.Spoofed {
					r.stats.AuthAcksBadMAC++
					r.col.Drop("ack-bad-mac")
				} else {
					r.stats.AuthAcksForeign++
					r.col.Drop("ack-foreign-mac")
				}
				return
			}
			r.stats.AuthAcksVerified++
		}
		if m.Spoofed {
			// Omniscient accounting only: an unauthenticated (or
			// MAC-passing) forged ack settles below exactly like a real
			// one. The audit reconciles the damage afterward.
			if _, waiting := r.pending[m.PktID]; waiting {
				if r.spoofSettled == nil {
					r.spoofSettled = make(map[uint64]bool)
				}
				r.spoofSettled[m.PktID] = true
				r.stats.SpoofSettles++
			}
		}
		r.ackReceived(m.PktID, false)
	case *Packet:
		r.onPacket(m)
	}
}

// onHello feeds the ANT, charging the (modeled) ring-verification delay
// in authenticated mode.
func (r *Router) onHello(h neighbor.Hello) {
	if h.Junk {
		r.stats.JunkHellosHeard++
	}
	if r.cfg.HelloVerifyDelay > 0 {
		// Closure only on the deferred path: building it unconditionally
		// costs one heap allocation per hello delivery.
		r.eng.Schedule(r.cfg.HelloVerifyDelay, func() { r.admitHello(h) })
		return
	}
	r.admitHello(h)
}

// admitHello runs the escrow-tag gate and the trust plausibility gate
// (when armed) and inserts the hello into the ANT.
func (r *Router) admitHello(h neighbor.Hello) {
	now := r.eng.Now()
	if r.cfg.Revocation != nil && !r.cfg.Revocation.Registered(string(h.N[:])) {
		// Modeled escrow-tag verification: every legitimate pseudonym was
		// escrowed at rotation, so one with no CA-blessed tag on file is a
		// forgery (the flood attack's nonce pseudonyms). The registry
		// lookup stands in for verifying the tag's CA signature — no
		// branch on the omniscient Junk flag.
		r.stats.TagRejects++
		return
	}
	if r.trust != nil && !r.trust.CheckBeacon(string(h.N[:]), h.Loc, r.pos(), now) {
		// Implausible advertised position: quarantine the pseudonym and
		// keep the claim out of the neighbor table.
		r.stats.BeaconsQuarantined++
		return
	}
	r.ant.Update(h.N, h.Loc, now)
}

// onPacket implements the receive side of Algorithm 3.2.
func (r *Router) onPacket(p *Packet) {
	// Overhearing the next hop moving the packet onward is the
	// piggybacked acknowledgment.
	if r.cfg.UseAck && r.cfg.PiggybackAck {
		if _, waiting := r.pending[p.PktID]; waiting {
			r.ackReceived(p.PktID, true)
		}
	}
	switch {
	case r.mem.Owns(p.N):
		r.onCommitted(p)
	case p.N.IsLastHop():
		r.onLastHopBroadcast(p)
	default:
		// Not for us. An armed ack-spoofer forges an acknowledgment for
		// the overheard packet instead of discarding it: the previous
		// hop's ARQ settles for a packet whose committed relay may never
		// have received it. The forger never held the sealed AckKey (it
		// is ciphertext to bystanders), so under AuthAck its Auth field
		// stays zero and the victim's MAC check rejects it.
		if r.ackSpoof != nil && r.ackSpoof() {
			r.stats.SpoofAcksSent++
			r.dcf.Send(mac.Broadcast, &Ack{PktID: p.PktID, Spoofed: true}, r.ackSize(), nil)
		}
	}
}

// onCommitted handles a packet naming one of our pseudonyms.
func (r *Router) onCommitted(p *Packet) {
	if r.relayDrop > 0 && (r.relayDrop >= 1 || r.rng.Float64() < r.relayDrop) {
		// Adversarial relay: eat the packet silently — no forward, no
		// ACK, no duplicate quench. Every retransmission re-rolls a
		// greyhole; a blackhole eats them all until the previous hop's
		// ARQ re-chooses a relay (excluding our pseudonym).
		r.stats.AdversaryDrops++
		r.col.Drop("adversary-drop")
		return
	}
	if r.handled[p.PktID] {
		// The previous hop missed our acknowledgment and retransmitted:
		// quench it without forwarding a duplicate.
		r.stats.DuplicatesQuench++
		if r.cfg.UseAck {
			r.sendAck(p.PktID, p.AckKey)
		}
		return
	}
	r.handled[p.PktID] = true
	q := *p
	q.Hops++
	if q.Geocast {
		// No trapdoor on geocasts; either relay onward or serve here
		// (forwardDecision terminates at the local maximum, which also
		// acknowledges the previous hop).
		if r.cfg.UseAck && !r.cfg.PiggybackAck {
			r.sendAck(q.PktID, q.AckKey)
		}
		r.forwardDecision(q)
		return
	}
	if r.inLastHopRegion(q.DstLoc) {
		// Only nodes in the last-hop region pay the trapdoor cost (§3.2).
		r.stats.TrapdoorTries++
		r.eng.Schedule(r.cfg.DecryptDelay, func() {
			if r.scheme.Open(q.Trapdoor) {
				r.stats.TrapdoorOpens++
				r.accept(q)
				return
			}
			r.afterCommitForward(q)
		})
		return
	}
	r.afterCommitForward(q)
}

// afterCommitForward continues a committed forwarder's duty after any
// trapdoor attempt failed (or was skipped outside the last-hop region).
func (r *Router) afterCommitForward(q Packet) {
	if !r.cfg.UseAck || !r.cfg.PiggybackAck {
		if r.cfg.UseAck {
			r.sendAck(q.PktID, q.AckKey)
		}
		r.forwardDecision(q)
		return
	}
	// Piggyback mode: our own onward broadcast acknowledges the previous
	// hop — unless we stop, in which case forwardDecision drops and the
	// previous hop would retransmit pointlessly; send the explicit ACK
	// only on the stop path.
	now := r.eng.Now()
	_, canForward := r.chooseNextHop(q.DstLoc, now, nil)
	if !canForward && !r.inLastHopRegion(q.DstLoc) {
		r.sendAck(q.PktID, q.AckKey)
	}
	r.forwardDecision(q)
}

// onLastHopBroadcast handles the n = 0 last forwarding attempt: everyone
// in range tries the trapdoor; only the destination accepts.
func (r *Router) onLastHopBroadcast(p *Packet) {
	if r.handled[p.PktID] {
		return
	}
	q := *p
	q.Hops++
	r.stats.TrapdoorTries++
	r.eng.Schedule(r.cfg.DecryptDelay, func() {
		if r.handled[q.PktID] {
			return // a retransmission raced our decryption
		}
		if r.scheme.Open(q.Trapdoor) {
			r.stats.TrapdoorOpens++
			r.handled[q.PktID] = true
			r.accept(q)
		}
		// Not the destination: discard, no more forwarding required.
	})
}

// accept delivers a packet to the application and acknowledges it.
func (r *Router) accept(q Packet) {
	if r.cfg.UseAck {
		r.sendAck(q.PktID, q.AckKey)
	}
	if r.delivered[q.PktID] {
		return
	}
	r.delivered[q.PktID] = true
	r.tracef("accept", "pkt %d after %d hops", q.PktID, q.Hops)
	r.col.PacketDelivered(q.PktID, r.eng.Now(), q.Hops)
	if r.deliver != nil {
		r.deliver(q.PktID, q.Hops)
	}
}

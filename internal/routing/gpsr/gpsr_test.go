package gpsr

import (
	"fmt"
	"testing"
	"time"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/metrics"
	"anongeo/internal/mobility"
	"anongeo/internal/radio"
	"anongeo/internal/sim"
)

// testBed wires engine, channel, collector, and GPSR nodes.
type testBed struct {
	eng     *sim.Engine
	ch      *radio.Channel
	col     *metrics.Collector
	routers []*Router
}

func newTestBed(seed int64) *testBed {
	eng := sim.NewEngine(seed)
	return &testBed{
		eng: eng,
		ch:  radio.NewChannel(eng, 250),
		col: metrics.NewCollector(),
	}
}

// addNode creates a GPSR node with the given mobility model.
func (tb *testBed) addNode(model mobility.Model, cfg Config) *Router {
	i := len(tb.routers)
	id := anoncrypto.Identity(fmt.Sprintf("n%d", i))
	d := mac.New(tb.eng, tb.ch, model, mac.DefaultParams(), mac.AddrFromUint64(uint64(i+1)), nil, tb.eng.NewStream())
	iface := d.Iface()
	r := New(tb.eng, d, id, iface.Pos, cfg, tb.col, nil, tb.eng.NewStream())
	r.Start()
	tb.routers = append(tb.routers, r)
	return r
}

func (tb *testBed) addStatic(x, y float64) *Router {
	return tb.addNode(mobility.Static{At: geo.Pt(x, y)}, DefaultConfig())
}

// line builds a chain of static nodes spaced 200 m apart.
func (tb *testBed) line(n int) {
	for i := 0; i < n; i++ {
		tb.addStatic(float64(i)*200, 0)
	}
}

func TestBeaconsBuildNeighborTables(t *testing.T) {
	tb := newTestBed(1)
	tb.line(3)
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	now := tb.eng.Now()
	if got := tb.routers[1].Table().Len(now); got != 2 {
		t.Fatalf("middle node sees %d neighbors, want 2", got)
	}
	if got := tb.routers[0].Table().Len(now); got != 1 {
		t.Fatalf("edge node sees %d neighbors, want 1", got)
	}
}

func TestMultiHopDelivery(t *testing.T) {
	tb := newTestBed(2)
	tb.line(5) // 0..800 m, 4 hops end to end
	tb.eng.Schedule(5*time.Second, func() {
		tb.routers[0].SendData("n4", geo.Pt(800, 0), 64, 1)
	})
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	s := tb.col.Summarize()
	if s.Delivered != 1 {
		t.Fatalf("not delivered: %v drops=%v", s, tb.col.Drops())
	}
	if got := s.AvgHops; got != 4 {
		t.Fatalf("hops = %v, want 4", got)
	}
}

func TestDeliveryToSelf(t *testing.T) {
	tb := newTestBed(3)
	tb.line(2)
	tb.eng.Schedule(time.Second, func() {
		tb.routers[0].SendData("n0", geo.Pt(0, 0), 64, 1)
	})
	if err := tb.eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.col.Summarize().Delivered != 1 {
		t.Fatal("self-addressed packet not delivered")
	}
}

func TestGreedyDeadEndDropsWithoutPerimeter(t *testing.T) {
	tb := newTestBed(4)
	// 0 and 1 connected; destination far beyond, no intermediate.
	tb.addStatic(0, 0)
	tb.addStatic(200, 0)
	tb.addStatic(900, 0) // n2: out of range of both
	tb.eng.Schedule(5*time.Second, func() {
		tb.routers[0].SendData("n2", geo.Pt(900, 0), 64, 1)
	})
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.col.Summarize().Delivered != 0 {
		t.Fatal("packet crossed a partition")
	}
	if tb.col.Drops()["dead-end"] == 0 {
		t.Fatalf("dead-end not recorded: %v", tb.col.Drops())
	}
}

func TestPerimeterRecoversAroundVoid(t *testing.T) {
	// A concave void: greedy from n0 toward n4 gets stuck at n1 (no
	// neighbor closer to dest), perimeter mode should route around via
	// the detour nodes above.
	cfg := DefaultConfig()
	cfg.EnablePerimeter = true
	tb := newTestBed(5)
	add := func(x, y float64) { tb.addNode(mobility.Static{At: geo.Pt(x, y)}, cfg) }
	add(0, 0)     // n0 source
	add(200, 0)   // n1 local maximum: dest is 600 away, no closer neighbor
	add(150, 180) // n2 detour
	add(350, 180) // n3 detour
	add(520, 100) // n4 bridge toward dest
	add(700, 0)   // n5 destination
	tb.eng.Schedule(6*time.Second, func() {
		tb.routers[0].SendData("n5", geo.Pt(700, 0), 64, 1)
	})
	if err := tb.eng.Run(12 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.col.Summarize().Delivered != 1 {
		t.Fatalf("perimeter mode failed: drops=%v", tb.col.Drops())
	}
}

func TestMACFeedbackEvictsDeadNeighbor(t *testing.T) {
	// n1 moves out of range after beaconing; the send fails at MAC and
	// GPSR must evict and re-route via n2.
	tb := newTestBed(6)
	tb.addStatic(0, 0) // n0
	// n1 beacons from (210,0) then sprints away out of range.
	tb.addNode(mobility.Trace{
		Times:  []sim.Time{0, 5 * sim.Second, 5*sim.Second + 1},
		Points: []geo.Point{geo.Pt(210, 0), geo.Pt(210, 0), geo.Pt(2000, 0)},
	}, DefaultConfig())
	tb.addStatic(180, 100) // n2 alternative relay
	tb.addStatic(400, 0)   // n3 destination
	tb.eng.Schedule(5100*time.Millisecond, func() {
		tb.routers[0].SendData("n3", geo.Pt(400, 0), 64, 1)
	})
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.col.Summarize().Delivered != 1 {
		t.Fatalf("did not recover from dead neighbor: drops=%v stats=%+v",
			tb.col.Drops(), tb.routers[0].Stats())
	}
	if tb.routers[0].Stats().MACFailures == 0 {
		t.Fatal("expected a MAC failure to trigger re-route")
	}
}

func TestHopLimit(t *testing.T) {
	tb := newTestBed(7)
	tb.line(2)
	// Forge a packet with hops at the limit and inject it.
	p := &Packet{PktID: 1, Src: "x", Dst: "n9", DstLoc: geo.Pt(5000, 0), Hops: 200, Bytes: 10}
	tb.col.PacketSent(1, 0)
	tb.eng.Schedule(time.Second, func() { tb.routers[0].route(p, 0) })
	if err := tb.eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.col.Drops()["hop-limit"] != 1 {
		t.Fatalf("hop limit not enforced: %v", tb.col.Drops())
	}
}

func TestBeaconCadence(t *testing.T) {
	tb := newTestBed(8)
	tb.line(1)
	if err := tb.eng.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	// 1.5 s ± 50% beacons over 15 s: expect roughly 10, allow 6..20.
	got := tb.routers[0].Stats().BeaconsSent
	if got < 6 || got > 20 {
		t.Fatalf("BeaconsSent = %d over 15s, outside sane range", got)
	}
}

func TestStaleNeighborsExpire(t *testing.T) {
	tb := newTestBed(9)
	// n1 exists only briefly: beacons, then leaves.
	tb.addStatic(0, 0)
	tb.addNode(mobility.Trace{
		Times:  []sim.Time{0, 3 * sim.Second, 3*sim.Second + 1},
		Points: []geo.Point{geo.Pt(100, 0), geo.Pt(100, 0), geo.Pt(5000, 0)},
	}, DefaultConfig())
	if err := tb.eng.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := tb.routers[0].Table().Len(tb.eng.Now()); got != 0 {
		t.Fatalf("stale neighbor still present: %d", got)
	}
}

// deadAfterBeacons is a mobility model for a relay that beacons from a
// good position then leaves the network abruptly.
func deadAfterBeacons() mobility.Model {
	return mobility.Trace{
		Times:  []sim.Time{0, 5 * sim.Second, 5*sim.Second + 1},
		Points: []geo.Point{geo.Pt(210, 0), geo.Pt(210, 0), geo.Pt(2000, 0)},
	}
}

package gpsr

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"anongeo/internal/anoncrypto"
	"anongeo/internal/geo"
	"anongeo/internal/mac"
	"anongeo/internal/metrics"
	"anongeo/internal/mobility"
	"anongeo/internal/radio"
	"anongeo/internal/sim"
)

// newPlanarRouter builds an isolated router with a hand-filled table for
// geometry tests.
func newPlanarRouter(t *testing.T) *Router {
	t.Helper()
	eng := sim.NewEngine(1)
	ch := radio.NewChannel(eng, 250)
	d := mac.New(eng, ch, mobility.Static{At: geo.Pt(0, 0)}, mac.DefaultParams(), mac.AddrFromUint64(1), nil, eng.NewStream())
	return New(eng, d, "me", d.Iface().Pos, DefaultConfig(), metrics.NewCollector(), nil, eng.NewStream())
}

// TestGabrielWitnessElimination pins the planarization rule on a known
// geometry: a witness inside the diameter circle removes the edge.
func TestGabrielWitnessElimination(t *testing.T) {
	r := newPlanarRouter(t)
	here := geo.Pt(0, 0)
	// v at (200,0); witness w at (100,10) lies inside the circle with
	// diameter here–v, so the edge (here,v) must be pruned.
	r.table.Update("v", mac.AddrFromUint64(2), geo.Pt(200, 0), 0)
	r.table.Update("w", mac.AddrFromUint64(3), geo.Pt(100, 10), 0)
	planar := r.planarNeighbors(here, 0)
	for _, e := range planar {
		if e.ID == "v" {
			t.Fatal("witnessed edge survived Gabriel planarization")
		}
	}
	// The closer edge (here,w) survives (v is outside its circle).
	found := false
	for _, e := range planar {
		if e.ID == "w" {
			found = true
		}
	}
	if !found {
		t.Fatal("unwitnessed edge pruned")
	}
}

// Property: a Gabriel edge is kept iff no witness lies strictly inside
// its diameter circle — verify the implementation against the definition
// on random neighbor sets.
func TestGabrielDefinitionProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newPlanarRouter(t)
		here := geo.Pt(0, 0)
		n := int(nRaw%12) + 1
		locs := make(map[anoncrypto.Identity]geo.Point, n)
		for i := 0; i < n; i++ {
			id := anoncrypto.Identity(fmt.Sprintf("v%d", i))
			loc := geo.Pt(rng.Float64()*400-200, rng.Float64()*400-200)
			locs[id] = loc
			r.table.Update(id, mac.AddrFromUint64(uint64(i+2)), loc, 0)
		}
		kept := map[anoncrypto.Identity]bool{}
		for _, e := range r.planarNeighbors(here, 0) {
			kept[e.ID] = true
		}
		for id, v := range locs {
			witnessed := false
			mid := here.Lerp(v, 0.5)
			rad2 := here.Dist2(v) / 4
			for wid, w := range locs {
				if wid == id {
					continue
				}
				if w.Dist2(mid) < rad2-1e-9 {
					witnessed = true
					break
				}
			}
			if witnessed == kept[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gabriel edges never cross each other (planarity around one
// node: edges share the endpoint `here`, so only check that no kept
// neighbor lies strictly inside another kept edge's diameter circle —
// implied by the definition — and that the planar set is a subset).
func TestPlanarSubsetProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newPlanarRouter(t)
		n := int(nRaw % 16)
		for i := 0; i < n; i++ {
			r.table.Update(anoncrypto.Identity(fmt.Sprintf("v%d", i)), mac.AddrFromUint64(uint64(i+2)),
				geo.Pt(rng.Float64()*500-250, rng.Float64()*500-250), 0)
		}
		all := r.table.Entries(0)
		planar := r.planarNeighbors(geo.Pt(0, 0), 0)
		if len(planar) > len(all) {
			return false
		}
		// With at least one neighbor, the Gabriel graph keeps at least
		// the closest one (nothing can witness the shortest edge... a
		// witness must be strictly closer to the midpoint, impossible
		// for the minimum-length edge? Not in general — but the closest
		// neighbor's circle can only contain points closer than it,
		// of which there are none).
		if len(all) > 0 && len(planar) == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDestinationNeighborShortcut(t *testing.T) {
	// The destination beaconed from (210,0) but the packet carries a
	// badly stale loc_d far away; GPSR must still deliver by spotting
	// the destination in its neighbor table.
	tb := newTestBed(31)
	tb.addStatic(0, 0)   // n0 source
	tb.addStatic(210, 0) // n1 destination
	if err := tb.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	tb.eng.Schedule(0, func() {
		// loc_d points 700 m away from n1's true position: greedy alone
		// would dead-end (n1 is no closer to (900,0) than n0... it is
		// closer actually; use a loc_d behind the source instead).
		tb.routers[0].SendData("n1", geo.Pt(-500, 0), 64, 1)
	})
	if err := tb.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tb.col.Summarize().Delivered != 1 {
		t.Fatalf("stale-location delivery failed: %v", tb.col.Drops())
	}
}
